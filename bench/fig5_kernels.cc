// Figure 5: read performance of PLFS vs direct PFS access across the six
// I/O kernels (Pixie3D, ARAMCO, IOR, MADbench, LANL 1, LANL 3).
//
// Paper shapes to reproduce:
//   5a Pixie3D  — direct wins small, PLFS scales better and wins large
//   5b ARAMCO   — PLFS up to ~8x below ~300 procs; direct wins at scale
//                 (strong scaling: index-aggregation time dominates)
//   5c IOR      — PLFS wins at all counts (up to ~4.5x)
//   5d MADbench — PLFS wins
//   5e LANL 1   — PLFS wins everywhere, max ~10x
//   5f LANL 3   — near parity; PLFS slightly ahead at the largest scale
// All PLFS reads use Parallel Index Read (chosen as the default).
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

namespace {

double read_bw(const JobSpec& base, Access access, int procs) {
  testbed::Rig rig(bench::lanl_rig());
  JobSpec spec = base;
  spec.target.access = access;
  spec.target.strategy = plfs::ReadStrategy::parallel_read;
  spec.drop_caches_before_read = true;  // restart reads are cold
  return run_job(rig, procs, spec).read.effective_bw();
}

void kernel_table(const std::string& title, const std::string& ref,
                  const std::vector<int>& procs, std::size_t shards,
                  const std::function<JobSpec(int)>& make) {
  bench::print_header(title, ref);
  // Every (procs, access) cell is an independent simulation; spread the rows
  // across shard threads, submitting in the serial bench's execution order.
  struct Cell {
    double direct, plfs;
  };
  std::vector<Cell> cells(procs.size());
  sim::ShardPool pool(shards);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const int n = procs[i];
    pool.submit([&cells, &make, i, n] {
      const JobSpec spec = make(n);
      cells[i].direct = read_bw(spec, Access::direct_n1, n);
      cells[i].plfs = read_bw(spec, Access::plfs_n1, n);
    });
  }
  pool.run_all();
  Table t({"procs", "direct MB/s", "PLFS MB/s", "PLFS/direct"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    t.add_row({std::to_string(procs[i]), Table::num(bench::mbps(cells[i].direct)),
               Table::num(bench::mbps(cells[i].plfs)),
               Table::num(cells[i].plfs / cells[i].direct, 2) + "x"});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("fig5_kernels: kernel read bandwidth, PLFS vs direct");
  auto* max_procs = flags.add_i64("max-procs", 512, "largest process count");
  auto* scale_mib = flags.add_i64("scale-mib", 8,
                                  "per-process data scale in MiB (paper used up to 1 GB)");
  auto* shards_flag = bench::add_shards_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const std::size_t shards = bench::shards_or_die(*shards_flag);
  const auto procs = bench::sweep(32, static_cast<int>(*max_procs));
  const std::uint64_t scale = static_cast<std::uint64_t>(*scale_mib) << 20;

  // Pixie3D writes very large contiguous slabs (1 GB/proc in the paper):
  // scaled up 16x relative to the other kernels so slab sizes stay
  // representative and direct access can stream.
  kernel_table("Fig. 5a — Pixie3D (pnetcdf, weak scaling)",
               "direct wins small; PLFS scales better and wins large", procs, shards,
               [&](int n) { return pixie3d(n, 16 * scale, 8, {}); });

  // ARAMCO is strong scaling: the dataset is fixed, so per-process data
  // shrinks as procs grow while index-aggregation cost does not.
  kernel_table("Fig. 5b — ARAMCO (HDF5, strong scaling)",
               "PLFS up to ~8x at low counts; direct wins at scale", procs, shards, [&](int n) {
                 (void)n;
                 return aramco(n, 8 * scale, 1_MiB, {});
               });

  kernel_table("Fig. 5c — IOR (N-1, 1 MiB records)",
               "PLFS wins at all process counts (up to ~4.5x)", procs, shards, [&](int n) {
                 (void)n;
                 JobSpec spec;
                 spec.file = "ior";
                 spec.ops = strided_ops(scale, 1_MiB);
                 return spec;
               });

  kernel_table("Fig. 5d — MADbench (out-of-core matrices)", "PLFS wins", procs, shards,
               [&](int n) {
                 (void)n;
                 return madbench(scale / 2, 2, {});
               });

  kernel_table("Fig. 5e — LANL 1 (weak scaling, ~500 KB strided)",
               "PLFS wins everywhere; paper max ~10x at 384 procs", procs, shards,
               [&](int n) {
                 (void)n;
                 return lanl1(scale, {});
               });

  kernel_table("Fig. 5f — LANL 3 (strong scaling, 1 KiB records, collective buffering)",
               "near parity; PLFS slightly ahead at the largest scale", procs, shards,
               [&](int n) { return lanl3(n, 16 * scale, {}); });
  bench::print_sim_counters();
  return 0;
}
