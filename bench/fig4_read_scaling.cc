// Figure 4: read scaling of the index-aggregation strategies (MPI-IO Test).
//
//   4a  Read Open Time   — Original vs Index Flatten vs Parallel Index Read
//   4b  Read Bandwidth   — effective (open+read+close) bandwidth
//   4c  Write Close Time — Original vs Index Flatten
//   4d  Write Bandwidth  — effective write bandwidth
//
// Paper setup: 64-node/1024-core cluster, 50 MB per stream in ~50 KB
// records, streams up to 2048 (oversubscribed); both collective techniques
// are ~4x faster than the Original design at 2048 streams, and read
// bandwidth ~3x higher.
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

namespace {

struct Row {
  int streams;
  double open_orig, open_flat, open_par;
  double bw_orig, bw_flat, bw_par;
  double close_noflat, close_flat;
  double wbw_noflat, wbw_flat;
  // Index bytes pulled off the PFS during each strategy's open (per-writer
  // logs plus the flattened global index), from the plfs.index.* counters.
  std::uint64_t ibytes_orig, ibytes_flat, ibytes_par;
};

// Index bytes read from storage so far (log + flattened-global files) *by
// this shard*: before/after deltas must not see rows running concurrently
// on other shard threads.
std::uint64_t index_bytes_read() {
  return counter("plfs.index.log_bytes_read").local_value() +
         counter("plfs.index.global_bytes_read").local_value();
}

// Fabric-topology knobs threaded into every rig of a row (defaults = flat
// preset + block groups, byte-identical to the pre-topology bench).
struct TopoOpts {
  net::TopologyKind kind = net::TopologyKind::flat;
  std::size_t racks = 1;
  double oversubscription = 1.0;
  bool rack_groups = false;
};

Row run_streams(int streams, std::uint64_t per_proc, std::uint64_t record,
                plfs::IndexBackend backend, plfs::WireFormat wire, const pfs::FaultPlan& plan,
                const TopoOpts& topo) {
  Row row{};
  row.streams = streams;
  const OpGen ops = strided_ops(per_proc, record);
  auto rig_opts = [backend, wire, &plan, &topo] {
    testbed::Rig::Options o = bench::lanl_rig();
    o.index_backend = backend;
    o.index_wire = wire;
    o.fault_plan = plan;
    o.cluster.topology = topo.kind;
    o.cluster.racks = topo.racks;
    o.cluster.oversubscription = topo.oversubscription;
    return o;
  };

  auto read_with = [&](testbed::Rig& rig, const char* file, plfs::ReadStrategy strategy,
                       double* open_s, double* bw, std::uint64_t* ibytes) {
    JobSpec spec;
    spec.file = file;
    spec.ops = ops;
    spec.target.access = Access::plfs_n1;
    spec.target.strategy = strategy;
    spec.do_write = false;
    const std::uint64_t before = index_bytes_read();
    const PhaseTimes read = run_job(rig, streams, spec).read;
    *ibytes = index_bytes_read() - before;
    *open_s = read.open_s;
    *bw = read.effective_bw();
  };

  // One rig per written file so page-cache state is comparable across
  // strategies (each strategy rereads the same freshly written data).
  {
    testbed::Rig rig(rig_opts());
    rig.mount().rack_aware_groups = topo.rack_groups;
    JobSpec w;
    w.file = "noflat";
    w.ops = ops;
    w.target.access = Access::plfs_n1;
    w.do_read = false;
    const PhaseTimes wr = run_job(rig, streams, w).write;
    row.close_noflat = wr.close_s;
    row.wbw_noflat = wr.effective_bw();
    read_with(rig, "noflat", plfs::ReadStrategy::original, &row.open_orig, &row.bw_orig,
              &row.ibytes_orig);
    read_with(rig, "noflat", plfs::ReadStrategy::parallel_read, &row.open_par, &row.bw_par,
              &row.ibytes_par);
  }
  {
    testbed::Rig rig(rig_opts());
    rig.mount().rack_aware_groups = topo.rack_groups;
    JobSpec w;
    w.file = "flat";
    w.ops = ops;
    w.target.access = Access::plfs_n1;
    w.target.flatten_on_close = true;
    w.do_read = false;
    const PhaseTimes wr = run_job(rig, streams, w).write;
    row.close_flat = wr.close_s;
    row.wbw_flat = wr.effective_bw();
    read_with(rig, "flat", plfs::ReadStrategy::index_flatten, &row.open_flat, &row.bw_flat,
              &row.ibytes_flat);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::setlocale(LC_ALL, "");  // stdout tables honor the user's locale; JSON must not
  FlagSet flags("fig4_read_scaling: index aggregation strategies vs stream count");
  auto* max_streams = flags.add_i64("max-streams", 1024, "largest concurrent stream count (paper: 2048)");
  auto* per_proc_mib = flags.add_i64("per-proc-mib", 16, "MiB per stream (paper: 50 MB)");
  auto* record_kib = flags.add_i64("record-kib", 16, "record size KiB (paper: ~50 KB; 1024 records/stream)");
  auto* backend_name = bench::add_index_backend_flag(flags);
  auto* wire_name = bench::add_index_wire_flag(flags);
  auto* plan_spec = bench::add_fault_plan_flag(flags);
  const bench::TopologyFlags topo_flags = bench::add_topology_flags(flags);
  auto* rack_groups_flag = flags.add_bool(
      "rack-groups", false, "form Parallel Index Read groups by rack instead of rank blocks");
  auto* shards_flag = bench::add_shards_flag(flags);
  auto* json_path = flags.add_string("json", "", "also write results to this file as JSON");
  auto* trace_path = bench::add_trace_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  bench::start_trace(*trace_path);
  const std::uint64_t per_proc = static_cast<std::uint64_t>(*per_proc_mib) << 20;
  const std::uint64_t record = static_cast<std::uint64_t>(*record_kib) << 10;
  const plfs::IndexBackend backend = bench::index_backend_or_die(*backend_name);
  const plfs::WireFormat wire = bench::index_wire_or_die(*wire_name);
  const pfs::FaultPlan plan = bench::fault_plan_or_die(*plan_spec);
  TopoOpts topo;
  {
    net::ClusterConfig cluster = testbed::lanl_cluster();
    bench::apply_topology(topo_flags, cluster);
    topo.kind = cluster.topology;
    topo.racks = cluster.racks;
    topo.oversubscription = cluster.oversubscription;
    topo.rack_groups = *rack_groups_flag;
  }
  const std::size_t shards = bench::shards_or_die(*shards_flag);

  // Each row is an independent simulation; the pool spreads them across
  // shard threads (row i on shard i mod N) without changing any row's
  // simulated result.
  const std::vector<int> stream_counts = bench::sweep(16, static_cast<int>(*max_streams));
  std::vector<Row> rows(stream_counts.size());
  sim::ShardPool pool(shards);
  for (std::size_t i = 0; i < stream_counts.size(); ++i) {
    pool.submit([&rows, &stream_counts, i, per_proc, record, backend, wire, &plan, &topo] {
      rows[i] = run_streams(stream_counts[i], per_proc, record, backend, wire, plan, topo);
    });
  }
  pool.run_all();

  bench::print_header("Fig. 4a — Read Open Time (s)",
                      "both techniques ~4x faster than Original at 2048 streams");
  Table a({"streams", "Original", "IndexFlatten", "ParallelRead", "orig/par"});
  for (const auto& r : rows) {
    a.add_row({std::to_string(r.streams), Table::num(r.open_orig, 3),
               Table::num(r.open_flat, 3), Table::num(r.open_par, 3),
               Table::num(r.open_orig / std::max(r.open_par, 1e-9), 1) + "x"});
  }
  a.print(std::cout);

  bench::print_header("Fig. 4b — Read Bandwidth (MB/s, incl. open+close)",
                      "collective techniques ~3x over Original at 2048; cache "
                      "effects can exceed the 1250 MB/s storage-net peak");
  Table b({"streams", "Original", "IndexFlatten", "ParallelRead"});
  for (const auto& r : rows) {
    b.add_row({std::to_string(r.streams), Table::num(bench::mbps(r.bw_orig)),
               Table::num(bench::mbps(r.bw_flat)), Table::num(bench::mbps(r.bw_par))});
  }
  b.print(std::cout);

  bench::print_header("Fig. 4c — Write Close Time (s)",
                      "Index Flatten pays a higher close time at scale");
  Table c({"streams", "Original/ParallelRead", "IndexFlatten"});
  for (const auto& r : rows) {
    c.add_row({std::to_string(r.streams), Table::num(r.close_noflat, 3),
               Table::num(r.close_flat, 3)});
  }
  c.print(std::cout);

  bench::print_header("Fig. 4d — Write Bandwidth (MB/s)",
                      "Index Flatten slightly lowers effective write bandwidth");
  Table d({"streams", "Original/ParallelRead", "IndexFlatten"});
  for (const auto& r : rows) {
    d.add_row({std::to_string(r.streams), Table::num(bench::mbps(r.wbw_noflat)),
               Table::num(bench::mbps(r.wbw_flat))});
  }
  d.print(std::cout);

  if (!json_path->empty()) {
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open --json file: %s\n", json_path->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig4_read_scaling\",\n");
    std::fprintf(f,
                 "  \"config\": {\"max_streams\": %lld, \"per_proc_mib\": %lld, "
                 "\"record_kib\": %lld, \"index_backend\": \"%s\", \"index_wire\": \"%s\", "
                 "\"fault_plan\": \"%s\", \"topology\": \"%s\", \"racks\": %zu, "
                 "\"oversubscription\": %s, \"rack_groups\": %s, \"shards\": %zu},\n",
                 static_cast<long long>(*max_streams), static_cast<long long>(*per_proc_mib),
                 static_cast<long long>(*record_kib), plfs::index_backend_name(backend).c_str(),
                 plfs::wire_format_name(wire).c_str(), plan_spec->c_str(),
                 net::topology_kind_name(topo.kind).c_str(), topo.racks,
                 json_double(topo.oversubscription, 2).c_str(),
                 topo.rack_groups ? "true" : "false", shards);
    std::fprintf(f, "  \"rows\": [");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f, "%s\n    {\"streams\": %d,\n", i ? "," : "", r.streams);
      std::fprintf(f,
                   "     \"read_open_s\": {\"original\": %s, \"index_flatten\": %s, "
                   "\"parallel_read\": %s},\n",
                   json_double(r.open_orig, 6).c_str(), json_double(r.open_flat, 6).c_str(),
                   json_double(r.open_par, 6).c_str());
      std::fprintf(f,
                   "     \"read_bw_mbps\": {\"original\": %s, \"index_flatten\": %s, "
                   "\"parallel_read\": %s},\n",
                   json_double(bench::mbps(r.bw_orig), 3).c_str(),
                   json_double(bench::mbps(r.bw_flat), 3).c_str(),
                   json_double(bench::mbps(r.bw_par), 3).c_str());
      std::fprintf(f,
                   "     \"index_bytes_read\": {\"original\": %llu, \"index_flatten\": %llu, "
                   "\"parallel_read\": %llu},\n",
                   static_cast<unsigned long long>(r.ibytes_orig),
                   static_cast<unsigned long long>(r.ibytes_flat),
                   static_cast<unsigned long long>(r.ibytes_par));
      std::fprintf(f, "     \"write_close_s\": {\"noflatten\": %s, \"flatten\": %s},\n",
                   json_double(r.close_noflat, 6).c_str(), json_double(r.close_flat, 6).c_str());
      std::fprintf(f, "     \"write_bw_mbps\": {\"noflatten\": %s, \"flatten\": %s}}",
                   json_double(bench::mbps(r.wbw_noflat), 3).c_str(),
                   json_double(bench::mbps(r.wbw_flat), 3).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    bench::json_counters(f);
    bench::json_histograms(f);
    std::fprintf(f, "  \"schema\": 2\n}\n");
    std::fclose(f);
  }

  bench::finish_trace(*trace_path);
  bench::print_fault_counters();
  bench::print_index_counters();
  bench::print_topo_counters();
  bench::print_histograms();
  bench::print_sim_counters();
  return 0;
}
