#include "plfs/index_cache.h"

#include <algorithm>
#include <utility>

#include "common/stats.h"

namespace tio::plfs {

namespace {

std::string index_key(const std::string& container) { return "idx:" + container; }
std::string log_key(const std::string& path) { return "log:" + path; }

}  // namespace

IndexCache::Entry* IndexCache::find(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    static Counter& c_misses = counter("plfs.index_cache.misses");
    c_misses.add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  static Counter& c_hits = counter("plfs.index_cache.hits");
  c_hits.add(1);
  return &it->second;
}

IndexPtr IndexCache::get_index(const std::string& container) {
  Entry* e = find(index_key(container));
  return e ? e->index : nullptr;
}

void IndexCache::put_index(const std::string& container, IndexPtr index) {
  if (!index) return;
  Entry e;
  e.bytes = index->memory_bytes();
  e.index = std::move(index);
  insert(index_key(container), container, std::move(e));
}

IndexCache::LogEntries IndexCache::get_log(const std::string& container,
                                           const std::string& path) {
  (void)container;
  Entry* e = find(log_key(path));
  return e ? e->log : nullptr;
}

void IndexCache::put_log(const std::string& container, const std::string& path,
                         LogEntries entries) {
  if (!entries) return;
  Entry e;
  e.bytes = entries->size() * sizeof(IndexEntry);
  e.log = std::move(entries);
  insert(log_key(path), container, std::move(e));
}

void IndexCache::insert(const std::string& key, const std::string& container, Entry entry) {
  if (entry.bytes > budget_bytes_) return;  // would evict everything else for nothing
  erase_key(key);                           // replace any stale value
  entry.container = container;
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  stats_.bytes += entry.bytes;
  ++stats_.entries;
  ++stats_.insertions;
  static Counter& c_insertions = counter("plfs.index_cache.insertions");
  c_insertions.add(1);
  by_container_[container].push_back(key);
  entries_.emplace(key, std::move(entry));
  evict_to_budget();
}

void IndexCache::erase_key(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  stats_.bytes -= it->second.bytes;
  --stats_.entries;
  auto bc = by_container_.find(it->second.container);
  if (bc != by_container_.end()) {
    auto& keys = bc->second;
    keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
    if (keys.empty()) by_container_.erase(bc);
  }
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void IndexCache::evict_to_budget() {
  while (stats_.bytes > budget_bytes_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    erase_key(victim);
    ++stats_.evictions;
    static Counter& c_evictions = counter("plfs.index_cache.evictions");
    c_evictions.add(1);
  }
}

void IndexCache::invalidate(const std::string& container) {
  ++generations_[container];
  ++stats_.invalidations;
  static Counter& c_invalidations = counter("plfs.index_cache.invalidations");
  c_invalidations.add(1);
  auto it = by_container_.find(container);
  if (it == by_container_.end()) return;
  const std::vector<std::string> keys = it->second;  // erase_key edits the list
  for (const auto& key : keys) erase_key(key);
}

std::uint64_t IndexCache::generation(const std::string& container) const {
  auto it = generations_.find(container);
  return it == generations_.end() ? 0 : it->second;
}

void IndexCache::clear() {
  lru_.clear();
  entries_.clear();
  by_container_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

}  // namespace tio::plfs
