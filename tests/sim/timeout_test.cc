// with_timeout: race an op against a virtual-time deadline. The op is never
// cancelled (Task has no cancellation) — on timeout it keeps running
// detached, exactly the at-least-once hazard a real retry layer lives with.
#include "sim/timeout.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace tio::sim {
namespace {

Task<int> slow_value(Engine& engine, Duration d, int v, bool* completed) {
  co_await engine.sleep(d);
  if (completed != nullptr) *completed = true;
  co_return v;
}

TEST(Timeout, FastOpReturnsItsValue) {
  Engine engine;
  std::optional<int> got;
  TimePoint resumed_at;
  test::run_task(
      engine, [](Engine& e, std::optional<int>& out, TimePoint& at) -> Task<void> {
        out = co_await with_timeout(e, Duration::ms(100),
                                    slow_value(e, Duration::ms(1), 42, nullptr));
        at = e.now();  // run_task then drains the pending deadline timer
      }(engine, got, resumed_at));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
  // The waiter resumed at op completion, not at the deadline.
  EXPECT_EQ(resumed_at.to_ns(), Duration::ms(1).to_ns());
}

TEST(Timeout, SlowOpTimesOutButStillRunsToCompletion) {
  Engine engine;
  bool completed = false;
  std::optional<int> got;
  TimePoint resumed_at;
  test::run_task(
      engine,
      [](Engine& e, bool& done, std::optional<int>& out, TimePoint& at) -> Task<void> {
        out = co_await with_timeout(e, Duration::ms(10),
                                    slow_value(e, Duration::ms(50), 7, &done));
        at = e.now();
        // At the moment the waiter gives up, the detached op has not finished.
        EXPECT_FALSE(done);
      }(engine, completed, got, resumed_at));
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(resumed_at.to_ns(), Duration::ms(10).to_ns());
  // run_task drained the engine: the abandoned op completed in background.
  EXPECT_TRUE(completed);
  EXPECT_GE(engine.now().to_ns(), Duration::ms(50).to_ns());
}

TEST(Timeout, ExactTieGoesToWhicheverSettlesFirst) {
  // Same-instant completion and deadline: the result is deterministic
  // (engine event order), and both outcomes leave the system consistent.
  Engine engine;
  auto got = test::run_task(
      engine, [](Engine& e) -> Task<std::optional<int>> {
        co_return co_await with_timeout(e, Duration::ms(5),
                                        slow_value(e, Duration::ms(5), 9, nullptr));
      }(engine));
  if (got.has_value()) {
    EXPECT_EQ(*got, 9);
  }
  EXPECT_EQ(engine.now().to_ns(), Duration::ms(5).to_ns());
}

}  // namespace
}  // namespace tio::sim
