#include "plfs/pattern.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/crc32c.h"
#include "common/stats.h"
#include "common/varint.h"

namespace tio::plfs {

namespace {

using Mapping = IndexView::Mapping;

// State of one writer's growing run during detection.
struct OpenRun {
  std::vector<std::uint32_t> pos;  // member stream positions, ascending
  std::uint64_t record_len = 0;
  std::uint64_t last_logical = 0;
  std::uint64_t last_physical = 0;
  std::int64_t stride = 0;         // valid once pos.size() >= 2
  std::uint32_t pos_stride = 0;    // valid once pos.size() >= 2
};

void close_run(const std::vector<IndexEntry>& entries, OpenRun&& run, std::size_t min_run,
               PatternScan& scan) {
  if (run.pos.size() < min_run) {
    scan.literals.insert(scan.literals.end(), run.pos.begin(), run.pos.end());
    return;
  }
  const IndexEntry& first = entries[run.pos.front()];
  const IndexEntry& last = entries[run.pos.back()];
  PatternRun out;
  out.pos_start = run.pos.front();
  out.pos_stride = run.pos_stride == 0 ? 1 : run.pos_stride;
  out.entry.logical_start = first.logical_offset;
  out.entry.stride = run.stride;
  out.entry.record_len = run.record_len;
  out.entry.physical_start = first.physical_offset;
  out.entry.count = static_cast<std::uint32_t>(run.pos.size());
  out.entry.writer = first.writer;
  out.entry.timestamp_base = first.timestamp_ns;
  // Fit the timestamp progression through the endpoints; the encoder stores
  // per-record residuals unless the fit is exact.
  out.entry.timestamp_delta =
      run.pos.size() < 2 ? 0
                         : (last.timestamp_ns - first.timestamp_ns) /
                               static_cast<std::int64_t>(run.pos.size() - 1);
  out.ts_exact = true;
  for (std::size_t j = 0; j < run.pos.size(); ++j) {
    if (entries[run.pos[j]].timestamp_ns !=
        out.entry.timestamp_base + static_cast<std::int64_t>(j) * out.entry.timestamp_delta) {
      out.ts_exact = false;
      break;
    }
  }
  scan.runs.push_back(std::move(out));
}

constexpr char kErrPrefix[] = "corrupt index log (wire v2): ";

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

// One self-contained segment: magic | version | count | payload_len |
// payload | crc32c. `stats` gates the plfs.index.pattern.* counters so
// size-only probes don't skew them.
void append_v2_segment(std::vector<std::byte>& out, const std::vector<IndexEntry>& entries,
                       bool stats) {
  const std::size_t seg = out.size();
  const PatternScan scan = detect_patterns(entries);

  std::vector<std::byte> payload;
  payload.reserve(entries.size() * 4);
  std::size_t run_entries = 0;
  for (const auto& r : scan.runs) {
    payload.push_back(static_cast<std::byte>(r.ts_exact ? 0x01 : 0x02));
    put_varint(payload, r.entry.writer);
    put_varint(payload, r.pos_start);
    put_varint(payload, r.pos_stride);
    put_varint(payload, r.entry.count);
    put_varint(payload, r.entry.record_len);
    put_varint(payload, r.entry.logical_start);
    put_varint(payload, r.entry.physical_start);
    put_varint_signed(payload, r.entry.stride);
    put_varint_signed(payload, r.entry.timestamp_base);
    put_varint_signed(payload, r.entry.timestamp_delta);
    if (!r.ts_exact) {
      for (std::uint32_t j = 0; j < r.entry.count; ++j) {
        const IndexEntry& e = entries[r.pos_start + static_cast<std::size_t>(j) * r.pos_stride];
        const std::int64_t predicted =
            r.entry.timestamp_base + static_cast<std::int64_t>(j) * r.entry.timestamp_delta;
        put_varint_signed(payload, e.timestamp_ns - predicted);
      }
    }
    run_entries += r.entry.count;
  }
  if (!scan.literals.empty()) {
    payload.push_back(static_cast<std::byte>(0x00));
    put_varint(payload, scan.literals.size());
    IndexEntry prev{};
    for (const std::uint32_t pos : scan.literals) {
      const IndexEntry& e = entries[pos];
      put_varint_signed(payload, static_cast<std::int64_t>(e.logical_offset - prev.logical_offset));
      put_varint_signed(payload, static_cast<std::int64_t>(e.length - prev.length));
      put_varint_signed(payload,
                        static_cast<std::int64_t>(e.physical_offset - prev.physical_offset));
      put_varint_signed(payload, e.timestamp_ns - prev.timestamp_ns);
      put_varint(payload, e.writer);
      prev = e;
    }
  }

  put_u32(out, kWireMagic);
  out.push_back(static_cast<std::byte>(kWireVersion));
  put_varint(out, entries.size());
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32c(out.data() + seg, out.size() - seg);
  put_u32(out, crc);

  if (stats) {
    counter("plfs.index.pattern.segments").add(1);
    counter("plfs.index.pattern.runs").add(scan.runs.size());
    counter("plfs.index.pattern.run_entries").add(run_entries);
    counter("plfs.index.pattern.literal_entries").add(scan.literals.size());
    counter("plfs.index.pattern.raw_bytes").add(entries.size() * IndexEntry::kSerializedSize);
    counter("plfs.index.pattern.wire_bytes").add(out.size() - seg);
  }
}

}  // namespace

PatternScan detect_patterns(const std::vector<IndexEntry>& entries, std::size_t min_run) {
  PatternScan scan;
  const std::size_t n = entries.size();
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    // Positions are u32 on the wire; absurdly large batches go literal.
    scan.literals.resize(n);
    for (std::size_t i = 0; i < n; ++i) scan.literals[i] = static_cast<std::uint32_t>(i);
    return scan;
  }
  std::unordered_map<std::uint32_t, OpenRun> open;
  open.reserve(64);
  for (std::size_t i = 0; i < n; ++i) {
    const IndexEntry& e = entries[i];
    const auto pos = static_cast<std::uint32_t>(i);
    if (e.length == 0) {  // defensive; writers never log empty extents
      scan.literals.push_back(pos);
      continue;
    }
    OpenRun& run = open[e.writer];
    if (!run.pos.empty()) {
      const std::int64_t d_logical = static_cast<std::int64_t>(e.logical_offset - run.last_logical);
      const std::uint32_t d_pos = pos - run.pos.back();
      const bool contiguous = e.length == run.record_len &&
                              e.physical_offset == run.last_physical + run.record_len;
      const bool arithmetic = run.pos.size() == 1 ||
                              (d_logical == run.stride && d_pos == run.pos_stride);
      if (contiguous && arithmetic) {
        if (run.pos.size() == 1) {
          run.stride = d_logical;
          run.pos_stride = d_pos;
        }
        run.pos.push_back(pos);
        run.last_logical = e.logical_offset;
        run.last_physical = e.physical_offset;
        continue;
      }
      close_run(entries, std::move(run), min_run, scan);
      run = OpenRun{};
    }
    run.pos.push_back(pos);
    run.record_len = e.length;
    run.last_logical = e.logical_offset;
    run.last_physical = e.physical_offset;
  }
  for (auto& [writer, run] : open) {
    if (!run.pos.empty()) close_run(entries, std::move(run), min_run, scan);
  }
  std::sort(scan.runs.begin(), scan.runs.end(),
            [](const PatternRun& a, const PatternRun& b) { return a.pos_start < b.pos_start; });
  std::sort(scan.literals.begin(), scan.literals.end());
  return scan;
}

void append_encoded(std::vector<std::byte>& out, const std::vector<IndexEntry>& entries,
                    WireFormat wire) {
  if (entries.empty()) return;
  if (wire == WireFormat::v1) {
    out.reserve(out.size() + entries.size() * IndexEntry::kSerializedSize);
    for (const auto& e : entries) append_serialized(out, e);
    return;
  }
  append_v2_segment(out, entries, /*stats=*/true);
}

std::vector<std::byte> encode_entries(const std::vector<IndexEntry>& entries, WireFormat wire) {
  std::vector<std::byte> out;
  append_encoded(out, entries, wire);
  return out;
}

std::uint64_t encoded_size(const std::vector<IndexEntry>& entries, WireFormat wire) {
  if (entries.empty()) return 0;
  if (wire == WireFormat::v1) return entries.size() * IndexEntry::kSerializedSize;
  std::vector<std::byte> tmp;
  append_v2_segment(tmp, entries, /*stats=*/false);
  return tmp.size();
}

namespace {

bool starts_with_magic(const std::byte* data, std::size_t size) {
  if (size < 4) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, data, 4);
  return magic == kWireMagic;
}

}  // namespace

bool wire_is_v2(const FragmentList& data) {
  if (data.size() < 4) return false;
  const auto bytes = data.to_bytes();
  return starts_with_magic(bytes.data(), bytes.size());
}

Result<std::vector<IndexEntry>> decode_entries_v2(const std::byte* data, std::size_t size) {
  const auto bad = [size](const std::string& what, std::uint64_t at) {
    return error(Errc::io_error, kErrPrefix + what + " at byte offset " + std::to_string(at) +
                                     " (" + std::to_string(size) + "-byte buffer)");
  };
  std::vector<IndexEntry> out;
  ByteReader r(data, size);
  while (r.remaining() > 0) {
    const std::size_t seg = r.offset();
    std::uint32_t magic = 0;
    if (!r.get_u32(magic) || magic != kWireMagic) return bad("bad segment magic", seg);
    std::uint8_t version = 0;
    if (!r.get_u8(version)) return bad("truncated segment header", r.offset());
    if (version != kWireVersion) {
      return bad("unsupported wire version " + std::to_string(version), seg + 4);
    }
    std::uint64_t count = 0;
    std::uint64_t payload_len = 0;
    if (!r.get_varint(count) || !r.get_varint(payload_len)) {
      return bad("truncated segment header", r.offset());
    }
    if (count == 0) return bad("empty segment", seg);
    if (count > std::numeric_limits<std::uint32_t>::max()) {
      return bad("implausible entry count " + std::to_string(count), seg);
    }
    const std::size_t payload_start = r.offset();
    if (payload_len > r.remaining() || r.remaining() - payload_len < 4) {
      return bad("segment payload overruns buffer", payload_start);
    }
    const std::size_t payload_end = payload_start + static_cast<std::size_t>(payload_len);

    // Integrity first: a bit flip anywhere in the segment (header included)
    // must be caught even where it would also confuse block parsing.
    std::uint32_t crc = 0;
    r.seek(payload_end);
    (void)r.get_u32(crc);
    if (crc != crc32c(data + seg, payload_end - seg)) return bad("crc mismatch", payload_end);
    const std::size_t seg_next = r.offset();

    std::vector<IndexEntry> seg_entries(count);
    std::vector<char> taken(count, 0);
    std::vector<IndexEntry> literals;
    std::size_t claimed = 0;
    ByteReader pr(data + payload_start, payload_len);
    const auto at = [payload_start](std::size_t rel) { return payload_start + rel; };
    while (pr.remaining() > 0) {
      const std::size_t block = pr.offset();
      std::uint8_t tag = 0;
      (void)pr.get_u8(tag);
      if (tag == 0x01 || tag == 0x02) {
        std::uint64_t writer = 0, pos_start = 0, pos_stride = 0, rcount = 0, record_len = 0;
        std::uint64_t logical_start = 0, physical_start = 0;
        std::int64_t stride = 0, ts_base = 0, ts_delta = 0;
        if (!pr.get_varint(writer) || !pr.get_varint(pos_start) || !pr.get_varint(pos_stride) ||
            !pr.get_varint(rcount) || !pr.get_varint(record_len) ||
            !pr.get_varint(logical_start) || !pr.get_varint(physical_start) ||
            !pr.get_varint_signed(stride) || !pr.get_varint_signed(ts_base) ||
            !pr.get_varint_signed(ts_delta)) {
          return bad("truncated pattern block", at(pr.offset()));
        }
        if (rcount == 0) return bad("empty pattern run", at(block));
        if (record_len == 0) return bad("zero-length pattern record", at(block));
        if (pos_stride == 0) return bad("zero position stride", at(block));
        if (writer > std::numeric_limits<std::uint32_t>::max()) {
          return bad("implausible writer id", at(block));
        }
        if (pos_start >= count || rcount - 1 > (count - 1 - pos_start) / pos_stride) {
          return bad("pattern positions out of range", at(block));
        }
        for (std::uint64_t j = 0; j < rcount; ++j) {
          IndexEntry e;
          const __int128 logical =
              static_cast<__int128>(logical_start) + static_cast<__int128>(j) * stride;
          if (logical < 0 || logical > static_cast<__int128>(kU64Max) - record_len) {
            return bad("extent overflow in pattern run", at(block));
          }
          const __int128 physical = static_cast<__int128>(physical_start) +
                                    static_cast<__int128>(j) * record_len;
          if (physical > static_cast<__int128>(kU64Max) - record_len) {
            return bad("extent overflow in pattern run", at(block));
          }
          __int128 ts = static_cast<__int128>(ts_base) + static_cast<__int128>(j) * ts_delta;
          if (tag == 0x02) {
            std::int64_t residual = 0;
            if (!pr.get_varint_signed(residual)) {
              return bad("truncated timestamp residuals", at(pr.offset()));
            }
            ts += residual;
          }
          if (ts < kI64Min || ts > kI64Max) return bad("timestamp overflow", at(block));
          e.logical_offset = static_cast<std::uint64_t>(logical);
          e.length = record_len;
          e.physical_offset = static_cast<std::uint64_t>(physical);
          e.timestamp_ns = static_cast<std::int64_t>(ts);
          e.writer = static_cast<std::uint32_t>(writer);
          const std::uint64_t pos = pos_start + j * pos_stride;
          if (taken[pos]) return bad("stream position claimed twice", at(block));
          taken[pos] = 1;
          seg_entries[pos] = e;
          ++claimed;
        }
      } else if (tag == 0x00) {
        std::uint64_t lcount = 0;
        if (!pr.get_varint(lcount)) return bad("truncated literal block", at(pr.offset()));
        if (lcount == 0) return bad("empty literal block", at(block));
        if (lcount > count) return bad("record count mismatch", at(block));
        IndexEntry prev{};
        for (std::uint64_t k = 0; k < lcount; ++k) {
          std::int64_t d_logical = 0, d_length = 0, d_physical = 0, d_ts = 0;
          std::uint64_t writer = 0;
          if (!pr.get_varint_signed(d_logical) || !pr.get_varint_signed(d_length) ||
              !pr.get_varint_signed(d_physical) || !pr.get_varint_signed(d_ts) ||
              !pr.get_varint(writer)) {
            return bad("truncated literal block", at(pr.offset()));
          }
          IndexEntry e;
          e.logical_offset = prev.logical_offset + static_cast<std::uint64_t>(d_logical);
          e.length = prev.length + static_cast<std::uint64_t>(d_length);
          e.physical_offset = prev.physical_offset + static_cast<std::uint64_t>(d_physical);
          e.timestamp_ns = prev.timestamp_ns + d_ts;
          if (writer > std::numeric_limits<std::uint32_t>::max()) {
            return bad("implausible writer id", at(block));
          }
          e.writer = static_cast<std::uint32_t>(writer);
          if (e.length == 0) return bad("zero-length record", at(block));
          if (e.logical_offset + e.length < e.logical_offset ||
              e.physical_offset + e.length < e.physical_offset) {
            return bad("extent overflow", at(block));
          }
          literals.push_back(e);
          prev = e;
        }
      } else {
        return bad("unknown block tag " + std::to_string(tag), at(block));
      }
    }
    if (claimed + literals.size() != count) {
      return bad("record count mismatch: blocks carry " +
                     std::to_string(claimed + literals.size()) + " of " + std::to_string(count),
                 seg);
    }
    std::size_t li = 0;
    for (std::size_t p = 0; p < count && li < literals.size(); ++p) {
      if (!taken[p]) seg_entries[p] = literals[li++];
    }
    out.insert(out.end(), seg_entries.begin(), seg_entries.end());
    r.seek(seg_next);
  }
  return out;
}

Result<std::vector<IndexEntry>> decode_entries(const FragmentList& data) {
  if (data.size() == 0) return std::vector<IndexEntry>{};
  const auto bytes = data.to_bytes();
  if (!starts_with_magic(bytes.data(), bytes.size())) return deserialize_entries(data);
  return decode_entries_v2(bytes.data(), bytes.size());
}

bool parse_wire_format(std::string_view name, WireFormat& out) {
  if (name == "v1") {
    out = WireFormat::v1;
    return true;
  }
  if (name == "v2") {
    out = WireFormat::v2;
    return true;
  }
  return false;
}

std::string wire_format_name(WireFormat wire) {
  switch (wire) {
    case WireFormat::v1: return "v1";
    case WireFormat::v2: return "v2";
  }
  return "unknown";
}

// --- PatternIndex ---

PatternIndex PatternIndex::from_sorted(const std::vector<IndexEntry>& sorted, bool compress) {
  PatternIndex idx;
  const std::vector<Mapping> mappings = resolve_sorted_entries(sorted, compress);
  idx.mapping_count_ = mappings.size();
  if (mappings.empty()) return idx;
  idx.logical_size_ = mappings.back().logical_offset + mappings.back().length;

  // Run the same detector the wire codec uses over the resolved mapping
  // set (in logical order, so every run's stride is positive).
  std::vector<IndexEntry> entries;
  entries.reserve(mappings.size());
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    const Mapping& m = mappings[i];
    entries.push_back(IndexEntry{m.logical_offset, m.length, m.physical_offset,
                                 static_cast<std::int64_t>(i), m.writer});
  }
  const PatternScan scan = detect_patterns(entries);
  std::vector<std::uint32_t> literal_positions = scan.literals;
  for (const auto& r : scan.runs) {
    // Non-overlapping logically-sorted input guarantees stride >= record
    // length; anything else would make arithmetic lookup self-overlapping,
    // so demote it (defensively) to literals.
    if (r.entry.stride < static_cast<std::int64_t>(r.entry.record_len)) {
      for (std::uint32_t j = 0; j < r.entry.count; ++j) {
        literal_positions.push_back(r.pos_start + j * r.pos_stride);
      }
      continue;
    }
    idx.runs_.push_back(r.entry);
  }
  std::sort(literal_positions.begin(), literal_positions.end());
  idx.literals_.reserve(literal_positions.size());
  for (const std::uint32_t pos : literal_positions) idx.literals_.push_back(mappings[pos]);
  std::sort(idx.runs_.begin(), idx.runs_.end(), [](const PatternEntry& a, const PatternEntry& b) {
    return a.logical_start < b.logical_start;
  });
  return idx;
}

PatternIndex PatternIndex::build(std::vector<IndexEntry> entries, bool compress) {
  std::sort(entries.begin(), entries.end(), entry_timestamp_less);
  return from_sorted(entries, compress);
}

std::vector<IndexView::Mapping> PatternIndex::lookup(std::uint64_t offset,
                                                     std::uint64_t len) const {
  std::vector<Mapping> out;
  if (len == 0) return out;
  const std::uint64_t end = offset + len;

  auto it = std::partition_point(literals_.begin(), literals_.end(), [offset](const Mapping& m) {
    return m.logical_offset + m.length <= offset;
  });
  for (; it != literals_.end() && it->logical_offset < end; ++it) {
    const std::uint64_t m_start = std::max(offset, it->logical_offset);
    const std::uint64_t m_end = std::min(end, it->logical_offset + it->length);
    out.push_back(Mapping{m_start, m_end - m_start, it->writer,
                          it->physical_offset + (m_start - it->logical_offset)});
  }

  for (const PatternEntry& p : runs_) {
    if (p.logical_start >= end) break;  // runs_ sorted by logical_start
    const auto stride = static_cast<std::uint64_t>(p.stride);
    const std::uint64_t run_end =
        p.logical_start + static_cast<std::uint64_t>(p.count - 1) * stride + p.record_len;
    if (run_end <= offset) continue;
    std::uint64_t j = offset > p.logical_start ? (offset - p.logical_start) / stride : 0;
    if (j < p.count && p.logical_start + j * stride + p.record_len <= offset) ++j;
    for (; j < p.count; ++j) {
      const std::uint64_t rec = p.logical_start + j * stride;
      if (rec >= end) break;
      const std::uint64_t m_start = std::max(offset, rec);
      const std::uint64_t m_end = std::min(end, rec + p.record_len);
      out.push_back(Mapping{m_start, m_end - m_start, p.writer,
                            p.physical_start + j * p.record_len + (m_start - rec)});
    }
  }

  std::sort(out.begin(), out.end(), [](const Mapping& a, const Mapping& b) {
    return a.logical_offset < b.logical_offset;
  });
  return out;
}

std::vector<IndexEntry> PatternIndex::to_entries() const {
  std::vector<IndexEntry> out;
  out.reserve(mapping_count_);
  for (const PatternEntry& p : runs_) {
    for (std::uint32_t j = 0; j < p.count; ++j) {
      IndexEntry e = p.expand(j);
      e.timestamp_ns = 0;
      out.push_back(e);
    }
  }
  for (const Mapping& m : literals_) {
    out.push_back(IndexEntry{m.logical_offset, m.length, m.physical_offset, 0, m.writer});
  }
  std::sort(out.begin(), out.end(), [](const IndexEntry& a, const IndexEntry& b) {
    return a.logical_offset < b.logical_offset;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].timestamp_ns = static_cast<std::int64_t>(i);
  }
  return out;
}

}  // namespace tio::plfs
