// Tests for the sharded execution layer: ShardPool (independent
// simulations spread across OS threads), ShardedEngine (coupled engines
// under conservative time windows), shard-local stats accumulation, and
// the multi-shard trace export.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "net/cluster.h"
#include "sim/engine.h"
#include "sim/sharded.h"

namespace tio::sim {
namespace {

TEST(ShardPool, RejectsInvalidShardCounts) {
  EXPECT_THROW(ShardPool{0}, std::invalid_argument);
  EXPECT_THROW(ShardPool{kMaxShards + 1}, std::invalid_argument);
  EXPECT_NO_THROW(ShardPool{1});
  EXPECT_NO_THROW(ShardPool{kMaxShards});
}

TEST(ShardPool, SerialModeRunsJobsInSubmissionOrder) {
  ShardPool pool(1);
  std::vector<int> order;
  for (int j = 0; j < 5; ++j) {
    pool.submit([&order, j] { order.push_back(j); });
  }
  pool.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ShardPool, RunsEveryJobAcrossShards) {
  ShardPool pool(4);
  std::vector<std::uint64_t> events(16, 0);
  for (int j = 0; j < 16; ++j) {
    // Each job owns one slot, so there is no cross-thread write sharing.
    pool.submit([&events, j] {
      Engine engine;
      for (int i = 0; i <= j; ++i) {
        engine.after(Duration::us(i), [] {});
      }
      engine.run();
      events[static_cast<std::size_t>(j)] = engine.events_processed();
    });
  }
  pool.run_all();
  for (int j = 0; j < 16; ++j) {
    EXPECT_EQ(events[static_cast<std::size_t>(j)], static_cast<std::uint64_t>(j) + 1)
        << "job " << j;
  }
}

TEST(ShardPool, RethrowsLowestIndexJobError) {
  ShardPool pool(2);
  pool.submit([] {});
  pool.submit([] { throw std::runtime_error("job one"); });
  pool.submit([] {});
  pool.submit([] { throw std::runtime_error("job three"); });
  try {
    pool.run_all();
    FAIL() << "expected run_all to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job one");
  }
}

TEST(ShardPool, CounterLocalValueIsolatesShards) {
  auto& c = counter("test.sharded.local_delta");
  std::vector<std::uint64_t> deltas(2, 0);
  ShardPool pool(2);
  for (int j = 0; j < 2; ++j) {
    pool.submit([&deltas, &c, j] {
      const std::uint64_t before = c.local_value();
      c.add(static_cast<std::uint64_t>(10 * (j + 1)));
      deltas[static_cast<std::size_t>(j)] = c.local_value() - before;
    });
  }
  pool.run_all();
  // Each shard's before/after delta sees only its own adds; the global
  // value still sums both.
  EXPECT_EQ(deltas[0], 10u);
  EXPECT_EQ(deltas[1], 20u);
}

TEST(ShardPool, PidBlocksAreDeterministicAcrossRuns) {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.clear();
  const auto run_pids = [] {
    std::vector<std::uint32_t> pids(6, 0);
    ShardPool pool(3);
    for (int j = 0; j < 6; ++j) {
      pool.submit(
          [&pids, j] { pids[static_cast<std::size_t>(j)] = trace::Tracer::instance().next_pid(); });
    }
    pool.run_all();
    return pids;
  };
  const std::vector<std::uint32_t> a = run_pids();
  tracer.clear();
  const std::vector<std::uint32_t> b = run_pids();
  EXPECT_EQ(a, b);
  // Every job draws from its own pre-reserved block keyed by submission
  // index, so pids cannot depend on thread interleaving.
  for (std::size_t j = 1; j < a.size(); ++j) {
    EXPECT_EQ(a[j] - a[0], static_cast<std::uint32_t>(j) * ShardPool::kPidsPerJob);
  }
  tracer.clear();
}

TEST(ShardedEngine, ValidatesOptionsAndAdoption) {
  ShardedEngine::Options bad;
  bad.shards = 0;
  EXPECT_THROW(ShardedEngine{bad}, std::invalid_argument);
  bad.shards = kMaxShards + 1;
  EXPECT_THROW(ShardedEngine{bad}, std::invalid_argument);
  bad.shards = 2;
  bad.lookahead = Duration::ns(0);
  EXPECT_THROW(ShardedEngine{bad}, std::invalid_argument);

  ShardedEngine::Options opts;
  opts.shards = 2;
  ShardedEngine se(opts);
  Engine a;
  Engine b;
  EXPECT_THROW(se.adopt(2, a), std::out_of_range);
  se.adopt(0, a);
  EXPECT_THROW(se.adopt(1, a), std::logic_error);  // duplicate adoption
  EXPECT_THROW(se.post(a, b, Duration::us(5), [] {}), std::logic_error);  // b not adopted
  se.adopt(1, b);
  // The conservative contract: no cross-engine effect below the lookahead.
  EXPECT_THROW(se.post(a, b, Duration::ns(1), [] {}), std::logic_error);
}

struct PingResult {
  std::int64_t a_end_ns;
  std::int64_t b_end_ns;
  std::uint64_t events;
  std::uint64_t messages;

  bool operator==(const PingResult&) const = default;
};

PingResult run_ping(std::size_t shards, int hops) {
  ShardedEngine::Options opts;
  opts.shards = shards;
  opts.lookahead = Duration::us(1);
  ShardedEngine se(opts);
  Engine a;
  Engine b;
  se.adopt(0, a);
  se.adopt(shards > 1 ? 1 : 0, b);
  struct Pinger {
    ShardedEngine* se;
    int left;
    void send(Engine& from, Engine& to) {
      if (left-- <= 0) return;
      se->post(from, to, Duration::us(3), [this, &from, &to] { send(to, from); });
    }
  } ping{&se, hops};
  ping.send(a, b);
  const std::uint64_t events = se.run();
  return PingResult{a.now().to_ns(), b.now().to_ns(), events, se.messages_delivered()};
}

TEST(ShardedEngine, CrossShardPingMatchesSerialPlacement) {
  // Simulated results are a pure function of the message pattern — the
  // shard placement (all-on-one vs one-per-shard) must not show through.
  const PingResult serial = run_ping(1, 50);
  const PingResult sharded = run_ping(2, 50);
  EXPECT_EQ(serial, sharded);
  EXPECT_EQ(serial.messages, 50u);
  EXPECT_GT(serial.b_end_ns, 0);
}

TEST(ShardedEngine, DeliversInAdoptThenSendOrder) {
  const auto run_order = [](std::size_t shards) {
    ShardedEngine::Options opts;
    opts.shards = shards;
    opts.lookahead = Duration::us(1);
    ShardedEngine se(opts);
    Engine a;
    Engine b;
    Engine dst;
    se.adopt(0, a);
    se.adopt(shards > 1 ? 1 : 0, b);
    se.adopt(shards > 2 ? 2 : 0, dst);
    std::vector<std::string> order;
    // Four messages landing at the same virtual time from two sources; the
    // serial boundary drain fixes the order as (src adopt index, send seq)
    // regardless of posting order or placement.
    se.post(b, dst, Duration::us(5), [&order] { order.push_back("b0"); });
    se.post(a, dst, Duration::us(5), [&order] { order.push_back("a0"); });
    se.post(a, dst, Duration::us(5), [&order] { order.push_back("a1"); });
    se.post(b, dst, Duration::us(5), [&order] { order.push_back("b1"); });
    se.run();
    return order;
  };
  const std::vector<std::string> want = {"a0", "a1", "b0", "b1"};
  EXPECT_EQ(run_order(1), want);
  EXPECT_EQ(run_order(2), want);
  EXPECT_EQ(run_order(3), want);
}

TEST(ClusterConfigLookahead, MinRemoteLatencyIsSmallestLink) {
  // Regression (lookahead soundness): min_remote_latency() used to be
  // min(fabric_latency, storage_net_latency), but co-resident ranks
  // interact at intra_node_latency() = fabric_latency / 4 — and nothing
  // forces a shard partition to be node-aligned, so the advertised
  // lookahead was 4x too optimistic on the fabric side. Every switched
  // topology preset costs at least one full fabric_latency hop, so the
  // intra-node path is the fabric minimum for every preset.
  net::ClusterConfig cfg;
  cfg.fabric_latency = Duration::us(3);
  cfg.storage_net_latency = Duration::us(7);
  EXPECT_LE(cfg.min_remote_latency().to_ns(), cfg.intra_node_latency().to_ns());
  EXPECT_EQ(cfg.min_remote_latency().to_ns(), Duration::ns(750).to_ns());
  cfg.storage_net_latency = Duration::us(2);  // still above fabric / 4
  EXPECT_EQ(cfg.min_remote_latency().to_ns(), Duration::ns(750).to_ns());
  cfg.storage_net_latency = Duration::ns(500);  // storage below the fabric
  EXPECT_EQ(cfg.min_remote_latency().to_ns(), Duration::ns(500).to_ns());
}

// The hazard pinned end-to-end: one node's ranks split across shards and
// exchange intra-node messages, with the engines coupled at exactly
// min_remote_latency(). Under the old lookahead, ShardedEngine::post
// rejects the sub-lookahead delay outright (logic_error) — this function
// throws and the test fails on the old code. Under the sound lookahead the
// result must be a pure function of the message pattern, independent of
// the shard count.
PingResult run_intra_node_ring(std::size_t shards, int hops) {
  net::ClusterConfig cfg;  // defaults: fabric 2 us -> intra-node 500 ns
  ShardedEngine::Options opts;
  opts.shards = shards;
  opts.lookahead = cfg.min_remote_latency();
  ShardedEngine se(opts);
  // Four "co-resident ranks"; with shards > 1 the node straddles shards.
  std::array<Engine, 4> ranks;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    se.adopt(i % shards, ranks[i]);
  }
  struct Ring {
    ShardedEngine* se;
    std::array<Engine, 4>* ranks;
    Duration delay;
    int left;
    void send(std::size_t at) {
      if (left-- <= 0) return;
      const std::size_t next = (at + 1) % ranks->size();
      se->post((*ranks)[at], (*ranks)[next], delay, [this, next] { send(next); });
    }
  } ring{&se, &ranks, cfg.intra_node_latency(), hops};
  ring.send(0);
  const std::uint64_t events = se.run();
  return PingResult{ranks[0].now().to_ns(), ranks[1].now().to_ns(), events,
                    se.messages_delivered()};
}

TEST(ClusterConfigLookahead, IntraNodeSplitAcrossShardsIsDeterministic) {
  const PingResult serial = run_intra_node_ring(1, 40);
  EXPECT_EQ(serial.messages, 40u);
  EXPECT_GT(serial.b_end_ns, 0);
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    EXPECT_EQ(run_intra_node_ring(shards, 40), serial) << "shards=" << shards;
  }
}

class ShardedTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Tracer::instance().clear();
    trace::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    trace::Tracer::instance().set_enabled(false);
    trace::Tracer::instance().clear();
  }
};

std::string run_traced_pool(std::size_t shards) {
  trace::Tracer& t = trace::Tracer::instance();
  ShardPool pool(shards);
  for (int j = 0; j < 4; ++j) {
    pool.submit([j] {
      trace::Tracer& tr = trace::Tracer::instance();
      const std::uint32_t name = tr.intern("sharded.span");
      const std::uint32_t cat = tr.intern("sharded");
      const std::uint32_t pid = tr.next_pid();
      const std::uint32_t rec = tr.begin_span(/*rank=*/j, name, cat, pid, 1000 * (j + 1));
      tr.end_span(j, rec, 1000 * (j + 1) + 500);
    });
  }
  pool.run_all();
  return t.to_chrome_json();
}

TEST_F(ShardedTraceTest, MultiShardExportIsDeterministicAndTagged) {
  const std::string a = run_traced_pool(2);
  trace::Tracer::instance().clear();
  trace::Tracer::instance().set_enabled(true);
  const std::string b = run_traced_pool(2);
  // Byte-identical across reruns at the same shard count: the export sorts
  // on (pid, tid, ts, open seq), none of which depend on thread timing.
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"otherData\":{\"shards\":2}"), std::string::npos);
  EXPECT_NE(a.find("sharded.span"), std::string::npos);
}

TEST_F(ShardedTraceTest, SerialExportKeepsLegacyFormat) {
  const std::string json = run_traced_pool(1);
  // The single-shard document is the pre-sharding wire format: no
  // otherData block, same trailer.
  EXPECT_EQ(json.find("otherData"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  EXPECT_NE(json.find("sharded.span"), std::string::npos);
}

}  // namespace
}  // namespace tio::sim
