#include "plfs/index_builder.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "common/stats.h"
#include "plfs/pattern.h"

namespace tio::plfs {

namespace {

std::int64_t host_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void IndexBuilder::add_run(std::shared_ptr<const std::vector<IndexEntry>> run) {
  if (!run || run->empty()) return;
  total_entries_ += run->size();
  runs_.push_back(std::move(run));
}

void IndexBuilder::add_entries(std::vector<IndexEntry> entries) {
  if (entries.empty()) return;
  add_run(std::make_shared<const std::vector<IndexEntry>>(std::move(entries)));
}

std::vector<IndexEntry> IndexBuilder::merged_run() const {
  const std::int64_t t0 = host_now_ns();

  // Materialize sorted views of each run; unsorted inputs get a sorted copy.
  std::vector<const std::vector<IndexEntry>*> sorted_runs;
  sorted_runs.reserve(runs_.size());
  std::vector<std::vector<IndexEntry>> fixups;
  for (const auto& run : runs_) {
    if (std::is_sorted(run->begin(), run->end(), entry_timestamp_less)) {
      sorted_runs.push_back(run.get());
    } else {
      fixups.push_back(*run);
      std::sort(fixups.back().begin(), fixups.back().end(), entry_timestamp_less);
      sorted_runs.push_back(&fixups.back());
    }
  }

  std::vector<IndexEntry> out;
  out.reserve(total_entries_);
  if (sorted_runs.size() == 1) {
    out = *sorted_runs[0];
  } else if (!sorted_runs.empty()) {
    // Binary min-heap of cursors, keyed by each cursor's current entry.
    struct Cursor {
      const std::vector<IndexEntry>* run;
      std::size_t pos;
    };
    std::vector<Cursor> heap;
    heap.reserve(sorted_runs.size());
    for (const auto* run : sorted_runs) heap.push_back(Cursor{run, 0});
    auto cursor_after = [](const Cursor& a, const Cursor& b) {
      // std::push_heap builds a max-heap; invert for min-first.
      return entry_timestamp_less((*b.run)[b.pos], (*a.run)[a.pos]);
    };
    std::make_heap(heap.begin(), heap.end(), cursor_after);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), cursor_after);
      Cursor& c = heap.back();
      out.push_back((*c.run)[c.pos]);
      if (++c.pos < c.run->size()) {
        std::push_heap(heap.begin(), heap.end(), cursor_after);
      } else {
        heap.pop_back();
      }
    }
  }

  static Counter& runs_merged = counter("plfs.index.runs_merged");
  static Counter& entries_merged = counter("plfs.index.entries_merged");
  static Counter& build_ns = counter("plfs.index.build_ns");
  runs_merged.add(runs_.size());
  entries_merged.add(out.size());
  build_ns.add(static_cast<std::uint64_t>(host_now_ns() - t0));
  return out;
}

IndexPtr IndexBuilder::build() const {
  const std::vector<IndexEntry> run = merged_run();
  const std::int64_t t0 = host_now_ns();
  IndexPtr built;
  switch (backend_) {
    case IndexBackend::btree:
      built = std::make_shared<const BTreeIndex>(BTreeIndex::from_sorted(run, compress_));
      break;
    case IndexBackend::flat:
      built = std::make_shared<const FlatIndex>(FlatIndex::from_sorted(run, compress_));
      break;
    case IndexBackend::pattern:
      built = std::make_shared<const PatternIndex>(PatternIndex::from_sorted(run, compress_));
      break;
  }
  static Counter& builds = counter("plfs.index.builds");
  static Counter& build_ns = counter("plfs.index.build_ns");
  builds.add(1);
  build_ns.add(static_cast<std::uint64_t>(host_now_ns() - t0));
  return built;
}

std::vector<std::byte> serialize_entries_with_trailer(const std::vector<IndexEntry>& entries,
                                                      WireFormat wire) {
  std::vector<std::byte> out = encode_entries(entries, wire);
  const std::size_t base = out.size();
  out.resize(base + kIndexTrailerSize);
  const std::uint64_t count = entries.size();
  std::memcpy(out.data() + base, &kIndexTrailerMagic, 4);
  std::memcpy(out.data() + base + 4, &count, 8);
  const std::uint32_t crc = crc32c(out.data(), base + 12);
  std::memcpy(out.data() + base + 12, &crc, 4);
  return out;
}

Result<std::vector<IndexEntry>> deserialize_trailed_entries(const FragmentList& data) {
  const auto bad = [&](const std::string& what, std::uint64_t at) {
    return error(Errc::io_error, "corrupt flattened index: " + what + " at byte offset " +
                                     std::to_string(at) + " (" + std::to_string(data.size()) +
                                     "-byte file)");
  };
  if (data.size() < kIndexTrailerSize) return bad("truncated trailer", 0);
  const auto bytes = data.to_bytes();
  const std::size_t base = bytes.size() - kIndexTrailerSize;
  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  std::uint32_t crc = 0;
  std::memcpy(&magic, bytes.data() + base, 4);
  std::memcpy(&count, bytes.data() + base + 4, 8);
  std::memcpy(&crc, bytes.data() + base + 12, 4);
  if (magic != kIndexTrailerMagic) return bad("bad trailer magic", base);
  const std::uint32_t want = crc32c(bytes.data(), base + 12);
  if (crc != want) return bad("crc mismatch", base + 12);
  // The record payload self-describes its wire format (v2 segments lead
  // with their own magic); `count` cross-checks whichever decoder ran.
  Result<std::vector<IndexEntry>> entries = error(Errc::io_error, "unreachable");
  if (base >= 4 && std::memcmp(bytes.data(), &kWireMagic, 4) == 0) {
    entries = decode_entries_v2(bytes.data(), base);
  } else {
    if (base % IndexEntry::kSerializedSize != 0) return bad("truncated trailer", base);
    FragmentList records;
    records.append(DataView::literal(std::vector<std::byte>(bytes.begin(), bytes.begin() + base)));
    entries = deserialize_entries(records);
  }
  if (!entries.ok()) return entries.status();
  if (entries->size() != count) return bad("record count mismatch", base + 4);
  return entries;
}

bool parse_index_backend(std::string_view name, IndexBackend& out) {
  if (name == "btree") {
    out = IndexBackend::btree;
    return true;
  }
  if (name == "flat") {
    out = IndexBackend::flat;
    return true;
  }
  if (name == "pattern") {
    out = IndexBackend::pattern;
    return true;
  }
  return false;
}

std::string index_backend_name(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::btree: return "btree";
    case IndexBackend::flat: return "flat";
    case IndexBackend::pattern: return "pattern";
  }
  return "unknown";
}

}  // namespace tio::plfs
