
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plfs/container.cc" "src/plfs/CMakeFiles/tio_plfs.dir/container.cc.o" "gcc" "src/plfs/CMakeFiles/tio_plfs.dir/container.cc.o.d"
  "/root/repo/src/plfs/index.cc" "src/plfs/CMakeFiles/tio_plfs.dir/index.cc.o" "gcc" "src/plfs/CMakeFiles/tio_plfs.dir/index.cc.o.d"
  "/root/repo/src/plfs/mpiio.cc" "src/plfs/CMakeFiles/tio_plfs.dir/mpiio.cc.o" "gcc" "src/plfs/CMakeFiles/tio_plfs.dir/mpiio.cc.o.d"
  "/root/repo/src/plfs/plfs.cc" "src/plfs/CMakeFiles/tio_plfs.dir/plfs.cc.o" "gcc" "src/plfs/CMakeFiles/tio_plfs.dir/plfs.cc.o.d"
  "/root/repo/src/plfs/vfs.cc" "src/plfs/CMakeFiles/tio_plfs.dir/vfs.cc.o" "gcc" "src/plfs/CMakeFiles/tio_plfs.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pfs/CMakeFiles/tio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tio_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
