# Empty dependencies file for ablation_flatten_threshold.
# This may be replaced when dependencies are built.
