// The PLFS middleware core: transformative I/O over any FsClient backend.
//
// Write path: each process's writes to a shared logical file are redirected
// to a private, append-only data log plus an index log inside the file's
// container (N-1 becomes N-N; random becomes sequential). Read path: the
// per-writer indices are aggregated into a global Index that maps logical
// extents back to the data logs. The collective aggregation strategies
// (Index Flatten, Parallel Index Read) live in plfs/mpiio.h; this layer
// provides the uncoordinated operations they are built from — which is also
// exactly the "Original PLFS Design" the paper measures against.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pfs/fs_client.h"
#include "plfs/container.h"
#include "plfs/index.h"
#include "plfs/index_builder.h"
#include "plfs/index_cache.h"
#include "plfs/mount.h"

namespace tio::plfs {

class WriteHandle;
class ReadHandle;

class Plfs {
 public:
  Plfs(pfs::FsClient& fs, PlfsMount mount);

  const PlfsMount& mount() const { return mount_; }
  pfs::FsClient& backend_fs() { return fs_; }
  sim::Engine& engine() { return fs_.engine(); }
  ContainerLayout layout(const std::string& logical) const {
    return ContainerLayout(mount_, logical);
  }

  // Opens a per-process write stream into the container, creating the
  // container skeleton as needed (tolerant of concurrent creators).
  sim::Task<Result<std::unique_ptr<WriteHandle>>> open_write(pfs::IoCtx ctx,
                                                             std::string logical, int rank);

  // Opens the logical file for read with a prebuilt global index (from one
  // of the aggregation strategies); with `index == nullptr`, falls back to
  // the Original design: this process reads every index log itself.
  sim::Task<Result<std::unique_ptr<ReadHandle>>> open_read(pfs::IoCtx ctx, std::string logical,
                                                           IndexPtr index = nullptr);

  // --- index-log plumbing (used by the strategies) ---
  // All index logs of the container, as (path, writer) pairs, discovered by
  // listing each subdir.
  struct IndexLogRef {
    std::string path;
    std::uint32_t writer;
  };
  sim::Task<Result<std::vector<IndexLogRef>>> list_index_logs(pfs::IoCtx ctx,
                                                              const std::string& logical);
  // Reads and parses one index log of `logical`'s container. The returned
  // vector is shared through the index cache: many simulated readers of the
  // same log reuse one host copy (each still pays the full simulated
  // open/read/close and per-entry CPU cost).
  sim::Task<Result<std::shared_ptr<const std::vector<IndexEntry>>>> read_index_log(
      pfs::IoCtx ctx, std::string logical, std::string path);
  // The Original design, one process: enumerate + read every index log.
  sim::Task<Result<IndexPtr>> build_index_serial(pfs::IoCtx ctx, std::string logical);
  // Flattened global index file (written at close by Index Flatten).
  sim::Task<Result<IndexPtr>> read_global_index(pfs::IoCtx ctx, const std::string& logical);
  sim::Task<Status> write_global_index(pfs::IoCtx ctx, const std::string& logical,
                                       const IndexView& index);

  // --- logical namespace operations ---
  sim::Task<Result<bool>> is_container(pfs::IoCtx ctx, const std::string& logical);
  // Fast logical size from the meta droppings (no index aggregation).
  sim::Task<Result<std::uint64_t>> logical_size(pfs::IoCtx ctx, const std::string& logical);
  // Union of backends' listings; containers are reported as files.
  sim::Task<Result<std::vector<pfs::DirEntry>>> readdir(pfs::IoCtx ctx, std::string logical_dir);
  // Creates a logical directory (on every backend, so shadows can nest).
  sim::Task<Status> mkdir(pfs::IoCtx ctx, std::string logical_dir);
  // Removes a logical file: tears the container down on every backend.
  sim::Task<Status> unlink(pfs::IoCtx ctx, const std::string& logical);

  // Ensures `dir` (a backend-physical path) exists; stat-first, tolerant of
  // concurrent creation.
  sim::Task<Status> ensure_dir(pfs::IoCtx ctx, std::string dir);

  // The shared index cache (built indices and parsed index logs); exposed
  // for tests and bench instrumentation.
  IndexCache& index_cache() { return cache_; }

  // Retries left before transient failures surface immediately (shared by
  // every op of this instance; see PlfsMount::retry_budget).
  std::uint64_t retry_budget_remaining() const { return budget_.remaining(); }

 private:
  friend class WriteHandle;
  friend class ReadHandle;

  sim::Task<Status> ensure_container_skeleton(pfs::IoCtx ctx, const ContainerLayout& layout);
  // Creates the shadow chain + subdir.k on an explicit backend (the
  // federation-ring walk of open_write probes these in order).
  sim::Task<Status> ensure_subdir_on(pfs::IoCtx ctx, const ContainerLayout& lay, std::size_t k,
                                     std::size_t backend);

  // Runs a freshly-made op per attempt under the mount's RetryPolicy:
  // transient failures back off with deterministic jitter keyed by op_key
  // until attempts or the instance-wide budget run out. A nonzero
  // op_timeout additionally races each attempt against a virtual-time
  // deadline (the in-flight attempt is abandoned, not cancelled). The ctx
  // attributes backoff/timeout trace spans to the issuing rank.
  template <typename MakeOp>
  auto with_retry(pfs::IoCtx ctx, std::uint64_t op_key, MakeOp make_op)
      -> decltype(make_op());
  // Writes all of `data`, resuming after transient failures and short
  // (torn) writes; progress resets the attempt counter.
  sim::Task<Result<std::uint64_t>> write_fully(pfs::IoCtx ctx, pfs::FileId fd,
                                               std::uint64_t offset, DataView data,
                                               std::uint64_t op_key);
  // Retrying wrappers over the backend primitives.
  sim::Task<Result<pfs::FileId>> open_retried(pfs::IoCtx ctx, std::string path,
                                              pfs::OpenFlags flags);
  sim::Task<Status> close_retried(pfs::IoCtx ctx, pfs::FileId fd);
  sim::Task<Result<FragmentList>> read_retried(pfs::IoCtx ctx, pfs::FileId fd,
                                               std::uint64_t offset, std::uint64_t len);
  sim::Task<Status> mkdir_retried(pfs::IoCtx ctx, std::string path);
  sim::Task<Status> rmdir_retried(pfs::IoCtx ctx, std::string path);
  sim::Task<Status> unlink_retried(pfs::IoCtx ctx, std::string path);
  sim::Task<Result<pfs::StatInfo>> stat_retried(pfs::IoCtx ctx, std::string path);
  sim::Task<Result<std::vector<pfs::DirEntry>>> readdir_retried(pfs::IoCtx ctx,
                                                                std::string path);

  pfs::FsClient& fs_;
  PlfsMount mount_;
  // Shares the structure of uncoordinated (Original-design) index builds:
  // real processes hold their copies in separate nodes' memory, but the
  // simulator holds all ranks in one address space, so N identical
  // million-mapping indices would exhaust host memory. Every rank still
  // pays the full simulated read + CPU cost. Unlike the old ad-hoc memo
  // maps (cleared wholesale on any write anywhere), the cache is
  // byte-budgeted and invalidated per container.
  IndexCache cache_;
  RetryBudget budget_;
};

// A single writer's open stream (one per process per logical file).
class WriteHandle {
 public:
  // Appends `data` destined for logical offset `logical_offset`.
  sim::Task<Status> write(std::uint64_t logical_offset, DataView data);
  // Forces buffered index records into the index log.
  sim::Task<Status> flush_index();
  // Flush + meta dropping + openhost-record removal + close. The handle is
  // unusable afterwards.
  sim::Task<Status> close();

  int rank() const { return rank_; }
  const ContainerLayout& layout() const { return layout_; }
  // Every entry this writer produced (basis of Index Flatten).
  const std::vector<IndexEntry>& entries() const { return entries_; }
  std::uint64_t logical_high_water() const { return high_water_; }
  std::uint64_t data_bytes() const { return data_offset_; }

 private:
  friend class Plfs;
  WriteHandle(Plfs& plfs, pfs::IoCtx ctx, ContainerLayout layout, int rank,
              pfs::FileId data_fd, pfs::FileId index_fd)
      : plfs_(&plfs), ctx_(ctx), layout_(std::move(layout)), rank_(rank), data_fd_(data_fd),
        index_fd_(index_fd) {}

  Plfs* plfs_;
  pfs::IoCtx ctx_;
  ContainerLayout layout_;
  int rank_;
  pfs::FileId data_fd_;
  pfs::FileId index_fd_;
  std::uint64_t data_offset_ = 0;
  std::uint64_t index_offset_ = 0;
  std::uint64_t high_water_ = 0;
  std::vector<IndexEntry> entries_;
  std::size_t flushed_ = 0;  // entries_[0..flushed_) already in the log
  bool closed_ = false;
};

// A reader's view of the logical file through a global index.
class ReadHandle {
 public:
  // Reads [offset, offset+len) of the logical file; short at EOF; unwritten
  // gaps inside the file read as zeros.
  sim::Task<Result<FragmentList>> read(std::uint64_t offset, std::uint64_t len);
  sim::Task<Status> close();

  const IndexView& index() const { return *index_; }
  std::uint64_t logical_size() const { return index_->logical_size(); }

 private:
  friend class Plfs;
  ReadHandle(Plfs& plfs, pfs::IoCtx ctx, ContainerLayout layout, IndexPtr index)
      : plfs_(&plfs), ctx_(ctx), layout_(std::move(layout)), index_(std::move(index)) {}

  sim::Task<Result<pfs::FileId>> data_fd(std::uint32_t writer);

  Plfs* plfs_;
  pfs::IoCtx ctx_;
  ContainerLayout layout_;
  IndexPtr index_;
  std::unordered_map<std::uint32_t, pfs::FileId> data_fds_;
  bool closed_ = false;
};

}  // namespace tio::plfs
