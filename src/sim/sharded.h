// Sharded deterministic execution across OS threads.
//
// Two drivers, one discipline:
//
//   * ShardPool — runs *independent* simulations (each its own Engine, the
//     common bench/test shape: one Rig per data point) on N shard threads.
//     Jobs are assigned round-robin by submission index (job j runs on
//     shard j mod N), stat/trace accumulation is shard-local
//     (common/stats.h, common/trace.h), and each job draws its engine
//     trace pids from a pre-reserved block keyed by j — so every simulated
//     result and exported artifact is a pure function of (seed, job list),
//     identical at every shard count. shards=1 runs jobs inline on the
//     calling thread with no pid scoping: exactly the legacy serial path,
//     byte-identical to the pre-sharding code.
//
//   * ShardedEngine — runs *coupled* engines under conservative time
//     windows. Engines are pinned to shards; cross-engine interaction goes
//     through post(), which carries a delay of at least the lookahead L
//     (in the cluster model, ClusterConfig::min_remote_latency() — no
//     cross-node effect travels faster than the fastest link). The driver
//     repeats: barrier; serially deliver queued messages and compute
//     T = min over engines of next_event_ns(), horizon = T + L; barrier;
//     every shard runs its engines through events with t < horizon.
//     Safety: an event at t in [T, horizon) can only post effects landing
//     at >= t + L >= T + L = horizon, i.e. never inside the current window
//     of any other engine — so intra-window execution with no
//     communication is equivalent to the global (time, seq) serial order.
//     Determinism: messages are collected per *source engine* in send
//     order and delivered at each boundary in (engine adopt index, send
//     seq) order — a total order independent of shard placement and
//     host-thread timing, so simulated results are identical for every
//     shard count, including 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <vector>

#include "common/function.h"
#include "common/units.h"

namespace tio::sim {

class Engine;

// Upper bound on shards for either driver (shard-local stats cells are
// statically sized; see common/stats.h).
inline constexpr std::size_t kMaxShards = 64;

// Deterministic pool of independent simulation jobs over N shard threads.
class ShardPool {
 public:
  // Trace pids reserved per job: a job may create up to this many Engines
  // (a Rig creates one; multi-rig jobs a handful).
  static constexpr std::uint32_t kPidsPerJob = 64;

  // Throws std::invalid_argument unless 1 <= shards <= kMaxShards.
  explicit ShardPool(std::size_t shards);

  std::size_t shards() const { return shards_; }

  // Queues a job. Jobs must be mutually independent: no shared mutable
  // state except the sharded stats/trace registries, and no nested pools.
  void submit(MoveFn<void()> job);

  // Runs every queued job to completion and clears the queue. Job j runs
  // on shard j mod shards(), in submission order within a shard. If jobs
  // threw, the exception of the lowest job index is rethrown after all
  // jobs finish. With shards() == 1 everything runs inline on the caller.
  void run_all();

 private:
  std::size_t shards_;
  std::vector<MoveFn<void()>> jobs_;
};

// Conservative-time-window driver for coupled engines.
class ShardedEngine {
 public:
  struct Options {
    std::size_t shards = 1;
    // Minimum virtual-time distance of any cross-engine effect; the window
    // width. Must be > 0 (use ClusterConfig::min_remote_latency() when the
    // engines model one cluster).
    Duration lookahead = Duration::us(1);
  };

  explicit ShardedEngine(const Options& options);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t shards() const { return shards_; }
  Duration lookahead() const { return lookahead_; }
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t messages_delivered() const { return messages_; }

  // Pins `engine` to `shard`. Adopt order defines the engine's id in the
  // cross-shard delivery order; adopt in a fixed order for reproducibility.
  void adopt(std::size_t shard, Engine& engine);

  // Queues `fn` to run on `dst` at src.now() + delay. Requires
  // delay >= lookahead() (the conservative contract) and both engines
  // adopted. Must be called from code running on `src` (or from the
  // calling thread before run()). Messages are delivered at the next
  // window boundary, ordered by (src adopt index, send order).
  void post(Engine& src, Engine& dst, Duration delay, MoveFn<void()> fn);

  // Runs all engines to global completion (no pending events, no queued
  // messages). Returns total events processed. Publishes engine counters
  // plus sim.engine.windows / sim.engine.cross_shard_events, then rethrows
  // the first pending error (by shard, then engine adopt order).
  std::uint64_t run();

 private:
  struct Message {
    Engine* dst;
    std::int64_t deliver_ns;
    MoveFn<void()> fn;
  };
  struct Slot {
    Engine* engine;
    std::size_t shard;
    std::uint64_t events_at_start = 0;
    // Send-ordered outbox; only the owning shard thread appends during a
    // window, drained serially at the barrier.
    std::vector<Message> outbox;
  };

  Slot& slot_of(const Engine& e);
  // Serial phase at each window boundary: deliver every outbox message,
  // then plan the next window (or set done_ when globally drained).
  void deliver_and_plan();
  void run_window(std::size_t shard);

  std::size_t shards_;
  Duration lookahead_;
  std::vector<Slot> slots_;  // adopt order
  std::vector<std::vector<std::size_t>> by_shard_;
  std::int64_t horizon_ns_ = 0;
  bool done_ = false;  // written in the serial phase, read after the barrier
  bool running_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t messages_ = 0;
  std::vector<std::exception_ptr> shard_errors_;
};

}  // namespace tio::sim
