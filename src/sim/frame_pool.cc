#include "sim/frame_pool.h"

#include <new>

#include "common/stats.h"

// Recycled frames bypass the allocator, so use-after-free of a pooled
// coroutine frame is invisible to ASan by default: the stale writer quietly
// corrupts whichever frame got the memory next. Poison cached blocks (minus
// the free-list link word) so the first stale touch faults at its source.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TIO_FRAME_POOL_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define TIO_FRAME_POOL_ASAN 1
#endif
#ifdef TIO_FRAME_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace tio::sim {
namespace {

constexpr std::size_t kNumClasses = FramePool::kMaxPooled / FramePool::kGranularity;

// Free blocks are chained through their own first word.
struct FreeNode {
  FreeNode* next;
};

struct PoolState {
  FreeNode* free_lists[kNumClasses] = {};
  std::size_t cached[kNumClasses] = {};
  FramePool::Stats totals;
  FramePool::Stats published;  // totals already flushed to the registry
};

PoolState& state() {
  thread_local PoolState s;
  return s;
}

// 0-based class index; callers have already excluded oversize requests.
std::size_t class_of(std::size_t bytes) {
  return (bytes + FramePool::kGranularity - 1) / FramePool::kGranularity - 1;
}

std::size_t class_bytes(std::size_t cls) { return (cls + 1) * FramePool::kGranularity; }

}  // namespace

void* FramePool::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
#ifdef TIO_FRAME_POOL_NO_RECYCLE
  return ::operator new(bytes);
#endif
  PoolState& s = state();
  if (bytes > kMaxPooled) {
    ++s.totals.oversize;
    return ::operator new(bytes);
  }
  const std::size_t cls = class_of(bytes);
  if (FreeNode* n = s.free_lists[cls]) {
#ifdef TIO_FRAME_POOL_ASAN
    __asan_unpoison_memory_region(n, class_bytes(cls));
#endif
    s.free_lists[cls] = n->next;
    --s.cached[cls];
    --s.totals.cached;
    ++s.totals.hits;
    return n;
  }
  ++s.totals.misses;
  return ::operator new(class_bytes(cls));
}

void FramePool::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
#ifdef TIO_FRAME_POOL_NO_RECYCLE
  ::operator delete(p);
  return;
#endif
  PoolState& s = state();
  if (bytes > kMaxPooled) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = class_of(bytes);
  if (s.cached[cls] >= kMaxCachedPerClass) {
    ++s.totals.dropped;
    ::operator delete(p);
    return;
  }
  auto* n = static_cast<FreeNode*>(p);
  n->next = s.free_lists[cls];
  s.free_lists[cls] = n;
  ++s.cached[cls];
  ++s.totals.cached;
#ifdef TIO_FRAME_POOL_ASAN
  // Leave the link word readable: LeakSanitizer cannot scan poisoned bytes,
  // and it needs the `next` chain to see cached blocks as reachable.
  __asan_poison_memory_region(reinterpret_cast<char*>(n) + sizeof(FreeNode),
                              class_bytes(cls) - sizeof(FreeNode));
#endif
}

FramePool::Stats FramePool::stats() { return state().totals; }

void FramePool::publish_counters() {
  PoolState& s = state();
  const auto flush = [](const char* name, std::uint64_t total, std::uint64_t& published) {
    if (total > published) {
      counter(name).add(total - published);
      published = total;
    }
  };
  flush("sim.engine.frame_pool_hits", s.totals.hits, s.published.hits);
  flush("sim.engine.frame_pool_misses", s.totals.misses, s.published.misses);
  flush("sim.engine.frame_pool_oversize", s.totals.oversize, s.published.oversize);
  flush("sim.engine.frame_pool_dropped", s.totals.dropped, s.published.dropped);
}

void FramePool::trim() noexcept {
  PoolState& s = state();
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    while (FreeNode* n = s.free_lists[cls]) {
#ifdef TIO_FRAME_POOL_ASAN
      __asan_unpoison_memory_region(n, class_bytes(cls));
#endif
      s.free_lists[cls] = n->next;
      ::operator delete(n);
      --s.cached[cls];
      --s.totals.cached;
    }
  }
}

}  // namespace tio::sim
