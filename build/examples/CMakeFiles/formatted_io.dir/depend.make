# Empty dependencies file for formatted_io.
# This may be replaced when dependencies are built.
