// Object storage target: one platter arm with seek/stream behaviour and a
// sequential-run detector standing in for server-side prefetch.
#pragma once

#include <cstdint>
#include <string>

#include "net/page_cache.h"
#include "pfs/config.h"
#include "pfs/types.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tio::pfs {

class Ost {
 public:
  Ost(sim::Engine& engine, const PfsConfig& config, std::string name)
      : engine_(engine), config_(config), arm_(engine, 1), name_(std::move(name)),
        cache_(config.ost_cache_bytes, config.stripe_unit) {}

  // One physical I/O of `len` bytes at `offset` within `object`. Queues for
  // the arm; seek/switch penalties are decided from the arm's position when
  // service begins:
  //   * continuation of the same object's last access (or a short forward
  //     gap, which prefetch covers) -> streaming, no seek;
  //   * different object -> object-switch penalty (scheduler-absorbed);
  //   * same object, random offset -> full seek.
  sim::Task<void> io(ObjectId object, std::uint64_t offset, std::uint64_t len, bool is_write);

  struct Stats {
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t seeks = 0;
    std::uint64_t switches = 0;
    std::uint64_t sequential = 0;
    std::uint64_t cache_hits = 0;
  };
  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  void drop_cache() { cache_.clear(); }

 private:
  sim::Engine& engine_;
  const PfsConfig& config_;
  sim::Semaphore arm_;
  std::string name_;
  net::PageCache cache_;  // server DRAM
  ObjectId last_object_ = kNoObject;
  std::uint64_t last_end_ = 0;
  Stats stats_;
};

}  // namespace tio::pfs
