#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/strutil.h"

namespace tio {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c ? "  " : "") << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int precision) {
  return str_printf("%.*f", precision, v);
}

std::string Table::eng(double v, int precision) {
  if (v >= 1e6) return str_printf("%.*fM", precision, v / 1e6);
  if (v >= 1e3) return str_printf("%.*fk", precision, v / 1e3);
  return str_printf("%.*f", precision, v);
}

}  // namespace tio
