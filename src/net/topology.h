// Topology-aware fabric: multi-link flow network with per-flow max-min
// fair sharing, plus the rack/ToR/fat-tree presets Cluster routes over.
//
// The flat NIC model (net/cluster.h) charges every cross-node message the
// sender uplink + latency + receiver downlink, which is exact for a
// non-blocking fabric but cannot express the scenarios the paper's
// asymmetry argument points at: incast into one rack during the
// parallel-index-read leader exchange, or an oversubscribed ToR uplink
// flipping the bottleneck from the storage network to the fabric. This
// layer models those:
//
//   * FlowNet — a set of capacitated links and a set of active flows, each
//     flow crossing an ordered list of links. Bandwidth is allocated by
//     max-min fairness: iterative water-filling freezes the flows of the
//     most-contended link at its equal share, subtracts, and repeats.
//     Rates are recomputed on every flow arrival and departure in virtual
//     time; between membership changes all rates are constant, so each
//     flow's completion instant is exact. Deterministic: bottleneck ties
//     break on the lowest link index, completions resume in flow-arrival
//     order, and event times are integer ns (ceil + 1 ns slack, like
//     sim::FairShareChannel).
//
//   * Topology — builds the preset link graph from a ClusterConfig and
//     routes node-to-node transfers through it:
//       - tor:      per-node host up/down links (nic_bandwidth) feeding a
//                   per-rack ToR whose core uplink carries
//                   nodes_per_rack * nic_bandwidth / oversubscription in
//                   each direction; the core itself is non-blocking.
//       - fat_tree: 2-tier leaf-spine; each rack's uplink capacity is
//                   split over `spines()` parallel rack<->spine links and
//                   a flow picks its spine by a deterministic hash of the
//                   (src rack, dst rack) pair — ECMP, collisions included.
//     Intra-node messages never touch a link (latency-only, exactly the
//     flat model's fabric_latency / 4 path). Hop latency is
//     fabric_latency per switch hop: 1 hop intra-rack, 3 hops cross-rack.
//     Unlike the flat model's store-and-forward, a topology transfer is
//     one cut-through flow at the path's max-min rate; the hop latency is
//     charged after the last byte.
//
// The `flat` preset never constructs this layer at all: Cluster keeps the
// original per-NIC FairShareChannel path, byte-identical to the
// pre-topology fabric.
//
// Observability: net.topo.* counters (message/byte split by locality
// class, per-link-class bytes routed) and trace spans per flow
// (net.topo.flow.intra_rack / .cross_rack) plus per-link busy periods
// (net.topo.link.busy) on the engine track.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/trace.h"
#include "net/cluster.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace tio::net {

class FlowNet {
 public:
  explicit FlowNet(sim::Engine& engine);

  // Registers a link; returns its dense index. Capacity must be > 0.
  std::uint32_t add_link(double capacity_bytes_per_sec);
  std::size_t num_links() const { return links_.size(); }
  double link_capacity(std::uint32_t link) const { return links_[link].capacity; }
  // Total bytes of flows routed over this link (counted at flow start).
  std::uint64_t link_bytes(std::uint32_t link) const { return links_[link].bytes; }

  // Awaitable: completes when `bytes` have moved along `path` (non-empty
  // list of link indices) under global max-min sharing. Zero-byte
  // transfers complete immediately.
  struct Awaiter {
    FlowNet* net;
    std::span<const std::uint32_t> path;
    std::uint64_t bytes;
    bool await_ready() const noexcept { return bytes == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(net->engine_.is_current() && "FlowNet awaited off its engine's shard");
      net->start_transfer(path, bytes, h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter transfer(std::span<const std::uint32_t> path, std::uint64_t bytes) {
    return Awaiter{this, path, bytes};
  }

  std::size_t active_flows() const { return flows_.size(); }
  // Current max-min rate of the flow admitted `seq`-th (tests); -1 when
  // that flow is no longer active.
  double rate_of(std::uint64_t seq) const;

  // Pure max-min water-filling, exposed for closed-form unit tests:
  // returns one rate per flow, where flow f crosses the links in
  // `paths[f]`. Repeatedly finds the bottleneck link (smallest
  // residual capacity / unfrozen flow count; ties on the lowest link
  // index), freezes its flows at that equal share, and subtracts them
  // from every link they cross. Flows with an empty path are
  // unconstrained and get an infinite rate.
  static std::vector<double> max_min_rates(const std::vector<double>& capacity,
                                           const std::vector<std::vector<std::uint32_t>>& paths);

  struct Stats {
    std::uint64_t flows = 0;
    std::uint64_t bytes = 0;
    std::uint64_t recomputes = 0;  // water-filling passes
    std::size_t max_concurrency = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Link {
    double capacity;
    std::uint64_t bytes = 0;
    std::uint32_t active = 0;       // flows currently crossing the link
    std::uint32_t busy_rec = trace::kNoRecord;  // open busy-period span
  };
  struct Flow {
    std::uint64_t seq;
    double remaining;  // bytes still to deliver
    double rate = 0;   // current max-min allocation, bytes/s
    std::coroutine_handle<> handle;
    std::uint32_t trace_rec = trace::kNoRecord;
    std::vector<std::uint32_t> path;
  };

  void start_transfer(std::span<const std::uint32_t> path, std::uint64_t bytes,
                      std::coroutine_handle<> h);
  // Moves every flow forward to now() at its current rate.
  void advance();
  // Water-fills rates for the current flow set and schedules the next
  // completion event (generation-guarded).
  void recompute_and_schedule();
  void on_completion_event(std::uint64_t generation);
  void link_started(std::uint32_t link);
  void link_finished(std::uint32_t link);

  sim::Engine& engine_;
  std::vector<Link> links_;
  std::vector<Flow> flows_;  // active flows in arrival order
  TimePoint last_update_;
  std::uint64_t seq_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale completion events
  Stats stats_;
  // Water-filling scratch, reused across events.
  std::vector<double> scratch_residual_;
  std::vector<std::uint32_t> scratch_load_;
  std::vector<char> scratch_frozen_;
};

// Preset link graphs over a ClusterConfig (topology != flat).
class Topology {
 public:
  Topology(sim::Engine& engine, const ClusterConfig& config);

  // One node-to-node message routed through the preset's links; the
  // behavior Cluster::fabric_transfer delegates to for non-flat presets.
  sim::Task<void> transfer(std::size_t from_node, std::size_t to_node, std::uint64_t bytes);

  // The links and latency a (from, to) message uses; exposed for tests.
  struct Route {
    enum class Class { intra_node, intra_rack, cross_rack };
    Class klass = Class::intra_node;
    std::uint32_t links[4] = {0, 0, 0, 0};
    std::size_t num_links = 0;
    Duration latency = Duration::zero();
  };
  Route route_of(std::size_t from_node, std::size_t to_node) const;

  FlowNet& net() { return net_; }
  const ClusterConfig& config() const { return config_; }
  // Fat-tree spine count: racks / 2, at least 1 (flat-ignored for tor).
  std::size_t spines() const { return spines_; }

  // Link-index accessors (tests and utilization dumps).
  std::uint32_t host_up(std::size_t node) const;
  std::uint32_t host_down(std::size_t node) const;
  std::uint32_t rack_up(std::size_t rack, std::size_t spine = 0) const;
  std::uint32_t rack_down(std::size_t rack, std::size_t spine = 0) const;

 private:
  sim::Engine& engine_;
  ClusterConfig config_;
  FlowNet net_;
  std::size_t spines_ = 1;  // parallel uplink planes per rack (fat_tree > 1)
};

// Preset names for flags and tables: "flat" | "tor" | "fat-tree".
std::string topology_kind_name(TopologyKind kind);
bool parse_topology_kind(const std::string& name, TopologyKind& out);

}  // namespace tio::net
