// Leased client metadata cache: TTL expiry, invalidation-on-mutation, and
// wholesale epoch revocation — plus the SimPfs integration (repeat opens
// served locally, revoke_leases forcing revalidation).
#include "pfs/meta_cache.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "pfs/sim_pfs.h"
#include "testutil.h"

namespace tio::pfs {
namespace {

void advance(sim::Engine& engine, Duration d) {
  test::run_task(engine, [](sim::Engine& e, Duration dur) -> sim::Task<void> {
    co_await e.sleep(dur);
  }(engine, d));
}

TEST(MetaCache, HitWithinLease) {
  sim::Engine engine;
  MetaCache cache(engine, Duration::ms(50));
  ASSERT_TRUE(cache.enabled());
  cache.insert(/*node=*/3, "/d/f", ObjectId{7}, /*is_dir=*/false, /*group_epoch=*/0);
  const MetaCache::Entry* e = cache.lookup(3, "/d/f", 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->oid, ObjectId{7});
  EXPECT_FALSE(e->is_dir);
  // The lease is per (node, path): another node has no entry.
  EXPECT_EQ(cache.lookup(4, "/d/f", 0), nullptr);
}

TEST(MetaCache, ExpiresAfterLease) {
  sim::Engine engine;
  MetaCache cache(engine, Duration::ms(50));
  cache.insert(0, "/d/f", ObjectId{7}, false, 0);
  advance(engine, Duration::ms(49));
  EXPECT_NE(cache.lookup(0, "/d/f", 0), nullptr);
  advance(engine, Duration::ms(1));  // exactly at insert + lease: expired
  const std::uint64_t expired_before = counter("pfs.meta_cache.expired").value();
  EXPECT_EQ(cache.lookup(0, "/d/f", 0), nullptr);
  EXPECT_EQ(counter("pfs.meta_cache.expired").value(), expired_before + 1);
  EXPECT_EQ(cache.size(), 0u);  // erased on the way out
}

TEST(MetaCache, InvalidationDropsEveryNode) {
  sim::Engine engine;
  MetaCache cache(engine, Duration::ms(50));
  cache.insert(0, "/d/f", ObjectId{7}, false, 0);
  cache.insert(1, "/d/f", ObjectId{7}, false, 0);
  cache.insert(0, "/d/g", ObjectId{8}, false, 0);
  cache.invalidate("/d/f");
  EXPECT_EQ(cache.lookup(0, "/d/f", 0), nullptr);
  EXPECT_EQ(cache.lookup(1, "/d/f", 0), nullptr);
  EXPECT_NE(cache.lookup(0, "/d/g", 0), nullptr);  // other paths untouched
}

TEST(MetaCache, EpochMismatchRevokes) {
  sim::Engine engine;
  MetaCache cache(engine, Duration::ms(50));
  cache.insert(0, "/d/f", ObjectId{7}, false, /*group_epoch=*/2);
  const std::uint64_t revoked_before = counter("pfs.meta_cache.epoch_revoked").value();
  // The group failed over since the lease was issued: entry untrustworthy.
  EXPECT_EQ(cache.lookup(0, "/d/f", /*group_epoch=*/3), nullptr);
  EXPECT_EQ(counter("pfs.meta_cache.epoch_revoked").value(), revoked_before + 1);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MetaCache, DisabledLeaseInsertsNothing) {
  sim::Engine engine;
  MetaCache cache(engine, Duration::zero());
  EXPECT_FALSE(cache.enabled());
  cache.insert(0, "/d/f", ObjectId{7}, false, 0);
  EXPECT_EQ(cache.size(), 0u);
}

// --- SimPfs integration -----------------------------------------------

net::ClusterConfig cache_cluster() {
  net::ClusterConfig c;
  c.nodes = 8;
  c.cores_per_node = 4;
  return c;
}

PfsConfig cache_pfs() {
  PfsConfig c;
  c.num_mds = 4;
  c.num_osts = 8;
  c.meta_lease = Duration::ms(50);
  return c;
}

TEST(MetaCacheSimPfs, RepeatOpenIsServedFromLease) {
  sim::Engine engine;
  net::Cluster cluster(engine, cache_cluster());
  SimPfs fs(cluster, cache_pfs());
  ASSERT_NE(fs.meta_cache(), nullptr);
  const IoCtx ctx{0, 0};
  test::run_task(engine, [](SimPfs& f, IoCtx c) -> sim::Task<void> {
    auto fd = co_await f.open(c, "/f", OpenFlags::wr_create());
    EXPECT_TRUE(fd.ok()) << fd.status();
    if (!fd.ok()) co_return;
    EXPECT_TRUE((co_await f.close(c, *fd)).ok());
    // First reopen misses (the create invalidated the path) and leases the
    // dentry; the second reopen is the hit under test.
    auto warm = co_await f.open(c, "/f", OpenFlags::ro());
    EXPECT_TRUE(warm.ok());
    if (!warm.ok()) co_return;
    EXPECT_TRUE((co_await f.close(c, *warm)).ok());
    const std::uint64_t hits_before = counter("pfs.meta_cache.hits").value();
    const std::int64_t t0 = f.engine().now().to_ns();
    auto again = co_await f.open(c, "/f", OpenFlags::ro());
    EXPECT_TRUE(again.ok());
    if (!again.ok()) co_return;
    const std::int64_t t1 = f.engine().now().to_ns();
    EXPECT_TRUE((co_await f.close(c, *again)).ok());
    // The reopen hit the lease: no MDS round trip on the open itself.
    EXPECT_EQ(counter("pfs.meta_cache.hits").value(), hits_before + 1);
    EXPECT_EQ(t1, t0);
  }(fs, ctx));
}

TEST(MetaCacheSimPfs, RevokeLeasesForcesRevalidation) {
  sim::Engine engine;
  net::Cluster cluster(engine, cache_cluster());
  SimPfs fs(cluster, cache_pfs());
  const IoCtx ctx{0, 0};
  test::run_task(engine, [](SimPfs& f, IoCtx c) -> sim::Task<void> {
    auto fd = co_await f.open(c, "/f", OpenFlags::wr_create());
    EXPECT_TRUE(fd.ok()) << fd.status();
    if (!fd.ok()) co_return;
    EXPECT_TRUE((co_await f.close(c, *fd)).ok());
    auto warm = co_await f.open(c, "/f", OpenFlags::ro());  // leases the dentry
    EXPECT_TRUE(warm.ok());
    if (!warm.ok()) co_return;
    EXPECT_TRUE((co_await f.close(c, *warm)).ok());
    // Fail over every group: all outstanding leases are revoked wholesale.
    for (std::size_t g = 0; g < 4; ++g) f.revoke_leases(g);
    const std::uint64_t revoked_before = counter("pfs.meta_cache.epoch_revoked").value();
    const std::int64_t t0 = f.engine().now().to_ns();
    auto again = co_await f.open(c, "/f", OpenFlags::ro());
    EXPECT_TRUE(again.ok());
    if (!again.ok()) co_return;
    const std::int64_t t1 = f.engine().now().to_ns();
    EXPECT_TRUE((co_await f.close(c, *again)).ok());
    EXPECT_EQ(counter("pfs.meta_cache.epoch_revoked").value(), revoked_before + 1);
    EXPECT_GT(t1, t0);  // revalidation paid the MDS round trip again
  }(fs, ctx));
}

}  // namespace
}  // namespace tio::pfs
