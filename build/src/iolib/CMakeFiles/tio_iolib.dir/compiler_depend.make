# Empty compiler generated dependencies file for tio_iolib.
# This may be replaced when dependencies are built.
