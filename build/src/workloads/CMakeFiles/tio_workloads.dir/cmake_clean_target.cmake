file(REMOVE_RECURSE
  "libtio_workloads.a"
)
