// Formatting libraries over PLFS: the TinyNC and TinyHDF layers.
//
// The paper notes that applications often do I/O through data-formatting
// libraries (pnetcdf, HDF5) which dictate the access pattern, and that PLFS
// can intercept those calls transparently. This example runs both mini
// formatting layers over PLFS and over the raw PFS and reports how each
// pattern fares — including the scattered small-record metadata writes that
// make HDF5-style files hard on shared-file semantics.
//
//   ./formatted_io [--procs 256] [--data-mib 256]
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  FlagSet flags("formatted_io: TinyNC / TinyHDF over PLFS vs direct");
  auto* procs = flags.add_i64("procs", 256, "processes");
  auto* data_mib = flags.add_i64("data-mib", 256, "total dataset size (MiB)");
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const int n = static_cast<int>(*procs);
  const std::uint64_t total = static_cast<std::uint64_t>(*data_mib) << 20;

  Table table({"library / pattern", "target", "write MB/s", "read MB/s"});
  struct Row {
    std::string name;
    JobSpec spec;
  };
  std::vector<Row> rows;
  // TinyNC: header + large contiguous per-rank slabs of 6 variables.
  rows.push_back({"TinyNC (pnetcdf-like, large slabs)", pixie3d(n, total / n, 6, {})});
  // TinyHDF: superblock + chunked dataset + scattered 64 B chunk records.
  rows.push_back({"TinyHDF (HDF5-like, chunked+btree)", aramco(n, total, 512_KiB, {})});

  for (auto& row : rows) {
    for (const Access access : {Access::plfs_n1, Access::direct_n1}) {
      testbed::Rig rig({.cluster = testbed::lanl_cluster(), .pfs = testbed::lanl_pfs(4)});
      row.spec.target.access = access;
      row.spec.drop_caches_before_read = true;
      const JobResult r = run_job(rig, n, row.spec);
      table.add_row({row.name, std::string(access_name(access)),
                     Table::num(r.write.effective_bw() / 1e6, 0),
                     Table::num(r.read.effective_bw() / 1e6, 0)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nBoth layers parse their own on-disk headers on read and verify every\n"
      "byte; PLFS absorbs the unaligned metadata records into its logs.\n");
  return 0;
}
