#include "net/cluster.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace tio::net {
namespace {

ClusterConfig small_config() {
  ClusterConfig c;
  c.nodes = 4;
  c.cores_per_node = 2;
  c.nic_bandwidth = 1e9;
  c.fabric_latency = Duration::us(2);
  c.storage_net_bandwidth = 1e8;
  c.storage_nic_bandwidth = 1e8;
  return c;
}

TEST(Cluster, ConfigSanity) {
  sim::Engine e;
  Cluster c(e, small_config());
  EXPECT_EQ(c.nodes(), 4u);
  EXPECT_EQ(c.config().total_cores(), 8u);
}

TEST(Cluster, ZeroNodesThrows) {
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(Cluster(e, cfg), std::invalid_argument);
}

TEST(Cluster, FabricTransferChargesLatencyPlusBandwidth) {
  sim::Engine e;
  Cluster c(e, small_config());
  test::run_task(e, c.fabric_transfer(0, 1, 1000000));  // 1 MB at 1 GB/s
  // Store-and-forward: 1 ms out + 2 us + 1 ms in (the channel rounds each
  // completion up by <= 2 ns).
  EXPECT_NEAR(static_cast<double>(e.now().to_ns()),
              static_cast<double>(Duration::ms(2).to_ns() + Duration::us(2).to_ns()), 10.0);
}

TEST(Cluster, IntraNodeTransferIsLatencyOnly) {
  sim::Engine e;
  Cluster c(e, small_config());
  test::run_task(e, c.fabric_transfer(2, 2, 1000000000));
  EXPECT_LT(e.now().to_ns(), Duration::us(1).to_ns());
}

TEST(Cluster, BadNodeIndexThrows) {
  sim::Engine e;
  Cluster c(e, small_config());
  bool threw = false;
  e.spawn([](Cluster& cl, bool& out) -> sim::Task<void> {
    try {
      co_await cl.fabric_transfer(0, 99, 10);
    } catch (const std::out_of_range&) {
      out = true;
    }
  }(c, threw));
  e.run();
  EXPECT_TRUE(threw);
}

TEST(Cluster, ConcurrentSendersShareSenderNic) {
  sim::Engine e;
  Cluster c(e, small_config());
  // Two 1 MB messages from node 0 to nodes 1 and 2 share node 0's uplink:
  // 2 MB through 1 GB/s NIC ≈ 2 ms before receive legs.
  double done1 = 0, done2 = 0;
  auto send = [](Cluster& cl, std::size_t to, double* out) -> sim::Task<void> {
    co_await cl.fabric_transfer(0, to, 1000000);
    *out = cl.engine().now().to_seconds();
  };
  e.spawn(send(c, 1, &done1));
  e.spawn(send(c, 2, &done2));
  e.run();
  EXPECT_NEAR(done1, 0.003, 1e-4);  // 2 ms shared uplink + 1 ms receive
  EXPECT_NEAR(done2, 0.003, 1e-4);
}

TEST(Cluster, StorageNetIsSharedAcrossNodes) {
  sim::Engine e;
  Cluster c(e, small_config());
  // 4 streams of 25 MB into a 100 MB/s pipe: all finish at ~1 s.
  int finished = 0;
  auto push = [](Cluster& cl, int* n) -> sim::Task<void> {
    co_await cl.storage_net().transfer(25000000);
    ++*n;
  };
  for (int i = 0; i < 4; ++i) e.spawn(push(c, &finished));
  e.run();
  EXPECT_EQ(finished, 4);
  EXPECT_NEAR(e.now().to_seconds(), 1.0, 1e-3);
}

TEST(Cluster, PerNodePageCachesAreIndependent) {
  sim::Engine e;
  Cluster c(e, small_config());
  c.page_cache(0).fill(7, 0, 1_MiB);
  EXPECT_GT(c.page_cache(0).lookup(7, 0, 1_MiB), 0u);
  EXPECT_EQ(c.page_cache(1).lookup(7, 0, 1_MiB), 0u);
}

// --- ClusterConfig::validate — one rejection per constraint, so a config
// typo (a zeroed bandwidth, a rack count that leaves ragged racks) fails
// at construction instead of producing division-by-zero rates mid-run.

TEST(ClusterConfigValidate, AcceptsTheDefaultsAndSmallConfig) {
  EXPECT_NO_THROW(ClusterConfig{}.validate());
  EXPECT_NO_THROW(small_config().validate());
}

TEST(ClusterConfigValidate, RejectsZeroCoresPerNode) {
  ClusterConfig c = small_config();
  c.cores_per_node = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ClusterConfigValidate, RejectsNonPositiveNicBandwidth) {
  ClusterConfig c = small_config();
  c.nic_bandwidth = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.nic_bandwidth = -1e9;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ClusterConfigValidate, RejectsNonPositiveStorageNetBandwidth) {
  ClusterConfig c = small_config();
  c.storage_net_bandwidth = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ClusterConfigValidate, RejectsNonPositiveStorageNicBandwidth) {
  ClusterConfig c = small_config();
  c.storage_nic_bandwidth = -1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ClusterConfigValidate, RejectsNonPositivePageCacheBandwidth) {
  ClusterConfig c = small_config();
  c.page_cache_bandwidth = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ClusterConfigValidate, RejectsNonPositiveLatencies) {
  ClusterConfig c = small_config();
  c.fabric_latency = Duration::zero();
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.storage_net_latency = Duration::ns(-5);
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ClusterConfigValidate, RejectsZeroRacks) {
  ClusterConfig c = small_config();
  c.racks = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ClusterConfigValidate, RejectsRaggedRackGeometry) {
  ClusterConfig c = small_config();  // 4 nodes
  c.racks = 3;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.racks = 2;
  EXPECT_NO_THROW(c.validate());
}

TEST(ClusterConfigValidate, RejectsNonPositiveOversubscription) {
  ClusterConfig c = small_config();
  c.oversubscription = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.oversubscription = -2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ClusterConfigValidate, ClusterConstructorRunsValidation) {
  sim::Engine e;
  ClusterConfig c = small_config();
  c.nic_bandwidth = 0;
  EXPECT_THROW(Cluster(e, c), std::invalid_argument);
}

}  // namespace
}  // namespace tio::net
