file(REMOVE_RECURSE
  "CMakeFiles/tio_testbed.dir/testbed.cc.o"
  "CMakeFiles/tio_testbed.dir/testbed.cc.o.d"
  "libtio_testbed.a"
  "libtio_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
