// Ablation: Index Flatten's buffering threshold.
//
// Flatten only triggers when every writer buffered at most `threshold`
// entries. This sweep shows the trade the paper describes in Section IV-A:
// as more entries are gathered at close, write-close time grows while
// read-open time stays flat (one global-index read + broadcast). Past the
// threshold, flatten is skipped and read-open falls back to Parallel Index
// Read pricing.
#include "bench_util.h"

#include "plfs/mpiio.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  FlagSet flags("ablation_flatten_threshold: close vs open cost of Index Flatten");
  auto* procs = flags.add_i64("procs", 256, "writer processes");
  auto* threshold = flags.add_i64("threshold", 256, "flatten threshold (entries/writer)");
  auto* shards_flag = bench::add_shards_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const std::size_t shards = bench::shards_or_die(*shards_flag);

  bench::print_header("Ablation — Index Flatten threshold",
                      "Section IV-A: flatten trades write-close time for read-open time");
  // Each entry count is an independent rig/simulation; the pool spreads
  // rows across shard threads in the serial bench's submission order.
  const std::vector<int> entry_counts = {16, 64, 256, 1024};
  struct Cell {
    double close_s, open_s;
  };
  std::vector<Cell> cells(entry_counts.size());
  sim::ShardPool pool(shards);
  const int nprocs = static_cast<int>(*procs);
  const std::int64_t thresh = *threshold;
  for (std::size_t i = 0; i < entry_counts.size(); ++i) {
    const int entries = entry_counts[i];
    pool.submit([&cells, i, entries, nprocs, thresh] {
      testbed::Rig rig(bench::lanl_rig());
      rig.mount().flatten_threshold = static_cast<std::size_t>(thresh);
      plfs::Plfs plfs(rig.pfs(), rig.mount());
      const bool expect_flat = entries <= thresh;

      JobSpec spec;
      spec.file = "thresh";
      spec.ops = strided_ops(static_cast<std::uint64_t>(entries) * 64_KiB, 64_KiB);
      spec.target.flatten_on_close = true;
      spec.do_read = false;
      // Use a dedicated Plfs with the adjusted mount.
      TargetFactory factory(plfs, rig.direct_dir());
      double close_s = 0, open_s = 0;
      mpi::run_spmd(rig.cluster(), nprocs, [&](mpi::Comm comm) -> sim::Task<void> {
        auto file = co_await plfs::MpiFile::open_write(plfs, comm, "/thresh");
        if (!file.ok()) throw std::runtime_error(file.status().to_string());
        for (const auto& op : spec.ops(comm.rank(), comm.size())) {
          (void)co_await (*file)->write(op.offset, DataView::pattern(1, op.offset, op.len));
        }
        co_await comm.barrier();
        const TimePoint t0 = comm.engine().now();
        (void)co_await (*file)->close_write(/*flatten=*/true);
        if (comm.rank() == 0) close_s = (comm.engine().now() - t0).to_seconds();

        const TimePoint t1 = comm.engine().now();
        const auto strategy =
            expect_flat ? plfs::ReadStrategy::index_flatten : plfs::ReadStrategy::parallel_read;
        auto rf = co_await plfs::MpiFile::open_read(plfs, comm, "/thresh", strategy);
        if (!rf.ok()) throw std::runtime_error(rf.status().to_string());
        if (comm.rank() == 0) open_s = (comm.engine().now() - t1).to_seconds();
        (void)co_await (*rf)->close_read();
      });
      cells[i] = Cell{close_s, open_s};
    });
  }
  pool.run_all();

  Table t({"entries/writer", "flattened?", "close (s)", "read open (s)"});
  for (std::size_t i = 0; i < entry_counts.size(); ++i) {
    t.add_row({std::to_string(entry_counts[i]),
               entry_counts[i] <= thresh ? "yes" : "no (fallback)",
               Table::num(cells[i].close_s, 3), Table::num(cells[i].open_s, 3)});
  }
  t.print(std::cout);
  bench::print_sim_counters();
  return 0;
}
