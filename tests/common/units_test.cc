#include "common/units.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tio {
namespace {

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(50_MiB, 50ull * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1ull << 30);
  EXPECT_EQ(1_GB, 1000000000ull);
}

TEST(Duration, ConstructorsAndConversions) {
  EXPECT_EQ(Duration::us(3).to_ns(), 3000);
  EXPECT_EQ(Duration::ms(2).to_ns(), 2000000);
  EXPECT_EQ(Duration::sec(1).to_ns(), 1000000000);
  EXPECT_DOUBLE_EQ(Duration::ms(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::us(1500).to_ms(), 1.5);
  EXPECT_EQ(Duration::seconds(0.5).to_ns(), 500000000);
}

TEST(Duration, Arithmetic) {
  const auto d = Duration::ms(10) + Duration::us(500) - Duration::us(200);
  EXPECT_EQ(d.to_ns(), 10300000);
  EXPECT_EQ((Duration::ms(3) * 4).to_ns(), 12000000);
  EXPECT_EQ((Duration::ms(10) / 4).to_ns(), 2500000);
  EXPECT_LT(Duration::us(1), Duration::ms(1));
}

TEST(TimePoint, Arithmetic) {
  const auto t0 = TimePoint::from_ns(100);
  const auto t1 = t0 + Duration::ns(50);
  EXPECT_EQ(t1.to_ns(), 150);
  EXPECT_EQ((t1 - t0).to_ns(), 50);
  EXPECT_LT(t0, t1);
}

TEST(TransferTime, BasicRates) {
  // 1 MiB at 1 MiB/s = 1 s.
  EXPECT_EQ(transfer_time(1_MiB, static_cast<double>(1_MiB)).to_ns(), 1000000000);
  EXPECT_EQ(transfer_time(0, 100.0), Duration::zero());
  // Nonzero transfers always take at least 1 ns.
  EXPECT_GE(transfer_time(1, 1e18).to_ns(), 1);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowAndBetweenInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const auto v = r.between(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  const Rng base(77);
  Rng f1 = base.fork(1);
  Rng f1b = base.fork(1);
  Rng f2 = base.fork(2);
  EXPECT_EQ(f1.next(), f1b.next());
  EXPECT_NE(f1.next(), f2.next());
}

TEST(Hash, SplitmixAndCombineAreStable) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace tio
