#include "net/cluster.h"

#include <stdexcept>

#include "common/strutil.h"
#include "net/topology.h"

namespace tio::net {

void ClusterConfig::validate() const {
  if (nodes == 0) throw std::invalid_argument("Cluster: zero nodes");
  if (cores_per_node == 0) throw std::invalid_argument("Cluster: zero cores_per_node");
  if (nic_bandwidth <= 0) throw std::invalid_argument("Cluster: nic_bandwidth must be > 0");
  if (storage_net_bandwidth <= 0) {
    throw std::invalid_argument("Cluster: storage_net_bandwidth must be > 0");
  }
  if (storage_nic_bandwidth <= 0) {
    throw std::invalid_argument("Cluster: storage_nic_bandwidth must be > 0");
  }
  if (page_cache_bandwidth <= 0) {
    throw std::invalid_argument("Cluster: page_cache_bandwidth must be > 0");
  }
  if (!(fabric_latency > Duration::zero())) {
    throw std::invalid_argument("Cluster: fabric_latency must be > 0");
  }
  if (!(storage_net_latency > Duration::zero())) {
    throw std::invalid_argument("Cluster: storage_net_latency must be > 0");
  }
  if (racks == 0) throw std::invalid_argument("Cluster: zero racks");
  if (nodes % racks != 0) {
    throw std::invalid_argument("Cluster: racks must evenly divide nodes");
  }
  if (oversubscription <= 0) {
    throw std::invalid_argument("Cluster: oversubscription must be > 0");
  }
}

Cluster::Cluster(sim::Engine& engine, ClusterConfig config)
    : engine_(engine), config_(config) {
  config_.validate();
  nic_out_.reserve(config_.nodes);
  nic_in_.reserve(config_.nodes);
  caches_.reserve(config_.nodes);
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    nic_out_.push_back(std::make_unique<sim::FairShareChannel>(
        engine_, config_.nic_bandwidth, config_.nic_bandwidth,
        str_printf("nic-out-%zu", n)));
    nic_in_.push_back(std::make_unique<sim::FairShareChannel>(
        engine_, config_.nic_bandwidth, config_.nic_bandwidth,
        str_printf("nic-in-%zu", n)));
    caches_.push_back(std::make_unique<PageCache>(config_.page_cache_per_node,
                                                  config_.page_cache_block));
  }
  storage_net_ = std::make_unique<sim::FairShareChannel>(
      engine_, config_.storage_net_bandwidth, config_.storage_nic_bandwidth,
      "storage-net");
  if (config_.topology != TopologyKind::flat) {
    topo_ = std::make_unique<Topology>(engine_, config_);
  }
}

Cluster::~Cluster() = default;

sim::Task<void> Cluster::fabric_transfer(std::size_t from_node, std::size_t to_node,
                                         std::uint64_t bytes) {
  if (from_node >= config_.nodes || to_node >= config_.nodes) {
    throw std::out_of_range("Cluster::fabric_transfer: bad node index");
  }
  if (topo_) {
    co_await topo_->transfer(from_node, to_node, bytes);
    co_return;
  }
  if (from_node == to_node) {
    // Shared-memory transport: latency only, no NIC involvement.
    co_await engine_.sleep(config_.fabric_latency / 4);
    co_return;
  }
  co_await nic_out_[from_node]->transfer(bytes);
  co_await engine_.sleep(config_.fabric_latency);
  co_await nic_in_[to_node]->transfer(bytes);
}

}  // namespace tio::net
