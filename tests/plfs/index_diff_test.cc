// Differential tests: FlatIndex and PatternIndex vs BTreeIndex (the
// correctness oracle).
//
// Unit level: identical randomized overlapping/striding write pools are fed
// to every backend; lookup() results, logical_size(), and the compressed
// mapping set itself must be identical. The pools respect the simulator's
// invariant that each writer's timestamps increase with its physical
// offsets (a writer's log is appended in time order) — under it all
// backends produce the same canonical maximally-compressed mapping set, so
// the comparison is exact, not just byte-equivalent.
//
// Strategy level: a strided N-1 file is aggregated through all three
// ReadStrategy values with each backend (with and without an injected
// fault plan); every (strategy, backend) combination must expand to
// byte-identical lookup results.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "localfs/mem_fs.h"
#include "pfs/faulty_fs.h"
#include "pfs/sim_pfs.h"
#include "plfs/index.h"
#include "plfs/index_builder.h"
#include "plfs/mpiio.h"
#include "plfs/pattern.h"

namespace tio::plfs {
namespace {

struct Pool {
  std::vector<IndexEntry> entries;  // shuffled
  std::uint64_t domain = 0;         // all logical offsets < domain
};

// Overlapping + strided writes from several writers. Timestamps increase
// globally (so per-writer monotone), physical offsets accumulate per
// writer — the same shape WriteHandle produces.
Pool random_pool(std::uint64_t seed, int writers, int ops) {
  Rng rng(seed);
  Pool pool;
  pool.domain = 1 << 20;
  std::vector<std::uint64_t> phys(writers, 0);
  for (int op = 0; op < ops; ++op) {
    const auto writer = static_cast<std::uint32_t>(rng.below(writers));
    std::uint64_t off;
    std::uint64_t len;
    switch (rng.below(3)) {
      case 0:  // strided record
        len = 4096;
        off = rng.below(pool.domain / len) * len;
        break;
      case 1:  // large overwrite
        len = 1 + rng.below(64 << 10);
        off = rng.below(pool.domain - len);
        break;
      default:  // small unaligned scribble
        len = 1 + rng.below(512);
        off = rng.below(pool.domain - len);
        break;
    }
    pool.entries.push_back(
        IndexEntry{off, len, phys[writer], static_cast<std::int64_t>(op + 1), writer});
    phys[writer] += len;
  }
  // Shuffle: build() must not depend on input order.
  for (std::size_t i = pool.entries.size(); i > 1; --i) {
    std::swap(pool.entries[i - 1], pool.entries[rng.below(i)]);
  }
  return pool;
}

class IndexDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexDiff, FlatAndPatternMatchBTreeExactly) {
  const Pool pool = random_pool(GetParam(), /*writers=*/8, /*ops=*/500);
  const BTreeIndex oracle = BTreeIndex::build(pool.entries);
  const FlatIndex flat = FlatIndex::build(pool.entries);
  const PatternIndex pattern = PatternIndex::build(pool.entries);

  for (const IndexView* idx : {static_cast<const IndexView*>(&flat),
                               static_cast<const IndexView*>(&pattern)}) {
    EXPECT_EQ(idx->logical_size(), oracle.logical_size());
    EXPECT_EQ(idx->mapping_count(), oracle.mapping_count());
    // The canonical compressed mapping sets are identical, so serialization
    // is byte-identical too.
    EXPECT_EQ(serialize_entries(idx->to_entries()), serialize_entries(oracle.to_entries()));
    // Full-range and random ranged lookups agree exactly.
    EXPECT_EQ(idx->lookup(0, pool.domain), oracle.lookup(0, pool.domain));
    Rng rng(GetParam() ^ 0xD1FF);
    for (int probe = 0; probe < 200; ++probe) {
      const std::uint64_t off = rng.below(pool.domain);
      const std::uint64_t len = 1 + rng.below(128 << 10);
      EXPECT_EQ(idx->lookup(off, len), oracle.lookup(off, len)) << "probe " << probe;
    }
    // Past-EOF and zero-length probes.
    EXPECT_EQ(idx->lookup(pool.domain * 2, 100), oracle.lookup(pool.domain * 2, 100));
    EXPECT_EQ(idx->lookup(5, 0), oracle.lookup(5, 0));
  }
}

TEST_P(IndexDiff, UncompressedBackendsAgree) {
  const Pool pool = random_pool(GetParam() ^ 0xC0FFEE, 5, 300);
  const BTreeIndex oracle = BTreeIndex::build(pool.entries, /*compress=*/false);
  const FlatIndex flat = FlatIndex::build(pool.entries, /*compress=*/false);
  const PatternIndex pattern = PatternIndex::build(pool.entries, /*compress=*/false);
  EXPECT_EQ(flat.logical_size(), oracle.logical_size());
  EXPECT_EQ(flat.lookup(0, pool.domain), oracle.lookup(0, pool.domain));
  EXPECT_EQ(pattern.logical_size(), oracle.logical_size());
  EXPECT_EQ(pattern.lookup(0, pool.domain), oracle.lookup(0, pool.domain));
}

TEST_P(IndexDiff, BuilderMergeMatchesPoolSort) {
  // Split the pool into per-writer runs (each timestamp-sorted, like real
  // index logs); the k-way merge path must equal the sort-the-pool path.
  const Pool pool = random_pool(GetParam() ^ 0x5EED, 6, 400);
  std::vector<std::vector<IndexEntry>> runs(6);
  for (const auto& e : pool.entries) runs[e.writer].push_back(e);
  IndexBuilder flat_builder(IndexBackend::flat);
  IndexBuilder btree_builder(IndexBackend::btree);
  IndexBuilder pattern_builder(IndexBackend::pattern);
  for (auto& r : runs) {
    std::sort(r.begin(), r.end(), entry_timestamp_less);
    flat_builder.add_entries(r);
    pattern_builder.add_entries(r);
    btree_builder.add_entries(std::move(r));
  }
  const IndexPtr flat = flat_builder.build();
  const IndexPtr btree = btree_builder.build();
  const IndexPtr pattern = pattern_builder.build();
  const FlatIndex direct = FlatIndex::build(pool.entries);

  EXPECT_EQ(flat->lookup(0, pool.domain), direct.lookup(0, pool.domain));
  EXPECT_EQ(btree->lookup(0, pool.domain), direct.lookup(0, pool.domain));
  EXPECT_EQ(pattern->lookup(0, pool.domain), direct.lookup(0, pool.domain));
  EXPECT_EQ(flat->logical_size(), direct.logical_size());
  EXPECT_EQ(btree->logical_size(), direct.logical_size());
  EXPECT_EQ(pattern->logical_size(), direct.logical_size());
  EXPECT_EQ(serialize_entries(flat->to_entries()), serialize_entries(btree->to_entries()));
  EXPECT_EQ(serialize_entries(pattern->to_entries()), serialize_entries(btree->to_entries()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDiff,
                         ::testing::Values(1, 7, 13, 99, 1234, 987654, 0xFEEDFACE));

// --- strategy-level: every ReadStrategy x every backend, same results ---

struct World {
  explicit World(IndexBackend backend, const std::string& plan_spec = "none")
      : cluster(engine, cluster_config()), pfs(cluster, pfs_config()),
        faulty(pfs, parse_plan(plan_spec)), plfs(faulty, mount_config(backend)) {
    for (const auto& b : plfs.mount().backends) {
      if (!pfs.ns().mkdir_all(b).ok()) std::abort();
    }
  }
  static pfs::FaultPlan parse_plan(const std::string& spec) {
    auto plan = pfs::FaultPlan::parse(spec);
    if (!plan.ok()) std::abort();
    return std::move(plan.value());
  }
  static net::ClusterConfig cluster_config() {
    net::ClusterConfig c;
    c.nodes = 16;
    c.cores_per_node = 4;
    return c;
  }
  static pfs::PfsConfig pfs_config() {
    pfs::PfsConfig c;
    c.num_mds = 4;
    c.num_osts = 8;
    return c;
  }
  static PlfsMount mount_config(IndexBackend backend) {
    PlfsMount m;
    for (std::size_t i = 0; i < 4; ++i) {
      m.backends.push_back("/vol" + std::to_string(i) + "/plfs");
    }
    m.num_subdirs = 8;
    m.index_flush_every = 8;
    m.index_backend = backend;
    return m;
  }

  sim::Engine engine;
  net::Cluster cluster;
  pfs::SimPfs pfs;
  pfs::FaultyFs faulty;  // pass-through when the plan is "none"
  Plfs plfs;
};

TEST(IndexDiffStrategies, AllStrategiesAndBackendsExpandIdentically) {
  constexpr int kProcs = 9;
  constexpr std::uint64_t kRecord = 3000;
  constexpr int kRounds = 4;
  const std::uint64_t total = static_cast<std::uint64_t>(kProcs) * kRounds * kRecord;

  std::vector<std::vector<IndexView::Mapping>> expansions;
  std::vector<std::uint64_t> sizes;
  for (const IndexBackend backend :
       {IndexBackend::btree, IndexBackend::flat, IndexBackend::pattern}) {
    World w(backend);
    mpi::run_spmd(w.cluster, kProcs, [&w](mpi::Comm comm) -> sim::Task<void> {
      auto file = co_await MpiFile::open_write(w.plfs, comm, "/diff");
      EXPECT_TRUE(file.ok()) << file.status();
      if (!file.ok()) co_return;
      for (int r = 0; r < kRounds; ++r) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(r) * comm.size() + comm.rank()) * kRecord;
        EXPECT_TRUE((co_await (*file)->write(off, DataView::pattern(7, off, kRecord))).ok());
      }
      EXPECT_TRUE((co_await (*file)->close_write(/*flatten=*/true)).ok());
    });
    for (const ReadStrategy strategy : {ReadStrategy::original, ReadStrategy::index_flatten,
                                        ReadStrategy::parallel_read}) {
      IndexPtr got;
      mpi::run_spmd(w.cluster, kProcs,
                    [&w, &got, strategy](mpi::Comm comm) -> sim::Task<void> {
                      auto idx = co_await aggregate_index(w.plfs, comm, "/diff", strategy);
                      EXPECT_TRUE(idx.ok()) << idx.status();
                      if (idx.ok() && comm.rank() == 0) got = *idx;
                    });
      ASSERT_NE(got, nullptr);
      expansions.push_back(got->lookup(0, total));
      sizes.push_back(got->logical_size());
    }
  }
  ASSERT_EQ(expansions.size(), 9u);
  for (std::size_t i = 1; i < expansions.size(); ++i) {
    EXPECT_EQ(expansions[i], expansions[0]) << "combination " << i;
    EXPECT_EQ(sizes[i], sizes[0]) << "combination " << i;
  }
}

// --- PatternIndex vs oracle: workload shapes x strategies x fault plans ---

// Four write shapes spanning the detector's best and worst cases.
enum class Shape { strided, sequential, overlapping, irregular };

void write_shape(World& w, const std::string& logical, Shape shape) {
  constexpr int kProcs = 9;
  constexpr int kRounds = 4;
  constexpr std::uint64_t kRecord = 3000;
  mpi::run_spmd(w.cluster, kProcs, [&](mpi::Comm comm) -> sim::Task<void> {
    auto file = co_await MpiFile::open_write(w.plfs, comm, logical);
    EXPECT_TRUE(file.ok()) << file.status();
    if (!file.ok()) co_return;
    const auto rank = static_cast<std::uint64_t>(comm.rank());
    const auto n = static_cast<std::uint64_t>(comm.size());
    auto put = [&](std::uint64_t off, std::uint64_t len) -> sim::Task<void> {
      EXPECT_TRUE((co_await (*file)->write(off, DataView::pattern(7, off, len))).ok());
    };
    switch (shape) {
      case Shape::strided:
        for (int r = 0; r < kRounds; ++r) co_await put((r * n + rank) * kRecord, kRecord);
        break;
      case Shape::sequential:
        for (int r = 0; r < kRounds; ++r) {
          co_await put(rank * kRounds * kRecord + r * kRecord, kRecord);
        }
        break;
      case Shape::overlapping:
        // A strided pass, then a half-record-shifted second pass that
        // overwrites most of the first.
        for (int r = 0; r < kRounds; ++r) co_await put((r * n + rank) * kRecord, kRecord);
        for (int r = 0; r < kRounds; ++r) {
          co_await put((r * n + rank) * kRecord + kRecord / 2, kRecord);
        }
        break;
      case Shape::irregular: {
        Rng rng(rank * 7919 + 13);
        for (int r = 0; r < 3 * kRounds; ++r) {
          const std::uint64_t len = 1 + rng.below(6000);
          co_await put(rng.below((1 << 18) - len), len);
        }
        break;
      }
    }
    EXPECT_TRUE((co_await (*file)->close_write(/*flatten=*/true)).ok());
  });
}

TEST(IndexDiffStrategies, PatternMatchesOracleAcrossShapesStrategiesAndFaults) {
  constexpr int kProcs = 9;
  constexpr std::uint64_t kDomain = 1 << 19;  // covers every shape's extent
  for (const char* plan : {"none", "transient1"}) {
    for (const Shape shape :
         {Shape::strided, Shape::sequential, Shape::overlapping, Shape::irregular}) {
      std::vector<std::vector<IndexView::Mapping>> expansions;
      for (const IndexBackend backend : {IndexBackend::btree, IndexBackend::pattern}) {
        World w(backend, plan);
        write_shape(w, "/shape", shape);
        for (const ReadStrategy strategy : {ReadStrategy::original, ReadStrategy::index_flatten,
                                            ReadStrategy::parallel_read}) {
          IndexPtr got;
          mpi::run_spmd(w.cluster, kProcs,
                        [&w, &got, strategy](mpi::Comm comm) -> sim::Task<void> {
                          auto idx = co_await aggregate_index(w.plfs, comm, "/shape", strategy);
                          EXPECT_TRUE(idx.ok()) << idx.status();
                          if (idx.ok() && comm.rank() == 0) got = *idx;
                        });
          ASSERT_NE(got, nullptr);
          expansions.push_back(got->lookup(0, kDomain));
        }
      }
      ASSERT_EQ(expansions.size(), 6u);
      for (std::size_t i = 1; i < expansions.size(); ++i) {
        EXPECT_EQ(expansions[i], expansions[0])
            << "plan " << plan << " shape " << static_cast<int>(shape) << " combination " << i;
      }
    }
  }
}

// --- Serialization integrity: error context and the CRC trailer -----------

std::vector<IndexEntry> sample_entries() {
  return {IndexEntry{0, 100, 0, 1, 0}, IndexEntry{100, 100, 100, 2, 1},
          IndexEntry{200, 56, 200, 3, 2}};
}

FragmentList as_fragments(std::vector<std::byte> bytes) {
  FragmentList fl;
  fl.append(DataView::literal(std::move(bytes)));
  return fl;
}

TEST(IndexSerialization, TruncationErrorNamesTheByteOffset) {
  auto bytes = serialize_entries(sample_entries());
  ASSERT_EQ(bytes.size(), 3 * IndexEntry::kSerializedSize);
  bytes.resize(bytes.size() - 5);  // tear the last record
  const auto got = deserialize_entries(as_fragments(std::move(bytes)));
  ASSERT_FALSE(got.ok());
  // The partial record begins where the second whole record ended.
  EXPECT_NE(got.status().message().find("partial record begins at byte offset 80"),
            std::string::npos)
      << got.status();
}

TEST(IndexSerialization, TrailerRoundTrips) {
  const auto entries = sample_entries();
  auto bytes = serialize_entries_with_trailer(entries);
  EXPECT_EQ(bytes.size(), entries.size() * IndexEntry::kSerializedSize + kIndexTrailerSize);
  const auto got = deserialize_trailed_entries(as_fragments(std::move(bytes)));
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*got)[i].logical_offset, entries[i].logical_offset) << i;
    EXPECT_EQ((*got)[i].length, entries[i].length) << i;
    EXPECT_EQ((*got)[i].physical_offset, entries[i].physical_offset) << i;
    EXPECT_EQ((*got)[i].writer, entries[i].writer) << i;
  }
}

TEST(IndexSerialization, CrcCatchesFlippedRecordByte) {
  auto bytes = serialize_entries_with_trailer(sample_entries());
  bytes[8] ^= std::byte{0xFF};  // inside the first record's length field
  const auto got = deserialize_trailed_entries(as_fragments(std::move(bytes)));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), Errc::io_error);
  EXPECT_NE(got.status().message().find("crc mismatch"), std::string::npos) << got.status();
  // The message carries enough context to locate the damage class.
  EXPECT_NE(got.status().message().find("byte offset"), std::string::npos);
}

TEST(IndexSerialization, BadMagicAndTruncatedTrailerAreDistinguished) {
  auto bytes = serialize_entries_with_trailer(sample_entries());
  auto mangled = bytes;
  mangled[mangled.size() - kIndexTrailerSize] ^= std::byte{0x01};
  const auto bad_magic = deserialize_trailed_entries(as_fragments(std::move(mangled)));
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.status().message().find("bad trailer magic"), std::string::npos);

  bytes.resize(kIndexTrailerSize - 1);  // shorter than any trailer
  const auto truncated = deserialize_trailed_entries(as_fragments(std::move(bytes)));
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("truncated trailer"), std::string::npos);
}

}  // namespace
}  // namespace tio::plfs
