// Raft replica groups: election, replication, failover, catch-up,
// snapshotting, and bit-reproducibility on the deterministic engine.
#include "raft/raft.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <vector>

#include "common/stats.h"
#include "net/cluster.h"
#include "sim/engine.h"
#include "testutil.h"

namespace tio::raft {
namespace {

net::ClusterConfig small_cluster() {
  net::ClusterConfig c;
  c.nodes = 8;
  c.cores_per_node = 4;
  c.nic_bandwidth = 2.0e9;
  c.fabric_latency = Duration::us(2);
  c.storage_net_bandwidth = 1.25e9;
  c.storage_nic_bandwidth = 1.15e9;
  c.storage_net_latency = Duration::us(60);
  c.page_cache_per_node = 16_MiB;
  c.page_cache_block = 64_KiB;
  return c;
}

// Doubles each submitted int; remembers the apply order. The raft layer is
// at-least-once (a timed-out client attempt may resubmit), so tests assert
// "applied at least once, acked results exact", not exact apply counts.
struct TestSm : StateMachine {
  std::vector<int> applied;
  std::any apply(Index, const std::any& cmd) override {
    if (!cmd.has_value()) return {};  // leader no-op barrier
    const int v = std::any_cast<int>(cmd);
    applied.push_back(v);
    return std::any(v * 2);
  }
  Duration apply_service(const std::any&) const override { return Duration::us(50); }
  std::uint64_t snapshot_bytes() const override { return 1024; }
};

RaftConfig fast_config() {
  RaftConfig c;
  c.replicas = 3;
  c.heartbeat = Duration::ms(5);
  c.election_min = Duration::ms(20);
  c.election_jitter = Duration::ms(20);
  c.request_timeout = Duration::ms(30);
  c.redirect_backoff = Duration::ms(5);
  return c;
}

struct World {
  explicit World(std::uint64_t seed = 42, RaftConfig config = fast_config())
      : engine(seed), cluster(engine, small_cluster()),
        group(engine, cluster, sm, config, /*group_id=*/0, {0, 1, 2}) {}
  sim::Engine engine;
  net::Cluster cluster;
  TestSm sm;
  Group group;

  // Submits `v` from node 7 and expects the doubled ack.
  sim::Task<void> expect_submit(int v) {
    auto r = co_await group.submit(/*client_node=*/7, /*rank=*/0, std::any(v), 64);
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    if (!r.ok()) co_return;
    EXPECT_TRUE(*r != nullptr && (*r)->has_value());
    if (*r == nullptr || !(*r)->has_value()) co_return;
    EXPECT_EQ(std::any_cast<int>(**r), v * 2);
  }
};

TEST(RaftTest, BootstrapElectsExactlyOneLeader) {
  World w;
  w.group.keep_alive(true);
  w.engine.run_until(Duration::ms(500).to_ns());
  int leaders = 0;
  for (std::size_t r = 0; r < w.group.replicas(); ++r) {
    if (static_cast<int>(r) == w.group.leader_or_negative()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  w.group.keep_alive(false);
  w.engine.run();  // parks: the queue must drain
}

TEST(RaftTest, SubmitCommitsAndAcksAfterApply) {
  World w;
  test::run_task(w.engine, w.expect_submit(21));
  ASSERT_EQ(w.sm.applied.size(), 1u);
  EXPECT_EQ(w.sm.applied[0], 21);
  // Index 1 is the leader's no-op barrier, index 2 the command.
  EXPECT_EQ(w.group.group_applied(), 2u);
}

TEST(RaftTest, ReplicatesManyCommandsInOrder) {
  World w;
  test::run_task(w.engine, [](World& w) -> sim::Task<void> {
    for (int v = 0; v < 32; ++v) co_await w.expect_submit(v);
  }(w));
  ASSERT_EQ(w.sm.applied.size(), 32u);
  for (int v = 0; v < 32; ++v) EXPECT_EQ(w.sm.applied[v], v);
  // All replicas converge on the same log length by the time the group
  // parks (the last append round-trips before the ack).
  const Index leader_last =
      w.group.last_index_of(static_cast<std::size_t>(w.group.leader_or_negative()));
  EXPECT_EQ(leader_last, 33u);  // barrier + 32 commands
}

TEST(RaftTest, LeaderCrashFailsOverAndLosesNoAckedCommand) {
  World w;
  const std::uint64_t elections_before = counter("raft.elections_won").value();
  test::run_task(w.engine, [](World& w) -> sim::Task<void> {
    co_await w.expect_submit(1);
    const int old_leader = w.group.leader_or_negative();
    EXPECT_GE(old_leader, 0);
    if (old_leader < 0) co_return;
    w.group.crash(static_cast<std::size_t>(old_leader));
    // The two survivors hold quorum: the next submits elect a new leader
    // and commit through it.
    for (int v = 2; v <= 5; ++v) co_await w.expect_submit(v);
    EXPECT_NE(w.group.leader_or_negative(), old_leader);
  }(w));
  EXPECT_GT(counter("raft.elections_won").value(), elections_before + 1);
  // Every acked command reached the state machine.
  for (int v = 1; v <= 5; ++v) {
    EXPECT_NE(std::find(w.sm.applied.begin(), w.sm.applied.end(), v), w.sm.applied.end())
        << "acked command " << v << " lost";
  }
}

TEST(RaftTest, CrashedReplicaRestartsAndCatchesUp) {
  World w;
  test::run_task(w.engine, [](World& w) -> sim::Task<void> {
    co_await w.expect_submit(1);
    const int leader = w.group.leader_or_negative();
    const std::size_t follower = leader == 0 ? 1 : 0;
    w.group.crash(follower);
    for (int v = 2; v <= 9; ++v) co_await w.expect_submit(v);
    w.group.restart(follower);
  }(w));
  // Heartbeat catch-up needs the group alive past the last client op.
  w.group.keep_alive(true);
  w.engine.run_until(w.engine.now().to_ns() + Duration::ms(500).to_ns());
  const auto leader = static_cast<std::size_t>(w.group.leader_or_negative());
  const std::size_t follower = leader == 0 ? 1 : 0;
  EXPECT_EQ(w.group.last_index_of(follower), w.group.last_index_of(leader));
  EXPECT_EQ(w.group.commit_of(follower), w.group.commit_of(leader));
  w.group.keep_alive(false);
  w.engine.run();
}

TEST(RaftTest, LaggingFollowerGetsSnapshotAfterCompaction) {
  RaftConfig config = fast_config();
  config.compact_threshold = 8;
  config.compact_keep = 2;
  World w(42, config);
  const std::uint64_t installs_before = counter("raft.snapshots_installed").value();
  test::run_task(w.engine, [](World& w) -> sim::Task<void> {
    co_await w.expect_submit(1);
    const int leader = w.group.leader_or_negative();
    const std::size_t follower = leader == 0 ? 1 : 0;
    w.group.crash(follower);
    // Enough traffic that the leader compacts past the crash point.
    for (int v = 2; v <= 40; ++v) co_await w.expect_submit(v);
    w.group.restart(follower);
  }(w));
  w.group.keep_alive(true);
  w.engine.run_until(w.engine.now().to_ns() + Duration::sec(1).to_ns());
  EXPECT_GT(counter("raft.snapshots_installed").value(), installs_before);
  const auto leader = static_cast<std::size_t>(w.group.leader_or_negative());
  const std::size_t follower = leader == 0 ? 1 : 0;
  EXPECT_EQ(w.group.commit_of(follower), w.group.commit_of(leader));
  w.group.keep_alive(false);
  w.engine.run();
}

TEST(RaftTest, PartitionedLeaderHealsWithoutSplitBrain) {
  World w;
  test::run_task(w.engine, [](World& w) -> sim::Task<void> {
    co_await w.expect_submit(1);
    const int old_leader = w.group.leader_or_negative();
    EXPECT_GE(old_leader, 0);
    if (old_leader < 0) co_return;
    w.group.set_partitioned(static_cast<std::size_t>(old_leader), true);
    for (int v = 2; v <= 5; ++v) co_await w.expect_submit(v);
    const int new_leader = w.group.leader_or_negative();
    EXPECT_NE(new_leader, old_leader);
    w.group.set_partitioned(static_cast<std::size_t>(old_leader), false);
    // The healed replica rejoins; the new leader's term dominates, so a
    // submit still lands on one coherent log.
    co_await w.expect_submit(6);
  }(w));
  for (int v = 1; v <= 6; ++v) {
    EXPECT_NE(std::find(w.sm.applied.begin(), w.sm.applied.end(), v), w.sm.applied.end());
  }
}

TEST(RaftTest, SingleReplicaGroupDegeneratesToLocalCommit) {
  RaftConfig config = fast_config();
  config.replicas = 1;
  sim::Engine engine(7);
  net::Cluster cluster(engine, small_cluster());
  TestSm sm;
  Group group(engine, cluster, sm, config, 0, {3});
  test::run_task(engine, [](Group& g, TestSm& sm) -> sim::Task<void> {
    auto r = co_await g.submit(0, 0, std::any(5), 64);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(std::any_cast<int>(**r), 10);
    EXPECT_EQ(sm.applied.size(), 1u);
  }(group, sm));
}

TEST(RaftTest, NoQuorumSurfacesBusyWithinAttemptBound) {
  World w;
  test::run_task(w.engine, [](World& w) -> sim::Task<void> {
    co_await w.expect_submit(1);
    w.group.crash(1);
    w.group.crash(2);
    auto r = co_await w.group.submit(7, 0, std::any(2), 64);
    EXPECT_FALSE(r.ok());
    if (r.ok()) co_return;
    EXPECT_EQ(r.status().code(), Errc::busy);
    EXPECT_TRUE(r.status().is_transient());
  }(w));
}

// The acceptance property underneath the chaos suite: a (seed, scenario)
// pair is a pure function — virtual completion time and apply order are
// bit-identical across runs.
TEST(RaftTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    World w(seed);
    test::run_task(w.engine, [](World& w) -> sim::Task<void> {
      co_await w.expect_submit(1);
      w.group.crash(static_cast<std::size_t>(w.group.leader_or_negative()));
      for (int v = 2; v <= 8; ++v) co_await w.expect_submit(v);
    }(w));
    return std::make_pair(w.engine.now().to_ns(), w.sm.applied);
  };
  const auto a = run_once(1234);
  const auto b = run_once(1234);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run_once(99);
  EXPECT_EQ(c.second.size(), a.second.size());  // same workload either way
}

}  // namespace
}  // namespace tio::raft
