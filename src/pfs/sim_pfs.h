// SimPfs: the simulated underlying parallel file system ("PanFS-like").
//
// Combines:
//   * a real in-memory namespace + per-file extent maps (data is verifiable),
//   * metadata servers modeled as FCFS queues with per-directory serialized
//     inserts that degrade as directories grow,
//   * OSTs with seek/stream/prefetch behaviour behind the cluster's shared
//     storage network,
//   * a range-lock manager charging ownership transfers when multiple nodes
//     write the same regions of one file — the N-1 serialization the paper's
//     middleware removes,
//   * the cluster's per-node page caches.
//
// Metadata placement: the top-level path component ("/vol3/...") selects the
// metadata server, modeling rigidly divided, glued-together namespaces
// (PanFS realms). A single directory never spreads across servers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/cluster.h"
#include "pfs/config.h"
#include "pfs/extent_map.h"
#include "pfs/fs_client.h"
#include "pfs/namespace.h"
#include "pfs/ost.h"
#include "sim/server.h"
#include "sim/sync.h"

namespace tio::pfs {

class SimPfs : public FsClient {
 public:
  SimPfs(net::Cluster& cluster, PfsConfig config);

  sim::Task<Result<FileId>> open(IoCtx ctx, std::string path, OpenFlags flags) override;
  sim::Task<Status> close(IoCtx ctx, FileId file) override;
  sim::Task<Result<std::uint64_t>> write(IoCtx ctx, FileId file, std::uint64_t offset,
                                         DataView data) override;
  sim::Task<Result<FragmentList>> read(IoCtx ctx, FileId file, std::uint64_t offset,
                                       std::uint64_t len) override;
  sim::Task<Status> mkdir(IoCtx ctx, std::string path) override;
  sim::Task<Status> rmdir(IoCtx ctx, std::string path) override;
  sim::Task<Status> unlink(IoCtx ctx, std::string path) override;
  sim::Task<Status> rename(IoCtx ctx, std::string from, std::string to) override;
  sim::Task<Result<StatInfo>> stat(IoCtx ctx, std::string path) override;
  sim::Task<Result<std::vector<DirEntry>>> readdir(IoCtx ctx, std::string path) override;
  sim::Engine& engine() override { return cluster_.engine(); }

  // --- introspection (tests, benches) ---
  const PfsConfig& config() const { return config_; }
  net::Cluster& cluster() { return cluster_; }
  Namespace& ns() { return ns_; }
  // Extent map of a file's object; null when unknown.
  const ExtentMap* object_extents(ObjectId oid) const;
  const sim::FcfsServer& mds(std::size_t i) const { return *mds_[i]; }
  const Ost& ost(std::size_t i) const { return *osts_[i]; }
  std::size_t mds_of_path(std::string_view path) const;
  void drop_caches();

  struct Stats {
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t cache_hit_bytes = 0;
    std::uint64_t lock_grants = 0;
    std::uint64_t lock_transfers = 0;
    std::uint64_t rmw_reads = 0;
    std::uint64_t metadata_ops = 0;
    std::uint64_t opens = 0;
    std::uint64_t creates = 0;
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  struct Object {
    ExtentMap data;
    std::uint64_t size = 0;
    TimePoint mtime;
    bool dentry_hot = false;  // opened before: MDS serves from cache
    std::unordered_map<std::uint64_t, std::size_t> lock_owner;  // range idx -> node
    std::unique_ptr<sim::FcfsServer> lock_server;               // lazily created
  };
  struct OpenFile {
    ObjectId oid = kNoObject;
    OpenFlags flags;
    std::string parent_dir;  // for close-time MDS selection
  };

  Object& object(ObjectId oid);
  Result<OpenFile*> handle(FileId file);
  sim::Mutex& dir_mutex(const std::string& dir);
  // RPC + queue + service at the MDS serving `dir_path`.
  sim::Task<void> mds_op(std::string_view dir_path, Duration service);
  // Namespace mutation under the directory's serialized insert lock, with
  // size-dependent degradation.
  sim::Task<void> dir_mutation(std::string dir_path);
  sim::Task<void> acquire_write_locks(IoCtx ctx, Object& obj, std::uint64_t offset,
                                      std::uint64_t len);
  // Physical transfer of [offset, offset+len) of `oid`: storage network +
  // striped OST I/Os (issued concurrently up to stripe_parallelism).
  sim::Task<void> data_path(IoCtx ctx, ObjectId oid, std::uint64_t offset, std::uint64_t len,
                            bool is_write);

  net::Cluster& cluster_;
  PfsConfig config_;
  Namespace ns_;
  std::vector<std::unique_ptr<sim::FcfsServer>> mds_;
  std::vector<std::unique_ptr<Ost>> osts_;
  std::unordered_map<std::string, std::unique_ptr<sim::Mutex>> dir_mutexes_;
  std::unordered_map<ObjectId, Object> objects_;
  std::unordered_map<FileId, OpenFile> open_files_;
  FileId next_file_id_ = 1;
  Stats stats_;
};

}  // namespace tio::pfs
