file(REMOVE_RECURSE
  "CMakeFiles/tio_localfs.dir/local_fs.cc.o"
  "CMakeFiles/tio_localfs.dir/local_fs.cc.o.d"
  "CMakeFiles/tio_localfs.dir/mem_fs.cc.o"
  "CMakeFiles/tio_localfs.dir/mem_fs.cc.o.d"
  "libtio_localfs.a"
  "libtio_localfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_localfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
