// Collective-layer tests: the three index-aggregation strategies over the
// simulated PFS and MPI runtime.
#include "plfs/mpiio.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "localfs/mem_fs.h"
#include "pfs/sim_pfs.h"

namespace tio::plfs {
namespace {

using pfs::IoCtx;

struct World {
  explicit World(std::size_t backends = 4, std::size_t mds = 4)
      : cluster(engine, cluster_config()), pfs(cluster, pfs_config(mds)),
        plfs(pfs, mount_config(backends)) {
    for (const auto& b : plfs.mount().backends) {
      if (!pfs.ns().mkdir_all(b).ok()) std::abort();
    }
  }
  static net::ClusterConfig cluster_config() {
    net::ClusterConfig c;
    c.nodes = 16;
    c.cores_per_node = 4;
    return c;
  }
  static pfs::PfsConfig pfs_config(std::size_t mds) {
    pfs::PfsConfig c;
    c.num_mds = mds;
    c.num_osts = 8;
    return c;
  }
  static PlfsMount mount_config(std::size_t backends) {
    PlfsMount m;
    for (std::size_t i = 0; i < backends; ++i) {
      m.backends.push_back("/vol" + std::to_string(i) + "/plfs");
    }
    m.num_subdirs = 8;
    m.index_flush_every = 8;
    return m;
  }

  sim::Engine engine;
  net::Cluster cluster;
  pfs::SimPfs pfs;
  Plfs plfs;
};

// Writes a strided N-1 file collectively; returns nothing. Each rank writes
// `rounds` records of `record` bytes at stride nprocs.
sim::Task<void> write_strided(Plfs& plfs, mpi::Comm comm, std::string path, std::uint64_t record,
                              int rounds, bool flatten) {
  auto file = co_await MpiFile::open_write(plfs, comm, path);
  EXPECT_TRUE(file.ok()) << file.status();
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t off =
        (static_cast<std::uint64_t>(r) * comm.size() + comm.rank()) * record;
    EXPECT_TRUE((co_await (*file)->write(off, DataView::pattern(42, off, record))).ok());
  }
  EXPECT_TRUE((co_await (*file)->close_write(flatten)).ok());
}

sim::Task<void> read_and_verify(Plfs& plfs, mpi::Comm comm, std::string path,
                                std::uint64_t record, int rounds, ReadStrategy strategy) {
  auto file = co_await MpiFile::open_read(plfs, comm, path, strategy);
  EXPECT_TRUE(file.ok()) << file.status();
  const std::uint64_t total = static_cast<std::uint64_t>(rounds) * comm.size() * record;
  EXPECT_EQ((*file)->logical_size(), total);
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t off =
        (static_cast<std::uint64_t>(r) * comm.size() + comm.rank()) * record;
    auto fl = co_await (*file)->read(off, record);
    EXPECT_TRUE(fl.ok());
    EXPECT_TRUE(fl->content_equals(DataView::pattern(42, off, record)))
        << "rank " << comm.rank() << " round " << r;
  }
  EXPECT_TRUE((co_await (*file)->close_read()).ok());
}

class Strategies : public ::testing::TestWithParam<ReadStrategy> {};

TEST_P(Strategies, WriteThenReadBackVerifies) {
  World w;
  const ReadStrategy strategy = GetParam();
  const bool flatten = strategy == ReadStrategy::index_flatten;
  mpi::run_spmd(w.cluster, 12, [&w, flatten](mpi::Comm comm) -> sim::Task<void> {
    co_await write_strided(w.plfs, comm, "/ckpt", 5000, 6, flatten);
  });
  mpi::run_spmd(w.cluster, 12, [&w, strategy](mpi::Comm comm) -> sim::Task<void> {
    co_await read_and_verify(w.plfs, comm, "/ckpt", 5000, 6, strategy);
  });
}

TEST_P(Strategies, NonUniformRankCountsWork) {
  World w;
  const ReadStrategy strategy = GetParam();
  mpi::run_spmd(w.cluster, 7, [&w, strategy](mpi::Comm comm) -> sim::Task<void> {
    co_await write_strided(w.plfs, comm, "/odd", 3000, 5,
                           strategy == ReadStrategy::index_flatten);
    co_await read_and_verify(w.plfs, comm, "/odd", 3000, 5, strategy);
  });
}

INSTANTIATE_TEST_SUITE_P(All, Strategies,
                         ::testing::Values(ReadStrategy::original,
                                           ReadStrategy::index_flatten,
                                           ReadStrategy::parallel_read),
                         [](const auto& info) {
                           switch (info.param) {
                             case ReadStrategy::original: return "Original";
                             case ReadStrategy::index_flatten: return "Flatten";
                             case ReadStrategy::parallel_read: return "ParallelRead";
                           }
                           return "Unknown";
                         });

TEST(StrategyEquivalence, AllThreeStrategiesProduceTheSameIndex) {
  World w;
  const int n = 9;
  mpi::run_spmd(w.cluster, n, [&w](mpi::Comm comm) -> sim::Task<void> {
    co_await write_strided(w.plfs, comm, "/eq", 2000, 4, /*flatten=*/true);
  });
  std::vector<IndexPtr> indices;
  for (const auto strategy : {ReadStrategy::original, ReadStrategy::index_flatten,
                              ReadStrategy::parallel_read}) {
    IndexPtr got;
    mpi::run_spmd(w.cluster, n, [&w, &got, strategy](mpi::Comm comm) -> sim::Task<void> {
      auto idx = co_await aggregate_index(w.plfs, comm, "/eq", strategy);
      EXPECT_TRUE(idx.ok());
      if (comm.rank() == 0) got = *idx;
    });
    indices.push_back(got);
  }
  const std::uint64_t total = 9 * 4 * 2000;
  for (std::size_t i = 1; i < indices.size(); ++i) {
    EXPECT_EQ(indices[0]->logical_size(), indices[i]->logical_size());
    EXPECT_EQ(indices[0]->lookup(0, total), indices[i]->lookup(0, total));
  }
}

TEST(StrategyCost, OriginalDoesQuadraticOpensParallelDoesLinear) {
  const int n = 16;
  auto count_opens = [&](ReadStrategy strategy) {
    World w;
    mpi::run_spmd(w.cluster, n, [&w](mpi::Comm comm) -> sim::Task<void> {
      co_await write_strided(w.plfs, comm, "/f", 1000, 3, /*flatten=*/false);
    });
    const std::uint64_t before = w.pfs.stats().opens;
    mpi::run_spmd(w.cluster, n, [&w, strategy](mpi::Comm comm) -> sim::Task<void> {
      auto idx = co_await aggregate_index(w.plfs, comm, "/f", strategy);
      EXPECT_TRUE(idx.ok());
    });
    return w.pfs.stats().opens - before;
  };
  const std::uint64_t original = count_opens(ReadStrategy::original);
  const std::uint64_t parallel = count_opens(ReadStrategy::parallel_read);
  // Original: every rank opens every index log -> n^2. Parallel: each log
  // opened once -> n.
  EXPECT_GE(original, static_cast<std::uint64_t>(n) * n);
  EXPECT_LT(parallel, static_cast<std::uint64_t>(n) * 3);
  EXPECT_GT(original, parallel * 8);
}

TEST(Flatten, GlobalIndexFileWrittenOnlyWhenRequested) {
  World w;
  mpi::run_spmd(w.cluster, 8, [&w](mpi::Comm comm) -> sim::Task<void> {
    co_await write_strided(w.plfs, comm, "/noflat", 1000, 2, /*flatten=*/false);
    co_await write_strided(w.plfs, comm, "/flat", 1000, 2, /*flatten=*/true);
  });
  EXPECT_FALSE(w.pfs.ns().exists(w.plfs.layout("/noflat").global_index_path()));
  EXPECT_TRUE(w.pfs.ns().exists(w.plfs.layout("/flat").global_index_path()));
}

TEST(Flatten, SkippedWhenAnyWriterExceedsThreshold) {
  World w;
  PlfsMount m = w.plfs.mount();
  m.flatten_threshold = 3;  // writers produce 4 entries each
  Plfs plfs(w.pfs, m);
  mpi::run_spmd(w.cluster, 4, [&plfs](mpi::Comm comm) -> sim::Task<void> {
    co_await write_strided(plfs, comm, "/big", 1000, 4, /*flatten=*/true);
  });
  EXPECT_FALSE(w.pfs.ns().exists(plfs.layout("/big").global_index_path()));
  // Reading with the flatten strategy still works: the missing global index
  // makes the collective degrade to Parallel Index Read.
  const std::uint64_t fallbacks_before = counter("plfs.degrade.index_fallback").value();
  mpi::run_spmd(w.cluster, 4, [&plfs](mpi::Comm comm) -> sim::Task<void> {
    auto idx = co_await aggregate_index(plfs, comm, "/big", ReadStrategy::index_flatten);
    EXPECT_TRUE(idx.ok());
    if (idx.ok()) EXPECT_EQ((*idx)->logical_size(), 4u * 4 * 1000);
  });
  EXPECT_EQ(counter("plfs.degrade.index_fallback").value(), fallbacks_before + 1);
}

TEST(Flatten, CloseIsSlowerWithFlattenOpenIsFaster) {
  auto timed_run = [](bool flatten) {
    World w;
    double close_time = 0, open_time = 0;
    mpi::run_spmd(w.cluster, 16, [&](mpi::Comm comm) -> sim::Task<void> {
      auto file = co_await MpiFile::open_write(w.plfs, comm, "/t");
      EXPECT_TRUE(file.ok());
      for (int r = 0; r < 32; ++r) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(r) * comm.size() + comm.rank()) * 1000;
        EXPECT_TRUE((co_await (*file)->write(off, DataView::pattern(1, off, 1000))).ok());
      }
      co_await comm.barrier();
      const TimePoint t0 = comm.engine().now();
      EXPECT_TRUE((co_await (*file)->close_write(flatten)).ok());
      if (comm.rank() == 0) close_time = (comm.engine().now() - t0).to_seconds();

      const TimePoint t1 = comm.engine().now();
      auto rf = co_await MpiFile::open_read(
          w.plfs, comm, "/t",
          flatten ? ReadStrategy::index_flatten : ReadStrategy::original);
      EXPECT_TRUE(rf.ok());
      if (comm.rank() == 0) open_time = (comm.engine().now() - t1).to_seconds();
      EXPECT_TRUE((co_await (*rf)->close_read()).ok());
    });
    return std::make_pair(close_time, open_time);
  };
  const auto [close_flat, open_flat] = timed_run(true);
  const auto [close_orig, open_orig] = timed_run(false);
  EXPECT_GT(close_flat, close_orig);  // flatten pays at close...
  EXPECT_LT(open_flat, open_orig);    // ...and wins at open
}

TEST(ParallelRead, GroupSizeConfigurationIsHonoured) {
  World w;
  PlfsMount m = w.plfs.mount();
  m.parallel_read_group = 3;  // groups of 3 over 10 ranks -> 4 groups
  Plfs plfs(w.pfs, m);
  mpi::run_spmd(w.cluster, 10, [&plfs](mpi::Comm comm) -> sim::Task<void> {
    co_await write_strided(plfs, comm, "/g", 1000, 2, false);
    co_await read_and_verify(plfs, comm, "/g", 1000, 2, ReadStrategy::parallel_read);
  });
}

TEST(ParallelRead, WorksWithSingleRank) {
  World w;
  mpi::run_spmd(w.cluster, 1, [&w](mpi::Comm comm) -> sim::Task<void> {
    co_await write_strided(w.plfs, comm, "/solo", 1000, 4, false);
    co_await read_and_verify(w.plfs, comm, "/solo", 1000, 4, ReadStrategy::parallel_read);
  });
}

TEST(ParallelRead, MoreRanksThanIndexLogs) {
  // Restart with a different (larger) process count than the writer job.
  World w;
  mpi::run_spmd(w.cluster, 4, [&w](mpi::Comm comm) -> sim::Task<void> {
    co_await write_strided(w.plfs, comm, "/grow", 2000, 4, false);
  });
  mpi::run_spmd(w.cluster, 16, [&w](mpi::Comm comm) -> sim::Task<void> {
    auto file = co_await MpiFile::open_read(w.plfs, comm, "/grow",
                                            ReadStrategy::parallel_read);
    EXPECT_TRUE(file.ok());
    EXPECT_EQ((*file)->logical_size(), 4u * 4 * 2000);
    // Every rank reads the whole file in slices.
    const std::uint64_t slice = 4ull * 4 * 2000 / 16;
    auto fl = co_await (*file)->read(comm.rank() * slice, slice);
    EXPECT_TRUE(fl.ok());
    EXPECT_TRUE(fl->content_equals(DataView::pattern(42, comm.rank() * slice, slice)));
    EXPECT_TRUE((co_await (*file)->close_read()).ok());
  });
}

TEST(MpiFile, ReadBeforeOpenFails) {
  World w;
  mpi::run_spmd(w.cluster, 2, [&w](mpi::Comm comm) -> sim::Task<void> {
    auto file = co_await MpiFile::open_write(w.plfs, comm, "/x");
    EXPECT_TRUE(file.ok());
    EXPECT_EQ((co_await (*file)->read(0, 10)).status().code(), Errc::bad_handle);
    EXPECT_TRUE((co_await (*file)->close_write(false)).ok());
    EXPECT_EQ((co_await (*file)->write(0, DataView::zeros(1))).code(), Errc::bad_handle);
  });
}

}  // namespace
}  // namespace tio::plfs
