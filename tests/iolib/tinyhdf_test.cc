#include "iolib/tinyhdf.h"

#include <gtest/gtest.h>

#include "net/cluster.h"
#include "pfs/extent_map.h"

namespace tio::iolib {
namespace {

struct MemFile {
  pfs::ExtentMap map;
  std::uint64_t size = 0;
  WriteFn writer() {
    return [this](std::uint64_t off, DataView data) -> sim::Task<Status> {
      size = std::max(size, off + data.size());
      map.write(off, std::move(data));
      co_return Status::Ok();
    };
  }
  ReadFn reader() {
    return [this](std::uint64_t off, std::uint64_t len) -> sim::Task<Result<FragmentList>> {
      if (off >= size) co_return FragmentList{};
      co_return map.read(off, std::min(len, size - off));
    };
  }
};

net::ClusterConfig tiny_cluster() {
  net::ClusterConfig c;
  c.nodes = 4;
  c.cores_per_node = 2;
  return c;
}

TEST(TinyHdfLayout, RegionsDoNotOverlap) {
  const auto l = TinyHdf::layout_for(10_MiB, 1_MiB);
  EXPECT_EQ(l.num_chunks, 10u);
  EXPECT_GE(l.btree_offset, TinyHdf::kSuperblockBytes);
  EXPECT_GE(l.data_offset, l.btree_offset + l.num_chunks * TinyHdf::kChunkRecordBytes);
  EXPECT_EQ(l.file_bytes, l.data_offset + 10_MiB);
}

TEST(TinyHdfLayout, RoundsUpPartialChunk) {
  const auto l = TinyHdf::layout_for(10_MiB + 1, 1_MiB);
  EXPECT_EQ(l.num_chunks, 11u);
}

TEST(TinyHdfSuperblock, SerializeParseRoundTrip) {
  const auto l = TinyHdf::layout_for(64_MiB, 4_MiB);
  FragmentList fl;
  fl.append(DataView::literal(TinyHdf::serialize_superblock(l)));
  auto parsed = TinyHdf::parse_superblock(fl);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, l);
}

TEST(TinyHdfSuperblock, RejectsGarbage) {
  FragmentList fl;
  fl.append(DataView::pattern(1, 0, TinyHdf::kSuperblockBytes));
  EXPECT_FALSE(TinyHdf::parse_superblock(fl).ok());
}

TEST(TinyHdf, WriteReadRoundTripAcrossDifferentProcessCounts) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  MemFile file;
  mpi::run_spmd(cluster, 5, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await TinyHdf::write_all(comm, file.writer(), 3_MiB, 256_KiB, 9)).ok());
  });
  // Strong scaling: read with a different process count.
  mpi::run_spmd(cluster, 8, [&](mpi::Comm comm) -> sim::Task<void> {
    TinyHdf::Layout layout;
    EXPECT_TRUE((co_await TinyHdf::read_all(comm, file.reader(), 9, true, &layout)).ok());
    EXPECT_EQ(layout.num_chunks, 12u);
  });
}

TEST(TinyHdf, DetectsChunkDataCorruption) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  MemFile file;
  mpi::run_spmd(cluster, 2, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await TinyHdf::write_all(comm, file.writer(), 1_MiB, 256_KiB, 9)).ok());
  });
  const auto l = TinyHdf::layout_for(1_MiB, 256_KiB);
  file.map.write(l.data_offset + 300000, DataView::pattern(12345, 0, 16));
  int failures = 0;
  mpi::run_spmd(cluster, 2, [&](mpi::Comm comm) -> sim::Task<void> {
    if (!(co_await TinyHdf::read_all(comm, file.reader(), 9, true)).ok()) ++failures;
    (void)comm;
  });
  EXPECT_GE(failures, 1);
}

TEST(TinyHdf, DetectsMetadataCorruption) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  MemFile file;
  mpi::run_spmd(cluster, 2, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await TinyHdf::write_all(comm, file.writer(), 1_MiB, 256_KiB, 9)).ok());
  });
  const auto l = TinyHdf::layout_for(1_MiB, 256_KiB);
  file.map.write(l.btree_offset + 10, DataView::pattern(4242, 0, 8));
  int failures = 0;
  mpi::run_spmd(cluster, 2, [&](mpi::Comm comm) -> sim::Task<void> {
    if (!(co_await TinyHdf::read_all(comm, file.reader(), 9, true)).ok()) ++failures;
    (void)comm;
  });
  EXPECT_GE(failures, 1);
}

}  // namespace
}  // namespace tio::iolib
