// Microbenchmarks of the index hot paths (google-benchmark): build, lookup,
// and (de)serialization — the CPU work each reader pays at open.
//
// The headline comparison is the global-index build: the map-based oracle
// (BTreeIndex over a re-sorted concatenated pool, the original design)
// versus the merge-based FlatIndex (k-way merge of per-writer sorted runs +
// offset sweep) versus PatternIndex (runs compressed to arithmetic
// progressions) at 10k/100k/1M entries. `--index_backend=btree|flat|pattern`
// restricts the comparison to one backend; after the run a per-backend
// serialized-size report (wire v1 vs v2) and the plfs.index.* counters are
// printed.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "plfs/index.h"
#include "plfs/index_builder.h"
#include "plfs/mount.h"
#include "plfs/pattern.h"
#include "sim/sharded.h"

namespace tio::plfs {
namespace {

std::vector<IndexEntry> strided_entries(int writers, int per_writer) {
  std::vector<IndexEntry> out;
  std::vector<std::uint64_t> phys(writers, 0);
  constexpr std::uint64_t kRecord = 64 << 10;
  for (int r = 0; r < per_writer; ++r) {
    for (int w = 0; w < writers; ++w) {
      out.push_back(IndexEntry{(static_cast<std::uint64_t>(r) * writers + w) * kRecord, kRecord,
                               phys[w], static_cast<std::int64_t>(out.size() + 1),
                               static_cast<std::uint32_t>(w)});
      phys[w] += kRecord;
    }
  }
  return out;
}

// The same workload as per-writer timestamp-sorted runs — what the index
// logs actually hold.
std::vector<std::shared_ptr<const std::vector<IndexEntry>>> strided_runs(int writers,
                                                                         int per_writer) {
  std::vector<std::vector<IndexEntry>> runs(writers);
  for (const auto& e : strided_entries(writers, per_writer)) runs[e.writer].push_back(e);
  std::vector<std::shared_ptr<const std::vector<IndexEntry>>> out;
  out.reserve(runs.size());
  for (auto& r : runs) {
    out.push_back(std::make_shared<const std::vector<IndexEntry>>(std::move(r)));
  }
  return out;
}

constexpr int kBuildWriters = 256;

// The original design: concatenate every writer's log into one pool, then
// sort the whole pool and feed a node-based map entry by entry.
void BM_GlobalBuildOracleBTree(benchmark::State& state) {
  const int per_writer = static_cast<int>(state.range(0)) / kBuildWriters;
  const auto runs = strided_runs(kBuildWriters, per_writer);
  std::vector<IndexEntry> pool;
  for (const auto& r : runs) pool.insert(pool.end(), r->begin(), r->end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BTreeIndex::build(pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pool.size()));
}

// The refactored path: k-way merge of the already-sorted runs, then the
// FlatIndex offset sweep — no re-sort, no node allocations.
void BM_GlobalBuildMergeFlat(benchmark::State& state) {
  const int per_writer = static_cast<int>(state.range(0)) / kBuildWriters;
  const auto runs = strided_runs(kBuildWriters, per_writer);
  for (auto _ : state) {
    IndexBuilder builder(IndexBackend::flat);
    for (const auto& r : runs) builder.add_run(r);
    benchmark::DoNotOptimize(builder.build());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(state.range(0)));
}

// Merge into the map backend: isolates how much of the win is the merge
// (vs the flat representation).
void BM_GlobalBuildMergeBTree(benchmark::State& state) {
  const int per_writer = static_cast<int>(state.range(0)) / kBuildWriters;
  const auto runs = strided_runs(kBuildWriters, per_writer);
  for (auto _ : state) {
    IndexBuilder builder(IndexBackend::btree);
    for (const auto& r : runs) builder.add_run(r);
    benchmark::DoNotOptimize(builder.build());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(state.range(0)));
}

// Pattern backend: same merge front-end, then run detection over the
// resolved mappings so lookups answer arithmetically.
void BM_GlobalBuildMergePattern(benchmark::State& state) {
  const int per_writer = static_cast<int>(state.range(0)) / kBuildWriters;
  const auto runs = strided_runs(kBuildWriters, per_writer);
  for (auto _ : state) {
    IndexBuilder builder(IndexBackend::pattern);
    for (const auto& r : runs) builder.add_run(r);
    benchmark::DoNotOptimize(builder.build());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(state.range(0)));
}

void BM_IndexBuildStrided(benchmark::State& state) {
  const auto entries = strided_entries(static_cast<int>(state.range(0)), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BTreeIndex::build(entries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_IndexBuildStrided)->Arg(64)->Arg(512)->Arg(2048);

void BM_IndexBuildSequentialCompresses(benchmark::State& state) {
  // One writer, purely sequential: compression collapses to one mapping.
  std::vector<IndexEntry> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.push_back(IndexEntry{static_cast<std::uint64_t>(i) * 4096, 4096,
                                 static_cast<std::uint64_t>(i) * 4096, i + 1, 0});
  }
  for (auto _ : state) {
    const BTreeIndex idx = BTreeIndex::build(entries);
    benchmark::DoNotOptimize(idx.mapping_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_IndexBuildSequentialCompresses)->Arg(1024)->Arg(16384);

void BM_IndexLookupBTree(benchmark::State& state) {
  const BTreeIndex idx = BTreeIndex::build(strided_entries(static_cast<int>(state.range(0)), 64));
  Rng rng(42);
  const std::uint64_t size = idx.logical_size();
  for (auto _ : state) {
    const std::uint64_t off = rng.below(size - 1);
    benchmark::DoNotOptimize(idx.lookup(off, std::min<std::uint64_t>(1 << 20, size - off)));
  }
}
BENCHMARK(BM_IndexLookupBTree)->Arg(64)->Arg(1024);

void BM_IndexLookupFlat(benchmark::State& state) {
  const FlatIndex idx = FlatIndex::build(strided_entries(static_cast<int>(state.range(0)), 64));
  Rng rng(42);
  const std::uint64_t size = idx.logical_size();
  for (auto _ : state) {
    const std::uint64_t off = rng.below(size - 1);
    benchmark::DoNotOptimize(idx.lookup(off, std::min<std::uint64_t>(1 << 20, size - off)));
  }
}
BENCHMARK(BM_IndexLookupFlat)->Arg(64)->Arg(1024);

void BM_IndexLookupPattern(benchmark::State& state) {
  const PatternIndex idx =
      PatternIndex::build(strided_entries(static_cast<int>(state.range(0)), 64));
  Rng rng(42);
  const std::uint64_t size = idx.logical_size();
  for (auto _ : state) {
    const std::uint64_t off = rng.below(size - 1);
    benchmark::DoNotOptimize(idx.lookup(off, std::min<std::uint64_t>(1 << 20, size - off)));
  }
}
BENCHMARK(BM_IndexLookupPattern)->Arg(64)->Arg(1024);

void BM_EntrySerialization(benchmark::State& state) {
  const auto entries = strided_entries(256, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_entries(entries));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size() * IndexEntry::kSerializedSize));
}
BENCHMARK(BM_EntrySerialization);

void BM_EntryDeserialization(benchmark::State& state) {
  const auto entries = strided_entries(256, 64);
  FragmentList fl;
  fl.append(DataView::literal(serialize_entries(entries)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(deserialize_entries(fl));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fl.size()));
}
BENCHMARK(BM_EntryDeserialization);

void BM_EntryEncodeV2(benchmark::State& state) {
  const auto entries = strided_entries(256, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_entries(entries, WireFormat::v2));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size() * IndexEntry::kSerializedSize));
}
BENCHMARK(BM_EntryEncodeV2);

void BM_EntryDecodeV2(benchmark::State& state) {
  const auto entries = strided_entries(256, 64);
  FragmentList fl;
  fl.append(DataView::literal(encode_entries(entries, WireFormat::v2)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_entries(fl));
  }
  // Items, not bytes: the interesting rate is entries decoded per second,
  // and the v2 buffer is far smaller than count * 40.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_EntryDecodeV2);

void register_build_benchmarks(bool want_btree, bool want_flat, bool want_pattern) {
  auto args = [](benchmark::internal::Benchmark* b) {
    b->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
  };
  if (want_btree) {
    args(benchmark::RegisterBenchmark("BM_GlobalBuildOracleBTree", BM_GlobalBuildOracleBTree));
    args(benchmark::RegisterBenchmark("BM_GlobalBuildMergeBTree", BM_GlobalBuildMergeBTree));
  }
  if (want_flat) {
    args(benchmark::RegisterBenchmark("BM_GlobalBuildMergeFlat", BM_GlobalBuildMergeFlat));
  }
  if (want_pattern) {
    args(benchmark::RegisterBenchmark("BM_GlobalBuildMergePattern", BM_GlobalBuildMergePattern));
  }
}

// Per-backend serialized footprint for the strided workload: what each
// backend's to_entries() costs on the wire under v1 (fixed 40-byte records)
// and v2 (pattern-compressed). Each (entry count, backend) row is an
// independent build, so the rows are spread across the shard pool and
// printed afterwards in the serial order.
void print_size_report(bool want_btree, bool want_flat, bool want_pattern, std::size_t shards) {
  struct Job {
    int total;
    const char* name;
    IndexBackend backend;
  };
  std::vector<Job> jobs;
  for (const int total : {10000, 100000, 1000000}) {
    if (want_btree) jobs.push_back({total, "btree", IndexBackend::btree});
    if (want_flat) jobs.push_back({total, "flat", IndexBackend::flat});
    if (want_pattern) jobs.push_back({total, "pattern", IndexBackend::pattern});
  }
  std::vector<std::string> lines(jobs.size());
  tio::sim::ShardPool pool(shards);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool.submit([&lines, &jobs, i] {
      const Job& job = jobs[i];
      const auto runs = strided_runs(kBuildWriters, job.total / kBuildWriters);
      IndexBuilder builder(job.backend);
      for (const auto& r : runs) builder.add_run(r);
      const IndexPtr idx = builder.build();
      const std::uint64_t v1 = idx->serialized_bytes(WireFormat::v1);
      const std::uint64_t v2 = idx->serialized_bytes(WireFormat::v2);
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%-9d %-8s %14llu %14llu %8.1fx %14llu\n", job.total,
                    job.name, static_cast<unsigned long long>(v1),
                    static_cast<unsigned long long>(v2),
                    static_cast<double>(v1) / static_cast<double>(v2),
                    static_cast<unsigned long long>(idx->memory_bytes()));
      lines[i] = buf;
    });
  }
  pool.run_all();
  std::printf("\n-- serialized index size per backend (strided workload) --\n");
  std::printf("%-9s %-8s %14s %14s %9s %14s\n", "entries", "backend", "wire_v1_B", "wire_v2_B",
              "ratio", "memory_B");
  for (const std::string& line : lines) std::fputs(line.c_str(), stdout);
}

}  // namespace
}  // namespace tio::plfs

int main(int argc, char** argv) {
  bool want_btree = true;
  bool want_flat = true;
  bool want_pattern = true;
  std::string trace_path;
  long long shards = 1;
  // Strip our flags before google-benchmark sees the command line.
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--index_backend=";
    constexpr const char* kTrace = "--trace=";
    constexpr const char* kShards = "--shards=";
    if (std::strncmp(argv[i], kShards, std::strlen(kShards)) == 0) {
      shards = std::atoll(argv[i] + std::strlen(kShards));
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      tio::plfs::IndexBackend backend;
      if (!tio::plfs::parse_index_backend(argv[i] + std::strlen(kFlag), backend)) {
        std::fprintf(stderr, "unknown --index_backend (want btree|flat|pattern): %s\n", argv[i]);
        return 1;
      }
      want_btree = backend == tio::plfs::IndexBackend::btree;
      want_flat = backend == tio::plfs::IndexBackend::flat;
      want_pattern = backend == tio::plfs::IndexBackend::pattern;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], kTrace, std::strlen(kTrace)) == 0) {
      trace_path = argv[i] + std::strlen(kTrace);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  // Same policy as bench::shards_or_die (bench_util.h pulls in testbed
  // libraries this target does not link, so the check is mirrored here).
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1 (got %lld)\n", shards);
    return 1;
  }
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  const char* oversub = std::getenv("TIO_SHARDS_OVERSUBSCRIBE");
  const bool allow_oversub = oversub != nullptr && oversub[0] == '1';
  if (static_cast<unsigned long long>(shards) > hc && !allow_oversub) {
    std::fprintf(stderr,
                 "--shards=%lld exceeds hardware_concurrency()=%u "
                 "(set TIO_SHARDS_OVERSUBSCRIBE=1 to force)\n",
                 shards, hc);
    return 1;
  }
  if (static_cast<unsigned long long>(shards) > tio::sim::kMaxShards) {
    std::fprintf(stderr, "--shards=%lld exceeds the supported maximum of %zu\n", shards,
                 tio::sim::kMaxShards);
    return 1;
  }
  tio::counter("sim.engine.shards").add(static_cast<std::uint64_t>(shards));
  // The index microbenches are host-CPU work, so the trace holds whatever
  // simulated spans ran (usually none) — the flag exists for tooling
  // uniformity and always yields a valid, loadable document.
  if (!trace_path.empty()) tio::trace::Tracer::instance().set_enabled(true);
  tio::plfs::register_build_benchmarks(want_btree, want_flat, want_pattern);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_path.empty()) {
    if (!tio::trace::Tracer::instance().write_chrome_json(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu spans -> %s\n",
                 tio::trace::Tracer::instance().span_count(), trace_path.c_str());
  }
  tio::plfs::print_size_report(want_btree, want_flat, want_pattern,
                               static_cast<std::size_t>(shards));
  const auto counters = tio::counter_snapshot("plfs.index");
  if (!counters.empty()) {
    std::printf("\n-- plfs.index counters --\n");
    for (const auto& [name, value] : counters) {
      std::printf("%-32s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
    }
  }
  return 0;
}
