file(REMOVE_RECURSE
  "CMakeFiles/tio_mpisim.dir/comm.cc.o"
  "CMakeFiles/tio_mpisim.dir/comm.cc.o.d"
  "CMakeFiles/tio_mpisim.dir/runtime.cc.o"
  "CMakeFiles/tio_mpisim.dir/runtime.cc.o.d"
  "libtio_mpisim.a"
  "libtio_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
