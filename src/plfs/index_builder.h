// Streaming construction of the global index from per-writer runs.
//
// Each writer's index log is already in timestamp order (a writer's entries
// are appended as its writes happen), so the global timestamp order is a
// k-way merge of k sorted runs — O(E log K) — rather than the original
// design's O(E log E) re-sort of the concatenated pool. IndexBuilder holds
// runs without copying them, merges lazily, and builds whichever IndexView
// backend the mount asks for. Aggregation trees compose naturally: a group
// leader's merged run is itself a sorted run for the next level up.
//
// Host-side build effort is reported through common/stats counters:
//   plfs.index.builds          completed build() calls
//   plfs.index.runs_merged     input runs consumed by merges
//   plfs.index.entries_merged  entries that passed through a merge
//   plfs.index.build_ns        host wall-clock ns spent in merge+build
// (Simulated time is charged by the callers via index_cpu_per_entry and is
// identical across backends.)
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "plfs/index.h"
#include "plfs/mount.h"

namespace tio::plfs {

using IndexPtr = std::shared_ptr<const IndexView>;

class IndexBuilder {
 public:
  explicit IndexBuilder(IndexBackend backend = IndexBackend::flat, bool compress = true)
      : backend_(backend), compress_(compress) {}

  // Adds one timestamp-sorted run without copying. Runs that turn out not to
  // be sorted (defensive: e.g. a pool concatenated by an older peer) are
  // detected at merge time and sorted in a private copy.
  void add_run(std::shared_ptr<const std::vector<IndexEntry>> run);
  // Convenience for owned/ad-hoc pools.
  void add_entries(std::vector<IndexEntry> entries);

  std::size_t total_entries() const { return total_entries_; }
  bool empty() const { return total_entries_ == 0; }

  // K-way merge of all added runs into one entry_timestamp_less-ordered run.
  // Does not consume the builder; repeated calls re-merge.
  std::vector<IndexEntry> merged_run() const;

  // Merges and builds the configured backend.
  IndexPtr build() const;

 private:
  IndexBackend backend_;
  bool compress_;
  std::size_t total_entries_ = 0;
  std::vector<std::shared_ptr<const std::vector<IndexEntry>>> runs_;
};

// --- integrity trailer for the flattened global index ---
//
// The flattened global index is written once at close and read whole at
// open, so (unlike the per-writer append-only logs) it can carry a
// self-describing integrity trailer:
//
//   [records ...][magic u32][count u64][crc32c u32]   (16B trailer)
//
// where crc covers records+magic+count. The records are either v1 fixed
// 40-byte entries or v2 pattern-compressed segments (pattern.h) — readers
// tell them apart by the v2 segment magic, so v1 files written before the
// codec stay readable. `count` is always the entry count. A missing,
// truncated, or mismatching trailer — a torn close, a partial write, bit
// rot — is detected at read time with Errc::io_error, letting the
// read-open path fall back to Parallel Index Read instead of serving
// wrong data.
inline constexpr std::uint32_t kIndexTrailerMagic = 0x58444950;  // "PIDX"
inline constexpr std::size_t kIndexTrailerSize = 16;

std::vector<std::byte> serialize_entries_with_trailer(const std::vector<IndexEntry>& entries,
                                                      WireFormat wire = WireFormat::v1);
// Verifies magic/count/crc, then deserializes the records. Any integrity
// failure is Errc::io_error with the failing byte offset in the message.
Result<std::vector<IndexEntry>> deserialize_trailed_entries(const FragmentList& data);

// "--index_backend" flag vocabulary: "btree" | "flat" | "pattern"
// (case-sensitive). Returns false on unknown names, leaving `out`
// untouched.
bool parse_index_backend(std::string_view name, IndexBackend& out);
std::string index_backend_name(IndexBackend backend);

}  // namespace tio::plfs
