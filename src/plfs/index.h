// PLFS index machinery.
//
// Every process writing a PLFS logical file appends its data to a private
// log and records, per write, an IndexEntry mapping the logical extent to
// (writer, physical offset in that writer's data log, timestamp). Reading
// the logical file requires the union of all writers' entries — the global
// index — with overlaps resolved by timestamp (PLFS defers write resolution
// from write time to read time; the paper's note 1).
//
// The queryable global index is split into an abstract read-side interface
// (IndexView) and two implementations:
//
//   * BTreeIndex — the original eager interval map (std::map keyed by
//     logical offset). Entries are inserted in timestamp order with
//     splitting and compression. Kept as the correctness oracle and as the
//     faithful "Original PLFS Design" cost model.
//   * FlatIndex  — a sorted flat vector of non-overlapping mappings with
//     binary-search lookup. Built by an offset-domain sweep over a
//     timestamp-ordered entry run (see index_builder.h for the streaming
//     k-way merge that produces such runs), which avoids per-entry
//     node-based map mutations entirely.
//   * PatternIndex (pattern.h) — the same resolved mapping set stored as
//     arithmetic pattern runs plus a literal spill, answering lookups by
//     arithmetic instead of by materialized mappings.
//
// All implementations perform entry compression: adjacent mappings from
// the same writer that are contiguous both logically and physically
// collapse into one, so well-behaved sequential/strided patterns have tiny
// indices.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/dataview.h"
#include "common/status.h"

namespace tio::plfs {

// On-wire encoding selector; defined in mount.h, used here only for the
// wire-aware serialized-size query.
enum class WireFormat : std::uint8_t;

struct IndexEntry {
  std::uint64_t logical_offset = 0;
  std::uint64_t length = 0;
  std::uint64_t physical_offset = 0;  // within the writer's data log
  std::int64_t timestamp_ns = 0;
  std::uint32_t writer = 0;  // rank/pid owning data.<writer> / index.<writer>

  static constexpr std::uint64_t kSerializedSize = 40;
  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

// The timestamp order in which overlapping writes are resolved: later
// entries win; ties break by writer, then physical offset, so resolution is
// deterministic for simultaneous writers.
bool entry_timestamp_less(const IndexEntry& a, const IndexEntry& b);

// Fixed-record serialization of entry batches (the on-"disk" format of
// index.<writer> logs and of the flattened global index file).
std::vector<std::byte> serialize_entries(const std::vector<IndexEntry>& entries);
void append_serialized(std::vector<std::byte>& out, const IndexEntry& entry);
// Parses a whole buffer of records. A trailing partial record, a
// zero-length record, or an extent whose offset+length overflows is an
// error: index logs are the source of truth for the read path, so corrupt
// or truncated logs must be rejected, not silently absorbed.
Result<std::vector<IndexEntry>> deserialize_entries(const FragmentList& data);

// Read-side interface of the aggregated global index. Implementations are
// immutable once built; readers share them via shared_ptr.
class IndexView {
 public:
  struct Mapping {
    std::uint64_t logical_offset;
    std::uint64_t length;
    std::uint32_t writer;
    std::uint64_t physical_offset;
    friend bool operator==(const Mapping&, const Mapping&) = default;
  };

  virtual ~IndexView() = default;

  // Mappings covering [offset, offset+len), clipped, in logical order.
  // Unwritten gaps are simply absent from the result (they read as zeros).
  virtual std::vector<Mapping> lookup(std::uint64_t offset, std::uint64_t len) const = 0;

  // One past the highest written logical byte.
  virtual std::uint64_t logical_size() const = 0;
  virtual std::size_t mapping_count() const = 0;

  // Re-serializes the (compressed) index for broadcast/flatten costing and
  // for the flattened global index file.
  //
  // Post-resolution timestamp contract: a built index has already resolved
  // all overlaps, so the original write timestamps are gone by construction
  // (a surviving mapping may even be the stitched remains of several
  // writes). Instead of zeroing the field — which made round trips through
  // to_entries() lossy in a hidden way — entries carry a *synthetic
  // resolution-sequence timestamp*: the mapping's position in logical
  // order. That keeps any re-resolution of the output a no-op (timestamps
  // strictly increase, and the mappings are disjoint anyway), makes the
  // output a valid timestamp-sorted run for IndexBuilder, and turns the
  // field into an arithmetic sequence the pattern codec can compress.
  virtual std::vector<IndexEntry> to_entries() const = 0;

  // Fixed-record (wire v1) size; still the definition of "index volume" for
  // the compression-ratio counters.
  std::uint64_t serialized_bytes() const { return mapping_count() * IndexEntry::kSerializedSize; }
  // Size under a specific wire format. v2 runs the pattern encoder once and
  // caches the result (views are immutable after build).
  std::uint64_t serialized_bytes(WireFormat wire) const;

  // Approximate host-memory footprint, used by the IndexCache byte budget.
  virtual std::uint64_t memory_bytes() const = 0;

 private:
  mutable std::uint64_t wire_v2_bytes_ = 0;  // 0 = not yet computed
};

// Offset-domain sweep shared by FlatIndex and PatternIndex: resolves a
// timestamp-ordered entry run (entry_timestamp_less order, later-wins last)
// into the canonical non-overlapping mapping set, sorted by logical offset
// and (when `compress`) maximally merged.
std::vector<IndexView::Mapping> resolve_sorted_entries(const std::vector<IndexEntry>& sorted,
                                                       bool compress);

// The original map-based index: O(E log E) re-sort of the entry pool plus a
// node-based map insert per entry. The correctness oracle.
class BTreeIndex final : public IndexView {
 public:
  // Builds from an unordered entry pool: sorts by timestamp (ties by writer)
  // so that later writes win, then inserts with splitting + compression.
  // `compress` exists for the ablation bench; production callers leave it on.
  static BTreeIndex build(std::vector<IndexEntry> entries, bool compress = true);
  // Same insertion pipeline minus the sort, for entries already in
  // timestamp order (e.g. the output of IndexBuilder::merged_run).
  static BTreeIndex from_sorted(const std::vector<IndexEntry>& sorted, bool compress = true);

  std::vector<Mapping> lookup(std::uint64_t offset, std::uint64_t len) const override;
  std::uint64_t logical_size() const override;
  std::size_t mapping_count() const override { return map_.size(); }
  std::vector<IndexEntry> to_entries() const override;
  std::uint64_t memory_bytes() const override {
    // Mapping payload plus typical red-black node overhead.
    return map_.size() * (sizeof(std::pair<std::uint64_t, Mapping>) + 48);
  }

 private:
  void insert(const IndexEntry& e, bool compress);
  // key = logical offset; entries non-overlapping.
  std::map<std::uint64_t, Mapping> map_;
};

// Flat-vector index: non-overlapping mappings sorted by logical offset,
// looked up by binary search. Building is a sweep over offset-domain
// boundaries with a lazy-deletion max-heap of live entries — everything is
// contiguous vectors, no node allocations, which is where the build speedup
// over BTreeIndex comes from.
class FlatIndex final : public IndexView {
 public:
  // `sorted` must be in entry_timestamp_less order (later-wins last); use
  // IndexBuilder to merge per-writer runs into that order cheaply.
  static FlatIndex from_sorted(const std::vector<IndexEntry>& sorted, bool compress = true);
  // Convenience for unordered pools: sorts, then delegates to from_sorted.
  static FlatIndex build(std::vector<IndexEntry> entries, bool compress = true);

  std::vector<Mapping> lookup(std::uint64_t offset, std::uint64_t len) const override;
  std::uint64_t logical_size() const override;
  std::size_t mapping_count() const override { return mappings_.size(); }
  std::vector<IndexEntry> to_entries() const override;
  std::uint64_t memory_bytes() const override { return mappings_.capacity() * sizeof(Mapping); }

 private:
  std::vector<Mapping> mappings_;  // sorted by logical_offset, non-overlapping
};

}  // namespace tio::plfs
