// Shared plumbing for the figure-reproduction harnesses.
#pragma once

#include <algorithm>
#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/jsonfmt.h"
#include "common/stats.h"
#include "common/strutil.h"
#include "common/table.h"
#include "common/trace.h"
#include "net/topology.h"
#include "plfs/pattern.h"
#include "sim/sharded.h"
#include "testbed/testbed.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"
#include "workloads/metadata.h"

namespace tio::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("   paper reference: %s\n\n", paper_ref.c_str());
}

// MB/s (decimal), the unit the paper plots.
inline double mbps(double bytes_per_sec) { return bytes_per_sec / 1e6; }

// Builds a fresh LANL-cluster rig (Sections III-V testbed).
inline testbed::Rig::Options lanl_rig(std::size_t num_mds = 1, std::size_t backends = 0) {
  testbed::Rig::Options o;
  o.cluster = testbed::lanl_cluster();
  o.pfs = testbed::lanl_pfs(num_mds);
  o.plfs_backends = backends;
  return o;
}

// Builds a fresh Cielo rig (Section VI testbed).
inline testbed::Rig::Options cielo_rig(std::size_t num_mds = 10, std::size_t backends = 0) {
  testbed::Rig::Options o;
  o.cluster = testbed::cielo();
  o.pfs = testbed::cielo_pfs(num_mds);
  o.plfs_backends = backends;
  return o;
}

// Doubling sweep capped at `max`, always including `max` itself.
inline std::vector<int> sweep(int from, int max) {
  std::vector<int> out;
  for (int v = from; v < max; v *= 2) out.push_back(v);
  if (out.empty() || out.back() != max) out.push_back(max);
  return out;
}

// Shared --index_backend flag (btree|flat|pattern) for the figure harnesses.
inline std::string* add_index_backend_flag(FlagSet& flags) {
  return flags.add_string("index_backend", "flat", "global index backend: btree|flat|pattern");
}

// Flag-value -> IndexBackend; exits with a usage message on bad input.
inline plfs::IndexBackend index_backend_or_die(const std::string& name) {
  plfs::IndexBackend backend = plfs::IndexBackend::flat;
  if (!plfs::parse_index_backend(name, backend)) {
    std::fprintf(stderr, "unknown --index_backend (want btree|flat|pattern): %s\n", name.c_str());
    std::exit(1);
  }
  return backend;
}

// Shared --index_wire flag (v1|v2) selecting the index wire codec.
inline std::string* add_index_wire_flag(FlagSet& flags) {
  return flags.add_string("index_wire", "v2", "index wire format: v1|v2 (pattern-compressed)");
}

// Flag-value -> WireFormat; exits with a usage message on bad input.
inline plfs::WireFormat index_wire_or_die(const std::string& name) {
  plfs::WireFormat wire = plfs::WireFormat::v2;
  if (!plfs::parse_wire_format(name, wire)) {
    std::fprintf(stderr, "unknown --index_wire (want v1|v2): %s\n", name.c_str());
    std::exit(1);
  }
  return wire;
}

// Shared --fault_plan flag (see pfs/faulty_fs.h for the grammar; a preset
// name or key=value pairs).
inline std::string* add_fault_plan_flag(FlagSet& flags) {
  return flags.add_string("fault_plan", "none",
                          "fault plan: none|transient1|stress|failover|partition|key=value,...");
}

// Flag-value -> FaultPlan; exits with a usage message on bad input.
inline pfs::FaultPlan fault_plan_or_die(const std::string& spec) {
  auto plan = pfs::FaultPlan::parse(spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "bad --fault_plan: %s\n", plan.status().message().c_str());
    std::exit(1);
  }
  return std::move(plan.value());
}

// Shared --mds_replication flag: how the simulated metadata service
// survives server loss (see pfs::MdsReplication).
inline std::string* add_mds_replication_flag(FlagSet& flags) {
  return flags.add_string("mds_replication", "none",
                          "metadata service replication: none|raft");
}

// Flag-value -> MdsReplication; exits with a usage message on bad input.
inline pfs::MdsReplication mds_replication_or_die(const std::string& name) {
  if (name == "none") return pfs::MdsReplication::none;
  if (name == "raft") return pfs::MdsReplication::raft;
  std::fprintf(stderr, "unknown --mds_replication (want none|raft): %s\n", name.c_str());
  std::exit(1);
}

// Shared metadata-path tuning flags: client-side mutation batching, the
// leased client metadata cache, and the Raft client timeouts (defaults match
// the historical hard-coded values, so omitting every flag is byte-identical
// to the pre-flag binaries).
struct MdsTuningFlags {
  std::int64_t* mds_batch;
  std::int64_t* mds_batch_linger_us;
  std::int64_t* meta_lease_ms;
  std::int64_t* raft_request_timeout_ms;
  std::int64_t* raft_commit_timeout_ms;
};

inline MdsTuningFlags add_mds_tuning_flags(FlagSet& flags) {
  MdsTuningFlags t;
  t.mds_batch = flags.add_i64(
      "mds_batch", 0, "coalesce up to N metadata mutations per MDS round trip (0 = off)");
  t.mds_batch_linger_us =
      flags.add_i64("mds_batch_linger_us", 50, "max virtual us a forming batch waits to fill");
  t.meta_lease_ms = flags.add_i64(
      "meta_lease_ms", 0, "client metadata cache lease in virtual ms (0 = cache off)");
  t.raft_request_timeout_ms =
      flags.add_i64("raft_request_timeout_ms", 40, "per-attempt Raft client request timeout, ms");
  t.raft_commit_timeout_ms = flags.add_i64(
      "raft_commit_timeout_ms", 400, "Raft commit+apply wait for an accepted entry, ms");
  return t;
}

// Validates the tuning flags and applies them onto a PfsConfig.
inline void apply_mds_tuning(const MdsTuningFlags& t, pfs::PfsConfig& pfs) {
  const std::pair<const char*, std::int64_t> checks[] = {
      {"mds_batch", *t.mds_batch},
      {"mds_batch_linger_us", *t.mds_batch_linger_us},
      {"meta_lease_ms", *t.meta_lease_ms},
      {"raft_request_timeout_ms", *t.raft_request_timeout_ms},
      {"raft_commit_timeout_ms", *t.raft_commit_timeout_ms}};
  for (const auto& [name, v] : checks) {
    if (v < 0) {
      std::fprintf(stderr, "--%s must be >= 0 (got %lld)\n", name, static_cast<long long>(v));
      std::exit(1);
    }
  }
  if (*t.raft_request_timeout_ms == 0 || *t.raft_commit_timeout_ms == 0) {
    std::fprintf(stderr, "raft timeouts must be > 0\n");
    std::exit(1);
  }
  pfs.mds_batch = static_cast<std::size_t>(*t.mds_batch);
  pfs.mds_batch_linger = Duration::us(*t.mds_batch_linger_us);
  pfs.meta_lease = Duration::ms(*t.meta_lease_ms);
  pfs.raft_request_timeout = Duration::ms(*t.raft_request_timeout_ms);
  pfs.raft_commit_timeout = Duration::ms(*t.raft_commit_timeout_ms);
}

// Batched-metadata and client-cache instrumentation. stderr, like the other
// counter dumps, so stdout stays byte-comparable across runs.
inline void print_meta_counters() {
  auto counters = counter_snapshot("pfs.batch");
  const auto cache = counter_snapshot("pfs.meta_cache");
  const auto meta = counter_snapshot("pfs.meta");
  counters.insert(counters.end(), cache.begin(), cache.end());
  counters.insert(counters.end(), meta.begin(), meta.end());
  if (counters.empty()) return;
  std::fprintf(stderr, "\n-- metadata batch/cache counters --\n");
  for (const auto& [name, value] : counters) {
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
}

// Fault/retry/degradation instrumentation accumulated during the run.
// stderr on purpose: stdout must stay byte-identical across runs whether or
// not a plan is active (the determinism check diffs it).
inline void print_fault_counters() {
  auto counters = counter_snapshot("plfs.fault");
  const auto retry = counter_snapshot("plfs.retry");
  const auto degrade = counter_snapshot("plfs.degrade");
  const auto direct = counter_snapshot("direct.retry");
  const auto raft = counter_snapshot("raft");
  counters.insert(counters.end(), retry.begin(), retry.end());
  counters.insert(counters.end(), degrade.begin(), degrade.end());
  counters.insert(counters.end(), direct.begin(), direct.end());
  counters.insert(counters.end(), raft.begin(), raft.end());
  if (counters.empty()) return;
  std::fprintf(stderr, "\n-- fault/retry counters --\n");
  for (const auto& [name, value] : counters) {
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
}

// Host-side index/cache instrumentation accumulated during the run.
inline void print_index_counters() {
  // Prefix grouping is dot-boundary-aware, so "plfs.index" no longer drags
  // in the plfs.index_cache.* family; ask for both groups explicitly.
  auto counters = counter_snapshot("plfs.index");
  const auto cache = counter_snapshot("plfs.index_cache");
  counters.insert(counters.end(), cache.begin(), cache.end());
  if (counters.empty()) return;
  // stderr on purpose: build_ns is host wall time, and stdout must stay
  // byte-identical across runs (the determinism check diffs it).
  std::fprintf(stderr, "\n-- index counters (host-side) --\n");
  std::uint64_t raw = 0, wire = 0;
  for (const auto& [name, value] : counters) {
    if (name == "plfs.index.pattern.raw_bytes") raw = value;
    if (name == "plfs.index.pattern.wire_bytes") wire = value;
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
  if (raw > 0 && wire > 0) {
    std::fprintf(stderr, "%-36s %.1fx\n", "plfs.index.pattern.compression",
                 static_cast<double>(raw) / static_cast<double>(wire));
  }
}

// Emits the accumulated counter state as one JSON object member named
// "counters" (no trailing comma), for the figure harnesses' --json output.
// Includes the derived pattern-compression ratio when the codec ran.
inline void json_counters(std::FILE* f) {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  for (const char* prefix :
       {"plfs.index", "plfs.index_cache", "plfs.fault", "plfs.retry", "plfs.degrade",
        "iolib.cb", "raft", "pfs.batch", "pfs.meta_cache", "pfs.meta", "net.topo"}) {
    const auto group = counter_snapshot(prefix);
    counters.insert(counters.end(), group.begin(), group.end());
  }
  std::fprintf(f, "  \"counters\": {");
  std::uint64_t raw = 0, wire = 0;
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (name == "plfs.index.pattern.raw_bytes") raw = value;
    if (name == "plfs.index.pattern.wire_bytes") wire = value;
    std::fprintf(f, "%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                 static_cast<unsigned long long>(value));
    first = false;
  }
  std::fprintf(f, "\n  },\n");
  // json_double, not printf %f: the harnesses call setlocale(), and a comma
  // decimal point would corrupt the JSON document.
  if (raw > 0 && wire > 0) {
    const double ratio = static_cast<double>(raw) / static_cast<double>(wire);
    std::fprintf(f, "  \"index_compression_ratio\": %s,\n", json_double(ratio, 2).c_str());
  } else {
    std::fprintf(f, "  \"index_compression_ratio\": null,\n");
  }
}

// Emits the accumulated latency-histogram state as one JSON object member
// named "histograms" (no trailing comma). All fields are integer
// nanoseconds, immune to locale.
inline void json_histograms(std::FILE* f, std::string_view prefix = "") {
  const auto hists = histogram_snapshot(prefix);
  std::fprintf(f, "  \"histograms\": {");
  bool first = true;
  for (const auto& [name, h] : hists) {
    if (h->count() == 0) continue;
    std::fprintf(f,
                 "%s\n    \"%s\": {\"count\": %llu, \"p50_ns\": %lld, \"p90_ns\": %lld, "
                 "\"p99_ns\": %lld, \"max_ns\": %lld, \"sum_ns\": %lld}",
                 first ? "" : ",", name.c_str(), static_cast<unsigned long long>(h->count()),
                 static_cast<long long>(h->percentile(50)), static_cast<long long>(h->percentile(90)),
                 static_cast<long long>(h->percentile(99)), static_cast<long long>(h->max()),
                 static_cast<long long>(h->sum()));
    first = false;
  }
  std::fprintf(f, "\n  },\n");
}

// Latency-histogram table on stderr (host-readable companion of the --json
// "histograms" block; stdout stays byte-comparable across runs).
inline void print_histograms() {
  const auto hists = histogram_snapshot("");
  bool any = false;
  for (const auto& [name, h] : hists) any = any || h->count() > 0;
  if (!any) return;
  std::fprintf(stderr, "\n-- latency histograms (virtual ns) --\n");
  std::fprintf(stderr, "%-28s %10s %12s %12s %12s %12s\n", "span", "count", "p50", "p90", "p99",
               "max");
  for (const auto& [name, h] : hists) {
    if (h->count() == 0) continue;
    std::fprintf(stderr, "%-28s %10llu %12lld %12lld %12lld %12lld\n", name.c_str(),
                 static_cast<unsigned long long>(h->count()),
                 static_cast<long long>(h->percentile(50)),
                 static_cast<long long>(h->percentile(90)),
                 static_cast<long long>(h->percentile(99)), static_cast<long long>(h->max()));
  }
}

// Collective-buffering instrumentation (message census, bytes shipped
// across nodes, sieve activity). stderr, like the other counter dumps, so
// stdout stays byte-comparable across runs.
inline void print_cb_counters() {
  const auto counters = counter_snapshot("iolib.cb");
  if (counters.empty()) return;
  std::fprintf(stderr, "\n-- collective-buffering counters --\n");
  for (const auto& [name, value] : counters) {
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
}

// Shared CbConfig flags for the benches that drive the collective layer.
struct CbFlags {
  std::int64_t* aggregators;
  std::int64_t* buffer_mib;
  bool* node_agg;
  double* sieve_threshold;
};

inline CbFlags add_cb_flags(FlagSet& flags) {
  CbFlags cb;
  cb.aggregators = flags.add_i64("cb-aggregators", 0,
                                 "collective-buffering aggregator count (0 = one per node)");
  cb.buffer_mib = flags.add_i64("cb-buffer-mib", 4, "collective buffer size per access, MiB");
  cb.node_agg = flags.add_bool("cb-node-agg", false,
                               "coalesce requests at per-node leaders before the exchange");
  cb.sieve_threshold = flags.add_f64(
      "cb-sieve-threshold", 0.0,
      "read-side data sieving: bridge holes while hole/useful <= threshold (0 = off)");
  return cb;
}

inline iolib::CbConfig cb_config_of(const CbFlags& cb) {
  iolib::CbConfig config;
  config.aggregators = static_cast<int>(*cb.aggregators);
  config.buffer_bytes = static_cast<std::uint64_t>(*cb.buffer_mib) << 20;
  config.node_aggregation = *cb.node_agg;
  config.sieve_threshold = *cb.sieve_threshold;
  return config;
}

// Shared fabric-topology flags: preset, rack geometry, and ToR uplink
// taper. Defaults are the flat preset — byte-identical to the pre-topology
// binaries (Cluster builds no Topology at all).
struct TopologyFlags {
  std::string* topology;
  std::int64_t* racks;
  double* oversubscription;
};

inline TopologyFlags add_topology_flags(FlagSet& flags) {
  TopologyFlags t;
  t.topology = flags.add_string("topology", "flat", "fabric preset: flat|tor|fat-tree");
  t.racks = flags.add_i64("racks", 0,
                          "rack count for tor/fat-tree (0 = nodes/8, at least 1)");
  t.oversubscription =
      flags.add_f64("oversubscription", 1.0, "ToR uplink taper (4 = 4:1 oversubscribed)");
  return t;
}

// Validates the topology flags and applies them onto a ClusterConfig.
inline void apply_topology(const TopologyFlags& t, net::ClusterConfig& cluster) {
  net::TopologyKind kind = net::TopologyKind::flat;
  if (!net::parse_topology_kind(*t.topology, kind)) {
    std::fprintf(stderr, "unknown --topology (want flat|tor|fat-tree): %s\n",
                 t.topology->c_str());
    std::exit(1);
  }
  cluster.topology = kind;
  if (*t.racks < 0) {
    std::fprintf(stderr, "--racks must be >= 0 (got %lld)\n", static_cast<long long>(*t.racks));
    std::exit(1);
  }
  if (*t.oversubscription <= 0) {
    std::fprintf(stderr, "--oversubscription must be > 0\n");
    std::exit(1);
  }
  cluster.oversubscription = *t.oversubscription;
  std::size_t racks = static_cast<std::size_t>(*t.racks);
  if (racks == 0) racks = std::max<std::size_t>(1, cluster.nodes / 8);
  cluster.racks = racks;
  if (cluster.nodes % cluster.racks != 0) {
    std::fprintf(stderr, "--racks=%zu does not divide nodes=%zu\n", cluster.racks,
                 cluster.nodes);
    std::exit(1);
  }
}

// Topology link/flow instrumentation (net.topo.* locality census). stderr,
// like the other counter dumps, so stdout stays byte-comparable.
inline void print_topo_counters() {
  const auto counters = counter_snapshot("net.topo");
  if (counters.empty()) return;
  std::fprintf(stderr, "\n-- topology counters --\n");
  for (const auto& [name, value] : counters) {
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
}

// Shared --shards flag: how many OS threads to spread independent
// simulations (one Rig per data point) across. 1 = the serial legacy path.
inline std::int64_t* add_shards_flag(FlagSet& flags) {
  return flags.add_i64(
      "shards", 1,
      "shard independent simulations across N OS threads (1 = serial)");
}

// Validates --shards: rejects 0/negative values and values above the
// host's hardware_concurrency() (override with TIO_SHARDS_OVERSUBSCRIBE=1
// for CI boxes that want to exercise the threaded path regardless), caps
// at sim::kMaxShards, and notes the count in the sim.engine.shards counter
// so every stderr counter dump and --json block carries it.
inline std::size_t shards_or_die(std::int64_t value) {
  if (value < 1) {
    std::fprintf(stderr, "--shards must be >= 1 (got %lld)\n",
                 static_cast<long long>(value));
    std::exit(1);
  }
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  const char* oversub = std::getenv("TIO_SHARDS_OVERSUBSCRIBE");
  const bool allow_oversub = oversub != nullptr && oversub[0] == '1';
  if (static_cast<std::uint64_t>(value) > hc && !allow_oversub) {
    std::fprintf(stderr,
                 "--shards=%lld exceeds hardware_concurrency()=%u "
                 "(set TIO_SHARDS_OVERSUBSCRIBE=1 to force)\n",
                 static_cast<long long>(value), hc);
    std::exit(1);
  }
  if (static_cast<std::uint64_t>(value) > sim::kMaxShards) {
    std::fprintf(stderr, "--shards=%lld exceeds the supported maximum of %zu\n",
                 static_cast<long long>(value), sim::kMaxShards);
    std::exit(1);
  }
  counter("sim.engine.shards").add(static_cast<std::uint64_t>(value));
  return static_cast<std::size_t>(value);
}

// Shared --trace flag: when non-empty, span tracing is enabled for the whole
// run and the buffered spans are written to the path as Chrome trace-event
// JSON (chrome://tracing, Perfetto) by finish_trace().
inline std::string* add_trace_flag(FlagSet& flags) {
  std::string* path = flags.add_string("trace", "", "write Chrome trace-event JSON to this file");
  return path;
}

// Call once after flag parsing: turns the tracer on if --trace was given.
inline void start_trace(const std::string& path) {
  if (!path.empty()) trace::Tracer::instance().set_enabled(true);
}

// Call once at exit: writes the trace file if --trace was given.
inline void finish_trace(const std::string& path) {
  if (path.empty()) return;
  if (!trace::Tracer::instance().write_chrome_json(path)) {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "\ntrace: %zu spans -> %s\n", trace::Tracer::instance().span_count(),
               path.c_str());
}

// Wall-clock engine instrumentation: raw sim.engine.* counters plus the
// derived events-per-second figure the scaling sweeps are gated by. Written
// to stderr so figure tables on stdout stay byte-comparable across runs.
inline void print_sim_counters() {
  auto counters = counter_snapshot("sim.engine");
  const auto spills = counter_snapshot("common.fn");
  counters.insert(counters.end(), spills.begin(), spills.end());
  if (counters.empty()) return;
  std::fprintf(stderr, "\n-- engine counters (host-side) --\n");
  std::uint64_t events = 0, wall_ns = 0;
  for (const auto& [name, value] : counters) {
    if (name == "sim.engine.events") events = value;
    if (name == "sim.engine.run_wall_ns") wall_ns = value;
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  if (events > 0 && wall_ns > 0) {
    std::fprintf(stderr, "%-36s %.3f\n", "sim.engine.events_per_sec_millions",
                 static_cast<double>(events) / (static_cast<double>(wall_ns) * 1e-9) / 1e6);
  }
}

}  // namespace tio::bench
