#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace tio {

double Series::sum() const {
  double s = 0;
  for (double x : xs_) s += x;
  return s;
}

double Series::mean() const {
  if (xs_.empty()) throw std::logic_error("Series::mean on empty series");
  return sum() / static_cast<double>(xs_.size());
}

double Series::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Series::min() const {
  if (xs_.empty()) throw std::logic_error("Series::min on empty series");
  return *std::min_element(xs_.begin(), xs_.end());
}

double Series::max() const {
  if (xs_.empty()) throw std::logic_error("Series::max on empty series");
  return *std::max_element(xs_.begin(), xs_.end());
}

double Series::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("Series::percentile on empty series");
  std::vector<double> s = xs_;
  std::sort(s.begin(), s.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(s.size())));
  return s[rank == 0 ? 0 : rank - 1];
}

namespace {

struct CounterRegistry {
  std::mutex mu;
  // std::map: stable addresses for the Counter objects and sorted snapshots.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
};

CounterRegistry& registry() {
  static auto* r = new CounterRegistry();  // leaked: counters outlive everything
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  CounterRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot(std::string_view prefix) {
  CounterRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, c] : r.counters) {
    if (name.size() >= prefix.size() && std::string_view(name).substr(0, prefix.size()) == prefix) {
      out.emplace_back(name, c->value());
    }
  }
  return out;
}

void reset_counters() {
  CounterRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
}

}  // namespace tio
