# Empty compiler generated dependencies file for tio_net.
# This may be replaced when dependencies are built.
