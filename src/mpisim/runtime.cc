#include "mpisim/runtime.h"

#include <cassert>
#include <stdexcept>

#include "mpisim/comm.h"

namespace tio::mpi {

Runtime::Runtime(net::Cluster& cluster, int nprocs) : cluster_(cluster), nprocs_(nprocs) {
  if (nprocs <= 0) throw std::invalid_argument("Runtime: nprocs must be positive");
}

std::size_t Runtime::node_of(int rank) const {
  const auto& cfg = cluster_.config();
  return (static_cast<std::size_t>(rank) / cfg.cores_per_node) % cfg.nodes;
}

std::size_t Runtime::rack_of(int rank) const {
  return cluster_.config().rack_of_node(node_of(rank));
}

sim::Queue<std::any>& Runtime::mailbox(const MailboxKey& key) {
  // Mailboxes (and their recycling lists) belong to one engine and are
  // unsynchronized; all ranks of a runtime must run on that engine's shard.
  assert(engine().is_current() && "Runtime::mailbox used off its engine's shard");
  auto& slot = mailboxes_[key];
  if (slot == nullptr) {
    if (!idle_queues_.empty()) {
      slot = idle_queues_.back();
      idle_queues_.pop_back();
    } else {
      all_queues_.push_back(std::make_unique<sim::Queue<std::any>>(engine()));
      slot = all_queues_.back().get();
    }
  }
  return *slot;
}

void Runtime::gc_mailbox(const MailboxKey& key) {
  sim::Queue<std::any>* const* slot = mailboxes_.find(key);
  if (slot != nullptr && (*slot)->idle()) {
    idle_queues_.push_back(*slot);
    mailboxes_.erase(key);
  }
}

void run_spmd(net::Cluster& cluster, int nprocs,
              const std::function<sim::Task<void>(Comm)>& rank_main) {
  Runtime rt(cluster, nprocs);
  for (int r = 0; r < nprocs; ++r) {
    cluster.engine().spawn(rank_main(Comm::world(rt, r)));
  }
  cluster.engine().run();
}

}  // namespace tio::mpi
