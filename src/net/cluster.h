// Compute-cluster model: nodes, the high-speed interconnect fabric, the
// (much slower) shared storage network, and per-node page caches.
//
// The paper's central resource asymmetry — an InfiniBand/Gemini fabric that
// is largely idle during I/O phases versus a thin 10GigE storage network —
// is what transformative middleware exploits, so the two networks are
// modeled as separate resources:
//   * fabric: by preset (see TopologyKind). The default `flat` fabric is
//     per-node full-duplex NICs (fair-shared) + per-hop latency,
//     store-and-forward (sender uplink, then latency, then receiver
//     downlink) — simple, deterministic, adequate for collective
//     algorithms, and byte-identical to the pre-topology model. The `tor`
//     and `fat_tree` presets route each message as one flow through a
//     rack-structured link graph under per-flow max-min sharing
//     (net/topology.h), so oversubscribed uplinks and incast contention
//     become visible.
//   * storage network: one global fair-share pipe with a per-stream cap at
//     the node's storage NIC rate (the 1.25 GB/s "theoretical peak").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "net/page_cache.h"
#include "sim/engine.h"
#include "sim/fairshare.h"
#include "sim/task.h"

namespace tio::net {

class Topology;

// Fabric preset. `flat` is the original non-blocking NIC model; the others
// add rack structure (net/topology.h).
enum class TopologyKind : std::uint8_t { flat, tor, fat_tree };

struct ClusterConfig {
  std::size_t nodes = 64;
  std::size_t cores_per_node = 16;
  std::uint64_t memory_per_node = 32_GiB;

  // Interconnect (IB / Gemini class).
  double nic_bandwidth = 2.0e9;                       // bytes/s per direction
  Duration fabric_latency = Duration::us(2);

  // Fabric preset and rack geometry. `racks` must divide `nodes`;
  // `oversubscription` is the ToR uplink taper (4.0 means each rack's core
  // uplink carries a quarter of its hosts' aggregate NIC rate). Both are
  // ignored by the flat preset, which has no rack-visible structure —
  // rack_of_node() still answers from the geometry so placement layers
  // can plan against it.
  TopologyKind topology = TopologyKind::flat;
  std::size_t racks = 1;
  double oversubscription = 1.0;

  // Storage network (10GigE class).
  double storage_net_bandwidth = 1.25e9;              // aggregate bytes/s
  double storage_nic_bandwidth = 1.25e9;              // per-stream cap
  Duration storage_net_latency = Duration::us(60);

  // Page cache devoted to file data per node.
  std::uint64_t page_cache_per_node = 8_GiB;
  std::uint64_t page_cache_block = 256_KiB;
  double page_cache_bandwidth = 4.0e9;                // cached-read service rate

  std::size_t total_cores() const { return nodes * cores_per_node; }
  std::size_t nodes_per_rack() const { return nodes / racks; }
  std::size_t rack_of_node(std::size_t node) const { return node / nodes_per_rack(); }

  // Latency of the shared-memory transport between co-resident ranks (no
  // NIC, no switch hop) — the cheapest interaction the fabric model has.
  Duration intra_node_latency() const { return fabric_latency / 4; }

  // The smallest latency any interaction between two simulated processes
  // carries — the conservative lookahead for sharded simulation
  // (sim/sharded.h): an event produced at virtual time t on one shard
  // cannot affect state on another shard before t + min_remote_latency(),
  // so engines may advance through [T, T + min_remote_latency()) without
  // hearing from each other.
  //
  // This must include the intra-node path: nothing forces a shard
  // partition to be node-aligned (ShardedEngine::post only checks the
  // delay against the lookahead), so two co-resident ranks may live on
  // different shards and interact at intra_node_latency() — which is
  // below fabric_latency. Every topology preset's switched path costs at
  // least one full fabric_latency hop, so the intra-node path is the true
  // minimum on the fabric side regardless of preset.
  Duration min_remote_latency() const {
    const Duration fabric_min = intra_node_latency();
    return fabric_min < storage_net_latency ? fabric_min : storage_net_latency;
  }

  // Throws std::invalid_argument on zero/negative capacities or counts,
  // non-positive latencies, or rack geometry that does not divide the
  // node count. Cluster's constructor calls this.
  void validate() const;
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterConfig config);
  ~Cluster();

  const ClusterConfig& config() const { return config_; }
  sim::Engine& engine() { return engine_; }
  std::size_t nodes() const { return config_.nodes; }

  // One fabric message from node to node (intra-node messages cost only a
  // reduced latency). The awaiting process is blocked for the full
  // transfer, like a blocking MPI send-receive pair. Flat preset:
  // store-and-forward over the per-node NIC channels. tor/fat_tree: one
  // max-min-shared flow through the preset's link graph (net/topology.h).
  sim::Task<void> fabric_transfer(std::size_t from_node, std::size_t to_node,
                                  std::uint64_t bytes);

  // The routed link graph, or nullptr for the flat preset (which keeps
  // the original NIC path untouched).
  Topology* topology() { return topo_.get(); }

  sim::FairShareChannel& storage_net() { return *storage_net_; }
  Duration storage_latency() const { return config_.storage_net_latency; }
  PageCache& page_cache(std::size_t node) { return *caches_[node]; }
  double cached_read_rate() const { return config_.page_cache_bandwidth; }

 private:
  sim::Engine& engine_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<sim::FairShareChannel>> nic_out_;
  std::vector<std::unique_ptr<sim::FairShareChannel>> nic_in_;
  std::unique_ptr<sim::FairShareChannel> storage_net_;
  std::vector<std::unique_ptr<PageCache>> caches_;
  std::unique_ptr<Topology> topo_;  // non-flat presets only
};

}  // namespace tio::net
