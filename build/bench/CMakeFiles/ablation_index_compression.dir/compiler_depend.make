# Empty compiler generated dependencies file for ablation_index_compression.
# This may be replaced when dependencies are built.
