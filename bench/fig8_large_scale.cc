// Figure 8: large-scale validation on the Cielo testbed.
//
//   8a Read bandwidth up to 65,536 processes: N-N direct, N-N PLFS, and
//      N-1 PLFS (Parallel Index Read, 10 federated MDS). N-1 through PLFS
//      tracks or exceeds direct N-N.
//   8b Large N-N write-open time: PLFS-1 vs PLFS-10 vs PLFS-20.
//   8c Large N-1 write-open time: PLFS-1 vs PLFS-10 (container/subdir
//      creation burst; federation matters as process count grows).
//   8d N-N open time, PLFS-10 vs direct: paper reports a 17x speedup at
//      32,768 processes.
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  std::setlocale(LC_ALL, "");  // stdout tables honor the user's locale; JSON must not
  FlagSet flags("fig8_large_scale: Cielo-scale read and metadata results");
  auto* max_read_procs = flags.add_i64("max-read-procs", 65536, "largest read job (fig 8a)");
  auto* max_meta_procs = flags.add_i64("max-meta-procs", 32768, "largest storm (figs 8b-d)");
  auto* per_proc_mib = flags.add_i64("per-proc-mib", 4, "MiB per process for fig 8a");
  auto* backend_name = bench::add_index_backend_flag(flags);
  auto* wire_name = bench::add_index_wire_flag(flags);
  auto* plan_spec = bench::add_fault_plan_flag(flags);
  const bench::TopologyFlags topo_flags = bench::add_topology_flags(flags);
  auto* shards_flag = bench::add_shards_flag(flags);
  auto* json_path = flags.add_string("json", "", "also write results to this file as JSON");
  auto* trace_path = bench::add_trace_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  bench::start_trace(*trace_path);
  const std::uint64_t per_proc = static_cast<std::uint64_t>(*per_proc_mib) << 20;
  const std::uint64_t record = 256_KiB;
  const plfs::IndexBackend backend = bench::index_backend_or_die(*backend_name);
  const plfs::WireFormat wire = bench::index_wire_or_die(*wire_name);
  const pfs::FaultPlan plan = bench::fault_plan_or_die(*plan_spec);
  // Validate against the Cielo geometry, then thread the resolved preset
  // into every rig below.
  net::ClusterConfig topo_cluster = testbed::cielo();
  bench::apply_topology(topo_flags, topo_cluster);
  const auto apply_topo = [&topo_cluster](testbed::Rig::Options& o) {
    o.cluster.topology = topo_cluster.topology;
    o.cluster.racks = topo_cluster.racks;
    o.cluster.oversubscription = topo_cluster.oversubscription;
  };
  const std::size_t shards = bench::shards_or_die(*shards_flag);

  struct ReadRow {
    int procs;
    double nn_direct, nn_plfs, n1_plfs;
  };
  struct StormRow {
    int procs;
    std::vector<double> open_s;  // one entry per MDS-count column
  };
  struct DirectRow {
    int procs;
    double direct_s, plfs_s;
  };
  const auto read_procs = bench::sweep(4096, static_cast<int>(*max_read_procs));
  const auto storm_procs = bench::sweep(4096, static_cast<int>(*max_meta_procs));
  std::vector<ReadRow> read_rows(read_procs.size());
  std::vector<StormRow> nn_rows(storm_procs.size()), n1_rows(storm_procs.size());
  std::vector<DirectRow> direct_rows(storm_procs.size());

  // Every cell of every section is one independent simulation. They all go
  // into a single pool so the largest jobs (which dominate wall clock)
  // spread across shard threads regardless of which figure they belong to;
  // printing happens after the join, in the same order as before.
  sim::ShardPool pool(shards);

  // --- 8a: read bandwidth ---
  const auto read_bw = [&, per_proc, record](int n, Access access, bool strided) {
    testbed::Rig::Options opts = bench::cielo_rig(10);
    opts.index_backend = backend;
    opts.index_wire = wire;
    opts.fault_plan = plan;
    apply_topo(opts);
    testbed::Rig rig(std::move(opts));
    JobSpec spec;
    spec.file = "big";
    spec.ops = strided ? strided_ops(per_proc, record) : segmented_ops(per_proc, record);
    spec.target.access = access;
    spec.target.strategy = plfs::ReadStrategy::parallel_read;
    spec.drop_caches_before_read = true;
    return run_job(rig, n, spec).read.effective_bw();
  };
  for (std::size_t i = 0; i < read_procs.size(); ++i) {
    const int n = read_procs[i];
    read_rows[i].procs = n;
    pool.submit([&read_bw, &read_rows, i, n] {
      read_rows[i].nn_direct = read_bw(n, Access::direct_nn, /*strided=*/false);
    });
    pool.submit([&read_bw, &read_rows, i, n] {
      read_rows[i].nn_plfs = read_bw(n, Access::plfs_nn, /*strided=*/false);
    });
    pool.submit([&read_bw, &read_rows, i, n] {
      read_rows[i].n1_plfs = read_bw(n, Access::plfs_n1, /*strided=*/true);
    });
  }

  // --- 8b/8c: open storms across MDS counts ---
  const auto storm_open = [&](int n, std::size_t mds, bool shared) {
    testbed::Rig::Options opts = bench::cielo_rig(mds);
    opts.fault_plan = plan;
    apply_topo(opts);
    testbed::Rig rig(std::move(opts));
    MetaSpec spec;
    spec.use_plfs = true;
    spec.shared_file = shared;
    return run_metadata_storm(rig, n, spec).open_s;
  };
  // Submission order mirrors the serial bench's execution order exactly
  // (8a, all of 8b, all of 8c, 8d) so shards=1 replays the legacy run —
  // same engine creation order, same trace bytes.
  constexpr std::size_t kNnMds[] = {1, 10, 20};
  constexpr std::size_t kN1Mds[] = {1, 10};
  for (std::size_t i = 0; i < storm_procs.size(); ++i) {
    const int n = storm_procs[i];
    nn_rows[i] = {n, std::vector<double>(std::size(kNnMds))};
    for (std::size_t m = 0; m < std::size(kNnMds); ++m) {
      pool.submit([&storm_open, &nn_rows, i, n, mds = kNnMds[m], m] {
        nn_rows[i].open_s[m] = storm_open(n, mds, /*shared=*/false);
      });
    }
  }
  for (std::size_t i = 0; i < storm_procs.size(); ++i) {
    const int n = storm_procs[i];
    n1_rows[i] = {n, std::vector<double>(std::size(kN1Mds))};
    for (std::size_t m = 0; m < std::size(kN1Mds); ++m) {
      pool.submit([&storm_open, &n1_rows, i, n, mds = kN1Mds[m], m] {
        n1_rows[i].open_s[m] = storm_open(n, mds, /*shared=*/true);
      });
    }
  }

  // --- 8d: PLFS-10 vs direct ---
  const auto direct_open = [&](int n, bool use_plfs) {
    testbed::Rig::Options opts = bench::cielo_rig(10);
    opts.fault_plan = plan;
    apply_topo(opts);
    testbed::Rig rig(std::move(opts));
    MetaSpec spec;
    spec.use_plfs = use_plfs;
    return run_metadata_storm(rig, n, spec).open_s;
  };
  for (std::size_t i = 0; i < storm_procs.size(); ++i) {
    const int n = storm_procs[i];
    direct_rows[i].procs = n;
    pool.submit([&direct_open, &direct_rows, i, n] {
      direct_rows[i].direct_s = direct_open(n, /*use_plfs=*/false);
    });
    pool.submit([&direct_open, &direct_rows, i, n] {
      direct_rows[i].plfs_s = direct_open(n, /*use_plfs=*/true);
    });
  }

  pool.run_all();

  bench::print_header("Fig. 8a — Large-Scale Read Bandwidth (MB/s)",
                      "N-1 PLFS close to / above direct N-N across process counts");
  {
    Table t({"procs", "N-N w/o PLFS", "N-N PLFS", "N-1 PLFS"});
    for (const auto& r : read_rows) {
      t.add_row({std::to_string(r.procs), Table::num(bench::mbps(r.nn_direct)),
                 Table::num(bench::mbps(r.nn_plfs)), Table::num(bench::mbps(r.n1_plfs))});
    }
    t.print(std::cout);
  }

  bench::print_header("Fig. 8b — Large N-N Open Time (s)",
                      "PLFS-1 poor; PLFS-10 dramatically better");
  {
    Table t({"procs", "PLFS-1", "PLFS-10", "PLFS-20"});
    for (const auto& r : nn_rows) {
      std::vector<std::string> row = {std::to_string(r.procs)};
      for (const double open_s : r.open_s) row.push_back(Table::num(open_s, 2));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  bench::print_header("Fig. 8c — Large N-1 Open Time (s)",
                      "similar at small scale; PLFS-10 wins as procs grow");
  {
    Table t({"procs", "PLFS-1", "PLFS-10"});
    for (const auto& r : n1_rows) {
      std::vector<std::string> row = {std::to_string(r.procs)};
      for (const double open_s : r.open_s) row.push_back(Table::num(open_s, 2));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  bench::print_header("Fig. 8d — N-N Open Time, PLFS-10 vs W/O PLFS (s)",
                      "paper: up to 17x faster with PLFS at 32,768 processes");
  {
    Table t({"procs", "W/O PLFS", "PLFS-10", "speedup"});
    for (const auto& r : direct_rows) {
      t.add_row({std::to_string(r.procs), Table::num(r.direct_s, 2), Table::num(r.plfs_s, 2),
                 Table::num(r.direct_s / r.plfs_s, 1) + "x"});
    }
    t.print(std::cout);
  }

  if (!json_path->empty()) {
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open --json file: %s\n", json_path->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig8_large_scale\",\n");
    std::fprintf(f,
                 "  \"config\": {\"max_read_procs\": %lld, \"max_meta_procs\": %lld, "
                 "\"per_proc_mib\": %lld, \"index_backend\": \"%s\", \"index_wire\": \"%s\", "
                 "\"fault_plan\": \"%s\", \"shards\": %zu},\n",
                 static_cast<long long>(*max_read_procs), static_cast<long long>(*max_meta_procs),
                 static_cast<long long>(*per_proc_mib), plfs::index_backend_name(backend).c_str(),
                 plfs::wire_format_name(wire).c_str(), plan_spec->c_str(), shards);
    std::fprintf(f, "  \"fig8a_read_bw_mbps\": [");
    for (std::size_t i = 0; i < read_rows.size(); ++i) {
      const auto& r = read_rows[i];
      std::fprintf(f,
                   "%s\n    {\"procs\": %d, \"nn_direct\": %s, \"nn_plfs\": %s, "
                   "\"n1_plfs\": %s}",
                   i ? "," : "", r.procs, json_double(bench::mbps(r.nn_direct), 3).c_str(),
                   json_double(bench::mbps(r.nn_plfs), 3).c_str(),
                   json_double(bench::mbps(r.n1_plfs), 3).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"fig8b_nn_open_s\": [");
    for (std::size_t i = 0; i < nn_rows.size(); ++i) {
      const auto& r = nn_rows[i];
      std::fprintf(f,
                   "%s\n    {\"procs\": %d, \"plfs1\": %s, \"plfs10\": %s, \"plfs20\": %s}",
                   i ? "," : "", r.procs, json_double(r.open_s[0], 6).c_str(),
                   json_double(r.open_s[1], 6).c_str(), json_double(r.open_s[2], 6).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"fig8c_n1_open_s\": [");
    for (std::size_t i = 0; i < n1_rows.size(); ++i) {
      const auto& r = n1_rows[i];
      std::fprintf(f, "%s\n    {\"procs\": %d, \"plfs1\": %s, \"plfs10\": %s}", i ? "," : "",
                   r.procs, json_double(r.open_s[0], 6).c_str(),
                   json_double(r.open_s[1], 6).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"fig8d_nn_open_s\": [");
    for (std::size_t i = 0; i < direct_rows.size(); ++i) {
      const auto& r = direct_rows[i];
      std::fprintf(f, "%s\n    {\"procs\": %d, \"direct\": %s, \"plfs10\": %s}", i ? "," : "",
                   r.procs, json_double(r.direct_s, 6).c_str(), json_double(r.plfs_s, 6).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    bench::json_counters(f);
    bench::json_histograms(f);
    std::fprintf(f, "  \"schema\": 2\n}\n");
    std::fclose(f);
  }

  bench::finish_trace(*trace_path);
  bench::print_fault_counters();
  bench::print_index_counters();
  bench::print_topo_counters();
  bench::print_histograms();
  bench::print_sim_counters();
  return 0;
}
