// Tiny command-line flag parser for the bench harnesses and examples.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tio {

class FlagSet {
 public:
  explicit FlagSet(std::string program_help = "") : help_(std::move(program_help)) {}

  int64_t* add_i64(std::string name, int64_t def, std::string help);
  double* add_f64(std::string name, double def, std::string help);
  bool* add_bool(std::string name, bool def, std::string help);
  std::string* add_string(std::string name, std::string def, std::string help);

  // Parses argv (skipping argv[0]). On "--help", prints usage and exits 0.
  Status parse(int argc, char** argv);
  std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string default_repr;
    bool is_bool = false;
    std::function<bool(std::string_view)> set;  // returns false on parse error
  };
  Status set_flag(std::string_view name, std::string_view value);

  std::string help_;
  std::map<std::string, Flag> flags_;
  // Owned storage; std::map nodes are pointer-stable.
  std::map<std::string, int64_t> i64s_;
  std::map<std::string, double> f64s_;
  std::map<std::string, bool> bools_;
  std::map<std::string, std::string> strings_;
};

}  // namespace tio
