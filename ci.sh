#!/usr/bin/env bash
# CI entry point: build both presets, run the full suite on the optimized
# build, and run the index differential/cache suites under ASan+UBSan.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)

echo "==> configure + build (default preset)"
cmake --preset default
cmake --build --preset default -j "$jobs"

echo "==> full test suite (default preset)"
ctest --preset default -j "$jobs"

echo "==> configure + build (asan preset)"
cmake --preset asan
cmake --build --preset asan -j "$jobs"

echo "==> index differential + cache + wire-codec tests under ASan/UBSan"
ctest --preset asan -j "$jobs" -R \
  'IndexDiff|IndexCache|BTreeIndex|IndexProperty|Varint|WireV2|WireCompat|PatternIndex'

# DeepAwaitChains is excluded: gcc does not tail-call the coroutine
# symmetric transfer at -O0, so the 100k-deep chain overflows the stack in
# any sanitizer build (seed behaves the same); the guarantee it checks is an
# optimized-build property and stays covered by the default-preset run.
echo "==> sim/net/mpisim suites under ASan/UBSan (engine pools, intrusive waiters, LRU)"
ctest --preset asan -j "$jobs" -R \
  '^(Engine|Determinism|EventPool|FramePool|MoveFn|Mutex|Semaphore|Barrier|Gate|WaitGroup|Queue|FairShare|FcfsServer|Runtime|PageCache|Cluster|Comm)\.' \
  -E 'DeepAwaitChains'

echo "==> chaos suite under ASan/UBSan (fault injection, retry, degradation)"
ctest --preset asan -j "$jobs" -R '^(Chaos|FaultPlan|FaultyFsTest|RetryPolicy|RetryBudget|Timeout|Status)\.'

echo "==> fig7 under the stress fault plan must exit clean"
./build/bench/fig7_metadata_nn --procs 64 --max-files 2048 --fault_plan=stress >/dev/null

echo "==> pattern index backend exercised through the build microbench"
./build/bench/micro_index --index_backend=pattern \
  --benchmark_filter='BM_GlobalBuildMergePattern/10000' >/dev/null

echo "==> v1 -> v2 wire-format compat smoke"
# Both wire settings must drive the full fig4 pipeline (write, flatten,
# all three read strategies) to a clean exit; WireCompat unit tests cover
# decoding v1 containers through the v2-default read path byte-for-byte.
./build/bench/fig4_read_scaling --max-streams 32 --per-proc-mib 2 --index_wire=v1 >/dev/null
./build/bench/fig4_read_scaling --max-streams 32 --per-proc-mib 2 --index_wire=v2 >/dev/null

echo "==> ci.sh: all green"
