#include "iolib/node_agg.h"

#include <unordered_map>

namespace tio::iolib {

NodePlan NodePlan::build(const mpi::Comm& comm) {
  NodePlan plan;
  const int n = comm.size();
  plan.node_of.resize(n);
  std::unordered_map<std::size_t, int> dense;  // physical node -> dense id
  dense.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    const std::size_t phys = comm.node_of_rank(r);
    auto [it, inserted] = dense.emplace(phys, static_cast<int>(plan.members.size()));
    if (inserted) plan.members.emplace_back();
    plan.node_of[r] = it->second;
    plan.members[it->second].push_back(r);
  }
  plan.my_node = plan.node_of[comm.rank()];
  return plan;
}

void count_binomial_gather(const mpi::Comm& comm, int root, std::uint64_t* intra,
                           std::uint64_t* inter) {
  const int n = comm.size();
  // Virtual rank v sends exactly once, to parent v - lowbit(v) (see
  // Comm::gather); translate back to comm ranks and classify by node.
  for (int v = 1; v < n; ++v) {
    const int src = (v + root) % n;
    const int parent = v - (v & -v);
    const int dst = (parent + root) % n;
    if (comm.node_of_rank(src) == comm.node_of_rank(dst)) {
      ++*intra;
    } else {
      ++*inter;
    }
  }
}

}  // namespace tio::iolib
