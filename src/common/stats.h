// Sample statistics for benchmark reporting (mean, stddev, percentiles).
#pragma once

#include <cstddef>
#include <vector>

namespace tio {

class Series {
 public:
  void add(double v) { xs_.push_back(v); }
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double sum() const;
  double mean() const;
  double stddev() const;  // sample stddev (n-1); 0 for n < 2
  double min() const;
  double max() const;
  // Nearest-rank percentile, p in [0, 100].
  double percentile(double p) const;

 private:
  std::vector<double> xs_;
};

}  // namespace tio
