#include "common/strutil.h"

#include <cstdarg>
#include <cstdio>

namespace tio {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string path_join(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out(a);
  if (out.back() != '/') out += '/';
  while (!b.empty() && b.front() == '/') b.remove_prefix(1);
  out += b;
  return out;
}

std::string_view path_dirname(std::string_view p) {
  const std::size_t pos = p.rfind('/');
  if (pos == std::string_view::npos) return ".";
  if (pos == 0) return "/";
  return p.substr(0, pos);
}

std::string_view path_basename(std::string_view p) {
  const std::size_t pos = p.rfind('/');
  if (pos == std::string_view::npos) return p;
  return p.substr(pos + 1);
}

std::string path_normalize(std::string_view p) {
  std::string out = "/";
  for (auto part : split(p, '/')) {
    if (part.empty() || part == ".") continue;
    if (out.back() != '/') out += '/';
    out += part;
  }
  return out;
}

std::vector<std::string_view> path_components(std::string_view p) {
  std::vector<std::string_view> out;
  for (auto part : split(p, '/')) {
    if (!part.empty() && part != ".") out.push_back(part);
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 5) {
    v /= 1024.0;
    ++u;
  }
  return str_printf(u == 0 ? "%.0f %s" : "%.1f %s", v, kUnits[u]);
}

std::string format_si(double v, std::string_view unit) {
  static constexpr const char* kPrefix[] = {"", "K", "M", "G", "T", "P"};
  int u = 0;
  double a = v < 0 ? -v : v;
  while (a >= 1000.0 && u < 5) {
    a /= 1000.0;
    v /= 1000.0;
    ++u;
  }
  return str_printf("%.2f %s%.*s", v, kPrefix[u], static_cast<int>(unit.size()), unit.data());
}

std::string str_printf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace tio
