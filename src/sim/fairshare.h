// Processor-sharing bandwidth channel.
//
// Models a shared pipe (storage network, NIC, disk platter) whose capacity
// is split equally among the transfers in flight, with an optional
// per-stream cap. Because every active stream always receives the same
// instantaneous rate r(t) = min(cap, C / n(t)), completion can be tracked in
// "virtual progress" units (bytes delivered per stream): a transfer started
// at progress V0 finishes when V reaches V0 + bytes. That yields an exact
// O(log n)-per-event implementation that is comfortable with 65,536
// concurrent streams.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>

#include "common/dheap.h"
#include "common/trace.h"
#include "sim/engine.h"

namespace tio::sim {

class FairShareChannel {
 public:
  FairShareChannel(Engine& engine, double capacity_bytes_per_sec,
                   double per_stream_cap_bytes_per_sec =
                       std::numeric_limits<double>::infinity(),
                   std::string name = "channel");

  // Awaitable: completes when `bytes` have moved through the channel under
  // fair sharing. Zero-byte transfers complete immediately.
  struct Awaiter {
    FairShareChannel* channel;
    std::uint64_t bytes;
    bool await_ready() const noexcept { return bytes == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(channel->engine_.is_current() &&
             "FairShareChannel awaited off its engine's shard");
      channel->start_transfer(bytes, h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter transfer(std::uint64_t bytes) { return Awaiter{this, bytes}; }

  std::size_t active() const { return active_.size(); }
  double capacity() const { return capacity_; }
  double per_stream_cap() const { return stream_cap_; }
  // Instantaneous per-stream rate, given the current number of streams.
  double current_rate() const;

  struct Stats {
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    std::size_t max_concurrency = 0;
  };
  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  struct Flow {
    double finish_progress;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    // Trace record of this transfer's wait (kNoRecord when tracing is off).
    std::uint32_t trace_rec = trace::kNoRecord;
  };
  // Earliest virtual finish first; seq breaks ties deterministically.
  struct FlowLess {
    bool operator()(const Flow& a, const Flow& b) const {
      if (a.finish_progress != b.finish_progress) return a.finish_progress < b.finish_progress;
      return a.seq < b.seq;
    }
  };

  void start_transfer(std::uint64_t bytes, std::coroutine_handle<> h);
  void advance_progress();
  void schedule_next_completion();
  void on_completion_event(std::uint64_t generation);

  Engine& engine_;
  double capacity_;
  double stream_cap_;
  std::string name_;

  DaryHeap<Flow, FlowLess> active_;
  double progress_ = 0;  // virtual bytes delivered per stream
  TimePoint last_update_;
  std::uint64_t seq_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale completion events
  Stats stats_;
};

}  // namespace tio::sim
