#include "pfs/ost.h"

#include "common/units.h"

namespace tio::pfs {

sim::Task<void> Ost::io(ObjectId object, std::uint64_t offset, std::uint64_t len, bool is_write) {
  // Server DRAM absorbs re-reads of hot blocks without touching the arm.
  if (!is_write && cache_.lookup(object, offset, len) == len) {
    ++stats_.ops;
    ++stats_.cache_hits;
    stats_.bytes += len;
    co_await engine_.sleep(transfer_time(len, config_.ost_cache_bandwidth));
    co_return;
  }
  co_await arm_.acquire();
  sim::SemGuard guard(arm_);

  Duration positioning = Duration::zero();
  if (object == last_object_ && offset == last_end_) {
    ++stats_.sequential;
  } else if (object == last_object_ && offset >= last_end_ &&
             offset - last_end_ <= config_.near_gap) {
    // Short forward gap within the same object: prefetch/readahead covers it.
    ++stats_.sequential;
  } else if (object != last_object_) {
    positioning = config_.ost_switch_time;
    ++stats_.switches;
  } else {
    positioning = config_.ost_seek_time;
    ++stats_.seeks;
  }
  if (is_write) {
    positioning = Duration::seconds(positioning.to_seconds() * config_.ost_write_seek_factor);
  }

  const Duration service = positioning + transfer_time(len, config_.ost_bandwidth);
  ++stats_.ops;
  stats_.bytes += len;
  last_object_ = object;
  last_end_ = offset + len;
  cache_.fill(object, offset, len);
  co_await engine_.sleep(service);
}

}  // namespace tio::pfs
