file(REMOVE_RECURSE
  "CMakeFiles/tio_net.dir/cluster.cc.o"
  "CMakeFiles/tio_net.dir/cluster.cc.o.d"
  "CMakeFiles/tio_net.dir/page_cache.cc.o"
  "CMakeFiles/tio_net.dir/page_cache.cc.o.d"
  "libtio_net.a"
  "libtio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
