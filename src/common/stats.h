// Sample statistics for benchmark reporting (mean, stddev, percentiles),
// plus process-global named registries for lightweight subsystem
// instrumentation: monotonically increasing counters (index builds, cache
// hits, ...) and log-bucketed latency histograms (span durations recorded
// by common/trace.h).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tio {

class Series {
 public:
  void add(double v) {
    xs_.push_back(v);
    sorted_ = false;
  }
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double sum() const;
  double mean() const;
  double stddev() const;  // sample stddev (n-1); 0 for n < 2
  double min() const;
  double max() const;
  // Nearest-rank percentile, p in [0, 100] (values outside are clamped).
  // p = 0 returns the minimum, p = 100 the maximum. The sample is sorted
  // lazily once and the order is cached across calls, so a p50/p90/p99
  // report costs one sort, not three.
  double percentile(double p) const;

 private:
  std::vector<double> xs_;
  // Sorted view of xs_, built on first percentile() call and reused until
  // the next add() invalidates it.
  mutable std::vector<double> sorted_cache_;
  mutable bool sorted_ = false;
};

// A monotonically increasing event/byte counter. Counters are registered by
// name the first time they are requested and live for the process lifetime,
// so holding a `Counter&` across calls is always safe.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// A latency histogram over nonnegative int64 samples (virtual-time
// nanoseconds, in practice). Two views of the same data:
//   * log2 buckets — bucket b counts samples v with bit_width(v) == b,
//     i.e. v in [2^(b-1), 2^b); bucket 0 counts exact zeros. Constant
//     space, used for shape displays.
//   * the raw sample list — percentiles are exact (nearest-rank over the
//     full sample), not bucket-interpolated; the sort is lazy and cached
//     like Series.
// Like counters, histograms live in a process-global registry for the
// process lifetime, so holding a `Histogram&` across calls is always safe.
class Histogram {
 public:
  // Number of log2 buckets: zeros + one per possible bit width.
  static constexpr int kBuckets = 65;

  // Records one sample; negative values clamp to zero.
  void record(std::int64_t v);

  std::uint64_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const;  // 0 when empty
  std::int64_t max() const;  // 0 when empty
  // Exact nearest-rank percentile, p in [0, 100] (clamped); 0 when empty.
  std::int64_t percentile(double p) const;

  // Log2-bucket index of a sample and the smallest sample mapping to
  // bucket `b` (0 for the zero bucket).
  static int bucket_of(std::int64_t v);
  static std::int64_t bucket_min(int b);
  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  void reset();

 private:
  std::vector<std::int64_t> samples_;
  mutable std::vector<std::int64_t> sorted_cache_;
  mutable bool sorted_ = false;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::int64_t sum_ = 0;
};

// Returns the process-global counter with this name, creating it on first
// use. Dotted names ("plfs.index.entries_merged") group related counters.
Counter& counter(std::string_view name);

// The process-global histogram with this name, creating it on first use.
// Names share the dotted-group convention with counters.
Histogram& histogram(std::string_view name);

// True when `name` belongs to the dot-separated group `prefix`: the empty
// prefix matches everything, otherwise `name` must equal `prefix` or start
// with `prefix` followed by a '.'. A prefix already ending in '.' is taken
// as a raw prefix match. So "plfs.index" matches "plfs.index.builds" but
// NOT "plfs.index_cache.hits"; use "plfs.index" + "plfs.index_cache" (or
// the raw prefix "plfs.index") to cover both.
bool name_in_group(std::string_view name, std::string_view prefix);

// All registered counters as (name, value), sorted by name. Counters whose
// value is zero are included; `prefix` filters by dot-boundary group (see
// name_in_group).
std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot(
    std::string_view prefix = "");

// All registered histograms as (name, histogram), sorted by name, filtered
// by dot-boundary group like counter_snapshot. The pointers stay valid for
// the process lifetime.
std::vector<std::pair<std::string, const Histogram*>> histogram_snapshot(
    std::string_view prefix = "");

// Zeroes every registered counter (the registry itself is never shrunk).
void reset_counters();
// Clears every registered histogram's samples and buckets.
void reset_histograms();

}  // namespace tio
