// Sparse extent map: the byte store behind every simulated file object.
//
// Holds non-overlapping, sorted extents of pattern-described data. Writes
// split or replace whatever they overlap (last-writer-wins, like a disk);
// reads zero-fill holes. Adjacent extents whose content descriptors are
// byte-for-byte continuations are coalesced, so a log-structured append
// stream of any length collapses to a single extent.
#pragma once

#include <cstdint>
#include <map>

#include "common/dataview.h"

namespace tio::pfs {

class ExtentMap {
 public:
  void write(std::uint64_t offset, DataView data);

  // Content of [offset, offset+len); holes come back as zeros. The caller
  // is responsible for EOF clipping (this map has no notion of file size
  // beyond the last written byte).
  FragmentList read(std::uint64_t offset, std::uint64_t len) const;

  // Largest written end-offset (0 when empty).
  std::uint64_t high_water() const;
  // Discards all content at or beyond new_size; splits a straddling extent.
  void truncate(std::uint64_t new_size);

  std::size_t extent_count() const { return extents_.size(); }
  bool empty() const { return extents_.empty(); }
  // Sorted, non-overlapping (offset -> content) extents, for consumers that
  // walk written ranges (e.g. collective-buffering aggregators).
  const std::map<std::uint64_t, DataView>& extents() const { return extents_; }
  // Total bytes of backed (non-hole) content.
  std::uint64_t backed_bytes() const;

 private:
  // key = extent start offset.
  std::map<std::uint64_t, DataView> extents_;
};

}  // namespace tio::pfs
