# Empty compiler generated dependencies file for tio_common.
# This may be replaced when dependencies are built.
