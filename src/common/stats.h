// Sample statistics for benchmark reporting (mean, stddev, percentiles),
// plus process-global named registries for lightweight subsystem
// instrumentation: monotonically increasing counters (index builds, cache
// hits, ...) and log-bucketed latency histograms (span durations recorded
// by common/trace.h).
//
// Sharded accumulation: the simulator can run independent simulations on
// several OS threads (sim/sharded.h). Counters and histograms therefore
// accumulate into per-shard cells selected by a thread-local shard id
// (set_stat_shard), so hot-path recording never contends across shards,
// and reads merge the cells. Merges are order-independent (sums for
// counters, a sorted multiset for histogram percentiles), so reported
// values are deterministic regardless of how work was interleaved across
// shards. Single-threaded programs never call set_stat_shard and behave
// exactly as before (everything lands in cell 0).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tio {

// Upper bound on concurrent stat shards (thread-local shard ids). Shard ids
// must be unique among concurrently running threads; sim::ShardPool and
// sim::ShardedEngine assign dense ids 0..shards-1 under this bound.
inline constexpr unsigned kMaxStatShards = 64;

// Sets this thread's stat shard id (throws std::invalid_argument when
// shard >= kMaxStatShards). Worker threads of a shard pool call this once
// at startup; the main thread defaults to shard 0.
void set_stat_shard(unsigned shard);
unsigned stat_shard();

class Series {
 public:
  void add(double v) {
    xs_.push_back(v);
    sorted_ = false;
  }
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double sum() const;
  double mean() const;
  double stddev() const;  // sample stddev (n-1); 0 for n < 2
  double min() const;
  double max() const;
  // Nearest-rank percentile, p in [0, 100] (values outside are clamped).
  // p = 0 returns the minimum, p = 100 the maximum. The sample is sorted
  // lazily once and the order is cached across calls, so a p50/p90/p99
  // report costs one sort, not three.
  double percentile(double p) const;

 private:
  std::vector<double> xs_;
  // Sorted view of xs_, built on first percentile() call and reused until
  // the next add() invalidates it.
  mutable std::vector<double> sorted_cache_;
  mutable bool sorted_ = false;
};

// A monotonically increasing event/byte counter. Counters are registered by
// name the first time they are requested and live for the process lifetime,
// so holding a `Counter&` across calls is always safe.
//
// Internally sharded: add() lands in the calling thread's cell (selected by
// stat_shard(), aliased into kSlots cells), value() sums every cell. Cells
// are cache-line-sized so shards incrementing the same counter never
// false-share.
class Counter {
 public:
  static constexpr std::size_t kSlots = 16;

  void add(std::uint64_t delta = 1) {
    cells_[slot()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  // Total across all shards.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  // This shard's contribution only. Lets a job measure a before/after delta
  // of a global counter without seeing concurrent jobs on other shards
  // (exact as long as no two concurrent threads alias to one slot, i.e.
  // shard ids of live threads are distinct mod kSlots).
  std::uint64_t local_value() const {
    return cells_[slot()].v.load(std::memory_order_relaxed);
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t slot();
  std::array<Cell, kSlots> cells_{};
};

// A latency histogram over nonnegative int64 samples (virtual-time
// nanoseconds, in practice). Two views of the same data:
//   * log2 buckets — bucket b counts samples v with bit_width(v) == b,
//     i.e. v in [2^(b-1), 2^b); bucket 0 counts exact zeros. Constant
//     space, used for shape displays.
//   * the raw sample list — percentiles are exact (nearest-rank over the
//     full sample), not bucket-interpolated; the merged sort is lazy and
//     cached like Series.
// Like counters, histograms live in a process-global registry for the
// process lifetime, so holding a `Histogram&` across calls is always safe.
//
// Sharded accumulation: record() appends to the calling shard's private
// cell (no lock, no atomics on the sample path); count/sum/percentile/
// buckets merge the cells. Readers must be quiescent with respect to
// writers (the benches read only after shard threads have joined); the
// merged percentile is a sorted multiset, so it does not depend on which
// shard recorded which sample.
class Histogram {
 public:
  // Number of log2 buckets: zeros + one per possible bit width.
  static constexpr int kBuckets = 65;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  ~Histogram();

  // Records one sample; negative values clamp to zero.
  void record(std::int64_t v);

  std::uint64_t count() const;
  bool empty() const { return count() == 0; }
  std::int64_t sum() const;
  std::int64_t min() const;  // 0 when empty
  std::int64_t max() const;  // 0 when empty
  // Exact nearest-rank percentile, p in [0, 100] (clamped); 0 when empty.
  std::int64_t percentile(double p) const;

  // Log2-bucket index of a sample and the smallest sample mapping to
  // bucket `b` (0 for the zero bucket).
  static int bucket_of(std::int64_t v);
  static std::int64_t bucket_min(int b);
  // Merged bucket counts across shards (by value: the merge is computed).
  std::array<std::uint64_t, kBuckets> buckets() const;

  void reset();

 private:
  struct Cell;  // per-shard samples + buckets + sum (stats.cc)
  Cell& local_cell();
  // Rebuilds the merged sorted sample cache when stale; returns it.
  const std::vector<std::int64_t>& merged() const;

  std::array<std::atomic<Cell*>, kMaxStatShards> cells_{};
  mutable std::mutex mu_;  // guards cell creation and the merge cache
  mutable std::vector<std::int64_t> sorted_cache_;
  mutable std::uint64_t sorted_count_ = ~std::uint64_t{0};
};

// Returns the process-global counter with this name, creating it on first
// use. Dotted names ("plfs.index.entries_merged") group related counters.
Counter& counter(std::string_view name);

// The process-global histogram with this name, creating it on first use.
// Names share the dotted-group convention with counters.
Histogram& histogram(std::string_view name);

// True when `name` belongs to the dot-separated group `prefix`: the empty
// prefix matches everything, otherwise `name` must equal `prefix` or start
// with `prefix` followed by a '.'. A prefix already ending in '.' is taken
// as a raw prefix match. So "plfs.index" matches "plfs.index.builds" but
// NOT "plfs.index_cache.hits"; use "plfs.index" + "plfs.index_cache" (or
// the raw prefix "plfs.index") to cover both.
bool name_in_group(std::string_view name, std::string_view prefix);

// All registered counters as (name, value), sorted by name. Counters whose
// value is zero are included; `prefix` filters by dot-boundary group (see
// name_in_group).
std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot(
    std::string_view prefix = "");

// All registered histograms as (name, histogram), sorted by name, filtered
// by dot-boundary group like counter_snapshot. The pointers stay valid for
// the process lifetime.
std::vector<std::pair<std::string, const Histogram*>> histogram_snapshot(
    std::string_view prefix = "");

// Zeroes every registered counter (the registry itself is never shrunk).
void reset_counters();
// Clears every registered histogram's samples and buckets.
void reset_histograms();

}  // namespace tio
