#include "common/dataview.h"

#include <gtest/gtest.h>

namespace tio {
namespace {

TEST(DataView, ZerosHaveZeroContent) {
  const auto v = DataView::zeros(16);
  EXPECT_EQ(v.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(v.at(i), std::byte{0});
}

TEST(DataView, PatternIsDeterministicFunctionOfSeedAndIndex) {
  const auto a = DataView::pattern(7, 0, 64);
  const auto b = DataView::pattern(7, 0, 64);
  EXPECT_TRUE(a.content_equals(b));
  const auto c = DataView::pattern(8, 0, 64);
  EXPECT_FALSE(a.content_equals(c));
}

TEST(DataView, PatternSliceMatchesShiftedBase) {
  const auto whole = DataView::pattern(42, 100, 64);
  const auto s = whole.slice(10, 20);
  const auto direct = DataView::pattern(42, 110, 20);
  EXPECT_TRUE(s.content_equals(direct));
}

TEST(DataView, SliceOutOfRangeThrows) {
  const auto v = DataView::pattern(1, 0, 10);
  EXPECT_THROW(v.slice(5, 6), std::out_of_range);
  EXPECT_THROW(v.at(10), std::out_of_range);
  EXPECT_NO_THROW(v.slice(10, 0));
}

TEST(DataView, LiteralRoundTrip) {
  const auto v = DataView::literal_string("hello world");
  EXPECT_EQ(v.size(), 11u);
  EXPECT_EQ(v.to_string(), "hello world");
  EXPECT_EQ(v.slice(6, 5).to_string(), "world");
}

TEST(DataView, LiteralVsPatternContentComparison) {
  const auto p = DataView::pattern(3, 0, 32);
  const auto lit = DataView::literal(p.to_bytes());
  EXPECT_TRUE(p.content_equals(lit));
  EXPECT_TRUE(lit.content_equals(p));
  auto bytes = p.to_bytes();
  bytes[13] ^= std::byte{0xff};
  EXPECT_FALSE(p.content_equals(DataView::literal(bytes)));
}

TEST(DataView, ToBytesMatchesAt) {
  const auto v = DataView::pattern(99, 5, 100);
  const auto bytes = v.to_bytes();
  ASSERT_EQ(bytes.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(bytes[i], v.at(i));
}

TEST(DataView, EmptyViewsCompareEqual) {
  EXPECT_TRUE(DataView().content_equals(DataView::zeros(0)));
  EXPECT_TRUE(DataView::pattern(1, 2, 0).content_equals(DataView::literal({})));
}

TEST(FragmentList, StitchesFragmentsInOrder) {
  const auto whole = DataView::pattern(5, 0, 90);
  FragmentList fl;
  fl.append(whole.slice(0, 30));
  fl.append(whole.slice(30, 40));
  fl.append(whole.slice(70, 20));
  EXPECT_EQ(fl.size(), 90u);
  EXPECT_TRUE(fl.content_equals(whole));
}

TEST(FragmentList, DetectsContentMismatch) {
  const auto whole = DataView::pattern(5, 0, 60);
  FragmentList fl;
  fl.append(whole.slice(0, 30));
  fl.append(DataView::pattern(6, 30, 30));  // wrong seed for the tail
  EXPECT_FALSE(fl.content_equals(whole));
}

TEST(FragmentList, SizeMismatchIsNotEqual) {
  FragmentList fl;
  fl.append(DataView::zeros(10));
  EXPECT_FALSE(fl.content_equals(DataView::zeros(11)));
}

TEST(FragmentList, EmptyFragmentsAreDropped) {
  FragmentList fl;
  fl.append(DataView());
  fl.append(DataView::zeros(0));
  EXPECT_TRUE(fl.empty());
  EXPECT_TRUE(fl.fragments().empty());
}

TEST(FragmentList, AtIndexesAcrossFragments) {
  const auto whole = DataView::pattern(11, 0, 20);
  FragmentList fl;
  fl.append(whole.slice(0, 7));
  fl.append(whole.slice(7, 13));
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(fl.at(i), whole.at(i));
  EXPECT_THROW(fl.at(20), std::out_of_range);
}

TEST(FragmentList, CrossFragmentListEquality) {
  const auto whole = DataView::pattern(11, 0, 50);
  FragmentList a;
  a.append(whole.slice(0, 25));
  a.append(whole.slice(25, 25));
  FragmentList b;
  b.append(whole.slice(0, 10));
  b.append(whole.slice(10, 40));
  EXPECT_TRUE(a.content_equals(b));
}

}  // namespace
}  // namespace tio
