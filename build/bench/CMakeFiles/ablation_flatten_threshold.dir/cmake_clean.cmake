file(REMOVE_RECURSE
  "CMakeFiles/ablation_flatten_threshold.dir/ablation_flatten_threshold.cc.o"
  "CMakeFiles/ablation_flatten_threshold.dir/ablation_flatten_threshold.cc.o.d"
  "ablation_flatten_threshold"
  "ablation_flatten_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flatten_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
