#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <tuple>

#include "common/jsonfmt.h"

namespace tio::trace {

namespace {

// This thread's cached shard pointer, valid only while the epoch matches
// (Tracer::clear() bumps the epoch, orphaning every cache).
struct TlsShardRef {
  void* shard = nullptr;
  std::uint64_t epoch = ~std::uint64_t{0};
};
thread_local TlsShardRef t_shard_ref;

// This thread's active PidScope block; see PidScope.
struct TlsPidBlock {
  std::uint32_t next = 0;
  std::uint32_t end = 0;
  bool active = false;
};
thread_local TlsPidBlock t_pid_block;

}  // namespace

Tracer& Tracer::instance() {
  static auto* t = new Tracer();  // leaked: spans may outlive static dtors
  return *t;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  pid_counter_.store(0, std::memory_order_relaxed);
  shard_count_.store(1, std::memory_order_relaxed);
}

std::uint32_t Tracer::intern(std::string_view s) {
  // Linear scan: interning happens once per call site (SpanSite is static
  // at the call site), and the set of distinct span names is small.
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == s) return i;
  }
  names_.emplace_back(s);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

const std::string& Tracer::interned(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_[id];  // deque element: the reference outlives the lock
}

Tracer::Shard& Tracer::local_shard() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (t_shard_ref.shard != nullptr && t_shard_ref.epoch == epoch) {
    return *static_cast<Shard*>(t_shard_ref.shard);
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* s = shards_.back().get();
  t_shard_ref = {s, epoch_.load(std::memory_order_relaxed)};
  return *s;
}

const Tracer::Shard* Tracer::local_shard_if_registered() const {
  if (t_shard_ref.shard == nullptr ||
      t_shard_ref.epoch != epoch_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  return static_cast<const Shard*>(t_shard_ref.shard);
}

Tracer::RankBuffer& Tracer::buffer_for(Shard& shard, int rank) {
  const auto idx = static_cast<std::size_t>(rank < 0 ? 0 : rank + 1);
  if (idx >= shard.buffers.size()) shard.buffers.resize(idx + 1);
  return shard.buffers[idx];
}

std::uint32_t Tracer::begin_span(int rank, std::uint32_t name_id, std::uint32_t cat_id,
                                 std::uint32_t pid, std::int64_t start_ns) {
  Shard& shard = local_shard();
  RankBuffer& buf = buffer_for(shard, rank);
  SpanRecord rec;
  rec.name_id = name_id;
  rec.cat_id = cat_id;
  rec.start_ns = start_ns;
  rec.pid = pid;
  rec.seq = shard.next_seq++;
  // Parent = innermost span of the same rank that is still open *on the
  // same engine*: a fresh rig reuses rank numbers, and its spans must not
  // nest under a finished rig's leftovers.
  rec.parent = 0;
  rec.depth = 0;
  if (!buf.open.empty()) {
    const SpanRecord& top = buf.spans[buf.open.back()];
    if (top.pid == pid) {
      rec.parent = buf.open.back() + 1;
      rec.depth = top.depth + 1;
    }
  }
  const auto index = static_cast<std::uint32_t>(buf.spans.size());
  buf.spans.push_back(rec);
  buf.open.push_back(index);
  return index;
}

void Tracer::end_span(int rank, std::uint32_t record, std::int64_t end_ns) {
  Shard& shard = local_shard();
  RankBuffer& buf = buffer_for(shard, rank);
  if (record >= buf.spans.size()) return;
  buf.spans[record].end_ns = end_ns;
  // Spans close LIFO per rank in well-formed code; tolerate out-of-order
  // ends (e.g. a moved-from span) by erasing wherever the record sits.
  for (auto it = buf.open.rbegin(); it != buf.open.rend(); ++it) {
    if (*it == record) {
      buf.open.erase(std::next(it).base());
      break;
    }
  }
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    for (const auto& b : shard->buffers) n += b.spans.size();
  }
  return n;
}

const std::vector<SpanRecord>& Tracer::rank_spans(int rank) const {
  static const std::vector<SpanRecord> empty;
  const Shard* shard = local_shard_if_registered();
  if (shard == nullptr) return empty;
  const auto idx = static_cast<std::size_t>(rank < 0 ? 0 : rank + 1);
  if (idx >= shard->buffers.size()) return empty;
  return shard->buffers[idx].spans;
}

std::uint32_t Tracer::next_pid() {
  if (t_pid_block.active) {
    if (t_pid_block.next >= t_pid_block.end) {
      throw std::length_error("Tracer::next_pid: PidScope block exhausted");
    }
    return t_pid_block.next++;
  }
  return pid_counter_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t Tracer::reserve_pids(std::uint32_t count) {
  return pid_counter_.fetch_add(count, std::memory_order_relaxed);
}

void Tracer::note_shard_count(std::size_t n) {
  std::size_t cur = shard_count_.load(std::memory_order_relaxed);
  while (n > cur &&
         !shard_count_.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
  }
}

PidScope::PidScope(std::uint32_t base, std::uint32_t count)
    : prev_next_(t_pid_block.next), prev_end_(t_pid_block.end),
      prev_active_(t_pid_block.active) {
  t_pid_block = {base, base + count, true};
}

PidScope::~PidScope() { t_pid_block = {prev_next_, prev_end_, prev_active_}; }

std::string Tracer::to_chrome_json() const {
  // Complete ("ph":"X") events; ts/dur are microseconds by the format's
  // definition, emitted with ns resolution. Locale-independent throughout.
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out += ",";
    out += "\n";
    out += ev;
    first = false;
  };
  // Name the rank tracks once per (pid, tid) so Perfetto labels them.
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> named;
  const auto emit_name = [&](std::uint32_t pid, std::uint32_t tid) {
    if (named[{pid, tid}]) return;
    named[{pid, tid}] = true;
    const std::string track =
        tid == 0 ? std::string("engine") : "rank " + std::to_string(tid - 1);
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":" + json_quote(track) +
         "}}");
  };
  const auto emit_event = [&](const SpanRecord& rec, std::uint32_t tid) {
    emit("{\"name\":" + json_quote(names_[rec.name_id]) +
         ",\"cat\":" + json_quote(names_[rec.cat_id]) +
         ",\"ph\":\"X\",\"ts\":" + json_double(static_cast<double>(rec.start_ns) / 1e3, 3) +
         ",\"dur\":" + json_double(static_cast<double>(rec.end_ns - rec.start_ns) / 1e3, 3) +
         ",\"pid\":" + std::to_string(rec.pid) + ",\"tid\":" + std::to_string(tid) + "}");
  };

  // A run that stayed on one host thread exports through the pre-sharding
  // path: per-buffer traversal in record order, no shard annotation —
  // byte-identical to the single-threaded tracer's output.
  std::size_t shards_with_spans = 0;
  const Shard* only = nullptr;
  for (const auto& shard : shards_) {
    for (const auto& b : shard->buffers) {
      if (!b.spans.empty()) {
        ++shards_with_spans;
        only = shard.get();
        break;
      }
    }
  }
  const std::size_t noted = shard_count_.load(std::memory_order_relaxed);
  if (noted <= 1 && shards_with_spans <= 1) {
    if (only != nullptr) {
      for (std::size_t b = 0; b < only->buffers.size(); ++b) {
        const auto tid = static_cast<std::uint32_t>(b);
        for (const SpanRecord& rec : only->buffers[b].spans) {
          if (rec.end_ns < rec.start_ns) continue;  // never closed
          emit_name(rec.pid, tid);
          emit_event(rec, tid);
        }
      }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
  }

  // Multi-shard: merge every shard's buffers under a total order that does
  // not depend on shard placement or host-thread timing. (pid, tid) pairs
  // are unique to one shard (an engine runs on one thread), so the
  // shard-local seq is a complete tie-break within a track.
  struct Entry {
    const SpanRecord* rec;
    std::uint32_t tid;
  };
  std::vector<Entry> entries;
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < shard->buffers.size(); ++b) {
      const auto tid = static_cast<std::uint32_t>(b);
      for (const SpanRecord& rec : shard->buffers[b].spans) {
        if (rec.end_ns < rec.start_ns) continue;  // never closed
        entries.push_back({&rec, tid});
      }
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return std::tuple(a.rec->pid, a.tid, a.rec->start_ns, a.rec->seq) <
           std::tuple(b.rec->pid, b.tid, b.rec->start_ns, b.rec->seq);
  });
  for (const Entry& e : entries) {
    emit_name(e.rec->pid, e.tid);
    emit_event(*e.rec, e.tid);
  }
  out += "\n],\"otherData\":{\"shards\":" + std::to_string(noted) +
         "},\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tio::trace
