// Functional tests of the PLFS core over the zero-cost in-memory backend.
#include "plfs/plfs.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "localfs/mem_fs.h"
#include "testutil.h"

namespace tio::plfs {
namespace {

using pfs::IoCtx;

PlfsMount mount_with(std::size_t backends) {
  PlfsMount m;
  for (std::size_t i = 0; i < backends; ++i) {
    m.backends.push_back("/vol" + std::to_string(i) + "/plfs");
  }
  m.num_subdirs = 4;
  m.index_flush_every = 4;
  return m;
}

class PlfsCoreTest : public ::testing::Test {
 protected:
  PlfsCoreTest() : PlfsCoreTest(2) {}
  explicit PlfsCoreTest(std::size_t backends)
      : fs_(engine_), mount_(mount_with(backends)), plfs_(fs_, mount_) {
    // "Mount" the backends: the roots exist up front.
    for (const auto& b : mount_.backends) {
      if (!fs_.ns().mkdir_all(b).ok()) std::abort();
    }
  }

  sim::Engine engine_;
  localfs::MemFs fs_;
  PlfsMount mount_;
  Plfs plfs_;
};

TEST_F(PlfsCoreTest, SingleWriterRoundTrip) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/ckpt/f", 0);
    EXPECT_TRUE(wh.ok()) << wh.status();
    const auto data = DataView::pattern(0, 0, 100000);
    EXPECT_TRUE((co_await (*wh)->write(0, data)).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());

    auto rh = co_await plfs.open_read(ctx, "/ckpt/f");
    EXPECT_TRUE(rh.ok()) << rh.status();
    auto fl = co_await (*rh)->read(0, 100000);
    EXPECT_TRUE(fl.ok());
    EXPECT_TRUE(fl->content_equals(data));
    EXPECT_EQ((*rh)->logical_size(), 100000u);
    EXPECT_TRUE((co_await (*rh)->close()).ok());
  }(plfs_));
}

TEST_F(PlfsCoreTest, StridedNto1RoundTrip) {
  // 8 writers, strided records: the canonical checkpoint pattern.
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    constexpr int kWriters = 8;
    constexpr std::uint64_t kRecord = 4096;
    constexpr int kRounds = 16;
    for (int w = 0; w < kWriters; ++w) {
      IoCtx ctx{static_cast<std::size_t>(w), w};
      auto wh = co_await plfs.open_write(ctx, "/f", w);
      EXPECT_TRUE(wh.ok());
      for (int r = 0; r < kRounds; ++r) {
        const std::uint64_t off = (static_cast<std::uint64_t>(r) * kWriters + w) * kRecord;
        // Content encodes the absolute logical offset, so any misplacement
        // is detected.
        EXPECT_TRUE((co_await (*wh)->write(off, DataView::pattern(99, off, kRecord))).ok());
      }
      EXPECT_TRUE((co_await (*wh)->close()).ok());
    }
    auto rh = co_await plfs.open_read(IoCtx{0, 0}, "/f");
    EXPECT_TRUE(rh.ok());
    const std::uint64_t total = kWriters * kRounds * kRecord;
    EXPECT_EQ((*rh)->logical_size(), total);
    auto fl = co_await (*rh)->read(0, total);
    EXPECT_TRUE(fl.ok());
    EXPECT_TRUE(fl->content_equals(DataView::pattern(99, 0, total)));
    EXPECT_TRUE((co_await (*rh)->close()).ok());
  }(plfs_));
}

TEST_F(PlfsCoreTest, OverwriteResolvedByTimestamp) {
  test::run_task(engine_, [](Plfs& plfs, sim::Engine& engine) -> sim::Task<void> {
    IoCtx a{0, 0}, b{1, 1};
    auto w0 = co_await plfs.open_write(a, "/f", 0);
    auto w1 = co_await plfs.open_write(b, "/f", 1);
    EXPECT_TRUE((co_await (*w0)->write(0, DataView::pattern(10, 0, 1000))).ok());
    co_await engine.sleep(Duration::ms(1));  // make timestamps strictly ordered
    EXPECT_TRUE((co_await (*w1)->write(500, DataView::pattern(20, 500, 1000))).ok());
    EXPECT_TRUE((co_await (*w0)->close()).ok());
    EXPECT_TRUE((co_await (*w1)->close()).ok());

    auto rh = co_await plfs.open_read(a, "/f");
    auto fl = co_await (*rh)->read(0, 1500);
    EXPECT_TRUE(fl->to_bytes().size() == 1500);
    // [0,500): writer 0; [500,1500): writer 1 (later timestamp).
    EXPECT_TRUE(co_await [](FragmentList got) -> sim::Task<bool> {
      FragmentList want;
      want.append(DataView::pattern(10, 0, 500));
      want.append(DataView::pattern(20, 500, 1000));
      co_return got.content_equals(want);
    }(std::move(*fl)));
    EXPECT_TRUE((co_await (*rh)->close()).ok());
  }(plfs_, engine_));
}

TEST_F(PlfsCoreTest, SparseFileReadsZerosInGaps) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE((co_await (*wh)->write(0, DataView::pattern(1, 0, 100))).ok());
    EXPECT_TRUE((co_await (*wh)->write(1000, DataView::pattern(1, 1000, 100))).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    auto rh = co_await plfs.open_read(ctx, "/f");
    auto fl = co_await (*rh)->read(50, 1000);
    EXPECT_EQ(fl->size(), 1000u);
    EXPECT_EQ(fl->at(0), DataView::pattern_byte(1, 50));
    EXPECT_EQ(fl->at(500), std::byte{0});  // hole
    EXPECT_EQ(fl->at(999), DataView::pattern_byte(1, 1049));
    EXPECT_TRUE((co_await (*rh)->close()).ok());
  }(plfs_));
}

TEST_F(PlfsCoreTest, ReadPastEofIsShort) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE((co_await (*wh)->write(0, DataView::pattern(1, 0, 100))).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    auto rh = co_await plfs.open_read(ctx, "/f");
    auto fl = co_await (*rh)->read(60, 1000);
    EXPECT_EQ(fl->size(), 40u);
    auto beyond = co_await (*rh)->read(100, 10);
    EXPECT_TRUE(beyond->empty());
    EXPECT_TRUE((co_await (*rh)->close()).ok());
  }(plfs_));
}

TEST_F(PlfsCoreTest, ContainerStructureOnBackend) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/dir/f", 3);
    EXPECT_TRUE((co_await (*wh)->write(0, DataView::zeros(10))).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    co_return;
  }(plfs_));
  const ContainerLayout lay = plfs_.layout("/dir/f");
  EXPECT_TRUE(fs_.ns().exists(lay.access_path()));
  EXPECT_TRUE(fs_.ns().exists(lay.meta_dir()));
  EXPECT_TRUE(fs_.ns().exists(lay.openhosts_dir()));
  EXPECT_TRUE(fs_.ns().exists(lay.data_log_path(3)));
  EXPECT_TRUE(fs_.ns().exists(lay.index_log_path(3)));
  // The openhost record is removed at close; the dropping exists.
  EXPECT_FALSE(fs_.ns().exists(lay.openhost_record_path(3)));
  EXPECT_TRUE(fs_.ns().exists(lay.meta_dropping_path(3, 10)));
}

TEST_F(PlfsCoreTest, OpenhostRecordPresentWhileOpen) {
  test::run_task(engine_, [](Plfs& plfs, localfs::MemFs& fs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE(fs.ns().exists(plfs.layout("/f").openhost_record_path(0)));
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    EXPECT_FALSE(fs.ns().exists(plfs.layout("/f").openhost_record_path(0)));
  }(plfs_, fs_));
}

TEST_F(PlfsCoreTest, LogicalSizeFromDroppings) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    for (int w = 0; w < 3; ++w) {
      IoCtx ctx{0, w};
      auto wh = co_await plfs.open_write(ctx, "/f", w);
      EXPECT_TRUE(
          (co_await (*wh)->write(w * 1000, DataView::pattern(1, w * 1000, 500))).ok());
      EXPECT_TRUE((co_await (*wh)->close()).ok());
    }
    auto size = co_await plfs.logical_size(IoCtx{0, 0}, "/f");
    EXPECT_TRUE(size.ok());
    EXPECT_EQ(*size, 2500u);  // writer 2 reached 2000 + 500
  }(plfs_));
}

TEST_F(PlfsCoreTest, IndexLogFlushBatching) {
  // index_flush_every = 4: after 3 writes the log is empty; after 4 one
  // batch (a v2 segment) hits the log; close flushes the remainder as a
  // second self-contained segment.
  test::run_task(engine_, [](Plfs& plfs, localfs::MemFs& fs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    const std::string log = plfs.layout("/f").index_log_path(0);
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE((co_await (*wh)->write(i * 10, DataView::zeros(10))).ok());
    }
    auto st = co_await fs.stat(ctx, log);
    EXPECT_EQ(st->size, 0u);
    EXPECT_TRUE((co_await (*wh)->write(30, DataView::zeros(10))).ok());
    st = co_await fs.stat(ctx, log);
    const std::uint64_t first_flush = st->size;
    EXPECT_GT(first_flush, 0u);
    EXPECT_TRUE((co_await (*wh)->write(40, DataView::zeros(10))).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    st = co_await fs.stat(ctx, log);
    EXPECT_GT(st->size, first_flush);
  }(plfs_, fs_));
}

TEST_F(PlfsCoreTest, IndexLogFlushBatchingV1Wire) {
  // Same flush schedule under wire v1, where batch sizes are exact record
  // multiples — pinning the legacy on-disk format.
  mount_.index_wire = WireFormat::v1;
  Plfs plfs(fs_, mount_);
  test::run_task(engine_, [](Plfs& plfs, localfs::MemFs& fs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    const std::string log = plfs.layout("/f").index_log_path(0);
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE((co_await (*wh)->write(i * 10, DataView::zeros(10))).ok());
    }
    auto st = co_await fs.stat(ctx, log);
    EXPECT_EQ(st->size, 4 * IndexEntry::kSerializedSize);
    EXPECT_TRUE((co_await (*wh)->write(40, DataView::zeros(10))).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    st = co_await fs.stat(ctx, log);
    EXPECT_EQ(st->size, 5 * IndexEntry::kSerializedSize);
  }(plfs, fs_));
}

TEST_F(PlfsCoreTest, ReopenForWriteTruncatesLogs) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE((co_await (*wh)->write(0, DataView::pattern(1, 0, 1000))).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    // Second job run overwrites the checkpoint.
    wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE((co_await (*wh)->write(0, DataView::pattern(2, 0, 400))).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    auto rh = co_await plfs.open_read(ctx, "/f");
    EXPECT_EQ((*rh)->logical_size(), 400u);
    auto fl = co_await (*rh)->read(0, 400);
    EXPECT_TRUE(fl->content_equals(DataView::pattern(2, 0, 400)));
    EXPECT_TRUE((co_await (*rh)->close()).ok());
  }(plfs_));
}

TEST_F(PlfsCoreTest, GlobalIndexWriteReadRoundTrip) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE((co_await (*wh)->write(0, DataView::pattern(1, 0, 1000))).ok());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    auto serial = co_await plfs.build_index_serial(ctx, "/f");
    EXPECT_TRUE(serial.ok());
    EXPECT_TRUE((co_await plfs.write_global_index(ctx, "/f", **serial)).ok());
    auto global = co_await plfs.read_global_index(ctx, "/f");
    EXPECT_TRUE(global.ok());
    EXPECT_EQ((*global)->logical_size(), (*serial)->logical_size());
    EXPECT_EQ((*global)->lookup(0, 1000), (*serial)->lookup(0, 1000));
  }(plfs_));
}

TEST_F(PlfsCoreTest, MissingGlobalIndexIsNotFound) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    auto global = co_await plfs.read_global_index(ctx, "/f");
    EXPECT_EQ(global.status().code(), Errc::not_found);
  }(plfs_));
}

TEST_F(PlfsCoreTest, IsContainerAndReaddir) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    EXPECT_TRUE((co_await plfs.mkdir(ctx, "/dir")).ok());
    auto wh = co_await plfs.open_write(ctx, "/dir/ckpt", 0);
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    EXPECT_TRUE((co_await plfs.mkdir(ctx, "/dir/realdir")).ok());

    auto is_c = co_await plfs.is_container(ctx, "/dir/ckpt");
    EXPECT_TRUE(is_c.ok() && *is_c);
    is_c = co_await plfs.is_container(ctx, "/dir/realdir");
    EXPECT_TRUE(is_c.ok() && !*is_c);

    auto entries = co_await plfs.readdir(ctx, "/dir");
    EXPECT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), 2u);
    // The container is presented as a file, the real dir as a dir.
    EXPECT_EQ((*entries)[0], (pfs::DirEntry{"ckpt", false}));
    EXPECT_EQ((*entries)[1], (pfs::DirEntry{"realdir", true}));
  }(plfs_));
}

TEST_F(PlfsCoreTest, UnlinkRemovesContainerEverywhere) {
  test::run_task(engine_, [](Plfs& plfs, localfs::MemFs& fs, const PlfsMount& mount)
                     -> sim::Task<void> {
    IoCtx ctx{0, 0};
    for (int w = 0; w < 8; ++w) {
      auto wh = co_await plfs.open_write(IoCtx{0, w}, "/f", w);
      EXPECT_TRUE((co_await (*wh)->write(0, DataView::zeros(10))).ok());
      EXPECT_TRUE((co_await (*wh)->close()).ok());
    }
    EXPECT_TRUE((co_await plfs.unlink(ctx, "/f")).ok());
    for (const auto& b : mount.backends) {
      EXPECT_FALSE(fs.ns().exists(b + "/f")) << b;
    }
    auto is_c = co_await plfs.is_container(ctx, "/f");
    EXPECT_TRUE(is_c.ok() && !*is_c);
  }(plfs_, fs_, mount_));
}

TEST_F(PlfsCoreTest, FederationSpreadsSubdirsAcrossBackends) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    for (int w = 0; w < 4; ++w) {
      auto wh = co_await plfs.open_write(IoCtx{0, w}, "/spread", w);
      EXPECT_TRUE((co_await (*wh)->write(0, DataView::zeros(1))).ok());
      EXPECT_TRUE((co_await (*wh)->close()).ok());
    }
    co_return;
  }(plfs_));
  // With 2 backends and 4 subdirs, both backends should host something.
  int backends_used = 0;
  for (const auto& b : mount_.backends) {
    if (fs_.ns().exists(b + "/spread")) ++backends_used;
  }
  EXPECT_EQ(backends_used, 2);
}

TEST_F(PlfsCoreTest, WriteOnClosedHandleFails) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    EXPECT_EQ((co_await (*wh)->write(0, DataView::zeros(1))).code(), Errc::bad_handle);
    EXPECT_EQ((co_await (*wh)->close()).code(), Errc::bad_handle);
  }(plfs_));
}

TEST_F(PlfsCoreTest, ZeroLengthWriteIsNoop) {
  test::run_task(engine_, [](Plfs& plfs) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    auto wh = co_await plfs.open_write(ctx, "/f", 0);
    EXPECT_TRUE((co_await (*wh)->write(100, DataView())).ok());
    EXPECT_TRUE((*wh)->entries().empty());
    EXPECT_TRUE((co_await (*wh)->close()).ok());
    auto rh = co_await plfs.open_read(ctx, "/f");
    EXPECT_EQ((*rh)->logical_size(), 0u);
    EXPECT_TRUE((co_await (*rh)->close()).ok());
  }(plfs_));
}

// Property test: random writers, offsets, overwrites — PLFS read-back must
// equal a reference byte array maintained in write order.
class PlfsRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlfsRoundTrip, RandomWorkloadsReadBackExactly) {
  sim::Engine engine;
  localfs::MemFs fs(engine);
  PlfsMount mount = mount_with(3);
  Plfs plfs(fs, mount);
  for (const auto& b : mount.backends) ASSERT_TRUE(fs.ns().mkdir_all(b).ok());

  Rng rng(GetParam());
  constexpr std::uint64_t kSize = 1 << 16;
  std::vector<std::byte> ref(kSize, std::byte{0});
  std::uint64_t high = 0;

  test::run_task(engine, [](Plfs& p, Rng& r, std::vector<std::byte>& reference,
                            std::uint64_t& high_water) -> sim::Task<void> {
    constexpr int kWriters = 5;
    std::vector<std::unique_ptr<WriteHandle>> handles;
    for (int w = 0; w < kWriters; ++w) {
      auto wh = co_await p.open_write(IoCtx{static_cast<std::size_t>(w), w}, "/rand", w);
      EXPECT_TRUE(wh.ok());
      handles.push_back(std::move(wh.value()));
    }
    for (int op = 0; op < 400; ++op) {
      const int w = static_cast<int>(r.below(kWriters));
      const std::uint64_t off = r.below(reference.size() - 1);
      const std::uint64_t len =
          1 + r.below(std::min<std::uint64_t>(reference.size() - off, 2048) - 1 + 1);
      const std::uint64_t seed = r.next();
      const auto data = DataView::pattern(seed, 0, len);
      EXPECT_TRUE((co_await handles[w]->write(off, data)).ok());
      for (std::uint64_t i = 0; i < len; ++i) reference[off + i] = data.at(i);
      high_water = std::max(high_water, off + len);
      // Writes must be strictly ordered in time for the reference to agree.
      co_await p.engine().sleep(Duration::us(1));
    }
    for (auto& h : handles) EXPECT_TRUE((co_await h->close()).ok());

    auto rh = co_await p.open_read(IoCtx{0, 0}, "/rand");
    EXPECT_TRUE(rh.ok());
    EXPECT_EQ((*rh)->logical_size(), high_water);
    auto fl = co_await (*rh)->read(0, high_water);
    EXPECT_TRUE(fl.ok());
    const auto got = fl->to_bytes();
    for (std::uint64_t i = 0; i < high_water; ++i) {
      if (got[i] != reference[i]) {
        ADD_FAILURE() << "mismatch at logical offset " << i;
        break;
      }
    }
    EXPECT_TRUE((co_await (*rh)->close()).ok());
  }(plfs, rng, ref, high));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlfsRoundTrip, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace tio::plfs
