file(REMOVE_RECURSE
  "CMakeFiles/tio_common.dir/dataview.cc.o"
  "CMakeFiles/tio_common.dir/dataview.cc.o.d"
  "CMakeFiles/tio_common.dir/flags.cc.o"
  "CMakeFiles/tio_common.dir/flags.cc.o.d"
  "CMakeFiles/tio_common.dir/log.cc.o"
  "CMakeFiles/tio_common.dir/log.cc.o.d"
  "CMakeFiles/tio_common.dir/stats.cc.o"
  "CMakeFiles/tio_common.dir/stats.cc.o.d"
  "CMakeFiles/tio_common.dir/status.cc.o"
  "CMakeFiles/tio_common.dir/status.cc.o.d"
  "CMakeFiles/tio_common.dir/strutil.cc.o"
  "CMakeFiles/tio_common.dir/strutil.cc.o.d"
  "CMakeFiles/tio_common.dir/table.cc.o"
  "CMakeFiles/tio_common.dir/table.cc.o.d"
  "libtio_common.a"
  "libtio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
