#include "common/strutil.h"

#include <gtest/gtest.h>

namespace tio {
namespace {

TEST(Split, BasicAndEdges) {
  EXPECT_EQ(split("a/b/c", '/'), (std::vector<std::string_view>{"a", "b", "c"}));
  EXPECT_EQ(split("", '/'), (std::vector<std::string_view>{""}));
  EXPECT_EQ(split("/", '/'), (std::vector<std::string_view>{"", ""}));
  EXPECT_EQ(split("a//b", '/'), (std::vector<std::string_view>{"a", "", "b"}));
  EXPECT_EQ(split("trailing/", '/'), (std::vector<std::string_view>{"trailing", ""}));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, "/"), "solo");
}

TEST(PathJoin, HandlesSlashes) {
  EXPECT_EQ(path_join("/a", "b"), "/a/b");
  EXPECT_EQ(path_join("/a/", "b"), "/a/b");
  EXPECT_EQ(path_join("/a", "/b"), "/a/b");
  EXPECT_EQ(path_join("/a/", "//b"), "/a/b");
  EXPECT_EQ(path_join("", "b"), "b");
  EXPECT_EQ(path_join("/a", ""), "/a");
}

TEST(PathDirname, Cases) {
  EXPECT_EQ(path_dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(path_dirname("/a"), "/");
  EXPECT_EQ(path_dirname("rel"), ".");
  EXPECT_EQ(path_dirname("/"), "/");
}

TEST(PathBasename, Cases) {
  EXPECT_EQ(path_basename("/a/b/c"), "c");
  EXPECT_EQ(path_basename("name"), "name");
  EXPECT_EQ(path_basename("/"), "");
}

TEST(PathNormalize, Cases) {
  EXPECT_EQ(path_normalize("/a/b"), "/a/b");
  EXPECT_EQ(path_normalize("a/b/"), "/a/b");
  EXPECT_EQ(path_normalize("//a///b//"), "/a/b");
  EXPECT_EQ(path_normalize(""), "/");
  EXPECT_EQ(path_normalize("/./a/./b"), "/a/b");
}

TEST(PathComponents, Cases) {
  EXPECT_EQ(path_components("/a/b/c"),
            (std::vector<std::string_view>{"a", "b", "c"}));
  EXPECT_TRUE(path_components("/").empty());
  EXPECT_TRUE(path_components("").empty());
}

TEST(FormatBytes, Scales) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(50ull << 20), "50.0 MiB");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(10ull << 40), "10.0 TiB");
}

TEST(FormatSi, Scales) {
  EXPECT_EQ(format_si(1.25e9, "B/s"), "1.25 GB/s");
  EXPECT_EQ(format_si(999.0, "ops"), "999.00 ops");
}

TEST(StrPrintf, Formats) {
  EXPECT_EQ(str_printf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_printf("%s", std::string(500, 'a').c_str()), std::string(500, 'a'));
}

}  // namespace
}  // namespace tio
