#include "sim/fairshare.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tio::sim {

namespace {
// Virtual-progress slack (bytes) absorbing integer-ns rounding of event
// times; completions within this of their target are taken as done.
constexpr double kSlackBytes = 1e-3;
}  // namespace

FairShareChannel::FairShareChannel(Engine& engine, double capacity_bytes_per_sec,
                                   double per_stream_cap_bytes_per_sec, std::string name)
    : engine_(engine),
      capacity_(capacity_bytes_per_sec),
      stream_cap_(per_stream_cap_bytes_per_sec),
      name_(std::move(name)),
      last_update_(engine.now()) {
  if (capacity_ <= 0) throw std::invalid_argument("FairShareChannel: capacity must be > 0");
  if (stream_cap_ <= 0) throw std::invalid_argument("FairShareChannel: stream cap must be > 0");
}

double FairShareChannel::current_rate() const {
  if (active_.empty()) return 0;
  return std::min(stream_cap_, capacity_ / static_cast<double>(active_.size()));
}

void FairShareChannel::advance_progress() {
  const TimePoint now = engine_.now();
  const double rate = current_rate();
  if (rate > 0) progress_ += rate * (now - last_update_).to_seconds();
  last_update_ = now;
}

void FairShareChannel::start_transfer(std::uint64_t bytes, std::coroutine_handle<> h) {
  advance_progress();
  // Fair-share waits become trace spans on the engine track (the channel
  // does not know which rank awaits it). Trace-only: per-transfer volume
  // would swamp the histogram registry on full-scale runs.
  static const trace::SpanSite kWaitSite("sim.fairshare", "sim.fairshare.wait",
                                         /*with_histogram=*/false);
  std::uint32_t rec = trace::kNoRecord;
  trace::Tracer& tracer = trace::Tracer::instance();
  if (tracer.enabled()) {
    rec = tracer.begin_span(-1, kWaitSite.name_id, kWaitSite.cat_id, engine_.trace_pid(),
                            engine_.now().to_ns());
  }
  active_.push(Flow{progress_ + static_cast<double>(bytes), seq_++, h, rec});
  ++stats_.transfers;
  stats_.bytes += bytes;
  stats_.max_concurrency = std::max(stats_.max_concurrency, active_.size());
  schedule_next_completion();
}

void FairShareChannel::schedule_next_completion() {
  ++generation_;  // invalidate any previously scheduled completion
  if (active_.empty()) return;
  const double rate = current_rate();
  const double remaining = std::max(0.0, active_.top().finish_progress - progress_);
  // Round up and add 1 ns so the event never fires short of the target.
  const auto ns = static_cast<std::int64_t>(std::ceil(remaining / rate * 1e9)) + 1;
  const std::uint64_t expect = generation_;
  engine_.after(Duration::ns(ns), [this, expect] { on_completion_event(expect); });
}

void FairShareChannel::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by membership change
  advance_progress();
  // Resumption is deferred through the engine queue, so finished flows can
  // be handed off straight out of the heap — no scratch vector per event.
  while (!active_.empty() && active_.top().finish_progress <= progress_ + kSlackBytes) {
    const auto h = active_.top().handle;
    if (active_.top().trace_rec != trace::kNoRecord) {
      trace::Tracer::instance().end_span(-1, active_.top().trace_rec, engine_.now().to_ns());
    }
    active_.pop();
    engine_.after(Duration::zero(), [h] { h.resume(); });
  }
  schedule_next_completion();
}

}  // namespace tio::sim
