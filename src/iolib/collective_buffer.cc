#include "iolib/collective_buffer.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/stats.h"
#include "common/trace.h"
#include "iolib/node_agg.h"
#include "mpisim/tag_registry.h"
#include "pfs/extent_map.h"

namespace tio::iolib {

namespace {

// Tags come from the central registry (mpisim/tag_registry.h), which
// statically asserts the blocks are pairwise disjoint and stay below the
// collective-tag base. Successive collective-buffer operations are
// separated by their trailing barrier, so tag reuse across operations can
// never cross-match.
constexpr int kCbTagBase = mpi::kCbReplyTags.base;       // aggregator -> requester (+ j)
constexpr int kCbTagIntraW = mpi::kCbIntraTags.base;     // member -> node leader, write chunks
constexpr int kCbTagIntraR = mpi::kCbIntraTags.base + 1; // member -> node leader, read pieces
constexpr int kCbTagShipW = mpi::kCbShipWriteTags.base;  // leader -> aggregator, merged chunks (+ j)
constexpr int kCbTagShipR = mpi::kCbShipReadTags.base;   // leader -> aggregator, merged ranges (+ j)
constexpr int kCbTagAggReply = mpi::kCbAggReplyTags.base;  // aggregator -> leader, run data (+ j)
constexpr int kCbTagFanout = mpi::kCbFanoutTags.base;    // leader -> member, piece slices

// Observability (PR idiom: resolve the registry once, count relaxed).
// fabric_msgs/local_msgs census every payload message this layer moves
// (gather-tree hops are counted arithmetically on the gather root via
// count_binomial_gather); bytes_shipped counts file data (+16-byte chunk
// headers on the write path) whose source and consumer sit on different
// nodes — the volume that must cross a NIC at least once.
struct CbCounters {
  Counter& writes = counter("iolib.cb.writes");
  Counter& reads = counter("iolib.cb.reads");
  Counter& fabric_msgs = counter("iolib.cb.fabric_msgs");
  Counter& local_msgs = counter("iolib.cb.local_msgs");
  Counter& bytes_shipped = counter("iolib.cb.bytes_shipped");
  Counter& write_runs = counter("iolib.cb.write.runs");
  Counter& read_runs = counter("iolib.cb.read.runs");
  Counter& pfs_ops = counter("iolib.cb.pfs_ops");
  Counter& sieve_joins = counter("iolib.cb.sieve_joins");
  Counter& sieve_hole_bytes = counter("iolib.cb.sieve_hole_bytes");
  Counter& node_reqs_in = counter("iolib.cb.node_reqs_in");
  Counter& node_reqs_out = counter("iolib.cb.node_reqs_out");
};

CbCounters& cbc() {
  static CbCounters counters;
  return counters;
}

struct Extent {
  std::uint64_t lo = ~0ull;
  std::uint64_t hi = 0;
};

sim::Task<Extent> global_extent(mpi::Comm& comm, Extent mine) {
  co_return co_await comm.allreduce(mine, 16, [](Extent a, Extent b) {
    return Extent{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
  });
}

// Domain of aggregator j: an even split of [lo, hi).
std::pair<std::uint64_t, std::uint64_t> domain_of(const Extent& e, int j, int num) {
  const std::uint64_t span = e.hi - e.lo;
  const std::uint64_t start = e.lo + span * static_cast<std::uint64_t>(j) / num;
  const std::uint64_t end = e.lo + span * (static_cast<std::uint64_t>(j) + 1) / num;
  return {start, end};
}

// Splits [offset, offset+len) across aggregator domains, invoking
// fn(j, piece_offset, piece_len) for each piece in order.
template <typename Fn>
void split_over_domains(const Extent& ext, int num_aggs, std::uint64_t offset,
                        std::uint64_t len, Fn&& fn) {
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + len;
  while (pos < end) {
    int j = static_cast<int>(static_cast<unsigned __int128>(pos - ext.lo) * num_aggs /
                             (ext.hi - ext.lo));
    j = std::min(j, num_aggs - 1);
    auto [d_lo, d_hi] = domain_of(ext, j, num_aggs);
    while (pos >= d_hi && j + 1 < num_aggs) {  // guard integer-division edges
      ++j;
      std::tie(d_lo, d_hi) = domain_of(ext, j, num_aggs);
    }
    const std::uint64_t take = std::min(end, d_hi) - pos;
    fn(j, pos, take);
    pos += take;
  }
}

// Adds [s, e) to a start->end union map, merging overlaps and adjacency.
void merge_range(std::map<std::uint64_t, std::uint64_t>& runs, std::uint64_t s,
                 std::uint64_t e) {
  auto it = runs.lower_bound(s);
  if (it != runs.begin() && std::prev(it)->second >= s) --it;
  std::uint64_t ns = s;
  std::uint64_t ne = e;
  while (it != runs.end() && it->first <= ne) {
    ns = std::min(ns, it->first);
    ne = std::max(ne, it->second);
    it = runs.erase(it);
  }
  runs[ns] = ne;
}

// Drains an extent map into its coalesced runs as chunks.
std::vector<CbChunk> chunks_of(pfs::ExtentMap& map) {
  std::vector<CbChunk> out;
  out.reserve(map.extent_count());
  for (const auto& [off, view] : map.extents()) out.push_back(CbChunk{off, view});
  return out;
}

// The j this rank aggregates, or -1.
int my_aggregator_slot(const mpi::Comm& comm, const std::vector<int>& aggs) {
  for (std::size_t j = 0; j < aggs.size(); ++j) {
    if (aggs[j] == comm.rank()) return static_cast<int>(j);
  }
  return -1;
}

// Classifies and counts one payload message from the caller to `dst`;
// `data_bytes` feeds bytes_shipped when the hop crosses nodes.
void note_msg(const mpi::Comm& comm, int dst, std::uint64_t data_bytes) {
  if (comm.my_node() == comm.node_of_rank(dst)) {
    cbc().local_msgs.add();
  } else {
    cbc().fabric_msgs.add();
    cbc().bytes_shipped.add(data_bytes);
  }
}

// Counts the binomial-gather traffic of one comm.gather toward `root`, and
// the caller's data contribution when it lives off the root's node.
void note_gather(const mpi::Comm& comm, int root, std::uint64_t my_data_bytes) {
  if (comm.my_node() != comm.node_of_rank(root)) cbc().bytes_shipped.add(my_data_bytes);
  if (comm.rank() == root) {
    std::uint64_t intra = 0;
    std::uint64_t inter = 0;
    count_binomial_gather(comm, root, &intra, &inter);
    cbc().local_msgs.add(intra);
    cbc().fabric_msgs.add(inter);
  }
}

// Aggregator staging common to both read modes: merge-sieve the requested
// runs, read each group in buffer_bytes-capped operations, stage into
// `staged` (short reads leave holes; ExtentMap zero-fills them on read).
sim::Task<Status> stage_runs(const std::map<std::uint64_t, std::uint64_t>& runs,
                             const CbConfig& config, const ReadFn& read_at,
                             pfs::ExtentMap* staged) {
  std::vector<CbRange> list;
  list.reserve(runs.size());
  for (const auto& [s, e] : runs) list.push_back(CbRange{s, e - s});
  cbc().read_runs.add(list.size());
  CbSieveStats sieve;
  const std::vector<CbRange> groups = cb_sieve_groups(list, config.sieve_threshold, &sieve);
  cbc().sieve_joins.add(sieve.joins);
  cbc().sieve_hole_bytes.add(sieve.hole_bytes);
  for (const auto& g : groups) {
    std::uint64_t pos = g.offset;
    const std::uint64_t end = g.offset + g.len;
    while (pos < end) {
      const std::uint64_t take = std::min<std::uint64_t>(config.buffer_bytes, end - pos);
      cbc().pfs_ops.add();
      auto data = co_await read_at(pos, take);
      if (!data.ok()) co_return data.status();
      std::uint64_t at = pos;
      for (const auto& frag : data->fragments()) {
        staged->write(at, frag);
        at += frag.size();
      }
      // Short read (EOF): the remainder stays as holes (zeros).
      pos += take;
    }
  }
  co_return Status::Ok();
}

}  // namespace

int cb_aggregator_rank(int j, int num_aggregators, int comm_size) {
  return static_cast<int>(static_cast<std::int64_t>(j) * comm_size / num_aggregators);
}

int cb_num_aggregators(const CbConfig& config, const mpi::Comm& comm) {
  if (config.aggregators > 0) return std::min(config.aggregators, comm.size());
  const auto per_node =
      static_cast<int>(comm.runtime().cluster().config().cores_per_node);
  return std::max(1, comm.size() / std::max(1, per_node));
}

std::vector<int> cb_aggregator_ranks(const CbConfig& config, const mpi::Comm& comm,
                                     int num_aggregators) {
  if (config.rack_aware_placement) {
    return NodePlan::build(comm).rack_aware_aggregators(num_aggregators);
  }
  std::vector<int> aggs(static_cast<std::size_t>(num_aggregators));
  for (int j = 0; j < num_aggregators; ++j) {
    aggs[static_cast<std::size_t>(j)] = cb_aggregator_rank(j, num_aggregators, comm.size());
  }
  return aggs;
}

std::vector<CbRange> cb_sieve_groups(const std::vector<CbRange>& runs, double threshold,
                                     CbSieveStats* stats) {
  if (threshold <= 0 || runs.size() < 2) return runs;
  std::vector<CbRange> out;
  out.reserve(runs.size());
  CbRange cur = runs[0];
  std::uint64_t holes = 0;   // hole bytes inside the current group
  std::uint64_t useful = runs[0].len;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const CbRange& next = runs[i];
    const std::uint64_t hole = next.offset - (cur.offset + cur.len);
    const std::uint64_t joined_holes = holes + hole;
    const std::uint64_t joined_useful = useful + next.len;
    if (static_cast<double>(joined_holes) <=
        threshold * static_cast<double>(joined_useful)) {
      cur.len = next.offset + next.len - cur.offset;
      holes = joined_holes;
      useful = joined_useful;
      if (stats != nullptr) {
        ++stats->joins;
        stats->hole_bytes += hole;
      }
    } else {
      out.push_back(cur);
      cur = next;
      holes = 0;
      useful = next.len;
    }
  }
  out.push_back(cur);
  return out;
}

sim::Task<Status> cb_write(mpi::Comm& comm, const CbConfig& config, std::vector<CbChunk> mine,
                           const WriteFn& write_at) {
  static const trace::SpanSite kWindow("iolib.cb", "cb.write");
  static const trace::SpanSite kMeta("iolib.cb.phase", "cb.write.meta");
  static const trace::SpanSite kGather("iolib.cb.phase", "cb.write.gather");
  static const trace::SpanSite kShuffle("iolib.cb.phase", "cb.write.shuffle");
  static const trace::SpanSite kPfs("iolib.cb.phase", "cb.write.pfs");
  static const trace::SpanSite kSync("iolib.cb.phase", "cb.write.sync");
  sim::Engine& engine = comm.engine();
  const int grank = comm.global_rank();
  trace::Span window(engine, kWindow, grank);
  if (comm.rank() == 0) cbc().writes.add();

  Extent local;
  for (const auto& c : mine) {
    local.lo = std::min(local.lo, c.offset);
    local.hi = std::max(local.hi, c.offset + c.data.size());
  }
  Extent ext;
  {
    trace::Span meta(engine, kMeta, grank);
    ext = co_await global_extent(comm, local);
  }
  if (ext.hi <= ext.lo) {
    trace::Span sync(engine, kSync, grank);
    co_await comm.barrier();
    co_return Status::Ok();
  }
  const int num_aggs = cb_num_aggregators(config, comm);
  const std::vector<int> aggs = cb_aggregator_ranks(config, comm, num_aggs);

  // Split my chunks across aggregator domains.
  std::vector<std::vector<CbChunk>> outgoing(num_aggs);
  for (auto& c : mine) {
    split_over_domains(ext, num_aggs, c.offset, c.data.size(),
                       [&](int j, std::uint64_t pos, std::uint64_t take) {
                         outgoing[j].push_back(
                             CbChunk{pos, c.data.slice(pos - c.offset, take)});
                       });
  }

  pfs::ExtentMap staged;
  bool i_aggregate = false;

  if (!config.node_aggregation) {
    // Classic phase 1: ship records to their aggregators (one gather per
    // aggregator).
    trace::Span gather(engine, kGather, grank);
    for (int j = 0; j < num_aggs; ++j) {
      const int root = aggs[static_cast<std::size_t>(j)];
      std::uint64_t bytes = 0;
      for (const auto& c : outgoing[j]) bytes += c.data.size() + 16;
      note_gather(comm, root, bytes);
      auto gathered = co_await comm.gather(root, std::move(outgoing[j]), bytes);
      if (comm.rank() == root) {
        i_aggregate = true;
        for (auto& per_rank : gathered) {
          for (auto& c : per_rank) staged.write(c.offset, std::move(c.data));
        }
      }
    }
  } else {
    const NodePlan plan = NodePlan::build(comm);
    const int me = comm.rank();
    const int leader = plan.leader_of(plan.my_node);
    const int my_j = my_aggregator_slot(comm, aggs);

    // Phase 0: co-residents hand their per-aggregator chunk lists to the
    // node leader over the latency-only intra-node transport; the leader
    // coalesces them per aggregator domain (members merge in comm-rank
    // order, preserving last-writer-wins for overlapping records under
    // block placement).
    {
      trace::Span gather(engine, kGather, grank);
      if (me != leader) {
        std::uint64_t bytes = 0;
        for (const auto& per_agg : outgoing) {
          for (const auto& c : per_agg) bytes += c.data.size() + 16;
        }
        note_msg(comm, leader, bytes);
        co_await comm.send(leader, kCbTagIntraW, std::move(outgoing), bytes);
        outgoing.assign(num_aggs, {});
      } else {
        std::vector<pfs::ExtentMap> merged(num_aggs);
        std::uint64_t chunks_in = 0;
        for (int j = 0; j < num_aggs; ++j) {
          for (auto& c : outgoing[j]) {
            ++chunks_in;
            merged[j].write(c.offset, std::move(c.data));
          }
        }
        const std::vector<int>& residents = plan.members[plan.my_node];
        for (std::size_t i = 1; i < residents.size(); ++i) {
          auto theirs = co_await comm.recv<std::vector<std::vector<CbChunk>>>(
              residents[i], kCbTagIntraW);
          for (int j = 0; j < num_aggs; ++j) {
            for (auto& c : theirs[j]) {
              ++chunks_in;
              merged[j].write(c.offset, std::move(c.data));
            }
          }
        }
        cbc().node_reqs_in.add(chunks_in);
        for (int j = 0; j < num_aggs; ++j) {
          outgoing[j] = chunks_of(merged[j]);
          cbc().node_reqs_out.add(outgoing[j].size());
        }
      }
    }

    // Phase 1: the inter-node exchange — exactly nodes x aggregators
    // messages (leaders always send, so aggregators know what to expect).
    {
      trace::Span shuffle(engine, kShuffle, grank);
      if (me == leader) {
        for (int j = 0; j < num_aggs; ++j) {
          const int dst = aggs[static_cast<std::size_t>(j)];
          std::uint64_t bytes = 0;
          for (const auto& c : outgoing[j]) bytes += c.data.size() + 16;
          note_msg(comm, dst, bytes);
          co_await comm.send(dst, kCbTagShipW + j, std::move(outgoing[j]), bytes);
        }
      }
      if (my_j >= 0) {
        i_aggregate = true;
        for (int node = 0; node < plan.num_nodes(); ++node) {
          auto part = co_await comm.recv<std::vector<CbChunk>>(plan.leader_of(node),
                                                               kCbTagShipW + my_j);
          for (auto& c : part) staged.write(c.offset, std::move(c.data));
        }
      }
    }
  }

  // Phase 2: aggregators issue large contiguous writes, capped at
  // buffer_bytes per operation.
  {
    trace::Span pfs(engine, kPfs, grank);
    if (i_aggregate) {
      for (const auto& [off, view] : staged.extents()) {
        cbc().write_runs.add();
        std::uint64_t pos = 0;
        while (pos < view.size()) {
          const std::uint64_t take = std::min<std::uint64_t>(config.buffer_bytes,
                                                             view.size() - pos);
          cbc().pfs_ops.add();
          TIO_CO_RETURN_IF_ERROR(co_await write_at(off + pos, view.slice(pos, take)));
          pos += take;
        }
      }
    }
  }
  {
    trace::Span sync(engine, kSync, grank);
    co_await comm.barrier();
  }
  co_return Status::Ok();
}

sim::Task<Status> cb_read(mpi::Comm& comm, const CbConfig& config, std::vector<CbRange> wants,
                          const ReadFn& read_at, std::vector<FragmentList>* out) {
  static const trace::SpanSite kWindow("iolib.cb", "cb.read");
  static const trace::SpanSite kMeta("iolib.cb.phase", "cb.read.meta");
  static const trace::SpanSite kGather("iolib.cb.phase", "cb.read.gather");
  static const trace::SpanSite kShuffle("iolib.cb.phase", "cb.read.shuffle");
  static const trace::SpanSite kPfs("iolib.cb.phase", "cb.read.pfs");
  static const trace::SpanSite kReply("iolib.cb.phase", "cb.read.reply");
  static const trace::SpanSite kSync("iolib.cb.phase", "cb.read.sync");
  sim::Engine& engine = comm.engine();
  const int grank = comm.global_rank();
  trace::Span window(engine, kWindow, grank);
  if (comm.rank() == 0) cbc().reads.add();

  out->assign(wants.size(), FragmentList{});
  Extent local;
  for (const auto& w : wants) {
    local.lo = std::min(local.lo, w.offset);
    local.hi = std::max(local.hi, w.offset + w.len);
  }
  Extent ext;
  {
    trace::Span meta(engine, kMeta, grank);
    ext = co_await global_extent(comm, local);
  }
  if (ext.hi <= ext.lo) {
    trace::Span sync(engine, kSync, grank);
    co_await comm.barrier();
    co_return Status::Ok();
  }
  const int num_aggs = cb_num_aggregators(config, comm);
  const std::vector<int> aggs = cb_aggregator_ranks(config, comm, num_aggs);

  // A request piece as shipped to an aggregator.
  struct Piece {
    std::uint32_t want;  // index into the requester's `wants`
    std::uint64_t offset;
    std::uint64_t len;
  };
  std::vector<std::vector<Piece>> outgoing(num_aggs);
  for (std::uint32_t i = 0; i < wants.size(); ++i) {
    split_over_domains(ext, num_aggs, wants[i].offset, wants[i].len,
                       [&](int j, std::uint64_t pos, std::uint64_t take) {
                         outgoing[j].push_back(Piece{i, pos, take});
                       });
  }

  if (!config.node_aggregation) {
    // Which aggregators will reply to me, in j order.
    std::vector<int> reply_from;
    for (int j = 0; j < num_aggs; ++j) {
      if (!outgoing[j].empty()) reply_from.push_back(j);
    }

    // Phase 1: gather request pieces per aggregator; aggregators read the
    // merged (optionally sieved) runs once and slice replies per requester.
    struct Reply {
      std::vector<std::pair<Piece, FragmentList>> pieces;
    };
    for (int j = 0; j < num_aggs; ++j) {
      const int root = aggs[static_cast<std::size_t>(j)];
      const std::uint64_t bytes = outgoing[j].size() * 24;
      note_gather(comm, root, 0);  // requests carry no file data
      std::vector<std::vector<Piece>> gathered;
      {
        trace::Span gather(engine, kGather, grank);
        gathered = co_await comm.gather(root, std::move(outgoing[j]), bytes);
      }
      if (comm.rank() != root) continue;

      std::map<std::uint64_t, std::uint64_t> runs;  // start -> end (union)
      for (const auto& per_rank : gathered) {
        for (const auto& p : per_rank) merge_range(runs, p.offset, p.offset + p.len);
      }
      pfs::ExtentMap staged;
      {
        trace::Span pfs(engine, kPfs, grank);
        TIO_CO_RETURN_IF_ERROR(co_await stage_runs(runs, config, read_at, &staged));
      }
      trace::Span reply_span(engine, kReply, grank);
      for (int r = 0; r < comm.size(); ++r) {
        if (gathered[r].empty()) continue;
        Reply reply;
        for (const auto& p : gathered[r]) {
          reply.pieces.emplace_back(p, staged.read(p.offset, p.len));
        }
        std::uint64_t reply_bytes = 0;
        for (const auto& [p, fl] : reply.pieces) reply_bytes += fl.size();
        note_msg(comm, r, reply_bytes);
        co_await comm.send(r, kCbTagBase + j, std::move(reply), reply_bytes);
      }
    }

    // Phase 2: requesters collect replies and reassemble in request order.
    std::vector<std::vector<std::pair<Piece, FragmentList>>> by_want(wants.size());
    {
      trace::Span reply_span(engine, kReply, grank);
      for (const int j : reply_from) {
        const int root = aggs[static_cast<std::size_t>(j)];
        auto reply = co_await comm.recv<Reply>(root, kCbTagBase + j);
        for (auto& [p, fl] : reply.pieces) {
          by_want[p.want].emplace_back(p, std::move(fl));
        }
      }
    }
    for (std::uint32_t i = 0; i < wants.size(); ++i) {
      auto& pieces = by_want[i];
      std::sort(pieces.begin(), pieces.end(),
                [](const auto& a, const auto& b) { return a.first.offset < b.first.offset; });
      for (auto& [p, fl] : pieces) {
        for (const auto& frag : fl.fragments()) (*out)[i].append(frag);
        // Zero-pad pieces the aggregator could not fully satisfy.
        if (fl.size() < p.len) (*out)[i].append(DataView::zeros(p.len - fl.size()));
      }
    }
  } else {
    const NodePlan plan = NodePlan::build(comm);
    const int me = comm.rank();
    const int leader = plan.leader_of(plan.my_node);
    const int my_j = my_aggregator_slot(comm, aggs);
    // Members keep their piece lists: the leader replies with slices in
    // the same flattened (j-ascending, then list) order.
    const std::vector<std::vector<Piece>> my_pieces = outgoing;
    // Reassembles one rank's (piece, data) pairs into `out`, mirroring the
    // legacy path exactly (offset sort per want, zero-pad short pieces).
    const auto assemble = [&wants, out](std::vector<std::pair<Piece, FragmentList>> pieces) {
      std::vector<std::vector<std::pair<Piece, FragmentList>>> by_want(wants.size());
      for (auto& pr : pieces) by_want[pr.first.want].push_back(std::move(pr));
      for (std::uint32_t i = 0; i < wants.size(); ++i) {
        auto& v = by_want[i];
        std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
          return a.first.offset < b.first.offset;
        });
        for (auto& [p, fl] : v) {
          for (const auto& frag : fl.fragments()) (*out)[i].append(frag);
          if (fl.size() < p.len) (*out)[i].append(DataView::zeros(p.len - fl.size()));
        }
      }
    };

    // Phase 0: co-residents hand piece lists to the node leader, which
    // coalesces them into per-aggregator run lists.
    std::vector<std::vector<std::vector<Piece>>> member_pieces;  // leader only
    std::vector<std::vector<CbRange>> node_runs(num_aggs);       // leader only
    {
      trace::Span gather(engine, kGather, grank);
      if (me != leader) {
        std::uint64_t pieces = 0;
        for (const auto& per_agg : outgoing) pieces += per_agg.size();
        note_msg(comm, leader, 0);
        co_await comm.send(leader, kCbTagIntraR, std::move(outgoing), pieces * 24);
      } else {
        const std::vector<int>& residents = plan.members[plan.my_node];
        member_pieces.resize(residents.size());
        member_pieces[0] = std::move(outgoing);
        for (std::size_t i = 1; i < residents.size(); ++i) {
          member_pieces[i] = co_await comm.recv<std::vector<std::vector<Piece>>>(
              residents[i], kCbTagIntraR);
        }
        std::uint64_t pieces_in = 0;
        for (int j = 0; j < num_aggs; ++j) {
          std::map<std::uint64_t, std::uint64_t> merged;
          for (const auto& member : member_pieces) {
            for (const auto& p : member[j]) {
              ++pieces_in;
              merge_range(merged, p.offset, p.offset + p.len);
            }
          }
          node_runs[j].reserve(merged.size());
          for (const auto& [s, e] : merged) node_runs[j].push_back(CbRange{s, e - s});
          cbc().node_reqs_out.add(node_runs[j].size());
        }
        cbc().node_reqs_in.add(pieces_in);
      }
    }

    // Phase 1: leaders ship merged run lists — exactly nodes x aggregators
    // request messages; aggregators merge and stage the union.
    std::vector<std::vector<CbRange>> agg_requests;  // aggregator only, per node
    {
      trace::Span shuffle(engine, kShuffle, grank);
      if (me == leader) {
        for (int j = 0; j < num_aggs; ++j) {
          const int dst = aggs[static_cast<std::size_t>(j)];
          note_msg(comm, dst, 0);
          co_await comm.send(dst, kCbTagShipR + j, node_runs[j],
                             node_runs[j].size() * 24);
        }
      }
      if (my_j >= 0) {
        agg_requests.resize(plan.num_nodes());
        for (int node = 0; node < plan.num_nodes(); ++node) {
          agg_requests[node] = co_await comm.recv<std::vector<CbRange>>(
              plan.leader_of(node), kCbTagShipR + my_j);
        }
      }
    }

    pfs::ExtentMap staged;  // aggregator only
    if (my_j >= 0) {
      std::map<std::uint64_t, std::uint64_t> runs;
      for (const auto& per_node : agg_requests) {
        for (const auto& r : per_node) merge_range(runs, r.offset, r.offset + r.len);
      }
      trace::Span pfs(engine, kPfs, grank);
      TIO_CO_RETURN_IF_ERROR(co_await stage_runs(runs, config, read_at, &staged));
    }

    // Phase 2: aggregators answer each requesting leader with data for its
    // runs; leaders restage and fan slices out to their members.
    {
      trace::Span reply_span(engine, kReply, grank);
      if (my_j >= 0) {
        for (int node = 0; node < plan.num_nodes(); ++node) {
          if (agg_requests[node].empty()) continue;
          std::vector<FragmentList> reply;
          reply.reserve(agg_requests[node].size());
          std::uint64_t reply_bytes = 0;
          for (const auto& r : agg_requests[node]) {
            reply.push_back(staged.read(r.offset, r.len));
            reply_bytes += reply.back().size();
          }
          note_msg(comm, plan.leader_of(node), reply_bytes);
          co_await comm.send(plan.leader_of(node), kCbTagAggReply + my_j,
                             std::move(reply), reply_bytes);
        }
      }
      if (me == leader) {
        pfs::ExtentMap restaged;
        for (int j = 0; j < num_aggs; ++j) {
          if (node_runs[j].empty()) continue;
          const int root = aggs[static_cast<std::size_t>(j)];
          auto reply =
              co_await comm.recv<std::vector<FragmentList>>(root, kCbTagAggReply + j);
          for (std::size_t i = 0; i < node_runs[j].size(); ++i) {
            std::uint64_t at = node_runs[j][i].offset;
            for (const auto& frag : reply[i].fragments()) {
              restaged.write(at, frag);
              at += frag.size();
            }
          }
        }
        const std::vector<int>& residents = plan.members[plan.my_node];
        for (std::size_t i = 1; i < residents.size(); ++i) {
          std::vector<FragmentList> slices;
          std::uint64_t bytes = 0;
          for (int j = 0; j < num_aggs; ++j) {
            for (const auto& p : member_pieces[i][j]) {
              slices.push_back(restaged.read(p.offset, p.len));
              bytes += slices.back().size();
            }
          }
          note_msg(comm, residents[i], bytes);
          co_await comm.send(residents[i], kCbTagFanout, std::move(slices), bytes);
        }
        // The leader's own pieces, straight out of the restaged map.
        std::vector<std::pair<Piece, FragmentList>> mine;
        for (int j = 0; j < num_aggs; ++j) {
          for (const auto& p : member_pieces[0][j]) {
            mine.emplace_back(p, restaged.read(p.offset, p.len));
          }
        }
        assemble(std::move(mine));
      } else {
        auto slices = co_await comm.recv<std::vector<FragmentList>>(leader, kCbTagFanout);
        std::vector<std::pair<Piece, FragmentList>> mine;
        std::size_t k = 0;
        for (int j = 0; j < num_aggs; ++j) {
          for (const auto& p : my_pieces[j]) {
            mine.emplace_back(p, std::move(slices[k]));
            ++k;
          }
        }
        assemble(std::move(mine));
      }
    }
  }
  {
    trace::Span sync(engine, kSync, grank);
    co_await comm.barrier();
  }
  co_return Status::Ok();
}

}  // namespace tio::iolib
