file(REMOVE_RECURSE
  "libtio_testbed.a"
)
