#include "pfs/namespace.h"

#include <gtest/gtest.h>

namespace tio::pfs {
namespace {

TEST(Namespace, RootExistsAndIsEmpty) {
  Namespace ns;
  EXPECT_TRUE(ns.exists("/"));
  auto entries = ns.readdir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST(Namespace, MkdirAndLookup) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/a").ok());
  ASSERT_TRUE(ns.mkdir("/a/b").ok());
  auto e = ns.lookup("/a/b");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->is_dir);
}

TEST(Namespace, MkdirMissingParentFails) {
  Namespace ns;
  EXPECT_EQ(ns.mkdir("/a/b").code(), Errc::not_found);
}

TEST(Namespace, MkdirExistingFails) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/a").ok());
  EXPECT_EQ(ns.mkdir("/a").code(), Errc::exists);
}

TEST(Namespace, MkdirAllCreatesChain) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir_all("/x/y/z").ok());
  EXPECT_TRUE(ns.exists("/x/y/z"));
  // Idempotent.
  ASSERT_TRUE(ns.mkdir_all("/x/y/z").ok());
}

TEST(Namespace, MkdirAllThroughFileFails) {
  Namespace ns;
  ASSERT_TRUE(ns.create_file("/f", true).ok());
  EXPECT_EQ(ns.mkdir_all("/f/sub").code(), Errc::not_a_directory);
}

TEST(Namespace, CreateFileAllocatesDistinctObjectIds) {
  Namespace ns;
  auto a = ns.create_file("/a", true);
  auto b = ns.create_file("/b", true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->created);
  EXPECT_NE(a->oid, b->oid);
  EXPECT_NE(a->oid, kNoObject);
}

TEST(Namespace, CreateExistingExclFails) {
  Namespace ns;
  ASSERT_TRUE(ns.create_file("/a", true).ok());
  EXPECT_EQ(ns.create_file("/a", true).status().code(), Errc::exists);
}

TEST(Namespace, CreateExistingNonExclReturnsSameOid) {
  Namespace ns;
  auto first = ns.create_file("/a", false);
  auto again = ns.create_file("/a", false);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->created);
  EXPECT_EQ(again->oid, first->oid);
}

TEST(Namespace, CreateOverDirectoryFails) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/d").ok());
  EXPECT_EQ(ns.create_file("/d", false).status().code(), Errc::is_a_directory);
}

TEST(Namespace, LookupMissingIsNotFound) {
  Namespace ns;
  EXPECT_EQ(ns.lookup("/nope").status().code(), Errc::not_found);
  EXPECT_EQ(ns.lookup("/a/b/c").status().code(), Errc::not_found);
}

TEST(Namespace, LookupThroughFileIsNotFound) {
  Namespace ns;
  ASSERT_TRUE(ns.create_file("/f", true).ok());
  EXPECT_FALSE(ns.lookup("/f/x").ok());
}

TEST(Namespace, RmdirSemantics) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/d").ok());
  ASSERT_TRUE(ns.mkdir("/d/sub").ok());
  EXPECT_EQ(ns.rmdir("/d").code(), Errc::not_empty);
  ASSERT_TRUE(ns.rmdir("/d/sub").ok());
  ASSERT_TRUE(ns.rmdir("/d").ok());
  EXPECT_EQ(ns.rmdir("/d").code(), Errc::not_found);
  ASSERT_TRUE(ns.create_file("/f", true).ok());
  EXPECT_EQ(ns.rmdir("/f").code(), Errc::not_a_directory);
}

TEST(Namespace, UnlinkSemantics) {
  Namespace ns;
  auto created = ns.create_file("/f", true);
  auto removed = ns.unlink("/f");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), created->oid);
  EXPECT_EQ(ns.unlink("/f").status().code(), Errc::not_found);
  ASSERT_TRUE(ns.mkdir("/d").ok());
  EXPECT_EQ(ns.unlink("/d").status().code(), Errc::is_a_directory);
}

TEST(Namespace, ReaddirListsSortedEntries) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/d").ok());
  ASSERT_TRUE(ns.create_file("/d/b", true).ok());
  ASSERT_TRUE(ns.create_file("/d/a", true).ok());
  ASSERT_TRUE(ns.mkdir("/d/c").ok());
  auto entries = ns.readdir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0], (DirEntry{"a", false}));
  EXPECT_EQ((*entries)[1], (DirEntry{"b", false}));
  EXPECT_EQ((*entries)[2], (DirEntry{"c", true}));
}

TEST(Namespace, ReaddirOnFileFails) {
  Namespace ns;
  ASSERT_TRUE(ns.create_file("/f", true).ok());
  EXPECT_EQ(ns.readdir("/f").status().code(), Errc::not_a_directory);
}

TEST(Namespace, DirEntryCount) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/d").ok());
  EXPECT_EQ(ns.dir_entry_count("/d"), 0u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ns.create_file("/d/f" + std::to_string(i), true).ok());
  }
  EXPECT_EQ(ns.dir_entry_count("/d"), 5u);
  EXPECT_EQ(ns.dir_entry_count("/missing"), 0u);
}

TEST(Namespace, RenameFile) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/a").ok());
  ASSERT_TRUE(ns.mkdir("/b").ok());
  auto created = ns.create_file("/a/f", true);
  ASSERT_TRUE(ns.rename("/a/f", "/b/g").ok());
  EXPECT_FALSE(ns.exists("/a/f"));
  auto e = ns.lookup("/b/g");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->oid, created->oid);
}

TEST(Namespace, RenameReplacesExistingFile) {
  Namespace ns;
  ASSERT_TRUE(ns.create_file("/f1", true).ok());
  auto f2 = ns.create_file("/f2", true);
  ASSERT_TRUE(ns.rename("/f2", "/f1").ok());
  EXPECT_EQ(ns.lookup("/f1")->oid, f2->oid);
  EXPECT_FALSE(ns.exists("/f2"));
}

TEST(Namespace, RenameDirOverNonEmptyDirFails) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/a").ok());
  ASSERT_TRUE(ns.mkdir("/b").ok());
  ASSERT_TRUE(ns.create_file("/b/x", true).ok());
  EXPECT_EQ(ns.rename("/a", "/b").code(), Errc::not_empty);
}

TEST(Namespace, RenameTypeMismatchFails) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/d").ok());
  ASSERT_TRUE(ns.create_file("/f", true).ok());
  EXPECT_EQ(ns.rename("/f", "/d").code(), Errc::is_a_directory);
  EXPECT_EQ(ns.rename("/d", "/f").code(), Errc::not_a_directory);
}

TEST(Namespace, DeepTreeStress) {
  Namespace ns;
  std::string path;
  for (int i = 0; i < 50; ++i) {
    path += "/d" + std::to_string(i);
    ASSERT_TRUE(ns.mkdir(path).ok());
  }
  EXPECT_TRUE(ns.exists(path));
  ASSERT_TRUE(ns.create_file(path + "/leaf", true).ok());
  EXPECT_TRUE(ns.lookup(path + "/leaf").ok());
}

}  // namespace
}  // namespace tio::pfs
