file(REMOVE_RECURSE
  "CMakeFiles/fig7_metadata_nn.dir/fig7_metadata_nn.cc.o"
  "CMakeFiles/fig7_metadata_nn.dir/fig7_metadata_nn.cc.o.d"
  "fig7_metadata_nn"
  "fig7_metadata_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_metadata_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
