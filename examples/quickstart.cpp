// Quickstart: PLFS on your real disk.
//
// Runs the identical middleware that the benchmarks simulate, but against
// the host file system: four "processes" write interleaved records into one
// logical file, and the program then shows the physical container PLFS
// built (the transformative part) and reads the logical file back intact.
//
//   ./quickstart [--dir /tmp/plfs_quickstart]
#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "common/strutil.h"
#include "localfs/local_fs.h"
#include "plfs/plfs.h"

using namespace tio;

namespace {

// Recursively prints the physical tree PLFS created on disk.
void print_tree(const std::filesystem::path& p, int depth = 0) {
  for (const auto& entry : std::filesystem::directory_iterator(p)) {
    std::printf("  %*s%s%s\n", depth * 2, "", entry.path().filename().c_str(),
                entry.is_directory() ? "/" : "");
    if (entry.is_directory()) print_tree(entry.path(), depth + 1);
  }
}

sim::Task<void> demo(plfs::Plfs& plfs) {
  constexpr int kWriters = 4;
  constexpr std::uint64_t kRecord = 1 << 16;  // 64 KiB
  constexpr int kRounds = 8;

  // --- N-1 write phase: each writer strides through the shared file ---
  for (int w = 0; w < kWriters; ++w) {
    const pfs::IoCtx ctx{0, w};
    auto handle = co_await plfs.open_write(ctx, "/ckpt/timestep42", w);
    if (!handle.ok()) throw std::runtime_error(handle.status().to_string());
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t off = (static_cast<std::uint64_t>(r) * kWriters + w) * kRecord;
      const Status st = co_await (*handle)->write(off, DataView::pattern(7, off, kRecord));
      if (!st.ok()) throw std::runtime_error(st.to_string());
    }
    const Status st = co_await (*handle)->close();
    if (!st.ok()) throw std::runtime_error(st.to_string());
    std::printf("writer %d: logged %d records (%s data)\n", w, kRounds,
                format_bytes(kRounds * kRecord).c_str());
  }

  // --- read phase: one process reassembles the logical file ---
  const pfs::IoCtx ctx{0, 0};
  auto reader = co_await plfs.open_read(ctx, "/ckpt/timestep42");
  if (!reader.ok()) throw std::runtime_error(reader.status().to_string());
  const std::uint64_t size = (*reader)->logical_size();
  auto data = co_await (*reader)->read(0, size);
  if (!data.ok()) throw std::runtime_error(data.status().to_string());
  const bool intact = data->content_equals(DataView::pattern(7, 0, size));
  std::printf("\nlogical file size: %s, content %s\n", format_bytes(size).c_str(),
              intact ? "verified byte-for-byte" : "MISMATCH!");
  std::printf("index mappings after compression: %zu (from %d raw records)\n",
              (*reader)->index().mapping_count(), kWriters * kRounds);
  (void)co_await (*reader)->close();
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("quickstart: PLFS over the host file system");
  auto* dir = flags.add_string("dir", "/tmp/plfs_quickstart", "host directory to use");
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }

  std::filesystem::remove_all(*dir);
  std::filesystem::create_directories(*dir);

  sim::Engine engine;
  localfs::LocalFs fs(engine, *dir);

  // Two "backends" model two glued file systems (federation); on a laptop
  // they are just two directories.
  plfs::PlfsMount mount;
  mount.backends = {"/backend0", "/backend1"};
  mount.num_subdirs = 4;
  for (const auto& b : mount.backends) {
    std::filesystem::create_directories(*dir + b);
  }
  plfs::Plfs plfs(fs, mount);

  engine.spawn(demo(plfs));
  engine.run();

  std::printf("\nphysical container layout under %s:\n", dir->c_str());
  print_tree(*dir);
  std::printf(
      "\nThe logical file /ckpt/timestep42 is a *container*: every writer got\n"
      "a private data log and index log, spread across both backends.\n");
  return 0;
}
