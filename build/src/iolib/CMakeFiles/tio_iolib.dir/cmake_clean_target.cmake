file(REMOVE_RECURSE
  "libtio_iolib.a"
)
