#include "pfs/extent_map.h"

#include <algorithm>

namespace tio::pfs {

void ExtentMap::write(std::uint64_t offset, DataView data) {
  if (data.empty()) return;
  const std::uint64_t end = offset + data.size();

  // Find the first extent that could overlap: the one at or before offset.
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end > offset) {
      // prev straddles the write start; keep its left part, and if it
      // extends past the write end, keep the right part too.
      DataView old = prev->second;
      const std::uint64_t prev_start = prev->first;
      prev->second = old.slice(0, offset - prev_start);
      if (prev_end > end) {
        extents_.emplace(end, old.slice(end - prev_start, prev_end - end));
      }
    }
  }
  // Remove or trim extents starting inside [offset, end).
  it = extents_.lower_bound(offset);
  while (it != extents_.end() && it->first < end) {
    const std::uint64_t ext_start = it->first;
    const std::uint64_t ext_end = ext_start + it->second.size();
    if (ext_end <= end) {
      it = extents_.erase(it);
    } else {
      // Tail survives.
      DataView tail = it->second.slice(end - ext_start, ext_end - end);
      extents_.erase(it);
      extents_.emplace(end, std::move(tail));
      break;
    }
  }

  // Insert, coalescing with byte-continuation neighbours.
  std::uint64_t ins_off = offset;
  DataView ins = std::move(data);
  auto next = extents_.lower_bound(ins_off);
  if (next != extents_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second.size() == ins_off && prev->second.continues_with(ins)) {
      prev->second.extend(ins.size());
      // Try to further coalesce with next.
      if (next != extents_.end() && ins_off + ins.size() == next->first &&
          prev->second.continues_with(next->second)) {
        prev->second.extend(next->second.size());
        extents_.erase(next);
      }
      return;
    }
  }
  if (next != extents_.end() && ins_off + ins.size() == next->first &&
      ins.continues_with(next->second)) {
    ins.extend(next->second.size());
    extents_.erase(next);
  }
  extents_.emplace(ins_off, std::move(ins));
}

FragmentList ExtentMap::read(std::uint64_t offset, std::uint64_t len) const {
  FragmentList out;
  if (len == 0) return out;
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + len;

  auto it = extents_.upper_bound(pos);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > pos) it = prev;
  }
  for (; it != extents_.end() && it->first < end; ++it) {
    const std::uint64_t ext_start = it->first;
    if (ext_start > pos) {
      out.append(DataView::zeros(ext_start - pos));  // hole
      pos = ext_start;
    }
    const std::uint64_t take_from = pos - ext_start;
    const std::uint64_t take = std::min(end, ext_start + it->second.size()) - pos;
    if (take > 0) {
      out.append(it->second.slice(take_from, take));
      pos += take;
    }
  }
  if (pos < end) out.append(DataView::zeros(end - pos));  // trailing hole
  return out;
}

std::uint64_t ExtentMap::high_water() const {
  if (extents_.empty()) return 0;
  const auto& last = *extents_.rbegin();
  return last.first + last.second.size();
}

void ExtentMap::truncate(std::uint64_t new_size) {
  auto it = extents_.lower_bound(new_size);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end > new_size) {
      prev->second = prev->second.slice(0, new_size - prev->first);
    }
  }
  extents_.erase(it, extents_.end());
}

std::uint64_t ExtentMap::backed_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [off, v] : extents_) total += v.size();
  return total;
}

}  // namespace tio::pfs
