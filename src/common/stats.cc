#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tio {

double Series::sum() const {
  double s = 0;
  for (double x : xs_) s += x;
  return s;
}

double Series::mean() const {
  if (xs_.empty()) throw std::logic_error("Series::mean on empty series");
  return sum() / static_cast<double>(xs_.size());
}

double Series::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Series::min() const {
  if (xs_.empty()) throw std::logic_error("Series::min on empty series");
  return *std::min_element(xs_.begin(), xs_.end());
}

double Series::max() const {
  if (xs_.empty()) throw std::logic_error("Series::max on empty series");
  return *std::max_element(xs_.begin(), xs_.end());
}

double Series::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("Series::percentile on empty series");
  std::vector<double> s = xs_;
  std::sort(s.begin(), s.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(s.size())));
  return s[rank == 0 ? 0 : rank - 1];
}

}  // namespace tio
