file(REMOVE_RECURSE
  "CMakeFiles/tio_plfs.dir/container.cc.o"
  "CMakeFiles/tio_plfs.dir/container.cc.o.d"
  "CMakeFiles/tio_plfs.dir/index.cc.o"
  "CMakeFiles/tio_plfs.dir/index.cc.o.d"
  "CMakeFiles/tio_plfs.dir/mpiio.cc.o"
  "CMakeFiles/tio_plfs.dir/mpiio.cc.o.d"
  "CMakeFiles/tio_plfs.dir/plfs.cc.o"
  "CMakeFiles/tio_plfs.dir/plfs.cc.o.d"
  "CMakeFiles/tio_plfs.dir/vfs.cc.o"
  "CMakeFiles/tio_plfs.dir/vfs.cc.o.d"
  "libtio_plfs.a"
  "libtio_plfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_plfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
