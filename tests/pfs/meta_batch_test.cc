// Batched create/mkdir/unlink RPCs: namespace equivalence with the per-op
// path (both replication modes), per-entry statuses inside one batch,
// linger flushes, and the round-trip amortization the batching exists for.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/stats.h"
#include "pfs/sim_pfs.h"
#include "sim/sync.h"
#include "testutil.h"

namespace tio::pfs {
namespace {

net::ClusterConfig batch_cluster() {
  net::ClusterConfig c;
  c.nodes = 8;
  c.cores_per_node = 4;
  return c;
}

PfsConfig batch_pfs(std::size_t batch, bool replicated) {
  PfsConfig c;
  c.num_mds = 4;
  c.num_osts = 8;
  c.mds_batch = batch;
  if (replicated) c.mds_replication = MdsReplication::raft;
  return c;
}

struct World {
  World(std::size_t batch, bool replicated)
      : cluster(engine, batch_cluster()), fs(cluster, batch_pfs(batch, replicated)) {}
  sim::Engine engine;
  net::Cluster cluster;
  SimPfs fs;
};

// `ranks` concurrent clients each create `files_each` files in /d, close
// them, and record their statuses. Runs the engine to completion.
void create_storm(World& w, int ranks, int files_each, std::vector<Status>& out) {
  ASSERT_TRUE(w.fs.ns().mkdir_all("/d").ok());
  out.assign(static_cast<std::size_t>(ranks) * files_each, Status::Ok());
  for (int r = 0; r < ranks; ++r) {
    w.engine.spawn([](SimPfs& fs, int rank, int files, std::vector<Status>& statuses,
                      int stride) -> sim::Task<void> {
      const IoCtx ctx{static_cast<std::size_t>(rank), rank};
      for (int i = 0; i < files; ++i) {
        const std::string path = "/d/f" + std::to_string(rank) + "_" + std::to_string(i);
        auto fd = co_await fs.open(ctx, path, OpenFlags::wr_create_excl());
        if (!fd.ok()) {
          statuses[static_cast<std::size_t>(rank) * stride + i] = fd.status();
          continue;
        }
        statuses[static_cast<std::size_t>(rank) * stride + i] =
            co_await fs.close(ctx, *fd);
      }
    }(w.fs, r, files_each, out, files_each));
  }
  w.engine.run();
}

void expect_namespace(World& w, int ranks, int files_each) {
  for (int r = 0; r < ranks; ++r) {
    for (int i = 0; i < files_each; ++i) {
      const std::string path = "/d/f" + std::to_string(r) + "_" + std::to_string(i);
      auto e = w.fs.ns().lookup(path);
      EXPECT_TRUE(e.ok()) << path;
    }
  }
}

TEST(MetaBatch, BatchedCreatesMatchUnbatchedNamespace) {
  for (const bool replicated : {false, true}) {
    SCOPED_TRACE(replicated ? "raft" : "unreplicated");
    std::vector<Status> legacy_st, batched_st;
    World legacy(0, replicated);
    create_storm(legacy, 6, 8, legacy_st);
    World batched(8, replicated);
    create_storm(batched, 6, 8, batched_st);
    for (const Status& st : legacy_st) EXPECT_TRUE(st.ok()) << st;
    for (const Status& st : batched_st) EXPECT_TRUE(st.ok()) << st;
    expect_namespace(legacy, 6, 8);
    expect_namespace(batched, 6, 8);
  }
}

TEST(MetaBatch, BatchingAmortizesMutationRoundTrips) {
  Counter& rt = counter("pfs.meta.mutation_round_trips");
  std::vector<Status> st;

  const std::uint64_t before_legacy = rt.value();
  World legacy(0, /*replicated=*/false);
  create_storm(legacy, 8, 16, st);
  const std::uint64_t legacy_trips = rt.value() - before_legacy;

  const std::uint64_t before_batched = rt.value();
  World batched(8, /*replicated=*/false);
  create_storm(batched, 8, 16, st);
  const std::uint64_t batched_trips = rt.value() - before_batched;

  // 128 concurrent creates at batch=8: the mutation round trips collapse
  // by at least the half-batch factor (partial linger flushes allowed).
  EXPECT_GT(legacy_trips, 0u);
  EXPECT_GT(batched_trips, 0u);
  EXPECT_GE(legacy_trips, 4 * batched_trips)
      << "legacy=" << legacy_trips << " batched=" << batched_trips;
}

TEST(MetaBatch, LingerFlushesPartialBatch) {
  // Batch size far above the offered load: only the linger timer can flush.
  World w(64, /*replicated=*/false);
  const std::uint64_t linger_before = counter("pfs.batch.flush_linger").value();
  std::vector<Status> st;
  create_storm(w, 1, 2, st);
  for (const Status& s : st) EXPECT_TRUE(s.ok()) << s;
  EXPECT_GT(counter("pfs.batch.flush_linger").value(), linger_before);
}

TEST(MetaBatch, PerEntryStatusInOneBatch) {
  // Two excl creates of the same path coalesced into one batch: the batch
  // as a whole succeeds, the first entry wins, the second gets EEXIST.
  World w(8, /*replicated=*/false);
  ASSERT_TRUE(w.fs.ns().mkdir_all("/d").ok());
  Status first, second;
  w.engine.spawn([](SimPfs& fs, Status& a, Status& b) -> sim::Task<void> {
    const IoCtx ctx{0, 0};
    sim::WaitGroup wg(fs.engine());
    auto create = [](SimPfs& f, IoCtx c, Status& out, sim::WaitGroup& group) -> sim::Task<void> {
      auto fd = co_await f.open(c, "/d/same", OpenFlags::wr_create_excl());
      if (fd.ok()) {
        out = co_await f.close(c, *fd);
      } else {
        out = fd.status();
      }
      group.done();
    };
    wg.add(2);
    fs.engine().spawn(create(fs, ctx, a, wg));
    fs.engine().spawn(create(fs, ctx, b, wg));
    co_await wg.wait();
  }(w.fs, first, second));
  w.engine.run();
  const bool exactly_one_won =
      (first.ok() && second.code() == Errc::exists) ||
      (second.ok() && first.code() == Errc::exists);
  EXPECT_TRUE(exactly_one_won) << "first=" << first << " second=" << second;
  EXPECT_TRUE(w.fs.ns().lookup("/d/same").ok());
}

TEST(MetaBatch, BatchedMkdirAndUnlinkMatchLegacy) {
  for (const bool replicated : {false, true}) {
    SCOPED_TRACE(replicated ? "raft" : "unreplicated");
    for (const std::size_t batch : {std::size_t{0}, std::size_t{8}}) {
      SCOPED_TRACE(batch == 0 ? "legacy" : "batched");
      World w(batch, replicated);
      test::run_task(w.engine, [](SimPfs& fs) -> sim::Task<void> {
        const IoCtx ctx{0, 0};
        EXPECT_TRUE((co_await fs.mkdir(ctx, "/home")).ok());
        EXPECT_TRUE((co_await fs.mkdir(ctx, "/home/sub")).ok());
        auto fd = co_await fs.open(ctx, "/home/sub/f", OpenFlags::wr_create());
        EXPECT_TRUE(fd.ok()) << fd.status();
        if (!fd.ok()) co_return;
        EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
        EXPECT_TRUE((co_await fs.unlink(ctx, "/home/sub/f")).ok());
        EXPECT_EQ((co_await fs.unlink(ctx, "/home/sub/f")).code(), Errc::not_found);
        EXPECT_EQ((co_await fs.mkdir(ctx, "/home")).code(), Errc::exists);
      }(w.fs));
      EXPECT_TRUE(w.fs.ns().lookup("/home/sub").ok());
      EXPECT_FALSE(w.fs.ns().lookup("/home/sub/f").ok());
    }
  }
}

}  // namespace
}  // namespace tio::pfs
