file(REMOVE_RECURSE
  "CMakeFiles/ablation_index_compression.dir/ablation_index_compression.cc.o"
  "CMakeFiles/ablation_index_compression.dir/ablation_index_compression.cc.o.d"
  "ablation_index_compression"
  "ablation_index_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
