// Per-node page cache model: block-granular LRU over (object, block) keys.
//
// Only residency is tracked, never content — content always comes from the
// file system's extent maps, so a cache hit changes timing, not data.
//
// The LRU chain is intrusive: entries live in a pooled slab and link to
// each other by 32-bit index, so fills and touches never allocate once the
// cache has reached working-set size (a std::list would pay a node
// allocation per filled block — one per simulated 256 KiB of I/O).
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"

namespace tio::net {

struct ByteRange {
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  friend bool operator==(const ByteRange&, const ByteRange&) = default;
};

class PageCache {
 public:
  PageCache(std::uint64_t capacity_bytes, std::uint64_t block_bytes);

  // Marks the blocks covering [offset, offset+len) of `object` resident
  // (called on write and on read-miss fill).
  void fill(std::uint64_t object, std::uint64_t offset, std::uint64_t len);

  // Returns the number of bytes of [offset, offset+len) served by cache and
  // refreshes LRU for the hit blocks. When `misses` is non-null, the
  // coalesced uncached sub-ranges are appended to it.
  std::uint64_t lookup(std::uint64_t object, std::uint64_t offset, std::uint64_t len,
                       std::vector<ByteRange>* misses = nullptr);

  // Drops every block of `object` (e.g. on unlink).
  void invalidate_object(std::uint64_t object);
  void clear();

  std::uint64_t resident_bytes() const { return static_cast<std::uint64_t>(map_.size()) * block_; }
  std::uint64_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t hit_bytes = 0;
    std::uint64_t miss_bytes = 0;
    std::uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Key {
    std::uint64_t object;
    std::uint64_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;
  struct Entry {
    Key key;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void touch(std::uint64_t object, std::uint64_t block);
  void unlink(std::uint32_t i);
  void push_front(std::uint32_t i);
  void release(std::uint32_t i);  // unlink + return the slot to the free list

  std::uint64_t capacity_;
  std::uint64_t block_;
  std::uint64_t max_blocks_;
  std::vector<Entry> slab_;           // entry pool; holes tracked in free_
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;         // most recently used
  std::uint32_t tail_ = kNil;         // least recently used
  FlatMap<Key, std::uint32_t, KeyHash> map_;
  Stats stats_;
};

}  // namespace tio::net
