#include "common/status.h"

namespace tio {

std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "OK";
    case Errc::not_found: return "NOT_FOUND";
    case Errc::exists: return "EXISTS";
    case Errc::not_a_directory: return "NOT_A_DIRECTORY";
    case Errc::is_a_directory: return "IS_A_DIRECTORY";
    case Errc::not_empty: return "NOT_EMPTY";
    case Errc::invalid: return "INVALID";
    case Errc::bad_handle: return "BAD_HANDLE";
    case Errc::busy: return "BUSY";
    case Errc::io_error: return "IO_ERROR";
    case Errc::permission: return "PERMISSION";
    case Errc::unsupported: return "UNSUPPORTED";
    case Errc::no_space: return "NO_SPACE";
    case Errc::stale: return "STALE";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string s(errc_name(code_));
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace tio
