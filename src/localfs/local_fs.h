// Host-POSIX backend: maps the logical namespace onto a directory of the
// real file system. Lets the identical PLFS middleware run against real
// disks (quickstart example, durability tests). Operations complete without
// consuming virtual time.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "pfs/fs_client.h"

namespace tio::localfs {

class LocalFs : public pfs::FsClient {
 public:
  // `root` must be an existing host directory; all logical paths live under
  // it ("/a/b" -> root + "/a/b").
  LocalFs(sim::Engine& engine, std::string root);

  sim::Task<Result<pfs::FileId>> open(pfs::IoCtx ctx, std::string path,
                                      pfs::OpenFlags flags) override;
  sim::Task<Status> close(pfs::IoCtx ctx, pfs::FileId file) override;
  sim::Task<Result<std::uint64_t>> write(pfs::IoCtx ctx, pfs::FileId file, std::uint64_t offset,
                                         DataView data) override;
  sim::Task<Result<FragmentList>> read(pfs::IoCtx ctx, pfs::FileId file, std::uint64_t offset,
                                       std::uint64_t len) override;
  sim::Task<Status> mkdir(pfs::IoCtx ctx, std::string path) override;
  sim::Task<Status> rmdir(pfs::IoCtx ctx, std::string path) override;
  sim::Task<Status> unlink(pfs::IoCtx ctx, std::string path) override;
  sim::Task<Status> rename(pfs::IoCtx ctx, std::string from, std::string to) override;
  sim::Task<Result<pfs::StatInfo>> stat(pfs::IoCtx ctx, std::string path) override;
  sim::Task<Result<std::vector<pfs::DirEntry>>> readdir(pfs::IoCtx ctx,
                                                        std::string path) override;
  sim::Engine& engine() override { return engine_; }

  const std::string& root() const { return root_; }

 private:
  std::string host_path(std::string_view logical) const;

  sim::Engine& engine_;
  std::string root_;
  std::unordered_map<pfs::FileId, int> fds_;  // FileId -> host fd
  pfs::FileId next_file_id_ = 1;
};

}  // namespace tio::localfs
