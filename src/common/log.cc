#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace tio {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("TIO_LOG");
  if (env == nullptr) return LogLevel::warn;
  const std::string_view v(env);
  if (v == "debug") return LogLevel::debug;
  if (v == "info") return LogLevel::info;
  if (v == "warn") return LogLevel::warn;
  if (v == "error") return LogLevel::error;
  if (v == "off") return LogLevel::off;
  return LogLevel::warn;
}

LogLevel g_level = initial_level();

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_message(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"D", "I", "W", "E"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::fprintf(stderr, "[%s] %s\n", kNames[idx], msg.c_str());
}

}  // namespace tio
