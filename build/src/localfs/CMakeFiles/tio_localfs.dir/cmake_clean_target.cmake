file(REMOVE_RECURSE
  "libtio_localfs.a"
)
