#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/engine.h"

namespace tio::trace {
namespace {

// The tracer is process-global; each test starts from a clean, enabled
// slate and disables it on the way out so unrelated tests stay unaffected.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

sim::Task<void> nested_work(sim::Engine& engine) {
  static const SpanSite outer_site("test", "test.outer");
  static const SpanSite inner_site("test", "test.inner");
  Span outer(engine, outer_site, /*rank=*/0);
  co_await engine.sleep(Duration::us(10));
  {
    Span inner(engine, inner_site, /*rank=*/0);
    co_await engine.sleep(Duration::us(5));
  }
  co_await engine.sleep(Duration::us(1));
}

TEST_F(TraceTest, SpanNestingParentsAndDepths) {
  sim::Engine engine;
  engine.spawn(nested_work(engine));
  engine.run();

  const auto& spans = Tracer::instance().rank_spans(0);
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& outer = spans[0];
  const SpanRecord& inner = spans[1];
  EXPECT_EQ(Tracer::instance().interned(outer.name_id), "test.outer");
  EXPECT_EQ(Tracer::instance().interned(inner.name_id), "test.inner");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.parent, 1u);  // index 0 + 1
  // The child's interval is contained in the parent's.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_EQ(outer.end_ns - outer.start_ns, 16000);
  EXPECT_EQ(inner.end_ns - inner.start_ns, 5000);
}

TEST_F(TraceTest, VirtualTimestampsAreDeterministicAcrossReruns) {
  auto capture = [] {
    Tracer::instance().clear();
    sim::Engine engine(0xabc);
    engine.spawn(nested_work(engine));
    engine.run();
    std::vector<SpanRecord> out = Tracer::instance().rank_spans(0);
    return out;
  };
  const std::vector<SpanRecord> a = capture();
  const std::vector<SpanRecord> b = capture();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_ns, b[i].start_ns) << "span " << i;
    EXPECT_EQ(a[i].end_ns, b[i].end_ns) << "span " << i;
    EXPECT_EQ(a[i].name_id, b[i].name_id) << "span " << i;
    EXPECT_EQ(a[i].depth, b[i].depth) << "span " << i;
  }
}

TEST_F(TraceTest, SpansFromDifferentEnginesDoNotNest) {
  // Successive rigs in one bench reuse rank numbers; a span opened by a new
  // engine must not become a child of a stale open span from the previous
  // one (pid differs), and vice versa.
  Tracer& t = Tracer::instance();
  const std::uint32_t name = t.intern("x");
  const std::uint32_t r1 = t.begin_span(3, name, name, /*pid=*/1, 100);
  const std::uint32_t r2 = t.begin_span(3, name, name, /*pid=*/2, 200);
  ASSERT_NE(r1, kNoRecord);
  ASSERT_NE(r2, kNoRecord);
  const auto& spans = t.rank_spans(3);
  EXPECT_EQ(spans[r2].depth, 0u);
  EXPECT_EQ(spans[r2].parent, 0u);
  const std::uint32_t r3 = t.begin_span(3, name, name, /*pid=*/2, 300);
  EXPECT_EQ(spans[r3].depth, 1u);
  EXPECT_EQ(spans[r3].parent, r2 + 1);
}

TEST_F(TraceTest, SpanFeedsHistogram) {
  histogram("test.histspan").reset();
  sim::Engine engine;
  static const SpanSite site("test", "test.histspan");
  engine.spawn([](sim::Engine& e) -> sim::Task<void> {
    Span s(e, site, 0);
    co_await e.sleep(Duration::us(3));
  }(engine));
  engine.run();
  Histogram& h = histogram("test.histspan");
  ASSERT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 3000);
}

TEST_F(TraceTest, DisabledTracerRecordsNothingButHistogramsStillFill) {
  Tracer::instance().set_enabled(false);
  histogram("test.disabled").reset();
  sim::Engine engine;
  static const SpanSite site("test", "test.disabled");
  engine.spawn([](sim::Engine& e) -> sim::Task<void> {
    Span s(e, site, 0);
    co_await e.sleep(Duration::us(2));
  }(engine));
  engine.run();
  EXPECT_EQ(Tracer::instance().span_count(), 0u);
  EXPECT_EQ(histogram("test.disabled").count(), 1u);
}

TEST_F(TraceTest, RetroactiveRecordSpan) {
  histogram("test.retro").reset();
  sim::Engine engine;
  static const SpanSite site("test", "test.retro");
  engine.spawn([](sim::Engine& e) -> sim::Task<void> {
    const std::int64_t t0 = e.now().to_ns();
    co_await e.sleep(Duration::us(7));
    record_span(e, site, /*rank=*/2, t0);
  }(engine));
  engine.run();
  const auto& spans = Tracer::instance().rank_spans(2);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end_ns - spans[0].start_ns, 7000);
  EXPECT_EQ(histogram("test.retro").count(), 1u);
}

TEST_F(TraceTest, ChromeJsonGolden) {
  // Drive the tracer directly with fixed pids/timestamps so the exported
  // document is byte-stable, then pin it exactly: this is the wire format
  // chrome://tracing and Perfetto load, so accidental format drift must
  // fail loudly.
  Tracer& t = Tracer::instance();
  const std::uint32_t open_id = t.intern("plfs.open.index_read");
  const std::uint32_t cat_id = t.intern("plfs.open");
  const std::uint32_t rec0 = t.begin_span(/*rank=*/0, open_id, cat_id, /*pid=*/7, 1000);
  t.end_span(0, rec0, 2500);
  const std::uint32_t rec1 = t.begin_span(/*rank=*/1, open_id, cat_id, /*pid=*/7, 2000);
  t.end_span(1, rec1, 4250);
  // A span that never closes is omitted from the export.
  (void)t.begin_span(/*rank=*/0, open_id, cat_id, /*pid=*/7, 9000);

  const std::string golden =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":7,\"tid\":1,"
      "\"args\":{\"name\":\"rank 0\"}},\n"
      "{\"name\":\"plfs.open.index_read\",\"cat\":\"plfs.open\",\"ph\":\"X\","
      "\"ts\":1.000,\"dur\":1.500,\"pid\":7,\"tid\":1},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":7,\"tid\":2,"
      "\"args\":{\"name\":\"rank 1\"}},\n"
      "{\"name\":\"plfs.open.index_read\",\"cat\":\"plfs.open\",\"ph\":\"X\","
      "\"ts\":2.000,\"dur\":2.250,\"pid\":7,\"tid\":2}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(t.to_chrome_json(), golden);
}

TEST_F(TraceTest, ChromeJsonIsStructurallySane) {
  sim::Engine engine;
  engine.spawn(nested_work(engine));
  engine.run();
  const std::string json = Tracer::instance().to_chrome_json();
  // Cheap structural checks (ci.sh additionally runs python -m json.tool on
  // real bench traces): balanced braces/brackets, required top-level keys.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  std::int64_t brace = 0, bracket = 0;
  for (const char c : json) {
    brace += c == '{';
    brace -= c == '}';
    bracket += c == '[';
    bracket -= c == ']';
    ASSERT_GE(brace, 0);
    ASSERT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

}  // namespace
}  // namespace tio::trace
