#include "localfs/mem_fs.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace tio::localfs {
namespace {

using pfs::IoCtx;
using pfs::OpenFlags;

class MemFsTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  MemFs fs_{engine_};
  IoCtx ctx_{0, 0};
};

TEST_F(MemFsTest, WriteReadRoundTripCostsNoVirtualTime) {
  test::run_task(engine_, [](MemFs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE(fd.ok());
    const auto data = DataView::pattern(9, 0, 4096);
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, data)).ok());
    auto fl = co_await fs.read(ctx, *fd, 0, 4096);
    EXPECT_TRUE(fl.ok());
    EXPECT_TRUE(fl->content_equals(data));
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
  }(fs_, ctx_));
  EXPECT_EQ(engine_.now().to_ns(), 0);
}

TEST_F(MemFsTest, PosixErrorSemantics) {
  test::run_task(engine_, [](MemFs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_EQ((co_await fs.open(ctx, "/missing", OpenFlags::ro())).status().code(),
              Errc::not_found);
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/d")).ok());
    EXPECT_EQ((co_await fs.mkdir(ctx, "/d")).code(), Errc::exists);
    EXPECT_EQ((co_await fs.open(ctx, "/d", OpenFlags::ro())).status().code(),
              Errc::is_a_directory);
    EXPECT_EQ((co_await fs.open(ctx, "/nodir/f", OpenFlags::wr_create())).status().code(),
              Errc::not_found);
    EXPECT_EQ((co_await fs.unlink(ctx, "/d")).code(), Errc::is_a_directory);
    EXPECT_EQ((co_await fs.close(ctx, 1234)).code(), Errc::bad_handle);
  }(fs_, ctx_));
}

TEST_F(MemFsTest, TruncAndStat) {
  test::run_task(engine_, [](MemFs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::zeros(500))).ok());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    auto st = co_await fs.stat(ctx, "/f");
    EXPECT_EQ(st->size, 500u);
    auto fd2 = co_await fs.open(ctx, "/f", OpenFlags::wr_trunc());
    EXPECT_TRUE((co_await fs.close(ctx, *fd2)).ok());
    st = co_await fs.stat(ctx, "/f");
    EXPECT_EQ(st->size, 0u);
  }(fs_, ctx_));
}

TEST_F(MemFsTest, ReaddirAndRename) {
  test::run_task(engine_, [](MemFs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/d")).ok());
    auto fd = co_await fs.open(ctx, "/d/a", OpenFlags::wr_create());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    EXPECT_TRUE((co_await fs.rename(ctx, "/d/a", "/d/b")).ok());
    auto entries = co_await fs.readdir(ctx, "/d");
    EXPECT_EQ(entries->size(), 1u);
    EXPECT_EQ((*entries)[0].name, "b");
  }(fs_, ctx_));
}

TEST_F(MemFsTest, ShortReadAtEof) {
  test::run_task(engine_, [](MemFs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::pattern(1, 0, 64))).ok());
    auto fl = co_await fs.read(ctx, *fd, 32, 1000);
    EXPECT_EQ(fl->size(), 32u);
  }(fs_, ctx_));
}

}  // namespace
}  // namespace tio::localfs
