// Locale-independent JSON fragment formatting.
//
// printf-family "%f" obeys LC_NUMERIC: under e.g. de_DE the decimal
// separator becomes a comma, which silently corrupts emitted JSON. Every
// JSON emitter in the tree formats floating-point values through
// json_double (std::to_chars, which is locale-independent by
// specification) instead of fprintf.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace tio {

// `v` as a fixed-point JSON number with `precision` digits after the
// decimal point. Non-finite values (which JSON cannot represent) become
// "null".
inline std::string json_double(double v, int precision) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto r =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, precision);
  if (r.ec != std::errc{}) return "null";  // absurd magnitude; not worth throwing
  return std::string(buf, r.ptr);
}

// `s` as a double-quoted JSON string with the mandatory escapes applied.
inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace tio
