// TinyHDF: a miniature HDF5-like formatting layer.
//
// Reproduces the pattern HDF5 imposes on applications such as the ARAMCO
// seismic kernel (paper Section IV-D2): a superblock, a chunked dataset,
// and — crucially — a scattered region of small per-chunk metadata records
// (the B-tree) interleaved with large chunk writes. Writers touch both the
// chunk data and the chunk's metadata record; readers walk the metadata to
// find their chunks.
#pragma once

#include <cstdint>
#include <vector>

#include "iolib/io_fn.h"
#include "mpisim/comm.h"

namespace tio::iolib {

class TinyHdf {
 public:
  static constexpr std::uint64_t kSuperblockBytes = 2048;
  static constexpr std::uint64_t kChunkRecordBytes = 64;
  static constexpr std::uint32_t kMagic = 0x31464854;  // "THF1"

  struct Layout {
    std::uint64_t chunk_bytes = 0;
    std::uint64_t num_chunks = 0;
    std::uint64_t btree_offset = 0;  // chunk records live here
    std::uint64_t data_offset = 0;   // chunk data starts here
    std::uint64_t file_bytes = 0;
    friend bool operator==(const Layout&, const Layout&) = default;
  };
  static Layout layout_for(std::uint64_t dataset_bytes, std::uint64_t chunk_bytes);

  // Chunk ownership: chunk c belongs to rank c % nprocs.
  // Collective write of the whole dataset: rank 0 writes the superblock;
  // each rank writes its chunks' data and metadata records.
  static sim::Task<Status> write_all(mpi::Comm& comm, const WriteFn& write,
                                     std::uint64_t dataset_bytes, std::uint64_t chunk_bytes,
                                     std::uint64_t seed);
  // Collective read of the whole dataset (strong scaling: any process count
  // may read a file written by another count). Rank 0 parses the
  // superblock; each rank reads its chunks' records + data.
  static sim::Task<Status> read_all(mpi::Comm& comm, const ReadFn& read, std::uint64_t seed,
                                    bool verify, Layout* layout_out = nullptr);

  static std::vector<std::byte> serialize_superblock(const Layout& layout);
  static Result<Layout> parse_superblock(const FragmentList& data);
};

}  // namespace tio::iolib
