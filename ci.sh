#!/usr/bin/env bash
# CI entry point: build all three presets, run the full suite on the
# optimized build, run the index differential/cache suites under ASan+UBSan,
# and run the sharded-engine/determinism suites under TSan.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)

echo "==> configure + build (default preset)"
cmake --preset default
cmake --build --preset default -j "$jobs"

echo "==> full test suite (default preset)"
ctest --preset default -j "$jobs"

echo "==> configure + build (asan preset)"
cmake --preset asan
cmake --build --preset asan -j "$jobs"

echo "==> index differential + cache + wire-codec tests under ASan/UBSan"
ctest --preset asan -j "$jobs" -R \
  'IndexDiff|IndexCache|BTreeIndex|IndexProperty|Varint|WireV2|WireCompat|PatternIndex'

# DeepAwaitChains is excluded: gcc does not tail-call the coroutine
# symmetric transfer at -O0, so the 100k-deep chain overflows the stack in
# any sanitizer build (seed behaves the same); the guarantee it checks is an
# optimized-build property and stays covered by the default-preset run.
echo "==> sim/net/mpisim suites under ASan/UBSan (engine pools, intrusive waiters, LRU)"
ctest --preset asan -j "$jobs" -R \
  '^(Engine|Determinism|EventPool|FramePool|MoveFn|Mutex|Semaphore|Barrier|Gate|WaitGroup|Queue|FairShare|FcfsServer|Runtime|PageCache|Cluster|ClusterConfigValidate|ClusterConfigLookahead|Comm|Topology|FlowNet|MaxMin)\.' \
  -E 'DeepAwaitChains'

echo "==> chaos + raft suites under ASan/UBSan (fault injection, retry, failover)"
ctest --preset asan -j "$jobs" -R '^(Chaos|FaultPlan|FaultyFsTest|RetryPolicy|RetryBudget|Timeout|Status|RaftTest)\.'

echo "==> metadata batch + lease-cache suites under ASan/UBSan"
ctest --preset asan -j "$jobs" -R '^(MetaBatch|MetaCache|MetaCacheSimPfs)\.'

echo "==> collective-buffering suites under ASan/UBSan (pipeline, sieving, node plan)"
ctest --preset asan -j "$jobs" -R '^(CbDifferential|CbSieve|CbNodePlan|CbWrite|CbRead|CbAggregators)\.'

echo "==> trace + stats + jsonfmt suites under ASan/UBSan"
ctest --preset asan -j "$jobs" -R '^(TraceTest|Histograms|Series|Counters|Grouping|JsonDouble|JsonQuote)\.'

echo "==> configure + build (tsan preset)"
cmake --preset tsan
cmake --build --preset tsan -j "$jobs"

# The sharded engine's safety argument (shard-local heaps + barrier
# happens-before + quiescent merges) must hold under ThreadSanitizer, not
# just under the test matrix. TIO_MATRIX_RANKS shrinks the 4096-rank
# determinism matrix so the instrumented run stays affordable, and the
# oversubscribe override lets shards=4/8 paths run on small CI hosts.
echo "==> sim + mpisim suites and the cross-shard determinism matrix under TSan"
TIO_MATRIX_RANKS=512 TIO_SHARDS_OVERSUBSCRIBE=1 ctest --preset tsan -j "$jobs" -R \
  '^(Engine|EventPool|FramePool|Determinism|ShardPool|ShardedEngine|ShardedTraceTest|ClusterConfigLookahead|Queue|FairShare|FcfsServer|Runtime|Comm|RaftTest|Topology|FlowNet|MaxMin)\.' \
  -E 'DeepAwaitChains'

# The batcher and lease cache run inside every shard's engine when fig7 is
# sharded; the suites must stay clean under TSan alongside the engine.
echo "==> metadata batch + lease-cache suites under TSan"
TIO_SHARDS_OVERSUBSCRIBE=1 ctest --preset tsan -j "$jobs" -R '^(MetaBatch|MetaCache|MetaCacheSimPfs)\.'

# The collective layer's sharded-counter writes (message census, sieve
# stats) run on every shard thread; the differential suite under TSan pins
# that those are race-free alongside the engine's own sharding.
echo "==> collective-buffering differential suite under TSan"
TIO_SHARDS_OVERSUBSCRIBE=1 ctest --preset tsan -j "$jobs" -R '^(CbDifferential|CbSieve)\.'

echo "==> fig7 under the stress fault plan must exit clean"
./build/bench/fig7_metadata_nn --procs 64 --max-files 2048 --fault_plan=stress >/dev/null

echo "==> fig7 with the raft-replicated MDS must survive the stress plan"
./build/bench/fig7_metadata_nn --procs 64 --max-files 2048 --fault_plan=stress \
  --mds_replication=raft >/dev/null

echo "==> pattern index backend exercised through the build microbench"
./build/bench/micro_index --index_backend=pattern \
  --benchmark_filter='BM_GlobalBuildMergePattern/10000' >/dev/null

echo "==> v1 -> v2 wire-format compat smoke"
# Both wire settings must drive the full fig4 pipeline (write, flatten,
# all three read strategies) to a clean exit; WireCompat unit tests cover
# decoding v1 containers through the v2-default read path byte-for-byte.
./build/bench/fig4_read_scaling --max-streams 32 --per-proc-mib 2 --index_wire=v1 >/dev/null
./build/bench/fig4_read_scaling --max-streams 32 --per-proc-mib 2 --index_wire=v2 >/dev/null

echo "==> every bench --json / --trace output must be valid JSON"
# A comma-decimal locale would corrupt printf-formatted floats; emitters go
# through json_double, so output must parse even under e.g. de_DE. The
# container may only ship C/POSIX — fall back gracefully when absent.
json_locale="C"
for cand in de_DE.UTF-8 de_DE.utf8 fr_FR.UTF-8 fr_FR.utf8; do
  if locale -a 2>/dev/null | grep -qix "$cand"; then json_locale="$cand"; break; fi
done
echo "    (locale guard: LC_ALL=$json_locale)"
out=build/ci_artifacts
mkdir -p "$out"
LC_ALL="$json_locale" ./build/bench/fig4_read_scaling --max-streams 32 --per-proc-mib 2 \
  --json="$out/fig4.json" --trace="$out/fig4_trace.json" >"$out/fig4_run1.txt" 2>/dev/null
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 32 --max-files 512 \
  --json="$out/fig7.json" --trace="$out/fig7_trace.json" >/dev/null 2>&1
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 32 --max-files 512 \
  --fault_plan=failover --mds_replication=raft \
  --json="$out/fig7_raft.json" --trace="$out/fig7_raft_trace.json" >/dev/null 2>&1
LC_ALL="$json_locale" ./build/bench/fig8_large_scale --max-read-procs 512 \
  --max-meta-procs 256 --per-proc-mib 1 \
  --json="$out/fig8.json" --trace="$out/fig8_trace.json" >/dev/null 2>&1
LC_ALL="$json_locale" ./build/bench/micro_sim --trace="$out/micro_sim_trace.json" \
  --benchmark_filter='BM_CoroutineHops/1000' >/dev/null 2>&1
LC_ALL="$json_locale" ./build/bench/micro_index --trace="$out/micro_index_trace.json" \
  --benchmark_filter='BM_IndexBuildStrided/64' >/dev/null 2>&1
LC_ALL="$json_locale" ./build/bench/fig5_kernels --max-procs 64 --scale-mib 2 \
  --cb-node-agg --cb-sieve-threshold=2 --noncontig \
  --json="$out/fig5_cb.json" --trace="$out/fig5_cb_trace.json" >/dev/null 2>&1
LC_ALL="$json_locale" ./build/bench/ablation_cb_aggregation --procs 32 --total-mib 8 \
  --json="$out/ablation_cb.json" >/dev/null 2>&1
LC_ALL="$json_locale" ./build/bench/ablation_topology --procs 64 --per-proc-mib 1 \
  --json="$out/ablation_topo.json" >/dev/null 2>&1
for f in "$out"/fig4.json "$out"/fig7.json "$out"/fig7_raft.json "$out"/fig8.json \
         "$out"/fig5_cb.json "$out"/ablation_cb.json "$out"/ablation_topo.json \
         "$out"/fig4_trace.json "$out"/fig7_trace.json "$out"/fig7_raft_trace.json \
         "$out"/fig8_trace.json "$out"/fig5_cb_trace.json \
         "$out"/micro_sim_trace.json "$out"/micro_index_trace.json; do
  python3 -m json.tool "$f" >/dev/null || { echo "invalid JSON: $f"; exit 1; }
done

echo "==> fig4 trace: per-phase open breakdown must sum to the open window (1%)"
python3 tools/check_trace.py "$out/fig4_trace.json"

echo "==> fig5 trace: cb phase spans must tile every cb.write/cb.read window"
python3 tools/check_trace.py "$out/fig5_cb_trace.json"

echo "==> fig5 stdout with the cb pipeline disabled must match the enabled-flags binary"
# The three-phase pipeline must be invisible when off: default flags and
# explicit --no-cb-node-agg --cb-sieve-threshold=0 take the legacy code
# paths and must agree byte-for-byte (and across reruns).
LC_ALL="$json_locale" ./build/bench/fig5_kernels --max-procs 64 --scale-mib 2 \
  >"$out/fig5_run1.txt" 2>/dev/null
LC_ALL="$json_locale" ./build/bench/fig5_kernels --max-procs 64 --scale-mib 2 \
  --no-cb-node-agg --cb-sieve-threshold=0 >"$out/fig5_run2.txt" 2>/dev/null
cmp "$out/fig5_run1.txt" "$out/fig5_run2.txt"

echo "==> fig4 stdout must be byte-identical across reruns"
LC_ALL="$json_locale" ./build/bench/fig4_read_scaling --max-streams 32 --per-proc-mib 2 \
  --trace="$out/fig4_trace2.json" >"$out/fig4_run2.txt" 2>/dev/null
cmp "$out/fig4_run1.txt" "$out/fig4_run2.txt"
cmp "$out/fig4_trace.json" "$out/fig4_trace2.json"

echo "==> explicit --topology=flat stdout must match the default byte-for-byte"
# The flat preset never constructs the topology layer: passing the default
# flags explicitly (flat, any rack geometry, any oversubscription) must
# take the legacy per-NIC path and agree with the flagless binary exactly,
# on every bench that threads the fabric flags.
LC_ALL="$json_locale" ./build/bench/fig4_read_scaling --max-streams 32 --per-proc-mib 2 \
  --topology=flat --racks=8 --oversubscription=4 >"$out/fig4_run_flat.txt" 2>/dev/null
cmp "$out/fig4_run1.txt" "$out/fig4_run_flat.txt"
LC_ALL="$json_locale" ./build/bench/fig5_kernels --max-procs 64 --scale-mib 2 \
  --topology=flat --racks=8 --oversubscription=4 >"$out/fig5_run_flat.txt" 2>/dev/null
cmp "$out/fig5_run1.txt" "$out/fig5_run_flat.txt"
LC_ALL="$json_locale" ./build/bench/fig8_large_scale --max-read-procs 256 \
  --max-meta-procs 128 --per-proc-mib 1 >"$out/fig8_run1.txt" 2>/dev/null
LC_ALL="$json_locale" ./build/bench/fig8_large_scale --max-read-procs 256 \
  --max-meta-procs 128 --per-proc-mib 1 \
  --topology=flat --racks=8 --oversubscription=4 >"$out/fig8_run_flat.txt" 2>/dev/null
cmp "$out/fig8_run1.txt" "$out/fig8_run_flat.txt"

echo "==> tor at 8:1 must show the incast collapse that rack groups recover"
# The headline scenario of BENCH_topology.json at smoke scale: thin racks
# (2 nodes) so the 8:1 uplink is below a single NIC, sqrt groups straddle
# racks, rack-aware groups keep gathers inside a ToR. The gate asserts the
# ordering, not exact timings: sqrt@8:1 slower than sqrt@1:1, and the rack
# grouping strictly cheaper in cross-rack bytes (>= 1.5x).
LC_ALL="$json_locale" ./build/bench/ablation_topology --procs 128 --racks 32 \
  --per-proc-mib 1 --json="$out/ablation_topo_pin.json" >/dev/null 2>&1
python3 - "$out/ablation_topo_pin.json" <<'PY'
import json, sys
rows = {(r["topology"], r["oversubscription"], r["grouping"]): r
        for r in json.load(open(sys.argv[1]))["rows"]}
base = rows[("tor", 1.0, "sqrt")]["read_open_s"]
slow = rows[("tor", 8.0, "sqrt")]["read_open_s"]
rack = rows[("tor", 8.0, "rack")]["read_open_s"]
xb_sqrt = rows[("tor", 8.0, "sqrt")]["cross_rack_bytes"]
xb_rack = rows[("tor", 8.0, "rack")]["cross_rack_bytes"]
print(f"    tor sqrt open: 1:1={base:.3f}s 8:1={slow:.3f}s; rack@8:1={rack:.3f}s; "
      f"x-rack bytes sqrt={xb_sqrt} rack={xb_rack}")
assert slow > base * 1.1, f"no incast collapse: {slow:.3f}s vs {base:.3f}s"
assert rack < slow, f"rack groups did not recover: {rack:.3f}s vs {slow:.3f}s"
assert xb_sqrt >= 1.5 * xb_rack, f"cross-rack reduction below 1.5x: {xb_sqrt}/{xb_rack}"
PY

echo "==> fig7 --mds_replication=none stdout must match the default byte-for-byte"
# The raft layer must be invisible when off: the default and the explicit
# none flag take the legacy unreplicated MDS path and must agree exactly.
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 32 --max-files 512 \
  >"$out/fig7_run_default.txt" 2>/dev/null
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 32 --max-files 512 \
  --mds_replication=none >"$out/fig7_run_none.txt" 2>/dev/null
cmp "$out/fig7_run_default.txt" "$out/fig7_run_none.txt"

echo "==> fig7 raft + failover plan stdout must be byte-identical across reruns"
# Leader crashes, elections, and redirects are all simulated events: a
# (seed, fault plan) pair is a pure function of its inputs.
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 32 --max-files 512 \
  --fault_plan=failover --mds_replication=raft >"$out/fig7_raft_run1.txt" 2>/dev/null
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 32 --max-files 512 \
  --fault_plan=failover --mds_replication=raft >"$out/fig7_raft_run2.txt" 2>/dev/null
cmp "$out/fig7_raft_run1.txt" "$out/fig7_raft_run2.txt"

echo "==> fig7 --mds_batch=0 stdout must match the default byte-for-byte"
# Batching and the lease cache must be invisible when off: explicit zeros
# take the legacy per-op mutation path and must agree with the default
# binary exactly.
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 32 --max-files 512 \
  --mds_batch=0 --meta_lease_ms=0 >"$out/fig7_run_b0.txt" 2>/dev/null
cmp "$out/fig7_run_default.txt" "$out/fig7_run_b0.txt"

echo "==> fig7 batch=64 must amortize >=10x MDS mutation round trips per create"
# The perf pin for the batcher: the same storm, batched at 64 with a 1 ms
# linger, needs at most a tenth of the unbatched mutation round trips
# (counters are totals over identical sweeps, so the ratio is per-create).
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 64 --min-files 2048 \
  --max-files 2048 --json="$out/fig7_b0_pin.json" >/dev/null 2>&1
LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn --procs 64 --min-files 2048 \
  --max-files 2048 --mds_batch=64 --mds_batch_linger_us=1000 --meta_lease_ms=50 \
  --json="$out/fig7_b64_pin.json" >/dev/null 2>&1
python3 - "$out/fig7_b0_pin.json" "$out/fig7_b64_pin.json" <<'PY'
import json, sys
unbatched = json.load(open(sys.argv[1]))["counters"]["pfs.meta.mutation_round_trips"]
batched = json.load(open(sys.argv[2]))["counters"]["pfs.meta.mutation_round_trips"]
ratio = unbatched / max(1, batched)
print(f"    mutation round trips: unbatched={unbatched} batched={batched} ({ratio:.1f}x)")
assert ratio >= 10.0, f"batch=64 amortization regressed: {ratio:.2f}x < 10x"
PY

echo "==> shrunk million-file fig7 create storm must complete in both MDS modes"
# The full 10^6-file storm is a bench-box run; TIO_FIG7_MAX_FILES caps the
# sweep so CI proves the same code path (single-row million-file request,
# batching + leases on) at smoke scale.
TIO_FIG7_MAX_FILES=4096 LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn \
  --procs 64 --min-files 1000000 --max-files 1000000 \
  --mds_batch=64 --mds_batch_linger_us=1000 --meta_lease_ms=50 >/dev/null 2>&1
TIO_FIG7_MAX_FILES=4096 LC_ALL="$json_locale" ./build/bench/fig7_metadata_nn \
  --procs 64 --min-files 1000000 --max-files 1000000 --mds_replication=raft \
  --mds_batch=64 --mds_batch_linger_us=1000 --meta_lease_ms=50 >/dev/null 2>&1

echo "==> fig4 --shards=4 stdout must match --shards=1 byte-for-byte"
# Sharding spreads rows across threads but every simulated result is a pure
# function of the row, so the tables cannot change. The serial trace stays
# on the legacy wire format (no otherData key, implied shards=1); the
# sharded trace must carry its shard count for tooling.
TIO_SHARDS_OVERSUBSCRIBE=1 LC_ALL="$json_locale" ./build/bench/fig4_read_scaling \
  --max-streams 32 --per-proc-mib 2 --shards=4 \
  --trace="$out/fig4_trace_s4.json" >"$out/fig4_run_s4.txt" 2>/dev/null
cmp "$out/fig4_run1.txt" "$out/fig4_run_s4.txt"
python3 tools/check_trace.py "$out/fig4_trace.json" --expect-shards=1
python3 tools/check_trace.py "$out/fig4_trace_s4.json" --expect-shards=4

echo "==> checked-in bench result files must parse and summarize"
python3 tools/bench_report.py

echo "==> ci.sh: all green"
