// Calibrated testbed presets and the Rig convenience bundle.
//
// Two presets mirror the paper's evaluation platforms:
//   * lanl_cluster — Sections IV/V: 64 nodes x 16 Opteron cores, 32 GB/node,
//     InfiniBand, 551 TB PanFS behind a 10GigE storage network whose
//     theoretical peak the paper quotes as 1.25 GB/s.
//   * cielo — Section VI: Cray XE6, Gemini interconnect, 10 PB PanFS;
//     we model the 4096-node slice that hosts up to 65,536 processes.
//
// Calibration constants live here on purpose: every number the simulator
// depends on is in one reviewable place.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "pfs/config.h"
#include "pfs/faulty_fs.h"
#include "pfs/sim_pfs.h"
#include "plfs/mount.h"
#include "plfs/plfs.h"

namespace tio::testbed {

net::ClusterConfig lanl_cluster();
pfs::PfsConfig lanl_pfs(std::size_t num_mds = 1);

net::ClusterConfig cielo();
pfs::PfsConfig cielo_pfs(std::size_t num_mds = 10);

// PLFS mount over `backends` volumes (/vol0/plfs ... /volB-1/plfs).
plfs::PlfsMount plfs_mount(std::size_t backends, std::size_t num_subdirs = 32);

// Everything a bench needs, wired together: engine, cluster, simulated PFS
// (with one volume per metadata server), and a PLFS mount across those
// volumes. Volume roots are pre-created ("mounted").
class Rig {
 public:
  struct Options {
    net::ClusterConfig cluster;
    pfs::PfsConfig pfs;
    std::size_t plfs_backends = 0;  // 0 = one backend per MDS
    std::size_t num_subdirs = 32;
    plfs::IndexBackend index_backend = plfs::IndexBackend::flat;
    plfs::WireFormat index_wire = plfs::WireFormat::v2;
    std::uint64_t seed = 0x7e57bed;
    // Deterministic fault injection between PLFS and the simulated PFS
    // (see pfs/faulty_fs.h). Disabled (all-zero plan) by default.
    pfs::FaultPlan fault_plan = {};
    // Retry/timeout policy handed to the PLFS mount.
    RetryPolicy retry = {};
  };

  explicit Rig(Options options);

  sim::Engine& engine() { return engine_; }
  net::Cluster& cluster() { return *cluster_; }
  pfs::SimPfs& pfs() { return *pfs_; }
  plfs::Plfs& plfs() { return *plfs_; }
  plfs::PlfsMount& mount() { return mount_; }
  // The FsClient PLFS actually talks to: the SimPfs itself, or the FaultyFs
  // wrapped around it when a fault plan is active.
  pfs::FsClient& fs() { return faulty_ ? static_cast<pfs::FsClient&>(*faulty_) : *pfs_; }
  // Path for direct (non-PLFS) access experiments, on volume 0.
  std::string direct_dir() const { return "/vol0/direct"; }

 private:
  sim::Engine engine_;
  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<pfs::SimPfs> pfs_;
  std::unique_ptr<pfs::FaultyFs> faulty_;
  plfs::PlfsMount mount_;
  std::unique_ptr<plfs::Plfs> plfs_;
};

}  // namespace tio::testbed
