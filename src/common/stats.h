// Sample statistics for benchmark reporting (mean, stddev, percentiles),
// plus a process-global named-counter registry for lightweight subsystem
// instrumentation (index builds, cache hits, ...).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tio {

class Series {
 public:
  void add(double v) { xs_.push_back(v); }
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double sum() const;
  double mean() const;
  double stddev() const;  // sample stddev (n-1); 0 for n < 2
  double min() const;
  double max() const;
  // Nearest-rank percentile, p in [0, 100].
  double percentile(double p) const;

 private:
  std::vector<double> xs_;
};

// A monotonically increasing event/byte counter. Counters are registered by
// name the first time they are requested and live for the process lifetime,
// so holding a `Counter&` across calls is always safe.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Returns the process-global counter with this name, creating it on first
// use. Dotted names ("plfs.index.entries_merged") group related counters.
Counter& counter(std::string_view name);

// All registered counters as (name, value), sorted by name. Counters whose
// value is zero are included; `prefix` filters to names starting with it.
std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot(
    std::string_view prefix = "");

// Zeroes every registered counter (the registry itself is never shrunk).
void reset_counters();

}  // namespace tio
