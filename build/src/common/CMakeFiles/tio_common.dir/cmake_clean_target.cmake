file(REMOVE_RECURSE
  "libtio_common.a"
)
