// Status vocabulary: errc_name coverage and the transient/permanent split
// the retry layer keys off.
#include "common/status.h"

#include <gtest/gtest.h>

#include <set>

namespace tio {
namespace {

constexpr Errc kAllCodes[] = {
    Errc::ok,        Errc::not_found, Errc::exists,  Errc::not_a_directory,
    Errc::is_a_directory, Errc::not_empty, Errc::invalid, Errc::bad_handle,
    Errc::busy,      Errc::io_error,  Errc::permission, Errc::unsupported,
    Errc::no_space,  Errc::stale,
};

TEST(Status, ErrcNameCoversEveryCode) {
  std::set<std::string_view> seen;
  for (const Errc e : kAllCodes) {
    const std::string_view name = errc_name(e);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "UNKNOWN") << static_cast<int>(e);
    // Names are distinct — a log line identifies the code unambiguously.
    EXPECT_TRUE(seen.insert(name).second) << name;
  }
  EXPECT_EQ(seen.size(), 14u);
}

TEST(Status, TransientTruthTable) {
  // Exactly EBUSY / EIO / ESTALE are worth retrying; everything else is a
  // property of the request, and retrying can only waste budget.
  for (const Errc e : kAllCodes) {
    const bool want = e == Errc::busy || e == Errc::io_error || e == Errc::stale;
    EXPECT_EQ(errc_is_transient(e), want) << errc_name(e);
    EXPECT_EQ(error(e, "x").is_transient(), want) << errc_name(e);
  }
  EXPECT_FALSE(Status::Ok().is_transient());
}

TEST(Status, ToStringFormatsCodeAndMessage) {
  EXPECT_EQ(Status::Ok().to_string(), "OK");
  EXPECT_EQ(error(Errc::not_found, "no such log").to_string(), "NOT_FOUND: no such log");
  EXPECT_EQ(error(Errc::stale, "").to_string(), "STALE");
}

TEST(Status, ResultPropagatesTransience) {
  const Result<int> r = error(Errc::busy, "mds saturated");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().is_transient());
  const Result<int> ok = 7;
  EXPECT_TRUE(ok.status().ok());
}

}  // namespace
}  // namespace tio
