# Empty dependencies file for fig5_kernels.
# This may be replaced when dependencies are built.
