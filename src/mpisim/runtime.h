// Simulated MPI runtime: rank placement and point-to-point mailboxes.
//
// Each rank is a coroutine; messages are matched by (context, destination,
// source, tag) exactly, like MPI point-to-point without wildcards. Payloads
// stay in-process (std::any, typically cheap handles); transfer time is
// charged from the byte count through the cluster fabric model.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "net/cluster.h"
#include "sim/sync.h"

namespace tio::mpi {

class Comm;

class Runtime {
 public:
  // Block placement: rank r runs on node r / cores_per_node (wrapping if the
  // job is larger than the machine, i.e. oversubscribed).
  Runtime(net::Cluster& cluster, int nprocs);

  net::Cluster& cluster() { return cluster_; }
  sim::Engine& engine() { return cluster_.engine(); }
  int nprocs() const { return nprocs_; }
  std::size_t node_of(int rank) const;
  // Rack hosting `rank` (cluster rack geometry over node_of).
  std::size_t rack_of(int rank) const;

  // Per-message software overhead on top of the fabric transfer.
  Duration send_overhead() const { return Duration::us(1); }

  struct MailboxKey {
    std::uint64_t context;
    int dst;
    int src;
    int tag;
    bool operator==(const MailboxKey&) const = default;
  };
  sim::Queue<std::any>& mailbox(const MailboxKey& key);
  // Destroys the mailbox if it is drained and unwaited. Mailboxes are
  // keyed by (context, dst, src, tag): collectives mint fresh tags per
  // operation, so at 65,536 ranks an un-collected map leaks gigabytes.
  void gc_mailbox(const MailboxKey& key);

 private:
  friend class Comm;  // caches the shared world group below

  struct KeyHash {
    std::size_t operator()(const MailboxKey& k) const {
      std::uint64_t h = hash_combine(k.context, static_cast<std::uint64_t>(k.dst));
      h = hash_combine(h, static_cast<std::uint64_t>(k.src));
      return static_cast<std::size_t>(hash_combine(h, static_cast<std::uint64_t>(k.tag)));
    }
  };

  net::Cluster& cluster_;
  int nprocs_;
  // A mailbox lives for exactly one message on the collective paths (fresh
  // tag per operation), so both sides of the lookup are churn-optimized:
  // the map is open-addressed (no node allocation per message) and drained
  // Queue objects recycle through idle_queues_ instead of being destroyed.
  // all_queues_ owns every Queue ever minted, whatever map state it dies in.
  FlatMap<MailboxKey, sim::Queue<std::any>*, KeyHash> mailboxes_;
  std::vector<std::unique_ptr<sim::Queue<std::any>>> all_queues_;
  std::vector<sim::Queue<std::any>*> idle_queues_;
  // Comm::world's group is identical for every rank; building it per rank
  // would be O(nprocs^2). Stored type-erased to avoid a header cycle with
  // comm.h (only Comm::world touches it).
  std::shared_ptr<const void> world_group_;
};

// Runs an SPMD job: spawns `nprocs` rank coroutines (each receiving its own
// world Comm) and drives the engine until every process finishes.
void run_spmd(net::Cluster& cluster, int nprocs,
              const std::function<sim::Task<void>(Comm)>& rank_main);

}  // namespace tio::mpi
