// Ablation: the collective-buffering pipeline's knobs.
//
// Sweeps cores_per_node x aggregators x sieve threshold, with intra-node
// aggregation off and on, over the two collective kernels (LANL 3's 1 KiB
// strided records and the noncontiguous field-access pattern). For every
// row it reports virtual write/read time plus the iolib.cb.* message
// census, so the claimed wins are visible directly:
//   * node aggregation: the inter-node exchange drops from
//     ranks x aggregators messages to nodes x aggregators (~cores_per_node
//     fold), and each data byte crosses the fabric once instead of hopping
//     up a gather tree;
//   * read-side sieving: on the noncontig pattern the aggregator's pfs op
//     count collapses as holes are bridged (LANL 3 tiles the file, leaving
//     no holes — sieving is correctly inert there).
#include <array>

#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

namespace {

struct Row {
  std::string kernel;
  int cores_per_node, aggregators;
  bool node_agg;
  double sieve;
  double write_s, read_s;
  std::uint64_t fabric_msgs, local_msgs, bytes_shipped, pfs_ops, sieve_joins;
};

}  // namespace

int main(int argc, char** argv) {
  std::setlocale(LC_ALL, "");  // stdout tables honor the user's locale; JSON must not
  FlagSet flags("ablation_cb_aggregation: collective-buffering pipeline knobs");
  auto* procs_flag = flags.add_i64("procs", 128, "processes per run");
  auto* total_mib = flags.add_i64("total-mib", 64, "total data per kernel, MiB");
  auto* buffer_mib = flags.add_i64("cb-buffer-mib", 4, "collective buffer size, MiB");
  auto* shards_flag = bench::add_shards_flag(flags);
  auto* json_path = flags.add_string("json", "", "also write results to this file as JSON");
  auto* trace_path = bench::add_trace_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  bench::start_trace(*trace_path);
  const std::size_t shards = bench::shards_or_die(*shards_flag);
  const int procs = static_cast<int>(*procs_flag);
  const std::uint64_t total = static_cast<std::uint64_t>(*total_mib) << 20;

  const std::array<int, 2> cpn_sweep = {4, 16};
  const std::array<int, 2> agg_sweep = {4, 16};
  const std::array<double, 2> sieve_sweep = {0.0, 4.0};

  std::vector<Row> rows;
  for (const char* kernel : {"lanl3", "noncontig"}) {
    for (const int cpn : cpn_sweep) {
      for (const int aggs : agg_sweep) {
        for (const bool node_agg : {false, true}) {
          for (const double sieve : sieve_sweep) {
            rows.push_back(Row{kernel, cpn, aggs, node_agg, sieve, 0, 0, 0, 0, 0, 0, 0});
          }
        }
      }
    }
  }

  sim::ShardPool pool(shards);
  for (auto& row : rows) {
    pool.submit([&row, procs, total, buffer_mib] {
      iolib::CbConfig cb;
      cb.aggregators = row.aggregators;
      cb.buffer_bytes = static_cast<std::uint64_t>(*buffer_mib) << 20;
      cb.node_aggregation = row.node_agg;
      cb.sieve_threshold = row.sieve;
      JobSpec spec = row.kernel == std::string("lanl3")
                         ? lanl3(procs, total, {}, cb)
                         : noncontig(procs, 4 * total, 1024, 4096, {}, cb);
      spec.target.access = Access::direct_n1;
      spec.drop_caches_before_read = true;

      testbed::Rig::Options opts = bench::lanl_rig();
      opts.cluster.cores_per_node = static_cast<std::size_t>(row.cores_per_node);
      testbed::Rig rig(opts);

      const auto census = [] {
        return std::array<std::uint64_t, 5>{
            counter("iolib.cb.fabric_msgs").local_value(),
            counter("iolib.cb.local_msgs").local_value(),
            counter("iolib.cb.bytes_shipped").local_value(),
            counter("iolib.cb.pfs_ops").local_value(),
            counter("iolib.cb.sieve_joins").local_value()};
      };
      const auto before = census();
      const JobResult result = run_job(rig, procs, spec);
      const auto after = census();
      row.write_s = result.write.total_s();
      row.read_s = result.read.total_s();
      row.fabric_msgs = after[0] - before[0];
      row.local_msgs = after[1] - before[1];
      row.bytes_shipped = after[2] - before[2];
      row.pfs_ops = after[3] - before[3];
      row.sieve_joins = after[4] - before[4];
    });
  }
  pool.run_all();

  bench::print_header("Ablation — collective buffering: node aggregation and sieving",
                      "fabric messages drop ~cores_per_node-fold with node aggregation; "
                      "sieving collapses noncontig pfs ops");
  Table t({"kernel", "c/node", "aggs", "node-agg", "sieve", "write s", "read s", "fabric msgs",
           "shipped MB", "pfs ops", "joins"});
  for (const auto& r : rows) {
    t.add_row({r.kernel, std::to_string(r.cores_per_node), std::to_string(r.aggregators),
               r.node_agg ? "on" : "off", Table::num(r.sieve, 1), Table::num(r.write_s, 3),
               Table::num(r.read_s, 3), std::to_string(r.fabric_msgs),
               Table::num(static_cast<double>(r.bytes_shipped) / 1e6, 1),
               std::to_string(r.pfs_ops), std::to_string(r.sieve_joins)});
  }
  t.print(std::cout);

  if (!json_path->empty()) {
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open --json file: %s\n", json_path->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_cb_aggregation\",\n");
    std::fprintf(f,
                 "  \"config\": {\"procs\": %d, \"total_mib\": %lld, \"cb_buffer_mib\": %lld, "
                 "\"shards\": %zu},\n",
                 procs, static_cast<long long>(*total_mib),
                 static_cast<long long>(*buffer_mib), shards);
    std::fprintf(f, "  \"rows\": [");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "%s\n    {\"kernel\": \"%s\", \"cores_per_node\": %d, \"aggregators\": %d, "
                   "\"node_agg\": %s, \"sieve_threshold\": %s, \"write_s\": %s, \"read_s\": %s, "
                   "\"fabric_msgs\": %llu, \"local_msgs\": %llu, \"bytes_shipped\": %llu, "
                   "\"pfs_ops\": %llu, \"sieve_joins\": %llu}",
                   i ? "," : "", r.kernel.c_str(), r.cores_per_node, r.aggregators,
                   r.node_agg ? "true" : "false", json_double(r.sieve, 4).c_str(),
                   json_double(r.write_s, 6).c_str(), json_double(r.read_s, 6).c_str(),
                   static_cast<unsigned long long>(r.fabric_msgs),
                   static_cast<unsigned long long>(r.local_msgs),
                   static_cast<unsigned long long>(r.bytes_shipped),
                   static_cast<unsigned long long>(r.pfs_ops),
                   static_cast<unsigned long long>(r.sieve_joins));
    }
    std::fprintf(f, "\n  ],\n");
    bench::json_counters(f);
    bench::json_histograms(f);
    std::fprintf(f, "  \"schema\": 2\n}\n");
    std::fclose(f);
  }

  bench::finish_trace(*trace_path);
  bench::print_cb_counters();
  bench::print_histograms();
  bench::print_sim_counters();
  return 0;
}
