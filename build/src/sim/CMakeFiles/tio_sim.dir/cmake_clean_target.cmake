file(REMOVE_RECURSE
  "libtio_sim.a"
)
