#include "net/page_cache.h"

#include <gtest/gtest.h>

namespace tio::net {
namespace {

TEST(PageCache, MissThenHit) {
  PageCache c(1024, 64);
  EXPECT_EQ(c.lookup(1, 0, 64), 0u);
  c.fill(1, 0, 64);
  EXPECT_EQ(c.lookup(1, 0, 64), 64u);
}

TEST(PageCache, PartialBlockAccounting) {
  PageCache c(1024, 64);
  c.fill(1, 0, 64);  // block 0 resident
  // Request [32, 96): 32 bytes hit (block 0), 32 bytes miss (block 1).
  std::vector<ByteRange> misses;
  EXPECT_EQ(c.lookup(1, 32, 64, &misses), 32u);
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0], (ByteRange{64, 32}));
}

TEST(PageCache, MissRangesCoalesce) {
  PageCache c(4096, 64);
  c.fill(1, 128, 64);  // only block 2 resident
  std::vector<ByteRange> misses;
  // [0, 320) = blocks 0..4; blocks 0-1 miss, 2 hits, 3-4 miss.
  EXPECT_EQ(c.lookup(1, 0, 320, &misses), 64u);
  ASSERT_EQ(misses.size(), 2u);
  EXPECT_EQ(misses[0], (ByteRange{0, 128}));
  EXPECT_EQ(misses[1], (ByteRange{192, 128}));
}

TEST(PageCache, ObjectsAreIndependent) {
  PageCache c(1024, 64);
  c.fill(1, 0, 64);
  EXPECT_EQ(c.lookup(2, 0, 64), 0u);
}

TEST(PageCache, LruEviction) {
  PageCache c(128, 64);  // 2 blocks
  c.fill(1, 0, 64);      // block A
  c.fill(1, 64, 64);     // block B
  EXPECT_EQ(c.lookup(1, 0, 64), 64u);   // touch A: LRU order B, A
  c.fill(1, 128, 64);                   // block C evicts B
  EXPECT_EQ(c.lookup(1, 64, 64), 0u);   // B gone
  EXPECT_EQ(c.lookup(1, 0, 64), 64u);   // A still resident
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(PageCache, ZeroCapacityNeverCaches) {
  PageCache c(0, 64);
  c.fill(1, 0, 1024);
  EXPECT_EQ(c.lookup(1, 0, 1024), 0u);
  EXPECT_EQ(c.resident_bytes(), 0u);
}

TEST(PageCache, InvalidateObjectDropsOnlyThatObject) {
  PageCache c(4096, 64);
  c.fill(1, 0, 128);
  c.fill(2, 0, 128);
  c.invalidate_object(1);
  EXPECT_EQ(c.lookup(1, 0, 128), 0u);
  EXPECT_EQ(c.lookup(2, 0, 128), 128u);
}

TEST(PageCache, ClearDropsEverything) {
  PageCache c(4096, 64);
  c.fill(1, 0, 1024);
  c.clear();
  EXPECT_EQ(c.resident_bytes(), 0u);
  EXPECT_EQ(c.lookup(1, 0, 1024), 0u);
}

TEST(PageCache, ZeroLengthOpsAreNoops) {
  PageCache c(1024, 64);
  c.fill(1, 100, 0);
  std::vector<ByteRange> misses;
  EXPECT_EQ(c.lookup(1, 100, 0, &misses), 0u);
  EXPECT_TRUE(misses.empty());
}

TEST(PageCache, StatsTrackHitAndMissBytes) {
  PageCache c(1024, 64);
  c.fill(1, 0, 64);
  c.lookup(1, 0, 128);
  EXPECT_EQ(c.stats().hit_bytes, 64u);
  EXPECT_EQ(c.stats().miss_bytes, 64u);
}

}  // namespace
}  // namespace tio::net
