// PLFS mount configuration: backends (glued namespaces) and policies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/units.h"

namespace tio::plfs {

enum class ReadStrategy {
  original,       // every reader reads every index log (N^2 opens)
  index_flatten,  // global index written at close, broadcast at open
  parallel_read,  // group-leader aggregation at open (the default)
};

// In-memory representation of the aggregated global index (see index.h).
enum class IndexBackend {
  btree,    // original eager std::map interval index (correctness oracle)
  flat,     // sorted flat vector built by run merge + offset sweep
  pattern,  // arithmetic pattern runs + literal spill (see pattern.h)
};

// On-wire encoding of index entry batches: per-writer index.<writer> logs,
// the flattened global index payload, and the collective exchange volumes.
enum class WireFormat : std::uint8_t {
  v1,  // fixed 40-byte records (the original format; always readable)
  v2,  // pattern-compressed, varint/delta-encoded segments (pattern.h)
};

struct PlfsMount {
  // Physical roots the containers are spread over, e.g. {"/vol0/plfs",
  // "/vol1/plfs", ...}. Each root typically lives in a different metadata
  // namespace; one entry means no federation.
  std::vector<std::string> backends;

  // Subdirectories per container holding the data/index logs.
  std::size_t num_subdirs = 32;
  // Container-level federation: hash the canonical container across
  // backends (otherwise everything is canonical on backends[0]).
  bool spread_containers = true;
  // Subdir-level federation: hash each subdir.k across backends.
  bool spread_subdirs = true;

  // The backing metadata service replicates each namespace (consistent
  // failover below the middleware, pfs::MdsReplication::raft). Placement
  // then never moves: the create path probes only the subdir's home
  // backend — a failing-over group surfaces transient EBUSY absorbed by
  // the retry policy — and readers skip the stale-marker scan entirely.
  bool mds_replicated = false;

  // The backing metadata service batches mutations client-side
  // (pfs::PfsConfig::mds_batch > 0). The middleware then issues the
  // independent legs of its create path (data/index log creates, the
  // close-time dropping create + openhost unlink) concurrently instead of
  // sequentially, so they land in the same batch RPC rather than each
  // paying a full round trip. Off by default: the sequential legacy order
  // is part of the byte-identity contract for unbatched runs.
  bool meta_batching = false;

  // Index-log write batching (entries buffered per writer before an append
  // hits the index log; PLFS's index buffering).
  std::size_t index_flush_every = 64;

  // Index Flatten is only performed when every writer buffered at most this
  // many entries (the paper's threshold).
  std::size_t flatten_threshold = 1u << 20;

  // Group size for the Parallel Index Read collective (0 = sqrt(nprocs)).
  std::size_t parallel_read_group = 0;

  // Form Parallel Index Read groups by rack (Comm::rack_of_rank) instead of
  // contiguous rank blocks of parallel_read_group. Keeps the member->leader
  // gathers inside one ToR and spreads the leaders across racks, which
  // tames the leader-allgather incast on oversubscribed uplinks. Off by
  // default: the default grouping (and wire pattern) is unchanged.
  bool rack_aware_groups = false;

  // CPU cost of handling one index entry (deserialize/merge/sort); charged
  // wherever entries are processed, so index aggregation is never free.
  Duration index_cpu_per_entry = Duration::ns(1000);

  ReadStrategy default_strategy = ReadStrategy::parallel_read;

  // Which IndexView implementation aggregation builds. Simulated costs are
  // identical across backends (same entries processed); the backend changes
  // host-side build/lookup complexity and memory only.
  IndexBackend index_backend = IndexBackend::flat;

  // Wire encoding for everything index-shaped that hits a backend file or a
  // collective. v2 is self-describing (magic + version per segment), so
  // readers auto-detect the format and v1 containers stay readable
  // regardless of this setting; the knob only controls what gets written.
  WireFormat index_wire = WireFormat::v2;

  // Byte budget for the per-Plfs shared index cache (parsed index logs and
  // built serial indices). 0 disables caching entirely.
  std::uint64_t index_cache_bytes = 256_MiB;

  // Transient-failure handling for every backend fs op the middleware
  // issues (see common/retry.h). max_attempts = 1 disables retries.
  RetryPolicy retry;
  // Total retries a Plfs instance may spend across all ops before failures
  // surface immediately (guards against unbounded retry storms).
  std::uint64_t retry_budget = 1u << 20;
};

}  // namespace tio::plfs
