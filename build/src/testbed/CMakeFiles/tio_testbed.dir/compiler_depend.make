# Empty compiler generated dependencies file for tio_testbed.
# This may be replaced when dependencies are built.
