#include "localfs/mem_fs.h"

#include <algorithm>

#include "common/strutil.h"

namespace tio::localfs {

using pfs::FileId;
using pfs::ObjectId;

sim::Task<Result<FileId>> MemFs::open(pfs::IoCtx ctx, std::string path, pfs::OpenFlags flags) {
  (void)ctx;
  if (!flags.read && !flags.write) {
    co_return error(Errc::invalid, "open needs read or write: " + path);
  }
  path = path_normalize(path);
  ObjectId oid = pfs::kNoObject;
  auto existing = ns_.lookup(path);
  if (existing.ok() && existing->is_dir) co_return error(Errc::is_a_directory, path);
  if (existing.ok()) {
    if (flags.create && flags.excl) co_return error(Errc::exists, path);
    oid = existing->oid;
    if (flags.trunc && flags.write) {
      Object& o = objects_[oid];
      o.data.truncate(0);
      o.size = 0;
      o.mtime = engine_.now();
    }
  } else {
    if (!flags.create) co_return error(Errc::not_found, path);
    if (!ns_.exists(std::string(path_dirname(path)))) {
      co_return error(Errc::not_found, "parent: " + std::string(path_dirname(path)));
    }
    auto created = ns_.create_file(path, flags.excl);
    if (!created.ok()) co_return created.status();
    oid = created->oid;
    objects_[oid].mtime = engine_.now();
  }
  const FileId id = next_file_id_++;
  open_files_[id] = OpenFile{oid, flags};
  co_return id;
}

sim::Task<Status> MemFs::close(pfs::IoCtx ctx, FileId file) {
  (void)ctx;
  if (open_files_.erase(file) == 0) co_return error(Errc::bad_handle, "close");
  co_return Status::Ok();
}

sim::Task<Result<std::uint64_t>> MemFs::write(pfs::IoCtx ctx, FileId file, std::uint64_t offset,
                                              DataView data) {
  (void)ctx;
  const auto it = open_files_.find(file);
  if (it == open_files_.end()) co_return error(Errc::bad_handle, "write");
  if (!it->second.flags.write) co_return error(Errc::permission, "fd not writable");
  Object& o = objects_[it->second.oid];
  const std::uint64_t len = data.size();
  o.data.write(offset, std::move(data));
  o.size = std::max(o.size, offset + len);
  o.mtime = engine_.now();
  co_return len;
}

sim::Task<Result<FragmentList>> MemFs::read(pfs::IoCtx ctx, FileId file, std::uint64_t offset,
                                            std::uint64_t len) {
  (void)ctx;
  const auto it = open_files_.find(file);
  if (it == open_files_.end()) co_return error(Errc::bad_handle, "read");
  if (!it->second.flags.read) co_return error(Errc::permission, "fd not readable");
  Object& o = objects_[it->second.oid];
  if (offset >= o.size) co_return FragmentList{};
  len = std::min(len, o.size - offset);
  co_return o.data.read(offset, len);
}

sim::Task<Status> MemFs::mkdir(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  path = path_normalize(path);
  if (!ns_.exists(std::string(path_dirname(path)))) {
    co_return error(Errc::not_found, "parent: " + std::string(path_dirname(path)));
  }
  co_return ns_.mkdir(path);
}

sim::Task<Status> MemFs::rmdir(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  co_return ns_.rmdir(path_normalize(path));
}

sim::Task<Status> MemFs::unlink(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  auto removed = ns_.unlink(path_normalize(path));
  if (!removed.ok()) co_return removed.status();
  objects_.erase(removed.value());
  co_return Status::Ok();
}

sim::Task<Status> MemFs::rename(pfs::IoCtx ctx, std::string from, std::string to) {
  (void)ctx;
  co_return ns_.rename(path_normalize(from), path_normalize(to));
}

sim::Task<Result<pfs::StatInfo>> MemFs::stat(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  auto entry = ns_.lookup(path_normalize(path));
  if (!entry.ok()) co_return entry.status();
  pfs::StatInfo info;
  info.is_dir = entry->is_dir;
  if (!entry->is_dir) {
    const auto it = objects_.find(entry->oid);
    if (it != objects_.end()) {
      info.size = it->second.size;
      info.mtime = it->second.mtime;
    }
  }
  co_return info;
}

sim::Task<Result<std::vector<pfs::DirEntry>>> MemFs::readdir(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  co_return ns_.readdir(path_normalize(path));
}

}  // namespace tio::localfs
