// PlfsVfs: the POSIX-style facade (the paper's FUSE interface).
//
// Section II lists three ways to use PLFS: a FUSE mount point, direct
// library linkage, and the MPI-IO/ADIO driver. This class is the FUSE-shaped
// surface: file-descriptor open/pread/pwrite/close plus namespace
// operations, routing logical files to containers transparently.
//
// Faithful quirks from the paper:
//   * No read-write opens. "PLFS does not support read-write access to
//     files accessed by multiple processes at the same time" — the authors
//     modified IOR and MADbench to drop O_RDWR. We return UNSUPPORTED.
//   * stat() on a container reports the *logical* size, resolved from the
//     meta droppings without any index aggregation.
//   * Reads through this interface are uncoordinated — each descriptor
//     aggregates the index itself (the Original design). Coordinated
//     strategies need the communicator and live in plfs/mpiio.h; this
//     asymmetry is exactly why the paper added the MPI-IO interface.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "plfs/plfs.h"

namespace tio::plfs {

class PlfsVfs {
 public:
  explicit PlfsVfs(Plfs& plfs) : plfs_(&plfs) {}

  using Fd = int;

  // Write opens create the container (create flag implied, like a FUSE
  // O_CREAT|O_WRONLY); each open descriptor becomes a distinct writer with
  // its own data/index log. Read-write opens are rejected.
  sim::Task<Result<Fd>> open(pfs::IoCtx ctx, std::string path, pfs::OpenFlags flags);
  sim::Task<Result<std::uint64_t>> pwrite(pfs::IoCtx ctx, Fd fd, std::uint64_t offset,
                                          DataView data);
  sim::Task<Result<FragmentList>> pread(pfs::IoCtx ctx, Fd fd, std::uint64_t offset,
                                        std::uint64_t len);
  sim::Task<Status> close(pfs::IoCtx ctx, Fd fd);

  // Namespace operations (delegated to the PLFS core).
  sim::Task<Result<pfs::StatInfo>> stat(pfs::IoCtx ctx, const std::string& path);
  sim::Task<Result<std::vector<pfs::DirEntry>>> readdir(pfs::IoCtx ctx, std::string dir);
  sim::Task<Status> mkdir(pfs::IoCtx ctx, std::string dir);
  sim::Task<Status> unlink(pfs::IoCtx ctx, const std::string& path);

  std::size_t open_descriptors() const { return writers_.size() + readers_.size(); }
  Plfs& plfs() { return *plfs_; }

 private:
  Plfs* plfs_;
  Fd next_fd_ = 3;         // 0/1/2 taken, as tradition demands
  int next_writer_id_ = 0; // unique "pid" per write-open
  std::unordered_map<Fd, std::unique_ptr<WriteHandle>> writers_;
  std::unordered_map<Fd, std::unique_ptr<ReadHandle>> readers_;
};

}  // namespace tio::plfs
