// Lazy coroutine task used for all simulated activity.
//
// A Task<T> does not run until awaited (or spawned on an Engine as a
// detached process). Completion resumes the awaiter by symmetric transfer,
// so arbitrarily deep co_await chains use constant native stack.
//
// Lifetime rule: a Task owns its coroutine frame; frames of suspended tasks
// must not be abandoned (there is no cancellation — simulated processes run
// to completion, as checkpoint phases do).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_pool.h"

namespace tio::sim {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct promise_final_awaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
    return h.promise().continuation;
  }
  void await_resume() const noexcept {}
};

// Deriving from PooledFrame routes every Task frame through the size-class
// recycling allocator (promise-scope operator new/delete cover the whole
// coroutine frame, not just the promise).
struct promise_base : PooledFrame {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::promise_base {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::promise_final_awaiter<T> final_suspend() noexcept { return {}; }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
      h.promise().continuation = parent;
      return h;  // start the child now
    }
    T await_resume() {
      if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      return std::move(*h.promise().value);
    }
  };
  Awaiter operator co_await() && noexcept { return Awaiter{h_}; }

  // For the engine's detached-process driver.
  std::coroutine_handle<promise_type> handle() const noexcept { return h_; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_ = nullptr;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::promise_base {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::promise_final_awaiter<void> final_suspend() noexcept { return {}; }
    void return_void() {}
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
      h.promise().continuation = parent;
      return h;
    }
    void await_resume() {
      if (h.promise().exception) std::rethrow_exception(h.promise().exception);
    }
  };
  Awaiter operator co_await() && noexcept { return Awaiter{h_}; }

  std::coroutine_handle<promise_type> handle() const noexcept { return h_; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_ = nullptr;
};

}  // namespace tio::sim
