// Ablation: index entry compression.
//
// The Index collapses same-writer entries that are contiguous both
// logically and physically. Sequential/segmented patterns compress
// massively (bounding broadcast volume and lookup size); interleaved
// strided N-1 patterns cannot compress because logical neighbours come from
// different writers — which is exactly the case the wire-v2 pattern codec
// recovers: the surviving mappings are still arithmetic per writer, so the
// encoded bytes collapse even when the mapping count cannot.
#include "bench_util.h"

#include "plfs/index.h"
#include "plfs/mount.h"
#include "plfs/pattern.h"

using namespace tio;
using namespace tio::plfs;

namespace {

std::vector<IndexEntry> make_entries(int writers, int per_writer, std::uint64_t record,
                                     bool segmented) {
  std::vector<IndexEntry> out;
  std::vector<std::uint64_t> phys(writers, 0);
  for (int w = 0; w < writers; ++w) {
    for (int r = 0; r < per_writer; ++r) {
      const std::uint64_t logical =
          segmented
              ? (static_cast<std::uint64_t>(w) * per_writer + r) * record
              : (static_cast<std::uint64_t>(r) * writers + w) * record;
      out.push_back(IndexEntry{logical, record, phys[w],
                               static_cast<std::int64_t>(out.size() + 1),
                               static_cast<std::uint32_t>(w)});
      phys[w] += record;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("ablation_index_compression: entry-compression effectiveness");
  auto* writers = flags.add_i64("writers", 1024, "writer processes");
  auto* per_writer = flags.add_i64("per-writer", 256, "entries per writer");
  auto* shards_flag = tio::bench::add_shards_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const std::size_t shards = tio::bench::shards_or_die(*shards_flag);

  tio::bench::print_header("Ablation — Index compression",
                           "broadcast volume of the global index, compressed vs raw");
  // Host-CPU index builds, but each pattern is independent work; the pool
  // spreads the two rows across shard threads.
  struct Cell {
    std::size_t raw = 0;
    std::size_t mappings = 0;
    std::uint64_t raw_bytes = 0, compressed_bytes = 0, v2_bytes = 0;
  };
  const std::vector<bool> patterns = {true, false};
  std::vector<Cell> cells(patterns.size());
  tio::sim::ShardPool pool(shards);
  const int n_writers = static_cast<int>(*writers);
  const int n_per = static_cast<int>(*per_writer);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const bool segmented = patterns[i];
    pool.submit([&cells, i, segmented, n_writers, n_per] {
      auto entries = make_entries(n_writers, n_per, 64_KiB, segmented);
      Cell c;
      c.raw = entries.size();
      const BTreeIndex uncompressed = BTreeIndex::build(entries, /*compress=*/false);
      const BTreeIndex compressed = BTreeIndex::build(std::move(entries), /*compress=*/true);
      c.mappings = compressed.mapping_count();
      c.raw_bytes = uncompressed.serialized_bytes();
      c.compressed_bytes = compressed.serialized_bytes();
      c.v2_bytes = compressed.serialized_bytes(WireFormat::v2);
      cells[i] = c;
    });
  }
  pool.run_all();

  Table t({"pattern", "raw entries", "mappings", "raw bytes", "compressed bytes", "ratio",
           "wire v2 bytes", "v2 ratio"});
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const Cell& c = cells[i];
    t.add_row({patterns[i] ? "segmented (per-rank sequential)" : "strided (interleaved)",
               std::to_string(c.raw), std::to_string(c.mappings), format_bytes(c.raw_bytes),
               format_bytes(c.compressed_bytes),
               Table::num(static_cast<double>(c.raw_bytes) /
                              static_cast<double>(c.compressed_bytes),
                          1) +
                   "x",
               format_bytes(c.v2_bytes),
               Table::num(static_cast<double>(c.raw_bytes) / static_cast<double>(c.v2_bytes),
                          1) +
                   "x"});
  }
  t.print(std::cout);
  bench::print_sim_counters();
  return 0;
}
