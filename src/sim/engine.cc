#include "sim/engine.h"

#include <stdexcept>

namespace tio::sim {
namespace {

// Self-destroying driver coroutine that owns a detached process's Task.
struct Driver {
  struct promise_type {
    Driver get_return_object() {
      return Driver{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }  // frame self-destructs
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
  std::coroutine_handle<promise_type> h;
};

Driver drive(Engine* engine, Task<void> process) {
  struct Done {
    Engine* engine;
    ~Done() { engine->notify_process_finished(); }
  } done{engine};
  try {
    co_await std::move(process);
  } catch (...) {
    engine->record_process_error(std::current_exception());
  }
}

}  // namespace

Engine::~Engine() = default;

void Engine::at(TimePoint t, MoveFn<void()> fn) {
  if (t < now_) throw std::logic_error("Engine::at: scheduling into the past");
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void Engine::spawn(Task<void> process) {
  ++processes_alive_;
  const auto h = drive(this, std::move(process)).h;
  after(Duration::zero(), [h] { h.resume(); });
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is moved out via const_cast,
  // which is safe because pop() immediately removes the moved-from node.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++events_processed_;
  if (ev.fn) ev.fn();
  return true;
}

std::uint64_t Engine::run() {
  const std::uint64_t start = events_processed_;
  while (step()) {
  }
  if (process_error_) {
    auto err = std::exchange(process_error_, nullptr);
    std::rethrow_exception(err);
  }
  return events_processed_ - start;
}

}  // namespace tio::sim
