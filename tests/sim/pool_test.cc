// Tests for the allocation-recycling layers behind the engine hot path:
// MoveFn's small-buffer optimization (inline vs heap spill), the coroutine
// FramePool (size-class reuse, oversize fallback, cache cap), and the
// engine's pooled event slab. These run under ASan/UBSan via ci.sh, which
// is the point: every pool recycles raw memory, so lifetime bugs here are
// exactly what the sanitizers exist to catch.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/function.h"
#include "common/stats.h"
#include "sim/engine.h"
#include "sim/frame_pool.h"
#include "sim/task.h"

namespace tio::sim {
namespace {

// ---------------------------------------------------------------- MoveFn --

TEST(MoveFn, SmallCaptureStaysInline) {
  int x = 41;
  MoveFn<int()> fn = [x] { return x + 1; };
  EXPECT_TRUE(fn.uses_inline_storage());
  EXPECT_EQ(fn(), 42);
}

TEST(MoveFn, InlineSurvivesMoves) {
  auto p = std::make_unique<int>(7);  // move-only, non-trivial capture
  MoveFn<int()> fn = [p = std::move(p)] { return *p; };
  EXPECT_TRUE(fn.uses_inline_storage());
  MoveFn<int()> fn2 = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));
  MoveFn<int()> fn3;
  fn3 = std::move(fn2);
  EXPECT_TRUE(fn3.uses_inline_storage());
  EXPECT_EQ(fn3(), 7);
}

TEST(MoveFn, LargeCaptureSpillsToHeapAndCounts) {
  const std::uint64_t spills_before = counter("common.fn.heap_spills").value();
  struct Big {
    std::uint64_t words[8];  // 64 bytes > kInlineSize (32)
  } big{{1, 2, 3, 4, 5, 6, 7, 8}};
  MoveFn<std::uint64_t()> fn = [big] { return big.words[0] + big.words[7]; };
  EXPECT_FALSE(fn.uses_inline_storage());
  EXPECT_EQ(fn(), 9u);
  EXPECT_EQ(counter("common.fn.heap_spills").value(), spills_before + 1);

  // Moving a spilled callable transfers the heap pointer; it must still be
  // destroyed exactly once (ASan validates this).
  MoveFn<std::uint64_t()> fn2 = std::move(fn);
  EXPECT_FALSE(fn2.uses_inline_storage());
  EXPECT_EQ(fn2(), 9u);
}

TEST(MoveFn, DestructorRunsForInlineNonTrivialCapture) {
  auto flag = std::make_shared<int>(0);
  {
    MoveFn<void()> fn = [flag] { ++*flag; };
    EXPECT_TRUE(fn.uses_inline_storage());
    fn();
  }
  EXPECT_EQ(*flag, 1);               // called once
  EXPECT_EQ(flag.use_count(), 1);    // capture released on destruction
}

// ------------------------------------------------------------- FramePool --

TEST(FramePool, ReusesSameSizeClass) {
  FramePool::trim();
  const auto before = FramePool::stats();
  void* a = FramePool::allocate(100);  // class: 128 bytes
  FramePool::deallocate(a, 100);
  void* b = FramePool::allocate(110);  // same class, must reuse a's block
  EXPECT_EQ(a, b);
  FramePool::deallocate(b, 110);
  const auto after = FramePool::stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
  FramePool::trim();
}

TEST(FramePool, DistinctSizeClassesDoNotMix) {
  FramePool::trim();
  void* small = FramePool::allocate(64);
  FramePool::deallocate(small, 64);
  void* large = FramePool::allocate(1024);  // different class: fresh block
  EXPECT_NE(small, large);
  FramePool::deallocate(large, 1024);
  FramePool::trim();
}

TEST(FramePool, OversizeFallsBackToHeap) {
  FramePool::trim();
  const auto before = FramePool::stats();
  void* p = FramePool::allocate(FramePool::kMaxPooled + 1);
  ASSERT_NE(p, nullptr);
  FramePool::deallocate(p, FramePool::kMaxPooled + 1);
  const auto after = FramePool::stats();
  EXPECT_EQ(after.oversize, before.oversize + 1);
  EXPECT_EQ(after.cached, before.cached);  // oversize frames are never cached
}

TEST(FramePool, CacheCapDropsExcessFrees) {
  FramePool::trim();
  constexpr std::size_t kBytes = 256;
  std::vector<void*> blocks;
  blocks.reserve(FramePool::kMaxCachedPerClass + 8);
  for (std::size_t i = 0; i < FramePool::kMaxCachedPerClass + 8; ++i) {
    blocks.push_back(FramePool::allocate(kBytes));
  }
  const auto before = FramePool::stats();
  for (void* p : blocks) FramePool::deallocate(p, kBytes);
  const auto after = FramePool::stats();
  EXPECT_EQ(after.dropped, before.dropped + 8);  // cap reached, rest dropped
  EXPECT_EQ(after.cached, FramePool::kMaxCachedPerClass);
  FramePool::trim();
  EXPECT_EQ(FramePool::stats().cached, 0u);
}

// Coroutine frames actually route through the pool via PooledFrame.
Task<int> add_one(int x) { co_return x + 1; }

Task<int> run_chain(Engine& engine, int n) {
  int v = 0;
  for (int i = 0; i < n; ++i) {
    v = co_await add_one(v);
    co_await engine.sleep(Duration::ns(1));
  }
  co_return v;
}

TEST(FramePool, CoroutineFramesRecycle) {
  FramePool::trim();
  Engine engine;
  int result = 0;
  engine.spawn([](Engine& e, int* out) -> Task<void> {
    *out = co_await run_chain(e, 100);
  }(engine, &result));
  engine.run();
  EXPECT_EQ(result, 100);
  const auto stats = FramePool::stats();
  // 100 add_one frames all share one size class: after the first handful of
  // cold allocations, every frame is a free-list hit.
  EXPECT_GT(stats.hits, 90u);
  FramePool::trim();
}

// ------------------------------------------------------------ event slab --

TEST(EventPool, SteadyStateRecyclesEventSlots) {
  Engine engine;
  // A self-rescheduling timer: at most a couple of events pending at once,
  // so the slab should stay tiny while thousands of events run through it.
  int remaining = 5000;
  struct Ticker {
    Engine* engine;
    int* remaining;
    void operator()() const {
      if (--*remaining > 0) engine->after(Duration::ns(5), Ticker{engine, remaining});
    }
  };
  engine.after(Duration::ns(5), Ticker{&engine, &remaining});
  engine.run();
  const auto& stats = engine.queue_stats();
  EXPECT_EQ(stats.pool_hits + stats.pool_misses, 5000u);
  EXPECT_LE(stats.pool_misses, 4u);  // slab grew to the tiny peak, then reused
  EXPECT_LE(stats.peak_queue, 2u);
  EXPECT_EQ(engine.events_processed(), 5000u);
}

TEST(EventPool, PeakQueueTracksPendingEvents) {
  Engine engine;
  for (int i = 0; i < 1000; ++i) {
    engine.at(TimePoint::from_ns(i + 1), [] {});
  }
  engine.run();
  EXPECT_EQ(engine.queue_stats().peak_queue, 1000u);
  EXPECT_EQ(engine.queue_stats().pool_misses, 1000u);  // all distinct slots
}

}  // namespace
}  // namespace tio::sim
