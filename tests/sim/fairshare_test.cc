#include "sim/fairshare.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace tio::sim {
namespace {

constexpr double kMB = 1e6;

Task<void> xfer(Engine& e, FairShareChannel& ch, std::uint64_t bytes, double* done_s) {
  co_await ch.transfer(bytes);
  *done_s = e.now().to_seconds();
}

Task<void> delayed_xfer(Engine& e, FairShareChannel& ch, Duration start, std::uint64_t bytes,
                        double* done_s) {
  co_await e.sleep(start);
  co_await ch.transfer(bytes);
  *done_s = e.now().to_seconds();
}

TEST(FairShare, SingleTransferRunsAtFullCapacity) {
  Engine e;
  FairShareChannel ch(e, 100 * kMB);
  double done = 0;
  e.spawn(xfer(e, ch, static_cast<std::uint64_t>(200 * kMB), &done));
  e.run();
  EXPECT_NEAR(done, 2.0, 1e-6);
}

TEST(FairShare, TwoEqualTransfersShareCapacity) {
  Engine e;
  FairShareChannel ch(e, 100 * kMB);
  double d1 = 0, d2 = 0;
  e.spawn(xfer(e, ch, static_cast<std::uint64_t>(100 * kMB), &d1));
  e.spawn(xfer(e, ch, static_cast<std::uint64_t>(100 * kMB), &d2));
  e.run();
  // Each gets 50 MB/s => both complete at 2 s.
  EXPECT_NEAR(d1, 2.0, 1e-6);
  EXPECT_NEAR(d2, 2.0, 1e-6);
}

TEST(FairShare, ShortTransferFinishesFirstThenLongSpeedsUp) {
  Engine e;
  FairShareChannel ch(e, 100 * kMB);
  double short_done = 0, long_done = 0;
  e.spawn(xfer(e, ch, static_cast<std::uint64_t>(50 * kMB), &short_done));
  e.spawn(xfer(e, ch, static_cast<std::uint64_t>(150 * kMB), &long_done));
  e.run();
  // Shared 50/50 until the short one finishes at t=1 (50 MB at 50 MB/s);
  // the long one then has 100 MB left at full 100 MB/s => t=2.
  EXPECT_NEAR(short_done, 1.0, 1e-6);
  EXPECT_NEAR(long_done, 2.0, 1e-6);
}

TEST(FairShare, LateArrivalSlowsExistingTransfer) {
  Engine e;
  FairShareChannel ch(e, 100 * kMB);
  double d1 = 0, d2 = 0;
  e.spawn(xfer(e, ch, static_cast<std::uint64_t>(100 * kMB), &d1));
  e.spawn(delayed_xfer(e, ch, Duration::seconds(0.5), static_cast<std::uint64_t>(100 * kMB), &d2));
  e.run();
  // First: 50 MB alone in 0.5 s, then 50 MB at 50 MB/s => done at 1.5 s.
  // Second: 50 MB shared (t=0.5..1.5), then 50 MB alone (0.5 s) => 2.0 s.
  EXPECT_NEAR(d1, 1.5, 1e-6);
  EXPECT_NEAR(d2, 2.0, 1e-6);
}

TEST(FairShare, PerStreamCapLimitsLightLoad) {
  Engine e;
  FairShareChannel ch(e, 100 * kMB, 10 * kMB);
  double done = 0;
  e.spawn(xfer(e, ch, static_cast<std::uint64_t>(20 * kMB), &done));
  e.run();
  // Alone but capped at 10 MB/s => 2 s.
  EXPECT_NEAR(done, 2.0, 1e-6);
}

TEST(FairShare, CapIgnoredWhenShareIsSmaller) {
  Engine e;
  FairShareChannel ch(e, 100 * kMB, 30 * kMB);
  std::vector<double> done(5, 0);
  for (int i = 0; i < 5; ++i) {
    e.spawn(xfer(e, ch, static_cast<std::uint64_t>(20 * kMB), &done[i]));
  }
  e.run();
  // 5 streams share 100 => 20 MB/s each (below the 30 cap) => 1 s.
  for (const double d : done) EXPECT_NEAR(d, 1.0, 1e-6);
}

TEST(FairShare, ZeroByteTransferCompletesInstantly) {
  Engine e;
  FairShareChannel ch(e, kMB);
  double done = -1;
  e.spawn(xfer(e, ch, 0, &done));
  e.run();
  EXPECT_EQ(done, 0.0);
}

TEST(FairShare, AggregateThroughputNeverExceedsCapacity) {
  Engine e;
  FairShareChannel ch(e, 100 * kMB);
  const int kStreams = 64;
  std::vector<double> done(kStreams, 0);
  std::uint64_t total = 0;
  Rng r(7);
  for (int i = 0; i < kStreams; ++i) {
    const std::uint64_t bytes = (1 + r.below(50)) * static_cast<std::uint64_t>(kMB);
    total += bytes;
    e.spawn(xfer(e, ch, bytes, &done[i]));
  }
  e.run();
  const double makespan = e.now().to_seconds();
  // Work-conserving: all streams busy from t=0, so makespan == total/capacity.
  EXPECT_NEAR(makespan, static_cast<double>(total) / (100 * kMB), 1e-3);
  EXPECT_EQ(ch.stats().transfers, static_cast<std::uint64_t>(kStreams));
  EXPECT_EQ(ch.stats().bytes, total);
  EXPECT_EQ(ch.stats().max_concurrency, static_cast<std::size_t>(kStreams));
}

TEST(FairShare, ManyConcurrentStreamsComplete) {
  Engine e;
  FairShareChannel ch(e, 1e9);
  const int kStreams = 10000;
  int completions = 0;
  auto t = [](FairShareChannel& c, int* n) -> Task<void> {
    co_await c.transfer(1000000);
    ++*n;
  };
  for (int i = 0; i < kStreams; ++i) e.spawn(t(ch, &completions));
  e.run();
  EXPECT_EQ(completions, kStreams);
  EXPECT_NEAR(e.now().to_seconds(), 10.0, 0.01);  // 10 GB over 1 GB/s
}

TEST(FairShare, InvalidCapacityThrows) {
  Engine e;
  EXPECT_THROW(FairShareChannel(e, 0), std::invalid_argument);
  EXPECT_THROW(FairShareChannel(e, -5), std::invalid_argument);
  EXPECT_THROW(FairShareChannel(e, 10, 0), std::invalid_argument);
}

TEST(FairShare, CurrentRateReflectsMembership) {
  Engine e;
  FairShareChannel ch(e, 100 * kMB);
  EXPECT_EQ(ch.current_rate(), 0);
  double d = 0;
  e.spawn(xfer(e, ch, static_cast<std::uint64_t>(kMB), &d));
  // Spawn starts via the event queue; step once to let it begin.
  while (ch.active() == 0 && e.step()) {
  }
  EXPECT_NEAR(ch.current_rate(), 100 * kMB, 1);
  e.run();
}

}  // namespace
}  // namespace tio::sim
