// Virtual-time timeout over an awaitable Task.
//
// Task has no cancellation (frames of suspended tasks must not be
// destroyed; simulated processes run to completion). A timeout therefore
// models what a real client does with a stalled RPC: stop waiting. The
// operation is detached to run to completion as a background process — its
// engine events still happen, any server-side effects still occur — while
// the awaiting coroutine resumes with "timed out" and may retry. This is
// exactly the at-least-once hazard real retry layers live with, which is
// why callers only wrap idempotent operations in it.
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tio::sim {

// Awaits `op` for at most `d` of virtual time. Returns the op's value, or
// nullopt on timeout (the op keeps running detached). Callers gate on
// d > 0 themselves when "zero means no timeout".
template <typename T>
Task<std::optional<T>> with_timeout(Engine& engine, Duration d, Task<T> op) {
  struct State {
    explicit State(Engine& e) : gate(e) {}
    Gate gate;
    std::optional<T> result;
    bool settled = false;  // first of {completion, timer} wins
  };
  auto state = std::make_shared<State>(engine);

  engine.spawn([](std::shared_ptr<State> s, Task<T> t) -> Task<void> {
    T value = co_await std::move(t);
    if (!s->settled) {
      s->settled = true;
      s->result.emplace(std::move(value));
    }
    s->gate.open();
  }(state, std::move(op)));

  engine.after(d, [state] {
    if (!state->settled) state->settled = true;
    state->gate.open();
  });

  co_await state->gate.wait();
  co_return std::move(state->result);
}

}  // namespace tio::sim
