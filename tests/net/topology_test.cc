#include "net/topology.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "net/cluster.h"
#include "sim/engine.h"
#include "testutil.h"

namespace tio::net {
namespace {

// 8 nodes in 2 racks, 1 GB/s NICs, 2:1 oversubscribed ToR uplinks
// (4 * 1 GB/s / 2 = 2 GB/s per rack, each direction).
ClusterConfig tor_config() {
  ClusterConfig c;
  c.nodes = 8;
  c.cores_per_node = 2;
  c.nic_bandwidth = 1e9;
  c.fabric_latency = Duration::us(2);
  c.topology = TopologyKind::tor;
  c.racks = 2;
  c.oversubscription = 2.0;
  return c;
}

// --- max-min water-filling closed forms ---

TEST(MaxMin, EqualFlowsSplitOneLinkEvenly) {
  for (std::uint32_t n : {1u, 2u, 5u, 16u}) {
    const std::vector<std::vector<std::uint32_t>> paths(n, {0u});
    const auto rates = FlowNet::max_min_rates({8e9}, paths);
    ASSERT_EQ(rates.size(), n);
    for (double r : rates) EXPECT_DOUBLE_EQ(r, 8e9 / n);
  }
}

TEST(MaxMin, WaterFillingFreezesBottleneckThenRedistributes) {
  // Flow 0 crosses only link A (10); flow 1 crosses A and B (5); flow 2
  // crosses only B. B is the bottleneck (5 / 2 = 2.5 < 10 / 2): flows 1
  // and 2 freeze at 2.5, then flow 0 takes A's full residual 7.5.
  const auto rates = FlowNet::max_min_rates({10.0, 5.0}, {{0}, {0, 1}, {1}});
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 7.5);
  EXPECT_DOUBLE_EQ(rates[1], 2.5);
  EXPECT_DOUBLE_EQ(rates[2], 2.5);
}

TEST(MaxMin, EmptyPathIsUnconstrained) {
  const auto rates = FlowNet::max_min_rates({1e9}, {{}, {0}});
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0], std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(rates[1], 1e9);
}

TEST(MaxMin, TiedBottlenecksAreDeterministic) {
  // Both links tie at 10 / 2 = 5; the lowest-index link freezes first.
  // Every flow ends at 5 either way — the invariant under test is that
  // repeated evaluation gives bit-identical output.
  const std::vector<double> caps = {10.0, 10.0};
  const std::vector<std::vector<std::uint32_t>> paths = {{0, 1}, {0}, {1}};
  const auto a = FlowNet::max_min_rates(caps, paths);
  const auto b = FlowNet::max_min_rates(caps, paths);
  EXPECT_EQ(a, b);
  for (double r : a) EXPECT_DOUBLE_EQ(r, 5.0);
}

// --- FlowNet virtual-time dynamics ---

TEST(FlowNet, SingleFlowRunsAtLinkCapacity) {
  sim::Engine e;
  FlowNet net(e);
  const std::uint32_t link = net.add_link(1e9);
  const std::uint32_t path[] = {link};
  test::run_task(e, [](FlowNet& n, std::span<const std::uint32_t> p) -> sim::Task<void> {
    co_await n.transfer(p, 1000000000);
  }(net, path));
  // 1 GB at 1 GB/s = 1 s, rounded up by <= 2 ns of event slack.
  EXPECT_NEAR(static_cast<double>(e.now().to_ns()), 1e9, 10.0);
  EXPECT_EQ(net.stats().flows, 1u);
  EXPECT_EQ(net.link_bytes(link), 1000000000u);
}

TEST(FlowNet, LateArrivalSplitsTheLink) {
  sim::Engine e;
  FlowNet net(e);
  const std::uint32_t link = net.add_link(1e9);
  std::int64_t done_a = 0, done_b = 0;
  auto xfer = [](sim::Engine& eng, FlowNet& n, std::uint32_t l, std::uint64_t bytes,
                 Duration start, std::int64_t* out) -> sim::Task<void> {
    co_await eng.sleep(start);
    const std::uint32_t path[] = {l};
    co_await n.transfer(path, bytes);
    *out = eng.now().to_ns();
  };
  e.spawn(xfer(e, net, link, 1000000000, Duration::zero(), &done_a));
  e.spawn(xfer(e, net, link, 500000000, Duration::ms(500), &done_b));
  e.run();
  // A runs alone for 0.5 s (500 MB left); then A and B each hold 500 MB at
  // 0.5 GB/s — both complete together at 1.5 s.
  EXPECT_NEAR(static_cast<double>(done_a), 1.5e9, 10.0);
  EXPECT_NEAR(static_cast<double>(done_b), 1.5e9, 10.0);
  EXPECT_EQ(net.stats().max_concurrency, 2u);
}

TEST(FlowNet, ZeroByteTransferCompletesInline) {
  sim::Engine e;
  FlowNet net(e);
  const std::uint32_t link = net.add_link(1e9);
  const std::uint32_t path[] = {link};
  test::run_task(e, [](FlowNet& n, std::span<const std::uint32_t> p) -> sim::Task<void> {
    co_await n.transfer(p, 0);
  }(net, path));
  EXPECT_EQ(e.now().to_ns(), 0);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FlowNet, RejectsNonPositiveCapacity) {
  sim::Engine e;
  FlowNet net(e);
  EXPECT_THROW(net.add_link(0.0), std::invalid_argument);
  EXPECT_THROW(net.add_link(-1.0), std::invalid_argument);
}

// --- preset link graphs and routes ---

TEST(Topology, FlatPresetIsRejected) {
  sim::Engine e;
  ClusterConfig cfg = tor_config();
  cfg.topology = TopologyKind::flat;
  EXPECT_THROW(Topology(e, cfg), std::invalid_argument);
}

TEST(Topology, TorLinkCapacitiesFollowOversubscription) {
  sim::Engine e;
  Topology topo(e, tor_config());
  EXPECT_EQ(topo.spines(), 1u);
  // 2 host links per node + 2 uplink directions per rack.
  EXPECT_EQ(topo.net().num_links(), 8u * 2 + 2u * 2);
  EXPECT_DOUBLE_EQ(topo.net().link_capacity(topo.host_up(0)), 1e9);
  EXPECT_DOUBLE_EQ(topo.net().link_capacity(topo.host_down(7)), 1e9);
  // nodes_per_rack * nic / oversubscription = 4 * 1e9 / 2.
  EXPECT_DOUBLE_EQ(topo.net().link_capacity(topo.rack_up(0)), 2e9);
  EXPECT_DOUBLE_EQ(topo.net().link_capacity(topo.rack_down(1)), 2e9);
}

TEST(Topology, RoutesClassifyByLocality) {
  sim::Engine e;
  Topology topo(e, tor_config());

  const auto local = topo.route_of(3, 3);
  EXPECT_EQ(local.klass, Topology::Route::Class::intra_node);
  EXPECT_EQ(local.num_links, 0u);
  EXPECT_EQ(local.latency.to_ns(), (Duration::us(2) / 4).to_ns());

  // Nodes 0 and 1 share rack 0: host uplink -> ToR -> host downlink.
  const auto near = topo.route_of(0, 1);
  EXPECT_EQ(near.klass, Topology::Route::Class::intra_rack);
  ASSERT_EQ(near.num_links, 2u);
  EXPECT_EQ(near.links[0], topo.host_up(0));
  EXPECT_EQ(near.links[1], topo.host_down(1));
  EXPECT_EQ(near.latency.to_ns(), Duration::us(2).to_ns());

  // Node 0 (rack 0) to node 5 (rack 1) climbs through both ToRs.
  const auto far = topo.route_of(0, 5);
  EXPECT_EQ(far.klass, Topology::Route::Class::cross_rack);
  ASSERT_EQ(far.num_links, 4u);
  EXPECT_EQ(far.links[0], topo.host_up(0));
  EXPECT_EQ(far.links[1], topo.rack_up(0));
  EXPECT_EQ(far.links[2], topo.rack_down(1));
  EXPECT_EQ(far.links[3], topo.host_down(5));
  EXPECT_EQ(far.latency.to_ns(), (Duration::us(2) * 3).to_ns());
}

TEST(Topology, FatTreeSplitsUplinkAcrossSpinePlanes) {
  sim::Engine e;
  ClusterConfig cfg = tor_config();
  cfg.topology = TopologyKind::fat_tree;
  cfg.racks = 4;  // 2 nodes per rack -> 2 spine planes
  Topology topo(e, cfg);
  EXPECT_EQ(topo.spines(), 2u);
  // Per-plane capacity = nodes_per_rack * nic / oversub / spines.
  EXPECT_DOUBLE_EQ(topo.net().link_capacity(topo.rack_up(0, 0)), 2e9 / 2 / 2);
  EXPECT_DOUBLE_EQ(topo.net().link_capacity(topo.rack_up(0, 1)), 2e9 / 2 / 2);

  // ECMP spine choice is a pure function of the rack pair.
  const auto r1 = topo.route_of(0, 7);
  const auto r2 = topo.route_of(0, 7);
  ASSERT_EQ(r1.num_links, 4u);
  EXPECT_EQ(r1.links[1], r2.links[1]);
  const std::size_t spine = r1.links[1] - topo.rack_up(0, 0);
  EXPECT_LT(spine, topo.spines());
}

// --- Cluster dispatch and end-to-end timing ---

TEST(Topology, ClusterBuildsTopologyOnlyForSwitchedPresets) {
  sim::Engine e1, e2;
  ClusterConfig flat = tor_config();
  flat.topology = TopologyKind::flat;
  Cluster c_flat(e1, flat);
  EXPECT_EQ(c_flat.topology(), nullptr);
  Cluster c_tor(e2, tor_config());
  ASSERT_NE(c_tor.topology(), nullptr);
  EXPECT_EQ(c_tor.topology()->config().racks, 2u);
}

TEST(Topology, IntraRackTransferIsCutThrough) {
  sim::Engine e;
  Cluster c(e, tor_config());
  test::run_task(e, c.fabric_transfer(0, 1, 1000000));
  // One 1 MB flow at the 1 GB/s host links = 1 ms, then one switch hop of
  // latency; unlike the flat model there is no second store-and-forward leg.
  EXPECT_NEAR(static_cast<double>(e.now().to_ns()),
              static_cast<double>(Duration::ms(1).to_ns() + Duration::us(2).to_ns()), 10.0);
}

TEST(Topology, OversubscribedUplinkThrottlesCrossRackIncast) {
  // 4 nodes, 2 racks, 4:1 oversubscription: uplink = 2 * 1e9 / 4 = 0.5e9,
  // slower than a single NIC.
  ClusterConfig cfg = tor_config();
  cfg.nodes = 4;
  cfg.racks = 2;
  cfg.oversubscription = 4.0;

  // One cross-rack flow alone: bottleneck is the uplink.
  {
    sim::Engine e;
    Cluster c(e, cfg);
    test::run_task(e, c.fabric_transfer(0, 2, 1000000));
    EXPECT_NEAR(static_cast<double>(e.now().to_ns()),
                static_cast<double>(Duration::ms(2).to_ns() + (Duration::us(2) * 3).to_ns()),
                10.0);
  }
  // Two concurrent flows from different hosts share the rack 0 uplink:
  // each gets 0.25e9 -> 4 ms.
  {
    sim::Engine e;
    Cluster c(e, cfg);
    std::int64_t done0 = 0, done1 = 0;
    auto send = [](Cluster& cl, std::size_t from, std::size_t to,
                   std::int64_t* out) -> sim::Task<void> {
      co_await cl.fabric_transfer(from, to, 1000000);
      *out = cl.engine().now().to_ns();
    };
    e.spawn(send(c, 0, 2, &done0));
    e.spawn(send(c, 1, 3, &done1));
    e.run();
    EXPECT_NEAR(static_cast<double>(done0),
                static_cast<double>(Duration::ms(4).to_ns() + (Duration::us(2) * 3).to_ns()),
                10.0);
    EXPECT_NEAR(static_cast<double>(done1), static_cast<double>(done0), 10.0);
  }
}

TEST(Topology, IntraNodeTransferNeverTouchesLinks) {
  sim::Engine e;
  Cluster c(e, tor_config());
  test::run_task(e, c.fabric_transfer(2, 2, 1000000000));
  EXPECT_EQ(e.now().to_ns(), (Duration::us(2) / 4).to_ns());
  EXPECT_EQ(c.topology()->net().stats().flows, 0u);
}

// --- preset names ---

TEST(Topology, KindNamesRoundTrip) {
  for (auto kind : {TopologyKind::flat, TopologyKind::tor, TopologyKind::fat_tree}) {
    TopologyKind parsed;
    ASSERT_TRUE(parse_topology_kind(topology_kind_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  TopologyKind parsed;
  EXPECT_TRUE(parse_topology_kind("fat_tree", parsed));
  EXPECT_EQ(parsed, TopologyKind::fat_tree);
  EXPECT_FALSE(parse_topology_kind("dragonfly", parsed));
}

}  // namespace
}  // namespace tio::net
