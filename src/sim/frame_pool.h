// Size-class recycling allocator for coroutine frames.
//
// The simulator creates one coroutine frame per rank op (and one driver
// frame per spawned process); at Cielo scale that is 10^7-10^8 frames per
// run, all short-lived and drawn from a handful of distinct sizes. Frames
// are rounded up to a 64-byte size class and cached on a per-class free
// list when destroyed, so steady-state simulation never calls the global
// allocator. Oversized frames (> kMaxPooled) and allocations past the
// per-class cache cap fall back to ::operator new/delete and are counted.
//
// The simulator is single-threaded per engine; the pool state is
// thread_local so concurrent engines on different threads never contend.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tio::sim {

class FramePool {
 public:
  static constexpr std::size_t kGranularity = 64;   // size-class step, bytes
  static constexpr std::size_t kMaxPooled = 4096;   // largest pooled frame
  // Per-class cap on cached frames; beyond it frees go straight to the
  // heap. Sized to hold a whole 65,536-rank bulk-synchronous phase's worth
  // of frames of one class — fig8-scale runs free rank frames en masse at
  // phase barriers and reallocate them at the next phase.
  static constexpr std::size_t kMaxCachedPerClass = 1 << 17;

  static void* allocate(std::size_t bytes);
  static void deallocate(void* p, std::size_t bytes) noexcept;

  struct Stats {
    std::uint64_t hits = 0;      // allocations served from a free list
    std::uint64_t misses = 0;    // pooled-size allocations that hit ::new
    std::uint64_t oversize = 0;  // frames larger than kMaxPooled
    std::uint64_t dropped = 0;   // frees past the cache cap, sent to ::delete
    std::uint64_t cached = 0;    // frames currently held in free lists
  };
  // This thread's lifetime totals.
  static Stats stats();

  // Adds the deltas since the previous publish into the global counter
  // registry (sim.engine.frame_pool_*). Called from Engine::run.
  static void publish_counters();

  // Releases every cached frame back to the heap (test teardown hygiene).
  static void trim() noexcept;
};

// Inherit in a coroutine promise type to allocate its frame from the pool.
// The sized operator delete is required: the pool recomputes the size class
// from the byte count rather than storing a per-frame header.
struct PooledFrame {
  static void* operator new(std::size_t bytes) { return FramePool::allocate(bytes); }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    FramePool::deallocate(p, bytes);
  }
};

}  // namespace tio::sim
