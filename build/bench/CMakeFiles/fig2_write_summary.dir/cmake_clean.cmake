file(REMOVE_RECURSE
  "CMakeFiles/fig2_write_summary.dir/fig2_write_summary.cc.o"
  "CMakeFiles/fig2_write_summary.dir/fig2_write_summary.cc.o.d"
  "fig2_write_summary"
  "fig2_write_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_write_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
