// IoTarget: the comparator abstraction of the evaluation.
//
// Every benchmark runs the same access pattern against two targets: PLFS
// (the logical file is a container; N-1 becomes N-N) and direct access to
// the underlying parallel file system (paying its shared-file semantics).
// N-N variants map each rank to its own file. Factories are collective.
#pragma once

#include <memory>
#include <string>

#include "mpisim/comm.h"
#include "pfs/fs_client.h"
#include "plfs/mpiio.h"
#include "plfs/plfs.h"

namespace tio::workloads {

enum class Access {
  plfs_n1,    // one logical PLFS file shared by all ranks
  plfs_nn,    // one PLFS logical file (container) per rank
  direct_n1,  // one shared file on the underlying PFS
  direct_nn,  // one PFS file per rank
};

std::string_view access_name(Access access);
bool is_plfs(Access access);
bool is_n1(Access access);

struct TargetOptions {
  Access access = Access::plfs_n1;
  plfs::ReadStrategy strategy = plfs::ReadStrategy::parallel_read;
  bool flatten_on_close = false;  // Index Flatten at write close
  // Max per-op client think time (uniform jitter). Real applications are
  // not lock-step synchronous (the paper's premise: real workloads are not
  // as consistent as synthetic benchmarks), and the desynchronization is
  // what exposes shared-file readahead confusion. 0 disables.
  Duration op_jitter = Duration::us(200);
};

// A rank's open slice of the target file for one phase (write xor read).
class Target {
 public:
  virtual ~Target() = default;
  virtual sim::Task<Status> write(std::uint64_t offset, DataView data) = 0;
  virtual sim::Task<Result<FragmentList>> read(std::uint64_t offset, std::uint64_t len) = 0;
  // Collective close (all ranks call).
  virtual sim::Task<Status> close() = 0;
  // Logical size, where cheaply known (read targets).
  virtual std::uint64_t size() const { return 0; }
};

class TargetFactory {
 public:
  // `direct_dir` must exist on the backend fs (Rig::direct_dir()).
  TargetFactory(plfs::Plfs& plfs, std::string direct_dir)
      : plfs_(&plfs), direct_dir_(std::move(direct_dir)) {}

  // Collective: every rank of `comm` calls and gets its own Target.
  sim::Task<Result<std::unique_ptr<Target>>> open_write(mpi::Comm& comm, std::string name,
                                                        TargetOptions options);
  sim::Task<Result<std::unique_ptr<Target>>> open_read(mpi::Comm& comm, std::string name,
                                                       TargetOptions options);

  plfs::Plfs& plfs() { return *plfs_; }
  pfs::FsClient& fs() { return plfs_->backend_fs(); }

 private:
  std::string plfs_path(const std::string& name, Access access, int rank) const;
  std::string direct_path(const std::string& name, Access access, int rank) const;

  plfs::Plfs* plfs_;
  std::string direct_dir_;
};

}  // namespace tio::workloads
