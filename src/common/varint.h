// LEB128 varints and zigzag transforms, plus a bounds-checked cursor for
// decoding them out of untrusted buffers.
//
// The index wire format (plfs/pattern.h) stores counts, offsets, and deltas
// as varints: unsigned values use plain LEB128 (7 payload bits per byte,
// high bit = continuation), signed deltas are zigzag-folded first so small
// negative values stay small. A u64 varint is at most 10 bytes.
//
// ByteReader is the decode side: every accessor is bounds-checked and
// returns false instead of reading past the end, and offset() always points
// at the first unconsumed byte — which is exactly the byte offset decoders
// want to put in their corruption error messages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tio {

inline void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Folds sign into the low bit: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void put_varint_signed(std::vector<std::byte>& out, std::int64_t v) {
  put_varint(out, zigzag_encode(v));
}

class ByteReader {
 public:
  ByteReader(const std::byte* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  void seek(std::size_t pos) { pos_ = pos; }

  bool get_u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool get_u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  // False on truncation or on an overlong/overflowing encoding (> 10 bytes
  // or bits beyond the 64th set).
  bool get_varint(std::uint64_t& out) {
    out = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      if (pos_ >= size_) return false;
      const auto b = static_cast<std::uint64_t>(data_[pos_++]);
      if (i == 9 && (b & 0x7f) > 1) return false;  // would overflow 64 bits
      out |= (b & 0x7f) << (7 * i);
      if ((b & 0x80) == 0) return true;
    }
    return false;
  }

  bool get_varint_signed(std::int64_t& out) {
    std::uint64_t raw = 0;
    if (!get_varint(raw)) return false;
    out = zigzag_decode(raw);
    return true;
  }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace tio
