// Compute-cluster model: nodes, the high-speed interconnect fabric, the
// (much slower) shared storage network, and per-node page caches.
//
// The paper's central resource asymmetry — an InfiniBand/Gemini fabric that
// is largely idle during I/O phases versus a thin 10GigE storage network —
// is what transformative middleware exploits, so the two networks are
// modeled as separate resources:
//   * fabric: per-node full-duplex NICs (fair-shared) + per-hop latency,
//     store-and-forward (sender uplink, then latency, then receiver
//     downlink). Simple, deterministic, adequate for collective algorithms.
//   * storage network: one global fair-share pipe with a per-stream cap at
//     the node's storage NIC rate (the 1.25 GB/s "theoretical peak").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "net/page_cache.h"
#include "sim/engine.h"
#include "sim/fairshare.h"
#include "sim/task.h"

namespace tio::net {

struct ClusterConfig {
  std::size_t nodes = 64;
  std::size_t cores_per_node = 16;
  std::uint64_t memory_per_node = 32_GiB;

  // Interconnect (IB / Gemini class).
  double nic_bandwidth = 2.0e9;                       // bytes/s per direction
  Duration fabric_latency = Duration::us(2);

  // Storage network (10GigE class).
  double storage_net_bandwidth = 1.25e9;              // aggregate bytes/s
  double storage_nic_bandwidth = 1.25e9;              // per-stream cap
  Duration storage_net_latency = Duration::us(60);

  // Page cache devoted to file data per node.
  std::uint64_t page_cache_per_node = 8_GiB;
  std::uint64_t page_cache_block = 256_KiB;
  double page_cache_bandwidth = 4.0e9;                // cached-read service rate

  std::size_t total_cores() const { return nodes * cores_per_node; }

  // The smallest latency any cross-node interaction carries — the natural
  // conservative lookahead for sharded simulation (sim/sharded.h): an
  // event produced at virtual time t on one shard cannot affect state on
  // another shard before t + min_remote_latency(), so engines may advance
  // through [T, T + min_remote_latency()) without hearing from each other.
  Duration min_remote_latency() const {
    return fabric_latency < storage_net_latency ? fabric_latency : storage_net_latency;
  }
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  sim::Engine& engine() { return engine_; }
  std::size_t nodes() const { return config_.nodes; }

  // One fabric message from node to node (intra-node messages cost only a
  // reduced latency). The awaiting process is blocked for the full
  // store-and-forward time, like a blocking MPI send-receive pair.
  sim::Task<void> fabric_transfer(std::size_t from_node, std::size_t to_node,
                                  std::uint64_t bytes);

  sim::FairShareChannel& storage_net() { return *storage_net_; }
  Duration storage_latency() const { return config_.storage_net_latency; }
  PageCache& page_cache(std::size_t node) { return *caches_[node]; }
  double cached_read_rate() const { return config_.page_cache_bandwidth; }

 private:
  sim::Engine& engine_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<sim::FairShareChannel>> nic_out_;
  std::vector<std::unique_ptr<sim::FairShareChannel>> nic_in_;
  std::unique_ptr<sim::FairShareChannel> storage_net_;
  std::vector<std::unique_ptr<PageCache>> caches_;
};

}  // namespace tio::net
