// RetryPolicy backoff arithmetic: exponential growth, cap, deterministic
// jitter bounds, and the client-wide RetryBudget.
#include "common/retry.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace tio {
namespace {

TEST(RetryPolicy, NominalBackoffDoublesUpToCap) {
  RetryPolicy p;  // 2ms initial, x2, 250ms cap
  EXPECT_EQ(p.nominal_backoff(0), Duration::ms(2));
  EXPECT_EQ(p.nominal_backoff(1), Duration::ms(4));
  EXPECT_EQ(p.nominal_backoff(2), Duration::ms(8));
  EXPECT_EQ(p.nominal_backoff(6), Duration::ms(128));
  EXPECT_EQ(p.nominal_backoff(7), Duration::ms(250));  // 256 clipped
  EXPECT_EQ(p.nominal_backoff(8), Duration::ms(250));
}

TEST(RetryPolicy, NominalBackoffSaturatesForHugeAttemptCounts) {
  RetryPolicy p;
  // Would overflow double exponentiation without the early cap check.
  EXPECT_EQ(p.nominal_backoff(10000), p.max_backoff);
}

TEST(RetryPolicy, JitteredBackoffStaysWithinWindow) {
  RetryPolicy p;
  for (std::uint64_t key : {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      const double nominal = static_cast<double>(p.nominal_backoff(attempt).to_ns());
      const double actual = static_cast<double>(p.backoff(attempt, key).to_ns());
      EXPECT_GE(actual, nominal * (1.0 - p.jitter) - 1.0) << key << "/" << attempt;
      EXPECT_LT(actual, nominal * (1.0 + p.jitter) + 1.0) << key << "/" << attempt;
    }
  }
}

TEST(RetryPolicy, BackoffIsPureFunctionOfSeedKeyAttempt) {
  RetryPolicy a;
  RetryPolicy b;
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(a.backoff(attempt, 42), b.backoff(attempt, 42)) << attempt;
  }
  // Different op keys draw from different jitter streams: at least one of
  // the first 8 attempts must differ (all-equal would defeat the
  // thundering-herd spreading).
  bool differs = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    differs |= a.backoff(attempt, 1) != a.backoff(attempt, 2);
  }
  EXPECT_TRUE(differs);
  // And so do different seeds for the same key.
  RetryPolicy other;
  other.seed = a.seed + 1;
  bool seed_differs = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    seed_differs |= a.backoff(attempt, 42) != other.backoff(attempt, 42);
  }
  EXPECT_TRUE(seed_differs);
}

TEST(RetryPolicy, ZeroJitterReturnsNominal) {
  RetryPolicy p;
  p.jitter = 0.0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(p.backoff(attempt, 99), p.nominal_backoff(attempt));
  }
}

TEST(RetryBudget, ConsumesToZeroThenRefills) {
  RetryBudget budget(3);
  EXPECT_EQ(budget.remaining(), 3u);
  EXPECT_TRUE(budget.try_consume());
  EXPECT_TRUE(budget.try_consume());
  EXPECT_TRUE(budget.try_consume());
  EXPECT_FALSE(budget.try_consume());
  EXPECT_EQ(budget.remaining(), 0u);
  budget.refill(1);
  EXPECT_TRUE(budget.try_consume());
  EXPECT_FALSE(budget.try_consume());
}

}  // namespace
}  // namespace tio
