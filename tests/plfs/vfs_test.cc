// Tests of the FUSE-style POSIX facade.
#include "plfs/vfs.h"

#include <gtest/gtest.h>

#include "localfs/mem_fs.h"
#include "testutil.h"

namespace tio::plfs {
namespace {

using pfs::IoCtx;
using pfs::OpenFlags;

class PlfsVfsTest : public ::testing::Test {
 protected:
  PlfsVfsTest() : fs_(engine_), plfs_(fs_, mount()), vfs_(plfs_) {
    for (const auto& b : plfs_.mount().backends) {
      if (!fs_.ns().mkdir_all(b).ok()) std::abort();
    }
  }
  static PlfsMount mount() {
    PlfsMount m;
    m.backends = {"/vol0/plfs", "/vol1/plfs"};
    m.num_subdirs = 4;
    return m;
  }

  sim::Engine engine_;
  localfs::MemFs fs_;
  Plfs plfs_;
  PlfsVfs vfs_;
  IoCtx ctx_{0, 0};
};

TEST_F(PlfsVfsTest, WriteThenReadRoundTrip) {
  test::run_task(engine_, [](PlfsVfs& vfs, IoCtx ctx) -> sim::Task<void> {
    auto wfd = co_await vfs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE(wfd.ok()) << wfd.status();
    EXPECT_TRUE((co_await vfs.pwrite(ctx, *wfd, 0, DataView::pattern(1, 0, 10000))).ok());
    EXPECT_TRUE((co_await vfs.close(ctx, *wfd)).ok());

    auto rfd = co_await vfs.open(ctx, "/f", OpenFlags::ro());
    EXPECT_TRUE(rfd.ok());
    auto data = co_await vfs.pread(ctx, *rfd, 0, 10000);
    EXPECT_TRUE(data.ok());
    EXPECT_TRUE(data->content_equals(DataView::pattern(1, 0, 10000)));
    EXPECT_TRUE((co_await vfs.close(ctx, *rfd)).ok());
  }(vfs_, ctx_));
  EXPECT_EQ(vfs_.open_descriptors(), 0u);
}

TEST_F(PlfsVfsTest, ReadWriteOpenIsUnsupportedLikeThePaperSays) {
  test::run_task(engine_, [](PlfsVfs& vfs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await vfs.open(ctx, "/f",
                                OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_EQ(fd.status().code(), Errc::unsupported);
  }(vfs_, ctx_));
}

TEST_F(PlfsVfsTest, EachWriteOpenIsADistinctWriter) {
  test::run_task(engine_, [](PlfsVfs& vfs, Plfs& plfs, localfs::MemFs& fs,
                             IoCtx ctx) -> sim::Task<void> {
    auto fd1 = co_await vfs.open(ctx, "/f", OpenFlags::wr_create());
    auto fd2 = co_await vfs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE(fd1.ok());
    EXPECT_TRUE(fd2.ok());
    EXPECT_NE(*fd1, *fd2);
    EXPECT_TRUE((co_await vfs.pwrite(ctx, *fd1, 0, DataView::pattern(1, 0, 100))).ok());
    EXPECT_TRUE((co_await vfs.pwrite(ctx, *fd2, 100, DataView::pattern(1, 100, 100))).ok());
    EXPECT_TRUE((co_await vfs.close(ctx, *fd1)).ok());
    EXPECT_TRUE((co_await vfs.close(ctx, *fd2)).ok());
    // Two distinct data logs exist in the container.
    const auto lay = plfs.layout("/f");
    EXPECT_TRUE(fs.ns().exists(lay.data_log_path(0)));
    EXPECT_TRUE(fs.ns().exists(lay.data_log_path(1)));

    auto rfd = co_await vfs.open(ctx, "/f", OpenFlags::ro());
    auto data = co_await vfs.pread(ctx, *rfd, 0, 200);
    EXPECT_TRUE(data->content_equals(DataView::pattern(1, 0, 200)));
    EXPECT_TRUE((co_await vfs.close(ctx, *rfd)).ok());
  }(vfs_, plfs_, fs_, ctx_));
}

TEST_F(PlfsVfsTest, WrongDirectionOnDescriptorIsPermissionError) {
  test::run_task(engine_, [](PlfsVfs& vfs, IoCtx ctx) -> sim::Task<void> {
    auto wfd = co_await vfs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_EQ((co_await vfs.pread(ctx, *wfd, 0, 10)).status().code(), Errc::permission);
    EXPECT_TRUE((co_await vfs.close(ctx, *wfd)).ok());
    auto rfd = co_await vfs.open(ctx, "/f", OpenFlags::ro());
    EXPECT_EQ((co_await vfs.pwrite(ctx, *rfd, 0, DataView::zeros(1))).status().code(),
              Errc::permission);
    EXPECT_TRUE((co_await vfs.close(ctx, *rfd)).ok());
  }(vfs_, ctx_));
}

TEST_F(PlfsVfsTest, BadFdIsRejected) {
  test::run_task(engine_, [](PlfsVfs& vfs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_EQ((co_await vfs.pread(ctx, 77, 0, 1)).status().code(), Errc::bad_handle);
    EXPECT_EQ((co_await vfs.pwrite(ctx, 77, 0, DataView::zeros(1))).status().code(),
              Errc::bad_handle);
    EXPECT_EQ((co_await vfs.close(ctx, 77)).code(), Errc::bad_handle);
  }(vfs_, ctx_));
}

TEST_F(PlfsVfsTest, StatReportsLogicalSizeWithoutIndexAggregation) {
  test::run_task(engine_, [](PlfsVfs& vfs, IoCtx ctx) -> sim::Task<void> {
    auto wfd = co_await vfs.open(ctx, "/f", OpenFlags::wr_create());
    // Sparse write: logical size is 1 MiB despite only 100 bytes of data.
    EXPECT_TRUE((co_await vfs.pwrite(ctx, *wfd, 1_MiB - 100, DataView::zeros(100))).ok());
    EXPECT_TRUE((co_await vfs.close(ctx, *wfd)).ok());
    auto st = co_await vfs.stat(ctx, "/f");
    EXPECT_TRUE(st.ok());
    EXPECT_FALSE(st->is_dir);
    EXPECT_EQ(st->size, 1_MiB);
  }(vfs_, ctx_));
}

TEST_F(PlfsVfsTest, StatOnPlainDirectory) {
  test::run_task(engine_, [](PlfsVfs& vfs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await vfs.mkdir(ctx, "/dir")).ok());
    auto st = co_await vfs.stat(ctx, "/dir");
    EXPECT_TRUE(st.ok());
    EXPECT_TRUE(st->is_dir);
    EXPECT_EQ((co_await vfs.stat(ctx, "/missing")).status().code(), Errc::not_found);
  }(vfs_, ctx_));
}

TEST_F(PlfsVfsTest, ReaddirShowsContainersAsFiles) {
  test::run_task(engine_, [](PlfsVfs& vfs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await vfs.mkdir(ctx, "/d")).ok());
    auto wfd = co_await vfs.open(ctx, "/d/ckpt", OpenFlags::wr_create());
    EXPECT_TRUE((co_await vfs.close(ctx, *wfd)).ok());
    auto entries = co_await vfs.readdir(ctx, "/d");
    EXPECT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), 1u);
    EXPECT_EQ((*entries)[0], (pfs::DirEntry{"ckpt", false}));
  }(vfs_, ctx_));
}

TEST_F(PlfsVfsTest, UnlinkThroughVfs) {
  test::run_task(engine_, [](PlfsVfs& vfs, IoCtx ctx) -> sim::Task<void> {
    auto wfd = co_await vfs.open(ctx, "/gone", OpenFlags::wr_create());
    EXPECT_TRUE((co_await vfs.pwrite(ctx, *wfd, 0, DataView::zeros(64))).ok());
    EXPECT_TRUE((co_await vfs.close(ctx, *wfd)).ok());
    EXPECT_TRUE((co_await vfs.unlink(ctx, "/gone")).ok());
    EXPECT_EQ((co_await vfs.open(ctx, "/gone", OpenFlags::ro())).status().code(),
              Errc::not_found);
  }(vfs_, ctx_));
}

TEST_F(PlfsVfsTest, OverwriteAcrossDescriptorsResolvesByTime) {
  test::run_task(engine_, [](PlfsVfs& vfs, sim::Engine& engine, IoCtx ctx) -> sim::Task<void> {
    auto fd1 = co_await vfs.open(ctx, "/f", OpenFlags::wr_create());
    auto fd2 = co_await vfs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE((co_await vfs.pwrite(ctx, *fd1, 0, DataView::pattern(1, 0, 1000))).ok());
    co_await engine.sleep(Duration::ms(1));
    EXPECT_TRUE((co_await vfs.pwrite(ctx, *fd2, 0, DataView::pattern(2, 0, 1000))).ok());
    EXPECT_TRUE((co_await vfs.close(ctx, *fd1)).ok());
    EXPECT_TRUE((co_await vfs.close(ctx, *fd2)).ok());
    auto rfd = co_await vfs.open(ctx, "/f", OpenFlags::ro());
    auto data = co_await vfs.pread(ctx, *rfd, 0, 1000);
    EXPECT_TRUE(data->content_equals(DataView::pattern(2, 0, 1000)));  // later wins
    EXPECT_TRUE((co_await vfs.close(ctx, *rfd)).ok());
  }(vfs_, engine_, ctx_));
}

}  // namespace
}  // namespace tio::plfs
