file(REMOVE_RECURSE
  "CMakeFiles/iolib_test.dir/iolib/collective_buffer_test.cc.o"
  "CMakeFiles/iolib_test.dir/iolib/collective_buffer_test.cc.o.d"
  "CMakeFiles/iolib_test.dir/iolib/tinyhdf_test.cc.o"
  "CMakeFiles/iolib_test.dir/iolib/tinyhdf_test.cc.o.d"
  "CMakeFiles/iolib_test.dir/iolib/tinync_test.cc.o"
  "CMakeFiles/iolib_test.dir/iolib/tinync_test.cc.o.d"
  "iolib_test"
  "iolib_test.pdb"
  "iolib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
