#include "iolib/tinync.h"

#include <gtest/gtest.h>

#include "net/cluster.h"
#include "pfs/extent_map.h"

namespace tio::iolib {
namespace {

// In-memory WriteFn/ReadFn pair over a shared extent map: lets the
// formatting layer be tested without any file system.
struct MemFile {
  pfs::ExtentMap map;
  std::uint64_t size = 0;
  WriteFn writer() {
    return [this](std::uint64_t off, DataView data) -> sim::Task<Status> {
      size = std::max(size, off + data.size());
      map.write(off, std::move(data));
      co_return Status::Ok();
    };
  }
  ReadFn reader() {
    return [this](std::uint64_t off, std::uint64_t len) -> sim::Task<Result<FragmentList>> {
      if (off >= size) co_return FragmentList{};
      co_return map.read(off, std::min(len, size - off));
    };
  }
};

net::ClusterConfig tiny_cluster() {
  net::ClusterConfig c;
  c.nodes = 4;
  c.cores_per_node = 2;
  return c;
}

TEST(TinyNcHeader, SerializeParseRoundTrip) {
  const std::vector<NcVar> vars = {{"density", 1_MiB}, {"pressure", 2_MiB}, {"vx", 512_KiB}};
  const auto bytes = TinyNc::serialize_header(vars);
  EXPECT_EQ(bytes.size(), TinyNc::kHeaderBytes);
  FragmentList fl;
  fl.append(DataView::literal(bytes));
  auto parsed = TinyNc::parse_header(fl);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].name, "density");
  EXPECT_EQ((*parsed)[1].bytes_per_proc, 2_MiB);
  EXPECT_EQ((*parsed)[2].name, "vx");
}

TEST(TinyNcHeader, RejectsBadMagicAndShortHeader) {
  FragmentList short_fl;
  short_fl.append(DataView::zeros(100));
  EXPECT_FALSE(TinyNc::parse_header(short_fl).ok());
  FragmentList zeros;
  zeros.append(DataView::zeros(TinyNc::kHeaderBytes));
  EXPECT_FALSE(TinyNc::parse_header(zeros).ok());
}

TEST(TinyNcLayout, SlabOffsetsTileTheFile) {
  const std::vector<NcVar> vars = {{"a", 1000}, {"b", 500}};
  const int n = 4;
  EXPECT_EQ(TinyNc::slab_offset(0, n, vars, 0), TinyNc::kHeaderBytes);
  EXPECT_EQ(TinyNc::slab_offset(3, n, vars, 0), TinyNc::kHeaderBytes + 3000);
  EXPECT_EQ(TinyNc::slab_offset(0, n, vars, 1), TinyNc::kHeaderBytes + 4000);
  EXPECT_EQ(TinyNc::total_bytes(n, vars), TinyNc::kHeaderBytes + 4000 + 2000);
}

TEST(TinyNc, CollectiveWriteThenReadVerifies) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  MemFile file;
  const std::vector<NcVar> vars = {{"a", 3000}, {"b", 1000}};
  mpi::run_spmd(cluster, 6, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await TinyNc::write_all(comm, file.writer(), vars, 77)).ok());
  });
  EXPECT_EQ(file.size, TinyNc::total_bytes(6, vars));
  mpi::run_spmd(cluster, 6, [&](mpi::Comm comm) -> sim::Task<void> {
    std::vector<NcVar> parsed;
    EXPECT_TRUE((co_await TinyNc::read_all(comm, file.reader(), 77, true, &parsed)).ok());
    EXPECT_EQ(parsed.size(), 2u);
  });
}

TEST(TinyNc, ReadDetectsCorruption) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  MemFile file;
  const std::vector<NcVar> vars = {{"a", 2000}};
  mpi::run_spmd(cluster, 4, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await TinyNc::write_all(comm, file.writer(), vars, 77)).ok());
  });
  // Corrupt one slab.
  file.map.write(TinyNc::kHeaderBytes + 2500, DataView::pattern(999, 0, 10));
  int failures = 0;
  mpi::run_spmd(cluster, 4, [&](mpi::Comm comm) -> sim::Task<void> {
    const Status st = co_await TinyNc::read_all(comm, file.reader(), 77, true);
    if (!st.ok()) ++failures;
    (void)comm;
  });
  EXPECT_GE(failures, 1);  // the rank owning the corrupted slab notices
}

TEST(TinyNc, ReadWithoutVerifySkipsContentCheck) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  MemFile file;
  const std::vector<NcVar> vars = {{"a", 2000}};
  mpi::run_spmd(cluster, 2, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await TinyNc::write_all(comm, file.writer(), vars, 77)).ok());
  });
  file.map.write(TinyNc::kHeaderBytes + 100, DataView::pattern(999, 0, 10));
  mpi::run_spmd(cluster, 2, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await TinyNc::read_all(comm, file.reader(), 77, false)).ok());
  });
}

}  // namespace
}  // namespace tio::iolib
