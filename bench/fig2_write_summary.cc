// Figure 2: summary of N-1 write-bandwidth speedups of PLFS over direct
// access to the underlying parallel file system, across applications.
//
// The paper reports speedups up to ~150x; the gain comes from eliminating
// shared-file lock serialization and read-modify-write on the underlying
// file system by logging each process's writes to private files. Smaller
// records suffer more under direct access, so they gain the most.
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

namespace {

struct App {
  std::string name;
  std::uint64_t record;
  std::uint64_t per_proc;
};

double write_bw(const testbed::Rig::Options& opts, int procs, const App& app, Access access) {
  testbed::Rig rig(opts);
  JobSpec spec;
  spec.file = app.name;
  spec.ops = strided_ops(app.per_proc, std::min(app.record, app.per_proc));
  spec.target.access = access;
  spec.do_read = false;
  return run_job(rig, procs, spec).write.effective_bw();
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("fig2_write_summary: N-1 write speedups, PLFS vs direct PFS");
  auto* procs = flags.add_i64("procs", 256, "concurrent writer processes");
  auto* per_proc_mib = flags.add_i64("per-proc-mib", 8, "MiB written per process");
  auto* shards_flag = bench::add_shards_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const std::size_t shards = bench::shards_or_die(*shards_flag);

  bench::print_header("Fig. 2 — Summary of write performance results",
                      "PLFS N-1 write speedup across applications (up to ~150x)");

  const std::uint64_t per_proc = static_cast<std::uint64_t>(*per_proc_mib) << 20;
  // The applications of the paper's Fig. 2 bar chart (from the SC09 PLFS
  // paper). The two LANL mission codes' record sizes come from this paper's
  // text; the rest are synthesized as typical unaligned checkpoint records
  // for each code (see DESIGN.md's substitution table).
  const std::vector<App> apps = {
      {"BTIO", 2000000, per_proc},          // NAS BT-IO, ~2 MB unaligned
      {"Chombo", 512000, per_proc},         // AMR dumps, ~500 KB unaligned
      {"FLASH", 100000, per_proc},          // many small unaligned records
      {"LANL_1", 500000, per_proc},         // ~500 KB records (Section IV-D5)
      {"LANL_2", 64000, per_proc},          // mid-size unaligned records
      {"LANL_3", 1_KiB, per_proc / 4},      // 1 KiB records (Section IV-D6)
      {"QCD", 1049088, per_proc},           // ~1 MB, stripe-unaligned
      {"MPI-IO_Test", 47_KiB, per_proc},    // the SC09 paper's 47 KB config
  };

  // Each app is an independent pair of simulations; the pool spreads apps
  // across shard threads in the serial bench's submission order.
  struct Cell {
    double direct, plfs;
  };
  std::vector<Cell> cells(apps.size());
  sim::ShardPool pool(shards);
  const int nprocs = static_cast<int>(*procs);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    pool.submit([&cells, &apps, i, nprocs] {
      cells[i].direct = write_bw(bench::lanl_rig(), nprocs, apps[i], Access::direct_n1);
      cells[i].plfs = write_bw(bench::lanl_rig(), nprocs, apps[i], Access::plfs_n1);
    });
  }
  pool.run_all();

  Table table({"app", "record", "direct MB/s", "PLFS MB/s", "speedup"});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& app = apps[i];
    table.add_row({app.name, format_bytes(app.record), Table::num(bench::mbps(cells[i].direct)),
                   Table::num(bench::mbps(cells[i].plfs)),
                   Table::num(cells[i].plfs / cells[i].direct, 1) + "x"});
  }
  table.print(std::cout);
  std::printf("\nprocs=%lld, %lld MiB/proc, N-1 strided, LANL-cluster testbed\n",
              static_cast<long long>(*procs), static_cast<long long>(*per_proc_mib));
  bench::print_sim_counters();
  return 0;
}
