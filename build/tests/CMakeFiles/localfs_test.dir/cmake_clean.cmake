file(REMOVE_RECURSE
  "CMakeFiles/localfs_test.dir/localfs/local_fs_test.cc.o"
  "CMakeFiles/localfs_test.dir/localfs/local_fs_test.cc.o.d"
  "CMakeFiles/localfs_test.dir/localfs/mem_fs_test.cc.o"
  "CMakeFiles/localfs_test.dir/localfs/mem_fs_test.cc.o.d"
  "localfs_test"
  "localfs_test.pdb"
  "localfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
