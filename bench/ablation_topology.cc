// Ablation: fabric topology vs Parallel Index Read group placement.
//
// The leader allgather of the Parallel Index Read open is the incast the
// paper's flat fabric could never show: every leader's merged run converges
// on every other leader at once, and with leaders scattered across racks
// the whole exchange rides the ToR uplinks. This sweep crosses the fabric
// preset (flat / tor / fat-tree) and the ToR oversubscription factor with
// the group-formation policy (sqrt-of-N rank blocks, a fixed group size,
// or one group per rack), reporting read-open time plus the run's
// cross-rack fabric traffic from the net.topo.* counters.
//
// The interesting corner is a *ragged* group size: with procs=512 the
// default sqrt grouping uses groups of 23, which straddle node and rack
// boundaries, so the binomial trees inside each group and the leader
// exchange both cross ToRs. Rack groups keep member gathers inside one
// switch and place exactly one leader per occupied rack.
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

namespace {

struct RowSpec {
  net::TopologyKind kind;
  double oversubscription;
  const char* grouping;  // "sqrt" | "g32" | "rack"
};

struct RowParams {
  int n = 512;
  std::size_t racks = 8;
  std::uint64_t per_proc = 0;
  std::uint64_t record = 0;
  plfs::WireFormat wire = plfs::WireFormat::v1;
  Duration index_cpu = Duration::zero();
};

struct RowResult {
  double open_s = 0;
  std::uint64_t cross_rack_bytes = 0;
  std::uint64_t cross_rack_msgs = 0;
  std::uint64_t intra_rack_bytes = 0;
};

std::uint64_t topo_local(const char* name) { return counter(name).local_value(); }

RowResult run_row(const RowSpec& spec, const RowParams& p) {
  const int n = p.n;
  testbed::Rig::Options o = bench::lanl_rig();
  o.cluster.topology = spec.kind;
  o.cluster.racks = p.racks;
  o.cluster.oversubscription = spec.oversubscription;
  // v1 by default: pattern compression (v2) shrinks a strided index to a
  // few bytes per writer, which hides exactly the fabric volume this
  // ablation exists to measure.
  o.index_wire = p.wire;
  testbed::Rig rig(o);
  // Zero by default: the mount's 1 us/entry merge cost swamps the exchange
  // (the open becomes CPU-bound) and would mask the fabric contention this
  // sweep isolates. --index-cpu-ns restores it.
  rig.mount().index_cpu_per_entry = p.index_cpu;
  if (std::string(spec.grouping) == "rack") {
    rig.mount().rack_aware_groups = true;
  } else if (std::string(spec.grouping) == "g32") {
    rig.mount().parallel_read_group = 32;
  }
  plfs::Plfs plfs(rig.pfs(), rig.mount());
  const OpGen ops = strided_ops(p.per_proc, p.record);

  RowResult row;
  const std::uint64_t xb0 = topo_local("net.topo.bytes.cross_rack");
  const std::uint64_t xm0 = topo_local("net.topo.msgs.cross_rack");
  const std::uint64_t ib0 = topo_local("net.topo.bytes.intra_rack");
  mpi::run_spmd(rig.cluster(), n, [&](mpi::Comm comm) -> sim::Task<void> {
    auto wf = co_await plfs::MpiFile::open_write(plfs, comm, "/t");
    if (!wf.ok()) throw std::runtime_error(wf.status().to_string());
    for (const auto& op : ops(comm.rank(), comm.size())) {
      (void)co_await (*wf)->write(op.offset, DataView::pattern(1, op.offset, op.len));
    }
    (void)co_await (*wf)->close_write(false);
    co_await comm.barrier();
    const TimePoint t0 = comm.engine().now();
    auto rf = co_await plfs::MpiFile::open_read(plfs, comm, "/t",
                                                plfs::ReadStrategy::parallel_read);
    if (!rf.ok()) throw std::runtime_error(rf.status().to_string());
    if (comm.rank() == 0) row.open_s = (comm.engine().now() - t0).to_seconds();
    (void)co_await (*rf)->close_read();
  });
  // Whole-job deltas; the only fabric-heavy phase is the open's index
  // exchange, so cross-rack bytes track the leader traffic.
  row.cross_rack_bytes = topo_local("net.topo.bytes.cross_rack") - xb0;
  row.cross_rack_msgs = topo_local("net.topo.msgs.cross_rack") - xm0;
  row.intra_rack_bytes = topo_local("net.topo.bytes.intra_rack") - ib0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::setlocale(LC_ALL, "");  // stdout tables honor the user's locale; JSON must not
  FlagSet flags("ablation_topology: fabric preset x oversubscription x group placement");
  auto* procs = flags.add_i64(
      "procs", 512, "reader processes (non-square counts make sqrt groups straddle racks)");
  auto* racks_flag = flags.add_i64("racks", 0, "rack count (0 = nodes/8, at least 1)");
  auto* per_proc_mib = flags.add_i64("per-proc-mib", 2, "MiB written per stream");
  auto* record_kib = flags.add_i64("record-kib", 4, "record size KiB (small = big index)");
  auto* wire_name = flags.add_string(
      "index_wire", "v1", "index wire format: v1|v2 (v1 default — v2 compresses the "
      "strided index away and hides the exchange volume)");
  auto* index_cpu_ns = flags.add_i64(
      "index-cpu-ns", 0, "per-entry index merge CPU in ns (0 isolates fabric time)");
  auto* shards_flag = bench::add_shards_flag(flags);
  auto* json_path = flags.add_string("json", "", "also write results to this file as JSON");
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const std::size_t shards = bench::shards_or_die(*shards_flag);
  RowParams params;
  params.n = static_cast<int>(*procs);
  params.per_proc = static_cast<std::uint64_t>(*per_proc_mib) << 20;
  params.record = static_cast<std::uint64_t>(*record_kib) << 10;
  params.wire = bench::index_wire_or_die(*wire_name);
  if (*index_cpu_ns < 0) {
    std::fprintf(stderr, "--index-cpu-ns must be >= 0\n");
    return 1;
  }
  params.index_cpu = Duration::ns(*index_cpu_ns);
  net::ClusterConfig geom = testbed::lanl_cluster();
  std::size_t racks = static_cast<std::size_t>(*racks_flag);
  if (racks == 0) racks = std::max<std::size_t>(1, geom.nodes / 8);
  if (geom.nodes % racks != 0) {
    std::fprintf(stderr, "--racks=%zu does not divide nodes=%zu\n", racks, geom.nodes);
    return 1;
  }
  params.racks = racks;
  const int n = params.n;

  // flat has no rack-visible links, so only one oversubscription column.
  std::vector<RowSpec> specs;
  for (const char* grouping : {"sqrt", "g32", "rack"}) {
    specs.push_back({net::TopologyKind::flat, 1.0, grouping});
  }
  for (const auto kind : {net::TopologyKind::tor, net::TopologyKind::fat_tree}) {
    for (const double oversub : {1.0, 4.0, 8.0}) {
      for (const char* grouping : {"sqrt", "g32", "rack"}) {
        specs.push_back({kind, oversub, grouping});
      }
    }
  }

  std::vector<RowResult> rows(specs.size());
  sim::ShardPool pool(shards);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool.submit([&rows, &specs, i, &params] { rows[i] = run_row(specs[i], params); });
  }
  pool.run_all();

  bench::print_header("Ablation — topology x oversubscription x group placement",
                      "tor uplink incast during the leader exchange; rack "
                      "groups keep member gathers inside one ToR");
  Table t({"topology", "oversub", "grouping", "read open (s)", "x-rack MiB", "x-rack msgs"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    t.add_row({net::topology_kind_name(specs[i].kind), Table::num(specs[i].oversubscription, 0),
               specs[i].grouping, Table::num(rows[i].open_s, 3),
               Table::num(static_cast<double>(rows[i].cross_rack_bytes) / (1 << 20), 1),
               std::to_string(rows[i].cross_rack_msgs)});
  }
  t.print(std::cout);

  if (!json_path->empty()) {
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open --json file: %s\n", json_path->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_topology\",\n");
    std::fprintf(f, "  \"config\": {\"procs\": %d, \"racks\": %zu, \"nodes\": %zu, "
                 "\"cores_per_node\": %zu, \"per_proc_mib\": %lld, \"record_kib\": %lld, "
                 "\"index_wire\": \"%s\", \"index_cpu_ns\": %lld, \"shards\": %zu},\n",
                 n, racks, geom.nodes, geom.cores_per_node,
                 static_cast<long long>(*per_proc_mib), static_cast<long long>(*record_kib),
                 plfs::wire_format_name(params.wire).c_str(),
                 static_cast<long long>(*index_cpu_ns), shards);
    std::fprintf(f, "  \"rows\": [");
    for (std::size_t i = 0; i < specs.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"topology\": \"%s\", \"oversubscription\": %s, "
                   "\"grouping\": \"%s\", \"read_open_s\": %s, \"cross_rack_bytes\": %llu, "
                   "\"cross_rack_msgs\": %llu, \"intra_rack_bytes\": %llu}",
                   i ? "," : "", net::topology_kind_name(specs[i].kind).c_str(),
                   json_double(specs[i].oversubscription, 1).c_str(), specs[i].grouping,
                   json_double(rows[i].open_s, 6).c_str(),
                   static_cast<unsigned long long>(rows[i].cross_rack_bytes),
                   static_cast<unsigned long long>(rows[i].cross_rack_msgs),
                   static_cast<unsigned long long>(rows[i].intra_rack_bytes));
    }
    std::fprintf(f, "\n  ],\n");
    bench::json_counters(f);
    std::fprintf(f, "  \"schema\": 1\n}\n");
    std::fclose(f);
  }

  bench::print_topo_counters();
  bench::print_sim_counters();
  return 0;
}
