// Container path layout and federation hashing.
//
// A PLFS logical file /dir/name is physically a *container* directory
// /backendC/dir/name holding:
//   access          ownership/ACL record (also the container marker)
//   meta/           per-writer size droppings written at close
//   openhosts/      records of writers with the file open
//   subdir.K/       K in [0, num_subdirs): holds data.<rank>, index.<rank>
//   global.index    (optional) flattened global index
//
// The canonical backend C is chosen by hashing the logical path; with
// subdir spreading, each subdir.K is hashed independently across backends
// ("shadow containers"), which is how PLFS federates one file's metadata
// load over multiple metadata servers (paper Fig. 6). All hashing is
// static, so every process resolves paths without coordination.
#pragma once

#include <cstdint>
#include <string>

#include "plfs/mount.h"

namespace tio::plfs {

class ContainerLayout {
 public:
  ContainerLayout(const PlfsMount& mount, std::string logical_path);

  const std::string& logical() const { return logical_; }

  std::size_t canonical_backend() const;
  std::size_t subdir_backend(std::size_t k) const;
  std::size_t subdir_of_rank(int rank) const;
  std::size_t num_subdirs() const { return mount_->num_subdirs; }
  std::size_t num_backends() const { return mount_->backends.size(); }

  // Physical container directory on backend b.
  std::string container_on(std::size_t backend) const;
  std::string canonical_container() const { return container_on(canonical_backend()); }
  std::string access_path() const;
  std::string meta_dir() const;
  std::string openhosts_dir() const;
  std::string global_index_path() const;
  // subdir.k on its (hashed) backend.
  std::string subdir_path(std::size_t k) const;
  // subdir.k placed on an explicit backend — used by MDS failover, which
  // ring-probes backends (subdir_backend(k) + j) % B when the hashed home
  // is unreachable.
  std::string subdir_path_on(std::size_t k, std::size_t backend) const;
  std::string data_log_path(int rank) const;
  std::string index_log_path(int rank) const;
  std::string data_log_path_on(int rank, std::size_t backend) const;
  std::string index_log_path_on(int rank, std::size_t backend) const;
  // Marker in the canonical container recording that subdir.k was placed
  // off its hashed home by failover; readers seeing it probe the ring.
  std::string stale_marker_path(std::size_t k) const;
  std::string openhost_record_path(int rank) const;
  std::string meta_dropping_path(int rank, std::uint64_t logical_size) const;

 private:
  std::uint64_t path_hash() const;

  const PlfsMount* mount_;
  std::string logical_;  // normalized
};

// True if `name` looks like an index log; extracts the writer id.
bool parse_index_log_name(std::string_view name, std::uint32_t* writer);
// True if `name` is a failover marker "stale.K"; extracts the subdir k.
bool parse_stale_marker_name(std::string_view name, std::size_t* k);
bool parse_meta_dropping_name(std::string_view name, std::uint32_t* writer,
                              std::uint64_t* logical_size);

}  // namespace tio::plfs
