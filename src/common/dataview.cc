#include "common/dataview.h"

#include <cstring>
#include <stdexcept>

namespace tio {

DataView DataView::literal(std::vector<std::byte> bytes) {
  DataView v;
  v.kind_ = Kind::literal;
  v.size_ = bytes.size();
  v.lit_ = std::make_shared<const std::vector<std::byte>>(std::move(bytes));
  return v;
}

DataView DataView::literal_string(std::string_view s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return literal(std::move(b));
}

std::byte DataView::at(std::uint64_t i) const {
  if (i >= size_) throw std::out_of_range("DataView::at");
  switch (kind_) {
    case Kind::zero: return std::byte{0};
    case Kind::pattern: return pattern_byte(seed_, base_ + i);
    case Kind::literal: return (*lit_)[lit_off_ + i];
  }
  return std::byte{0};
}

DataView DataView::slice(std::uint64_t off, std::uint64_t len) const {
  if (off > size_ || len > size_ - off) throw std::out_of_range("DataView::slice");
  DataView v = *this;
  v.size_ = len;
  switch (kind_) {
    case Kind::zero: break;
    case Kind::pattern: v.base_ = base_ + off; break;
    case Kind::literal: v.lit_off_ = lit_off_ + off; break;
  }
  return v;
}

std::vector<std::byte> DataView::to_bytes() const {
  std::vector<std::byte> out(size_);
  switch (kind_) {
    case Kind::zero: break;
    case Kind::pattern:
      for (std::uint64_t i = 0; i < size_; ++i) out[i] = pattern_byte(seed_, base_ + i);
      break;
    case Kind::literal:
      std::memcpy(out.data(), lit_->data() + lit_off_, size_);
      break;
  }
  return out;
}

std::string DataView::to_string() const {
  std::string s(size_, '\0');
  for (std::uint64_t i = 0; i < size_; ++i) s[i] = static_cast<char>(at(i));
  return s;
}

bool DataView::content_equals(const DataView& other) const {
  if (size_ != other.size_) return false;
  // Fast path: identical descriptors.
  if (kind_ == other.kind_) {
    if (kind_ == Kind::zero) return true;
    if (kind_ == Kind::pattern && seed_ == other.seed_ && base_ == other.base_) return true;
    if (kind_ == Kind::literal && lit_ == other.lit_ && lit_off_ == other.lit_off_) return true;
  }
  for (std::uint64_t i = 0; i < size_; ++i) {
    if (at(i) != other.at(i)) return false;
  }
  return true;
}

std::byte FragmentList::at(std::uint64_t i) const {
  for (const auto& f : frags_) {
    if (i < f.size()) return f.at(i);
    i -= f.size();
  }
  throw std::out_of_range("FragmentList::at");
}

std::vector<std::byte> FragmentList::to_bytes() const {
  std::vector<std::byte> out;
  out.reserve(size_);
  for (const auto& f : frags_) {
    auto b = f.to_bytes();
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

bool FragmentList::content_equals(const DataView& expect) const {
  if (size_ != expect.size()) return false;
  std::uint64_t pos = 0;
  for (const auto& f : frags_) {
    if (!f.content_equals(expect.slice(pos, f.size()))) return false;
    pos += f.size();
  }
  return true;
}

bool FragmentList::content_equals(const FragmentList& other) const {
  if (size_ != other.size_) return false;
  for (std::uint64_t i = 0; i < size_; ++i) {
    if (at(i) != other.at(i)) return false;  // correctness-checking path; O(n) is fine
  }
  return true;
}

}  // namespace tio
