// Cross-module integration tests: full checkpoint/restart cycles over the
// simulated stack, failure injection, determinism, and scale smoke tests.
#include <gtest/gtest.h>

#include "plfs/mpiio.h"
#include "testbed/testbed.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"

namespace tio {
namespace {

using workloads::Access;
using workloads::JobSpec;
using workloads::run_job;

testbed::Rig::Options small_rig(std::size_t mds = 4) {
  testbed::Rig::Options o;
  o.cluster = testbed::lanl_cluster();
  o.cluster.nodes = 16;
  o.cluster.cores_per_node = 4;
  o.pfs = testbed::lanl_pfs(mds);
  o.num_subdirs = 8;
  return o;
}

TEST(EndToEnd, CheckpointRestartWithMoreReadersThanWriters) {
  // 16 writers checkpoint N-1; 32 readers restart and each verifies a
  // disjoint slice — the classic "restart on a bigger allocation" case.
  testbed::Rig rig(small_rig());
  JobSpec spec;
  spec.file = "grow";
  spec.ops = workloads::strided_ops(256_KiB, 32_KiB);
  spec.target.access = Access::plfs_n1;
  spec.read_nprocs = 32;
  spec.read_ops = workloads::strided_ops(128_KiB, 32_KiB);
  spec.drop_caches_before_read = true;
  const auto result = run_job(rig, 16, spec);
  EXPECT_GT(result.read.io_s, 0);
  EXPECT_EQ(result.read.bytes, 32u * 128_KiB);
}

TEST(EndToEnd, RestartWithFewerReaders) {
  testbed::Rig rig(small_rig());
  JobSpec spec;
  spec.file = "shrink";
  spec.ops = workloads::strided_ops(128_KiB, 32_KiB);
  spec.target.access = Access::plfs_n1;
  spec.read_nprocs = 8;
  spec.read_ops = workloads::strided_ops(512_KiB, 32_KiB);
  const auto result = run_job(rig, 32, spec);
  EXPECT_EQ(result.read.bytes, 8u * 512_KiB);
}

TEST(EndToEnd, MissingIndexLogSurfacesCleanly) {
  // Simulate a lost index dropping: the read-open must fail with an I/O
  // error, not crash or silently return wrong data.
  testbed::Rig rig(small_rig());
  mpi::run_spmd(rig.cluster(), 8, [&rig](mpi::Comm comm) -> sim::Task<void> {
    auto f = co_await plfs::MpiFile::open_write(rig.plfs(), comm, "/victim");
    EXPECT_TRUE(f.ok());
    EXPECT_TRUE((co_await (*f)->write(comm.rank() * 1000, DataView::zeros(1000))).ok());
    EXPECT_TRUE((co_await (*f)->close_write(false)).ok());
  });
  // Corrupt the container: truncate rank 3's index log to a partial record.
  const auto lay = rig.plfs().layout("/victim");
  mpi::run_spmd(rig.cluster(), 1, [&rig, &lay](mpi::Comm comm) -> sim::Task<void> {
    const pfs::IoCtx ctx{0, 0};
    auto fd = co_await rig.pfs().open(ctx, lay.index_log_path(3), pfs::OpenFlags::wr_trunc());
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await rig.pfs().write(ctx, *fd, 0, DataView::zeros(13))).ok());
    EXPECT_TRUE((co_await rig.pfs().close(ctx, *fd)).ok());
    (void)comm;
  });
  mpi::run_spmd(rig.cluster(), 8, [&rig](mpi::Comm comm) -> sim::Task<void> {
    auto f = co_await plfs::MpiFile::open_read(rig.plfs(), comm, "/victim",
                                               plfs::ReadStrategy::parallel_read);
    // The rank that read the truncated log propagates the error; depending
    // on assignment the others may succeed or fail, but nobody crashes.
    if (!f.ok()) {
      EXPECT_EQ(f.status().code(), Errc::io_error);
    } else {
      (void)co_await (*f)->close_read();
    }
  });
}

TEST(EndToEnd, TruncatedDataLogDetectedOnRead) {
  testbed::Rig rig(small_rig());
  mpi::run_spmd(rig.cluster(), 4, [&rig](mpi::Comm comm) -> sim::Task<void> {
    auto f = co_await plfs::MpiFile::open_write(rig.plfs(), comm, "/short");
    EXPECT_TRUE((co_await (*f)->write(comm.rank() * 4096, DataView::zeros(4096))).ok());
    EXPECT_TRUE((co_await (*f)->close_write(false)).ok());
  });
  const auto lay = rig.plfs().layout("/short");
  mpi::run_spmd(rig.cluster(), 1, [&rig, &lay](mpi::Comm comm) -> sim::Task<void> {
    const pfs::IoCtx ctx{0, 0};
    // Data log claims 4096 bytes in its index but now holds only 100.
    auto fd = co_await rig.pfs().open(ctx, lay.data_log_path(2), pfs::OpenFlags::wr_trunc());
    EXPECT_TRUE((co_await rig.pfs().write(ctx, *fd, 0, DataView::zeros(100))).ok());
    EXPECT_TRUE((co_await rig.pfs().close(ctx, *fd)).ok());
    (void)comm;
  });
  mpi::run_spmd(rig.cluster(), 1, [&rig](mpi::Comm comm) -> sim::Task<void> {
    const pfs::IoCtx ctx{0, 0};
    auto rh = co_await rig.plfs().open_read(ctx, "/short");
    EXPECT_TRUE(rh.ok());
    auto data = co_await (*rh)->read(2 * 4096, 4096);  // writer 2's region
    EXPECT_EQ(data.status().code(), Errc::io_error);
    (void)co_await (*rh)->close();
    (void)comm;
  });
}

TEST(EndToEnd, SimulationIsDeterministic) {
  auto run_once = [] {
    testbed::Rig rig(small_rig());
    JobSpec spec;
    spec.file = "det";
    spec.ops = workloads::strided_ops(256_KiB, 32_KiB);
    spec.target.access = Access::plfs_n1;
    const auto r = run_job(rig, 16, spec);
    return std::make_tuple(r.write.total_s(), r.read.total_s(),
                           rig.engine().events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EndToEnd, OversubscribedJobRuns) {
  // More ranks than cores (the paper ran 2048 streams on 1024 cores).
  testbed::Rig rig(small_rig());
  JobSpec spec;
  spec.file = "over";
  spec.ops = workloads::strided_ops(64_KiB, 32_KiB);
  spec.target.access = Access::plfs_n1;
  const auto r = run_job(rig, 256, spec);  // 256 ranks on 64 cores
  EXPECT_GT(r.write.io_s, 0);
  EXPECT_GT(r.read.io_s, 0);
}

TEST(EndToEnd, UnlinkAfterFullCycleLeavesBackendsClean) {
  testbed::Rig rig(small_rig());
  mpi::run_spmd(rig.cluster(), 8, [&rig](mpi::Comm comm) -> sim::Task<void> {
    auto f = co_await plfs::MpiFile::open_write(rig.plfs(), comm, "/temp");
    EXPECT_TRUE((co_await (*f)->write(comm.rank() * 1024, DataView::zeros(1024))).ok());
    EXPECT_TRUE((co_await (*f)->close_write(true)).ok());
    if (comm.rank() == 0) {
      EXPECT_TRUE((co_await rig.plfs().unlink(pfs::IoCtx{0, 0}, "/temp")).ok());
    }
  });
  for (const auto& b : rig.mount().backends) {
    EXPECT_FALSE(rig.pfs().ns().exists(b + "/temp")) << b;
  }
}

TEST(EndToEnd, MixedWorkloadsShareTheRig) {
  // Two different logical files written by different jobs on one rig; both
  // read back intact (no cross-container bleed).
  testbed::Rig rig(small_rig());
  JobSpec a;
  a.file = "job_a";
  a.ops = workloads::strided_ops(128_KiB, 32_KiB);
  a.target.access = Access::plfs_n1;
  a.do_read = false;
  run_job(rig, 8, a);

  JobSpec b = workloads::lanl3(8, 256_KiB, {.access = Access::plfs_n1});
  b.file = "job_b";
  run_job(rig, 8, b);

  a.do_read = true;
  a.do_write = false;
  const auto result = run_job(rig, 8, a);  // verify=true checks content
  EXPECT_GT(result.read.io_s, 0);
}

TEST(EndToEnd, FlattenedFileStillReadableByParallelStrategy) {
  // The global index is an optimization, not a format change: a file closed
  // with Index Flatten must stay readable via the other strategies.
  testbed::Rig rig(small_rig());
  JobSpec spec;
  spec.file = "both";
  spec.ops = workloads::strided_ops(128_KiB, 32_KiB);
  spec.target.access = Access::plfs_n1;
  spec.target.flatten_on_close = true;
  spec.do_read = false;
  run_job(rig, 8, spec);
  for (const auto strategy : {plfs::ReadStrategy::original, plfs::ReadStrategy::index_flatten,
                              plfs::ReadStrategy::parallel_read}) {
    JobSpec read = spec;
    read.do_write = false;
    read.do_read = true;
    read.target.strategy = strategy;
    const auto r = run_job(rig, 8, read);
    EXPECT_GT(r.read.io_s, 0);
  }
}

}  // namespace
}  // namespace tio
