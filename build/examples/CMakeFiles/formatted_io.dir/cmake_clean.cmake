file(REMOVE_RECURSE
  "CMakeFiles/formatted_io.dir/formatted_io.cpp.o"
  "CMakeFiles/formatted_io.dir/formatted_io.cpp.o.d"
  "formatted_io"
  "formatted_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formatted_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
