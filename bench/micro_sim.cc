// Microbenchmarks of the simulator core (google-benchmark): event loop
// throughput, fair-share channel churn, extent-map writes, and the sharded
// drivers (shard-pool scaling and cross-shard window overhead) — these
// bound how large a simulated machine the benches can afford.
//
// Convenience flags (translated to google-benchmark's own):
//   --repeat=N     run every benchmark N times (--benchmark_repetitions)
//   --json=FILE    also write the JSON report to FILE (--benchmark_out)
//   --trace=FILE   write Chrome trace-event JSON of the simulated spans
//   --shards=N     largest shard count the sharded benchmarks sweep to
//                  (validated like the fig benches' --shards)
// Results feed BENCH_sim.json; after the run the sim.engine.* counters are
// printed so pool hit rates are visible next to the throughput numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "pfs/extent_map.h"
#include "sim/engine.h"
#include "sim/fairshare.h"
#include "sim/sharded.h"
#include "sim/sync.h"

namespace tio::sim {
namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      engine.after(Duration::us(i % 977), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(100000);

Task<void> hop(Engine& engine, int hops) {
  for (int i = 0; i < hops; ++i) co_await engine.sleep(Duration::ns(10));
}

void BM_CoroutineHops(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    for (int p = 0; p < 100; ++p) engine.spawn(hop(engine, static_cast<int>(state.range(0))));
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 * state.range(0));
}
BENCHMARK(BM_CoroutineHops)->Arg(1000);

Task<void> one_transfer(FairShareChannel& ch, std::uint64_t bytes) {
  co_await ch.transfer(bytes);
}

void BM_FairShareChurn(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    FairShareChannel ch(engine, 1e9);
    Rng rng(7);
    for (int i = 0; i < state.range(0); ++i) {
      engine.spawn(one_transfer(ch, 1000 + rng.below(100000)));
    }
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FairShareChurn)->Arg(10000);

void BM_ExtentMapRandomWrites(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    pfs::ExtentMap map;
    for (int i = 0; i < state.range(0); ++i) {
      const std::uint64_t off = rng.below(1 << 26);
      map.write(off, DataView::pattern(i, off, 1 + rng.below(1 << 14)));
    }
    benchmark::DoNotOptimize(map.extent_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ExtentMapRandomWrites)->Arg(10000);

// Independent engines spread across a shard pool: the embarrassingly
// parallel shape the fig benches use. Scaling here bounds the wall-clock
// win a multi-core host can see.
void BM_ShardPoolEngines(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  constexpr int kJobs = 8;
  constexpr int kEventsPerJob = 20000;
  for (auto _ : state) {
    ShardPool pool(shards);
    std::vector<std::uint64_t> events(kJobs, 0);
    for (int j = 0; j < kJobs; ++j) {
      pool.submit([&events, j] {
        Engine engine;
        for (int i = 0; i < kEventsPerJob; ++i) {
          engine.after(Duration::us(i % 977), [] {});
        }
        engine.run();
        events[static_cast<std::size_t>(j)] = engine.events_processed();
      });
    }
    pool.run_all();
    benchmark::DoNotOptimize(events.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kJobs * kEventsPerJob);
}

// Cross-shard ping-pong through the conservative window driver: two coupled
// engines exchange messages at just above the lookahead, so every hop costs
// one full window (serial delivery phase plus, beyond one shard, a barrier
// round-trip). This prices the epoch overhead that bounds how tightly
// coupled cross-shard models can afford to be.
void BM_ShardedWindowPing(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  constexpr int kHops = 1000;
  for (auto _ : state) {
    ShardedEngine::Options opts;
    opts.shards = shards;
    opts.lookahead = Duration::us(1);
    ShardedEngine se(opts);
    Engine a;
    Engine b;
    se.adopt(0, a);
    se.adopt(shards > 1 ? 1 : 0, b);
    struct Pinger {
      ShardedEngine* se;
      int left;
      void send(Engine& from, Engine& to) {
        if (left-- <= 0) return;
        se->post(from, to, Duration::us(2), [this, &from, &to] { send(to, from); });
      }
    } ping{&se, kHops};
    ping.send(a, b);
    se.run();
    benchmark::DoNotOptimize(se.windows_run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kHops);
}

// Registered from main: sweeps shard counts 1..max (doubling), where max
// comes from --shards.
void register_sharded_benchmarks(std::size_t max_shards) {
  std::vector<std::int64_t> counts = {1};
  for (std::int64_t s = 2; s <= static_cast<std::int64_t>(max_shards); s *= 2) {
    counts.push_back(s);
  }
  if (counts.back() != static_cast<std::int64_t>(max_shards)) {
    counts.push_back(static_cast<std::int64_t>(max_shards));
  }
  auto* pool_bench = benchmark::RegisterBenchmark("BM_ShardPoolEngines", BM_ShardPoolEngines);
  auto* ping_bench = benchmark::RegisterBenchmark("BM_ShardedWindowPing", BM_ShardedWindowPing);
  for (const std::int64_t c : counts) {
    pool_bench->Arg(c);
    ping_bench->Arg(c);
  }
}

void BM_ExtentMapAppendCoalesce(benchmark::State& state) {
  for (auto _ : state) {
    pfs::ExtentMap map;
    for (int i = 0; i < state.range(0); ++i) {
      const std::uint64_t off = static_cast<std::uint64_t>(i) * 4096;
      map.write(off, DataView::pattern(1, off, 4096));
    }
    if (map.extent_count() != 1) std::abort();  // coalescing must hold
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ExtentMapAppendCoalesce)->Arg(10000);

}  // namespace
}  // namespace tio::sim

int main(int argc, char** argv) {
  // Translate the convenience flags, pass everything else through.
  std::string trace_path;
  long long shards = 1;
  std::vector<std::string> rewritten = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--repeat=", 0) == 0) {
      rewritten.push_back("--benchmark_repetitions=" +
                          std::string(arg.substr(std::strlen("--repeat="))));
    } else if (arg.rfind("--json=", 0) == 0) {
      rewritten.push_back("--benchmark_out_format=json");
      rewritten.push_back("--benchmark_out=" +
                          std::string(arg.substr(std::strlen("--json="))));
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = std::string(arg.substr(std::strlen("--trace=")));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoll(std::string(arg.substr(std::strlen("--shards="))).c_str());
    } else {
      rewritten.emplace_back(arg);
    }
  }
  // Same policy as bench::shards_or_die (bench_util.h pulls in testbed
  // libraries this target does not link, so the check is mirrored here).
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1 (got %lld)\n", shards);
    return 1;
  }
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  const char* oversub = std::getenv("TIO_SHARDS_OVERSUBSCRIBE");
  const bool allow_oversub = oversub != nullptr && oversub[0] == '1';
  if (static_cast<unsigned long long>(shards) > hc && !allow_oversub) {
    std::fprintf(stderr,
                 "--shards=%lld exceeds hardware_concurrency()=%u "
                 "(set TIO_SHARDS_OVERSUBSCRIBE=1 to force)\n",
                 shards, hc);
    return 1;
  }
  if (static_cast<unsigned long long>(shards) > tio::sim::kMaxShards) {
    std::fprintf(stderr, "--shards=%lld exceeds the supported maximum of %zu\n", shards,
                 tio::sim::kMaxShards);
    return 1;
  }
  tio::counter("sim.engine.shards").add(static_cast<std::uint64_t>(shards));
  tio::sim::register_sharded_benchmarks(static_cast<std::size_t>(shards));
  if (!trace_path.empty()) tio::trace::Tracer::instance().set_enabled(true);
  std::vector<char*> bench_argv;
  bench_argv.reserve(rewritten.size());
  for (auto& s : rewritten) bench_argv.push_back(s.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_path.empty()) {
    if (!tio::trace::Tracer::instance().write_chrome_json(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu spans -> %s\n",
                 tio::trace::Tracer::instance().span_count(), trace_path.c_str());
  }
  auto counters = tio::counter_snapshot("sim.engine");
  const auto spills = tio::counter_snapshot("common.fn");
  counters.insert(counters.end(), spills.begin(), spills.end());
  if (!counters.empty()) {
    std::printf("\n-- sim.engine counters --\n");
    for (const auto& [name, value] : counters) {
      std::printf("%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
    }
  }
  return 0;
}
