// Raft replicated log with snapshot-based compaction.
//
// Entries are held as shared_ptr<const LogEntry> so that replication
// fan-out, client waiters, and the apply path all reference the same
// immutable record without copies; a compacted entry stays alive as long
// as any in-flight AppendEntries still carries it. Indices are 1-based as
// in the paper; index 0 is the (empty) snapshot point of a fresh log.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace tio::raft {

using Term = std::uint64_t;
using Index = std::uint64_t;

struct LogEntry {
  Term term = 0;
  std::any cmd;             // empty any = leader no-op barrier entry
  std::uint64_t bytes = 0;  // simulated serialized size on the wire
  std::int64_t append_ns = -1;  // leader-side append time (replication span)
};

class Log {
 public:
  Index snapshot_index() const { return snap_index_; }
  Term snapshot_term() const { return snap_term_; }
  Index first_index() const { return snap_index_ + 1; }
  Index last_index() const { return snap_index_ + entries_.size(); }
  Term last_term() const { return entries_.empty() ? snap_term_ : entries_.back()->term; }
  std::size_t size() const { return entries_.size(); }

  bool has(Index i) const { return i > snap_index_ && i <= last_index(); }

  Term term_at(Index i) const {
    if (i == snap_index_) return snap_term_;
    if (!has(i)) throw std::out_of_range("raft::Log::term_at");
    return entries_[i - snap_index_ - 1]->term;
  }

  const std::shared_ptr<const LogEntry>& at(Index i) const {
    if (!has(i)) throw std::out_of_range("raft::Log::at");
    return entries_[i - snap_index_ - 1];
  }

  void append(std::shared_ptr<const LogEntry> e) { entries_.push_back(std::move(e)); }

  // Drops [i, last_index]; used when a follower finds a term conflict.
  void truncate_from(Index i) {
    if (i <= snap_index_) throw std::logic_error("raft::Log: truncating into snapshot");
    if (i > last_index()) return;
    entries_.resize(i - snap_index_ - 1);
  }

  // Drops entries up to and including `i`; `i` becomes the snapshot point.
  void compact_to(Index i, Term t) {
    if (i <= snap_index_) return;
    if (i > last_index()) throw std::logic_error("raft::Log: compacting past the log");
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(i - snap_index_));
    snap_index_ = i;
    snap_term_ = t;
  }

  // InstallSnapshot on a follower whose log conflicts with (or predates)
  // the snapshot: discard everything and adopt the snapshot point.
  void reset_to_snapshot(Index i, Term t) {
    entries_.clear();
    snap_index_ = i;
    snap_term_ = t;
  }

 private:
  Index snap_index_ = 0;
  Term snap_term_ = 0;
  std::vector<std::shared_ptr<const LogEntry>> entries_;
};

}  // namespace tio::raft
