#include "common/trace.h"

#include <cstdio>
#include <map>

#include "common/jsonfmt.h"

namespace tio::trace {

Tracer& Tracer::instance() {
  static auto* t = new Tracer();  // leaked: spans may outlive static dtors
  return *t;
}

void Tracer::clear() {
  buffers_.clear();
  pid_counter_ = 0;
}

std::uint32_t Tracer::intern(std::string_view s) {
  // Linear scan: interning happens once per call site (SpanSite is static
  // at the call site), and the set of distinct span names is small.
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == s) return i;
  }
  names_.emplace_back(s);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

Tracer::RankBuffer& Tracer::buffer_for(int rank) {
  const auto idx = static_cast<std::size_t>(rank < 0 ? 0 : rank + 1);
  if (idx >= buffers_.size()) buffers_.resize(idx + 1);
  return buffers_[idx];
}

std::uint32_t Tracer::begin_span(int rank, std::uint32_t name_id, std::uint32_t cat_id,
                                 std::uint32_t pid, std::int64_t start_ns) {
  RankBuffer& buf = buffer_for(rank);
  SpanRecord rec;
  rec.name_id = name_id;
  rec.cat_id = cat_id;
  rec.start_ns = start_ns;
  rec.pid = pid;
  // Parent = innermost span of the same rank that is still open *on the
  // same engine*: a fresh rig reuses rank numbers, and its spans must not
  // nest under a finished rig's leftovers.
  rec.parent = 0;
  rec.depth = 0;
  if (!buf.open.empty()) {
    const SpanRecord& top = buf.spans[buf.open.back()];
    if (top.pid == pid) {
      rec.parent = buf.open.back() + 1;
      rec.depth = top.depth + 1;
    }
  }
  const auto index = static_cast<std::uint32_t>(buf.spans.size());
  buf.spans.push_back(rec);
  buf.open.push_back(index);
  return index;
}

void Tracer::end_span(int rank, std::uint32_t record, std::int64_t end_ns) {
  RankBuffer& buf = buffer_for(rank);
  if (record >= buf.spans.size()) return;
  buf.spans[record].end_ns = end_ns;
  // Spans close LIFO per rank in well-formed code; tolerate out-of-order
  // ends (e.g. a moved-from span) by erasing wherever the record sits.
  for (auto it = buf.open.rbegin(); it != buf.open.rend(); ++it) {
    if (*it == record) {
      buf.open.erase(std::next(it).base());
      break;
    }
  }
}

std::size_t Tracer::span_count() const {
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b.spans.size();
  return n;
}

const std::vector<SpanRecord>& Tracer::rank_spans(int rank) const {
  static const std::vector<SpanRecord> empty;
  const auto idx = static_cast<std::size_t>(rank < 0 ? 0 : rank + 1);
  if (idx >= buffers_.size()) return empty;
  return buffers_[idx].spans;
}

std::string Tracer::to_chrome_json() const {
  // Complete ("ph":"X") events; ts/dur are microseconds by the format's
  // definition, emitted with ns resolution. Locale-independent throughout.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out += ",";
    out += "\n";
    out += ev;
    first = false;
  };
  // Name the rank tracks once per (pid, tid) so Perfetto labels them.
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> named;
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    const std::uint32_t tid = static_cast<std::uint32_t>(b);
    const std::string track =
        b == 0 ? std::string("engine") : "rank " + std::to_string(b - 1);
    for (const SpanRecord& rec : buffers_[b].spans) {
      if (rec.end_ns < rec.start_ns) continue;  // never closed
      if (!named[{rec.pid, tid}]) {
        named[{rec.pid, tid}] = true;
        emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(rec.pid) +
             ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":" + json_quote(track) +
             "}}");
      }
      emit("{\"name\":" + json_quote(names_[rec.name_id]) +
           ",\"cat\":" + json_quote(names_[rec.cat_id]) +
           ",\"ph\":\"X\",\"ts\":" + json_double(static_cast<double>(rec.start_ns) / 1e3, 3) +
           ",\"dur\":" + json_double(static_cast<double>(rec.end_ns - rec.start_ns) / 1e3, 3) +
           ",\"pid\":" + std::to_string(rec.pid) + ",\"tid\":" + std::to_string(tid) + "}");
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tio::trace
