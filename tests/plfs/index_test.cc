#include "plfs/index.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "common/rng.h"

namespace tio::plfs {
namespace {

IndexEntry entry(std::uint64_t log, std::uint64_t len, std::uint64_t phys, std::int64_t ts,
                 std::uint32_t writer) {
  return IndexEntry{log, len, phys, ts, writer};
}

TEST(IndexSerialization, RoundTrip) {
  std::vector<IndexEntry> in = {
      entry(0, 100, 0, 1, 0),
      entry(100, 50, 100, 2, 3),
      entry(0, 10, 150, 3, 7),
  };
  const auto bytes = serialize_entries(in);
  EXPECT_EQ(bytes.size(), in.size() * IndexEntry::kSerializedSize);
  FragmentList fl;
  fl.append(DataView::literal(bytes));
  auto out = deserialize_entries(fl);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(IndexSerialization, EmptyIsValid) {
  FragmentList fl;
  auto out = deserialize_entries(fl);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(IndexSerialization, PartialRecordIsError) {
  FragmentList fl;
  fl.append(DataView::zeros(IndexEntry::kSerializedSize + 7));
  EXPECT_EQ(deserialize_entries(fl).status().code(), Errc::io_error);
}

TEST(IndexSerialization, ZeroLengthRecordIsError) {
  std::vector<IndexEntry> in = {entry(0, 100, 0, 1, 0), entry(100, 0, 100, 2, 0)};
  FragmentList fl;
  fl.append(DataView::literal(serialize_entries(in)));
  EXPECT_EQ(deserialize_entries(fl).status().code(), Errc::io_error);
}

TEST(IndexSerialization, LogicalExtentOverflowIsError) {
  std::vector<IndexEntry> in = {
      entry(std::numeric_limits<std::uint64_t>::max() - 10, 100, 0, 1, 0)};
  FragmentList fl;
  fl.append(DataView::literal(serialize_entries(in)));
  EXPECT_EQ(deserialize_entries(fl).status().code(), Errc::io_error);
}

TEST(IndexSerialization, PhysicalExtentOverflowIsError) {
  std::vector<IndexEntry> in = {
      entry(0, 100, std::numeric_limits<std::uint64_t>::max() - 10, 1, 0)};
  FragmentList fl;
  fl.append(DataView::literal(serialize_entries(in)));
  EXPECT_EQ(deserialize_entries(fl).status().code(), Errc::io_error);
}

TEST(IndexSerialization, TruncatedLogIsError) {
  // A log cut off mid-record (e.g. a writer died mid-append) must be
  // rejected wholesale, not parsed up to the tear.
  std::vector<IndexEntry> in = {entry(0, 100, 0, 1, 0), entry(100, 100, 100, 2, 0)};
  const auto bytes = serialize_entries(in);
  const auto whole = DataView::literal(bytes);
  FragmentList fl;
  fl.append(whole.slice(0, bytes.size() - 16));
  EXPECT_EQ(deserialize_entries(fl).status().code(), Errc::io_error);
}

TEST(IndexSerialization, SurvivesFragmentation) {
  std::vector<IndexEntry> in = {entry(1, 2, 3, 4, 5), entry(6, 7, 8, 9, 10)};
  const auto bytes = serialize_entries(in);
  const auto whole = DataView::literal(bytes);
  FragmentList fl;
  fl.append(whole.slice(0, 13));
  fl.append(whole.slice(13, bytes.size() - 13));
  auto out = deserialize_entries(fl);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(BTreeIndex, EmptyIndex) {
  const BTreeIndex idx = BTreeIndex::build({});
  EXPECT_EQ(idx.logical_size(), 0u);
  EXPECT_TRUE(idx.lookup(0, 100).empty());
  EXPECT_EQ(idx.mapping_count(), 0u);
}

TEST(BTreeIndex, SingleEntryLookup) {
  const BTreeIndex idx = BTreeIndex::build({entry(100, 50, 0, 1, 2)});
  auto m = idx.lookup(100, 50);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (IndexView::Mapping{100, 50, 2, 0}));
  EXPECT_EQ(idx.logical_size(), 150u);
}

TEST(BTreeIndex, LookupClipsToRequest) {
  const BTreeIndex idx = BTreeIndex::build({entry(100, 100, 500, 1, 1)});
  auto m = idx.lookup(150, 20);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].logical_offset, 150u);
  EXPECT_EQ(m[0].length, 20u);
  EXPECT_EQ(m[0].physical_offset, 550u);
}

TEST(BTreeIndex, LaterTimestampWinsOnOverlap) {
  const BTreeIndex idx = BTreeIndex::build({
      entry(0, 100, 0, /*ts=*/10, /*writer=*/1),
      entry(40, 20, 0, /*ts=*/20, /*writer=*/2),
  });
  auto m = idx.lookup(0, 100);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].writer, 1u);
  EXPECT_EQ(m[0].length, 40u);
  EXPECT_EQ(m[1].writer, 2u);
  EXPECT_EQ(m[1].length, 20u);
  EXPECT_EQ(m[2].writer, 1u);
  EXPECT_EQ(m[2].logical_offset, 60u);
  EXPECT_EQ(m[2].physical_offset, 60u);  // split keeps physical alignment
}

TEST(BTreeIndex, BuildOrderDoesNotMatterTimestampsDo) {
  const std::vector<IndexEntry> forward = {entry(0, 100, 0, 10, 1), entry(40, 20, 0, 20, 2)};
  const std::vector<IndexEntry> reversed = {entry(40, 20, 0, 20, 2), entry(0, 100, 0, 10, 1)};
  const BTreeIndex a = BTreeIndex::build(forward);
  const BTreeIndex b = BTreeIndex::build(reversed);
  EXPECT_EQ(a.lookup(0, 100), b.lookup(0, 100));
}

TEST(BTreeIndex, OlderEntryNeverClobbersNewer) {
  const BTreeIndex idx = BTreeIndex::build({
      entry(0, 50, 0, /*ts=*/30, 1),   // newest, inserted last by sort
      entry(0, 100, 0, /*ts=*/10, 2),  // oldest
  });
  auto m = idx.lookup(0, 100);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].writer, 1u);
  EXPECT_EQ(m[0].length, 50u);
  EXPECT_EQ(m[1].writer, 2u);
  EXPECT_EQ(m[1].logical_offset, 50u);
}

TEST(BTreeIndex, GapsAreOmittedFromLookup) {
  const BTreeIndex idx = BTreeIndex::build({entry(0, 10, 0, 1, 1), entry(100, 10, 10, 2, 1)});
  auto m = idx.lookup(0, 200);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].logical_offset, 0u);
  EXPECT_EQ(m[1].logical_offset, 100u);
  EXPECT_EQ(idx.logical_size(), 110u);
}

TEST(BTreeIndex, CompressesContiguousSameWriterEntries) {
  // A sequential writer: 100 entries, logically and physically contiguous.
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back(entry(i * 1000, 1000, i * 1000, i + 1, 4));
  }
  const BTreeIndex idx = BTreeIndex::build(entries);
  EXPECT_EQ(idx.mapping_count(), 1u);
  EXPECT_EQ(idx.logical_size(), 100000u);
  auto m = idx.lookup(55500, 1000);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].physical_offset, 55500u);
}

TEST(BTreeIndex, DoesNotCompressAcrossWriters) {
  const BTreeIndex idx = BTreeIndex::build({entry(0, 10, 0, 1, 1), entry(10, 10, 0, 2, 2)});
  EXPECT_EQ(idx.mapping_count(), 2u);
}

TEST(BTreeIndex, DoesNotCompressNonContiguousPhysical) {
  // N-1 strided writer: logical gaps between its records.
  const BTreeIndex idx = BTreeIndex::build({entry(0, 10, 0, 1, 1), entry(100, 10, 10, 2, 1)});
  EXPECT_EQ(idx.mapping_count(), 2u);
}

TEST(BTreeIndex, StridedPatternFromManyWritersStaysPerRecord) {
  // 4 writers, stride 4: writer w owns records w, w+4, w+8 ... nothing
  // merges because neighbours in logical space come from different writers.
  std::vector<IndexEntry> entries;
  const std::uint64_t rec = 100;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t w = i % 4;
    entries.push_back(entry(i * rec, rec, (i / 4) * rec, i + 1, w));
  }
  const BTreeIndex idx = BTreeIndex::build(entries);
  EXPECT_EQ(idx.mapping_count(), 64u);
  // But every byte is mapped.
  auto m = idx.lookup(0, 64 * rec);
  EXPECT_EQ(m.size(), 64u);
}

TEST(BTreeIndex, ToEntriesRoundTripsThroughBuild) {
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 10; ++i) entries.push_back(entry(i * 7, 7, i * 13, i, i % 3));
  const BTreeIndex idx = BTreeIndex::build(entries);
  const BTreeIndex again = BTreeIndex::build(idx.to_entries());
  EXPECT_EQ(idx.lookup(0, 100), again.lookup(0, 100));
  EXPECT_EQ(idx.logical_size(), again.logical_size());
}

TEST(BTreeIndex, SerializedBytesTracksMappingCount) {
  const BTreeIndex idx = BTreeIndex::build({entry(0, 10, 0, 1, 1), entry(20, 10, 10, 2, 1)});
  EXPECT_EQ(idx.serialized_bytes(), 2 * IndexEntry::kSerializedSize);
}

// Property test: random overlapping writes from several writers; the index
// must agree with a byte-level reference that applies writes in timestamp
// order.
class IndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexProperty, MatchesReferenceUnderRandomOverlappingWrites) {
  Rng rng(GetParam());
  constexpr std::uint64_t kSize = 2000;
  constexpr int kWriters = 4;
  // reference[i] = (writer, physical offset) or (-1, 0) for holes.
  std::vector<std::pair<int, std::uint64_t>> ref(kSize, {-1, 0});
  std::vector<IndexEntry> entries;
  std::vector<std::uint64_t> phys(kWriters, 0);

  for (int op = 0; op < 200; ++op) {
    const auto writer = static_cast<std::uint32_t>(rng.below(kWriters));
    const std::uint64_t off = rng.below(kSize - 1);
    const std::uint64_t len = 1 + rng.below(std::min<std::uint64_t>(kSize - off, 97) - 1 + 1);
    entries.push_back(entry(off, len, phys[writer], op + 1, writer));
    for (std::uint64_t i = 0; i < len; ++i) {
      ref[off + i] = {static_cast<int>(writer), phys[writer] + i};
    }
    phys[writer] += len;
  }
  // Shuffle entry order to prove build() re-sorts by timestamp.
  for (std::size_t i = entries.size(); i > 1; --i) {
    std::swap(entries[i - 1], entries[rng.below(i)]);
  }
  const BTreeIndex idx = BTreeIndex::build(entries);

  // Reconstruct a byte-level view from lookups and compare.
  std::vector<std::pair<int, std::uint64_t>> got(kSize, {-1, 0});
  for (const auto& m : idx.lookup(0, kSize)) {
    for (std::uint64_t i = 0; i < m.length; ++i) {
      got[m.logical_offset + i] = {static_cast<int>(m.writer), m.physical_offset + i};
    }
  }
  EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexProperty, ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace tio::plfs
