file(REMOVE_RECURSE
  "CMakeFiles/fig5_kernels.dir/fig5_kernels.cc.o"
  "CMakeFiles/fig5_kernels.dir/fig5_kernels.cc.o.d"
  "fig5_kernels"
  "fig5_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
