// Ablation: Parallel Index Read group fan-out.
//
// The two-level aggregation (members -> leader, leaders <-> leaders) has a
// tunable group size; sqrt(N) balances the two tiers. This sweep shows
// read-open time across group sizes, including the degenerate ends: groups
// of 1 (every rank is a leader: the leader exchange becomes all-to-all
// over N ranks) and one group of N (a single leader gathers everything).
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  FlagSet flags("ablation_group_size: Parallel Index Read group size sweep");
  auto* procs = flags.add_i64("procs", 256, "reader processes");
  auto* shards_flag = bench::add_shards_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const std::size_t shards = bench::shards_or_die(*shards_flag);
  const int n = static_cast<int>(*procs);

  bench::print_header("Ablation — Parallel Index Read group size",
                      "sqrt(N) balances member and leader tiers");
  Table t({"group size", "groups", "read open (s)"});
  std::vector<std::size_t> sizes = {1, 4};
  std::size_t root = 1;
  while (root * root < static_cast<std::size_t>(n)) ++root;
  sizes.push_back(root);
  sizes.push_back(static_cast<std::size_t>(n) / 4);
  sizes.push_back(static_cast<std::size_t>(n));

  // Each group size is an independent rig/simulation; the pool spreads rows
  // across shard threads in the serial bench's submission order.
  std::vector<double> opens(sizes.size(), 0.0);
  sim::ShardPool pool(shards);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t g = sizes[i];
    if (g == 0) continue;
    pool.submit([&opens, i, g, n] {
      testbed::Rig rig(bench::lanl_rig());
      rig.mount().parallel_read_group = g;
      plfs::Plfs plfs(rig.pfs(), rig.mount());
      const OpGen ops = strided_ops(4_MiB, 64_KiB);

      double open_s = 0;
      mpi::run_spmd(rig.cluster(), n, [&](mpi::Comm comm) -> sim::Task<void> {
        auto wf = co_await plfs::MpiFile::open_write(plfs, comm, "/g");
        if (!wf.ok()) throw std::runtime_error(wf.status().to_string());
        for (const auto& op : ops(comm.rank(), comm.size())) {
          (void)co_await (*wf)->write(op.offset, DataView::pattern(1, op.offset, op.len));
        }
        (void)co_await (*wf)->close_write(false);
        co_await comm.barrier();
        const TimePoint t0 = comm.engine().now();
        auto rf = co_await plfs::MpiFile::open_read(plfs, comm, "/g",
                                                    plfs::ReadStrategy::parallel_read);
        if (!rf.ok()) throw std::runtime_error(rf.status().to_string());
        if (comm.rank() == 0) open_s = (comm.engine().now() - t0).to_seconds();
        (void)co_await (*rf)->close_read();
      });
      opens[i] = open_s;
    });
  }
  pool.run_all();

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t g = sizes[i];
    if (g == 0) continue;
    t.add_row({std::to_string(g), std::to_string((n + static_cast<int>(g) - 1) / static_cast<int>(g)),
               Table::num(opens[i], 3)});
  }
  t.print(std::cout);
  bench::print_sim_counters();
  return 0;
}
