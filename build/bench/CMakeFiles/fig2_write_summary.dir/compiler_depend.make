# Empty compiler generated dependencies file for fig2_write_summary.
# This may be replaced when dependencies are built.
