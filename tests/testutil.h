// Shared helpers for driving coroutine APIs from synchronous test bodies.
#pragma once

#include <optional>
#include <utility>

#include "sim/engine.h"
#include "sim/task.h"

namespace tio::test {

// Spawns `task`, runs the engine until idle, returns the task's value.
template <typename T>
T run_task(sim::Engine& engine, sim::Task<T> task) {
  std::optional<T> out;
  engine.spawn([](sim::Task<T> t, std::optional<T>& slot) -> sim::Task<void> {
    slot.emplace(co_await std::move(t));
  }(std::move(task), out));
  engine.run();
  return std::move(*out);
}

inline void run_task(sim::Engine& engine, sim::Task<void> task) {
  engine.spawn(std::move(task));
  engine.run();
}

}  // namespace tio::test
