#include "plfs/vfs.h"

namespace tio::plfs {

sim::Task<Result<PlfsVfs::Fd>> PlfsVfs::open(pfs::IoCtx ctx, std::string path,
                                             pfs::OpenFlags flags) {
  if (flags.read && flags.write) {
    co_return error(Errc::unsupported,
                    "PLFS does not support read-write opens (see paper, Section IV-D3)");
  }
  if (flags.write) {
    auto wh = co_await plfs_->open_write(ctx, std::move(path), next_writer_id_++);
    if (!wh.ok()) co_return wh.status();
    const Fd fd = next_fd_++;
    writers_[fd] = std::move(wh.value());
    co_return fd;
  }
  if (!flags.read) co_return error(Errc::invalid, "open needs read or write");
  // Uncoordinated read: this descriptor aggregates the index on its own.
  auto rh = co_await plfs_->open_read(ctx, std::move(path));
  if (!rh.ok()) co_return rh.status();
  const Fd fd = next_fd_++;
  readers_[fd] = std::move(rh.value());
  co_return fd;
}

sim::Task<Result<std::uint64_t>> PlfsVfs::pwrite(pfs::IoCtx ctx, Fd fd, std::uint64_t offset,
                                                 DataView data) {
  (void)ctx;
  const auto it = writers_.find(fd);
  if (it == writers_.end()) {
    co_return error(readers_.contains(fd) ? Errc::permission : Errc::bad_handle, "pwrite");
  }
  const std::uint64_t len = data.size();
  TIO_CO_RETURN_IF_ERROR(co_await it->second->write(offset, std::move(data)));
  co_return len;
}

sim::Task<Result<FragmentList>> PlfsVfs::pread(pfs::IoCtx ctx, Fd fd, std::uint64_t offset,
                                               std::uint64_t len) {
  (void)ctx;
  const auto it = readers_.find(fd);
  if (it == readers_.end()) {
    co_return error(writers_.contains(fd) ? Errc::permission : Errc::bad_handle, "pread");
  }
  co_return co_await it->second->read(offset, len);
}

sim::Task<Status> PlfsVfs::close(pfs::IoCtx ctx, Fd fd) {
  (void)ctx;
  if (const auto it = writers_.find(fd); it != writers_.end()) {
    const Status st = co_await it->second->close();
    writers_.erase(it);
    co_return st;
  }
  if (const auto it = readers_.find(fd); it != readers_.end()) {
    const Status st = co_await it->second->close();
    readers_.erase(it);
    co_return st;
  }
  co_return error(Errc::bad_handle, "close");
}

sim::Task<Result<pfs::StatInfo>> PlfsVfs::stat(pfs::IoCtx ctx, const std::string& path) {
  TIO_CO_ASSIGN_OR_RETURN(bool container, co_await plfs_->is_container(ctx, path));
  if (container) {
    // Logical size comes from the droppings — no index aggregation.
    TIO_CO_ASSIGN_OR_RETURN(std::uint64_t size, co_await plfs_->logical_size(ctx, path));
    pfs::StatInfo info;
    info.is_dir = false;
    info.size = size;
    co_return info;
  }
  // Plain directory (or missing): consult the canonical backend.
  const ContainerLayout lay = plfs_->layout(path);
  co_return co_await plfs_->backend_fs().stat(ctx, lay.canonical_container());
}

sim::Task<Result<std::vector<pfs::DirEntry>>> PlfsVfs::readdir(pfs::IoCtx ctx,
                                                               std::string dir) {
  co_return co_await plfs_->readdir(ctx, std::move(dir));
}

sim::Task<Status> PlfsVfs::mkdir(pfs::IoCtx ctx, std::string dir) {
  co_return co_await plfs_->mkdir(ctx, std::move(dir));
}

sim::Task<Status> PlfsVfs::unlink(pfs::IoCtx ctx, const std::string& path) {
  co_return co_await plfs_->unlink(ctx, path);
}

}  // namespace tio::plfs
