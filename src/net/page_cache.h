// Per-node page cache model: block-granular LRU over (object, block) keys.
//
// Only residency is tracked, never content — content always comes from the
// file system's extent maps, so a cache hit changes timing, not data.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace tio::net {

struct ByteRange {
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  friend bool operator==(const ByteRange&, const ByteRange&) = default;
};

class PageCache {
 public:
  PageCache(std::uint64_t capacity_bytes, std::uint64_t block_bytes);

  // Marks the blocks covering [offset, offset+len) of `object` resident
  // (called on write and on read-miss fill).
  void fill(std::uint64_t object, std::uint64_t offset, std::uint64_t len);

  // Returns the number of bytes of [offset, offset+len) served by cache and
  // refreshes LRU for the hit blocks. When `misses` is non-null, the
  // coalesced uncached sub-ranges are appended to it.
  std::uint64_t lookup(std::uint64_t object, std::uint64_t offset, std::uint64_t len,
                       std::vector<ByteRange>* misses = nullptr);

  // Drops every block of `object` (e.g. on unlink).
  void invalidate_object(std::uint64_t object);
  void clear();

  std::uint64_t resident_bytes() const { return static_cast<std::uint64_t>(map_.size()) * block_; }
  std::uint64_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t hit_bytes = 0;
    std::uint64_t miss_bytes = 0;
    std::uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Key {
    std::uint64_t object;
    std::uint64_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  void touch(std::uint64_t object, std::uint64_t block);

  std::uint64_t capacity_;
  std::uint64_t block_;
  std::uint64_t max_blocks_;
  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> map_;
  Stats stats_;
};

}  // namespace tio::net
