// TinyNC: a miniature Parallel-NetCDF-like formatting layer.
//
// Reproduces the access-pattern shape that pnetcdf imposes on applications
// such as Pixie3D (paper Section IV-D1): a small header written by rank 0,
// followed by fixed-size record variables laid out contiguously, each rank
// writing/reading its own slab of every variable. The header is real bytes:
// read_all parses what write_all serialized.
#pragma once

#include <string>
#include <vector>

#include "iolib/io_fn.h"
#include "mpisim/comm.h"

namespace tio::iolib {

struct NcVar {
  std::string name;               // <= 23 chars
  std::uint64_t bytes_per_proc;   // slab size per process
};

class TinyNc {
 public:
  static constexpr std::uint64_t kHeaderBytes = 4096;
  static constexpr std::uint32_t kMagic = 0x31434e54;  // "TNC1"

  // Total file size for a given process count.
  static std::uint64_t total_bytes(int nprocs, const std::vector<NcVar>& vars);
  // Absolute offset of rank's slab of variable v.
  static std::uint64_t slab_offset(int rank, int nprocs, const std::vector<NcVar>& vars,
                                   std::size_t v);

  // Collective define+write: rank 0 writes the header; every rank writes its
  // slab of every variable with pattern(seed, absolute offset) content.
  static sim::Task<Status> write_all(mpi::Comm& comm, const WriteFn& write,
                                     std::vector<NcVar> vars, std::uint64_t seed);
  // Collective read: rank 0 reads and parses the header and broadcasts the
  // variable table; each rank reads its slabs, verifying content when
  // `verify` is set. The parsed schema is returned through `vars_out` when
  // non-null.
  static sim::Task<Status> read_all(mpi::Comm& comm, const ReadFn& read, std::uint64_t seed,
                                    bool verify, std::vector<NcVar>* vars_out = nullptr);

  static std::vector<std::byte> serialize_header(const std::vector<NcVar>& vars);
  static Result<std::vector<NcVar>> parse_header(const FragmentList& data);
};

}  // namespace tio::iolib
