// Move-only type-erased callable (std::move_only_function is C++23; we build
// on C++20). Used for simulator events, which capture move-only state such
// as coroutine tasks.
#pragma once

#include <memory>
#include <utility>

namespace tio {

template <typename Sig>
class MoveFn;

template <typename R, typename... Args>
class MoveFn<R(Args...)> {
 public:
  MoveFn() = default;
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, MoveFn>)
  MoveFn(F&& f) : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  MoveFn(MoveFn&&) noexcept = default;
  MoveFn& operator=(MoveFn&&) noexcept = default;

  explicit operator bool() const { return impl_ != nullptr; }
  R operator()(Args... args) { return impl_->call(std::forward<Args>(args)...); }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual R call(Args... args) = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F f) : fn(std::move(f)) {}
    R call(Args... args) override { return fn(std::forward<Args>(args)...); }
    F fn;
  };
  std::unique_ptr<Base> impl_;
};

}  // namespace tio
