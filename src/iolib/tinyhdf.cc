#include "iolib/tinyhdf.h"

#include <cstring>

#include "common/rng.h"

namespace tio::iolib {

TinyHdf::Layout TinyHdf::layout_for(std::uint64_t dataset_bytes, std::uint64_t chunk_bytes) {
  Layout l;
  l.chunk_bytes = chunk_bytes;
  l.num_chunks = (dataset_bytes + chunk_bytes - 1) / chunk_bytes;
  l.btree_offset = kSuperblockBytes;
  l.data_offset = l.btree_offset + l.num_chunks * kChunkRecordBytes;
  l.file_bytes = l.data_offset + l.num_chunks * chunk_bytes;
  return l;
}

std::vector<std::byte> TinyHdf::serialize_superblock(const Layout& layout) {
  std::vector<std::byte> out(kSuperblockBytes, std::byte{0});
  auto put = [&out](std::size_t at, const void* src, std::size_t n) {
    std::memcpy(out.data() + at, src, n);
  };
  put(0, &kMagic, 4);
  put(8, &layout.chunk_bytes, 8);
  put(16, &layout.num_chunks, 8);
  put(24, &layout.btree_offset, 8);
  put(32, &layout.data_offset, 8);
  put(40, &layout.file_bytes, 8);
  return out;
}

Result<TinyHdf::Layout> TinyHdf::parse_superblock(const FragmentList& data) {
  if (data.size() < kSuperblockBytes) return error(Errc::io_error, "TinyHdf: short superblock");
  const auto bytes = data.to_bytes();
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  if (magic != kMagic) return error(Errc::io_error, "TinyHdf: bad magic");
  Layout l;
  std::memcpy(&l.chunk_bytes, bytes.data() + 8, 8);
  std::memcpy(&l.num_chunks, bytes.data() + 16, 8);
  std::memcpy(&l.btree_offset, bytes.data() + 24, 8);
  std::memcpy(&l.data_offset, bytes.data() + 32, 8);
  std::memcpy(&l.file_bytes, bytes.data() + 40, 8);
  if (l.chunk_bytes == 0) return error(Errc::io_error, "TinyHdf: zero chunk size");
  return l;
}

namespace {

// Chunk record content: a deterministic function of (chunk, layout) so that
// readers can verify metadata integrity.
DataView chunk_record(const TinyHdf::Layout& layout, std::uint64_t chunk) {
  return DataView::pattern(hash_combine(layout.data_offset, chunk),
                           0, TinyHdf::kChunkRecordBytes);
}

}  // namespace

sim::Task<Status> TinyHdf::write_all(mpi::Comm& comm, const WriteFn& write,
                                     std::uint64_t dataset_bytes, std::uint64_t chunk_bytes,
                                     std::uint64_t seed) {
  const Layout layout = layout_for(dataset_bytes, chunk_bytes);
  if (comm.rank() == 0) {
    TIO_CO_RETURN_IF_ERROR(co_await write(0, DataView::literal(serialize_superblock(layout))));
  }
  for (std::uint64_t c = comm.rank(); c < layout.num_chunks;
       c += static_cast<std::uint64_t>(comm.size())) {
    // Small scattered metadata record, then the chunk payload.
    TIO_CO_RETURN_IF_ERROR(
        co_await write(layout.btree_offset + c * kChunkRecordBytes, chunk_record(layout, c)));
    const std::uint64_t off = layout.data_offset + c * layout.chunk_bytes;
    TIO_CO_RETURN_IF_ERROR(co_await write(off, DataView::pattern(seed, off, layout.chunk_bytes)));
  }
  co_await comm.barrier();
  co_return Status::Ok();
}

sim::Task<Status> TinyHdf::read_all(mpi::Comm& comm, const ReadFn& read, std::uint64_t seed,
                                    bool verify, Layout* layout_out) {
  std::shared_ptr<const Layout> layout;
  if (comm.rank() == 0) {
    auto sb = co_await read(0, kSuperblockBytes);
    if (!sb.ok()) co_return sb.status();
    auto parsed = parse_superblock(*sb);
    if (!parsed.ok()) co_return parsed.status();
    layout = std::make_shared<const Layout>(parsed.value());
  }
  layout = co_await comm.bcast(0, std::move(layout), 48);

  for (std::uint64_t c = comm.rank(); c < layout->num_chunks;
       c += static_cast<std::uint64_t>(comm.size())) {
    auto record = co_await read(layout->btree_offset + c * kChunkRecordBytes, kChunkRecordBytes);
    if (!record.ok()) co_return record.status();
    if (verify && !record->content_equals(chunk_record(*layout, c))) {
      co_return error(Errc::io_error, "TinyHdf: chunk record mismatch");
    }
    const std::uint64_t off = layout->data_offset + c * layout->chunk_bytes;
    auto chunk = co_await read(off, layout->chunk_bytes);
    if (!chunk.ok()) co_return chunk.status();
    if (chunk->size() != layout->chunk_bytes) {
      co_return error(Errc::io_error, "TinyHdf: short chunk read");
    }
    if (verify && !chunk->content_equals(DataView::pattern(seed, off, layout->chunk_bytes))) {
      co_return error(Errc::io_error, "TinyHdf: chunk content mismatch");
    }
  }
  if (layout_out != nullptr) *layout_out = *layout;
  co_await comm.barrier();
  co_return Status::Ok();
}

}  // namespace tio::iolib
