#include "raft/raft.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "mpisim/tag_registry.h"
#include "sim/server.h"
#include "sim/sync.h"

namespace tio::raft {

namespace {

// Message kinds, allocated from the registry's Raft RPC block.
constexpr int kTagRequestVote = mpi::kRaftRpcTags.base + 0;
constexpr int kTagVoteReply = mpi::kRaftRpcTags.base + 1;
constexpr int kTagAppendEntries = mpi::kRaftRpcTags.base + 2;
constexpr int kTagAppendReply = mpi::kRaftRpcTags.base + 3;
constexpr int kTagInstallSnapshot = mpi::kRaftRpcTags.base + 4;
static_assert(kTagInstallSnapshot < mpi::kRaftRpcTags.end());

struct RequestVote {
  Term term = 0;
  int candidate = -1;
  Index last_index = 0;
  Term last_term = 0;
};
struct VoteReply {
  Term term = 0;
  bool granted = false;
};
struct AppendEntries {
  Term term = 0;
  int leader = -1;
  Index prev_index = 0;
  Term prev_term = 0;
  std::vector<std::shared_ptr<const LogEntry>> entries;
  Index commit = 0;
};
struct AppendReply {
  Term term = 0;
  bool success = false;
  Index match = 0;  // on failure: follower's best hint for next_index - 1
};
struct InstallSnapshot {
  Term term = 0;
  int leader = -1;
  Index last_index = 0;
  Term last_term = 0;
};

// Simulated wire sizes (headers; entry payloads add their own bytes).
constexpr std::uint64_t kVoteBytes = 48;
constexpr std::uint64_t kReplyBytes = 32;
constexpr std::uint64_t kAppendHeaderBytes = 64;
constexpr std::uint64_t kEntryHeaderBytes = 32;

struct RaftCounters {
  Counter& submits = counter("raft.submits");
  Counter& reads = counter("raft.reads");
  Counter& elections_started = counter("raft.elections_started");
  Counter& elections_won = counter("raft.elections_won");
  Counter& heartbeats = counter("raft.heartbeats");
  Counter& append_rpcs = counter("raft.append_rpcs");
  Counter& commits = counter("raft.commits");
  Counter& applies = counter("raft.applies");
  Counter& redirects = counter("raft.redirects");
  Counter& election_waits = counter("raft.election_waits");
  Counter& client_timeouts = counter("raft.client_timeouts");
  Counter& appends_suppressed = counter("raft.appends_suppressed");
  Counter& snapshots_sent = counter("raft.snapshots_sent");
  Counter& snapshots_installed = counter("raft.snapshots_installed");
  Counter& compactions = counter("raft.compactions");
  Counter& msgs_dropped = counter("raft.msgs_dropped");
  Counter& crashes = counter("raft.crashes");
  Counter& restarts = counter("raft.restarts");
};

RaftCounters& rc() {
  static RaftCounters counters;
  return counters;
}

const trace::SpanSite& election_site() {
  static trace::SpanSite site("raft", "raft.election");
  return site;
}
const trace::SpanSite& replication_site() {
  static trace::SpanSite site("raft", "raft.replication");
  return site;
}
// Client-observed failover latency: first failed attempt -> eventual
// success. This histogram is the acceptance metric for leader-crash runs.
const trace::SpanSite& failover_site() {
  static trace::SpanSite site("raft", "raft.failover");
  return site;
}

template <typename T>
T cast_msg(std::any& msg) {
  return std::any_cast<T>(std::move(msg));
}

}  // namespace

struct Group::ReplyState {
  explicit ReplyState(sim::Engine& e) : gate(e) {}
  sim::Gate gate;
  bool done = false;        // applied at the leader; result is valid
  bool not_leader = false;  // leadership lost before commit
  int hint = -1;
  std::shared_ptr<const std::any> result;
};

struct Group::Node {
  enum class Role { follower, candidate, leader };

  Node(sim::Engine& engine, std::size_t cluster_node, std::size_t concurrency, Rng rng_in,
       std::string name)
      : node_id(cluster_node),
        rng(rng_in),
        server(std::make_unique<sim::FcfsServer>(engine, concurrency, std::move(name))) {}

  // Persistent state (survives crash/restart).
  Term term = 0;
  int voted_for = -1;
  Log log;

  // Volatile state.
  Role role = Role::follower;
  int known_leader = -1;
  bool down = false;
  bool partitioned = false;
  Index commit = 0;
  Index applied = 0;
  bool applying = false;
  std::uint64_t timer_gen = 0;
  std::int64_t candidacy_start_ns = -1;

  // Leader state.
  std::vector<Index> next, match;
  // Append pipelining (config.pipeline_appends): one outstanding
  // AppendEntries per peer; coalesced follow-ups ride the reply.
  std::vector<char> append_inflight, append_pending;
  std::vector<bool> granted;
  std::size_t votes = 0;
  std::map<Index, std::shared_ptr<ReplyState>> waiters;

  std::size_t node_id = 0;
  Rng rng;
  std::unique_ptr<sim::FcfsServer> server;
};

Group::Group(sim::Engine& engine, net::Cluster& cluster, StateMachine& sm, RaftConfig config,
             std::size_t group_id, std::vector<std::size_t> nodes)
    : engine_(engine), cluster_(cluster), sm_(sm), config_(config), group_id_(group_id) {
  if (nodes.size() != config_.replicas) {
    throw std::invalid_argument("raft::Group: placement size != replicas");
  }
  nodes_.reserve(config_.replicas);
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    nodes_.push_back(std::make_unique<Node>(
        engine_, nodes[r], config_.server_concurrency,
        engine_.fork_rng(hash_combine(0x4af7u, group_id_ * 251 + r)),
        "raft-g" + std::to_string(group_id_) + "-r" + std::to_string(r)));
  }
  // Bootstrap: hold the group active until the first leader emerges, then
  // park if no client operation has arrived yet.
  bootstrap_active_ = true;
  unpark();
}

Group::~Group() = default;

// ---------------------------------------------------------------- transport

void Group::send(std::size_t from, std::size_t to, int tag, std::any msg, std::uint64_t bytes) {
  engine_.spawn(deliver(from, to, tag, std::move(msg), bytes));
}

sim::Task<void> Group::deliver(std::size_t from, std::size_t to, int tag, std::any msg,
                               std::uint64_t bytes) {
  co_await engine_.sleep(config_.rpc_overhead);
  co_await cluster_.fabric_transfer(nodes_[from]->node_id, nodes_[to]->node_id, bytes);
  Node& src = *nodes_[from];
  Node& dst = *nodes_[to];
  // Evaluated at delivery time: a replica that crashed or got partitioned
  // while the message was in flight loses it.
  if (dst.down || src.partitioned != dst.partitioned) {
    rc().msgs_dropped.add();
    co_return;
  }
  dispatch(to, from, tag, std::move(msg));
}

sim::Task<void> Group::reply_latency(std::size_t from_node, std::size_t to_node,
                                     std::uint64_t bytes) {
  co_await engine_.sleep(config_.rpc_overhead);
  co_await cluster_.fabric_transfer(from_node, to_node, bytes);
}

void Group::dispatch(std::size_t me, std::size_t from, int tag, std::any msg) {
  Node& n = *nodes_[me];
  switch (tag - mpi::kRaftRpcTags.base) {
    case kTagRequestVote - mpi::kRaftRpcTags.base: {
      auto rv = cast_msg<RequestVote>(msg);
      if (rv.term > n.term) step_down(me, rv.term);
      bool grant = false;
      if (rv.term == n.term && n.role == Node::Role::follower &&
          (n.voted_for < 0 || n.voted_for == rv.candidate)) {
        const bool up_to_date =
            rv.last_term > n.log.last_term() ||
            (rv.last_term == n.log.last_term() && rv.last_index >= n.log.last_index());
        if (up_to_date) {
          grant = true;
          n.voted_for = rv.candidate;
          if (running_) arm_election(me);
        }
      }
      send(me, from, kTagVoteReply, VoteReply{n.term, grant}, kReplyBytes);
      break;
    }
    case kTagVoteReply - mpi::kRaftRpcTags.base: {
      auto vr = cast_msg<VoteReply>(msg);
      if (vr.term > n.term) {
        step_down(me, vr.term);
        break;
      }
      if (n.role != Node::Role::candidate || vr.term != n.term) break;
      if (vr.granted && !n.granted[from]) {
        n.granted[from] = true;
        if (++n.votes > config_.replicas / 2) become_leader(me);
      }
      break;
    }
    case kTagAppendEntries - mpi::kRaftRpcTags.base: {
      auto ae = cast_msg<AppendEntries>(msg);
      if (ae.term > n.term) step_down(me, ae.term);
      if (ae.term < n.term) {
        send(me, from, kTagAppendReply, AppendReply{n.term, false, 0}, kReplyBytes);
        break;
      }
      // Valid leader for our term.
      n.known_leader = ae.leader;
      leader_hint_ = ae.leader;
      n.candidacy_start_ns = -1;
      if (n.role != Node::Role::follower) step_down(me, ae.term);
      if (running_) arm_election(me);

      // Entries at or below our snapshot point are committed and applied
      // already; skip them and anchor the consistency check at the
      // snapshot (which the leader, holding every committed entry, agrees
      // with by construction).
      Index prev = ae.prev_index;
      auto first = ae.entries.begin();
      if (prev < n.log.snapshot_index()) {
        const Index skip = n.log.snapshot_index() - prev;
        first += static_cast<std::ptrdiff_t>(
            std::min<Index>(skip, static_cast<Index>(ae.entries.size())));
        prev = n.log.snapshot_index();
      }
      bool consistent;
      if (prev > n.log.last_index()) {
        consistent = false;
      } else if (prev == n.log.snapshot_index()) {
        consistent = true;
      } else {
        consistent = n.log.term_at(prev) == ae.prev_term;
      }
      if (!consistent) {
        const Index hint = std::min(n.log.last_index(), prev > 0 ? prev - 1 : 0);
        send(me, from, kTagAppendReply, AppendReply{n.term, false, hint}, kReplyBytes);
        break;
      }
      Index idx = prev;
      for (auto it = first; it != ae.entries.end(); ++it) {
        ++idx;
        if (n.log.has(idx)) {
          if (n.log.term_at(idx) == (*it)->term) continue;
          n.log.truncate_from(idx);
        }
        n.log.append(*it);
      }
      const Index match = std::max(prev, idx);
      if (ae.commit > n.commit) {
        n.commit = std::min(ae.commit, n.log.last_index());
        schedule_apply(me);
      }
      send(me, from, kTagAppendReply, AppendReply{n.term, true, match}, kReplyBytes);
      break;
    }
    case kTagAppendReply - mpi::kRaftRpcTags.base: {
      auto ar = cast_msg<AppendReply>(msg);
      if (ar.term > n.term) {
        step_down(me, ar.term);
        break;
      }
      if (n.role != Node::Role::leader || ar.term != n.term) break;
      if (config_.pipeline_appends && from < n.append_inflight.size()) {
        n.append_inflight[from] = 0;
      }
      if (ar.success) {
        if (ar.match > n.match[from]) n.match[from] = ar.match;
        n.next[from] = n.match[from] + 1;
        advance_commit(me);
        if (n.next[from] <= n.log.last_index()) send_append(me, from);
      } else {
        const Index backed = std::min(n.next[from] > 1 ? n.next[from] - 1 : 1, ar.match + 1);
        n.next[from] = std::max<Index>(backed, 1);
        send_append(me, from);
      }
      break;
    }
    case kTagInstallSnapshot - mpi::kRaftRpcTags.base: {
      auto is = cast_msg<InstallSnapshot>(msg);
      if (is.term > n.term) step_down(me, is.term);
      if (is.term < n.term) {
        send(me, from, kTagAppendReply, AppendReply{n.term, false, 0}, kReplyBytes);
        break;
      }
      n.known_leader = is.leader;
      leader_hint_ = is.leader;
      if (n.role != Node::Role::follower) step_down(me, is.term);
      if (running_) arm_election(me);
      if (is.last_index > n.log.snapshot_index()) {
        if (n.log.has(is.last_index) && n.log.term_at(is.last_index) == is.last_term) {
          n.log.compact_to(is.last_index, is.last_term);
        } else {
          n.log.reset_to_snapshot(is.last_index, is.last_term);
        }
      }
      // The state machine is group-shared and snapshots only cover applied
      // entries, so adopting the snapshot point needs no replay here.
      n.commit = std::max(n.commit, is.last_index);
      n.applied = std::max(n.applied, is.last_index);
      rc().snapshots_installed.add();
      send(me, from, kTagAppendReply, AppendReply{n.term, true, is.last_index}, kReplyBytes);
      break;
    }
    default:
      throw std::logic_error("raft::Group: unknown RPC tag");
  }
}

// ----------------------------------------------------------------- protocol

void Group::arm_election(std::size_t r) {
  Node& n = *nodes_[r];
  const std::uint64_t gen = ++n.timer_gen;
  const std::int64_t jitter_ns = std::max<std::int64_t>(1, config_.election_jitter.to_ns());
  const Duration d =
      config_.election_min + Duration::ns(static_cast<std::int64_t>(
                                 n.rng.below(static_cast<std::uint64_t>(jitter_ns))));
  engine_.after(d, [this, r, gen] {
    Node& n = *nodes_[r];
    if (!running_ || n.down || gen != n.timer_gen) return;
    if (n.role == Node::Role::leader) return;
    start_election(r);
  });
}

void Group::arm_heartbeat(std::size_t r) {
  Node& n = *nodes_[r];
  const std::uint64_t gen = ++n.timer_gen;
  engine_.after(config_.heartbeat, [this, r, gen] {
    Node& n = *nodes_[r];
    if (!running_ || n.down || gen != n.timer_gen) return;
    if (n.role != Node::Role::leader) return;
    rc().heartbeats.add();
    broadcast_appends(r, /*force=*/true);
    arm_heartbeat(r);
  });
}

void Group::start_election(std::size_t r) {
  Node& n = *nodes_[r];
  n.role = Node::Role::candidate;
  ++n.term;
  n.voted_for = static_cast<int>(r);
  n.known_leader = -1;
  n.votes = 1;
  n.granted.assign(config_.replicas, false);
  n.granted[r] = true;
  if (n.candidacy_start_ns < 0) n.candidacy_start_ns = engine_.now().to_ns();
  rc().elections_started.add();
  if (n.votes > config_.replicas / 2) {  // single-replica group
    become_leader(r);
    return;
  }
  for (std::size_t p = 0; p < config_.replicas; ++p) {
    if (p == r) continue;
    send(r, p, kTagRequestVote,
         RequestVote{n.term, static_cast<int>(r), n.log.last_index(), n.log.last_term()},
         kVoteBytes);
  }
  arm_election(r);  // candidacy retry with fresh jitter
}

void Group::become_leader(std::size_t r) {
  Node& n = *nodes_[r];
  n.role = Node::Role::leader;
  n.known_leader = static_cast<int>(r);
  leader_hint_ = static_cast<int>(r);
  rc().elections_won.add();
  if (n.candidacy_start_ns >= 0) {
    trace::record_span(engine_, election_site(), -1, n.candidacy_start_ns);
    n.candidacy_start_ns = -1;
  }
  n.next.assign(config_.replicas, n.log.last_index() + 1);
  n.match.assign(config_.replicas, 0);
  n.append_inflight.assign(config_.replicas, 0);
  n.append_pending.assign(config_.replicas, 0);
  // No-op barrier entry: lets entries from previous terms commit promptly
  // without waiting for client traffic (Raft §5.4.2).
  append_leader_entry(r, std::any(), 16);
  broadcast_appends(r);
  advance_commit(r);  // single-replica groups commit immediately
  arm_heartbeat(r);
  if (bootstrap_active_) {
    bootstrap_active_ = false;
    maybe_park();
  }
}

void Group::step_down(std::size_t r, Term t) {
  Node& n = *nodes_[r];
  if (t > n.term) {
    n.term = t;
    n.voted_for = -1;
  }
  if (n.role == Node::Role::leader) fail_waiters(n);
  n.role = Node::Role::follower;
  if (running_ && !n.down) arm_election(r);
}

Index Group::append_leader_entry(std::size_t r, std::any cmd, std::uint64_t bytes) {
  Node& n = *nodes_[r];
  auto e = std::make_shared<LogEntry>();
  e->term = n.term;
  e->cmd = std::move(cmd);
  e->bytes = bytes;
  e->append_ns = engine_.now().to_ns();
  n.log.append(std::shared_ptr<const LogEntry>(std::move(e)));
  return n.log.last_index();
}

void Group::broadcast_appends(std::size_t r, bool force) {
  for (std::size_t p = 0; p < config_.replicas; ++p) {
    if (p != r) send_append(r, p, force);
  }
}

void Group::send_append(std::size_t leader, std::size_t peer, bool force) {
  Node& n = *nodes_[leader];
  if (config_.pipeline_appends && peer < n.append_inflight.size()) {
    // One append in flight per peer: follow-ups coalesce into a single
    // pending bit served by the reply. Heartbeats force through so a lost
    // reply can only stall a peer for one heartbeat interval.
    if (!force && n.append_inflight[peer]) {
      n.append_pending[peer] = 1;
      rc().appends_suppressed.add();
      return;
    }
    n.append_inflight[peer] = 1;
    n.append_pending[peer] = 0;
  }
  if (n.next[peer] <= n.log.snapshot_index()) {
    rc().snapshots_sent.add();
    send(leader, peer, kTagInstallSnapshot,
         InstallSnapshot{n.term, static_cast<int>(leader), n.log.snapshot_index(),
                         n.log.snapshot_term()},
         sm_.snapshot_bytes());
    n.next[peer] = n.log.snapshot_index() + 1;
    return;
  }
  const Index prev = n.next[peer] - 1;
  AppendEntries ae{n.term, static_cast<int>(leader), prev, n.log.term_at(prev), {}, n.commit};
  std::uint64_t bytes = kAppendHeaderBytes;
  for (Index i = n.next[peer]; i <= n.log.last_index(); ++i) {
    const auto& e = n.log.at(i);
    bytes += kEntryHeaderBytes + e->bytes;
    ae.entries.push_back(e);
  }
  rc().append_rpcs.add();
  send(leader, peer, kTagAppendEntries, std::move(ae), bytes);
}

void Group::advance_commit(std::size_t r) {
  Node& n = *nodes_[r];
  for (Index i = n.log.last_index(); i > n.commit; --i) {
    if (n.log.term_at(i) != n.term) break;  // older terms commit transitively
    std::size_t cnt = 1;
    for (std::size_t p = 0; p < config_.replicas; ++p) {
      if (p != r && n.match[p] >= i) ++cnt;
    }
    if (cnt > config_.replicas / 2) {
      for (Index k = n.commit + 1; k <= i; ++k) {
        rc().commits.add();
        const auto& e = n.log.at(k);
        if (e->cmd.has_value() && e->append_ns >= 0) {
          trace::record_span(engine_, replication_site(), -1, e->append_ns);
        }
      }
      n.commit = i;
      schedule_apply(r);
      break;
    }
  }
}

void Group::schedule_apply(std::size_t r) {
  Node& n = *nodes_[r];
  if (n.applying || n.down || n.applied >= n.commit) return;
  n.applying = true;
  engine_.spawn(apply_drain(r));
}

sim::Task<void> Group::apply_drain(std::size_t r) {
  Node& n = *nodes_[r];
  while (!n.down && n.applied < n.commit) {
    if (n.applied < n.log.snapshot_index()) {
      // An installed snapshot moved us forward; entries below it are
      // already applied group-wide.
      n.applied = n.log.snapshot_index();
      continue;
    }
    const Index idx = n.applied + 1;
    auto entry = n.log.at(idx);  // keep alive across compaction
    if (idx > group_applied_ && entry->cmd.has_value() && n.role == Node::Role::leader) {
      // Queue + service at this replica's MDS before the mutation lands.
      co_await n.server->serve(sm_.apply_service(entry->cmd));
      if (n.down) break;  // crashed while in service
    }
    if (idx > group_applied_) {
      group_applied_ = idx;
      if (entry->cmd.has_value()) {
        group_results_.emplace(idx, std::make_shared<const std::any>(sm_.apply(idx, entry->cmd)));
        rc().applies.add();
      }
    }
    n.applied = idx;
    auto it = n.waiters.find(idx);
    if (it != n.waiters.end()) {
      auto state = it->second;
      n.waiters.erase(it);
      auto rit = group_results_.find(idx);
      state->result = rit != group_results_.end() ? rit->second : nullptr;
      if (rit != group_results_.end()) group_results_.erase(rit);
      state->done = true;
      state->gate.open();
    }
    maybe_compact(r);
  }
  n.applying = false;
  if (!n.down && n.applied < n.commit) schedule_apply(r);
}

void Group::maybe_compact(std::size_t r) {
  Node& n = *nodes_[r];
  if (n.log.size() <= config_.compact_threshold) return;
  const Index target = n.applied > config_.compact_keep ? n.applied - config_.compact_keep : 0;
  if (target <= n.log.snapshot_index()) return;
  const Term t = n.log.term_at(target);
  n.log.compact_to(target, t);
  rc().compactions.add();
  // Apply results at or below the compaction point were either consumed by
  // their waiter or orphaned by a leader crash; drop them.
  group_results_.erase(group_results_.begin(), group_results_.upper_bound(target));
}

void Group::fail_waiters(Node& n) {
  for (auto& [idx, state] : n.waiters) {
    state->not_leader = true;
    state->hint = n.known_leader;
    state->gate.open();
  }
  n.waiters.clear();
}

// -------------------------------------------------------------- fault hooks

void Group::crash(std::size_t replica) {
  Node& n = *nodes_[replica];
  if (n.down) return;
  n.down = true;
  ++n.timer_gen;
  n.known_leader = -1;
  fail_waiters(n);
  rc().crashes.add();
}

void Group::restart(std::size_t replica) {
  Node& n = *nodes_[replica];
  if (!n.down) return;
  n.down = false;
  n.role = Node::Role::follower;
  n.known_leader = -1;
  n.applying = false;
  n.votes = 0;
  rc().restarts.add();
  if (running_) arm_election(replica);
  schedule_apply(replica);
}

void Group::set_partitioned(std::size_t replica, bool isolated) {
  nodes_[replica]->partitioned = isolated;
}

void Group::keep_alive(bool on) {
  keep_alive_ = on;
  if (on) {
    unpark();
  } else {
    maybe_park();
  }
}

// ----------------------------------------------------------- park lifecycle

void Group::begin_activity() {
  if (++inflight_ == 1) unpark();
}

void Group::end_activity() {
  if (--inflight_ == 0) {
    // Client ops drive liveness from here on. Without this a group whose
    // majority crashed before the bootstrap election completed would keep
    // electing (and losing) forever, and the engine could never drain.
    bootstrap_active_ = false;
    maybe_park();
  }
}

void Group::maybe_park() {
  if (inflight_ == 0 && !bootstrap_active_ && !keep_alive_ && running_) park();
}

void Group::unpark() {
  if (running_) return;
  running_ = true;
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    Node& n = *nodes_[r];
    if (n.down) continue;
    if (n.role == Node::Role::leader) {
      broadcast_appends(r, /*force=*/true);
      arm_heartbeat(r);
    } else {
      arm_election(r);
    }
  }
}

void Group::park() {
  running_ = false;
  for (auto& n : nodes_) ++n->timer_gen;  // pending timers become no-ops
}

void Group::rotate_hint(std::size_t failed) {
  leader_hint_ = static_cast<int>((failed + 1) % config_.replicas);
}

// -------------------------------------------------------------- client side

sim::Task<Result<std::shared_ptr<const std::any>>> Group::submit(std::size_t client_node,
                                                                 int rank, std::any cmd,
                                                                 std::uint64_t bytes) {
  struct Activity {
    Group* g;
    explicit Activity(Group* g) : g(g) { g->begin_activity(); }
    ~Activity() { g->end_activity(); }
  } activity(this);
  rc().submits.add();
  const std::int64_t start_ns = engine_.now().to_ns();
  bool degraded = false;

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    const std::size_t target = leader_hint_ >= 0
                                   ? static_cast<std::size_t>(leader_hint_)
                                   : static_cast<std::size_t>(attempt) % config_.replicas;
    Node& t = *nodes_[target];
    co_await engine_.sleep(config_.rpc_overhead);
    co_await cluster_.fabric_transfer(client_node, t.node_id, kAppendHeaderBytes + bytes);
    if (t.down || t.partitioned) {
      degraded = true;
      rc().client_timeouts.add();
      co_await engine_.sleep(config_.request_timeout);
      rotate_hint(target);
      continue;
    }
    if (t.role != Node::Role::leader) {
      rc().redirects.add();
      co_await reply_latency(t.node_id, client_node, kReplyBytes);
      const int hint = t.known_leader;
      if (hint >= 0 && static_cast<std::size_t>(hint) != target && !nodes_[hint]->down) {
        leader_hint_ = hint;
      } else {
        // Election in progress: bounded wait, then probe the next replica.
        degraded = true;
        rc().election_waits.add();
        co_await engine_.sleep(config_.redirect_backoff);
        rotate_hint(target);
      }
      continue;
    }

    // Leader: append, replicate eagerly, ack after commit + apply.
    const Index idx = append_leader_entry(target, cmd, bytes);
    auto state = std::make_shared<ReplyState>(engine_);
    t.waiters.emplace(idx, state);
    broadcast_appends(target);
    advance_commit(target);  // single-replica groups commit here
    engine_.after(config_.commit_timeout, [state] { state->gate.open(); });
    co_await state->gate.wait();

    if (state->done) {
      co_await reply_latency(t.node_id, client_node, kAppendHeaderBytes);
      if (degraded) trace::record_span(engine_, failover_site(), rank, start_ns);
      co_return state->result;
    }
    degraded = true;
    if (state->not_leader) {
      if (state->hint >= 0) {
        leader_hint_ = state->hint;
      } else {
        rc().election_waits.add();
        co_await engine_.sleep(config_.redirect_backoff);
        rotate_hint(target);
      }
    } else {
      // Commit did not reach us in time (lost majority / partition). The
      // entry may still commit later; the command is idempotent and will
      // be resubmitted — the standard at-least-once hazard.
      rc().client_timeouts.add();
      rotate_hint(target);
    }
  }
  co_return error(Errc::busy, "raft: no leader within the submit retry bound");
}

sim::Task<Status> Group::serve_read(std::size_t client_node, int rank, Duration service) {
  struct Activity {
    Group* g;
    explicit Activity(Group* g) : g(g) { g->begin_activity(); }
    ~Activity() { g->end_activity(); }
  } activity(this);
  rc().reads.add();
  const std::int64_t start_ns = engine_.now().to_ns();
  bool degraded = false;

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    const std::size_t target = leader_hint_ >= 0
                                   ? static_cast<std::size_t>(leader_hint_)
                                   : static_cast<std::size_t>(attempt) % config_.replicas;
    Node& t = *nodes_[target];
    co_await engine_.sleep(config_.rpc_overhead);
    co_await cluster_.fabric_transfer(client_node, t.node_id, kReplyBytes);
    if (t.down || t.partitioned) {
      degraded = true;
      rc().client_timeouts.add();
      co_await engine_.sleep(config_.request_timeout);
      rotate_hint(target);
      continue;
    }
    if (t.role != Node::Role::leader) {
      rc().redirects.add();
      co_await reply_latency(t.node_id, client_node, kReplyBytes);
      const int hint = t.known_leader;
      if (hint >= 0 && static_cast<std::size_t>(hint) != target && !nodes_[hint]->down) {
        leader_hint_ = hint;
      } else {
        degraded = true;
        rc().election_waits.add();
        co_await engine_.sleep(config_.redirect_backoff);
        rotate_hint(target);
      }
      continue;
    }
    co_await t.server->serve(service);
    if (t.down) {  // crashed while we were queued
      degraded = true;
      rotate_hint(target);
      continue;
    }
    co_await reply_latency(t.node_id, client_node, kReplyBytes);
    if (degraded) trace::record_span(engine_, failover_site(), rank, start_ns);
    co_return Status::Ok();
  }
  co_return error(Errc::busy, "raft: metadata group has no reachable leader");
}

// ------------------------------------------------------------ introspection

int Group::leader_or_negative() const {
  int best = -1;
  Term best_term = 0;
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    const Node& n = *nodes_[r];
    if (!n.down && n.role == Node::Role::leader && n.term >= best_term) {
      best = static_cast<int>(r);
      best_term = n.term;
    }
  }
  return best;
}

bool Group::is_down(std::size_t replica) const { return nodes_[replica]->down; }
Term Group::term_of(std::size_t replica) const { return nodes_[replica]->term; }
Index Group::last_index_of(std::size_t replica) const { return nodes_[replica]->log.last_index(); }
Index Group::commit_of(std::size_t replica) const { return nodes_[replica]->commit; }
Index Group::applied_of(std::size_t replica) const { return nodes_[replica]->applied; }

}  // namespace tio::raft
