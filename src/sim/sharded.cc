#include "sim/sharded.h"

#include <barrier>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/stats.h"
#include "common/trace.h"
#include "sim/engine.h"
#include "sim/frame_pool.h"

namespace tio::sim {

ShardPool::ShardPool(std::size_t shards) : shards_(shards) {
  if (shards < 1 || shards > kMaxShards) {
    throw std::invalid_argument("ShardPool: shards must be in [1, kMaxShards]");
  }
}

void ShardPool::submit(MoveFn<void()> job) { jobs_.push_back(std::move(job)); }

void ShardPool::run_all() {
  std::vector<MoveFn<void()>> jobs = std::move(jobs_);
  jobs_.clear();
  if (jobs.empty()) return;

  if (shards_ == 1) {
    // The legacy serial path, bit for bit: inline execution, global pid
    // numbering, exceptions propagate immediately.
    for (auto& job : jobs) job();
    return;
  }

  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.note_shard_count(shards_);
  // Reserve every job's pid block upfront so job j's engines get the same
  // trace pids no matter which thread runs it or when.
  const std::uint32_t pid_base =
      tracer.reserve_pids(static_cast<std::uint32_t>(jobs.size()) * kPidsPerJob);

  std::vector<std::exception_ptr> errors(jobs.size());
  const auto worker = [&](std::size_t shard) {
    set_stat_shard(static_cast<unsigned>(shard));
    for (std::size_t j = shard; j < jobs.size(); j += shards_) {
      trace::PidScope pids(pid_base + static_cast<std::uint32_t>(j) * kPidsPerJob,
                           kPidsPerJob);
      try {
        jobs[j]();
      } catch (...) {
        errors[j] = std::current_exception();
      }
    }
    // Flush this thread's frame-pool deltas while its thread-locals are
    // still alive, then free the recycling cache: frames cached on an
    // exited thread are unreachable and read as leaks.
    FramePool::publish_counters();
    FramePool::trim();
  };

  std::vector<std::thread> threads;
  threads.reserve(shards_ - 1);
  for (std::size_t s = 1; s < shards_; ++s) threads.emplace_back(worker, s);
  worker(0);
  for (auto& t : threads) t.join();

  // All jobs ran; surface the failure of the lowest job index (a
  // deterministic choice) and drop the rest.
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

ShardedEngine::ShardedEngine(const Options& options)
    : shards_(options.shards), lookahead_(options.lookahead) {
  if (shards_ < 1 || shards_ > kMaxShards) {
    throw std::invalid_argument("ShardedEngine: shards must be in [1, kMaxShards]");
  }
  if (lookahead_ <= Duration::zero()) {
    throw std::invalid_argument("ShardedEngine: lookahead must be positive");
  }
  by_shard_.resize(shards_);
}

ShardedEngine::Slot& ShardedEngine::slot_of(const Engine& e) {
  for (Slot& s : slots_) {
    if (s.engine == &e) return s;
  }
  throw std::logic_error("ShardedEngine: engine not adopted");
}

void ShardedEngine::adopt(std::size_t shard, Engine& engine) {
  if (running_) throw std::logic_error("ShardedEngine::adopt: run in progress");
  if (shard >= shards_) throw std::out_of_range("ShardedEngine::adopt: bad shard");
  for (const Slot& s : slots_) {
    if (s.engine == &engine) throw std::logic_error("ShardedEngine::adopt: duplicate");
  }
  slots_.push_back(Slot{&engine, shard, 0, {}});
  by_shard_[shard].push_back(slots_.size() - 1);
}

void ShardedEngine::post(Engine& src, Engine& dst, Duration delay, MoveFn<void()> fn) {
  if (delay < lookahead_) {
    // The conservative contract: nothing crosses engines faster than the
    // lookahead, or windows would no longer be causally closed.
    throw std::logic_error("ShardedEngine::post: delay below lookahead");
  }
  Slot& src_slot = slot_of(src);
  slot_of(dst);  // both endpoints must be adopted
  std::int64_t deliver_ns;
  if (__builtin_add_overflow(src.now().to_ns(), delay.to_ns(), &deliver_ns)) {
    deliver_ns = std::numeric_limits<std::int64_t>::max();
  }
  src_slot.outbox.push_back(Message{&dst, deliver_ns, std::move(fn)});
}

void ShardedEngine::deliver_and_plan() {
  for (const auto& e : shard_errors_) {
    if (e) {  // a shard halted: abort at this boundary, run() rethrows
      done_ = true;
      return;
    }
  }
  // Drain outboxes in (engine adopt index, send order) — a total order
  // with no dependence on shard placement. Delivery lands in each dst's
  // own (time, seq) queue; deliver_ns >= the last horizon >= dst.now().
  for (Slot& s : slots_) {
    for (Message& m : s.outbox) {
      ++messages_;
      m.dst->at(TimePoint::from_ns(m.deliver_ns), std::move(m.fn));
    }
    s.outbox.clear();
  }
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  for (const Slot& s : slots_) {
    const std::int64_t t = s.engine->next_event_ns();
    if (t < t_min) t_min = t;
  }
  if (t_min == std::numeric_limits<std::int64_t>::max()) {
    // Globally drained. (Events saturated to the far-future sentinel are
    // treated as never occurring; they represent unreachable timers.)
    done_ = true;
    return;
  }
  if (__builtin_add_overflow(t_min, lookahead_.to_ns(), &horizon_ns_)) {
    horizon_ns_ = std::numeric_limits<std::int64_t>::max();
  }
  ++windows_;
}

void ShardedEngine::run_window(std::size_t shard) {
  if (shard_errors_[shard]) return;
  try {
    for (std::size_t idx : by_shard_[shard]) {
      slots_[idx].engine->run_until(horizon_ns_);
    }
  } catch (...) {
    shard_errors_[shard] = std::current_exception();
  }
}

std::uint64_t ShardedEngine::run() {
  if (running_) throw std::logic_error("ShardedEngine::run: already running");
  running_ = true;
  done_ = false;
  shard_errors_.assign(shards_, nullptr);
  for (Slot& s : slots_) s.events_at_start = s.engine->events_processed();
  const std::uint64_t windows_before = windows_;
  const std::uint64_t messages_before = messages_;
  trace::Tracer::instance().note_shard_count(shards_);
  const auto wall_start = std::chrono::steady_clock::now();

  if (shards_ == 1) {
    for (deliver_and_plan(); !done_; deliver_and_plan()) run_window(0);
  } else {
    std::barrier sync(static_cast<std::ptrdiff_t>(shards_),
                      [this]() noexcept { deliver_and_plan(); });
    const auto worker = [&](std::size_t shard) {
      set_stat_shard(static_cast<unsigned>(shard));
      while (true) {
        // The completion function runs the serial phase between windows;
        // the barrier's happens-before publishes horizon_ns_/done_ and the
        // delivered events to every shard.
        sync.arrive_and_wait();
        if (done_) break;
        run_window(shard);
      }
      FramePool::publish_counters();
      FramePool::trim();  // cached frames on an exited thread read as leaks
    };
    std::vector<std::thread> threads;
    threads.reserve(shards_ - 1);
    for (std::size_t s = 1; s < shards_; ++s) threads.emplace_back(worker, s);
    worker(0);
    for (auto& t : threads) t.join();
  }

  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  counter("sim.engine.sharded_wall_ns").add(static_cast<std::uint64_t>(wall_ns));
  counter("sim.engine.windows").add(windows_ - windows_before);
  counter("sim.engine.cross_shard_events").add(messages_ - messages_before);
  std::uint64_t total = 0;
  for (Slot& s : slots_) {
    s.engine->publish_counters();
    total += s.engine->events_processed() - s.events_at_start;
  }
  running_ = false;
  for (auto& e : shard_errors_) {
    if (e) {
      auto err = e;
      shard_errors_.assign(shards_, nullptr);
      std::rethrow_exception(err);
    }
  }
  for (Slot& s : slots_) s.engine->rethrow_pending_error();
  return total;
}

}  // namespace tio::sim
