// Determinism regression for the engine hot path: a fig. 4-shaped N-1
// strided PLFS job at 4096 ranks must produce bit-identical results across
// runs — same event count, same virtual end time, same phase times, same
// byte volumes. The event queue's (time, sequence) ordering contract is
// what makes this hold; any change that reorders same-time events (heap
// layout, the now_-FIFO fast path, waiter-list order) breaks this test.
#include <gtest/gtest.h>

#include <cstdint>

#include "testbed/testbed.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"

namespace tio::workloads {
namespace {

constexpr int kRanks = 4096;

struct Outcome {
  std::uint64_t events;
  std::int64_t end_ns;
  PhaseTimes write;
  PhaseTimes read;
};

Outcome run_once() {
  testbed::Rig::Options opts;
  opts.cluster = testbed::lanl_cluster();
  opts.pfs = testbed::lanl_pfs();
  testbed::Rig rig(opts);

  JobSpec spec;
  spec.file = "determinism";
  spec.ops = strided_ops(/*bytes_per_proc=*/64 << 10, /*record=*/16 << 10);
  spec.target.access = Access::plfs_n1;
  const JobResult result = run_job(rig, kRanks, spec);
  return Outcome{rig.engine().events_processed(), rig.engine().now().to_ns(),
                 result.write, result.read};
}

void expect_identical(const PhaseTimes& a, const PhaseTimes& b) {
  // Exact equality on purpose: virtual time is discrete, so reproducible
  // runs match to the bit, not to a tolerance.
  EXPECT_EQ(a.open_s, b.open_s);
  EXPECT_EQ(a.io_s, b.io_s);
  EXPECT_EQ(a.close_s, b.close_s);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Determinism, Fig4ShapedJobIsBitReproducible) {
  const Outcome a = run_once();
  const Outcome b = run_once();

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_ns, b.end_ns);
  expect_identical(a.write, b.write);
  expect_identical(a.read, b.read);

  // Sanity: the job actually ran at scale and moved the expected volume.
  EXPECT_GT(a.events, static_cast<std::uint64_t>(kRanks));
  EXPECT_EQ(a.write.bytes, static_cast<std::uint64_t>(kRanks) * (64 << 10));
  EXPECT_GT(a.end_ns, 0);
}

}  // namespace
}  // namespace tio::workloads
