// Function-typed I/O hooks that decouple the formatting libraries and the
// collective-buffering layer from any particular file abstraction (PLFS
// MpiFile, direct PFS handle, ...).
#pragma once

#include <cstdint>
#include <functional>

#include "common/dataview.h"
#include "common/status.h"
#include "sim/task.h"

namespace tio::iolib {

using WriteFn = std::function<sim::Task<Status>(std::uint64_t offset, DataView data)>;
using ReadFn =
    std::function<sim::Task<Result<FragmentList>>(std::uint64_t offset, std::uint64_t len)>;

}  // namespace tio::iolib
