// Byte-size and virtual-time units used throughout the library.
//
// Simulated time is kept in integer nanoseconds so that event ordering is
// exact and runs are bit-reproducible; conversions to floating-point seconds
// happen only at reporting boundaries.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace tio {

inline namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }
constexpr std::uint64_t operator""_TiB(unsigned long long v) { return v << 40; }
// Decimal units, used for network/disk rates quoted in vendor terms.
constexpr std::uint64_t operator""_KB(unsigned long long v) { return v * 1000ull; }
constexpr std::uint64_t operator""_MB(unsigned long long v) { return v * 1000000ull; }
constexpr std::uint64_t operator""_GB(unsigned long long v) { return v * 1000000000ull; }
}  // namespace literals

// A span of virtual time. Negative durations are representable but the
// simulator never schedules into the past.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration us(std::int64_t v) { return Duration{v * 1000}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{v * 1000000}; }
  static constexpr Duration sec(std::int64_t v) { return Duration{v * 1000000000}; }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t to_ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  constexpr Duration& operator+=(Duration b) { ns_ += b.ns_; return *this; }
  constexpr Duration& operator-=(Duration b) { ns_ -= b.ns_; return *this; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

// An absolute point on the virtual clock (ns since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_ns(std::int64_t v) { return TimePoint{v}; }
  constexpr std::int64_t to_ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns_ + d.to_ns()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::ns(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  constexpr explicit TimePoint(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

// Time to move `bytes` at `bytes_per_sec`, rounded up to at least 1 ns for
// nonzero transfers so progress is always made.
constexpr Duration transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0.0) return Duration::zero();
  const double s = static_cast<double>(bytes) / bytes_per_sec;
  const auto d = Duration::seconds(s);
  return d > Duration::zero() ? d : Duration::ns(1);
}

}  // namespace tio
