// Tunable model parameters of the simulated parallel file system.
//
// Defaults approximate the paper's 551 TB PanFS behind a 10GigE storage
// network; the calibrated presets live in src/testbed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace tio::pfs {

// How the metadata service survives server loss. `none` is the paper's
// federation: one server per namespace, ring failover + stale markers
// above it. `raft` runs each namespace as a Raft replica group
// (src/raft/): consistent failover, no stale markers.
enum class MdsReplication { none, raft };
std::string_view mds_replication_name(MdsReplication m);

struct PfsConfig {
  // --- Metadata service ---
  // Number of metadata servers ("glued" namespaces). A directory tree under
  // top-level directory /volK is served by MDS hash(volK) % num_mds, which
  // models PanFS-style rigid realm division: no single directory ever
  // spreads across servers.
  std::size_t num_mds = 1;
  // Internal request parallelism of one MDS.
  std::size_t mds_concurrency = 4;
  Duration mds_create_time = Duration::us(250);
  Duration mds_open_time = Duration::us(120);
  // Opening a file whose dentry is already hot in the MDS cache is cheap.
  Duration mds_cached_open_time = Duration::us(20);
  Duration mds_stat_time = Duration::us(80);
  Duration mds_close_time = Duration::us(50);
  Duration mds_readdir_per_entry = Duration::us(2);
  // Serialized per-directory insert/remove (namespace mutation) cost...
  Duration dir_insert_time = Duration::us(400);
  // ...which degrades as the directory grows (GIGA+'s observation):
  // effective insert = dir_insert_time * (1 + entries / dir_degrade_entries).
  std::uint64_t dir_degrade_entries = 8192;

  // --- Data service ---
  std::size_t num_osts = 20;
  double ost_bandwidth = 350e6;          // platter streaming rate, bytes/s
  Duration ost_seek_time = Duration::ms(4);
  Duration ost_switch_time = Duration::ms(1);  // object switch on an OST
  double ost_write_seek_factor = 0.1;    // server write-back absorbs most positioning
  std::uint64_t near_gap = 8_MiB;        // forward gaps below this prefetch fine
  std::uint64_t stripe_unit = 64_KiB;
  // One file's data is striped over this many OSTs (a PanFS RAID group).
  // A single shared file engages only stripe_width spindles; PLFS's many
  // per-process logs spread over the whole OST farm.
  std::size_t stripe_width = 8;
  // Max pieces of one request issued in parallel across OSTs.
  std::size_t stripe_parallelism = 8;

  // Server-side (per-OST) DRAM cache: re-reads of hot blocks skip the
  // platter entirely.
  std::uint64_t ost_cache_bytes = 512_MiB;
  double ost_cache_bandwidth = 2.0e9;

  // --- Data-path client behaviour ---
  // Write-behind caching: writes charge bandwidth (net + OST) but not a
  // per-op round trip; a lock revocation still synchronously flushes (the
  // lock_transfer_time below).
  bool write_behind = true;

  // --- Shared-file write locking (the N-1 penalty) ---
  // Ownership is tracked per *process* (PanFS DirectFlow-style client
  // locks): interleaved writers thrash regardless of node placement.
  bool shared_file_locking = true;
  std::uint64_t lock_range = 1_MiB;      // range-lock granularity
  Duration lock_transfer_time = Duration::ms(1);   // revoke + grant
  Duration lock_grant_time = Duration::us(50);     // uncontended grant
  // Unaligned writes read-modify-write one page.
  std::uint64_t rmw_page = 16_KiB;

  // --- Client-visible fixed overhead per rpc ---
  Duration rpc_overhead = Duration::us(15);

  // --- Batched metadata mutations (client-library aggregation) ---
  // Clients coalesce create/mkdir/unlink mutations bound for the same
  // metadata group into one batch RPC: at most mds_batch entries per batch
  // (0 disables batching entirely — the per-op legacy path), flushed early
  // after mds_batch_linger once the first entry is waiting. Replicated
  // groups apply a batch as ONE Raft command (one replication round
  // amortized over the entries); unreplicated servers amortize the client
  // round trip the same way.
  std::size_t mds_batch = 0;
  Duration mds_batch_linger = Duration::us(50);

  // --- Leased client metadata cache ---
  // Lease TTL for client-cached lookups (dentry/attr hits served without an
  // MDS round trip). 0 disables the cache. Leases are revoked wholesale
  // (epoch bump) whenever the serving metadata group crashes, restarts, or
  // partitions, and per-path on every mutation, so a cached entry can never
  // outlive a failover inconsistently.
  Duration meta_lease = Duration::zero();

  // --- Metadata replication (Raft replica groups, src/raft/) ---
  MdsReplication mds_replication = MdsReplication::none;
  std::size_t mds_replicas = 3;
  Duration raft_heartbeat = Duration::ms(10);
  Duration raft_election_min = Duration::ms(50);
  Duration raft_election_jitter = Duration::ms(50);
  Duration raft_request_timeout = Duration::ms(40);
  Duration raft_commit_timeout = Duration::ms(400);
  Duration raft_redirect_backoff = Duration::ms(5);
  std::size_t raft_compact_threshold = 1024;
  std::size_t raft_compact_keep = 128;
  // raft_placement[g][r] = cluster node hosting replica r of metadata
  // group g. Empty (or wrong-sized) rows fall back to a spread that puts a
  // group's replicas on distinct nodes; the testbed fills this in.
  std::vector<std::vector<std::size_t>> raft_placement;
};

}  // namespace tio::pfs
