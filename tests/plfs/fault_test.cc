// Chaos suite: the full PLFS stack under seeded fault plans.
//
// An N-1 write (torn writes, transient errors, crash-on-close of the
// flattened index, MDS outages) followed by reads through all three
// ReadStrategy values must return bytes identical to a fault-free run —
// the whole point of the retry/degradation machinery. Plans are seeded, so
// every schedule here is bit-reproducible.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/stats.h"
#include "mpisim/comm.h"
#include "pfs/faulty_fs.h"
#include "pfs/sim_pfs.h"
#include "plfs/container.h"
#include "plfs/mpiio.h"
#include "plfs/plfs.h"
#include "testutil.h"

namespace tio::plfs {
namespace {

constexpr int kProcs = 8;
constexpr int kRounds = 4;
constexpr std::uint64_t kRecord = 3000;
constexpr std::uint64_t kTotal = static_cast<std::uint64_t>(kProcs) * kRounds * kRecord;

PlfsMount chaos_mount() {
  PlfsMount m;
  for (std::size_t i = 0; i < 4; ++i) {
    m.backends.push_back("/vol" + std::to_string(i) + "/plfs");
  }
  m.num_subdirs = 8;
  m.index_flush_every = 8;
  return m;
}

struct ChaosWorld {
  explicit ChaosWorld(const std::string& plan_spec)
      : cluster(engine, cluster_config()), base(cluster, pfs_config()),
        faulty(base, parse_plan(plan_spec)), plfs(faulty, chaos_mount()) {
    for (const auto& b : plfs.mount().backends) {
      if (!base.ns().mkdir_all(b).ok()) std::abort();
    }
  }
  static pfs::FaultPlan parse_plan(const std::string& spec) {
    auto plan = pfs::FaultPlan::parse(spec);
    if (!plan.ok()) std::abort();
    return std::move(plan.value());
  }
  static net::ClusterConfig cluster_config() {
    net::ClusterConfig c;
    c.nodes = 16;
    c.cores_per_node = 4;
    return c;
  }
  static pfs::PfsConfig pfs_config() {
    pfs::PfsConfig c;
    c.num_mds = 4;
    c.num_osts = 8;
    return c;
  }

  void sleep_until_ms(std::int64_t ms) {
    test::run_task(engine, [](sim::Engine& e, std::int64_t target) -> sim::Task<void> {
      const TimePoint t = TimePoint::from_ns(Duration::ms(target).to_ns());
      if (t > e.now()) co_await e.sleep(t - e.now());
    }(engine, ms));
  }

  sim::Engine engine;
  net::Cluster cluster;
  pfs::SimPfs base;
  pfs::FaultyFs faulty;
  Plfs plfs;
};

// Strided N-1 write with Index Flatten requested at close.
void write_n1(ChaosWorld& w, const std::string& logical) {
  mpi::run_spmd(w.cluster, kProcs, [&](mpi::Comm comm) -> sim::Task<void> {
    auto file = co_await MpiFile::open_write(w.plfs, comm, logical);
    EXPECT_TRUE(file.ok()) << file.status();
    if (!file.ok()) co_return;
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(r) * comm.size() + comm.rank()) * kRecord;
      EXPECT_TRUE((co_await (*file)->write(off, DataView::pattern(7, off, kRecord))).ok());
    }
    EXPECT_TRUE((co_await (*file)->close_write(/*flatten=*/true)).ok());
  });
}

// Collective read of the whole file on every rank; returns rank 0's bytes.
std::vector<std::byte> read_n1(ChaosWorld& w, const std::string& logical,
                               ReadStrategy strategy) {
  std::vector<std::byte> bytes;
  mpi::run_spmd(w.cluster, kProcs, [&](mpi::Comm comm) -> sim::Task<void> {
    auto file = co_await MpiFile::open_read(w.plfs, comm, logical, strategy);
    EXPECT_TRUE(file.ok()) << file.status();
    if (!file.ok()) co_return;
    EXPECT_EQ((*file)->logical_size(), kTotal);
    auto fl = co_await (*file)->read(0, kTotal);
    EXPECT_TRUE(fl.ok()) << fl.status();
    if (!fl.ok()) co_return;
    EXPECT_TRUE(fl->content_equals(DataView::pattern(7, 0, kTotal)))
        << "strategy " << static_cast<int>(strategy) << " rank " << comm.rank();
    if (comm.rank() == 0) bytes = fl->to_bytes();
    EXPECT_TRUE((co_await (*file)->close_read()).ok());
  });
  return bytes;
}

TEST(Chaos, SeededPlansPreserveBytesAcrossAllStrategies) {
  // Fault-free reference bytes.
  ChaosWorld clean("none");
  write_n1(clean, "/chaos");
  const std::vector<std::byte> expected = read_n1(clean, "/chaos", ReadStrategy::original);
  ASSERT_EQ(expected.size(), kTotal);

  const char* kPlans[] = {
      "transient1,seed=101",
      "io=0.01,busy=0.01,stale=0.005,torn=0.05,crash_close_index=1,seed=202",
      "stress,seed=303",
  };
  for (const char* spec : kPlans) {
    SCOPED_TRACE(spec);
    ChaosWorld w(spec);
    const std::uint64_t faults_before = counter("plfs.fault.ops").value();
    write_n1(w, "/chaos");
    // Outage-bearing plans (stress) end their window at 250 ms; read after.
    w.sleep_until_ms(300);
    for (const ReadStrategy strategy : {ReadStrategy::original, ReadStrategy::index_flatten,
                                        ReadStrategy::parallel_read}) {
      EXPECT_EQ(read_n1(w, "/chaos", strategy), expected);
    }
    // The plan actually exercised the stack.
    EXPECT_GT(counter("plfs.fault.ops").value(), faults_before);
  }
}

TEST(Chaos, SameSeedIsBitReproducible) {
  const std::string spec = "io=0.01,busy=0.01,torn=0.05,crash_close_index=1,seed=777";
  const char* kCounters[] = {
      "plfs.fault.ops",       "plfs.fault.io_error",     "plfs.fault.busy",
      "plfs.fault.torn_writes", "plfs.fault.crash_close",
      "plfs.retry.attempts",  "plfs.retry.success_after_retry",
      "plfs.degrade.index_fallback", "plfs.degrade.flatten_abort",
  };
  std::vector<std::vector<std::uint64_t>> deltas;
  std::vector<std::vector<std::byte>> bytes;
  std::vector<std::int64_t> final_ns;
  for (int run = 0; run < 2; ++run) {
    std::vector<std::uint64_t> before;
    for (const char* name : kCounters) before.push_back(counter(name).value());
    ChaosWorld w(spec);
    write_n1(w, "/repro");
    bytes.push_back(read_n1(w, "/repro", ReadStrategy::index_flatten));
    final_ns.push_back(w.engine.now().to_ns());
    std::vector<std::uint64_t> delta;
    for (std::size_t i = 0; i < std::size(kCounters); ++i) {
      delta.push_back(counter(kCounters[i]).value() - before[i]);
    }
    deltas.push_back(std::move(delta));
  }
  // Same fault schedule, same retries, same degradations, same virtual
  // clock, same bytes: bit-identical runs.
  EXPECT_EQ(deltas[0], deltas[1]);
  EXPECT_EQ(final_ns[0], final_ns[1]);
  EXPECT_EQ(bytes[0], bytes[1]);
  // And the schedule was not empty.
  EXPECT_GT(deltas[0][0], 0u);
}

// Flips two bytes in the middle of `path` through the raw PFS.
sim::Task<void> flip_bytes_at_8(pfs::SimPfs& fs, std::string path) {
  const pfs::IoCtx ctx{0, 0};
  auto fd = co_await fs.open(ctx, path, pfs::OpenFlags::wr());
  EXPECT_TRUE(fd.ok()) << fd.status();
  if (!fd.ok()) co_return;
  std::vector<std::byte> garbage(2, std::byte{0xFF});
  auto n = co_await fs.write(ctx, *fd, 8, DataView::literal(std::move(garbage)));
  EXPECT_TRUE(n.ok());
  EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
}

TEST(Chaos, CorruptFlattenedIndexDegradesToParallelRead) {
  ChaosWorld w("none");
  write_n1(w, "/corrupt");
  // Corrupt the flattened index: the CRC trailer must catch it and the
  // open must fall back.
  test::run_task(w.engine,
                 flip_bytes_at_8(w.base, w.plfs.layout("/corrupt").global_index_path()));

  const std::uint64_t fallbacks_before = counter("plfs.degrade.index_fallback").value();
  const std::vector<std::byte> got = read_n1(w, "/corrupt", ReadStrategy::index_flatten);
  EXPECT_EQ(got.size(), kTotal);
  EXPECT_EQ(counter("plfs.degrade.index_fallback").value(), fallbacks_before + 1);
}

sim::Task<void> count_stale_markers(pfs::SimPfs& fs, std::string dir, bool& saw) {
  auto entries = co_await fs.readdir(pfs::IoCtx{0, 0}, dir);
  EXPECT_TRUE(entries.ok());
  if (!entries.ok()) co_return;
  for (const auto& e : *entries) {
    std::size_t k = 0;
    if (!e.is_dir && parse_stale_marker_name(e.name, &k)) saw = true;
  }
}

TEST(Chaos, MdsOutageFailsOverToFederationRing) {
  // /vol1 is down for the first 60 virtual seconds — past the whole retry
  // schedule, so writers whose subdir hashes there must fail over.
  const PlfsMount m = chaos_mount();
  std::string logical;
  for (int i = 0; i < 100 && logical.empty(); ++i) {
    ContainerLayout lay(m, "/failover" + std::to_string(i));
    if (lay.canonical_backend() == 1) continue;  // canonical MDS must be up
    for (int r = 0; r < kProcs; ++r) {
      if (lay.subdir_backend(lay.subdir_of_rank(r)) == 1) {
        logical = lay.logical();
        break;
      }
    }
  }
  ASSERT_FALSE(logical.empty());

  ChaosWorld w("outage=/vol1@0-60000");
  const std::uint64_t failovers_before = counter("plfs.degrade.mds_failover").value();
  write_n1(w, logical);
  EXPECT_GT(counter("plfs.degrade.mds_failover").value(), failovers_before);

  // The canonical container records the displacement.
  bool saw_marker = false;
  test::run_task(w.engine,
                 count_stale_markers(w.base, w.plfs.layout(logical).canonical_container(),
                                     saw_marker));
  EXPECT_TRUE(saw_marker);

  // Readers after the outage union the ring via the stale markers and see
  // every byte, under every strategy.
  w.sleep_until_ms(61000);
  for (const ReadStrategy strategy : {ReadStrategy::original, ReadStrategy::index_flatten,
                                      ReadStrategy::parallel_read}) {
    const std::vector<std::byte> got = read_n1(w, logical, strategy);
    EXPECT_EQ(got.size(), kTotal) << static_cast<int>(strategy);
  }
}

}  // namespace
}  // namespace tio::plfs
