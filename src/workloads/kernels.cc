#include "workloads/kernels.h"

#include "iolib/tinyhdf.h"
#include "iolib/tinync.h"

namespace tio::workloads {

OpGen strided_ops(std::uint64_t bytes_per_proc, std::uint64_t record) {
  const std::uint64_t rounds = bytes_per_proc / record;
  return [=](int rank, int nprocs) {
    std::vector<IoOp> ops;
    ops.reserve(rounds);
    for (std::uint64_t r = 0; r < rounds; ++r) {
      ops.push_back(IoOp{(r * nprocs + static_cast<std::uint64_t>(rank)) * record, record});
    }
    return ops;
  };
}

OpGen segmented_ops(std::uint64_t bytes_per_proc, std::uint64_t record) {
  const std::uint64_t rounds = bytes_per_proc / record;
  return [=](int rank, int nprocs) {
    (void)nprocs;
    std::vector<IoOp> ops;
    ops.reserve(rounds);
    for (std::uint64_t r = 0; r < rounds; ++r) {
      ops.push_back(IoOp{static_cast<std::uint64_t>(rank) * bytes_per_proc + r * record, record});
    }
    return ops;
  };
}

JobSpec mpiio_test(std::uint64_t bytes_per_proc, std::uint64_t record, TargetOptions target) {
  JobSpec spec;
  spec.file = "mpiio_test";
  spec.ops = strided_ops(bytes_per_proc, record);
  spec.target = target;
  return spec;
}

JobSpec ior(TargetOptions target) {
  JobSpec spec;
  spec.file = "ior";
  spec.ops = strided_ops(50_MiB, 1_MiB);
  spec.target = target;
  return spec;
}

namespace {

iolib::WriteFn bind_write(Target& target) {
  return [&target](std::uint64_t off, DataView data) -> sim::Task<Status> {
    co_return co_await target.write(off, std::move(data));
  };
}

iolib::ReadFn bind_read(Target& target) {
  return [&target](std::uint64_t off, std::uint64_t len) -> sim::Task<Result<FragmentList>> {
    co_return co_await target.read(off, len);
  };
}

}  // namespace

JobSpec pixie3d(int nprocs, std::uint64_t bytes_per_proc, int nvars, TargetOptions target) {
  JobSpec spec;
  spec.file = "pixie3d";
  spec.target = target;
  std::vector<iolib::NcVar> vars;
  const std::uint64_t per_var = bytes_per_proc / static_cast<std::uint64_t>(nvars);
  for (int v = 0; v < nvars; ++v) {
    vars.push_back(iolib::NcVar{"var" + std::to_string(v), per_var});
  }
  const std::uint64_t seed = spec.seed;
  spec.write_fn = [vars, seed](mpi::Comm& comm, Target& t) -> sim::Task<Status> {
    co_return co_await iolib::TinyNc::write_all(comm, bind_write(t), vars, seed);
  };
  spec.read_fn = [seed](mpi::Comm& comm, Target& t) -> sim::Task<Status> {
    co_return co_await iolib::TinyNc::read_all(comm, bind_read(t), seed, /*verify=*/true);
  };
  spec.bytes_override = iolib::TinyNc::total_bytes(nprocs, vars);
  return spec;
}

JobSpec aramco(int nprocs, std::uint64_t dataset_bytes, std::uint64_t chunk_bytes,
               TargetOptions target) {
  (void)nprocs;  // strong scaling: the dataset is fixed
  JobSpec spec;
  spec.file = "aramco";
  spec.target = target;
  const std::uint64_t seed = spec.seed;
  spec.write_fn = [=](mpi::Comm& comm, Target& t) -> sim::Task<Status> {
    co_return co_await iolib::TinyHdf::write_all(comm, bind_write(t), dataset_bytes,
                                                 chunk_bytes, seed);
  };
  spec.read_fn = [=](mpi::Comm& comm, Target& t) -> sim::Task<Status> {
    co_return co_await iolib::TinyHdf::read_all(comm, bind_read(t), seed, /*verify=*/true);
  };
  spec.bytes_override = iolib::TinyHdf::layout_for(dataset_bytes, chunk_bytes).file_bytes;
  return spec;
}

JobSpec madbench(std::uint64_t matrix_bytes_per_proc, int matrices, TargetOptions target) {
  JobSpec spec;
  spec.file = "madbench";
  spec.target = target;
  const std::uint64_t record = std::min<std::uint64_t>(matrix_bytes_per_proc, 8_MiB);
  spec.ops = [=](int rank, int nprocs) {
    // Matrix m occupies [m * N * B, (m+1) * N * B); rank's segment inside.
    std::vector<IoOp> ops;
    const std::uint64_t stripe = matrix_bytes_per_proc * static_cast<std::uint64_t>(nprocs);
    for (int m = 0; m < matrices; ++m) {
      const std::uint64_t base =
          m * stripe + static_cast<std::uint64_t>(rank) * matrix_bytes_per_proc;
      for (std::uint64_t off = 0; off < matrix_bytes_per_proc; off += record) {
        ops.push_back(IoOp{base + off, std::min(record, matrix_bytes_per_proc - off)});
      }
    }
    return ops;
  };
  return spec;
}

JobSpec lanl1(std::uint64_t bytes_per_proc, TargetOptions target) {
  JobSpec spec;
  spec.file = "lanl1";
  // The paper: "approximately 500K" — five hundred thousand bytes.
  spec.ops = strided_ops(bytes_per_proc, 500000);
  spec.target = target;
  return spec;
}

JobSpec lanl3(int nprocs, std::uint64_t total_bytes, TargetOptions target,
              iolib::CbConfig cb) {
  JobSpec spec;
  spec.file = "lanl3";
  spec.target = target;
  const std::uint64_t record = 1024;
  const std::uint64_t per_proc = total_bytes / static_cast<std::uint64_t>(nprocs);
  const OpGen gen = strided_ops(per_proc, record);
  const std::uint64_t seed = spec.seed;

  spec.write_fn = [gen, cb, seed](mpi::Comm& comm, Target& t) -> sim::Task<Status> {
    std::vector<iolib::CbChunk> chunks;
    for (const auto& op : gen(comm.rank(), comm.size())) {
      chunks.push_back(iolib::CbChunk{op.offset, DataView::pattern(seed, op.offset, op.len)});
    }
    co_return co_await iolib::cb_write(comm, cb, std::move(chunks), bind_write(t));
  };
  spec.read_fn = [gen, cb, seed](mpi::Comm& comm, Target& t) -> sim::Task<Status> {
    std::vector<iolib::CbRange> wants;
    for (const auto& op : gen(comm.rank(), comm.size())) {
      wants.push_back(iolib::CbRange{op.offset, op.len});
    }
    std::vector<FragmentList> got;
    TIO_CO_RETURN_IF_ERROR(co_await iolib::cb_read(comm, cb, wants, bind_read(t), &got));
    for (std::size_t i = 0; i < wants.size(); ++i) {
      if (!got[i].content_equals(DataView::pattern(seed, wants[i].offset, wants[i].len))) {
        co_return error(Errc::io_error, "lanl3: cb read verification failed");
      }
    }
    co_return Status::Ok();
  };
  spec.bytes_override = per_proc * static_cast<std::uint64_t>(nprocs);
  return spec;
}

JobSpec noncontig(int nprocs, std::uint64_t total_bytes, std::uint64_t field,
                  std::uint64_t stride, TargetOptions target, iolib::CbConfig cb) {
  JobSpec spec;
  spec.file = "noncontig";
  spec.target = target;
  const std::uint64_t elements = total_bytes / stride;
  const std::uint64_t rounds = elements / static_cast<std::uint64_t>(nprocs);
  // Element e = round * nprocs + rank; each rank touches the leading
  // `field` bytes of its elements, leaving a stride-field hole to the next.
  const OpGen gen = [=](int rank, int np) {
    std::vector<IoOp> ops;
    ops.reserve(rounds);
    for (std::uint64_t r = 0; r < rounds; ++r) {
      ops.push_back(IoOp{(r * np + static_cast<std::uint64_t>(rank)) * stride, field});
    }
    return ops;
  };
  const std::uint64_t seed = spec.seed;

  spec.write_fn = [gen, cb, seed](mpi::Comm& comm, Target& t) -> sim::Task<Status> {
    std::vector<iolib::CbChunk> chunks;
    for (const auto& op : gen(comm.rank(), comm.size())) {
      chunks.push_back(iolib::CbChunk{op.offset, DataView::pattern(seed, op.offset, op.len)});
    }
    co_return co_await iolib::cb_write(comm, cb, std::move(chunks), bind_write(t));
  };
  spec.read_fn = [gen, cb, seed](mpi::Comm& comm, Target& t) -> sim::Task<Status> {
    std::vector<iolib::CbRange> wants;
    for (const auto& op : gen(comm.rank(), comm.size())) {
      wants.push_back(iolib::CbRange{op.offset, op.len});
    }
    std::vector<FragmentList> got;
    TIO_CO_RETURN_IF_ERROR(co_await iolib::cb_read(comm, cb, wants, bind_read(t), &got));
    for (std::size_t i = 0; i < wants.size(); ++i) {
      if (!got[i].content_equals(DataView::pattern(seed, wants[i].offset, wants[i].len))) {
        co_return error(Errc::io_error, "noncontig: cb read verification failed");
      }
    }
    co_return Status::Ok();
  };
  spec.bytes_override = rounds * static_cast<std::uint64_t>(nprocs) * field;
  return spec;
}

}  // namespace tio::workloads
