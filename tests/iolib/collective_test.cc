// Differential suite for the collective-buffering pipeline: every mode of
// cb_write/cb_read (aggregator counts, intra-node aggregation, sieving,
// fault plans) must produce bytes identical to plain per-rank direct I/O.
// Plus unit tests pinning the sieve heuristic at its threshold boundaries.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "iolib/collective_buffer.h"
#include "iolib/node_agg.h"
#include "net/cluster.h"
#include "pfs/extent_map.h"
#include "pfs/faulty_fs.h"
#include "testbed/testbed.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"

namespace tio::iolib {
namespace {

net::ClusterConfig tiny_cluster() {
  net::ClusterConfig c;
  c.nodes = 4;
  c.cores_per_node = 4;
  return c;
}

// A per-rank access shape: the write chunks double as the read ranges.
struct Shape {
  const char* name;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> (*ops)(int rank, int nprocs);
};

std::vector<std::pair<std::uint64_t, std::uint64_t>> strided_shape(int rank, int nprocs) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (int r = 0; r < 32; ++r) {
    ops.emplace_back((static_cast<std::uint64_t>(r) * nprocs + rank) * 1024, 1024);
  }
  return ops;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> segmented_shape(int rank, int nprocs) {
  (void)nprocs;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (int r = 0; r < 8; ++r) {
    ops.emplace_back(static_cast<std::uint64_t>(rank) * 32768 + static_cast<std::uint64_t>(r) * 4096,
                     4096);
  }
  return ops;
}

// Field access with holes: 512 useful bytes per 2 KiB element.
std::vector<std::pair<std::uint64_t, std::uint64_t>> noncontig_shape(int rank, int nprocs) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (int r = 0; r < 16; ++r) {
    ops.emplace_back((static_cast<std::uint64_t>(r) * nprocs + rank) * 2048, 512);
  }
  return ops;
}

// Only every third rank participates, with rank-dependent odd sizes.
std::vector<std::pair<std::uint64_t, std::uint64_t>> uneven_shape(int rank, int nprocs) {
  (void)nprocs;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  if (rank % 3 == 0) {
    ops.emplace_back(static_cast<std::uint64_t>(rank) * 5000, 3000 + static_cast<std::uint64_t>(rank));
  }
  return ops;
}

const Shape kShapes[] = {
    {"strided", strided_shape},
    {"segmented", segmented_shape},
    {"noncontig", noncontig_shape},
    {"uneven", uneven_shape},
};

// The config grid the differential sweeps cover.
std::vector<CbConfig> config_grid(double sieve_threshold = 0.0) {
  std::vector<CbConfig> grid;
  for (const int aggs : {0, 1, 3}) {
    for (const bool node_agg : {false, true}) {
      CbConfig cb;
      cb.aggregators = aggs;
      cb.node_aggregation = node_agg;
      cb.sieve_threshold = sieve_threshold;
      cb.buffer_bytes = 64 * 1024;  // small cap: exercises multi-op staging
      grid.push_back(cb);
    }
  }
  return grid;
}

TEST(CbDifferential, WritesMatchDirectPerRankIo) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  const int n = 16;
  for (const Shape& shape : kShapes) {
    // Reference: every rank writes its own records directly.
    pfs::ExtentMap reference;
    std::uint64_t total = 0;
    for (int r = 0; r < n; ++r) {
      for (const auto& [off, len] : shape.ops(r, n)) {
        reference.write(off, DataView::pattern(7, off, len));
        total = std::max(total, off + len);
      }
    }
    for (const CbConfig& cb : config_grid()) {
      pfs::ExtentMap file;
      mpi::run_spmd(cluster, n, [&](mpi::Comm comm) -> sim::Task<void> {
        std::vector<CbChunk> mine;
        for (const auto& [off, len] : shape.ops(comm.rank(), n)) {
          mine.push_back(CbChunk{off, DataView::pattern(7, off, len)});
        }
        const WriteFn write_at = [&file](std::uint64_t off, DataView data) -> sim::Task<Status> {
          file.write(off, std::move(data));
          co_return Status::Ok();
        };
        EXPECT_TRUE((co_await cb_write(comm, cb, std::move(mine), write_at)).ok());
      });
      EXPECT_TRUE(file.read(0, total).content_equals(reference.read(0, total)))
          << shape.name << " aggs=" << cb.aggregators << " node_agg=" << cb.node_aggregation;
    }
  }
}

TEST(CbDifferential, ReadsMatchDirectPerRankIo) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  const int n = 16;
  for (const Shape& shape : kShapes) {
    std::uint64_t total = 0;
    for (int r = 0; r < n; ++r) {
      for (const auto& [off, len] : shape.ops(r, n)) total = std::max(total, off + len);
    }
    pfs::ExtentMap file;
    file.write(0, DataView::pattern(9, 0, total));
    // Sieving at any threshold must never change the returned bytes.
    for (const double sieve : {0.0, 1.0, 1e9}) {
      for (const CbConfig& cb : config_grid(sieve)) {
        mpi::run_spmd(cluster, n, [&](mpi::Comm comm) -> sim::Task<void> {
          std::vector<CbRange> wants;
          for (const auto& [off, len] : shape.ops(comm.rank(), n)) {
            wants.push_back(CbRange{off, len});
          }
          const ReadFn read_at = [&file, total](std::uint64_t off, std::uint64_t len)
              -> sim::Task<Result<FragmentList>> {
            if (off >= total) co_return FragmentList{};
            co_return file.read(off, std::min(len, total - off));
          };
          std::vector<FragmentList> got;
          EXPECT_TRUE((co_await cb_read(comm, cb, wants, read_at, &got)).ok());
          EXPECT_EQ(got.size(), wants.size());
          if (got.size() != wants.size()) co_return;
          for (std::size_t i = 0; i < wants.size(); ++i) {
            // Direct per-rank I/O would read the pattern straight out.
            EXPECT_TRUE(got[i].content_equals(
                DataView::pattern(9, wants[i].offset, wants[i].len)))
                << shape.name << " rank " << comm.rank() << " want " << i
                << " aggs=" << cb.aggregators << " node_agg=" << cb.node_aggregation
                << " sieve=" << cb.sieve_threshold;
          }
        });
      }
    }
  }
}

// The full stack (Rig + FaultyFs): transient faults are absorbed below the
// collective layer and must not change any byte, in either pipeline mode.
TEST(CbDifferential, FaultPlansDoNotChangeBytes) {
  for (const char* plan : {"none", "transient1"}) {
    for (const bool node_agg : {false, true}) {
      testbed::Rig::Options opts;
      opts.cluster = testbed::lanl_cluster();
      opts.pfs = testbed::lanl_pfs(1);
      opts.fault_plan = pfs::FaultPlan::parse(plan).value();
      testbed::Rig rig(opts);

      CbConfig cb;
      cb.node_aggregation = node_agg;
      cb.sieve_threshold = node_agg ? 2.0 : 0.0;  // exercise sieving in one mode
      workloads::TargetOptions target;
      target.access = workloads::Access::direct_n1;

      // Both collective kernels; their read_fn verifies every byte against
      // the written pattern (== what direct per-rank I/O produces).
      auto lanl3 = workloads::lanl3(16, 1 << 20, target, cb);
      EXPECT_NO_THROW(workloads::run_job(rig, 16, lanl3)) << plan << " " << node_agg;
      auto nc = workloads::noncontig(16, 1 << 20, 512, 2048, target, cb);
      EXPECT_NO_THROW(workloads::run_job(rig, 16, nc)) << plan << " " << node_agg;
    }
  }
}

TEST(CbNodePlan, GroupsRanksByNodeWithLowestRankLeading) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  mpi::run_spmd(cluster, 16, [](mpi::Comm comm) -> sim::Task<void> {
    const NodePlan plan = NodePlan::build(comm);
    EXPECT_EQ(plan.num_nodes(), 4);
    EXPECT_EQ(plan.my_node, comm.rank() / 4);
    EXPECT_EQ(plan.leader_of(plan.my_node), (comm.rank() / 4) * 4);
    EXPECT_EQ(plan.is_leader(comm.rank()), comm.rank() % 4 == 0);
    EXPECT_EQ(plan.members[plan.my_node].size(), 4u);
    co_return;
  });
}

// --- sieve heuristic unit tests (threshold boundaries) ---

TEST(CbSieve, ZeroThresholdReturnsRunsUnchanged) {
  const std::vector<CbRange> runs = {{0, 100}, {500, 100}, {1000, 100}};
  CbSieveStats stats;
  EXPECT_EQ(cb_sieve_groups(runs, 0.0, &stats), runs);
  EXPECT_EQ(stats.joins, 0u);
  EXPECT_EQ(stats.hole_bytes, 0u);
  EXPECT_EQ(cb_sieve_groups(runs, -1.0), runs);
}

TEST(CbSieve, ExactRatioBoundaryStillJoins) {
  // hole = 100, useful = 200 after the join: ratio exactly 0.5.
  const std::vector<CbRange> runs = {{0, 100}, {200, 100}};
  CbSieveStats stats;
  const auto joined = cb_sieve_groups(runs, 0.5, &stats);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], (CbRange{0, 300}));
  EXPECT_EQ(stats.joins, 1u);
  EXPECT_EQ(stats.hole_bytes, 100u);
  // Just below the exact ratio: no join.
  EXPECT_EQ(cb_sieve_groups(runs, 0.4999).size(), 2u);
}

TEST(CbSieve, AllHolesBridgedUnderLargeThreshold) {
  const std::vector<CbRange> runs = {{0, 10}, {1000, 10}, {5000, 10}, {90000, 10}};
  CbSieveStats stats;
  const auto joined = cb_sieve_groups(runs, 1e9, &stats);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], (CbRange{0, 90010}));
  EXPECT_EQ(stats.joins, 3u);
  EXPECT_EQ(stats.hole_bytes, 90010u - 40u);
}

TEST(CbSieve, AccumulatedHolesStopTheGroup) {
  // The middle and last runs would join as a fresh pair (hole 100 <=
  // useful 120 at threshold 1.0), but joining onto the accumulated group
  // would make 290 hole bytes against 220 useful -> the group is cut.
  const std::vector<CbRange> runs = {{0, 100}, {290, 100}, {490, 20}};
  const auto grouped = cb_sieve_groups(runs, 1.0);
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_EQ(grouped[0], (CbRange{0, 390}));
  EXPECT_EQ(grouped[1], (CbRange{490, 20}));
  const auto fresh = cb_sieve_groups({{290, 100}, {490, 20}}, 1.0);
  EXPECT_EQ(fresh.size(), 1u);
}

TEST(CbSieve, DegenerateInputs) {
  EXPECT_TRUE(cb_sieve_groups({}, 5.0).empty());
  const std::vector<CbRange> one = {{42, 7}};
  EXPECT_EQ(cb_sieve_groups(one, 5.0), one);
}

// End to end: on the holey pattern a high sieve threshold collapses the
// aggregator's operation count, and a zero threshold reproduces list I/O.
TEST(CbSieve, ThresholdCollapsesPfsOperationCount) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  const int n = 16;
  std::uint64_t total = 0;
  for (int r = 0; r < n; ++r) {
    for (const auto& [off, len] : noncontig_shape(r, n)) total = std::max(total, off + len);
  }
  pfs::ExtentMap file;
  file.write(0, DataView::pattern(9, 0, total));

  auto ops_with = [&](double threshold) {
    std::uint64_t ops = 0;
    CbConfig cb;
    cb.aggregators = 1;
    cb.sieve_threshold = threshold;
    mpi::run_spmd(cluster, n, [&](mpi::Comm comm) -> sim::Task<void> {
      std::vector<CbRange> wants;
      for (const auto& [off, len] : noncontig_shape(comm.rank(), n)) {
        wants.push_back(CbRange{off, len});
      }
      const ReadFn read_at = [&file, &ops, total](std::uint64_t off, std::uint64_t len)
          -> sim::Task<Result<FragmentList>> {
        ++ops;
        co_return file.read(off, std::min(len, total - off));
      };
      std::vector<FragmentList> got;
      EXPECT_TRUE((co_await cb_read(comm, cb, wants, read_at, &got)).ok());
    });
    return ops;
  };

  const std::uint64_t list_io = ops_with(0.0);
  const std::uint64_t sieved = ops_with(1e9);
  EXPECT_EQ(list_io, static_cast<std::uint64_t>(n) * 16);  // one op per merged run
  EXPECT_LT(sieved, list_io / 16);                         // covering reads
}

}  // namespace
}  // namespace tio::iolib
