// Federated metadata management demo.
//
// An N-N create storm (every process creating its own files in one logical
// directory) is the heaviest metadata load PLFS generates. This example
// shows how spreading containers and subdirs across federated metadata
// namespaces turns a single-MDS pile-up into scalable parallel creation —
// and what it costs when federation is off.
//
//   ./metadata_federation [--procs 512] [--files-per-proc 4]
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "workloads/metadata.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  FlagSet flags("metadata_federation: N-N create storms vs metadata-server count");
  auto* procs = flags.add_i64("procs", 512, "processes creating files");
  auto* files = flags.add_i64("files-per-proc", 4, "files each process creates");
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const int n = static_cast<int>(*procs);
  const auto total_files = *procs * *files;

  std::printf("%d processes each create+close %lld files: %lld containers total\n\n",
              n, static_cast<long long>(*files), static_cast<long long>(total_files));

  Table table({"configuration", "open+create (s)", "close (s)", "creates/s"});
  MetaSpec spec;
  spec.files_per_proc = static_cast<int>(*files);

  for (const std::size_t mds : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}, std::size_t{16}}) {
    testbed::Rig rig({.cluster = testbed::lanl_cluster(), .pfs = testbed::lanl_pfs(mds)});
    spec.use_plfs = true;
    const MetaResult r = run_metadata_storm(rig, n, spec);
    table.add_row({"PLFS, " + std::to_string(mds) + " MDS", Table::num(r.open_s, 3),
                   Table::num(r.close_s, 3),
                   Table::num(static_cast<double>(total_files) / r.open_s, 0)});
  }
  {
    // Direct access: all creates land in one directory on one MDS, no
    // matter how many servers the file system has.
    testbed::Rig rig({.cluster = testbed::lanl_cluster(), .pfs = testbed::lanl_pfs(16)});
    spec.use_plfs = false;
    const MetaResult r = run_metadata_storm(rig, n, spec);
    table.add_row({"direct PFS (16 MDS available)", Table::num(r.open_s, 3),
                   Table::num(r.close_s, 3),
                   Table::num(static_cast<double>(total_files) / r.open_s, 0)});
  }
  table.print(std::cout);
  std::printf(
      "\nDirect access cannot spread one directory over multiple servers\n"
      "(PanFS-style rigid realms); PLFS's static container/subdir hashing can.\n");
  return 0;
}
