#!/usr/bin/env python3
"""Summarize every checked-in BENCH_*.json at the repo root.

The result files are free-form (each PR records what its benchmark measured),
but they share a few conventional keys: `benchmark`/`bench`, `date`,
`description`, `acceptance`, and flat numeric tables. This report renders a
one-screen digest per file so a reader (or CI) can see at a glance what has
been measured and that every file still parses.

Exit status is non-zero if any BENCH_*.json is unreadable or not a JSON
object — ci.sh runs this as the parse gate for the checked-in results.
"""

import argparse
import json
import sys
from pathlib import Path

INDENT = "  "
MAX_DEPTH = 2  # deeper nests are summarized, not dumped
MAX_ITEMS = 8  # per table, keep the digest one screen


def fmt_scalar(v):
    if isinstance(v, float):
        return f"{v:,.3f}".rstrip("0").rstrip(".")
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


def render(value, depth=1):
    """Yield indented digest lines for one JSON subtree."""
    pad = INDENT * depth
    if isinstance(value, dict):
        flat = {k: v for k, v in value.items() if not isinstance(v, (dict, list))}
        nested = {k: v for k, v in value.items() if isinstance(v, (dict, list))}
        for i, (k, v) in enumerate(flat.items()):
            if i == MAX_ITEMS:
                yield f"{pad}... ({len(flat) - MAX_ITEMS} more)"
                break
            yield f"{pad}{k}: {fmt_scalar(v)}"
        for k, v in nested.items():
            if depth >= MAX_DEPTH:
                yield f"{pad}{k}: {summarize(v)}"
            else:
                yield f"{pad}{k}:"
                yield from render(v, depth + 1)
    elif isinstance(value, list):
        yield f"{pad}{summarize(value)}"
    else:
        yield f"{pad}{fmt_scalar(value)}"


def summarize(value):
    if isinstance(value, list):
        return f"[{len(value)} entries]"
    if isinstance(value, dict):
        keys = ", ".join(list(value)[:MAX_ITEMS])
        more = ", ..." if len(value) > MAX_ITEMS else ""
        return f"{{{keys}{more}}}"
    return fmt_scalar(value)


def report(path: Path) -> bool:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path.name}: UNREADABLE ({e})", file=sys.stderr)
        return False
    if not isinstance(data, dict):
        print(f"{path.name}: expected a JSON object, got {type(data).__name__}",
              file=sys.stderr)
        return False

    title = data.get("benchmark") or data.get("bench") or "(untitled)"
    date = data.get("date", "")
    print(f"== {path.name} — {title}" + (f" ({date})" if date else ""))
    desc = data.get("description", "")
    if desc:
        print(f"{INDENT}{desc[:200]}{'...' if len(desc) > 200 else ''}")
    if "acceptance" in data:
        print(f"{INDENT}acceptance: {summarize(data['acceptance'])}")

    skip = {"benchmark", "bench", "description", "date", "acceptance", "schema",
            "build_type", "compiler", "notes"}
    for key, value in data.items():
        if key in skip:
            continue
        if isinstance(value, (dict, list)):
            print(f"{INDENT}{key}:")
            for line in render(value, 2):
                print(line)
        else:
            print(f"{INDENT}{key}: {fmt_scalar(value)}")
    print()
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="result files (default: BENCH_*.json beside the repo root)")
    args = parser.parse_args()

    files = args.files or sorted(Path(__file__).resolve().parent.parent.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    ok = True
    for path in files:
        ok &= report(path)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
