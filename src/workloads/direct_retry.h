// Transient-fault retry for the direct-access (non-PLFS) comparator legs.
//
// Direct targets and the direct metadata storm talk to the backend FsClient
// below the PLFS retry layer, so when a fault plan wraps the PFS they would
// otherwise abort on the first injected io_error. They carry their own copy
// of the mount's retry policy instead: the same deterministic capped
// backoff, but no budget and no per-op timeout — the direct path models a
// plain POSIX client re-issuing a failed syscall, not the middleware's
// bounded recovery. Counters live under direct.retry.* so PLFS-layer retry
// figures stay uncontaminated.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

#include "common/retry.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace tio::workloads {

namespace detail {
inline Status retry_status_of(const Status& s) { return s; }
template <typename T>
Status retry_status_of(const Result<T>& r) {
  return r.status();
}
template <typename T>
struct retry_task_value;
template <typename T>
struct retry_task_value<sim::Task<T>> {
  using type = T;
};
}  // namespace detail

// Stable jitter-stream key for a path-addressed operation.
inline std::uint64_t direct_op_key(std::string_view path) {
  std::uint64_t h = 0xd12ec7a11ull;
  for (const char c : path) h = splitmix64(h ^ static_cast<unsigned char>(c));
  return h;
}

// Runs make_op(), retrying transient failures with jittered backoff under
// `policy`. Returns the last result (success, permanent error, or the
// transient error that exhausted the attempts).
template <typename MakeOp>
auto direct_retry(sim::Engine& engine, const RetryPolicy& policy, std::uint64_t op_key,
                  MakeOp make_op) -> decltype(make_op()) {
  using R = typename detail::retry_task_value<decltype(make_op())>::type;
  for (int attempt = 0;; ++attempt) {
    R result = co_await make_op();
    const Status st = detail::retry_status_of(result);
    if (st.ok()) {
      if (attempt > 0) counter("direct.retry.success_after_retry").add(1);
      co_return std::move(result);
    }
    if (!st.is_transient()) co_return std::move(result);
    if (attempt + 1 >= policy.max_attempts) {
      counter("direct.retry.exhausted").add(1);
      co_return std::move(result);
    }
    const Duration wait = policy.backoff(attempt, op_key);
    counter("direct.retry.attempts").add(1);
    co_await engine.sleep(wait);
  }
}

}  // namespace tio::workloads
