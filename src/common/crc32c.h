// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Used as the integrity trailer on serialized index records: a flattened
// global index that was torn by a mid-write crash must be detected at read
// open, not absorbed into wrong reads. Table-driven software implementation;
// the simulator's index files are small enough that hardware CRC is not
// worth a platform dependency.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tio {

// CRC of `data[0..len)`, continuing from `seed` (pass 0 to start; chained
// calls compose: crc32c(b, m, crc32c(a, n)) == crc32c(a+b, n+m)).
std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace tio
