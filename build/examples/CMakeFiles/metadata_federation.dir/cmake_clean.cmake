file(REMOVE_RECURSE
  "CMakeFiles/metadata_federation.dir/metadata_federation.cpp.o"
  "CMakeFiles/metadata_federation.dir/metadata_federation.cpp.o.d"
  "metadata_federation"
  "metadata_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
