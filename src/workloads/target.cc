#include "workloads/target.h"

#include "common/rng.h"
#include "common/stats.h"
#include "common/strutil.h"
#include "workloads/direct_retry.h"

namespace tio::workloads {

using pfs::IoCtx;
using pfs::OpenFlags;

std::string_view access_name(Access access) {
  switch (access) {
    case Access::plfs_n1: return "plfs-n1";
    case Access::plfs_nn: return "plfs-nn";
    case Access::direct_n1: return "direct-n1";
    case Access::direct_nn: return "direct-nn";
  }
  return "?";
}

bool is_plfs(Access access) {
  return access == Access::plfs_n1 || access == Access::plfs_nn;
}
bool is_n1(Access access) {
  return access == Access::plfs_n1 || access == Access::direct_n1;
}

std::string TargetFactory::plfs_path(const std::string& name, Access access, int rank) const {
  return access == Access::plfs_n1 ? "/" + name : str_printf("/%s.%d", name.c_str(), rank);
}

std::string TargetFactory::direct_path(const std::string& name, Access access, int rank) const {
  const std::string base = path_join(direct_dir_, name);
  return access == Access::direct_n1 ? base : str_printf("%s.%d", base.c_str(), rank);
}

namespace {

// Per-op client think time: desynchronizes the lock-step op streams the
// synthetic generators would otherwise produce.
class JitterBase : public Target {
 protected:
  JitterBase(sim::Engine& engine, Duration jitter, std::uint64_t stream)
      : engine_(&engine), jitter_(jitter), rng_(engine.fork_rng(stream)) {}
  sim::Task<void> think() {
    if (jitter_ > Duration::zero()) {
      co_await engine_->sleep(
          Duration::ns(static_cast<std::int64_t>(rng_.below(
              static_cast<std::uint64_t>(jitter_.to_ns()) + 1))));
    }
  }

 private:
  sim::Engine* engine_;
  Duration jitter_;
  Rng rng_;
};

// --- PLFS shared logical file (collective MpiFile) ---
class PlfsN1Target final : public JitterBase {
 public:
  PlfsN1Target(sim::Engine& engine, Duration jitter, std::uint64_t stream,
               std::unique_ptr<plfs::MpiFile> file, bool writing, bool flatten)
      : JitterBase(engine, jitter, stream), file_(std::move(file)), writing_(writing),
        flatten_(flatten) {}
  sim::Task<Status> write(std::uint64_t offset, DataView data) override {
    co_await think();
    co_return co_await file_->write(offset, std::move(data));
  }
  sim::Task<Result<FragmentList>> read(std::uint64_t offset, std::uint64_t len) override {
    co_await think();
    co_return co_await file_->read(offset, len);
  }
  sim::Task<Status> close() override {
    // Not a conditional expression: GCC 12 mis-sequences temporaries around
    // co_await inside ?: operands.
    if (writing_) co_return co_await file_->close_write(flatten_);
    co_return co_await file_->close_read();
  }
  std::uint64_t size() const override { return file_->logical_size(); }

 private:
  std::unique_ptr<plfs::MpiFile> file_;
  bool writing_;
  bool flatten_;
};

// --- PLFS file-per-process (independent handles, collective barriers) ---
class PlfsNnTarget final : public JitterBase {
 public:
  PlfsNnTarget(sim::Engine& engine, Duration jitter, std::uint64_t stream, mpi::Comm& comm,
               std::unique_ptr<plfs::WriteHandle> wh, std::unique_ptr<plfs::ReadHandle> rh)
      : JitterBase(engine, jitter, stream), comm_(&comm), write_(std::move(wh)),
        read_(std::move(rh)) {}
  sim::Task<Status> write(std::uint64_t offset, DataView data) override {
    if (!write_) co_return error(Errc::bad_handle, "read-mode target");
    co_await think();
    co_return co_await write_->write(offset, std::move(data));
  }
  sim::Task<Result<FragmentList>> read(std::uint64_t offset, std::uint64_t len) override {
    if (!read_) co_return error(Errc::bad_handle, "write-mode target");
    co_await think();
    co_return co_await read_->read(offset, len);
  }
  sim::Task<Status> close() override {
    if (write_) TIO_CO_RETURN_IF_ERROR(co_await write_->close());
    if (read_) TIO_CO_RETURN_IF_ERROR(co_await read_->close());
    write_.reset();
    read_.reset();
    co_await comm_->barrier();
    co_return Status::Ok();
  }
  std::uint64_t size() const override { return read_ ? read_->logical_size() : 0; }

 private:
  mpi::Comm* comm_;
  std::unique_ptr<plfs::WriteHandle> write_;
  std::unique_ptr<plfs::ReadHandle> read_;
};

// --- direct PFS access ---
class DirectTarget final : public JitterBase {
 public:
  DirectTarget(sim::Engine& engine, Duration jitter, std::uint64_t stream, mpi::Comm& comm,
               pfs::FsClient& fs, const RetryPolicy& policy, pfs::FileId fd, std::uint64_t size)
      : JitterBase(engine, jitter, stream), engine_(&engine), comm_(&comm), fs_(&fs),
        policy_(policy), fd_(fd), size_(size) {}
  sim::Task<Status> write(std::uint64_t offset, DataView data) override {
    co_await think();
    // Resume after any torn prefix, and retry transient failures in place:
    // a plain POSIX writer re-issues the syscall from where it got to.
    const std::uint64_t n = data.size();
    const std::uint64_t key = splitmix64(fd_ ^ offset);
    std::uint64_t done = 0;
    for (int attempt = 0; done < n;) {
      auto wrote = co_await fs_->write(ctx(), fd_, offset + done, data.slice(done, n - done));
      if (wrote.ok()) {
        done += *wrote;
        attempt = 0;
        continue;
      }
      if (!wrote.status().is_transient()) co_return wrote.status();
      if (attempt + 1 >= policy_.max_attempts) {
        counter("direct.retry.exhausted").add(1);
        co_return wrote.status();
      }
      counter("direct.retry.attempts").add(1);
      co_await engine_->sleep(policy_.backoff(attempt, key));
      ++attempt;
    }
    co_return Status::Ok();
  }
  sim::Task<Result<FragmentList>> read(std::uint64_t offset, std::uint64_t len) override {
    co_await think();
    co_return co_await direct_retry(
        *engine_, policy_, splitmix64(fd_ ^ offset) ^ 1,
        [&] { return fs_->read(ctx(), fd_, offset, len); });
  }
  sim::Task<Status> close() override {
    TIO_CO_RETURN_IF_ERROR(co_await direct_retry(
        *engine_, policy_, splitmix64(fd_) ^ 2, [&] { return fs_->close(ctx(), fd_); }));
    co_await comm_->barrier();
    co_return Status::Ok();
  }
  std::uint64_t size() const override { return size_; }

 private:
  pfs::IoCtx ctx() const { return IoCtx{comm_->my_node(), comm_->global_rank()}; }
  sim::Engine* engine_;
  mpi::Comm* comm_;
  pfs::FsClient* fs_;
  RetryPolicy policy_;
  pfs::FileId fd_;
  std::uint64_t size_;
};

}  // namespace

sim::Task<Result<std::unique_ptr<Target>>> TargetFactory::open_write(mpi::Comm& comm,
                                                                     std::string name,
                                                                     TargetOptions options) {
  const IoCtx ctx{comm.my_node(), comm.global_rank()};
  switch (options.access) {
    case Access::plfs_n1: {
      auto file = co_await plfs::MpiFile::open_write(*plfs_, comm, plfs_path(name,
                                                     options.access, comm.rank()));
      if (!file.ok()) co_return file.status();
      co_return std::make_unique<PlfsN1Target>(comm.engine(), options.op_jitter,
                                               static_cast<std::uint64_t>(comm.rank()),
                                               std::move(file.value()), true,
                                               options.flatten_on_close);
    }
    case Access::plfs_nn: {
      auto wh = co_await plfs_->open_write(ctx, plfs_path(name, options.access, comm.rank()),
                                           /*rank=*/0);
      if (!wh.ok()) co_return wh.status();
      co_await comm.barrier();
      co_return std::make_unique<PlfsNnTarget>(comm.engine(), options.op_jitter,
                                               static_cast<std::uint64_t>(comm.rank()), comm,
                                               std::move(wh.value()), nullptr);
    }
    case Access::direct_n1: {
      const RetryPolicy& retry = plfs_->mount().retry;
      const std::string path = direct_path(name, options.access, 0);
      // Rank 0 creates/truncates the shared file; everyone else opens after.
      if (comm.rank() == 0) {
        auto fd = co_await direct_retry(comm.engine(), retry, direct_op_key(path),
                                        [&] { return fs().open(ctx, path,
                                                               OpenFlags::wr_trunc()); });
        if (!fd.ok()) co_return fd.status();
        co_await comm.barrier();
        co_return std::make_unique<DirectTarget>(comm.engine(), options.op_jitter, 0, comm,
                                                 fs(), retry, *fd, 0);
      }
      co_await comm.barrier();
      auto fd = co_await direct_retry(comm.engine(), retry, direct_op_key(path),
                                      [&] { return fs().open(ctx, path, OpenFlags::wr()); });
      if (!fd.ok()) co_return fd.status();
      co_return std::make_unique<DirectTarget>(comm.engine(), options.op_jitter,
                                               static_cast<std::uint64_t>(comm.rank()), comm,
                                               fs(), retry, *fd, 0);
    }
    case Access::direct_nn: {
      const RetryPolicy& retry = plfs_->mount().retry;
      const std::string path = direct_path(name, options.access, comm.rank());
      auto fd = co_await direct_retry(comm.engine(), retry, direct_op_key(path),
                                      [&] { return fs().open(ctx, path,
                                                             OpenFlags::wr_trunc()); });
      if (!fd.ok()) co_return fd.status();
      co_await comm.barrier();
      co_return std::make_unique<DirectTarget>(comm.engine(), options.op_jitter,
                                               static_cast<std::uint64_t>(comm.rank()), comm,
                                               fs(), retry, *fd, 0);
    }
  }
  co_return error(Errc::invalid, "bad access mode");
}

sim::Task<Result<std::unique_ptr<Target>>> TargetFactory::open_read(mpi::Comm& comm,
                                                                    std::string name,
                                                                    TargetOptions options) {
  const IoCtx ctx{comm.my_node(), comm.global_rank()};
  switch (options.access) {
    case Access::plfs_n1: {
      auto file = co_await plfs::MpiFile::open_read(
          *plfs_, comm, plfs_path(name, options.access, comm.rank()), options.strategy);
      if (!file.ok()) co_return file.status();
      co_return std::make_unique<PlfsN1Target>(comm.engine(), options.op_jitter,
                                               static_cast<std::uint64_t>(comm.rank()),
                                               std::move(file.value()), false, false);
    }
    case Access::plfs_nn: {
      // Single-writer containers: the Original (uncoordinated) path is the
      // natural one; each rank aggregates its own file's one index log.
      auto rh = co_await plfs_->open_read(ctx, plfs_path(name, options.access, comm.rank()));
      if (!rh.ok()) co_return rh.status();
      co_await comm.barrier();
      co_return std::make_unique<PlfsNnTarget>(comm.engine(), options.op_jitter,
                                               static_cast<std::uint64_t>(comm.rank()), comm,
                                               nullptr, std::move(rh.value()));
    }
    case Access::direct_n1:
    case Access::direct_nn: {
      const RetryPolicy& retry = plfs_->mount().retry;
      const std::string path = direct_path(name, options.access, comm.rank());
      auto st = co_await direct_retry(comm.engine(), retry, direct_op_key(path) ^ 4,
                                      [&] { return fs().stat(ctx, path); });
      if (!st.ok()) co_return st.status();
      auto fd = co_await direct_retry(comm.engine(), retry, direct_op_key(path),
                                      [&] { return fs().open(ctx, path, OpenFlags::ro()); });
      if (!fd.ok()) co_return fd.status();
      co_await comm.barrier();
      co_return std::make_unique<DirectTarget>(comm.engine(), options.op_jitter,
                                               static_cast<std::uint64_t>(comm.rank()), comm,
                                               fs(), retry, *fd, st->size);
    }
  }
  co_return error(Errc::invalid, "bad access mode");
}

}  // namespace tio::workloads
