// Determinism regression for the engine hot path: a fig. 4-shaped N-1
// strided PLFS job at 4096 ranks must produce bit-identical results across
// runs — same event count, same virtual end time, same phase times, same
// byte volumes. The event queue's (time, sequence) ordering contract is
// what makes this hold; any change that reorders same-time events (heap
// layout, the now_-FIFO fast path, waiter-list order) breaks this test.
//
// The cross-shard matrix below additionally pins the sharding contract:
// spreading independent simulations across a ShardPool must not change any
// simulated result at any shard count, and every shard count must be
// bit-reproducible run to run. TIO_MATRIX_RANKS shrinks the rig for slow
// instrumented builds (TSan CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "pfs/faulty_fs.h"
#include "sim/sharded.h"
#include "testbed/testbed.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"
#include "workloads/metadata.h"

namespace tio::workloads {
namespace {

constexpr int kRanks = 4096;

struct Outcome {
  std::uint64_t events;
  std::int64_t end_ns;
  PhaseTimes write;
  PhaseTimes read;
};

Outcome run_once() {
  testbed::Rig::Options opts;
  opts.cluster = testbed::lanl_cluster();
  opts.pfs = testbed::lanl_pfs();
  testbed::Rig rig(opts);

  JobSpec spec;
  spec.file = "determinism";
  spec.ops = strided_ops(/*bytes_per_proc=*/64 << 10, /*record=*/16 << 10);
  spec.target.access = Access::plfs_n1;
  const JobResult result = run_job(rig, kRanks, spec);
  return Outcome{rig.engine().events_processed(), rig.engine().now().to_ns(),
                 result.write, result.read};
}

void expect_identical(const PhaseTimes& a, const PhaseTimes& b) {
  // Exact equality on purpose: virtual time is discrete, so reproducible
  // runs match to the bit, not to a tolerance.
  EXPECT_EQ(a.open_s, b.open_s);
  EXPECT_EQ(a.io_s, b.io_s);
  EXPECT_EQ(a.close_s, b.close_s);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Determinism, Fig4ShapedJobIsBitReproducible) {
  const Outcome a = run_once();
  const Outcome b = run_once();

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_ns, b.end_ns);
  expect_identical(a.write, b.write);
  expect_identical(a.read, b.read);

  // Sanity: the job actually ran at scale and moved the expected volume.
  EXPECT_GT(a.events, static_cast<std::uint64_t>(kRanks));
  EXPECT_EQ(a.write.bytes, static_cast<std::uint64_t>(kRanks) * (64 << 10));
  EXPECT_GT(a.end_ns, 0);
}

// ---------------------------------------------------------------------------
// Cross-shard matrix: fig. 8-shaped cells (Cielo rig, N-1 I/O plus an N-N
// metadata storm) run through a ShardPool at shards in {1, 2, 4, 8}.

int matrix_ranks() {
  if (const char* env = std::getenv("TIO_MATRIX_RANKS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return kRanks;
}

struct MatrixOutcome {
  std::uint64_t events = 0;
  std::int64_t end_ns = 0;
  PhaseTimes write = {};
  PhaseTimes read = {};
  double open_s = 0;
  double close_s = 0;
};

testbed::Rig::Options cielo_opts(const pfs::FaultPlan& plan) {
  testbed::Rig::Options opts;
  opts.cluster = testbed::cielo();
  opts.pfs = testbed::cielo_pfs(10);
  opts.fault_plan = plan;
  return opts;
}

MatrixOutcome io_cell(Access access, int ranks, const pfs::FaultPlan& plan) {
  testbed::Rig rig(cielo_opts(plan));
  JobSpec spec;
  spec.file = "matrix";
  spec.ops = strided_ops(/*bytes_per_proc=*/64 << 10, /*record=*/16 << 10);
  spec.target.access = access;
  const JobResult result = run_job(rig, ranks, spec);
  return MatrixOutcome{rig.engine().events_processed(), rig.engine().now().to_ns(),
                       result.write, result.read, 0, 0};
}

MatrixOutcome storm_cell(int ranks, const pfs::FaultPlan& plan) {
  testbed::Rig rig(cielo_opts(plan));
  MetaSpec spec;
  spec.files_per_proc = 4;
  spec.use_plfs = true;
  const MetaResult r = run_metadata_storm(rig, std::min(ranks, 256), spec);
  return MatrixOutcome{rig.engine().events_processed(), rig.engine().now().to_ns(),
                       PhaseTimes{}, PhaseTimes{}, r.open_s, r.close_s};
}

// Runs every cell through a pool with the given shard count. Each cell is an
// independent rig, so the results must not depend on placement.
std::vector<MatrixOutcome> run_matrix(std::size_t shards, int ranks,
                                      const pfs::FaultPlan& plan) {
  std::vector<MatrixOutcome> out(3);
  sim::ShardPool pool(shards);
  pool.submit([&out, ranks, &plan] { out[0] = io_cell(Access::direct_n1, ranks, plan); });
  pool.submit([&out, ranks, &plan] { out[1] = io_cell(Access::plfs_n1, ranks, plan); });
  pool.submit([&out, ranks, &plan] { out[2] = storm_cell(ranks, plan); });
  pool.run_all();
  return out;
}

void expect_matrix_identical(const std::vector<MatrixOutcome>& a,
                             const std::vector<MatrixOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(a[i].events, b[i].events);
    EXPECT_EQ(a[i].end_ns, b[i].end_ns);
    expect_identical(a[i].write, b[i].write);
    expect_identical(a[i].read, b[i].read);
    EXPECT_EQ(a[i].open_s, b[i].open_s);
    EXPECT_EQ(a[i].close_s, b[i].close_s);
  }
}

TEST(Determinism, CrossShardMatrixMatchesSerialBaseline) {
  const pfs::FaultPlan no_faults = {};
  const int ranks = matrix_ranks();
  // shards=1 is the legacy inline path — the seed baseline.
  const std::vector<MatrixOutcome> baseline = run_matrix(1, ranks, no_faults);
  EXPECT_GT(baseline[0].events, static_cast<std::uint64_t>(ranks));
  EXPECT_GT(baseline[2].open_s, 0.0);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const std::vector<MatrixOutcome> sharded = run_matrix(shards, ranks, no_faults);
    expect_matrix_identical(baseline, sharded);
    // Bit-reproducible at this shard count, not just equal to serial.
    const std::vector<MatrixOutcome> again = run_matrix(shards, ranks, no_faults);
    expect_matrix_identical(sharded, again);
  }
}

TEST(Determinism, ChaosStressPlanReproducibleAtFourShards) {
  // The fault_test stress preset: transient errors, latency spikes, torn
  // writes, outage windows. Faults are drawn from seeded per-rig streams,
  // so sharding must not perturb them.
  auto plan = pfs::FaultPlan::parse("stress,seed=303");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  const int ranks = std::min(matrix_ranks(), 512);

  const std::vector<MatrixOutcome> serial = run_matrix(1, ranks, plan.value());
  const std::vector<MatrixOutcome> a = run_matrix(4, ranks, plan.value());
  const std::vector<MatrixOutcome> b = run_matrix(4, ranks, plan.value());
  expect_matrix_identical(serial, a);
  expect_matrix_identical(a, b);
}

}  // namespace
}  // namespace tio::workloads
