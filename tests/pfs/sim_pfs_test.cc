#include "pfs/sim_pfs.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace tio::pfs {
namespace {

net::ClusterConfig test_cluster() {
  net::ClusterConfig c;
  c.nodes = 8;
  c.cores_per_node = 4;
  c.storage_net_bandwidth = 1e9;
  c.storage_nic_bandwidth = 1e9;
  c.page_cache_per_node = 64_MiB;
  c.page_cache_block = 64_KiB;
  return c;
}

PfsConfig test_pfs() {
  PfsConfig c;
  c.num_mds = 4;
  c.num_osts = 8;
  return c;
}

class SimPfsTest : public ::testing::Test {
 protected:
  SimPfsTest() : cluster_(engine_, test_cluster()), fs_(cluster_, test_pfs()) {}

  sim::Engine engine_;
  net::Cluster cluster_;
  SimPfs fs_;
  IoCtx ctx_{0, 0};
};

TEST_F(SimPfsTest, CreateWriteReadRoundTrip) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE(fd.ok()) << fd.status();
    const auto data = DataView::pattern(1, 0, 100000);
    auto n = co_await fs.write(ctx, *fd, 0, data);
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(*n, 100000u);
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());

    auto rfd = co_await fs.open(ctx, "/f", OpenFlags::ro());
    EXPECT_TRUE(rfd.ok());
    auto fl = co_await fs.read(ctx, *rfd, 0, 100000);
    EXPECT_TRUE(fl.ok());
    EXPECT_TRUE(fl->content_equals(data));
    EXPECT_TRUE((co_await fs.close(ctx, *rfd)).ok());
  }(fs_, ctx_));
  EXPECT_GT(engine_.now().to_ns(), 0);
  EXPECT_EQ(fs_.stats().bytes_written, 100000u);
}

TEST_F(SimPfsTest, OpenMissingWithoutCreateFails) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/missing", OpenFlags::ro());
    EXPECT_EQ(fd.status().code(), Errc::not_found);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, ExclCreateOfExistingFails) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags::wr_create_excl());
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    auto again = co_await fs.open(ctx, "/f", OpenFlags::wr_create_excl());
    EXPECT_EQ(again.status().code(), Errc::exists);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, CreateInMissingParentFails) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/no/such/dir/f", OpenFlags::wr_create());
    EXPECT_EQ(fd.status().code(), Errc::not_found);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, TruncResetsContent) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::pattern(1, 0, 5000))).ok());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    auto fd2 = co_await fs.open(ctx, "/f", OpenFlags::wr_trunc());
    EXPECT_TRUE(fd2.ok());
    EXPECT_TRUE((co_await fs.close(ctx, *fd2)).ok());
    auto st = co_await fs.stat(ctx, "/f");
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st->size, 0u);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, ReadPastEofIsShort) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::pattern(1, 0, 100))).ok());
    auto fl = co_await fs.read(ctx, *fd, 50, 1000);
    EXPECT_TRUE(fl.ok());
    EXPECT_EQ(fl->size(), 50u);
    auto beyond = co_await fs.read(ctx, *fd, 200, 10);
    EXPECT_TRUE(beyond.ok());
    EXPECT_EQ(beyond->size(), 0u);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, HolesReadAsZeros) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 100000, DataView::pattern(1, 0, 10))).ok());
    auto fl = co_await fs.read(ctx, *fd, 0, 100);
    EXPECT_TRUE(fl.ok());
    EXPECT_TRUE(fl->content_equals(DataView::zeros(100)));
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, PermissionChecks) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto wfd = co_await fs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE(wfd.ok());
    auto r = co_await fs.read(ctx, *wfd, 0, 10);
    EXPECT_EQ(r.status().code(), Errc::permission);
    EXPECT_TRUE((co_await fs.close(ctx, *wfd)).ok());
    auto rfd = co_await fs.open(ctx, "/f", OpenFlags::ro());
    EXPECT_TRUE(rfd.ok());
    auto w = co_await fs.write(ctx, *rfd, 0, DataView::zeros(1));
    EXPECT_EQ(w.status().code(), Errc::permission);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, BadHandleIsRejected) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_EQ((co_await fs.close(ctx, 999)).code(), Errc::bad_handle);
    EXPECT_EQ((co_await fs.read(ctx, 999, 0, 1)).status().code(), Errc::bad_handle);
    EXPECT_EQ((co_await fs.write(ctx, 999, 0, DataView::zeros(1))).status().code(),
              Errc::bad_handle);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, StatReportsSizeAndMtime) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE(fd.ok());
    const TimePoint before = fs.engine().now();
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::pattern(1, 0, 12345))).ok());
    auto st = co_await fs.stat(ctx, "/f");
    EXPECT_TRUE(st.ok());
    EXPECT_FALSE(st->is_dir);
    EXPECT_EQ(st->size, 12345u);
    EXPECT_GT(st->mtime.to_ns(), before.to_ns());
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, MkdirReaddirUnlinkFlow) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/d")).ok());
    for (int i = 0; i < 3; ++i) {
      auto fd = co_await fs.open(ctx, "/d/f" + std::to_string(i), OpenFlags::wr_create());
      EXPECT_TRUE(fd.ok());
      EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    }
    auto entries = co_await fs.readdir(ctx, "/d");
    EXPECT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), 3u);
    EXPECT_TRUE((co_await fs.unlink(ctx, "/d/f0")).ok());
    entries = co_await fs.readdir(ctx, "/d");
    EXPECT_EQ(entries->size(), 2u);
    EXPECT_EQ((co_await fs.rmdir(ctx, "/d")).code(), Errc::not_empty);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, RenameMovesContent) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::pattern(3, 0, 64))).ok());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    EXPECT_TRUE((co_await fs.rename(ctx, "/f", "/g")).ok());
    auto rfd = co_await fs.open(ctx, "/g", OpenFlags::ro());
    EXPECT_TRUE(rfd.ok());
    auto fl = co_await fs.read(ctx, *rfd, 0, 64);
    EXPECT_TRUE(fl->content_equals(DataView::pattern(3, 0, 64)));
  }(fs_, ctx_));
}

// --- model-behaviour tests ---

TEST_F(SimPfsTest, SharedFileInterleavedWritersPayLockTransfers) {
  test::run_task(engine_, [](SimPfs& fs) -> sim::Task<void> {
    auto fd = co_await fs.open(IoCtx{0, 0}, "/shared", OpenFlags::wr_create());
    EXPECT_TRUE(fd.ok());
    // Rank 0 then rank 1 write the same region repeatedly: ping-pong, even
    // when the ranks share a node (per-process lock ownership).
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE((co_await fs.write(IoCtx{0, 0}, *fd, 0, DataView::zeros(1000))).ok());
      EXPECT_TRUE((co_await fs.write(IoCtx{0, 1}, *fd, 0, DataView::zeros(1000))).ok());
    }
  }(fs_));
  EXPECT_EQ(fs_.stats().lock_grants, 1u);
  EXPECT_EQ(fs_.stats().lock_transfers, 7u);
}

TEST_F(SimPfsTest, SameRankRepeatedWritesDoNotPingPong) {
  test::run_task(engine_, [](SimPfs& fs) -> sim::Task<void> {
    auto fd = co_await fs.open(IoCtx{0, 0}, "/shared", OpenFlags::wr_create());
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE((co_await fs.write(IoCtx{0, 0}, *fd, 0, DataView::zeros(1000))).ok());
    }
  }(fs_));
  EXPECT_EQ(fs_.stats().lock_transfers, 0u);
  EXPECT_EQ(fs_.stats().lock_grants, 1u);
}

TEST_F(SimPfsTest, PerProcessFilesAvoidLockTraffic) {
  test::run_task(engine_, [](SimPfs& fs) -> sim::Task<void> {
    for (int node = 0; node < 4; ++node) {
      auto fd = co_await fs.open(IoCtx{static_cast<std::size_t>(node), node},
                                 "/file" + std::to_string(node), OpenFlags::wr_create());
      // (per-process files: stable single owner per lock range)
      EXPECT_TRUE(fd.ok());
      for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE((co_await fs.write(IoCtx{static_cast<std::size_t>(node), node}, *fd,
                                       i * 1000, DataView::zeros(1000)))
                        .ok());
      }
    }
  }(fs_));
  EXPECT_EQ(fs_.stats().lock_transfers, 0u);
}

TEST_F(SimPfsTest, UnalignedInteriorWritePaysRmwButAppendDoesNot) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags::wr_create());
    // Pure appends, unaligned: no RMW.
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::zeros(50000))).ok());
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 50000, DataView::zeros(50000))).ok());
    EXPECT_EQ(fs.stats().rmw_reads, 0u);
    // Interior unaligned overwrite: RMW.
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 1000, DataView::zeros(100))).ok());
    EXPECT_EQ(fs.stats().rmw_reads, 1u);
    // Interior aligned overwrite: no RMW.
    EXPECT_TRUE(
        (co_await fs.write(ctx, *fd, 0, DataView::zeros(fs.config().rmw_page))).ok());
    EXPECT_EQ(fs.stats().rmw_reads, 1u);
  }(fs_, ctx_));
}

TEST_F(SimPfsTest, RereadHitsPageCacheAndIsFaster) {
  Duration first, second;
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx, Duration& d1, Duration& d2) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::pattern(1, 0, 4_MiB))).ok());
    fs.drop_caches();
    TimePoint t0 = fs.engine().now();
    EXPECT_TRUE((co_await fs.read(ctx, *fd, 0, 4_MiB)).ok());
    d1 = fs.engine().now() - t0;
    t0 = fs.engine().now();
    EXPECT_TRUE((co_await fs.read(ctx, *fd, 0, 4_MiB)).ok());
    d2 = fs.engine().now() - t0;
  }(fs_, ctx_, first, second));
  EXPECT_GT(fs_.stats().cache_hit_bytes, 0u);
  EXPECT_LT(second.to_seconds() * 2, first.to_seconds());
}

TEST_F(SimPfsTest, CacheDoesNotServeOtherNodes) {
  test::run_task(engine_, [](SimPfs& fs) -> sim::Task<void> {
    auto fd = co_await fs.open(IoCtx{0, 0}, "/f",
                               OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE((co_await fs.write(IoCtx{0, 0}, *fd, 0, DataView::pattern(1, 0, 1_MiB))).ok());
    // Reader on another node: all misses.
    EXPECT_TRUE((co_await fs.read(IoCtx{1, 1}, *fd, 0, 1_MiB)).ok());
  }(fs_));
  EXPECT_EQ(fs_.stats().cache_hit_bytes, 0u);
}

TEST_F(SimPfsTest, SequentialReadFasterThanRandom) {
  // Two files of identical content; one read sequentially, one randomly.
  // Server DRAM caching is disabled so the platter model is visible.
  PfsConfig cfg = test_pfs();
  cfg.ost_cache_bytes = 0;
  sim::Engine engine;
  net::Cluster cluster(engine, test_cluster());
  SimPfs fs_nocache(cluster, cfg);
  Duration seq_time, rand_time;
  test::run_task(engine, [](SimPfs& fs, IoCtx ctx, Duration& seq, Duration& rnd) -> sim::Task<void> {
    const std::uint64_t chunk = 64_KiB;
    const int chunks = 32;
    for (const char* name : {"/seq", "/rand"}) {
      auto fd = co_await fs.open(ctx, name, OpenFlags::wr_create());
      for (int i = 0; i < chunks; ++i) {
        EXPECT_TRUE(
            (co_await fs.write(ctx, *fd, i * chunk, DataView::pattern(1, i * chunk, chunk))).ok());
      }
      EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    }
    fs.drop_caches();
    auto fd = co_await fs.open(ctx, "/seq", OpenFlags::ro());
    TimePoint t0 = fs.engine().now();
    for (int i = 0; i < chunks; ++i) {
      EXPECT_TRUE((co_await fs.read(ctx, *fd, i * chunk, chunk)).ok());
    }
    seq = fs.engine().now() - t0;
    fs.drop_caches();
    auto fd2 = co_await fs.open(ctx, "/rand", OpenFlags::ro());
    t0 = fs.engine().now();
    // Deterministic shuffled order with large jumps (beyond near_gap).
    for (int i = 0; i < chunks; ++i) {
      const int j = (i * 17 + 5) % chunks;
      EXPECT_TRUE((co_await fs.read(ctx, *fd2, j * chunk, chunk)).ok());
    }
    rnd = fs.engine().now() - t0;
  }(fs_nocache, ctx_, seq_time, rand_time));
  EXPECT_LT(seq_time.to_seconds() * 2, rand_time.to_seconds());
}

TEST_F(SimPfsTest, CreatesInOneDirectorySerialize) {
  // 32 concurrent creators in one dir vs 32 dirs: shared dir takes longer.
  auto run_creates = [](bool same_dir) {
    sim::Engine engine;
    net::Cluster cluster(engine, test_cluster());
    SimPfs fs(cluster, test_pfs());
    test::run_task(engine, [](SimPfs& f, bool same) -> sim::Task<void> {
      if (!same) {
        for (int i = 0; i < 32; ++i) {
          EXPECT_TRUE((co_await f.mkdir(IoCtx{0, 0}, "/d" + std::to_string(i))).ok());
        }
      }
      co_return;
    }(fs, same_dir));
    sim::WaitGroup wg(engine);
    auto creator = [](SimPfs& f, bool same, int i, sim::WaitGroup& w) -> sim::Task<void> {
      const std::string path =
          same ? "/f" + std::to_string(i) : "/d" + std::to_string(i) + "/f";
      auto fd = co_await f.open(IoCtx{static_cast<std::size_t>(i % 8), i},
                                path, OpenFlags::wr_create());
      EXPECT_TRUE(fd.ok());
      w.done();
    };
    const TimePoint t0 = engine.now();
    for (int i = 0; i < 32; ++i) {
      wg.add();
      engine.spawn(creator(fs, same_dir, i, wg));
    }
    engine.run();
    return (engine.now() - t0).to_seconds();
  };
  const double same_dir_time = run_creates(true);
  const double spread_time = run_creates(false);
  EXPECT_GT(same_dir_time, spread_time * 1.5);
}

TEST_F(SimPfsTest, MdsPlacementIsByTopLevelComponent) {
  // Same top-level dir -> same MDS regardless of depth; and with 4 MDS,
  // some standard volume names must spread.
  EXPECT_EQ(fs_.mds_of_path("/vol0/a/b"), fs_.mds_of_path("/vol0/x"));
  EXPECT_EQ(fs_.mds_of_path("/vol0"), fs_.mds_of_path("/vol0/deep/er/path"));
  bool spread = false;
  for (int i = 1; i < 8; ++i) {
    if (fs_.mds_of_path("/vol" + std::to_string(i)) != fs_.mds_of_path("/vol0")) spread = true;
  }
  EXPECT_TRUE(spread);
}

TEST_F(SimPfsTest, DirectoryDegradationSlowsLateInserts) {
  PfsConfig cfg = test_pfs();
  cfg.dir_degrade_entries = 64;
  sim::Engine engine;
  net::Cluster cluster(engine, test_cluster());
  SimPfs fs(cluster, cfg);
  Duration early, late;
  test::run_task(engine, [](SimPfs& f, Duration& d_early, Duration& d_late) -> sim::Task<void> {
    IoCtx ctx{0, 0};
    TimePoint t0 = f.engine().now();
    auto fd = co_await f.open(ctx, "/f0", OpenFlags::wr_create());
    d_early = f.engine().now() - t0;
    EXPECT_TRUE(fd.ok());
    for (int i = 1; i < 256; ++i) {
      EXPECT_TRUE((co_await f.open(ctx, "/f" + std::to_string(i), OpenFlags::wr_create())).ok());
    }
    t0 = f.engine().now();
    EXPECT_TRUE((co_await f.open(ctx, "/f_last", OpenFlags::wr_create())).ok());
    d_late = f.engine().now() - t0;
  }(fs, early, late));
  EXPECT_GT(late.to_seconds(), early.to_seconds() * 2);
}

TEST_F(SimPfsTest, UnlinkedFileIsGone) {
  test::run_task(engine_, [](SimPfs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags::wr_create());
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::zeros(10))).ok());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    EXPECT_TRUE((co_await fs.unlink(ctx, "/f")).ok());
    auto r = co_await fs.open(ctx, "/f", OpenFlags::ro());
    EXPECT_EQ(r.status().code(), Errc::not_found);
  }(fs_, ctx_));
}

}  // namespace
}  // namespace tio::pfs
