# Empty dependencies file for fig8_large_scale.
# This may be replaced when dependencies are built.
