// Deterministic Raft replica groups over the simulation engine.
//
// A Group runs one metadata namespace as `replicas` MDS server replicas
// placed on distinct cluster nodes: leader election with randomized
// virtual-time timeouts, heartbeats, log replication with commit/apply
// indices, and snapshot/compaction for lagging followers. Replicas are not
// mpisim ranks — they are engine-level actors whose RPCs are spawned
// coroutines charging `rpc_overhead` plus the fabric model, with message
// kinds tagged out of the central registry block (mpisim/tag_registry.h,
// kRaftRpcTags).
//
// Determinism and termination: every source of randomness is a fork of the
// engine RNG keyed by (group, replica), so a run is a pure function of
// (seed, fault plan). Because mpi::run_spmd drives the engine until the
// event queue is EMPTY, a replica group must not keep free-running timers
// alive forever: a group is "active" while client operations are in
// flight (plus its bootstrap election) and *parks* when the last one
// completes — timers stop re-arming, leadership/term/log state is
// retained, and the next operation unparks it. Stale timer events drain
// as generation-checked no-ops.
//
// Exactly-once application: all replicas of a group share ONE authoritative
// state machine (the pfs::Namespace lives outside the group). A group-wide
// applied index guarantees each committed entry mutates it exactly once,
// whichever replica gets there first; per-replica apply indices track
// protocol state. Client acks are sent only after the leader has applied
// the entry, so an acknowledged create can never be lost by a crash. The
// client side retries on NotLeader redirects and request timeouts, which
// is the standard at-least-once hazard — callers submit idempotent
// commands (as the metadata ops are) and the PLFS retry budget bounds the
// macro-level retries above this layer.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "net/cluster.h"
#include "raft/log.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace tio::raft {

struct RaftConfig {
  std::size_t replicas = 3;
  std::size_t server_concurrency = 4;  // FCFS service slots per replica MDS
  Duration rpc_overhead = Duration::us(15);
  Duration heartbeat = Duration::ms(10);
  Duration election_min = Duration::ms(50);
  Duration election_jitter = Duration::ms(50);
  Duration request_timeout = Duration::ms(40);   // per client attempt
  // Wait for an accepted entry to commit+apply. Much longer than
  // request_timeout: the entry is already in the leader's log, so giving up
  // early just resubmits a duplicate into the backlog (crash and step-down
  // fail the waiters explicitly; this bound only matters for lost majority).
  Duration commit_timeout = Duration::ms(400);
  Duration redirect_backoff = Duration::ms(5);   // election wait between attempts
  int max_attempts = 24;                         // per submit/serve_read
  std::size_t compact_threshold = 1024;          // log entries before compaction
  std::size_t compact_keep = 128;                // tail kept for lagging followers
  // Append pipelining: while an AppendEntries RPC to a peer is in flight,
  // further submits mark the peer pending instead of re-sending the whole
  // log suffix; the reply (or the next heartbeat, which always forces a
  // send) triggers the follow-up. Under a create storm this turns O(n^2)
  // duplicate entry bytes into O(n) without changing commit semantics.
  // Off by default: the legacy eager schedule stays byte-identical.
  bool pipeline_appends = false;
};

// The replicated state machine. apply() is invoked exactly once per
// committed index, in index order, group-wide. apply_service() is the
// simulated MDS service time charged (through the leader's FCFS server)
// before the mutation lands; snapshot_bytes() sizes InstallSnapshot
// transfers on the fabric.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual std::any apply(Index index, const std::any& cmd) = 0;
  virtual Duration apply_service(const std::any& cmd) const = 0;
  virtual std::uint64_t snapshot_bytes() const = 0;
};

class Group {
 public:
  // `nodes[r]` is the cluster node hosting replica r (size == replicas).
  Group(sim::Engine& engine, net::Cluster& cluster, StateMachine& sm, RaftConfig config,
        std::size_t group_id, std::vector<std::size_t> nodes);
  ~Group();
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  // Replicates `cmd` through the group and returns the state machine's
  // apply result once the leader has committed and applied it. Retries
  // with NotLeader redirects and bounded election waits; returns
  // Errc::busy (transient) once the attempt bound is exhausted so the
  // caller's retry budget governs persistence.
  sim::Task<Result<std::shared_ptr<const std::any>>> submit(std::size_t client_node, int rank,
                                                            std::any cmd, std::uint64_t bytes);

  // Non-mutating metadata op served by the leader's FCFS server, with the
  // same leader discovery / election wait as submit.
  sim::Task<Status> serve_read(std::size_t client_node, int rank, Duration service);

  // Fault hooks (FaultPlan server outages / partitions). crash() drops the
  // replica's volatile state and fails its pending client waiters;
  // persistent state (term, vote, log) survives to restart(). A
  // partitioned replica is unreachable by peers and clients but keeps
  // running.
  void crash(std::size_t replica);
  void restart(std::size_t replica);
  void set_partitioned(std::size_t replica, bool isolated);

  // Keeps timers armed while no client operation is in flight (tests that
  // drive the group with engine.run_until horizons).
  void keep_alive(bool on);

  // Introspection (tests, leader-targeted fault resolution).
  int leader_or_negative() const;  // highest-term live leader, or -1
  std::size_t replicas() const { return config_.replicas; }
  std::size_t group_id() const { return group_id_; }
  bool is_down(std::size_t replica) const;
  Term term_of(std::size_t replica) const;
  Index last_index_of(std::size_t replica) const;
  Index commit_of(std::size_t replica) const;
  Index applied_of(std::size_t replica) const;
  Index group_applied() const { return group_applied_; }

 private:
  struct Node;
  struct ReplyState;

  // Transport: fire-and-forget RPC charging rpc_overhead + fabric.
  void send(std::size_t from, std::size_t to, int tag, std::any msg, std::uint64_t bytes);
  sim::Task<void> deliver(std::size_t from, std::size_t to, int tag, std::any msg,
                          std::uint64_t bytes);
  void dispatch(std::size_t me, std::size_t from, int tag, std::any msg);
  sim::Task<void> reply_latency(std::size_t from_node, std::size_t to_node, std::uint64_t bytes);

  // Protocol.
  void arm_election(std::size_t r);
  void arm_heartbeat(std::size_t r);
  void start_election(std::size_t r);
  void become_leader(std::size_t r);
  void step_down(std::size_t r, Term t);
  void broadcast_appends(std::size_t r, bool force = false);
  void send_append(std::size_t leader, std::size_t peer, bool force = false);
  void advance_commit(std::size_t r);
  void schedule_apply(std::size_t r);
  sim::Task<void> apply_drain(std::size_t r);
  void maybe_compact(std::size_t r);
  void fail_waiters(Node& n);
  Index append_leader_entry(std::size_t r, std::any cmd, std::uint64_t bytes);

  // Park/unpark lifecycle.
  void begin_activity();
  void end_activity();
  void unpark();
  void park();
  void maybe_park();
  void rotate_hint(std::size_t failed);

  sim::Engine& engine_;
  net::Cluster& cluster_;
  StateMachine& sm_;
  RaftConfig config_;
  std::size_t group_id_ = 0;
  std::vector<std::unique_ptr<Node>> nodes_;

  int leader_hint_ = -1;  // client routing hint, updated by heartbeats
  Index group_applied_ = 0;
  std::map<Index, std::shared_ptr<const std::any>> group_results_;

  std::size_t inflight_ = 0;
  bool running_ = false;
  bool bootstrap_active_ = false;
  bool keep_alive_ = false;
};

}  // namespace tio::raft
