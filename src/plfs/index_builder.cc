#include "plfs/index_builder.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/stats.h"

namespace tio::plfs {

namespace {

std::int64_t host_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void IndexBuilder::add_run(std::shared_ptr<const std::vector<IndexEntry>> run) {
  if (!run || run->empty()) return;
  total_entries_ += run->size();
  runs_.push_back(std::move(run));
}

void IndexBuilder::add_entries(std::vector<IndexEntry> entries) {
  if (entries.empty()) return;
  add_run(std::make_shared<const std::vector<IndexEntry>>(std::move(entries)));
}

std::vector<IndexEntry> IndexBuilder::merged_run() const {
  const std::int64_t t0 = host_now_ns();

  // Materialize sorted views of each run; unsorted inputs get a sorted copy.
  std::vector<const std::vector<IndexEntry>*> sorted_runs;
  sorted_runs.reserve(runs_.size());
  std::vector<std::vector<IndexEntry>> fixups;
  for (const auto& run : runs_) {
    if (std::is_sorted(run->begin(), run->end(), entry_timestamp_less)) {
      sorted_runs.push_back(run.get());
    } else {
      fixups.push_back(*run);
      std::sort(fixups.back().begin(), fixups.back().end(), entry_timestamp_less);
      sorted_runs.push_back(&fixups.back());
    }
  }

  std::vector<IndexEntry> out;
  out.reserve(total_entries_);
  if (sorted_runs.size() == 1) {
    out = *sorted_runs[0];
  } else if (!sorted_runs.empty()) {
    // Binary min-heap of cursors, keyed by each cursor's current entry.
    struct Cursor {
      const std::vector<IndexEntry>* run;
      std::size_t pos;
    };
    std::vector<Cursor> heap;
    heap.reserve(sorted_runs.size());
    for (const auto* run : sorted_runs) heap.push_back(Cursor{run, 0});
    auto cursor_after = [](const Cursor& a, const Cursor& b) {
      // std::push_heap builds a max-heap; invert for min-first.
      return entry_timestamp_less((*b.run)[b.pos], (*a.run)[a.pos]);
    };
    std::make_heap(heap.begin(), heap.end(), cursor_after);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), cursor_after);
      Cursor& c = heap.back();
      out.push_back((*c.run)[c.pos]);
      if (++c.pos < c.run->size()) {
        std::push_heap(heap.begin(), heap.end(), cursor_after);
      } else {
        heap.pop_back();
      }
    }
  }

  counter("plfs.index.runs_merged").add(runs_.size());
  counter("plfs.index.entries_merged").add(out.size());
  counter("plfs.index.build_ns").add(static_cast<std::uint64_t>(host_now_ns() - t0));
  return out;
}

IndexPtr IndexBuilder::build() const {
  const std::vector<IndexEntry> run = merged_run();
  const std::int64_t t0 = host_now_ns();
  IndexPtr built;
  switch (backend_) {
    case IndexBackend::btree:
      built = std::make_shared<const BTreeIndex>(BTreeIndex::from_sorted(run, compress_));
      break;
    case IndexBackend::flat:
      built = std::make_shared<const FlatIndex>(FlatIndex::from_sorted(run, compress_));
      break;
  }
  counter("plfs.index.builds").add(1);
  counter("plfs.index.build_ns").add(static_cast<std::uint64_t>(host_now_ns() - t0));
  return built;
}

bool parse_index_backend(std::string_view name, IndexBackend& out) {
  if (name == "btree") {
    out = IndexBackend::btree;
    return true;
  }
  if (name == "flat") {
    out = IndexBackend::flat;
    return true;
  }
  return false;
}

std::string index_backend_name(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::btree: return "btree";
    case IndexBackend::flat: return "flat";
  }
  return "unknown";
}

}  // namespace tio::plfs
