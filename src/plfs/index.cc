#include "plfs/index.h"

#include <algorithm>
#include <cstring>

namespace tio::plfs {

void append_serialized(std::vector<std::byte>& out, const IndexEntry& entry) {
  const std::size_t base = out.size();
  out.resize(base + IndexEntry::kSerializedSize);
  auto put = [&out](std::size_t at, const void* src, std::size_t n) {
    std::memcpy(out.data() + at, src, n);
  };
  put(base + 0, &entry.logical_offset, 8);
  put(base + 8, &entry.length, 8);
  put(base + 16, &entry.physical_offset, 8);
  put(base + 24, &entry.timestamp_ns, 8);
  put(base + 32, &entry.writer, 4);
  const std::uint32_t pad = 0;
  put(base + 36, &pad, 4);
}

std::vector<std::byte> serialize_entries(const std::vector<IndexEntry>& entries) {
  std::vector<std::byte> out;
  out.reserve(entries.size() * IndexEntry::kSerializedSize);
  for (const auto& e : entries) append_serialized(out, e);
  return out;
}

Result<std::vector<IndexEntry>> deserialize_entries(const FragmentList& data) {
  if (data.size() % IndexEntry::kSerializedSize != 0) {
    return error(Errc::io_error, "index log size is not a multiple of the record size");
  }
  const auto bytes = data.to_bytes();
  std::vector<IndexEntry> out(bytes.size() / IndexEntry::kSerializedSize);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::byte* p = bytes.data() + i * IndexEntry::kSerializedSize;
    std::memcpy(&out[i].logical_offset, p + 0, 8);
    std::memcpy(&out[i].length, p + 8, 8);
    std::memcpy(&out[i].physical_offset, p + 16, 8);
    std::memcpy(&out[i].timestamp_ns, p + 24, 8);
    std::memcpy(&out[i].writer, p + 32, 4);
  }
  return out;
}

Index Index::build(std::vector<IndexEntry> entries, bool compress) {
  std::sort(entries.begin(), entries.end(), [](const IndexEntry& a, const IndexEntry& b) {
    if (a.timestamp_ns != b.timestamp_ns) return a.timestamp_ns < b.timestamp_ns;
    if (a.writer != b.writer) return a.writer < b.writer;
    return a.physical_offset < b.physical_offset;
  });
  Index idx;
  for (const auto& e : entries) idx.insert(e, compress);
  return idx;
}

void Index::insert(const IndexEntry& e, bool compress) {
  if (e.length == 0) return;
  const std::uint64_t start = e.logical_offset;
  const std::uint64_t end = start + e.length;

  // Trim or split whatever the new (later-timestamped) entry overlaps.
  auto it = map_.upper_bound(start);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t prev_end = prev->first + prev->second.length;
    if (prev_end > start) {
      Mapping old = prev->second;
      prev->second.length = start - prev->first;
      if (prev->second.length == 0) map_.erase(prev);
      if (prev_end > end) {
        Mapping tail = old;
        tail.logical_offset = end;
        tail.length = prev_end - end;
        tail.physical_offset = old.physical_offset + (end - old.logical_offset);
        map_.emplace(end, tail);
      }
    }
  }
  it = map_.lower_bound(start);
  while (it != map_.end() && it->first < end) {
    const std::uint64_t ext_end = it->first + it->second.length;
    if (ext_end <= end) {
      it = map_.erase(it);
    } else {
      Mapping tail = it->second;
      tail.logical_offset = end;
      tail.length = ext_end - end;
      tail.physical_offset += end - it->first;
      map_.erase(it);
      map_.emplace(end, tail);
      break;
    }
  }

  Mapping m{start, e.length, e.writer, e.physical_offset};
  // Compression: merge with a same-writer predecessor that is contiguous
  // both logically and physically.
  auto next = map_.lower_bound(start);
  if (compress && next != map_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.writer == m.writer &&
        prev->first + prev->second.length == start &&
        prev->second.physical_offset + prev->second.length == m.physical_offset) {
      prev->second.length += m.length;
      return;
    }
  }
  map_.emplace(start, m);
}

std::vector<Index::Mapping> Index::lookup(std::uint64_t offset, std::uint64_t len) const {
  std::vector<Mapping> out;
  if (len == 0) return out;
  const std::uint64_t end = offset + len;
  auto it = map_.upper_bound(offset);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > offset) it = prev;
  }
  for (; it != map_.end() && it->first < end; ++it) {
    const std::uint64_t m_start = std::max(offset, it->first);
    const std::uint64_t m_end = std::min(end, it->first + it->second.length);
    Mapping m = it->second;
    m.physical_offset += m_start - it->first;
    m.logical_offset = m_start;
    m.length = m_end - m_start;
    out.push_back(m);
  }
  return out;
}

std::uint64_t Index::logical_size() const {
  if (map_.empty()) return 0;
  const auto& last = *map_.rbegin();
  return last.first + last.second.length;
}

std::vector<IndexEntry> Index::to_entries() const {
  std::vector<IndexEntry> out;
  out.reserve(map_.size());
  for (const auto& [off, m] : map_) {
    out.push_back(IndexEntry{off, m.length, m.physical_offset, 0, m.writer});
  }
  return out;
}

}  // namespace tio::plfs
