# Empty compiler generated dependencies file for tio_workloads.
# This may be replaced when dependencies are built.
