// FlatMap backs the hottest lookup structures in the simulator (MPI
// mailboxes, page-cache residency), both of which churn insert/erase per
// message or per page. The tests stress exactly that: tombstone reuse,
// rehash under churn, and value-releasing erase.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/flat_map.h"
#include "common/rng.h"

namespace tio {
namespace {

struct U64Hash {
  std::size_t operator()(std::uint64_t v) const {
    return static_cast<std::size_t>(splitmix64(v));
  }
};

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int, U64Hash> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);

  map[7] = 70;
  map[8] = 80;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 70);
  EXPECT_EQ(*map.find(8), 80);

  map[7] = 71;  // overwrite through operator[]
  EXPECT_EQ(*map.find(7), 71);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_EQ(*map.find(8), 80);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, OperatorIndexValueInitializes) {
  FlatMap<std::uint64_t, int, U64Hash> map;
  EXPECT_EQ(map[42], 0);
  ++map[42];
  EXPECT_EQ(map[42], 1);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, MailboxShapedChurnStaysCorrectAndCompact) {
  // One insert + one erase per "message", fresh key every time — the exact
  // lifetime pattern of collective-operation mailboxes. A tombstone bug or
  // probe-chain break shows up here as a lost or phantom entry.
  FlatMap<std::uint64_t, int, U64Hash> map;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    map[i] = static_cast<int>(i);
    ASSERT_NE(map.find(i), nullptr);
    EXPECT_EQ(*map.find(i), static_cast<int>(i));
    EXPECT_TRUE(map.erase(i));
  }
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomOps) {
  FlatMap<std::uint64_t, std::uint64_t, U64Hash> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key = rng.below(512);  // small space → heavy reuse
    switch (rng.below(3)) {
      case 0:
        map[key] = i;
        ref[key] = i;
        break;
      case 1:
        EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      default: {
        const auto* found = map.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
}

TEST(FlatMap, EraseReleasesHeldValues) {
  struct PtrHash {
    std::size_t operator()(int k) const {
      return static_cast<std::size_t>(splitmix64(static_cast<std::uint64_t>(k)));
    }
  };
  FlatMap<int, std::shared_ptr<int>, PtrHash> map;
  auto value = std::make_shared<int>(5);
  map[1] = value;
  EXPECT_EQ(value.use_count(), 2);
  map.erase(1);  // must drop the shared_ptr now, not at rehash/destruction
  EXPECT_EQ(value.use_count(), 1);
}

TEST(FlatMap, ClearKeepsWorking) {
  FlatMap<std::uint64_t, int, U64Hash> map;
  for (std::uint64_t i = 0; i < 100; ++i) map[i] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(3), nullptr);
  map[3] = 33;
  EXPECT_EQ(*map.find(3), 33);
}

TEST(FlatMap, ReserveAvoidsRehashButStaysCorrect) {
  FlatMap<std::uint64_t, int, U64Hash> map;
  map.reserve(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) map[i] = static_cast<int>(i);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_NE(map.find(i), nullptr);
    EXPECT_EQ(*map.find(i), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace tio
