
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/harness.cc" "src/workloads/CMakeFiles/tio_workloads.dir/harness.cc.o" "gcc" "src/workloads/CMakeFiles/tio_workloads.dir/harness.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/workloads/CMakeFiles/tio_workloads.dir/kernels.cc.o" "gcc" "src/workloads/CMakeFiles/tio_workloads.dir/kernels.cc.o.d"
  "/root/repo/src/workloads/metadata.cc" "src/workloads/CMakeFiles/tio_workloads.dir/metadata.cc.o" "gcc" "src/workloads/CMakeFiles/tio_workloads.dir/metadata.cc.o.d"
  "/root/repo/src/workloads/target.cc" "src/workloads/CMakeFiles/tio_workloads.dir/target.cc.o" "gcc" "src/workloads/CMakeFiles/tio_workloads.dir/target.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plfs/CMakeFiles/tio_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/iolib/CMakeFiles/tio_iolib.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/tio_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tio_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/tio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
