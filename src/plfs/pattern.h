// Pattern compression for the index pipeline (wire format v2) and the
// PatternIndex backend.
//
// Checkpoint workloads are structured: an N-1 strided writer emits
// thousands of index entries that are one arithmetic progression in
// logical offset, physical offset, and (nearly) timestamp. Describing such
// a run as a single PatternEntry instead of `count` 40-byte records is
// where the order-of-magnitude index-volume reduction lives (Thakur et
// al.'s noncontiguous-access insight applied to PLFS's index logs).
//
// Detection (detect_patterns): entries are scanned in stream order with
// per-writer state. A run extends while the writer's next entry keeps the
// same record length, stays physically contiguous in that writer's data
// log (physical advances by exactly record_len — the append-only
// invariant), advances the logical offset by a constant stride, and
// recurs at a constant stream-position stride (so an interleaved merge of
// many writers still pattern-compresses per writer). Runs shorter than
// `min_run` spill to literals. Timestamps do NOT gate detection: a run
// whose timestamps happen to be exactly arithmetic is flagged ts_exact and
// costs nothing to store; otherwise the encoder appends small per-record
// residuals, so irregular write timing degrades compression, never
// correctness.
//
// Wire format v2 — a file/payload is a sequence of self-contained
// segments (one per index flush):
//
//   segment := magic u32 ("PIXW") | version u8 (=2) | varint entry_count
//            | varint payload_len | payload | crc32c u32
//   payload := block*
//   block   := 0x01 pattern | 0x02 pattern+ts-residuals | 0x00 literals
//
//   pattern  := varint writer | varint pos_start | varint pos_stride
//             | varint count | varint record_len | varint logical_start
//             | varint physical_start | svarint stride | svarint ts_base
//             | svarint ts_delta
//   0x02     := pattern fields, then svarint ts_residual * count
//   literals := varint count, then per literal (delta vs previous literal
//               in the block, first vs zero):
//               svarint d_logical | svarint d_length | svarint d_physical
//               | svarint d_timestamp | varint writer
//
// (svarint = zigzag + LEB128; see common/varint.h.) The crc32c covers
// magic through payload. Blocks claim *stream positions* (pattern record j
// sits at pos_start + j*pos_stride; literals fill the unclaimed positions
// in ascending order), so decoding reproduces the original entry order
// bit-exactly — a decoded run is still a valid timestamp-sorted run.
//
// Readers auto-detect the format: a buffer starting with the v2 magic is
// v2, anything else parses as v1 fixed 40-byte records. (A v1 log whose
// first record's logical offset happens to equal the magic would
// misdetect; with a 2^-32 chance against real offsets we document rather
// than defend.) Truncated, bit-flipped, version-confused, or
// position-inconsistent buffers are rejected with Errc::io_error carrying
// the failing byte offset, same as the v1 parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/dataview.h"
#include "common/status.h"
#include "plfs/index.h"
#include "plfs/mount.h"

namespace tio::plfs {

// One arithmetic run of same-writer records. Physical offsets advance by
// record_len (log-structured append); logical offsets by `stride`;
// timestamps by `timestamp_delta` from `timestamp_base` (exact only when
// the producing run was flagged ts_exact).
struct PatternEntry {
  std::uint64_t logical_start = 0;
  std::int64_t stride = 0;  // logical-offset delta between consecutive records
  std::uint64_t record_len = 0;
  std::uint64_t physical_start = 0;
  std::uint32_t count = 0;
  std::uint32_t writer = 0;
  std::int64_t timestamp_base = 0;
  std::int64_t timestamp_delta = 0;

  IndexEntry expand(std::uint32_t i) const {
    return IndexEntry{logical_start + static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(stride),
                      record_len,
                      physical_start + static_cast<std::uint64_t>(i) * record_len,
                      timestamp_base + static_cast<std::int64_t>(i) * timestamp_delta,
                      writer};
  }
  friend bool operator==(const PatternEntry&, const PatternEntry&) = default;
};

// A detected run plus its claim on stream positions.
struct PatternRun {
  PatternEntry entry;
  std::uint32_t pos_start = 0;
  std::uint32_t pos_stride = 1;
  bool ts_exact = false;  // timestamps are exactly base + i*delta
};

struct PatternScan {
  std::vector<PatternRun> runs;         // ordered by pos_start
  std::vector<std::uint32_t> literals;  // ascending positions not in any run
};

// Runs shorter than this spill to literals (a pattern block costs ~25
// bytes, so tiny runs are cheaper literal).
inline constexpr std::size_t kMinPatternRun = 4;

PatternScan detect_patterns(const std::vector<IndexEntry>& entries,
                            std::size_t min_run = kMinPatternRun);

inline constexpr std::uint32_t kWireMagic = 0x57584950;  // "PIXW"
inline constexpr std::uint8_t kWireVersion = 2;

// Encodes one batch as one segment (v2) or as raw 40-byte records (v1) and
// appends it to `out`. v2 encodes bump the plfs.index.pattern.* counters.
void append_encoded(std::vector<std::byte>& out, const std::vector<IndexEntry>& entries,
                    WireFormat wire);
std::vector<std::byte> encode_entries(const std::vector<IndexEntry>& entries, WireFormat wire);
// Size-only variant for collective costing; does not touch the counters.
std::uint64_t encoded_size(const std::vector<IndexEntry>& entries, WireFormat wire);

// True if the buffer leads with the v2 segment magic.
bool wire_is_v2(const FragmentList& data);
// Auto-detecting decoder: v2 segments or v1 fixed records, entry order
// preserved bit-exactly either way.
Result<std::vector<IndexEntry>> decode_entries(const FragmentList& data);
// v2-only decode over a raw byte range (used by the trailer verifier,
// which has already sliced the payload out of the flattened file).
Result<std::vector<IndexEntry>> decode_entries_v2(const std::byte* data, std::size_t size);

// "--index_wire" flag vocabulary: "v1" | "v2".
bool parse_wire_format(std::string_view name, WireFormat& out);
std::string wire_format_name(WireFormat wire);

// IndexView backend that keeps the resolved mapping set as pattern runs
// plus a literal spill and answers lookup() by arithmetic. Same canonical
// mapping set as FlatIndex/BTreeIndex (it is built from the same
// offset-domain sweep), so lookups and to_entries() are bit-identical to
// the oracle — only the in-memory representation (and therefore the
// IndexCache charge) shrinks.
class PatternIndex final : public IndexView {
 public:
  static PatternIndex from_sorted(const std::vector<IndexEntry>& sorted, bool compress = true);
  static PatternIndex build(std::vector<IndexEntry> entries, bool compress = true);

  std::vector<Mapping> lookup(std::uint64_t offset, std::uint64_t len) const override;
  std::uint64_t logical_size() const override { return logical_size_; }
  std::size_t mapping_count() const override { return mapping_count_; }
  std::vector<IndexEntry> to_entries() const override;
  std::uint64_t memory_bytes() const override {
    return runs_.capacity() * sizeof(PatternEntry) + literals_.capacity() * sizeof(Mapping);
  }

  std::size_t run_count() const { return runs_.size(); }
  std::size_t literal_count() const { return literals_.size(); }

 private:
  std::vector<PatternEntry> runs_;  // sorted by logical_start; strides > 0
  std::vector<Mapping> literals_;   // sorted by logical_offset
  std::uint64_t logical_size_ = 0;
  std::size_t mapping_count_ = 0;
};

}  // namespace tio::plfs
