file(REMOVE_RECURSE
  "CMakeFiles/fig8_large_scale.dir/fig8_large_scale.cc.o"
  "CMakeFiles/fig8_large_scale.dir/fig8_large_scale.cc.o.d"
  "fig8_large_scale"
  "fig8_large_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_large_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
