// Pattern-described byte buffers.
//
// Simulating 65,536 ranks each writing tens of megabytes cannot store the
// literal bytes, but we still want every read verified against what was
// logically written. A DataView describes `size()` bytes of content either
// as literal storage or as a deterministic (seed, base-offset) pattern whose
// i-th byte is a pure function — comparing, slicing, and verifying never
// require materialization. A FragmentList stitches the views a scattered
// read returns back into one logical extent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tio {

class DataView {
 public:
  enum class Kind : std::uint8_t { zero, pattern, literal };

  DataView() = default;  // empty view

  static DataView zeros(std::uint64_t n) {
    DataView v;
    v.kind_ = Kind::zero;
    v.size_ = n;
    return v;
  }
  // Bytes i in [0, n) equal pattern_byte(seed, base + i).
  static DataView pattern(std::uint64_t seed, std::uint64_t base, std::uint64_t n) {
    DataView v;
    v.kind_ = Kind::pattern;
    v.size_ = n;
    v.seed_ = seed;
    v.base_ = base;
    return v;
  }
  static DataView literal(std::vector<std::byte> bytes);
  static DataView literal_string(std::string_view s);

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Kind kind() const { return kind_; }
  std::uint64_t pattern_seed() const { return seed_; }
  std::uint64_t pattern_base() const { return base_; }

  // True when `next` is the byte-for-byte continuation of this view, so the
  // two can be coalesced into one descriptor (extent-map compaction).
  bool continues_with(const DataView& next) const {
    if (kind_ != next.kind_) return false;
    switch (kind_) {
      case Kind::zero: return true;
      case Kind::pattern: return seed_ == next.seed_ && base_ + size_ == next.base_;
      case Kind::literal: return lit_ == next.lit_ && lit_off_ + size_ == next.lit_off_;
    }
    return false;
  }
  // Extends this view by its continuation (precondition: continues_with).
  void extend(std::uint64_t extra) { size_ += extra; }

  static std::byte pattern_byte(std::uint64_t seed, std::uint64_t index) {
    const std::uint64_t word = splitmix64(seed ^ (0x9e3779b97f4a7c15ull * (index >> 3)));
    return static_cast<std::byte>((word >> ((index & 7) * 8)) & 0xff);
  }

  std::byte at(std::uint64_t i) const;
  DataView slice(std::uint64_t off, std::uint64_t len) const;
  std::vector<std::byte> to_bytes() const;
  std::string to_string() const;  // literal content as a std::string

  bool content_equals(const DataView& other) const;

 private:
  Kind kind_ = Kind::zero;
  std::uint64_t size_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t base_ = 0;
  std::shared_ptr<const std::vector<std::byte>> lit_;
  std::uint64_t lit_off_ = 0;
};

// An ordered, gap-free concatenation of views; the result type of reads that
// gather from several physical locations.
class FragmentList {
 public:
  void append(DataView v) {
    if (v.empty()) return;
    size_ += v.size();
    frags_.push_back(std::move(v));
  }
  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::vector<DataView>& fragments() const { return frags_; }

  std::byte at(std::uint64_t i) const;
  std::vector<std::byte> to_bytes() const;
  bool content_equals(const DataView& expect) const;
  bool content_equals(const FragmentList& other) const;

 private:
  std::vector<DataView> frags_;
  std::uint64_t size_ = 0;
};

}  // namespace tio
