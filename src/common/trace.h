// Virtual-time span tracing.
//
// A Span is an RAII segment of *simulated* time: it captures the engine
// clock at construction and destruction (or an explicit end()), always
// feeds the duration into a per-name latency Histogram (common/stats.h),
// and — when the process-global Tracer is enabled — appends a record to a
// per-rank buffer that exports as Chrome trace-event JSON, loadable by
// chrome://tracing and Perfetto.
//
// Design notes:
//   * The span clock is the simulation clock, so traces are bit-identical
//     across reruns (the determinism suite relies on this) and tracing
//     never perturbs simulated behaviour — a Span performs no awaits.
//   * Call sites pre-resolve name/category/histogram through a SpanSite
//     (usually a function-local static), so opening a span on the hot path
//     costs two clock reads and a vector push, never a registry lock.
//   * Nesting is tracked per rank, not per host thread: the simulator
//     interleaves thousands of rank coroutines on one host thread, and a
//     rank's spans are properly nested in its own logical control flow.
//     In the exported trace each rank is a Chrome "thread" (tid = rank+1;
//     tid 0 holds engine-level spans) and each Engine a "process", so
//     successive rigs in one bench don't overlap timelines.
//   * Sharded runs (sim/sharded.h): span buffers are owned per host
//     thread — begin/end touch only the calling thread's shard, no lock.
//     An engine runs on exactly one host thread, so a (pid, tid) track
//     lives wholly inside one shard. Export merges shards with a
//     deterministic sort on (pid, tid, start, seq); combined with
//     PidScope's deterministic pid assignment, --trace= output is
//     byte-identical across reruns at any fixed shard count. Runs that
//     never leave one thread export through the exact pre-sharding code
//     path, so single-shard trace bytes are pinned.
//   * Tracer buffers grow unboundedly while enabled; benches enable it
//     only when --trace=<file> is given.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/units.h"

namespace tio::sim {
class Engine;  // provides TimePoint now() and std::uint32_t trace_pid()
}

namespace tio::trace {

// A completed (or still-open) span in one rank's buffer.
struct SpanRecord {
  std::uint32_t name_id = 0;
  std::uint32_t cat_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = -1;  // -1 while the span is open
  std::uint32_t pid = 0;     // engine id (one per Engine instance)
  // Index+1 of the enclosing span in the same rank buffer; 0 = top level.
  std::uint32_t parent = 0;
  std::uint32_t depth = 0;  // 0 = top level
  // Shard-local begin order; the export sort's final tie-break, so spans
  // opened at the same virtual time keep their program order.
  std::uint64_t seq = 0;
};

inline constexpr std::uint32_t kNoRecord = ~std::uint32_t{0};

// Process-global trace collector. Disabled by default: a disabled tracer
// records nothing (spans still feed their histograms).
class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  // Drops all buffered spans, per-rank state, pid numbering, and the noted
  // shard count (interned names are kept). Not concurrency-safe: call only
  // while no shard threads are running.
  void clear();

  // Interns a string, returning a stable id (idempotent per content).
  // Thread-safe; the returned reference from interned() never moves.
  std::uint32_t intern(std::string_view s);
  const std::string& interned(std::uint32_t id) const;

  // Opens a span on `rank`'s buffer (rank -1 = the engine-level track) and
  // returns its record index, or kNoRecord when disabled. The record lives
  // in the calling thread's shard; end_span must run on the same thread
  // (spans never migrate threads — an engine is pinned to its shard).
  std::uint32_t begin_span(int rank, std::uint32_t name_id, std::uint32_t cat_id,
                           std::uint32_t pid, std::int64_t start_ns);
  // Closes the span opened as `record` on `rank`'s buffer.
  void end_span(int rank, std::uint32_t record, std::int64_t end_ns);

  // Total spans across all shards (readers must be quiescent with writers).
  std::size_t span_count() const;
  // All spans of one rank recorded *by this thread*, in begin order
  // (tests and tooling).
  const std::vector<SpanRecord>& rank_spans(int rank) const;

  // Chrome trace-event JSON ({"traceEvents": [...]}); locale-independent.
  // Open spans (begun but never ended) are omitted. Multi-shard runs merge
  // buffers in (pid, tid, start, seq) order and stamp the shard count into
  // "otherData" (tools/check_trace.py --expect-shards).
  std::string to_chrome_json() const;
  // Writes to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  // Engine-instance ids ("processes" in the exported trace). Inside a
  // PidScope, ids come from the scope's reserved block (deterministic
  // regardless of thread interleaving); outside, from a global counter.
  std::uint32_t next_pid();
  // Reserves `count` consecutive pids and returns the first — the blocks
  // PidScope hands out. A shard pool reserves jobs*stride upfront so job j
  // always gets the same pids at any shard count, including 1.
  std::uint32_t reserve_pids(std::uint32_t count);

  // Records that this run used `n` shards (keeps the max; clear() resets
  // to 1). A count > 1 switches export to the sorted multi-shard path.
  void note_shard_count(std::size_t n);
  std::size_t shard_count() const { return shard_count_.load(std::memory_order_relaxed); }

 private:
  struct RankBuffer {
    std::vector<SpanRecord> spans;
    std::vector<std::uint32_t> open;  // indices of currently open spans
  };
  // One host thread's private buffers. Registered on first use; only the
  // owning thread writes, merges happen while writers are quiescent.
  struct Shard {
    std::vector<RankBuffer> buffers;  // [0] = engine track, [r+1] = rank r
    std::uint64_t next_seq = 0;
  };
  Shard& local_shard();
  const Shard* local_shard_if_registered() const;
  static RankBuffer& buffer_for(Shard& shard, int rank);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> pid_counter_{0};
  std::atomic<std::size_t> shard_count_{1};
  // Bumped by clear() so threads drop their cached shard pointers.
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex mu_;  // guards shards_ registration and names_
  std::vector<std::unique_ptr<Shard>> shards_;
  std::deque<std::string> names_;  // deque: interned() references stay valid
};

// RAII deterministic pid block: while active, this thread's next_pid()
// draws consecutive ids from [base, base + count). A shard-pool job wraps
// itself in one so engine pids depend on the job index, not on which
// thread ran the job or when. Throws std::length_error when a job creates
// more engines than its block holds. Scopes nest (LIFO) per thread.
class PidScope {
 public:
  PidScope(std::uint32_t base, std::uint32_t count);
  ~PidScope();
  PidScope(const PidScope&) = delete;
  PidScope& operator=(const PidScope&) = delete;

 private:
  std::uint32_t prev_next_;
  std::uint32_t prev_end_;
  bool prev_active_;
};

// Pre-resolved identity of a span call site: interned name/category ids
// plus the histogram fed by every traversal. Construct once (function-local
// static) — construction takes the registry lock, traversals don't.
struct SpanSite {
  SpanSite(std::string_view category, std::string_view name, bool with_histogram = true)
      : name_id(Tracer::instance().intern(name)),
        cat_id(Tracer::instance().intern(category)),
        hist(with_histogram ? &histogram(name) : nullptr) {}

  std::uint32_t name_id;
  std::uint32_t cat_id;
  Histogram* hist;  // null for trace-only sites (e.g. per-event volume)
};

// RAII virtual-time span. Template over the clock type so common/ needs no
// link-time dependency on sim/ — in practice Clock is sim::Engine and the
// `Span` alias below is what call sites use.
template <typename Clock>
class BasicSpan {
 public:
  BasicSpan() = default;  // inert
  BasicSpan(Clock& clock, const SpanSite& site, int rank = -1)
      : clock_(&clock), site_(&site), rank_(rank), start_ns_(clock.now().to_ns()) {
    Tracer& t = Tracer::instance();
    if (t.enabled()) {
      record_ = t.begin_span(rank_, site.name_id, site.cat_id, clock.trace_pid(), start_ns_);
    }
  }
  BasicSpan(const BasicSpan&) = delete;
  BasicSpan& operator=(const BasicSpan&) = delete;
  BasicSpan(BasicSpan&& o) noexcept { *this = std::move(o); }
  BasicSpan& operator=(BasicSpan&& o) noexcept {
    end();
    clock_ = o.clock_;
    site_ = o.site_;
    rank_ = o.rank_;
    start_ns_ = o.start_ns_;
    record_ = o.record_;
    o.clock_ = nullptr;
    return *this;
  }
  ~BasicSpan() { end(); }

  // Closes the span now (idempotent; the destructor is then a no-op).
  void end() {
    if (clock_ == nullptr) return;
    const std::int64_t end_ns = clock_->now().to_ns();
    if (site_->hist != nullptr) site_->hist->record(end_ns - start_ns_);
    if (record_ != kNoRecord) Tracer::instance().end_span(rank_, record_, end_ns);
    clock_ = nullptr;
  }

  bool active() const { return clock_ != nullptr; }

 private:
  Clock* clock_ = nullptr;
  const SpanSite* site_ = nullptr;
  int rank_ = -1;
  std::int64_t start_ns_ = 0;
  std::uint32_t record_ = kNoRecord;
};

using Span = BasicSpan<sim::Engine>;

// Records a span retroactively, from a captured start time to now — for
// segments whose significance is only known at the end (e.g. an attempt
// that turned out to hit its timeout).
template <typename Clock>
void record_span(Clock& clock, const SpanSite& site, int rank, std::int64_t start_ns) {
  const std::int64_t end_ns = clock.now().to_ns();
  if (site.hist != nullptr) site.hist->record(end_ns - start_ns);
  Tracer& t = Tracer::instance();
  if (t.enabled()) {
    t.end_span(rank, t.begin_span(rank, site.name_id, site.cat_id, clock.trace_pid(), start_ns),
               end_ns);
  }
}

}  // namespace tio::trace
