#include "pfs/faulty_fs.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "common/stats.h"
#include "common/strutil.h"

namespace tio::pfs {

namespace {

// Bytes of trailer/record destroyed by a crash-on-close of an index file —
// enough to guarantee the integrity trailer cannot verify.
constexpr std::uint64_t kCrashTearBytes = 24;

bool is_global_index_path(std::string_view path) {
  return path.ends_with("/global.index");
}

// inject() runs on every simulated backend op; resolve its counters once
// instead of paying the registry mutex + map lookup per op.
struct FaultCounters {
  Counter& ops = counter("plfs.fault.ops");
  Counter& outage_hits = counter("plfs.fault.outage_hits");
  Counter& spikes = counter("plfs.fault.spikes");
  Counter& io_error = counter("plfs.fault.io_error");
  Counter& busy = counter("plfs.fault.busy");
  Counter& stale = counter("plfs.fault.stale");
};
FaultCounters& fault_counters() {
  static FaultCounters c;
  return c;
}

}  // namespace

std::string_view op_class_name(OpClass c) {
  switch (c) {
    case OpClass::open: return "open";
    case OpClass::close: return "close";
    case OpClass::read: return "read";
    case OpClass::write: return "write";
    case OpClass::meta: return "meta";
  }
  return "unknown";
}

bool FaultPlan::enabled() const {
  if (p_torn_write > 0 || crash_close_index || !outages.empty()) return true;
  if (!server_outages.empty() || !partitions.empty()) return true;
  for (const auto& spec : ops) {
    if (spec.any()) return true;
  }
  return false;
}

FaultPlan FaultPlan::lowered_for_unreplicated() const {
  FaultPlan lowered = *this;
  for (const auto& so : lowered.server_outages) {
    lowered.outages.push_back(
        OutageWindow{"/vol" + std::to_string(so.mds), so.begin, so.end});
  }
  for (const auto& pw : lowered.partitions) {
    lowered.outages.push_back(
        OutageWindow{"/vol" + std::to_string(pw.mds), pw.begin, pw.end});
  }
  lowered.server_outages.clear();
  lowered.partitions.clear();
  return lowered;
}

bool FaultyFs::in_outage(const std::string& path) const {
  const TimePoint now = base_.engine().now();
  for (const auto& w : plan_.outages) {
    if (now >= w.begin && now < w.end && path.starts_with(w.path_prefix)) return true;
  }
  return false;
}

sim::Task<Status> FaultyFs::inject(OpClass c, const std::string& path) {
  FaultCounters& fc = fault_counters();
  fc.ops.add(1);
  if (!plan_.outages.empty() && in_outage(path)) {
    fc.outage_hits.add(1);
    co_return error(Errc::busy, "injected: MDS outage on " + path);
  }
  const FaultSpec& spec = plan_.spec(c);
  if (!spec.any()) co_return Status::Ok();
  // Draws happen in a fixed order (spike, io, busy, stale) so the consumed
  // stream depends only on the op sequence, not on which rates are set.
  if (rng_.chance(spec.p_spike)) {
    fc.spikes.add(1);
    co_await base_.engine().sleep(spec.spike);
  }
  if (rng_.chance(spec.p_io_error)) {
    fc.io_error.add(1);
    co_return error(Errc::io_error, std::string("injected: transient EIO on ") +
                                        std::string(op_class_name(c)));
  }
  if (rng_.chance(spec.p_busy)) {
    fc.busy.add(1);
    co_return error(Errc::busy, std::string("injected: transient EBUSY on ") +
                                    std::string(op_class_name(c)));
  }
  if (rng_.chance(spec.p_stale)) {
    fc.stale.add(1);
    co_return error(Errc::stale, std::string("injected: transient ESTALE on ") +
                                     std::string(op_class_name(c)));
  }
  co_return Status::Ok();
}

sim::Task<Result<FileId>> FaultyFs::open(IoCtx ctx, std::string path, OpenFlags flags) {
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::open, path));
  auto fd = co_await base_.open(ctx, path, flags);
  if (fd.ok()) tracked_[*fd] = Tracked{path, 0};
  co_return fd;
}

sim::Task<Status> FaultyFs::close(IoCtx ctx, FileId file) {
  const auto it = tracked_.find(file);
  const std::string path = it != tracked_.end() ? it->second.path : std::string();
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::close, path));
  // Crash during the close-time flush of a flattened index: the file's tail
  // never reaches stable storage. One-shot per path — a rewritten index
  // closes cleanly, so recovery by rewrite works.
  if (plan_.crash_close_index && it != tracked_.end() && it->second.write_high > 0 &&
      is_global_index_path(path) &&
      std::find(crashed_.begin(), crashed_.end(), path) == crashed_.end()) {
    crashed_.push_back(path);
    counter("plfs.fault.crash_close").add(1);
    const std::uint64_t tear = std::min(it->second.write_high, kCrashTearBytes);
    auto wrote = co_await base_.write(ctx, file, it->second.write_high - tear,
                                      DataView::zeros(tear));
    (void)wrote;
    TIO_CO_RETURN_IF_ERROR(co_await base_.close(ctx, file));
    tracked_.erase(file);
    co_return error(Errc::io_error, "injected: crash during close of " + path);
  }
  const Status st = co_await base_.close(ctx, file);
  if (st.ok()) tracked_.erase(file);
  co_return st;
}

sim::Task<Result<std::uint64_t>> FaultyFs::write(IoCtx ctx, FileId file, std::uint64_t offset,
                                                 DataView data) {
  const auto it = tracked_.find(file);
  const std::string path = it != tracked_.end() ? it->second.path : std::string();
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::write, path));
  const std::uint64_t n = data.size();
  if (n > 1 && plan_.p_torn_write > 0 && rng_.chance(plan_.p_torn_write)) {
    // Torn write: a strict prefix reaches the backend; the short count is
    // reported so the caller can resume from where the tear happened.
    const std::uint64_t k = 1 + rng_.below(n - 1);
    counter("plfs.fault.torn_writes").add(1);
    auto wrote = co_await base_.write(ctx, file, offset, data.slice(0, k));
    if (!wrote.ok()) co_return wrote;
    if (it != tracked_.end()) {
      it->second.write_high = std::max(it->second.write_high, offset + *wrote);
    }
    co_return *wrote;
  }
  auto wrote = co_await base_.write(ctx, file, offset, std::move(data));
  if (wrote.ok() && it != tracked_.end()) {
    it->second.write_high = std::max(it->second.write_high, offset + *wrote);
  }
  co_return wrote;
}

sim::Task<Result<FragmentList>> FaultyFs::read(IoCtx ctx, FileId file, std::uint64_t offset,
                                               std::uint64_t len) {
  const auto it = tracked_.find(file);
  const std::string path = it != tracked_.end() ? it->second.path : std::string();
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::read, path));
  co_return co_await base_.read(ctx, file, offset, len);
}

sim::Task<Status> FaultyFs::mkdir(IoCtx ctx, std::string path) {
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::meta, path));
  co_return co_await base_.mkdir(ctx, std::move(path));
}

sim::Task<Status> FaultyFs::rmdir(IoCtx ctx, std::string path) {
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::meta, path));
  co_return co_await base_.rmdir(ctx, std::move(path));
}

sim::Task<Status> FaultyFs::unlink(IoCtx ctx, std::string path) {
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::meta, path));
  co_return co_await base_.unlink(ctx, std::move(path));
}

sim::Task<Status> FaultyFs::rename(IoCtx ctx, std::string from, std::string to) {
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::meta, from));
  if (in_outage(to)) {
    fault_counters().outage_hits.add(1);
    co_return error(Errc::busy, "injected: MDS outage on " + to);
  }
  co_return co_await base_.rename(ctx, std::move(from), std::move(to));
}

sim::Task<Result<StatInfo>> FaultyFs::stat(IoCtx ctx, std::string path) {
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::meta, path));
  co_return co_await base_.stat(ctx, std::move(path));
}

sim::Task<Result<std::vector<DirEntry>>> FaultyFs::readdir(IoCtx ctx, std::string path) {
  TIO_CO_RETURN_IF_ERROR(co_await inject(OpClass::meta, path));
  co_return co_await base_.readdir(ctx, std::move(path));
}

// --- plan parsing ---

namespace {

bool parse_f64(std::string_view v, double* out) {
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && p == v.data() + v.size() && *out >= 0.0;
}

bool parse_u64(std::string_view v, std::uint64_t* out) {
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && p == v.data() + v.size();
}

bool parse_op_class(std::string_view name, OpClass* out) {
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    if (name == op_class_name(static_cast<OpClass>(i))) {
      *out = static_cast<OpClass>(i);
      return true;
    }
  }
  return false;
}

void set_all(FaultPlan& plan, double FaultSpec::* field, double p) {
  for (auto& spec : plan.ops) spec.*field = p;
}

bool apply_preset(std::string_view name, FaultPlan& plan) {
  if (name == "none") {
    plan = FaultPlan{};
    return true;
  }
  if (name == "transient1") {
    // 1% total transient failure rate on every operation class.
    set_all(plan, &FaultSpec::p_io_error, 0.005);
    set_all(plan, &FaultSpec::p_busy, 0.005);
    return true;
  }
  if (name == "stress") {
    // Metadata-storm stress: random transients on everything, latency
    // spikes, torn writes, a crash-on-close of the flattened index, and a
    // 150 ms outage of the /vol1 namespace starting at t=100 ms. The
    // window is shorter than the default retry policy's cumulative
    // backoff, so a patient client rides it out.
    set_all(plan, &FaultSpec::p_io_error, 0.002);
    set_all(plan, &FaultSpec::p_busy, 0.005);
    set_all(plan, &FaultSpec::p_stale, 0.001);
    set_all(plan, &FaultSpec::p_spike, 0.002);
    for (auto& spec : plan.ops) spec.spike = Duration::ms(20);
    plan.p_torn_write = 0.01;
    plan.crash_close_index = true;
    plan.outages.push_back(OutageWindow{"/vol1", TimePoint::from_ns(Duration::ms(100).to_ns()),
                                        TimePoint::from_ns(Duration::ms(250).to_ns())});
    return true;
  }
  if (name == "failover") {
    // Crash the leader of metadata group 1 for 150 ms starting at
    // t=100 ms — the "leader crash at create-storm peak" scenario. Under
    // --mds_replication=none the testbed lowers it to a /vol1 outage.
    plan.server_outages.push_back(ServerOutage{1, -1,
                                               TimePoint::from_ns(Duration::ms(100).to_ns()),
                                               TimePoint::from_ns(Duration::ms(250).to_ns())});
    return true;
  }
  if (name == "partition") {
    // Isolate (rather than crash) the leader of group 1 for the same
    // window: the group must elect around a live-but-unreachable leader,
    // which rejoins and steps down when the partition heals.
    plan.partitions.push_back(PartitionWindow{1,
                                              TimePoint::from_ns(Duration::ms(100).to_ns()),
                                              TimePoint::from_ns(Duration::ms(250).to_ns())});
    return true;
  }
  return false;
}

// Parses the "@START-END" window suffix (virtual milliseconds) shared by
// the outage grammars. `value` is everything after the '@'.
bool parse_window(std::string_view value, TimePoint* begin, TimePoint* end) {
  const std::size_t dash = value.find('-');
  if (dash == std::string_view::npos) return false;
  double begin_ms = 0.0;
  double end_ms = 0.0;
  if (!parse_f64(value.substr(0, dash), &begin_ms) ||
      !parse_f64(value.substr(dash + 1), &end_ms) || end_ms < begin_ms) {
    return false;
  }
  *begin = TimePoint::from_ns(Duration::seconds(begin_ms * 1e-3).to_ns());
  *end = TimePoint::from_ns(Duration::seconds(end_ms * 1e-3).to_ns());
  return true;
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  double spike_ms = -1.0;
  for (const auto item : split(spec, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      if (!apply_preset(item, plan)) {
        return error(Errc::invalid, "fault plan: unknown preset '" + std::string(item) + "'");
      }
      continue;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    const auto bad = [&] {
      return error(Errc::invalid, "fault plan: bad value for '" + std::string(key) +
                                      "': " + std::string(value));
    };
    double p = 0.0;
    std::uint64_t u = 0;
    if (key == "seed") {
      if (!parse_u64(value, &u)) return bad();
      plan.seed = u;
    } else if (key == "io") {
      if (!parse_f64(value, &p)) return bad();
      set_all(plan, &FaultSpec::p_io_error, p);
    } else if (key == "busy") {
      if (!parse_f64(value, &p)) return bad();
      set_all(plan, &FaultSpec::p_busy, p);
    } else if (key == "stale") {
      if (!parse_f64(value, &p)) return bad();
      set_all(plan, &FaultSpec::p_stale, p);
    } else if (key == "spike") {
      if (!parse_f64(value, &p)) return bad();
      set_all(plan, &FaultSpec::p_spike, p);
    } else if (key == "spike_ms") {
      if (!parse_f64(value, &p)) return bad();
      spike_ms = p;
    } else if (key == "torn") {
      if (!parse_f64(value, &p)) return bad();
      plan.p_torn_write = p;
    } else if (key == "crash_close_index") {
      if (!parse_u64(value, &u) || u > 1) return bad();
      plan.crash_close_index = u == 1;
    } else if (key == "outage") {
      // PREFIX@START-END in virtual milliseconds.
      const std::size_t at = value.find('@');
      const std::size_t dash = value.find('-', at == std::string_view::npos ? 0 : at);
      if (at == std::string_view::npos || dash == std::string_view::npos) return bad();
      double begin_ms = 0.0;
      double end_ms = 0.0;
      if (!parse_f64(value.substr(at + 1, dash - at - 1), &begin_ms) ||
          !parse_f64(value.substr(dash + 1), &end_ms) || end_ms < begin_ms) {
        return bad();
      }
      plan.outages.push_back(OutageWindow{
          std::string(value.substr(0, at)),
          TimePoint::from_ns(Duration::seconds(begin_ms * 1e-3).to_ns()),
          TimePoint::from_ns(Duration::seconds(end_ms * 1e-3).to_ns())});
    } else if (key == "server_outage") {
      // G:R@START-END; R is a replica index or "leader".
      const std::size_t colon = value.find(':');
      const std::size_t at = value.find('@');
      if (colon == std::string_view::npos || at == std::string_view::npos || at < colon) {
        return bad();
      }
      ServerOutage so;
      if (!parse_u64(value.substr(0, colon), &u)) return bad();
      so.mds = static_cast<int>(u);
      const std::string_view rep = value.substr(colon + 1, at - colon - 1);
      if (rep == "leader") {
        so.replica = -1;
      } else {
        if (!parse_u64(rep, &u)) return bad();
        so.replica = static_cast<int>(u);
      }
      if (!parse_window(value.substr(at + 1), &so.begin, &so.end)) return bad();
      plan.server_outages.push_back(so);
    } else if (key == "partition") {
      // G@START-END.
      const std::size_t at = value.find('@');
      if (at == std::string_view::npos) return bad();
      PartitionWindow pw;
      if (!parse_u64(value.substr(0, at), &u)) return bad();
      pw.mds = static_cast<int>(u);
      if (!parse_window(value.substr(at + 1), &pw.begin, &pw.end)) return bad();
      plan.partitions.push_back(pw);
    } else {
      OpClass c;
      const std::size_t dot = key.find('.');
      if (dot == std::string_view::npos || !parse_op_class(key.substr(0, dot), &c)) {
        return error(Errc::invalid, "fault plan: unknown key '" + std::string(key) + "'");
      }
      const std::string_view field = key.substr(dot + 1);
      if (!parse_f64(value, &p)) return bad();
      FaultSpec& s = plan.spec(c);
      if (field == "io") {
        s.p_io_error = p;
      } else if (field == "busy") {
        s.p_busy = p;
      } else if (field == "stale") {
        s.p_stale = p;
      } else if (field == "spike") {
        s.p_spike = p;
      } else {
        return error(Errc::invalid, "fault plan: unknown field '" + std::string(field) + "'");
      }
    }
  }
  if (spike_ms >= 0.0) {
    for (auto& s : plan.ops) s.spike = Duration::seconds(spike_ms * 1e-3);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  // Emits the same key=value grammar parse() accepts, so a plan can be
  // logged and replayed verbatim. The grammar only expresses one spike
  // duration (spike_ms applies to every class), which matches everything
  // the presets and the flag syntax can produce.
  std::string out = str_printf("seed=%llu", static_cast<unsigned long long>(seed));
  double spike_ms = -1.0;
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    const FaultSpec& s = ops[i];
    if (!s.any()) continue;
    const std::string c(op_class_name(static_cast<OpClass>(i)));
    if (s.p_io_error > 0) out += str_printf(",%s.io=%g", c.c_str(), s.p_io_error);
    if (s.p_busy > 0) out += str_printf(",%s.busy=%g", c.c_str(), s.p_busy);
    if (s.p_stale > 0) out += str_printf(",%s.stale=%g", c.c_str(), s.p_stale);
    if (s.p_spike > 0) {
      out += str_printf(",%s.spike=%g", c.c_str(), s.p_spike);
      spike_ms = s.spike.to_ms();
    }
  }
  if (spike_ms >= 0.0) out += str_printf(",spike_ms=%g", spike_ms);
  if (p_torn_write > 0) out += str_printf(",torn=%g", p_torn_write);
  if (crash_close_index) out += ",crash_close_index=1";
  for (const auto& w : outages) {
    out += str_printf(",outage=%s@%.0f-%.0f", w.path_prefix.c_str(),
                      (w.begin - TimePoint()).to_ms(), (w.end - TimePoint()).to_ms());
  }
  for (const auto& so : server_outages) {
    const std::string rep = so.replica < 0 ? "leader" : std::to_string(so.replica);
    out += str_printf(",server_outage=%d:%s@%.0f-%.0f", so.mds, rep.c_str(),
                      (so.begin - TimePoint()).to_ms(), (so.end - TimePoint()).to_ms());
  }
  for (const auto& pw : partitions) {
    out += str_printf(",partition=%d@%.0f-%.0f", pw.mds,
                      (pw.begin - TimePoint()).to_ms(), (pw.end - TimePoint()).to_ms());
  }
  return out;
}

}  // namespace tio::pfs
