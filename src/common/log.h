// Minimal leveled logging to stderr. Off by default in tests and benches;
// enable with TIO_LOG=debug|info|warn in the environment or set_level().
#pragma once

#include <string>

#include "common/strutil.h"  // str_printf, used by the TIO_LOG macros

namespace tio {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

#define TIO_LOG(level, ...)                                              \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::tio::log_level())) \
      ::tio::log_message(level, ::tio::str_printf(__VA_ARGS__));         \
  } while (0)

#define TIO_DEBUG(...) TIO_LOG(::tio::LogLevel::debug, __VA_ARGS__)
#define TIO_INFO(...) TIO_LOG(::tio::LogLevel::info, __VA_ARGS__)
#define TIO_WARN(...) TIO_LOG(::tio::LogLevel::warn, __VA_ARGS__)

}  // namespace tio
