#include <algorithm>
#include "net/page_cache.h"

#include <stdexcept>

#include "common/rng.h"

namespace tio::net {

std::size_t PageCache::KeyHash::operator()(const Key& k) const {
  return static_cast<std::size_t>(hash_combine(k.object, k.block));
}

PageCache::PageCache(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
    : capacity_(capacity_bytes), block_(block_bytes) {
  if (block_ == 0) throw std::invalid_argument("PageCache: zero block size");
  max_blocks_ = capacity_ / block_;
}

void PageCache::unlink(std::uint32_t i) {
  Entry& e = slab_[i];
  if (e.prev != kNil) {
    slab_[e.prev].next = e.next;
  } else {
    head_ = e.next;
  }
  if (e.next != kNil) {
    slab_[e.next].prev = e.prev;
  } else {
    tail_ = e.prev;
  }
}

void PageCache::push_front(std::uint32_t i) {
  Entry& e = slab_[i];
  e.prev = kNil;
  e.next = head_;
  if (head_ != kNil) slab_[head_].prev = i;
  head_ = i;
  if (tail_ == kNil) tail_ = i;
}

void PageCache::release(std::uint32_t i) {
  unlink(i);
  free_.push_back(i);
}

void PageCache::touch(std::uint64_t object, std::uint64_t block) {
  const Key key{object, block};
  if (const std::uint32_t* found = map_.find(key)) {
    if (head_ != *found) {
      unlink(*found);
      push_front(*found);
    }
    return;
  }
  if (max_blocks_ == 0) return;
  while (map_.size() >= max_blocks_) {
    map_.erase(slab_[tail_].key);
    release(tail_);
    ++stats_.evictions;
  }
  std::uint32_t i;
  if (!free_.empty()) {
    i = free_.back();
    free_.pop_back();
  } else {
    i = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[i].key = key;
  push_front(i);
  map_[key] = i;
}

void PageCache::fill(std::uint64_t object, std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = offset / block_;
  const std::uint64_t last = (offset + len - 1) / block_;
  for (std::uint64_t b = first; b <= last; ++b) touch(object, b);
}

std::uint64_t PageCache::lookup(std::uint64_t object, std::uint64_t offset, std::uint64_t len,
                                std::vector<ByteRange>* misses) {
  if (len == 0) return 0;
  std::uint64_t hit = 0;
  const std::uint64_t first = offset / block_;
  const std::uint64_t last = (offset + len - 1) / block_;
  for (std::uint64_t b = first; b <= last; ++b) {
    const std::uint32_t* found = map_.find(Key{object, b});
    const std::uint64_t block_start = b * block_;
    const std::uint64_t lo = std::max(offset, block_start);
    const std::uint64_t hi = std::min(offset + len, block_start + block_);
    if (found != nullptr) {
      hit += hi - lo;
      if (head_ != *found) {
        unlink(*found);
        push_front(*found);
      }
      stats_.hit_bytes += hi - lo;
    } else {
      stats_.miss_bytes += hi - lo;
      if (misses != nullptr) {
        if (!misses->empty() && misses->back().offset + misses->back().len == lo) {
          misses->back().len += hi - lo;  // coalesce adjacent missed blocks
        } else {
          misses->push_back(ByteRange{lo, hi - lo});
        }
      }
    }
  }
  return hit;
}

void PageCache::invalidate_object(std::uint64_t object) {
  for (std::uint32_t i = head_; i != kNil;) {
    const std::uint32_t next = slab_[i].next;
    if (slab_[i].key.object == object) {
      map_.erase(slab_[i].key);
      release(i);
    }
    i = next;
  }
}

void PageCache::clear() {
  map_.clear();
  slab_.clear();
  free_.clear();
  head_ = kNil;
  tail_ = kNil;
}

}  // namespace tio::net
