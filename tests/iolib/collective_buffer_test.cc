#include "iolib/collective_buffer.h"

#include <gtest/gtest.h>

#include <set>

#include "net/cluster.h"
#include "pfs/extent_map.h"

namespace tio::iolib {
namespace {

// Shared in-memory file that records which ranks issued operations and how
// large they were — the properties collective buffering must deliver.
struct Recorder {
  pfs::ExtentMap map;
  std::uint64_t size = 0;
  std::set<int> writer_ranks;
  std::vector<std::uint64_t> write_sizes;
  std::set<int> reader_ranks;

  WriteFn writer(int rank) {
    return [this, rank](std::uint64_t off, DataView data) -> sim::Task<Status> {
      writer_ranks.insert(rank);
      write_sizes.push_back(data.size());
      size = std::max(size, off + data.size());
      map.write(off, std::move(data));
      co_return Status::Ok();
    };
  }
  ReadFn reader(int rank) {
    return [this, rank](std::uint64_t off, std::uint64_t len) -> sim::Task<Result<FragmentList>> {
      reader_ranks.insert(rank);
      if (off >= size) co_return FragmentList{};
      co_return map.read(off, std::min(len, size - off));
    };
  }
};

net::ClusterConfig tiny_cluster() {
  net::ClusterConfig c;
  c.nodes = 4;
  c.cores_per_node = 4;
  return c;
}

// Strided 1 KiB records for `rank`, like LANL 3.
std::vector<CbChunk> strided_chunks(int rank, int nprocs, int rounds, std::uint64_t record,
                                    std::uint64_t seed) {
  std::vector<CbChunk> out;
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t off =
        (static_cast<std::uint64_t>(r) * nprocs + static_cast<std::uint64_t>(rank)) * record;
    out.push_back(CbChunk{off, DataView::pattern(seed, off, record)});
  }
  return out;
}

TEST(CbAggregators, DefaultIsOnePerNode) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  mpi::run_spmd(cluster, 16, [](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_EQ(cb_num_aggregators(CbConfig{}, comm), 4);
    co_return;
  });
  mpi::run_spmd(cluster, 2, [](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_EQ(cb_num_aggregators(CbConfig{}, comm), 1);
    co_return;
  });
}

TEST(CbAggregators, RanksAreSpreadAcrossTheComm) {
  EXPECT_EQ(cb_aggregator_rank(0, 4, 16), 0);
  EXPECT_EQ(cb_aggregator_rank(1, 4, 16), 4);
  EXPECT_EQ(cb_aggregator_rank(3, 4, 16), 12);
}

TEST(CbWrite, CoalescesStridedRecordsIntoLargeWrites) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  Recorder file;
  const int n = 16;
  const int rounds = 64;
  CbConfig cb;
  cb.buffer_bytes = 1_MiB;
  mpi::run_spmd(cluster, n, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await cb_write(comm, cb, strided_chunks(comm.rank(), n, rounds, 1024, 7),
                                   file.writer(comm.rank())))
                    .ok());
  });
  // All content present and correct.
  const std::uint64_t total = static_cast<std::uint64_t>(n) * rounds * 1024;
  EXPECT_EQ(file.size, total);
  EXPECT_TRUE(file.map.read(0, total).content_equals(DataView::pattern(7, 0, total)));
  // Only the 4 aggregators touched the file...
  EXPECT_EQ(file.writer_ranks, (std::set<int>{0, 4, 8, 12}));
  // ...with far fewer, far larger operations than n*rounds records.
  EXPECT_LE(file.write_sizes.size(), 8u);
  for (const auto s : file.write_sizes) EXPECT_GE(s, 64u * 1024);
}

TEST(CbWrite, RespectsBufferCap) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  Recorder file;
  CbConfig cb;
  cb.aggregators = 1;
  cb.buffer_bytes = 64_KiB;
  mpi::run_spmd(cluster, 4, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await cb_write(comm, cb, strided_chunks(comm.rank(), 4, 64, 1024, 7),
                                   file.writer(comm.rank())))
                    .ok());
  });
  for (const auto s : file.write_sizes) EXPECT_LE(s, 64_KiB);
  EXPECT_EQ(file.size, 4u * 64 * 1024);
}

TEST(CbWrite, EmptyEverywhereIsANoop) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  Recorder file;
  mpi::run_spmd(cluster, 8, [&](mpi::Comm comm) -> sim::Task<void> {
    EXPECT_TRUE((co_await cb_write(comm, CbConfig{}, {}, file.writer(comm.rank()))).ok());
  });
  EXPECT_EQ(file.size, 0u);
  EXPECT_TRUE(file.writer_ranks.empty());
}

TEST(CbWrite, UnevenContributionsStillLandCorrectly) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  Recorder file;
  mpi::run_spmd(cluster, 8, [&](mpi::Comm comm) -> sim::Task<void> {
    std::vector<CbChunk> mine;
    if (comm.rank() % 2 == 0) {  // only even ranks write
      const std::uint64_t off = static_cast<std::uint64_t>(comm.rank()) * 10000;
      mine.push_back(CbChunk{off, DataView::pattern(3, off, 10000)});
    }
    EXPECT_TRUE((co_await cb_write(comm, CbConfig{}, std::move(mine),
                                   file.writer(comm.rank())))
                    .ok());
  });
  for (int r = 0; r < 8; r += 2) {
    const std::uint64_t off = static_cast<std::uint64_t>(r) * 10000;
    EXPECT_TRUE(file.map.read(off, 10000).content_equals(DataView::pattern(3, off, 10000)));
  }
}

TEST(CbRead, ReturnsEveryRequestInOrderAndOnlyAggregatorsRead) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  Recorder file;
  const int n = 16;
  const int rounds = 32;
  // Seed the file directly.
  const std::uint64_t total = static_cast<std::uint64_t>(n) * rounds * 1024;
  file.map.write(0, DataView::pattern(7, 0, total));
  file.size = total;

  mpi::run_spmd(cluster, n, [&](mpi::Comm comm) -> sim::Task<void> {
    std::vector<CbRange> wants;
    for (int r = 0; r < rounds; ++r) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(r) * n + static_cast<std::uint64_t>(comm.rank())) * 1024;
      wants.push_back(CbRange{off, 1024});
    }
    std::vector<FragmentList> got;
    EXPECT_TRUE(
        (co_await cb_read(comm, CbConfig{}, wants, file.reader(comm.rank()), &got)).ok());
    EXPECT_EQ(got.size(), wants.size());
    for (std::size_t i = 0; i < wants.size(); ++i) {
      EXPECT_TRUE(got[i].content_equals(DataView::pattern(7, wants[i].offset, wants[i].len)))
          << "rank " << comm.rank() << " want " << i;
    }
  });
  EXPECT_EQ(file.reader_ranks, (std::set<int>{0, 4, 8, 12}));
}

TEST(CbRead, RequestSpanningDomainBoundaryIsReassembled) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  Recorder file;
  file.map.write(0, DataView::pattern(5, 0, 100000));
  file.size = 100000;
  CbConfig cb;
  cb.aggregators = 4;
  mpi::run_spmd(cluster, 4, [&](mpi::Comm comm) -> sim::Task<void> {
    // One large request per rank covering multiple aggregator domains.
    std::vector<CbRange> wants = {CbRange{static_cast<std::uint64_t>(comm.rank()) * 10000,
                                          60000 - static_cast<std::uint64_t>(comm.rank())}};
    std::vector<FragmentList> got;
    EXPECT_TRUE((co_await cb_read(comm, cb, wants, file.reader(comm.rank()), &got)).ok());
    EXPECT_TRUE(got[0].content_equals(DataView::pattern(5, wants[0].offset, wants[0].len)));
  });
}

TEST(CbRead, PastEofComesBackZeroPadded) {
  sim::Engine engine;
  net::Cluster cluster(engine, tiny_cluster());
  Recorder file;
  file.map.write(0, DataView::pattern(5, 0, 1000));
  file.size = 1000;
  mpi::run_spmd(cluster, 2, [&](mpi::Comm comm) -> sim::Task<void> {
    std::vector<CbRange> wants = {CbRange{500, 1000}};  // half beyond EOF
    std::vector<FragmentList> got;
    EXPECT_TRUE(
        (co_await cb_read(comm, CbConfig{}, wants, file.reader(comm.rank()), &got)).ok());
    EXPECT_EQ(got[0].size(), 1000u);
    EXPECT_EQ(got[0].at(0), DataView::pattern_byte(5, 500));
    EXPECT_EQ(got[0].at(999), std::byte{0});
  });
}

}  // namespace
}  // namespace tio::iolib
