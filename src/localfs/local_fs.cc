#include "localfs/local_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <algorithm>
#include <stdexcept>

#include "common/strutil.h"

namespace tio::localfs {

using pfs::FileId;

namespace {

Errc errc_from_errno(int err) {
  switch (err) {
    case ENOENT: return Errc::not_found;
    case EEXIST: return Errc::exists;
    case ENOTDIR: return Errc::not_a_directory;
    case EISDIR: return Errc::is_a_directory;
    case ENOTEMPTY: return Errc::not_empty;
    case EACCES: return Errc::permission;
    case EBADF: return Errc::bad_handle;
    case ENOSPC: return Errc::no_space;
    case EINVAL: return Errc::invalid;
    default: return Errc::io_error;
  }
}

Status errno_status(std::string_view what, std::string_view path) {
  return error(errc_from_errno(errno),
               std::string(what) + " " + std::string(path) + ": " + std::strerror(errno));
}

}  // namespace

LocalFs::LocalFs(sim::Engine& engine, std::string root)
    : engine_(engine), root_(std::move(root)) {
  struct stat st{};
  if (::stat(root_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw std::invalid_argument("LocalFs root is not an existing directory: " + root_);
  }
  while (root_.size() > 1 && root_.back() == '/') root_.pop_back();
}

std::string LocalFs::host_path(std::string_view logical) const {
  return root_ + path_normalize(logical);
}

sim::Task<Result<FileId>> LocalFs::open(pfs::IoCtx ctx, std::string path, pfs::OpenFlags flags) {
  (void)ctx;
  if (!flags.read && !flags.write) {
    co_return error(Errc::invalid, "open needs read or write: " + path);
  }
  int oflags = flags.read && flags.write ? O_RDWR : (flags.write ? O_WRONLY : O_RDONLY);
  if (flags.create) oflags |= O_CREAT;
  if (flags.trunc) oflags |= O_TRUNC;
  if (flags.excl) oflags |= O_EXCL;
  const std::string host = host_path(path);
  const int fd = ::open(host.c_str(), oflags, 0644);
  if (fd < 0) co_return errno_status("open", host);
  const FileId id = next_file_id_++;
  fds_[id] = fd;
  co_return id;
}

sim::Task<Status> LocalFs::close(pfs::IoCtx ctx, FileId file) {
  (void)ctx;
  const auto it = fds_.find(file);
  if (it == fds_.end()) co_return error(Errc::bad_handle, "close");
  ::close(it->second);
  fds_.erase(it);
  co_return Status::Ok();
}

sim::Task<Result<std::uint64_t>> LocalFs::write(pfs::IoCtx ctx, FileId file, std::uint64_t offset,
                                                DataView data) {
  (void)ctx;
  const auto it = fds_.find(file);
  if (it == fds_.end()) co_return error(Errc::bad_handle, "write");
  const auto bytes = data.to_bytes();
  std::uint64_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::pwrite(it->second, bytes.data() + done, bytes.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) co_return errno_status("pwrite", "");
    done += static_cast<std::uint64_t>(n);
  }
  co_return done;
}

sim::Task<Result<FragmentList>> LocalFs::read(pfs::IoCtx ctx, FileId file, std::uint64_t offset,
                                              std::uint64_t len) {
  (void)ctx;
  const auto it = fds_.find(file);
  if (it == fds_.end()) co_return error(Errc::bad_handle, "read");
  // Clamp to EOF before allocating (callers may pass "the whole file").
  struct stat st{};
  if (::fstat(it->second, &st) != 0) co_return errno_status("fstat", "");
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (offset >= size) co_return FragmentList{};
  len = std::min(len, size - offset);
  std::vector<std::byte> buf(len);
  std::uint64_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(it->second, buf.data() + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) co_return errno_status("pread", "");
    if (n == 0) break;  // EOF
    done += static_cast<std::uint64_t>(n);
  }
  buf.resize(done);
  FragmentList out;
  out.append(DataView::literal(std::move(buf)));
  co_return out;
}

sim::Task<Status> LocalFs::mkdir(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  const std::string host = host_path(path);
  if (::mkdir(host.c_str(), 0755) != 0) co_return errno_status("mkdir", host);
  co_return Status::Ok();
}

sim::Task<Status> LocalFs::rmdir(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  const std::string host = host_path(path);
  if (::rmdir(host.c_str()) != 0) co_return errno_status("rmdir", host);
  co_return Status::Ok();
}

sim::Task<Status> LocalFs::unlink(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  const std::string host = host_path(path);
  if (::unlink(host.c_str()) != 0) co_return errno_status("unlink", host);
  co_return Status::Ok();
}

sim::Task<Status> LocalFs::rename(pfs::IoCtx ctx, std::string from, std::string to) {
  (void)ctx;
  const std::string h_from = host_path(from);
  const std::string h_to = host_path(to);
  if (::rename(h_from.c_str(), h_to.c_str()) != 0) co_return errno_status("rename", h_from);
  co_return Status::Ok();
}

sim::Task<Result<pfs::StatInfo>> LocalFs::stat(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  const std::string host = host_path(path);
  struct ::stat st{};
  if (::stat(host.c_str(), &st) != 0) co_return errno_status("stat", host);
  pfs::StatInfo info;
  info.is_dir = S_ISDIR(st.st_mode);
  info.size = static_cast<std::uint64_t>(st.st_size);
  info.mtime = TimePoint::from_ns(static_cast<std::int64_t>(st.st_mtime) * 1000000000);
  co_return info;
}

sim::Task<Result<std::vector<pfs::DirEntry>>> LocalFs::readdir(pfs::IoCtx ctx, std::string path) {
  (void)ctx;
  const std::string host = host_path(path);
  DIR* dir = ::opendir(host.c_str());
  if (dir == nullptr) co_return errno_status("opendir", host);
  std::vector<pfs::DirEntry> out;
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string_view name = ent->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(pfs::DirEntry{std::string(name), ent->d_type == DT_DIR});
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end(),
            [](const pfs::DirEntry& a, const pfs::DirEntry& b) { return a.name < b.name; });
  co_return out;
}

}  // namespace tio::localfs
