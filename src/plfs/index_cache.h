// Byte-budgeted LRU cache for per-container index state.
//
// Plfs used to memoize built serial indices and parsed index logs in two
// unbounded maps that were cleared wholesale on any open_write/unlink of
// any file. This cache replaces both:
//
//   * entries are charged against a byte budget (IndexView::memory_bytes /
//     raw entry bytes) and evicted LRU when over budget;
//   * invalidation is per container: open_write/unlink of one logical file
//     bumps that container's generation and eagerly drops only its entries,
//     leaving every other container's cached index warm.
//
// The simulator is single-threaded per Plfs instance, so no locking.
// Hit/miss/eviction/byte totals are mirrored into common/stats counters
// under "plfs.index_cache." for the benches.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "plfs/index.h"
#include "plfs/index_builder.h"

namespace tio::plfs {

class IndexCache {
 public:
  using LogEntries = std::shared_ptr<const std::vector<IndexEntry>>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t bytes = 0;    // currently cached
    std::uint64_t entries = 0;  // currently cached
  };

  explicit IndexCache(std::uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  // Built serial index for one container (keyed by normalized logical path).
  IndexPtr get_index(const std::string& container);
  void put_index(const std::string& container, IndexPtr index);

  // Parsed entries of one index log inside a container. The container key
  // scopes invalidation; `path` is the physical log path.
  LogEntries get_log(const std::string& container, const std::string& path);
  void put_log(const std::string& container, const std::string& path, LogEntries entries);

  // Drops everything cached for this container and bumps its generation.
  // Called on open_write/unlink/global-index rewrite.
  void invalidate(const std::string& container);
  // Current generation of a container; bumped by every invalidate(). Lets
  // callers detect writes that happened while they were aggregating.
  std::uint64_t generation(const std::string& container) const;

  void clear();
  const Stats& stats() const { return stats_; }
  std::uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    IndexPtr index;      // exactly one of index/log set
    LogEntries log;
    std::uint64_t bytes = 0;
    std::string container;
    std::list<std::string>::iterator lru_it;
  };

  // Returns the entry if cached, refreshing LRU position; else nullptr.
  Entry* find(const std::string& key);
  void insert(const std::string& key, const std::string& container, Entry entry);
  void erase_key(const std::string& key);
  void evict_to_budget();

  std::uint64_t budget_bytes_;
  Stats stats_;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, std::vector<std::string>> by_container_;
  std::unordered_map<std::string, std::uint64_t> generations_;
};

}  // namespace tio::plfs
