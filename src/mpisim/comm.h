// Communicator with real collective algorithms.
//
// A Comm is a per-rank view of a process group (like an MPI communicator
// handle). Collectives are implemented as the textbook message-passing
// algorithms — binomial broadcast/gather/reduce, dissemination barrier,
// pairwise all-to-all — so that message counts and volumes, and therefore
// simulated time, are faithful to what a real MPI library would generate on
// the fabric. Every rank of a comm must invoke collectives in the same
// order (the usual MPI rule); a per-rank operation counter keeps rounds
// from different collectives on disjoint tags.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mpisim/runtime.h"
#include "mpisim/tag_registry.h"
#include "sim/task.h"

namespace tio::mpi {

namespace detail {
template <typename T>
T checked_any_cast(std::any payload, const char* where) {
  if (payload.type() != typeid(T)) {
    throw std::runtime_error(std::string("any_cast mismatch in ") + where + ": expected " +
                             typeid(T).name() + " got " + payload.type().name());
  }
  return std::any_cast<T>(std::move(payload));
}
}  // namespace detail

class Comm {
 public:
  // World communicator for `rank`.
  static Comm world(Runtime& rt, int rank);

  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(group_->members.size()); }
  int global_rank() const { return group_->members[my_index_]; }
  std::size_t my_node() const { return rt_->node_of(global_rank()); }
  // Node hosting comm rank `r`. Placement is deterministic knowledge every
  // rank holds locally (block placement), so consulting it is free — the
  // topology-aware layers (intra-node collective aggregation) key off it.
  std::size_t node_of_rank(int r) const {
    check_rank(r);
    return rt_->node_of(group_->members[r]);
  }
  // Rack hosting comm rank `r` — same local-knowledge contract as
  // node_of_rank; rack geometry comes from ClusterConfig::rack_of_node.
  std::size_t rack_of_rank(int r) const {
    check_rank(r);
    return rt_->rack_of(group_->members[r]);
  }
  std::size_t my_rack() const { return rt_->rack_of(global_rank()); }
  Runtime& runtime() const { return *rt_; }
  sim::Engine& engine() const { return rt_->engine(); }
  // Mailbox context id (unique per communicator); diagnostics only.
  std::uint64_t context() const { return group_->context; }

  // --- point to point (ranks are comm-relative) ---
  template <typename T>
  sim::Task<void> send(int dest, int tag, T value, std::uint64_t bytes);
  template <typename T>
  sim::Task<T> recv(int src, int tag);

  // --- collectives ---
  sim::Task<void> barrier();
  // Value is taken from `root` and returned on every rank; `bytes` is the
  // serialized payload size used for costing.
  template <typename T>
  sim::Task<T> bcast(int root, T value, std::uint64_t bytes);
  // Root receives a size()-element vector indexed by comm rank; other ranks
  // receive an empty vector.
  template <typename T>
  sim::Task<std::vector<T>> gather(int root, T mine, std::uint64_t bytes);
  // gather to rank 0 + bcast (n log n messages; robust at any size).
  template <typename T>
  sim::Task<std::vector<T>> allgather(T mine, std::uint64_t bytes);
  // Pairwise exchange; element i of the result came from rank i. Quadratic
  // message count — intended for small comms (e.g. group leaders).
  template <typename T>
  sim::Task<std::vector<T>> alltoall(std::vector<T> to_send, std::uint64_t bytes_each);
  // Binomial reduction with a binary op; result valid on root only.
  template <typename T, typename Op>
  sim::Task<T> reduce(int root, T mine, std::uint64_t bytes, Op op);
  template <typename T, typename Op>
  sim::Task<T> allreduce(T mine, std::uint64_t bytes, Op op);

  // Collective: partitions ranks by `color`; ordering within a group is by
  // (key, rank). Returns this rank's sub-communicator.
  sim::Task<Comm> split(int color, int key);

 private:
  struct Group {
    std::uint64_t context;
    std::vector<int> members;  // global ranks, comm order
  };
  Comm(Runtime& rt, std::shared_ptr<const Group> group, int my_index)
      : rt_(&rt), group_(std::move(group)), my_index_(my_index) {}

  // Raw transfer of one message to a comm-relative destination.
  sim::Task<void> send_any(int dest, int tag, std::any payload, std::uint64_t bytes);
  sim::Task<std::any> recv_any(int src, int tag);
  int next_op_tag() { return kCollectiveTagBase + 32 * static_cast<int>(op_counter_++); }
  void check_rank(int r) const {
    if (r < 0 || r >= size()) throw std::out_of_range("Comm: bad rank");
  }

  // All user-visible tags live in registry blocks below this limit
  // (mpisim/tag_registry.h); everything above is ours for collectives.
  static constexpr int kCollectiveTagBase = kCollectiveTagLimit;

  Runtime* rt_;
  std::shared_ptr<const Group> group_;
  int my_index_;
  std::uint32_t op_counter_ = 0;
};

// --- implementation ---

template <typename T>
sim::Task<void> Comm::send(int dest, int tag, T value, std::uint64_t bytes) {
  if (tag >= kCollectiveTagBase) throw std::invalid_argument("Comm::send: reserved tag");
  co_await send_any(dest, tag, std::any(std::move(value)), bytes);
}

template <typename T>
sim::Task<T> Comm::recv(int src, int tag) {
  std::any payload = co_await recv_any(src, tag);
  if (payload.type() != typeid(T)) {
    throw std::runtime_error(std::string("Comm::recv type mismatch: expected ") +
                             typeid(T).name() + " got " + payload.type().name() +
                             " (rank " + std::to_string(rank()) + " src " +
                             std::to_string(src) + " tag " + std::to_string(tag) + ")");
  }
  co_return std::any_cast<T>(std::move(payload));
}

template <typename T>
sim::Task<T> Comm::bcast(int root, T value, std::uint64_t bytes) {
  check_rank(root);
  const int tag = next_op_tag();
  const int n = size();
  const int vrank = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % n;
      std::any payload = co_await recv_any(parent, tag);
      value = detail::checked_any_cast<T>(std::move(payload), "bcast");
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & (mask - 1)) == 0 && !(vrank & mask) && vrank + mask < n) {
      const int child = (vrank + mask + root) % n;
      co_await send_any(child, tag, std::any(value), bytes);
    }
    mask >>= 1;
  }
  co_return value;
}

template <typename T>
sim::Task<std::vector<T>> Comm::gather(int root, T mine, std::uint64_t bytes) {
  check_rank(root);
  const int tag = next_op_tag();
  const int n = size();
  const int vrank = (rank() - root + n) % n;
  // Accumulate (vrank, value) pairs up a binomial tree.
  std::vector<std::pair<int, T>> acc;
  acc.emplace_back(vrank, std::move(mine));
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % n;
      const std::uint64_t vol = bytes * acc.size();
      co_await send_any(parent, tag, std::any(std::move(acc)), vol);
      co_return std::vector<T>{};
    }
    if (vrank + mask < n) {
      const int child = (vrank + mask + root) % n;
      std::any payload = co_await recv_any(child, tag);
      auto chunk = detail::checked_any_cast<std::vector<std::pair<int, T>>>(std::move(payload), "gather");
      for (auto& p : chunk) acc.push_back(std::move(p));
    }
    mask <<= 1;
  }
  // Root: reorder by comm rank.
  std::vector<T> out(n);
  for (auto& [vr, v] : acc) out[(vr + root) % n] = std::move(v);
  co_return out;
}

template <typename T>
sim::Task<std::vector<T>> Comm::allgather(T mine, std::uint64_t bytes) {
  auto gathered = co_await gather(0, std::move(mine), bytes);
  // Broadcasting the full vector costs n * bytes.
  co_return co_await bcast(0, std::move(gathered),
                           bytes * static_cast<std::uint64_t>(size()));
}

template <typename T>
sim::Task<std::vector<T>> Comm::alltoall(std::vector<T> to_send, std::uint64_t bytes_each) {
  if (static_cast<int>(to_send.size()) != size()) {
    throw std::invalid_argument("Comm::alltoall: vector size must equal comm size");
  }
  const int tag = next_op_tag();
  const int n = size();
  std::vector<T> out(n);
  out[rank()] = std::move(to_send[rank()]);
  // Pairwise rounds: in round r exchange with (rank + r) % n / (rank - r + n) % n.
  for (int r = 1; r < n; ++r) {
    const int to = (rank() + r) % n;
    const int from = (rank() - r + n) % n;
    co_await send_any(to, tag + 1, std::any(std::move(to_send[to])), bytes_each);
    std::any payload = co_await recv_any(from, tag + 1);
    out[from] = detail::checked_any_cast<T>(std::move(payload), "alltoall");
  }
  co_return out;
}

template <typename T, typename Op>
sim::Task<T> Comm::reduce(int root, T mine, std::uint64_t bytes, Op op) {
  check_rank(root);
  const int tag = next_op_tag();
  const int n = size();
  const int vrank = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % n;
      co_await send_any(parent, tag, std::any(std::move(mine)), bytes);
      co_return T{};
    }
    if (vrank + mask < n) {
      const int child = (vrank + mask + root) % n;
      std::any payload = co_await recv_any(child, tag);
      mine = op(std::move(mine), detail::checked_any_cast<T>(std::move(payload), "reduce"));
    }
    mask <<= 1;
  }
  co_return mine;
}

template <typename T, typename Op>
sim::Task<T> Comm::allreduce(T mine, std::uint64_t bytes, Op op) {
  T reduced = co_await reduce(0, std::move(mine), bytes, op);
  co_return co_await bcast(0, std::move(reduced), bytes);
}

}  // namespace tio::mpi
