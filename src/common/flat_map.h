// Open-addressed hash map for the simulator's hot per-event lookups
// (MPI mailboxes, page-cache residency). std::unordered_map pays a node
// allocation per insert, a prime-modulo division per probe, and a pointer
// chase per bucket collision — at millions of messages per run that is a
// measurable slice of wall time. This map linear-probes a contiguous
// power-of-two table (one cache line per probe step), deletes via
// tombstones, and cleans them up by right-sizing on rehash, so churn-heavy
// maps (a mailbox lives for exactly one message) stay compact.
//
// Requirements: Key copyable and equality-comparable, Value default-
// constructible, Hash well mixed over all 64 bits (linear probing amplifies
// weak hashes; run anything structured through splitmix64). Iteration is
// deliberately not provided — nothing on the hot path walks these maps, and
// hash-order iteration is how nondeterminism sneaks into a simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tio {

template <typename Key, typename Value, typename Hash>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void reserve(std::size_t n) {
    if (n * 2 > state_.size()) rehash(n * 2);
  }

  // Pointer to the mapped value, or nullptr when absent.
  Value* find(const Key& k) {
    if (size_ == 0) return nullptr;
    const std::size_t mask = state_.size() - 1;
    for (std::size_t i = Hash{}(k) & mask;; i = (i + 1) & mask) {
      if (state_[i] == kEmpty) return nullptr;
      if (state_[i] == kFull && slots_[i].first == k) return &slots_[i].second;
    }
  }

  // Existing mapped value, or a freshly value-initialized one.
  Value& operator[](const Key& k) {
    if ((used_ + 1) * 2 > state_.size()) rehash(size_ * 4 + 16);
    const std::size_t mask = state_.size() - 1;
    std::size_t insert_at = kNpos;
    for (std::size_t i = Hash{}(k) & mask;; i = (i + 1) & mask) {
      if (state_[i] == kFull) {
        if (slots_[i].first == k) return slots_[i].second;
      } else if (state_[i] == kTomb) {
        if (insert_at == kNpos) insert_at = i;  // best reusable slot so far
      } else {
        // First empty slot: the key is definitely absent.
        if (insert_at == kNpos) {
          insert_at = i;
          ++used_;  // consuming a never-used slot; tombstone reuse doesn't
        }
        state_[insert_at] = kFull;
        slots_[insert_at] = std::pair<Key, Value>(k, Value());
        ++size_;
        return slots_[insert_at].second;
      }
    }
  }

  bool erase(const Key& k) {
    if (size_ == 0) return false;
    const std::size_t mask = state_.size() - 1;
    for (std::size_t i = Hash{}(k) & mask;; i = (i + 1) & mask) {
      if (state_[i] == kEmpty) return false;
      if (state_[i] == kFull && slots_[i].first == k) {
        state_[i] = kTomb;
        slots_[i] = std::pair<Key, Value>();  // drop held resources now
        --size_;
        return true;
      }
    }
  }

  void clear() {
    state_.assign(state_.size(), kEmpty);
    slots_.assign(slots_.size(), std::pair<Key, Value>());
    size_ = 0;
    used_ = 0;
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  void rehash(std::size_t want) {
    std::size_t ncap = 16;
    while (ncap < want) ncap <<= 1;
    std::vector<std::uint8_t> nstate(ncap, static_cast<std::uint8_t>(kEmpty));
    std::vector<std::pair<Key, Value>> nslots(ncap);
    const std::size_t mask = ncap - 1;
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] != kFull) continue;
      std::size_t j = Hash{}(slots_[i].first) & mask;
      while (nstate[j] == kFull) j = (j + 1) & mask;
      nstate[j] = kFull;
      nslots[j] = std::move(slots_[i]);
    }
    state_ = std::move(nstate);
    slots_ = std::move(nslots);
    used_ = size_;  // tombstones discarded
  }

  // Parallel arrays: probing scans the dense state bytes (64 per cache
  // line) and only touches a slot on a state match.
  std::vector<std::uint8_t> state_;
  std::vector<std::pair<Key, Value>> slots_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live + tombstoned slots (probe-chain occupancy)
};

}  // namespace tio
