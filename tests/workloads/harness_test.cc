#include "workloads/harness.h"

#include <gtest/gtest.h>

#include "workloads/kernels.h"
#include "workloads/metadata.h"

namespace tio::workloads {
namespace {

testbed::Rig::Options small_rig(std::size_t mds = 2) {
  testbed::Rig::Options o;
  o.cluster = testbed::lanl_cluster();
  o.cluster.nodes = 8;
  // Two cores per node so even small test jobs span nodes (cross-node
  // writers are what the shared-file lock model penalizes).
  o.cluster.cores_per_node = 2;
  o.pfs = testbed::lanl_pfs(mds);
  o.num_subdirs = 8;
  return o;
}

TEST(OpGens, StridedCoversDisjointInterleavedOffsets) {
  const auto gen = strided_ops(4096, 1024);
  const auto r0 = gen(0, 4);
  const auto r3 = gen(3, 4);
  ASSERT_EQ(r0.size(), 4u);
  EXPECT_EQ(r0[0].offset, 0u);
  EXPECT_EQ(r0[1].offset, 4096u);
  EXPECT_EQ(r3[0].offset, 3 * 1024u);
  EXPECT_EQ(total_bytes(gen, 4), 4u * 4096);
}

TEST(OpGens, SegmentedIsContiguousPerRank) {
  const auto gen = segmented_ops(4096, 1024);
  const auto r2 = gen(2, 4);
  EXPECT_EQ(r2[0].offset, 2u * 4096);
  EXPECT_EQ(r2[3].offset, 2u * 4096 + 3 * 1024);
  EXPECT_EQ(total_bytes(gen, 4), 4u * 4096);
}

TEST(Harness, PlfsN1WriteReadJobCompletesAndTimes) {
  testbed::Rig rig(small_rig());
  JobSpec spec = mpiio_test(256_KiB, 32_KiB, TargetOptions{.access = Access::plfs_n1});
  const JobResult result = run_job(rig, 8, spec);
  EXPECT_GT(result.write.io_s, 0);
  EXPECT_GT(result.write.open_s, 0);
  EXPECT_GT(result.write.close_s, 0);
  EXPECT_EQ(result.write.bytes, 8u * 256_KiB);
  EXPECT_GT(result.read.total_s(), 0);
  EXPECT_GT(result.write.effective_bw(), 0);
}

TEST(Harness, DirectN1JobCompletes) {
  testbed::Rig rig(small_rig());
  JobSpec spec = mpiio_test(128_KiB, 32_KiB, TargetOptions{.access = Access::direct_n1});
  const JobResult result = run_job(rig, 4, spec);
  EXPECT_GT(result.write.io_s, 0);
  EXPECT_GT(result.read.io_s, 0);
  // The shared-file ping-pong really happened.
  EXPECT_GT(rig.pfs().stats().lock_transfers, 0u);
}

TEST(Harness, NnModesCompleteForBothTargets) {
  for (const Access access : {Access::plfs_nn, Access::direct_nn}) {
    testbed::Rig rig(small_rig());
    JobSpec spec;
    spec.file = "nn";
    spec.ops = segmented_ops(128_KiB, 32_KiB);
    spec.target.access = access;
    const JobResult result = run_job(rig, 4, spec);
    EXPECT_GT(result.write.io_s, 0) << access_name(access);
    EXPECT_GT(result.read.total_s(), 0) << access_name(access);
  }
}

TEST(Harness, PlfsBeatsDirectOnStridedN1Writes) {
  // The paper's core result at miniature scale.
  testbed::Rig rig_plfs(small_rig());
  testbed::Rig rig_direct(small_rig());
  const JobSpec plfs_spec = mpiio_test(512_KiB, 32_KiB, {.access = Access::plfs_n1});
  const JobSpec direct_spec = mpiio_test(512_KiB, 32_KiB, {.access = Access::direct_n1});
  const double plfs_io = run_job(rig_plfs, 16, plfs_spec).write.io_s;
  const double direct_io = run_job(rig_direct, 16, direct_spec).write.io_s;
  EXPECT_LT(plfs_io * 2, direct_io);
}

TEST(Harness, ReadCanUseDifferentProcessCount) {
  testbed::Rig rig(small_rig());
  JobSpec spec;
  spec.file = "restart";
  spec.ops = strided_ops(128_KiB, 32_KiB);
  spec.target.access = Access::plfs_n1;
  spec.read_nprocs = 8;
  // Read pattern must be defined for 8 readers over the 4-writer file: the
  // strided generator tiles by reader count, so give readers half as much.
  spec.read_ops = strided_ops(64_KiB, 32_KiB);
  const JobResult result = run_job(rig, 4, spec);
  EXPECT_EQ(result.read.bytes, 8u * 64_KiB);
  EXPECT_GT(result.read.io_s, 0);
}

TEST(Harness, DropCachesMakesReadsSlower) {
  auto run_with = [&](bool drop) {
    testbed::Rig rig(small_rig());
    JobSpec spec = mpiio_test(512_KiB, 64_KiB, {.access = Access::plfs_n1});
    spec.drop_caches_before_read = drop;
    return run_job(rig, 8, spec).read.io_s;
  };
  EXPECT_GT(run_with(true), run_with(false) * 1.5);
}

TEST(Kernels, PixieRoundTripsThroughTinyNc) {
  testbed::Rig rig(small_rig());
  const JobSpec spec = pixie3d(8, 512_KiB, 4, {.access = Access::plfs_n1});
  const JobResult result = run_job(rig, 8, spec);
  EXPECT_GT(result.write.io_s, 0);
  EXPECT_GT(result.read.io_s, 0);
  EXPECT_GT(result.write.bytes, 8u * 512_KiB);  // includes the header
}

TEST(Kernels, AramcoRoundTripsThroughTinyHdf) {
  testbed::Rig rig(small_rig());
  const JobSpec spec = aramco(4, 2_MiB, 256_KiB, {.access = Access::plfs_n1});
  const JobResult result = run_job(rig, 4, spec);
  EXPECT_GT(result.write.io_s, 0);
  EXPECT_GT(result.read.io_s, 0);
}

TEST(Kernels, AramcoIsStrongScaling) {
  // Same dataset at different process counts: total bytes identical.
  const JobSpec a = aramco(4, 4_MiB, 256_KiB, {.access = Access::plfs_n1});
  const JobSpec b = aramco(16, 4_MiB, 256_KiB, {.access = Access::plfs_n1});
  EXPECT_EQ(a.bytes_override, b.bytes_override);
}

TEST(Kernels, MadbenchAndLanl1Complete) {
  testbed::Rig rig(small_rig());
  const JobResult mad = run_job(rig, 4, madbench(256_KiB, 2, {.access = Access::plfs_n1}));
  EXPECT_GT(mad.read.io_s, 0);
  testbed::Rig rig2(small_rig());
  const JobResult l1 = run_job(rig2, 4, lanl1(1000000, {.access = Access::plfs_n1}));
  EXPECT_EQ(l1.write.bytes, 4u * 1000000);
  EXPECT_GT(l1.read.io_s, 0);
}

TEST(Kernels, Lanl3UsesCollectiveBufferingAndVerifies) {
  testbed::Rig rig(small_rig());
  const JobSpec spec = lanl3(8, 1_MiB, {.access = Access::plfs_n1});
  const JobResult result = run_job(rig, 8, spec);
  EXPECT_EQ(result.write.bytes, 1_MiB);
  EXPECT_GT(result.read.io_s, 0);
  // With cb, only aggregators wrote: the shared PLFS container must have at
  // most #aggregator data logs rather than 8.
  // (8 ranks on 8-node rig: block placement puts 16 per node -> 1 agg.)
}

TEST(Kernels, Lanl3OnDirectTargetAlsoVerifies) {
  testbed::Rig rig(small_rig());
  const JobSpec spec = lanl3(4, 512_KiB, {.access = Access::direct_n1});
  const JobResult result = run_job(rig, 4, spec);
  EXPECT_GT(result.read.io_s, 0);
}

TEST(MetadataStorm, NnPlfsAndDirectComplete) {
  testbed::Rig rig(small_rig(4));
  MetaSpec spec;
  spec.files_per_proc = 4;
  spec.use_plfs = true;
  const MetaResult plfs = run_metadata_storm(rig, 8, spec);
  EXPECT_GT(plfs.open_s, 0);
  EXPECT_GT(plfs.close_s, 0);
  testbed::Rig rig2(small_rig(4));
  spec.use_plfs = false;
  const MetaResult direct = run_metadata_storm(rig2, 8, spec);
  EXPECT_GT(direct.open_s, 0);
}

TEST(MetadataStorm, MoreMdsReducesPlfsOpenTime) {
  auto open_time = [](std::size_t mds) {
    testbed::Rig rig(small_rig(mds));
    MetaSpec spec;
    spec.files_per_proc = 8;
    spec.use_plfs = true;
    return run_metadata_storm(rig, 16, spec).open_s;
  };
  const double one = open_time(1);
  const double eight = open_time(8);
  EXPECT_GT(one, eight * 2);
}

TEST(MetadataStorm, N1SharedFileStormCompletes) {
  testbed::Rig rig(small_rig(2));
  MetaSpec spec;
  spec.shared_file = true;
  spec.use_plfs = true;
  const MetaResult plfs = run_metadata_storm(rig, 16, spec);
  EXPECT_GT(plfs.open_s, 0);
  testbed::Rig rig2(small_rig(2));
  spec.use_plfs = false;
  const MetaResult direct = run_metadata_storm(rig2, 16, spec);
  EXPECT_GT(direct.open_s, 0);
  // Direct N-1 open is one create + N-1 opens: far lighter than building
  // PLFS containers.
  EXPECT_GT(plfs.open_s, direct.open_s);
}

}  // namespace
}  // namespace tio::workloads
