// FaultyFs: a deterministic fault-injecting decorator over any FsClient.
//
// Wraps a backend and injects faults according to a declarative, seeded
// FaultPlan: per-op-class transient errors (EIO/EBUSY/ESTALE), fixed
// virtual-time latency spikes, per-namespace outage windows (a stalled MDS:
// every op under a path prefix fails with EBUSY inside the window), torn
// writes (a prefix of the data reaches the backend and the short count is
// reported), and crash-on-close of flattened global index files (the tail
// of the file is destroyed and the close reports EIO — the torn-index case
// the CRC trailer exists to catch).
//
// Determinism: all stochastic draws flow through one Rng seeded from the
// plan, consumed in engine event order, and every latency is virtual time —
// so a (seed, workload) pair produces a bit-identical fault schedule,
// retry/degrade counter values, and file contents on every run.
//
// Injection happens *before* the backend sees the request (the RPC "failed
// in flight"), so a failed op has no backend effect and is always safe to
// retry. The two deliberate exceptions are torn writes (partial effect,
// reported honestly as a short write) and crash-on-close (full effect
// destroyed after the fact, caught by the integrity trailer).
//
// Everything observable is surfaced through plfs.fault.* counters.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "pfs/fs_client.h"

namespace tio::pfs {

// Operation classes a FaultSpec can target. `meta` covers the pure
// metadata ops (mkdir/rmdir/unlink/rename/stat/readdir).
enum class OpClass : std::size_t { open = 0, close, read, write, meta };
inline constexpr std::size_t kNumOpClasses = 5;
std::string_view op_class_name(OpClass c);

// Per-op-class fault probabilities. All default to zero (no faults).
struct FaultSpec {
  double p_io_error = 0.0;
  double p_busy = 0.0;
  double p_stale = 0.0;
  double p_spike = 0.0;             // latency spike, op still succeeds
  Duration spike = Duration::ms(50);
  bool any() const { return p_io_error > 0 || p_busy > 0 || p_stale > 0 || p_spike > 0; }
};

// A window of virtual time during which every op under `path_prefix` fails
// with EBUSY (a stalled metadata server / unreachable realm). An empty
// prefix matches every path.
struct OutageWindow {
  std::string path_prefix;
  TimePoint begin;
  TimePoint end;
};

// A server-targeted outage: crash replica `replica` of metadata group
// `mds` at `begin` and restart it at `end`. replica == -1 resolves to
// whichever replica leads the group when the window opens, so chaos plans
// can kill exactly the leader. In an unreplicated deployment
// (mds_replication=none) the testbed lowers each server outage to a
// path-prefix outage of the group's namespace ("/vol<mds>"), so one plan
// drives the Raft-vs-stale-marker comparison.
struct ServerOutage {
  int mds = 0;
  int replica = -1;  // -1 = the leader at window start
  TimePoint begin;
  TimePoint end;
};

// A network partition window: the leader of group `mds` at `begin` is
// isolated from its peers and from clients until `end`. Lowered to a
// path-prefix outage in unreplicated mode, like ServerOutage.
struct PartitionWindow {
  int mds = 0;
  TimePoint begin;
  TimePoint end;
};

struct FaultPlan {
  std::uint64_t seed = 0x5eedfa17;
  FaultSpec ops[kNumOpClasses];
  std::vector<OutageWindow> outages;
  std::vector<ServerOutage> server_outages;
  std::vector<PartitionWindow> partitions;
  // Probability that a write is torn: only k < n bytes reach the backend
  // and k is returned (the caller must detect and resume).
  double p_torn_write = 0.0;
  // The first close of each global index file destroys the trailing bytes
  // of the file and reports EIO — a crash during the close-time flush.
  bool crash_close_index = false;

  bool enabled() const;
  FaultSpec& spec(OpClass c) { return ops[static_cast<std::size_t>(c)]; }
  const FaultSpec& spec(OpClass c) const { return ops[static_cast<std::size_t>(c)]; }

  // Parses a plan spec: either a preset name ("none", "transient1",
  // "stress", "failover", "partition") or a comma-separated key=value
  // list. Keys:
  //   seed=N                     jitter/draw seed
  //   io=P busy=P stale=P        transient probability, all op classes
  //   spike=P spike_ms=N         latency spike probability and length
  //   <class>.io=P (etc.)        per-class override; class in
  //                              {open,close,read,write,meta}
  //   torn=P                     torn-write probability
  //   crash_close_index=0|1      tear global.index at first close
  //   outage=PREFIX@START-END    outage window, virtual ms (repeatable)
  //   server_outage=G:R@START-END
  //                              crash replica R (an index, or "leader")
  //                              of metadata group G for the window,
  //                              virtual ms (repeatable)
  //   partition=G@START-END      isolate group G's leader for the window,
  //                              virtual ms (repeatable)
  // Presets may be extended: "stress,seed=9" starts from the preset.
  static Result<FaultPlan> parse(std::string_view spec);
  std::string to_string() const;

  // Rewrites server-targeted faults for an unreplicated deployment: each
  // server outage / partition of group G becomes a path-prefix outage of
  // "/volG" (the single server *is* the namespace), so the same plan spec
  // drives both --mds_replication modes.
  FaultPlan lowered_for_unreplicated() const;
};

class FaultyFs : public FsClient {
 public:
  FaultyFs(FsClient& base, FaultPlan plan)
      : base_(base), plan_(std::move(plan)), rng_(plan_.seed) {}

  sim::Task<Result<FileId>> open(IoCtx ctx, std::string path, OpenFlags flags) override;
  sim::Task<Status> close(IoCtx ctx, FileId file) override;
  sim::Task<Result<std::uint64_t>> write(IoCtx ctx, FileId file, std::uint64_t offset,
                                         DataView data) override;
  sim::Task<Result<FragmentList>> read(IoCtx ctx, FileId file, std::uint64_t offset,
                                       std::uint64_t len) override;
  sim::Task<Status> mkdir(IoCtx ctx, std::string path) override;
  sim::Task<Status> rmdir(IoCtx ctx, std::string path) override;
  sim::Task<Status> unlink(IoCtx ctx, std::string path) override;
  sim::Task<Status> rename(IoCtx ctx, std::string from, std::string to) override;
  sim::Task<Result<StatInfo>> stat(IoCtx ctx, std::string path) override;
  sim::Task<Result<std::vector<DirEntry>>> readdir(IoCtx ctx, std::string path) override;
  sim::Engine& engine() override { return base_.engine(); }

  FsClient& base() { return base_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  struct Tracked {
    std::string path;
    std::uint64_t write_high = 0;  // one past the highest byte written
  };

  // Draws this op's fate. Returns ok, or the injected error; sleeps the
  // spike first so even failing ops cost time.
  sim::Task<Status> inject(OpClass c, const std::string& path);
  bool in_outage(const std::string& path) const;

  FsClient& base_;
  FaultPlan plan_;
  Rng rng_;
  // Open files whose writes we must observe (torn-write bookkeeping and
  // crash-on-close targeting). Only maintained when the plan needs it.
  std::unordered_map<FileId, Tracked> tracked_;
  // global.index paths already crash-closed once (the fault is one-shot
  // per path, so a rewritten index closes cleanly).
  std::vector<std::string> crashed_;
};

}  // namespace tio::pfs
