// Leased client-side metadata cache.
//
// Serves repeat lookups (dentry/attr hits) locally, without an MDS round
// trip, for up to one lease TTL of virtual time. Consistency is kept by two
// mechanisms layered on the simulator's shared-truth namespace:
//
//   * invalidation-on-mutation: every applied metadata mutation (create,
//     mkdir, unlink, rename) drops the path's cached entries on EVERY
//     node before the mutator is acked, so a lease never covers a path
//     that changed underneath it;
//   * epoch revocation: each metadata group carries an epoch that the
//     owning SimPfs bumps on crash/restart/partition events. A cached
//     entry remembers the epoch it was issued under and is discarded on
//     mismatch — the conservative "revoke everything on failover" rule,
//     which is what makes cached reads safe across Raft leader changes
//     without a distributed lease-recall protocol.
//
// Entries also expire at insert_time + lease (virtual time), bounding how
// long a quiescent client may go without revalidating.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/units.h"
#include "pfs/types.h"
#include "sim/engine.h"

namespace tio::pfs {

class MetaCache {
 public:
  struct Entry {
    ObjectId oid = kNoObject;
    bool is_dir = false;
    TimePoint expires;
    std::uint64_t epoch = 0;
  };

  MetaCache(sim::Engine& engine, Duration lease) : engine_(engine), lease_(lease) {}

  bool enabled() const { return lease_ > Duration::zero(); }

  // Valid (unexpired, current-epoch) entry for (node, path), or nullptr.
  // Expired and revoked entries are erased on the way out.
  const Entry* lookup(std::size_t node, const std::string& path, std::uint64_t group_epoch);

  // Installs/refreshes the lease for (node, path) under `group_epoch`.
  void insert(std::size_t node, const std::string& path, ObjectId oid, bool is_dir,
              std::uint64_t group_epoch);

  // Mutation invalidation: drops the path on every node.
  void invalidate(const std::string& path);

  // Tests/introspection.
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  sim::Engine& engine_;
  Duration lease_;
  // path -> per-node leases. Keyed by path first so a mutation invalidates
  // all nodes with one erase.
  std::unordered_map<std::string, std::unordered_map<std::size_t, Entry>> entries_;
};

}  // namespace tio::pfs
