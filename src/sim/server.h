// FCFS queueing server: the model for metadata servers, disk controllers,
// and any resource with a bounded number of service slots.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tio::sim {

class FcfsServer {
 public:
  FcfsServer(Engine& engine, std::size_t concurrency, std::string name = "server")
      : engine_(engine), sem_(engine, concurrency), name_(std::move(name)) {}

  // Queue for a slot, hold it for `service`, release. The queueing delay
  // plus service time is charged to the awaiting process.
  Task<void> serve(Duration service) {
    const TimePoint arrival = engine_.now();
    co_await sem_.acquire();
    SemGuard guard(sem_);
    stats_.queue_wait += engine_.now() - arrival;
    stats_.busy += service;
    ++stats_.ops;
    co_await engine_.sleep(service);
  }

  struct Stats {
    std::uint64_t ops = 0;
    Duration busy = Duration::zero();
    Duration queue_wait = Duration::zero();
  };
  const Stats& stats() const { return stats_; }
  std::size_t queue_length() const { return sem_.queue_length(); }
  const std::string& name() const { return name_; }

 private:
  Engine& engine_;
  Semaphore sem_;
  std::string name_;
  Stats stats_;
};

}  // namespace tio::sim
