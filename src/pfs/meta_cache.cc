#include "pfs/meta_cache.h"

#include "common/stats.h"

namespace tio::pfs {

namespace {

struct MetaCacheCounters {
  Counter& hits = counter("pfs.meta_cache.hits");
  Counter& misses = counter("pfs.meta_cache.misses");
  Counter& inserts = counter("pfs.meta_cache.inserts");
  Counter& invalidations = counter("pfs.meta_cache.invalidations");
  Counter& expired = counter("pfs.meta_cache.expired");
  Counter& epoch_revoked = counter("pfs.meta_cache.epoch_revoked");
};

MetaCacheCounters& mc() {
  static MetaCacheCounters counters;
  return counters;
}

}  // namespace

const MetaCache::Entry* MetaCache::lookup(std::size_t node, const std::string& path,
                                          std::uint64_t group_epoch) {
  const auto it = entries_.find(path);
  if (it == entries_.end()) {
    mc().misses.add();
    return nullptr;
  }
  const auto nit = it->second.find(node);
  if (nit == it->second.end()) {
    mc().misses.add();
    return nullptr;
  }
  Entry& e = nit->second;
  if (e.epoch != group_epoch) {
    // The serving group crashed/restarted/partitioned since this lease was
    // issued: wholesale revocation, the entry is untrustworthy.
    mc().epoch_revoked.add();
    it->second.erase(nit);
    if (it->second.empty()) entries_.erase(it);
    mc().misses.add();
    return nullptr;
  }
  if (engine_.now() >= e.expires) {
    mc().expired.add();
    it->second.erase(nit);
    if (it->second.empty()) entries_.erase(it);
    mc().misses.add();
    return nullptr;
  }
  mc().hits.add();
  return &e;
}

void MetaCache::insert(std::size_t node, const std::string& path, ObjectId oid, bool is_dir,
                       std::uint64_t group_epoch) {
  if (!enabled()) return;
  mc().inserts.add();
  entries_[path][node] = Entry{oid, is_dir, engine_.now() + lease_, group_epoch};
}

void MetaCache::invalidate(const std::string& path) {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return;
  mc().invalidations.add(it->second.size());
  entries_.erase(it);
}

}  // namespace tio::pfs
