// Small string and path helpers shared by the namespace layers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tio {

std::vector<std::string_view> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// POSIX-style path helpers operating on '/'-separated logical paths.
std::string path_join(std::string_view a, std::string_view b);
std::string_view path_dirname(std::string_view p);   // "/a/b/c" -> "/a/b", "/a" -> "/"
std::string_view path_basename(std::string_view p);  // "/a/b/c" -> "c"
// Normalizes to an absolute path with no trailing slash (except root), no
// empty components. Does not resolve "." / "..".
std::string path_normalize(std::string_view p);
// Components of a normalized absolute path ("/a/b" -> {"a", "b"}).
std::vector<std::string_view> path_components(std::string_view p);

std::string format_bytes(std::uint64_t bytes);           // "50.0 MiB"
std::string format_si(double v, std::string_view unit);  // "1.25 GB/s"
std::string str_printf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tio
