file(REMOVE_RECURSE
  "libtio_plfs.a"
)
