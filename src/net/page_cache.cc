#include <algorithm>
#include "net/page_cache.h"

#include <stdexcept>

#include "common/rng.h"

namespace tio::net {

std::size_t PageCache::KeyHash::operator()(const Key& k) const {
  return static_cast<std::size_t>(hash_combine(k.object, k.block));
}

PageCache::PageCache(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
    : capacity_(capacity_bytes), block_(block_bytes) {
  if (block_ == 0) throw std::invalid_argument("PageCache: zero block size");
  max_blocks_ = capacity_ / block_;
}

void PageCache::touch(std::uint64_t object, std::uint64_t block) {
  const Key key{object, block};
  const auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (max_blocks_ == 0) return;
  while (map_.size() >= max_blocks_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  map_[key] = lru_.begin();
}

void PageCache::fill(std::uint64_t object, std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = offset / block_;
  const std::uint64_t last = (offset + len - 1) / block_;
  for (std::uint64_t b = first; b <= last; ++b) touch(object, b);
}

std::uint64_t PageCache::lookup(std::uint64_t object, std::uint64_t offset, std::uint64_t len,
                                std::vector<ByteRange>* misses) {
  if (len == 0) return 0;
  std::uint64_t hit = 0;
  const std::uint64_t first = offset / block_;
  const std::uint64_t last = (offset + len - 1) / block_;
  for (std::uint64_t b = first; b <= last; ++b) {
    const auto it = map_.find(Key{object, b});
    const std::uint64_t block_start = b * block_;
    const std::uint64_t lo = std::max(offset, block_start);
    const std::uint64_t hi = std::min(offset + len, block_start + block_);
    if (it != map_.end()) {
      hit += hi - lo;
      lru_.splice(lru_.begin(), lru_, it->second);
      stats_.hit_bytes += hi - lo;
    } else {
      stats_.miss_bytes += hi - lo;
      if (misses != nullptr) {
        if (!misses->empty() && misses->back().offset + misses->back().len == lo) {
          misses->back().len += hi - lo;  // coalesce adjacent missed blocks
        } else {
          misses->push_back(ByteRange{lo, hi - lo});
        }
      }
    }
  }
  return hit;
}

void PageCache::invalidate_object(std::uint64_t object) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->object == object) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace tio::net
