#include "plfs/mpiio.h"

#include <cmath>

#include "common/stats.h"
#include "common/trace.h"
#include "plfs/pattern.h"

namespace tio::plfs {

namespace {

// Open-phase spans, tiling every rank's aggregation so the Fig. 4 breakdown
// (index read / merge / exchange / broadcast) can be recovered from a trace
// by summing spans per rank. A phase may open more than once on one rank
// (e.g. "exchange" resumes after the leader merge).
const trace::SpanSite& open_read_site() {
  static const trace::SpanSite site("plfs.open", "plfs.open.index_read");
  return site;
}
const trace::SpanSite& open_merge_site() {
  static const trace::SpanSite site("plfs.open", "plfs.open.merge");
  return site;
}
const trace::SpanSite& open_exchange_site() {
  static const trace::SpanSite site("plfs.open", "plfs.open.exchange");
  return site;
}
const trace::SpanSite& open_broadcast_site() {
  static const trace::SpanSite site("plfs.open", "plfs.open.broadcast");
  return site;
}

// Group size for Parallel Index Read: configured, else ~sqrt(n) so the
// leader tier and the member tier are balanced.
std::size_t group_size_for(const PlfsMount& mount, int nprocs) {
  if (mount.parallel_read_group > 0) return mount.parallel_read_group;
  const auto g = static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(nprocs))));
  return std::max<std::size_t>(1, g);
}

// Sentinel broadcast by rank 0 when the flattened index is unusable and
// every rank must degrade to Parallel Index Read instead.
constexpr std::uint64_t kFlattenUnusable = ~std::uint64_t{0};

sim::Task<Result<IndexPtr>> aggregate_parallel(Plfs& plfs, mpi::Comm& comm,
                                               const std::string& logical);

sim::Task<Result<IndexPtr>> aggregate_flatten(Plfs& plfs, mpi::Comm& comm,
                                              const std::string& logical) {
  const pfs::IoCtx ctx{comm.my_node(), comm.global_rank()};
  // Root reads the flattened index; everyone receives it by broadcast. A
  // missing, truncated, or corrupt flattened index (integrity trailer
  // verification failed, or the file never survived its close) is not
  // fatal: the per-writer index logs are still authoritative, so the
  // collective degrades to Parallel Index Read.
  IndexPtr index;
  std::uint64_t bytes = 0;
  if (comm.rank() == 0) {
    auto read = co_await plfs.read_global_index(ctx, logical);
    if (read.ok()) {
      index = std::move(read.value());
      bytes = index->serialized_bytes(plfs.mount().index_wire);
    } else {
      static Counter& index_fallback = counter("plfs.degrade.index_fallback");
      index_fallback.add(1);
      bytes = kFlattenUnusable;
    }
  }
  // Non-root ranks spend the whole open inside this broadcast (waiting for
  // the root's read is part of receiving the index).
  trace::Span bcast_span(comm.engine(), open_broadcast_site(), ctx.rank);
  bytes = co_await comm.bcast(0, bytes, 8);
  if (bytes == kFlattenUnusable) {
    bcast_span.end();
    co_return co_await aggregate_parallel(plfs, comm, logical);
  }
  index = co_await comm.bcast(0, std::move(index), bytes);
  co_return index;
}

sim::Task<Result<IndexPtr>> aggregate_parallel(Plfs& plfs, mpi::Comm& comm,
                                               const std::string& logical) {
  const pfs::IoCtx ctx{comm.my_node(), comm.global_rank()};
  const int n = comm.size();

  // 1. One process enumerates the index logs and broadcasts the work list.
  // (The byte count is broadcast first so every relaying rank charges the
  // correct transfer volume.) Discovery counts as "index read" in the
  // phase breakdown: it is the metadata half of reading the index.
  trace::Span read_span(comm.engine(), open_read_site(), ctx.rank);
  std::vector<Plfs::IndexLogRef> logs;
  if (comm.rank() == 0) {
    auto listed = co_await plfs.list_index_logs(ctx, logical);
    if (!listed.ok()) co_return listed.status();
    logs = std::move(listed.value());
  }
  const std::uint64_t list_bytes =
      co_await comm.bcast(0, static_cast<std::uint64_t>(64 * logs.size()), 8);
  auto shared_logs = co_await comm.bcast(
      0, std::make_shared<const std::vector<Plfs::IndexLogRef>>(std::move(logs)), list_bytes);

  // 2. Each rank reads its disjoint share of the index logs and k-way
  // merges them (each log is a timestamp-sorted run) into one sorted run.
  IndexBuilder my_runs(plfs.mount().index_backend);
  for (std::size_t i = comm.rank(); i < shared_logs->size(); i += n) {
    auto entries = co_await plfs.read_index_log(ctx, logical, (*shared_logs)[i].path);
    if (!entries.ok()) co_return entries.status();
    my_runs.add_run(std::move(entries.value()));
  }
  std::vector<IndexEntry> mine = my_runs.merged_run();
  read_span.end();

  // 3. Two-level aggregation: members -> group leader, leaders <-> leaders.
  trace::Span exchange_span(comm.engine(), open_exchange_site(), ctx.rank);
  const auto gsize = static_cast<int>(group_size_for(plfs.mount(), n));
  // Default: contiguous rank blocks of gsize. Rack-aware: one group per
  // rack, so member gathers never leave a ToR and (with block placement)
  // exactly one leader lands in each occupied rack.
  const int group_color = plfs.mount().rack_aware_groups
                              ? static_cast<int>(comm.rack_of_rank(comm.rank()))
                              : comm.rank() / gsize;
  mpi::Comm group = co_await comm.split(group_color, comm.rank());
  const bool leader = group.rank() == 0;
  mpi::Comm leaders = co_await comm.split(leader ? 0 : 1, comm.rank());

  // Runs travel pattern-compressed under wire v2: the transfer volume every
  // collective below charges is the encoded size, not count * 40.
  const WireFormat wire = plfs.mount().index_wire;
  const std::uint64_t my_bytes = encoded_size(mine, wire);
  auto member_runs = co_await group.gather(0, std::move(mine), my_bytes);

  IndexPtr index;
  if (leader) {
    // Merge the group's member runs into one sorted run; sorted runs (not
    // raw pools) are what leaders exchange.
    IndexBuilder group_builder(plfs.mount().index_backend);
    for (auto& run : member_runs) group_builder.add_entries(std::move(run));
    auto group_run =
        std::make_shared<const std::vector<IndexEntry>>(group_builder.merged_run());
    const std::uint64_t run_bytes = encoded_size(*group_run, wire);
    // Runs travel as shared structure: every leader logically holds the
    // full entry set (and is charged transfer + merge CPU for it), but the
    // simulator keeps one copy — 65,536-rank runs would otherwise
    // materialize hundreds of copies of a million-entry run.
    auto all_runs = co_await leaders.allgather(std::move(group_run), run_bytes);
    std::size_t total = 0;
    for (const auto& r : all_runs) total += r->size();
    // The merge CPU sits between two exchange collectives: close the
    // exchange span across it so the phases stay disjoint.
    exchange_span.end();
    {
      trace::Span merge_span(comm.engine(), open_merge_site(), ctx.rank);
      co_await comm.engine().sleep(plfs.mount().index_cpu_per_entry *
                                   static_cast<std::int64_t>(total));
    }
    exchange_span = trace::Span(comm.engine(), open_exchange_site(), ctx.rank);
    if (leaders.rank() == 0) {
      IndexBuilder global_builder(plfs.mount().index_backend);
      for (const auto& r : all_runs) global_builder.add_run(r);
      index = global_builder.build();
    }
    // Zero-byte structure share among leaders (each already paid the merge).
    index = co_await leaders.bcast(0, std::move(index), 0);
  }
  exchange_span.end();

  // 4. Leaders broadcast the merged global index within their group.
  trace::Span bcast_span(comm.engine(), open_broadcast_site(), ctx.rank);
  const std::uint64_t idx_bytes = leader ? index->serialized_bytes(wire) : 0;
  try {
    const std::uint64_t bytes = co_await group.bcast(0, idx_bytes, 8);
    index = co_await group.bcast(0, std::move(index), bytes);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " [step4 n=" + std::to_string(n) +
                             " gsize=" + std::to_string(gsize) + " grank=" +
                             std::to_string(group.rank()) + " gsizeactual=" +
                             std::to_string(group.size()) + " gctx=" +
                             std::to_string(group.context()) + " lctx=" +
                             std::to_string(leaders.context()) + "]");
  }
  co_return index;
}

}  // namespace

sim::Task<Result<IndexPtr>> aggregate_index(Plfs& plfs, mpi::Comm& comm,
                                            const std::string& logical, ReadStrategy strategy) {
  const pfs::IoCtx ctx{comm.my_node(), comm.global_rank()};
  switch (strategy) {
    case ReadStrategy::original: {
      // Uncoordinated: every rank aggregates on its own.
      auto idx = co_await plfs.build_index_serial(ctx, logical);
      if (!idx.ok()) co_return idx.status();
      co_return std::move(idx.value());
    }
    case ReadStrategy::index_flatten:
      co_return co_await aggregate_flatten(plfs, comm, logical);
    case ReadStrategy::parallel_read:
      co_return co_await aggregate_parallel(plfs, comm, logical);
  }
  co_return error(Errc::invalid, "unknown read strategy");
}

sim::Task<Result<std::unique_ptr<MpiFile>>> MpiFile::open_write(Plfs& plfs, mpi::Comm& comm,
                                                                std::string logical) {
  std::unique_ptr<MpiFile> file(new MpiFile(plfs, comm, logical));
  auto wh = co_await plfs.open_write(file->ctx(), std::move(logical), comm.rank());
  if (!wh.ok()) co_return wh.status();
  file->write_ = std::move(wh.value());
  co_await comm.barrier();  // collective open completes together
  co_return file;
}

sim::Task<Status> MpiFile::write(std::uint64_t offset, DataView data) {
  if (!write_) co_return error(Errc::bad_handle, "not open for write");
  co_return co_await write_->write(offset, std::move(data));
}

sim::Task<Status> MpiFile::close_write(bool flatten) {
  if (!write_) co_return error(Errc::bad_handle, "not open for write");
  // Index Flatten only proceeds when every writer buffered at most the
  // threshold's worth of entries (the paper's condition).
  if (flatten) {
    static const trace::SpanSite kGatherSite("plfs.close", "plfs.close.flatten_gather");
    static const trace::SpanSite kWriteSite("plfs.close", "plfs.close.flatten_write");
    trace::Span gather_span(comm_->engine(), kGatherSite, comm_->global_rank());
    const std::uint64_t my_entries = write_->entries().size();
    const std::uint64_t max_entries = co_await comm_->allreduce(
        my_entries, 8, [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
    if (max_entries <= plfs_->mount().flatten_threshold) {
      const std::uint64_t bytes = encoded_size(write_->entries(), plfs_->mount().index_wire);
      auto pools = co_await comm_->gather(0, write_->entries(), bytes);
      gather_span.end();
      if (comm_->rank() == 0) {
        trace::Span write_span(comm_->engine(), kWriteSite, comm_->global_rank());
        // Each writer's entry pool is already a timestamp-sorted run.
        IndexBuilder builder(plfs_->mount().index_backend);
        for (auto& p : pools) builder.add_entries(std::move(p));
        co_await comm_->engine().sleep(plfs_->mount().index_cpu_per_entry *
                                       static_cast<std::int64_t>(builder.total_entries()));
        const IndexPtr global = builder.build();
        const Status wrote = co_await plfs_->write_global_index(ctx(), logical_, *global);
        if (!wrote.ok()) {
          // Flatten is an optimization, not the source of truth: the
          // per-writer logs are already durable, so abandon the flattened
          // copy (best-effort removal of any partial file — readers that
          // still find a torn one are caught by the integrity trailer) and
          // let the close finish clean.
          static Counter& flatten_abort = counter("plfs.degrade.flatten_abort");
          flatten_abort.add(1);
          const Status removed = co_await plfs_->backend_fs().unlink(
              ctx(), plfs_->layout(logical_).global_index_path());
          (void)removed;
        }
      }
    }
  }
  TIO_CO_RETURN_IF_ERROR(co_await write_->close());
  write_.reset();
  co_await comm_->barrier();
  co_return Status::Ok();
}

sim::Task<Result<std::unique_ptr<MpiFile>>> MpiFile::open_read(Plfs& plfs, mpi::Comm& comm,
                                                               std::string logical,
                                                               ReadStrategy strategy) {
  std::unique_ptr<MpiFile> file(new MpiFile(plfs, comm, logical));
  auto index = co_await aggregate_index(plfs, comm, file->logical_, strategy);
  if (!index.ok()) co_return index.status();
  auto rh = co_await plfs.open_read(file->ctx(), file->logical_, std::move(index.value()));
  if (!rh.ok()) co_return rh.status();
  file->read_ = std::move(rh.value());
  co_await comm.barrier();
  co_return file;
}

sim::Task<Result<FragmentList>> MpiFile::read(std::uint64_t offset, std::uint64_t len) {
  if (!read_) co_return error(Errc::bad_handle, "not open for read");
  co_return co_await read_->read(offset, len);
}

sim::Task<Status> MpiFile::close_read() {
  if (!read_) co_return error(Errc::bad_handle, "not open for read");
  TIO_CO_RETURN_IF_ERROR(co_await read_->close());
  read_.reset();
  co_await comm_->barrier();
  co_return Status::Ok();
}

}  // namespace tio::plfs
