// The asynchronous file-system client interface every backend implements.
//
// PLFS is written entirely against this interface, so the identical
// middleware runs over the simulated parallel file system (costs charged in
// virtual time), over the in-memory test file system (zero cost), and over
// the host file system (real POSIX I/O). Paths are absolute '/'-separated
// logical paths within the backend.
#pragma once

#include <string>
#include <vector>

#include "common/dataview.h"
#include "common/status.h"
#include "pfs/types.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace tio::pfs {

class FsClient {
 public:
  virtual ~FsClient() = default;

  virtual sim::Task<Result<FileId>> open(IoCtx ctx, std::string path, OpenFlags flags) = 0;
  virtual sim::Task<Status> close(IoCtx ctx, FileId file) = 0;
  // Returns bytes written (always all of `data` on success).
  virtual sim::Task<Result<std::uint64_t>> write(IoCtx ctx, FileId file, std::uint64_t offset,
                                                 DataView data) = 0;
  // Returns up to `len` bytes; short reads only at EOF (POSIX semantics).
  virtual sim::Task<Result<FragmentList>> read(IoCtx ctx, FileId file, std::uint64_t offset,
                                               std::uint64_t len) = 0;

  virtual sim::Task<Status> mkdir(IoCtx ctx, std::string path) = 0;
  virtual sim::Task<Status> rmdir(IoCtx ctx, std::string path) = 0;
  virtual sim::Task<Status> unlink(IoCtx ctx, std::string path) = 0;
  virtual sim::Task<Status> rename(IoCtx ctx, std::string from, std::string to) = 0;
  virtual sim::Task<Result<StatInfo>> stat(IoCtx ctx, std::string path) = 0;
  virtual sim::Task<Result<std::vector<DirEntry>>> readdir(IoCtx ctx, std::string path) = 0;

  virtual sim::Engine& engine() = 0;
};

}  // namespace tio::pfs
