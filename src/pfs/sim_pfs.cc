#include "pfs/sim_pfs.h"

#include <algorithm>
#include <any>
#include <utility>

#include "common/stats.h"
#include "common/strutil.h"
#include "common/trace.h"
#include "pfs/faulty_fs.h"

namespace tio::pfs {

namespace {

struct BatchCounters {
  Counter& rpcs = counter("pfs.batch.rpcs");
  Counter& ops = counter("pfs.batch.ops");
  Counter& flush_full = counter("pfs.batch.flush_full");
  Counter& flush_linger = counter("pfs.batch.flush_linger");
  Counter& failures = counter("pfs.batch.failures");
  // Client->MDS round trips that carry mutations: the denominator of the
  // batching win (one per legacy dir_mutation/create RPC and raft submit,
  // one per flushed batch regardless of its size).
  Counter& mutation_round_trips = counter("pfs.meta.mutation_round_trips");
};

BatchCounters& bc() {
  static BatchCounters counters;
  return counters;
}

// Flush latency (first enqueue -> every waiter woken), feeding the
// pfs.batch.flush histogram alongside the raft/plfs span families.
const trace::SpanSite& batch_flush_site() {
  static trace::SpanSite site("pfs.batch", "pfs.batch.flush");
  return site;
}

}  // namespace

std::string_view mds_replication_name(MdsReplication m) {
  switch (m) {
    case MdsReplication::none: return "none";
    case MdsReplication::raft: return "raft";
  }
  return "?";
}

// The replicated state machine: MetaCommands applied to ns_ at commit.
// apply() runs exactly once per committed index group-wide (the Raft layer
// guarantees it), so the creates counter and object table mutations happen
// once no matter how many replicas or client retries were involved.
struct SimPfs::MetaSm : raft::StateMachine {
  explicit MetaSm(SimPfs& fs) : fs(fs) {}

  std::any apply(raft::Index, const std::any& cmd) override {
    if (!cmd.has_value()) return {};  // leader no-op barrier entry
    if (const auto* batch = std::any_cast<MetaBatch>(&cmd)) {
      // One committed entry, N mutations: the amortization the batch path
      // buys. Entries apply in submission order; each one is individually
      // idempotent, so re-applying a duplicated batch is harmless.
      applied_ops += batch->cmds.size();
      MetaBatchApply out;
      out.results.reserve(batch->cmds.size());
      for (const MetaCommand& mc : batch->cmds) out.results.push_back(fs.apply_meta(mc));
      return out;
    }
    const auto& mc = std::any_cast<const MetaCommand&>(cmd);
    ++applied_ops;
    return fs.apply_meta(mc);
  }

  Duration apply_service(const std::any& cmd) const override {
    if (!cmd.has_value()) return Duration::zero();
    if (const auto* batch = std::any_cast<MetaBatch>(&cmd)) {
      // The replication round is amortized; the per-entry MDS service time
      // is not — every insert still pays the directory-degraded cost.
      Duration d = Duration::zero();
      for (const MetaCommand& mc : batch->cmds) d += fs.meta_service(mc);
      return d;
    }
    return fs.meta_service(std::any_cast<const MetaCommand&>(cmd));
  }

  std::uint64_t snapshot_bytes() const override { return 4096 + 128 * applied_ops; }

  SimPfs& fs;
  std::uint64_t applied_ops = 0;
};

MetaApply SimPfs::apply_meta(const MetaCommand& mc) {
  MetaApply out;
  switch (mc.kind) {
    case MetaCommand::Kind::create: {
      auto created = ns_.create_file(mc.path, mc.excl);
      if (!created.ok()) {
        out.status = created.status();
        break;
      }
      out.oid = created->oid;
      out.created = created->created;
      if (created->created) {
        ++stats_.creates;
        object(out.oid).mtime = engine().now();
      }
      break;
    }
    case MetaCommand::Kind::mkdir:
      out.status = ns_.mkdir(mc.path);
      break;
    case MetaCommand::Kind::rmdir:
      out.status = ns_.rmdir(mc.path);
      break;
    case MetaCommand::Kind::unlink: {
      auto removed = ns_.unlink(mc.path);
      if (!removed.ok()) {
        out.status = removed.status();
        break;
      }
      objects_.erase(removed.value());
      break;
    }
    case MetaCommand::Kind::rename:
      out.status = ns_.rename(mc.path, mc.path2);
      break;
  }
  // Invalidation-on-mutation: cached leases for the touched paths drop on
  // every node before the mutator is acked.
  if (meta_cache_) {
    meta_cache_->invalidate(mc.path);
    if (mc.kind == MetaCommand::Kind::rename) meta_cache_->invalidate(mc.path2);
  }
  return out;
}

Duration SimPfs::meta_service(const MetaCommand& mc) const {
  // Same serialized-insert degradation as the unreplicated dir_mutation
  // path: the log already serializes mutations, but each one still costs
  // directory-size-dependent MDS service time.
  const auto dir_cost = [&](const std::string& p) {
    const std::string parent(path_dirname(p));
    const std::uint64_t entries = ns_.dir_entry_count(parent);
    const double degrade = 1.0 + static_cast<double>(entries) /
                                     static_cast<double>(config_.dir_degrade_entries);
    return Duration::seconds(config_.dir_insert_time.to_seconds() * degrade);
  };
  switch (mc.kind) {
    case MetaCommand::Kind::create:
      return dir_cost(mc.path) + config_.mds_create_time;
    case MetaCommand::Kind::rename: {
      Duration d = dir_cost(mc.path);
      if (path_dirname(mc.path) != path_dirname(mc.path2)) {
        d = d + dir_cost(mc.path2);
      }
      return d;
    }
    default:
      return dir_cost(mc.path);
  }
}

SimPfs::SimPfs(net::Cluster& cluster, PfsConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  group_epochs_.assign(config_.num_mds, 0);
  forming_.assign(config_.num_mds, nullptr);
  if (config_.meta_lease > Duration::zero()) {
    meta_cache_ = std::make_unique<MetaCache>(engine(), config_.meta_lease);
  }
  for (std::size_t i = 0; i < config_.num_mds; ++i) {
    mds_.push_back(std::make_unique<sim::FcfsServer>(engine(), config_.mds_concurrency,
                                                     str_printf("mds-%zu", i)));
  }
  for (std::size_t i = 0; i < config_.num_osts; ++i) {
    osts_.push_back(std::make_unique<Ost>(engine(), config_, str_printf("ost-%zu", i)));
  }
  if (config_.mds_replication == MdsReplication::raft) {
    meta_sm_ = std::make_unique<MetaSm>(*this);
    raft::RaftConfig rc;
    rc.replicas = std::max<std::size_t>(1, config_.mds_replicas);
    rc.server_concurrency = config_.mds_concurrency;
    rc.rpc_overhead = config_.rpc_overhead;
    rc.heartbeat = config_.raft_heartbeat;
    rc.election_min = config_.raft_election_min;
    rc.election_jitter = config_.raft_election_jitter;
    rc.request_timeout = config_.raft_request_timeout;
    rc.commit_timeout = config_.raft_commit_timeout;
    rc.redirect_backoff = config_.raft_redirect_backoff;
    rc.compact_threshold = config_.raft_compact_threshold;
    rc.compact_keep = config_.raft_compact_keep;
    // Append pipelining rides with batching: both exist to stop a create
    // storm from flooding the group with duplicate log-suffix bytes. Off
    // when batching is off so the legacy event schedule is untouched.
    rc.pipeline_appends = config_.mds_batch > 0;
    for (std::size_t g = 0; g < config_.num_mds; ++g) {
      std::vector<std::size_t> placement;
      if (g < config_.raft_placement.size() &&
          config_.raft_placement[g].size() == rc.replicas) {
        placement = config_.raft_placement[g];
        for (std::size_t& n : placement) n %= cluster_.nodes();
      } else {
        // Default spread: a group's replicas land on distinct nodes when
        // the cluster is big enough, offset by group so leaders scatter.
        for (std::size_t r = 0; r < rc.replicas; ++r) {
          placement.push_back((g + r * config_.num_mds) % cluster_.nodes());
        }
      }
      raft_groups_.push_back(std::make_unique<raft::Group>(engine(), cluster_, *meta_sm_, rc,
                                                           g, std::move(placement)));
    }
  }
}

SimPfs::~SimPfs() = default;

void SimPfs::schedule_server_faults(const FaultPlan& plan) {
  if (!replicated()) return;
  const auto clamp_group = [this](int mds) {
    return static_cast<std::size_t>(mds) % raft_groups_.size();
  };
  // Every fault event conservatively revokes the group's client leases:
  // epoch bumps are cheap, and a cache that re-validates after a failover
  // can never serve a stale entry across it.
  for (const ServerOutage& so : plan.server_outages) {
    const std::size_t gi = clamp_group(so.mds);
    raft::Group& g = raft_group(gi);
    // The victim is resolved when the window opens (replica == -1 means
    // "whoever leads then"); the shared slot carries it to the restart.
    auto victim = std::make_shared<std::size_t>(0);
    engine().at(so.begin, [this, gi, &g, victim, want = so.replica] {
      const int leader = g.leader_or_negative();
      *victim = want >= 0 ? static_cast<std::size_t>(want) % g.replicas()
                          : static_cast<std::size_t>(leader >= 0 ? leader : 0);
      g.crash(*victim);
      revoke_leases(gi);
    });
    engine().at(so.end, [this, gi, &g, victim] {
      g.restart(*victim);
      revoke_leases(gi);
    });
  }
  for (const PartitionWindow& pw : plan.partitions) {
    const std::size_t gi = clamp_group(pw.mds);
    raft::Group& g = raft_group(gi);
    auto victim = std::make_shared<std::size_t>(0);
    engine().at(pw.begin, [this, gi, &g, victim] {
      const int leader = g.leader_or_negative();
      *victim = static_cast<std::size_t>(leader >= 0 ? leader : 0);
      g.set_partitioned(*victim, true);
      revoke_leases(gi);
    });
    engine().at(pw.end, [this, gi, &g, victim] {
      g.set_partitioned(*victim, false);
      revoke_leases(gi);
    });
  }
}

std::size_t SimPfs::mds_of_path(std::string_view path) const {
  const auto comps = path_components(path);
  if (comps.empty()) return 0;
  const std::string_view top = comps.front();
  // Volumes named volK model separately mounted file systems: they map to
  // metadata servers round-robin, so K volumes on a K-MDS system are
  // guaranteed disjoint (like PanFS realms). Anything else hashes.
  if (top.starts_with("vol")) {
    std::uint64_t k = 0;
    bool numeric = top.size() > 3;
    for (const char c : top.substr(3)) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      k = k * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (numeric) return static_cast<std::size_t>(k % config_.num_mds);
  }
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : top) h = splitmix64(h ^ static_cast<unsigned char>(c));
  return static_cast<std::size_t>(h % config_.num_mds);
}

SimPfs::Object& SimPfs::object(ObjectId oid) { return objects_[oid]; }

const ExtentMap* SimPfs::object_extents(ObjectId oid) const {
  const auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second.data;
}

Result<SimPfs::OpenFile*> SimPfs::handle(FileId file) {
  const auto it = open_files_.find(file);
  if (it == open_files_.end()) return error(Errc::bad_handle, str_printf("fd %llu",
                                            static_cast<unsigned long long>(file)));
  return &it->second;
}

sim::Mutex& SimPfs::dir_mutex(const std::string& dir) {
  auto& slot = dir_mutexes_[dir];
  if (!slot) slot = std::make_unique<sim::Mutex>(engine());
  return *slot;
}

sim::Task<Status> SimPfs::mds_op(IoCtx ctx, std::string_view dir_path, Duration service) {
  ++stats_.metadata_ops;
  if (replicated()) {
    co_return co_await raft_groups_[mds_of_path(dir_path)]->serve_read(ctx.node, ctx.rank,
                                                                       service);
  }
  co_await engine().sleep(config_.rpc_overhead + cluster_.storage_latency());
  co_await mds_[mds_of_path(dir_path)]->serve(service);
  co_return Status::Ok();
}

sim::Task<void> SimPfs::dir_mutation(IoCtx ctx, std::string dir_path) {
  bc().mutation_round_trips.add();
  sim::Mutex& mu = dir_mutex(dir_path);
  co_await mu.lock();
  const std::uint64_t entries = ns_.dir_entry_count(dir_path);
  const double degrade =
      1.0 + static_cast<double>(entries) / static_cast<double>(config_.dir_degrade_entries);
  const auto service = Duration::seconds(config_.dir_insert_time.to_seconds() * degrade);
  const Status st = co_await mds_op(ctx, dir_path, service);
  (void)st;  // unreplicated mds_op cannot fail
  mu.unlock();
}

sim::Task<Result<MetaApply>> SimPfs::raft_submit(IoCtx ctx, std::string_view group_path,
                                                 MetaCommand cmd) {
  ++stats_.metadata_ops;
  bc().mutation_round_trips.add();
  const std::uint64_t bytes = 48 + cmd.path.size() + cmd.path2.size();
  raft::Group& group = *raft_groups_[mds_of_path(group_path)];
  TIO_CO_ASSIGN_OR_RETURN(std::shared_ptr<const std::any> result,
                          co_await group.submit(ctx.node, ctx.rank,
                                                std::any(std::move(cmd)), bytes));
  if (!result || !result->has_value()) {
    co_return error(Errc::io_error, "raft: malformed apply result");
  }
  co_return std::any_cast<MetaApply>(*result);
}

// ------------------------------------------------- batched mutation client

sim::Task<Result<MetaApply>> SimPfs::batch_submit(IoCtx ctx, std::string_view group_path,
                                                  MetaCommand cmd) {
  const std::size_t g = mds_of_path(group_path);
  std::shared_ptr<PendingBatch>& slot = forming_[g];
  if (!slot) {
    slot = std::make_shared<PendingBatch>(engine());
    slot->ctx = ctx;
    // Linger flush: a partial batch never waits longer than the linger
    // bound for stragglers. The captured pointer distinguishes this batch
    // from successors, so a size-triggered flush makes the timer a no-op.
    engine().after(config_.mds_batch_linger, [this, g, armed = slot] {
      if (forming_[g] == armed) {
        bc().flush_linger.add();
        flush_batch(g);
      }
    });
  }
  auto pending = slot;
  const std::size_t idx = pending->batch.cmds.size();
  pending->batch.cmds.push_back(std::move(cmd));
  bc().ops.add();
  if (pending->batch.cmds.size() >= config_.mds_batch) {
    bc().flush_full.add();
    flush_batch(g);
  }
  co_await pending->gate.wait();
  if (!pending->fail.ok()) co_return pending->fail;
  if (!pending->done || idx >= pending->results.size()) {
    co_return error(Errc::io_error, "meta batch: malformed batch result");
  }
  co_return pending->results[idx];
}

void SimPfs::flush_batch(std::size_t g) {
  std::shared_ptr<PendingBatch> pending = std::move(forming_[g]);
  forming_[g] = nullptr;
  if (!pending || pending->batch.cmds.empty()) return;
  engine().spawn(run_batch(g, std::move(pending)));
}

sim::Task<void> SimPfs::run_batch(std::size_t g, std::shared_ptr<PendingBatch> pending) {
  const std::int64_t start_ns = engine().now().to_ns();
  const std::size_t n = pending->batch.cmds.size();
  bc().rpcs.add();
  bc().mutation_round_trips.add();
  static Histogram& occupancy = histogram("pfs.batch.occupancy");
  occupancy.record(static_cast<std::int64_t>(n));
  ++stats_.metadata_ops;
  if (replicated()) {
    // One Raft command carries the whole batch: one replication round, one
    // commit-wait, N applied mutations with per-entry outcomes.
    std::uint64_t bytes = 32;
    for (const MetaCommand& mc : pending->batch.cmds) {
      bytes += 48 + mc.path.size() + mc.path2.size();
    }
    auto result = co_await raft_groups_[g]->submit(pending->ctx.node, pending->ctx.rank,
                                                   std::any(std::move(pending->batch)), bytes);
    if (!result.ok()) {
      bc().failures.add();
      pending->fail = result.status();
    } else if (!*result || !(*result)->has_value()) {
      bc().failures.add();
      pending->fail = error(Errc::io_error, "raft: malformed batch apply result");
    } else {
      pending->results = std::any_cast<const MetaBatchApply&>(**result).results;
      pending->done = true;
    }
  } else {
    // Unreplicated: one client round trip for the whole batch; the MDS
    // still serves every entry's directory-degraded insert cost through
    // its FCFS queue before applying it.
    co_await engine().sleep(config_.rpc_overhead + cluster_.storage_latency());
    pending->results.reserve(n);
    for (const MetaCommand& mc : pending->batch.cmds) {
      co_await mds_[g]->serve(meta_service(mc));
      pending->results.push_back(apply_meta(mc));
    }
    pending->done = true;
  }
  trace::record_span(engine(), batch_flush_site(), pending->ctx.rank, start_ns);
  pending->gate.open();
}

// ------------------------------------------------ leased client-side cache

bool SimPfs::cache_lookup(const IoCtx& ctx, const std::string& path, MetaCache::Entry* out) {
  if (!meta_cache_) return false;
  const MetaCache::Entry* e =
      meta_cache_->lookup(ctx.node, path, group_epochs_[mds_of_path(path)]);
  if (e == nullptr) return false;
  if (out != nullptr) *out = *e;
  return true;
}

void SimPfs::cache_insert(const IoCtx& ctx, const std::string& path, ObjectId oid, bool is_dir) {
  if (!meta_cache_) return;
  meta_cache_->insert(ctx.node, path, oid, is_dir, group_epochs_[mds_of_path(path)]);
}

sim::Task<Result<FileId>> SimPfs::open(IoCtx ctx, std::string path, OpenFlags flags) {
  if (!flags.read && !flags.write) {
    co_return error(Errc::invalid, "open needs read or write: " + path);
  }
  path = path_normalize(path);
  const std::string parent(path_dirname(path));
  ++stats_.opens;

  ObjectId oid = kNoObject;
  auto existing = ns_.lookup(path);
  if (existing.ok() && existing->is_dir) {
    TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, parent, config_.mds_open_time));
    co_return error(Errc::is_a_directory, path);
  }
  if (existing.ok()) {
    if (flags.create && flags.excl) {
      TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, parent, config_.mds_open_time));
      co_return error(Errc::exists, path);
    }
    Object& cached = object(existing->oid);
    if (!cache_lookup(ctx, path)) {
      // Miss (or cache off): pay the MDS round trip, then lease the dentry
      // so this node's repeat opens within the TTL stay local.
      TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, parent,
                                             cached.dentry_hot ? config_.mds_cached_open_time
                                                               : config_.mds_open_time));
      cache_insert(ctx, path, existing->oid, /*is_dir=*/false);
    }
    cached.dentry_hot = true;
    oid = existing->oid;
    if (flags.trunc && flags.write) {
      Object& o = object(oid);
      o.data.truncate(0);
      o.size = 0;
      o.mtime = engine().now();
    }
  } else {
    if (!flags.create) {
      TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, parent, config_.mds_open_time));
      co_return error(Errc::not_found, path);
    }
    // Creation: serialized insert into the parent directory.
    if (!ns_.exists(parent)) {
      TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, parent, config_.mds_open_time));
      co_return error(Errc::not_found, "parent: " + parent);
    }
    if (config_.mds_batch > 0) {
      // Batched create: coalesced with other mutations bound for this
      // group, applied as one idempotent batch command, acked with this
      // entry's own outcome.
      MetaCommand cmd;
      cmd.kind = MetaCommand::Kind::create;
      cmd.path = path;
      cmd.excl = flags.excl;
      TIO_CO_ASSIGN_OR_RETURN(MetaApply applied,
                              co_await batch_submit(ctx, parent, std::move(cmd)));
      TIO_CO_RETURN_IF_ERROR(applied.status);
      oid = applied.oid;
    } else if (replicated()) {
      // The create is acked only after the group leader committed and
      // applied it — the existence checks above are advisory, the apply
      // inside the log is authoritative.
      MetaCommand cmd;
      cmd.kind = MetaCommand::Kind::create;
      cmd.path = path;
      cmd.excl = flags.excl;
      TIO_CO_ASSIGN_OR_RETURN(MetaApply applied, co_await raft_submit(ctx, parent, std::move(cmd)));
      TIO_CO_RETURN_IF_ERROR(applied.status);
      oid = applied.oid;
    } else {
      co_await dir_mutation(ctx, parent);
      bc().mutation_round_trips.add();
      TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, parent, config_.mds_create_time));
      auto created = ns_.create_file(path, flags.excl);
      if (!created.ok()) co_return created.status();
      oid = created->oid;
      if (created->created) {
        ++stats_.creates;
        Object& o = object(oid);
        o.mtime = engine().now();
      }
      if (meta_cache_) meta_cache_->invalidate(path);
    }
  }

  const FileId id = next_file_id_++;
  open_files_[id] = OpenFile{oid, flags, parent};
  co_return id;
}

sim::Task<Status> SimPfs::close(IoCtx ctx, FileId file) {
  TIO_CO_ASSIGN_OR_RETURN(OpenFile * of, handle(file));
  const std::string parent = of->parent_dir;
  (void)of;
  // Keep the handle until the MDS round trip succeeds: in replicated mode
  // the round trip can fail transiently (request timeout, leader change),
  // and close_retried reissues the same fd — the retry must still find it.
  TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, parent, config_.mds_close_time));
  open_files_.erase(file);
  co_return Status::Ok();
}

sim::Task<void> SimPfs::acquire_write_locks(IoCtx ctx, Object& obj, std::uint64_t offset,
                                            std::uint64_t len) {
  const std::uint64_t first = offset / config_.lock_range;
  const std::uint64_t last = (offset + len - 1) / config_.lock_range;
  for (std::uint64_t r = first; r <= last; ++r) {
    const auto it = obj.lock_owner.find(r);
    const auto owner = static_cast<std::size_t>(ctx.rank);
    if (it != obj.lock_owner.end() && it->second == owner) continue;  // cached lock
    if (it == obj.lock_owner.end()) {
      ++stats_.lock_grants;
      co_await engine().sleep(config_.lock_grant_time);
    } else {
      // Ownership transfer: revoke from the current holder, serialized at
      // the object's lock manager. Revocation synchronously flushes the
      // previous owner's dirty data for the range (approximated by the
      // incoming write's scale) before the new owner may proceed.
      ++stats_.lock_transfers;
      if (!obj.lock_server) {
        obj.lock_server = std::make_unique<sim::FcfsServer>(engine(), 1, "lockmgr");
      }
      const std::uint64_t flush_bytes =
          std::min(config_.lock_range, std::max(len, config_.rmw_page));
      co_await obj.lock_server->serve(config_.lock_transfer_time +
                                      transfer_time(flush_bytes, config_.ost_bandwidth));
    }
    obj.lock_owner[r] = owner;
  }
}

sim::Task<void> SimPfs::data_path(IoCtx ctx, ObjectId oid, std::uint64_t offset,
                                  std::uint64_t len, bool is_write) {
  (void)ctx;
  // Write-behind: the client pipelines dirty data to the server, so writes
  // pay bandwidth but not a per-op round trip; reads are synchronous.
  if (!(is_write && config_.write_behind)) {
    co_await engine().sleep(cluster_.storage_latency());
  }
  // The network transfer and the disk work pipeline (servers stream while
  // platters seek), so they run concurrently: the request takes the longer
  // of the two, not their sum.
  sim::WaitGroup net_wg(engine());
  net_wg.add();
  engine().spawn([](net::Cluster& cluster, std::uint64_t bytes,
                    sim::WaitGroup& wg) -> sim::Task<void> {
    co_await cluster.storage_net().transfer(bytes);
    wg.done();
  }(cluster_, len, net_wg));

  // Striped OST I/O. Pieces beyond stripe_parallelism are merged into
  // contiguous segments so a huge request costs O(parallelism) events.
  const std::uint64_t unit = config_.stripe_unit;
  const std::uint64_t first_piece = offset / unit;
  const std::uint64_t last_piece = (offset + len - 1) / unit;
  const std::uint64_t pieces = last_piece - first_piece + 1;
  const std::uint64_t segments =
      std::min<std::uint64_t>(pieces, std::max<std::size_t>(1, config_.stripe_parallelism));

  const std::size_t width = std::max<std::size_t>(1, std::min(config_.stripe_width,
                                                               osts_.size()));
  const std::size_t shelf = static_cast<std::size_t>(oid) % osts_.size();
  auto ost_of = [&](std::uint64_t piece) -> Ost& {
    return *osts_[(shelf + static_cast<std::size_t>(piece) % width) % osts_.size()];
  };
  if (segments == 1) {  // fast path: no extra fan-out for small ops
    co_await ost_of(first_piece).io(oid, offset, len, is_write);
    co_await net_wg.wait();
    co_return;
  }

  sim::WaitGroup wg(engine());
  auto issue = [](Ost& ost, ObjectId o, std::uint64_t off, std::uint64_t n, bool w,
                  sim::WaitGroup& group) -> sim::Task<void> {
    co_await ost.io(o, off, n, w);
    group.done();
  };
  const std::uint64_t span = offset + len;
  for (std::uint64_t s = 0; s < segments; ++s) {
    const std::uint64_t seg_start = std::max(offset, (first_piece + s * pieces / segments) * unit);
    const std::uint64_t seg_end =
        s + 1 == segments ? span
                          : std::min(span, (first_piece + (s + 1) * pieces / segments) * unit);
    if (seg_end <= seg_start) continue;
    Ost& ost = ost_of(first_piece + s);  // round-robin arms per segment
    wg.add();
    engine().spawn(issue(ost, oid, seg_start, seg_end - seg_start, is_write, wg));
  }
  co_await wg.wait();
  co_await net_wg.wait();
}

sim::Task<Result<std::uint64_t>> SimPfs::write(IoCtx ctx, FileId file, std::uint64_t offset,
                                               DataView data) {
  TIO_CO_ASSIGN_OR_RETURN(OpenFile * of, handle(file));
  if (!of->flags.write) co_return error(Errc::permission, "fd not writable");
  if (data.empty()) co_return std::uint64_t{0};
  Object& o = object(of->oid);
  const std::uint64_t len = data.size();

  if (config_.shared_file_locking) {
    co_await acquire_write_locks(ctx, o, offset, len);
  }
  // Read-modify-write penalty: unaligned data arriving anywhere but the
  // current end of file forces partial-page (parity-stripe) RMW at the
  // server. In-order appends coalesce in the write-behind cache and are
  // exempt — which is exactly what PLFS's log-structuring guarantees.
  const bool in_order_append = offset == o.size;
  const bool aligned =
      offset % config_.rmw_page == 0 && (offset + len) % config_.rmw_page == 0;
  if (!in_order_append && !aligned) {
    ++stats_.rmw_reads;
    const std::uint64_t page_start = offset - offset % config_.rmw_page;
    co_await data_path(ctx, of->oid, page_start, config_.rmw_page, /*is_write=*/false);
  }

  co_await data_path(ctx, of->oid, offset, len, /*is_write=*/true);

  o.data.write(offset, std::move(data));
  o.size = std::max(o.size, offset + len);
  o.mtime = engine().now();
  cluster_.page_cache(ctx.node).fill(of->oid, offset, len);
  stats_.bytes_written += len;
  co_return len;
}

sim::Task<Result<FragmentList>> SimPfs::read(IoCtx ctx, FileId file, std::uint64_t offset,
                                             std::uint64_t len) {
  TIO_CO_ASSIGN_OR_RETURN(OpenFile * of, handle(file));
  if (!of->flags.read) co_return error(Errc::permission, "fd not readable");
  Object& o = object(of->oid);
  if (offset >= o.size) co_return FragmentList{};  // EOF
  len = std::min(len, o.size - offset);
  if (len == 0) co_return FragmentList{};

  net::PageCache& cache = cluster_.page_cache(ctx.node);
  std::vector<net::ByteRange> misses;
  const std::uint64_t hit = cache.lookup(of->oid, offset, len, &misses);
  stats_.cache_hit_bytes += hit;
  if (hit > 0) {
    co_await engine().sleep(transfer_time(hit, cluster_.cached_read_rate()));
  }
  const std::uint64_t block = cluster_.config().page_cache_block;
  for (const auto& m : misses) {
    // Page-cache I/O is block granular: expand the miss to block boundaries
    // (clipped at EOF), charge the full transfer, and cache what was paid
    // for. This is what makes sequential log reads prefetch-friendly.
    const std::uint64_t lo = m.offset / block * block;
    const std::uint64_t hi = std::min(o.size, (m.offset + m.len + block - 1) / block * block);
    co_await data_path(ctx, of->oid, lo, hi - lo, /*is_write=*/false);
    cache.fill(of->oid, lo, hi - lo);
  }
  stats_.bytes_read += len;
  co_return o.data.read(offset, len);
}

// Routes one mutation kind: replicated deployments go through the group's
// log (the apply result carries the namespace's answer), unreplicated ones
// run the serialized dir_mutation and mutate ns_ directly.
sim::Task<Status> SimPfs::mkdir(IoCtx ctx, std::string path) {
  path = path_normalize(path);
  const std::string parent(path_dirname(path));
  if (!ns_.exists(parent)) {
    TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, parent, config_.mds_open_time));
    co_return error(Errc::not_found, "parent: " + parent);
  }
  if (config_.mds_batch > 0) {
    MetaCommand cmd;
    cmd.kind = MetaCommand::Kind::mkdir;
    cmd.path = path;
    TIO_CO_ASSIGN_OR_RETURN(MetaApply applied, co_await batch_submit(ctx, parent, std::move(cmd)));
    co_return applied.status;
  }
  if (replicated()) {
    MetaCommand cmd;
    cmd.kind = MetaCommand::Kind::mkdir;
    cmd.path = path;
    TIO_CO_ASSIGN_OR_RETURN(MetaApply applied, co_await raft_submit(ctx, parent, std::move(cmd)));
    co_return applied.status;
  }
  co_await dir_mutation(ctx, parent);
  if (meta_cache_) meta_cache_->invalidate(path);
  co_return ns_.mkdir(path);
}

sim::Task<Status> SimPfs::rmdir(IoCtx ctx, std::string path) {
  path = path_normalize(path);
  const std::string parent(path_dirname(path));
  if (replicated()) {
    MetaCommand cmd;
    cmd.kind = MetaCommand::Kind::rmdir;
    cmd.path = path;
    TIO_CO_ASSIGN_OR_RETURN(MetaApply applied, co_await raft_submit(ctx, parent, std::move(cmd)));
    co_return applied.status;
  }
  co_await dir_mutation(ctx, parent);
  if (meta_cache_) meta_cache_->invalidate(path);
  co_return ns_.rmdir(path);
}

sim::Task<Status> SimPfs::unlink(IoCtx ctx, std::string path) {
  path = path_normalize(path);
  const std::string parent(path_dirname(path));
  if (config_.mds_batch > 0) {
    MetaCommand cmd;
    cmd.kind = MetaCommand::Kind::unlink;
    cmd.path = path;
    TIO_CO_ASSIGN_OR_RETURN(MetaApply applied, co_await batch_submit(ctx, parent, std::move(cmd)));
    co_return applied.status;
  }
  if (replicated()) {
    MetaCommand cmd;
    cmd.kind = MetaCommand::Kind::unlink;
    cmd.path = path;
    TIO_CO_ASSIGN_OR_RETURN(MetaApply applied, co_await raft_submit(ctx, parent, std::move(cmd)));
    co_return applied.status;
  }
  co_await dir_mutation(ctx, parent);
  if (meta_cache_) meta_cache_->invalidate(path);
  auto removed = ns_.unlink(path);
  if (!removed.ok()) co_return removed.status();
  objects_.erase(removed.value());
  co_return Status::Ok();
}

sim::Task<Status> SimPfs::rename(IoCtx ctx, std::string from, std::string to) {
  from = path_normalize(from);
  to = path_normalize(to);
  if (replicated()) {
    // Cross-group renames would need a two-group transaction; the realm
    // model (one volume = one namespace) never produces them, so reject
    // rather than silently half-apply.
    if (mds_of_path(from) != mds_of_path(to)) {
      co_return error(Errc::invalid, "rename across metadata groups: " + from + " -> " + to);
    }
    MetaCommand cmd;
    cmd.kind = MetaCommand::Kind::rename;
    cmd.path = from;
    cmd.path2 = to;
    TIO_CO_ASSIGN_OR_RETURN(MetaApply applied,
                            co_await raft_submit(ctx, std::string_view(from), std::move(cmd)));
    co_return applied.status;
  }
  co_await dir_mutation(ctx, std::string(path_dirname(from)));
  if (path_dirname(from) != path_dirname(to)) {
    co_await dir_mutation(ctx, std::string(path_dirname(to)));
  }
  if (meta_cache_) {
    meta_cache_->invalidate(from);
    meta_cache_->invalidate(to);
  }
  co_return ns_.rename(from, to);
}

sim::Task<Result<StatInfo>> SimPfs::stat(IoCtx ctx, std::string path) {
  path = path_normalize(path);
  MetaCache::Entry lease;
  if (cache_lookup(ctx, path, &lease)) {
    // Lease hit: attributes served from the client cache, no MDS round
    // trip. Sizes/mtimes come from the shared truth — the lease only
    // vouches for existence and identity, which invalidation-on-mutation
    // and epoch revocation keep safe.
    StatInfo info;
    info.is_dir = lease.is_dir;
    if (!lease.is_dir) {
      const auto it = objects_.find(lease.oid);
      if (it != objects_.end()) {
        info.size = it->second.size;
        info.mtime = it->second.mtime;
      }
    }
    co_return info;
  }
  TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, path_dirname(path), config_.mds_stat_time));
  auto entry = ns_.lookup(path);
  if (!entry.ok()) co_return entry.status();
  StatInfo info;
  info.is_dir = entry->is_dir;
  if (!entry->is_dir) {
    const auto it = objects_.find(entry->oid);
    if (it != objects_.end()) {
      info.size = it->second.size;
      info.mtime = it->second.mtime;
    }
  }
  cache_insert(ctx, path, entry->is_dir ? kNoObject : entry->oid, entry->is_dir);
  co_return info;
}

sim::Task<Result<std::vector<DirEntry>>> SimPfs::readdir(IoCtx ctx, std::string path) {
  path = path_normalize(path);
  auto entries = ns_.readdir(path);
  const std::size_t n = entries.ok() ? entries->size() : 0;
  TIO_CO_RETURN_IF_ERROR(co_await mds_op(ctx, path, config_.mds_open_time +
                                                        config_.mds_readdir_per_entry *
                                                            static_cast<std::int64_t>(n)));
  co_return entries;
}

void SimPfs::drop_caches() {
  // A restart happens long after the checkpoint: client caches and server
  // DRAM are both cold.
  for (std::size_t n = 0; n < cluster_.nodes(); ++n) cluster_.page_cache(n).clear();
  for (auto& ost : osts_) ost->drop_cache();
}

}  // namespace tio::pfs
