file(REMOVE_RECURSE
  "libtio_mpisim.a"
)
