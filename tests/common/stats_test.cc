#include "common/stats.h"

#include <gtest/gtest.h>

namespace tio {
namespace {

TEST(Series, MeanAndSum) {
  Series s;
  s.add(1);
  s.add(2);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Series, StddevOfConstantIsZero) {
  Series s;
  for (int i = 0; i < 5; ++i) s.add(7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Series, SampleStddev) {
  Series s;  // {2, 4, 4, 4, 5, 5, 7, 9}: sample stddev = sqrt(32/7)
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138089935, 1e-9);
}

TEST(Series, StddevOfSingleSampleIsZero) {
  Series s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Series, MinMax) {
  Series s;
  for (double v : {5.0, -1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Series, Percentiles) {
  Series s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Series, EmptyThrows) {
  Series s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.percentile(50), std::logic_error);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Counters, RegistryIsNamedAndPersistent) {
  Counter& c = counter("test.stats.alpha");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same counter.
  EXPECT_EQ(&counter("test.stats.alpha"), &c);
  EXPECT_EQ(counter("test.stats.alpha").value(), 42u);
}

TEST(Counters, SnapshotFiltersByPrefixAndSortsByName) {
  counter("test.snap.b").reset();
  counter("test.snap.a").reset();
  counter("test.snap.a").add(1);
  counter("test.snap.b").add(2);
  const auto snap = counter_snapshot("test.snap.");
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "test.snap.a");
  EXPECT_EQ(snap[0].second, 1u);
  EXPECT_EQ(snap[1].first, "test.snap.b");
  EXPECT_EQ(snap[1].second, 2u);
  // Unmatched prefix -> empty.
  EXPECT_TRUE(counter_snapshot("test.snap.nothing").empty());
}

TEST(Counters, ResetCountersZeroesButKeepsRegistration) {
  Counter& c = counter("test.reset.x");
  c.add(7);
  reset_counters();
  EXPECT_EQ(c.value(), 0u);
  const auto snap = counter_snapshot("test.reset.");
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].second, 0u);
}

}  // namespace
}  // namespace tio
