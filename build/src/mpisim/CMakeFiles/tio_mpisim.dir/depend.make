# Empty dependencies file for tio_mpisim.
# This may be replaced when dependencies are built.
