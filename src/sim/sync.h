// Coroutine synchronization primitives for simulated processes.
//
// All wake-ups go through the engine's event queue at the current virtual
// time, so wake order is deterministic (FIFO per primitive) and consistent
// with the engine's global event ordering.
//
// Waiter bookkeeping is intrusive: each primitive's Awaiter carries the
// link pointer, and the awaiter object lives inside the suspended
// coroutine's frame, so parking a process on a mutex, semaphore, barrier,
// gate, or channel allocates nothing — no vector/deque churn per wait.
// Shard affinity: a primitive belongs to one engine, and its waiter lists
// are unsynchronized — every await must happen on the host thread currently
// running that engine (sim/sharded.h pins an engine to one shard). Debug
// builds assert this at each suspension point.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>

#include "sim/engine.h"

namespace tio::sim {

namespace detail {

// Intrusive FIFO of parked awaiters, linked through Node::next. Nodes are
// owned by suspended coroutine frames; a node stays linked exactly while
// its coroutine is suspended on the primitive, so no lifetime bookkeeping
// is needed here.
template <typename Node>
class WaiterList {
 public:
  bool empty() const { return head_ == nullptr; }
  std::size_t size() const { return size_; }

  void push_back(Node* n) {
    n->next = nullptr;
    if (tail_) {
      tail_->next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
    ++size_;
  }

  Node* pop_front() {
    Node* n = head_;
    head_ = n->next;
    if (!head_) tail_ = nullptr;
    --size_;
    return n;
  }

 private:
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace detail

// One-shot broadcast gate. wait() completes immediately once open.
class Gate {
 public:
  explicit Gate(Engine& engine) : engine_(engine) {}

  struct Awaiter {
    Gate* gate;
    std::coroutine_handle<> handle = nullptr;
    Awaiter* next = nullptr;
    bool await_ready() const noexcept { return gate->open_; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(gate->engine_.is_current() && "Gate awaited off its engine's shard");
      handle = h;
      gate->waiters_.push_back(this);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{this}; }

  void open() {
    if (open_) return;
    open_ = true;
    while (!waiters_.empty()) {
      const auto h = waiters_.pop_front()->handle;
      engine_.after(Duration::zero(), [h] { h.resume(); });
    }
  }
  bool is_open() const { return open_; }

 private:
  Engine& engine_;
  bool open_ = false;
  detail::WaiterList<Awaiter> waiters_;
};

// Counting semaphore with FIFO handoff.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t permits) : engine_(engine), available_(permits) {}

  struct Awaiter {
    Semaphore* sem;
    std::coroutine_handle<> handle = nullptr;
    Awaiter* next = nullptr;
    bool await_ready() const noexcept {
      if (sem->available_ > 0) {
        --sem->available_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      assert(sem->engine_.is_current() && "Semaphore awaited off its engine's shard");
      handle = h;
      sem->waiters_.push_back(this);
    }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() { return Awaiter{this}; }

  void release() {
    if (!waiters_.empty()) {
      // Hand the permit directly to the oldest waiter.
      const auto h = waiters_.pop_front()->handle;
      engine_.after(Duration::zero(), [h] { h.resume(); });
      return;
    }
    ++available_;
  }

  std::size_t available() const { return available_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::size_t available_;
  detail::WaiterList<Awaiter> waiters_;
};

// RAII scope for a semaphore permit: co_await sem.acquire(); SemGuard g(sem);
class SemGuard {
 public:
  explicit SemGuard(Semaphore& sem) : sem_(&sem) {}
  SemGuard(SemGuard&& o) noexcept : sem_(std::exchange(o.sem_, nullptr)) {}
  SemGuard(const SemGuard&) = delete;
  SemGuard& operator=(const SemGuard&) = delete;
  SemGuard& operator=(SemGuard&&) = delete;
  ~SemGuard() {
    if (sem_) sem_->release();
  }

 private:
  Semaphore* sem_;
};

class Mutex {
 public:
  explicit Mutex(Engine& engine) : sem_(engine, 1) {}
  Semaphore::Awaiter lock() { return sem_.acquire(); }
  void unlock() { sem_.release(); }
  Semaphore& sem() { return sem_; }

 private:
  Semaphore sem_;
};

// Reusable cyclic barrier for `parties` processes (bulk-synchronous phases).
class Barrier {
 public:
  Barrier(Engine& engine, std::size_t parties) : engine_(engine), parties_(parties) {
    if (parties == 0) throw std::invalid_argument("Barrier: zero parties");
  }

  struct Awaiter {
    Barrier* barrier;
    std::coroutine_handle<> handle = nullptr;
    Awaiter* next = nullptr;
    bool await_ready() const noexcept {
      if (barrier->arrived_ + 1 == barrier->parties_) {
        // Last arriver: trip the barrier and continue without suspending.
        barrier->arrived_ = 0;
        while (!barrier->waiters_.empty()) {
          const auto h = barrier->waiters_.pop_front()->handle;
          barrier->engine_.after(Duration::zero(), [h] { h.resume(); });
        }
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      assert(barrier->engine_.is_current() && "Barrier awaited off its engine's shard");
      ++barrier->arrived_;
      handle = h;
      barrier->waiters_.push_back(this);
    }
    void await_resume() const noexcept {}
  };
  Awaiter arrive_and_wait() { return Awaiter{this}; }

  std::size_t parties() const { return parties_; }

 private:
  Engine& engine_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  detail::WaiterList<Awaiter> waiters_;
};

// Join-counter for forked subtasks: add() before spawning, done() at the end
// of each subtask, wait() until the count returns to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Engine& engine) : gate_(engine) {}

  void add(std::size_t n = 1) { pending_ += n; }
  void done() {
    if (pending_ == 0) throw std::logic_error("WaitGroup::done without add");
    if (--pending_ == 0) gate_.open();
  }
  Gate::Awaiter wait() {
    if (pending_ == 0) gate_.open();
    return gate_.wait();
  }

 private:
  Gate gate_;
  std::size_t pending_ = 0;
};

// Unbounded FIFO channel: the building block for simulated message passing.
// Items are buffered in a deque (they must live somewhere while no reader
// is present); parked readers use the intrusive list like everything else.
template <typename T>
class Queue {
 public:
  explicit Queue(Engine& engine) : engine_(engine) {}

  struct PopAwaiter {
    Queue* queue;
    std::optional<T> value;
    std::coroutine_handle<> handle = nullptr;
    PopAwaiter* next = nullptr;
    bool await_ready() {
      if (!queue->items_.empty()) {
        value.emplace(std::move(queue->items_.front()));
        queue->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      assert(queue->engine_.is_current() && "Queue awaited off its engine's shard");
      handle = h;
      queue->poppers_.push_back(this);
    }
    T await_resume() { return std::move(*value); }
  };
  PopAwaiter pop() { return PopAwaiter{this, std::nullopt}; }

  void push(T item) {
    if (!poppers_.empty()) {
      PopAwaiter* p = poppers_.pop_front();
      p->value.emplace(std::move(item));
      const auto h = p->handle;
      engine_.after(Duration::zero(), [h] { h.resume(); });
      return;
    }
    items_.push_back(std::move(item));
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  // True when nothing is buffered and nobody is waiting — safe to destroy.
  bool idle() const { return items_.empty() && poppers_.empty(); }

 private:
  Engine& engine_;
  std::deque<T> items_;
  detail::WaiterList<PopAwaiter> poppers_;
};

}  // namespace tio::sim
