#include "mpisim/comm.h"

#include <algorithm>

namespace tio::mpi {

Comm Comm::world(Runtime& rt, int rank) {
  // The world group is identical on every rank; build it once per runtime.
  if (rt.world_group_ == nullptr) {
    auto group = std::make_shared<Group>();
    group->context = 1;
    group->members.resize(rt.nprocs());
    for (int i = 0; i < rt.nprocs(); ++i) group->members[i] = i;
    rt.world_group_ = std::move(group);
  }
  return Comm(rt, std::static_pointer_cast<const Group>(rt.world_group_), rank);
}

sim::Task<void> Comm::send_any(int dest, int tag, std::any payload, std::uint64_t bytes) {
  check_rank(dest);
  co_await engine().sleep(rt_->send_overhead());
  co_await rt_->cluster().fabric_transfer(my_node(), rt_->node_of(group_->members[dest]), bytes);
  rt_->mailbox({group_->context, dest, my_index_, tag}).push(std::move(payload));
}

sim::Task<std::any> Comm::recv_any(int src, int tag) {
  check_rank(src);
  const Runtime::MailboxKey key{group_->context, my_index_, src, tag};
  std::any payload = co_await rt_->mailbox(key).pop();
  rt_->gc_mailbox(key);
  co_return payload;
}

sim::Task<void> Comm::barrier() {
  const int tag = next_op_tag();
  const int n = size();
  // Dissemination barrier: ceil(log2 n) rounds of shifted exchanges.
  for (int round = 0, dist = 1; dist < n; ++round, dist <<= 1) {
    const int to = (rank() + dist) % n;
    const int from = (rank() - dist + n) % n;
    co_await send_any(to, tag + round, std::any(0), 8);
    (void)co_await recv_any(from, tag + round);
  }
}

sim::Task<Comm> Comm::split(int color, int key) {
  // Everyone learns everyone's (color, key); groups are formed identically
  // on every rank without further communication.
  struct Entry {
    int color;
    int key;
  };
  auto entries = co_await allgather(Entry{color, key}, sizeof(Entry));
  std::vector<std::pair<std::pair<int, int>, int>> mine;  // ((key, rank), comm rank)
  for (int r = 0; r < size(); ++r) {
    if (entries[r].color == color) mine.push_back({{entries[r].key, r}, r});
  }
  std::sort(mine.begin(), mine.end());
  auto group = std::make_shared<Group>();
  // Context derivation must be collision-free across sibling subcomms or
  // their mailboxes cross-talk: pack (op, color) injectively, then mix the
  // whole thing through splitmix64 (hash_combine alone has systematic
  // collisions between adjacent op counters).
  const std::uint64_t packed = (static_cast<std::uint64_t>(op_counter_) << 32) ^
                               static_cast<std::uint32_t>(color);
  group->context =
      splitmix64(group_->context ^ splitmix64(packed ^ 0x9e3779b97f4a7c15ull));
  int my_index = -1;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    group->members.push_back(group_->members[mine[i].second]);
    if (mine[i].second == rank()) my_index = static_cast<int>(i);
  }
  co_return Comm(*rt_, std::move(group), my_index);
}

}  // namespace tio::mpi
