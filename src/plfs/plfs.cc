#include "plfs/plfs.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/rng.h"
#include "common/stats.h"
#include "common/strutil.h"
#include "common/trace.h"
#include "plfs/pattern.h"
#include "sim/sync.h"
#include "sim/timeout.h"

namespace tio::plfs {

using pfs::OpenFlags;

namespace {

// Hot-path counters, resolved once: counter() takes the registry mutex and
// a map lookup, which the stats.h contract lets us hoist (counters are
// process-lifetime). These run once per backend op / retry / index batch.
struct RetryCounters {
  Counter& timeouts = counter("plfs.retry.timeouts");
  Counter& success_after_retry = counter("plfs.retry.success_after_retry");
  Counter& exhausted = counter("plfs.retry.exhausted");
  Counter& budget_exhausted = counter("plfs.retry.budget_exhausted");
  Counter& attempts = counter("plfs.retry.attempts");
  Counter& backoff_ns = counter("plfs.retry.backoff_ns");
  Counter& short_write_resumed = counter("plfs.retry.short_write_resumed");
};
RetryCounters& retry_counters() {
  static RetryCounters c;
  return c;
}

// Span sites for the retry layer: every backoff sleep and every timed-out
// attempt becomes a span (and a histogram sample).
const trace::SpanSite& backoff_site() {
  static const trace::SpanSite site("plfs.retry", "plfs.retry.backoff");
  return site;
}
const trace::SpanSite& timeout_site() {
  static const trace::SpanSite site("plfs.retry", "plfs.retry.timeout");
  return site;
}

// Jitter stream key for an op on a path: every path retries on its own
// deterministic schedule, spreading thundering herds.
std::uint64_t path_op_key(std::string_view s) {
  std::uint64_t h = 0x7e57a1101dull;
  for (const char c : s) h = splitmix64(h ^ static_cast<unsigned char>(c));
  return h;
}

Status status_of(const Status& s) { return s; }
template <typename T>
Status status_of(const Result<T>& r) {
  return r.status();
}

template <typename T>
struct task_value;
template <typename T>
struct task_value<sim::Task<T>> {
  using type = T;
};

}  // namespace

Plfs::Plfs(pfs::FsClient& fs, PlfsMount mount)
    : fs_(fs), mount_(std::move(mount)), cache_(mount_.index_cache_bytes),
      budget_(mount_.retry_budget) {
  if (mount_.backends.empty()) {
    throw std::invalid_argument("PlfsMount must have at least one backend");
  }
}

template <typename MakeOp>
auto Plfs::with_retry(pfs::IoCtx ctx, std::uint64_t op_key, MakeOp make_op)
    -> decltype(make_op()) {
  using R = typename task_value<decltype(make_op())>::type;
  const RetryPolicy& policy = mount_.retry;
  RetryCounters& rc = retry_counters();
  for (int attempt = 0;; ++attempt) {
    std::optional<R> result;
    if (policy.op_timeout > Duration::zero()) {
      const std::int64_t t0 = engine().now().to_ns();
      result = co_await sim::with_timeout(engine(), policy.op_timeout, make_op());
      if (!result.has_value()) {
        rc.timeouts.add(1);
        // The attempt's cost is only interesting once we know it timed out,
        // so the span is recorded retroactively from the captured start.
        trace::record_span(engine(), timeout_site(), ctx.rank, t0);
        result.emplace(error(Errc::busy, "op timed out (attempt abandoned)"));
      }
    } else {
      result.emplace(co_await make_op());
    }
    const Status st = status_of(*result);
    if (st.ok()) {
      if (attempt > 0) rc.success_after_retry.add(1);
      co_return std::move(*result);
    }
    if (!st.is_transient()) co_return std::move(*result);
    if (attempt + 1 >= policy.max_attempts) {
      rc.exhausted.add(1);
      co_return std::move(*result);
    }
    if (!budget_.try_consume()) {
      rc.budget_exhausted.add(1);
      co_return std::move(*result);
    }
    const Duration wait = policy.backoff(attempt, op_key);
    rc.attempts.add(1);
    rc.backoff_ns.add(static_cast<std::uint64_t>(wait.to_ns()));
    {
      trace::Span backoff(engine(), backoff_site(), ctx.rank);
      co_await engine().sleep(wait);
    }
  }
}

sim::Task<Result<std::uint64_t>> Plfs::write_fully(pfs::IoCtx ctx, pfs::FileId fd,
                                                   std::uint64_t offset, DataView data,
                                                   std::uint64_t op_key) {
  const RetryPolicy& policy = mount_.retry;
  RetryCounters& rc = retry_counters();
  const std::uint64_t n = data.size();
  if (n == 0) co_return std::uint64_t{0};
  std::uint64_t done = 0;
  bool retried = false;
  for (int attempt = 0;;) {
    auto wrote = co_await fs_.write(ctx, fd, offset + done, data.slice(done, n - done));
    if (wrote.ok()) {
      done += *wrote;
      if (done >= n) {
        if (retried) rc.success_after_retry.add(1);
        co_return n;
      }
      // A torn write is progress, not failure: resume after the prefix that
      // landed, and reset the attempt clock so completion is guaranteed for
      // any finite tear sequence.
      rc.short_write_resumed.add(1);
      attempt = 0;
      continue;
    }
    const Status st = wrote.status();
    if (!st.is_transient()) co_return st;
    if (attempt + 1 >= policy.max_attempts) {
      rc.exhausted.add(1);
      co_return st;
    }
    if (!budget_.try_consume()) {
      rc.budget_exhausted.add(1);
      co_return st;
    }
    const Duration wait = policy.backoff(attempt, op_key);
    rc.attempts.add(1);
    rc.backoff_ns.add(static_cast<std::uint64_t>(wait.to_ns()));
    {
      trace::Span backoff(engine(), backoff_site(), ctx.rank);
      co_await engine().sleep(wait);
    }
    retried = true;
    ++attempt;
  }
}

sim::Task<Result<pfs::FileId>> Plfs::open_retried(pfs::IoCtx ctx, std::string path,
                                                  OpenFlags flags) {
  co_return co_await with_retry(ctx, path_op_key(path),
                                [&] { return fs_.open(ctx, path, flags); });
}

sim::Task<Status> Plfs::close_retried(pfs::IoCtx ctx, pfs::FileId fd) {
  co_return co_await with_retry(ctx, splitmix64(fd), [&] { return fs_.close(ctx, fd); });
}

sim::Task<Result<FragmentList>> Plfs::read_retried(pfs::IoCtx ctx, pfs::FileId fd,
                                                   std::uint64_t offset, std::uint64_t len) {
  co_return co_await with_retry(ctx, splitmix64(fd ^ offset),
                                [&] { return fs_.read(ctx, fd, offset, len); });
}

sim::Task<Status> Plfs::mkdir_retried(pfs::IoCtx ctx, std::string path) {
  co_return co_await with_retry(ctx, path_op_key(path) ^ 1,
                                [&] { return fs_.mkdir(ctx, path); });
}

sim::Task<Status> Plfs::rmdir_retried(pfs::IoCtx ctx, std::string path) {
  co_return co_await with_retry(ctx, path_op_key(path) ^ 2,
                                [&] { return fs_.rmdir(ctx, path); });
}

sim::Task<Status> Plfs::unlink_retried(pfs::IoCtx ctx, std::string path) {
  co_return co_await with_retry(ctx, path_op_key(path) ^ 3,
                                [&] { return fs_.unlink(ctx, path); });
}

sim::Task<Result<pfs::StatInfo>> Plfs::stat_retried(pfs::IoCtx ctx, std::string path) {
  co_return co_await with_retry(ctx, path_op_key(path) ^ 4,
                                [&] { return fs_.stat(ctx, path); });
}

sim::Task<Result<std::vector<pfs::DirEntry>>> Plfs::readdir_retried(pfs::IoCtx ctx,
                                                                    std::string path) {
  co_return co_await with_retry(ctx, path_op_key(path) ^ 5,
                                [&] { return fs_.readdir(ctx, path); });
}

sim::Task<Status> Plfs::ensure_dir(pfs::IoCtx ctx, std::string dir) {
  auto st = co_await stat_retried(ctx, dir);
  if (st.ok()) {
    if (!st->is_dir) co_return error(Errc::not_a_directory, dir);
    co_return Status::Ok();
  }
  Status made = co_await mkdir_retried(ctx, dir);
  if (!made.ok() && made.code() != Errc::exists) co_return made;
  co_return Status::Ok();
}

sim::Task<Status> Plfs::ensure_container_skeleton(pfs::IoCtx ctx, const ContainerLayout& layout) {
  // Parent chain below the canonical backend root (the roots themselves are
  // "mounted", i.e. pre-existing).
  const std::string parent_logical(path_dirname(layout.logical()));
  const std::size_t canonical = layout.canonical_backend();
  if (parent_logical != "/") {
    std::string built = mount_.backends[canonical];
    for (const auto comp : path_components(parent_logical)) {
      built = path_join(built, comp);
      TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, built));
    }
  }
  TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, layout.canonical_container()));
  if (mount_.meta_batching) {
    // The access marker and the meta/ and openhosts/ subdirectories are
    // independent once the container exists: issue all three concurrently so
    // the client-side batcher coalesces their mutations into one RPC.
    Status access_st, meta_st, hosts_st;
    sim::WaitGroup wg(engine());
    auto marker = [](Plfs& p, pfs::IoCtx c, const ContainerLayout& lay, Status& out,
                     sim::WaitGroup& group) -> sim::Task<void> {
      auto fd = co_await p.open_retried(c, lay.access_path(), OpenFlags::wr_create_excl());
      if (fd.ok()) {
        out = co_await p.close_retried(c, *fd);
      } else if (fd.status().code() != Errc::exists) {
        out = fd.status();
      }
      group.done();
    };
    auto subdir = [](Plfs& p, pfs::IoCtx c, std::string dir, Status& out,
                     sim::WaitGroup& group) -> sim::Task<void> {
      out = co_await p.ensure_dir(c, std::move(dir));
      group.done();
    };
    wg.add(3);
    engine().spawn(marker(*this, ctx, layout, access_st, wg));
    engine().spawn(subdir(*this, ctx, layout.meta_dir(), meta_st, wg));
    engine().spawn(subdir(*this, ctx, layout.openhosts_dir(), hosts_st, wg));
    co_await wg.wait();
    TIO_CO_RETURN_IF_ERROR(access_st);
    TIO_CO_RETURN_IF_ERROR(meta_st);
    co_return hosts_st;
  }
  // The access marker: created once, tolerated when racing.
  auto access = co_await open_retried(ctx, layout.access_path(), OpenFlags::wr_create_excl());
  if (access.ok()) {
    TIO_CO_RETURN_IF_ERROR(co_await close_retried(ctx, *access));
  } else if (access.status().code() != Errc::exists) {
    co_return access.status();
  }
  TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, layout.meta_dir()));
  TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, layout.openhosts_dir()));
  co_return Status::Ok();
}

sim::Task<Status> Plfs::ensure_subdir_on(pfs::IoCtx ctx, const ContainerLayout& lay,
                                         std::size_t k, std::size_t backend) {
  // The shadow chain below this backend's root (the canonical chain was
  // built by the skeleton).
  if (backend != lay.canonical_backend()) {
    const std::string parent_logical(path_dirname(lay.logical()));
    if (parent_logical != "/") {
      std::string built = mount_.backends[backend];
      for (const auto comp : path_components(parent_logical)) {
        built = path_join(built, comp);
        TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, built));
      }
    }
    TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, lay.container_on(backend)));
  }
  co_return co_await ensure_dir(ctx, lay.subdir_path_on(k, backend));
}

sim::Task<Result<std::unique_ptr<WriteHandle>>> Plfs::open_write(pfs::IoCtx ctx,
                                                                 std::string logical, int rank) {
  ContainerLayout lay = layout(logical);
  cache_.invalidate(path_normalize(logical));  // this container is about to change
  TIO_CO_RETURN_IF_ERROR(co_await ensure_container_skeleton(ctx, lay));

  // My subdir lives on its hashed home backend. If that MDS stays
  // unreachable through the whole retry schedule, walk the federation ring
  // (home+1, home+2, ...) and leave a stale.k marker in the canonical
  // container so readers resolve the same placement. A replicated
  // metadata service makes the ring walk unnecessary — the namespace
  // itself fails over consistently, so only the home backend is probed
  // and no placement can ever go stale.
  const std::size_t k = lay.subdir_of_rank(rank);
  const std::size_t home = lay.subdir_backend(k);
  const std::size_t ring = mount_.mds_replicated ? 1 : lay.num_backends();
  std::size_t placed = home;
  Status subdir_st = Status::Ok();
  // Per-probe spans separate the cheap common case (home MDS answers) from
  // ring-walk failover probes in the Fig. 7 create-path traces.
  static const trace::SpanSite kHomeSite("plfs.create", "plfs.create.subdir_home");
  static const trace::SpanSite kFailoverSite("plfs.create", "plfs.create.subdir_failover");
  for (std::size_t j = 0; j < ring; ++j) {
    const std::size_t b = (home + j) % lay.num_backends();
    {
      trace::Span probe(engine(), j == 0 ? kHomeSite : kFailoverSite, rank);
      subdir_st = co_await ensure_subdir_on(ctx, lay, k, b);
    }
    if (subdir_st.ok()) {
      placed = b;
      break;
    }
    if (!subdir_st.is_transient()) co_return subdir_st;
  }
  TIO_CO_RETURN_IF_ERROR(subdir_st);
  if (placed != home) {
    static Counter& mds_failover = counter("plfs.degrade.mds_failover");
    mds_failover.add(1);
    auto marker = co_await open_retried(ctx, lay.stale_marker_path(k), OpenFlags::wr_create());
    if (!marker.ok()) co_return marker.status();
    TIO_CO_RETURN_IF_ERROR(co_await close_retried(ctx, *marker));
  }

  pfs::FileId data_fd{};
  pfs::FileId index_fd{};
  if (mount_.meta_batching) {
    // Data log, index log, and the openhosts/ record are independent
    // creates: issue them concurrently so they land in one batch RPC.
    Status data_st, index_st, host_st;
    sim::WaitGroup wg(engine());
    auto create_log = [](Plfs& p, pfs::IoCtx c, std::string path, pfs::FileId& fd, Status& out,
                         sim::WaitGroup& group) -> sim::Task<void> {
      auto r = co_await p.open_retried(c, std::move(path), OpenFlags::wr_trunc());
      if (r.ok()) {
        fd = *r;
      } else {
        out = r.status();
      }
      group.done();
    };
    auto host_record = [](Plfs& p, pfs::IoCtx c, std::string path, Status& out,
                          sim::WaitGroup& group) -> sim::Task<void> {
      auto r = co_await p.open_retried(c, std::move(path), OpenFlags::wr_create());
      if (r.ok()) {
        out = co_await p.close_retried(c, *r);
      } else {
        out = r.status();
      }
      group.done();
    };
    wg.add(3);
    engine().spawn(
        create_log(*this, ctx, lay.data_log_path_on(rank, placed), data_fd, data_st, wg));
    engine().spawn(
        create_log(*this, ctx, lay.index_log_path_on(rank, placed), index_fd, index_st, wg));
    engine().spawn(host_record(*this, ctx, lay.openhost_record_path(rank), host_st, wg));
    co_await wg.wait();
    TIO_CO_RETURN_IF_ERROR(data_st);
    TIO_CO_RETURN_IF_ERROR(index_st);
    TIO_CO_RETURN_IF_ERROR(host_st);
  } else {
    TIO_CO_ASSIGN_OR_RETURN(
        data_fd,
        co_await open_retried(ctx, lay.data_log_path_on(rank, placed), OpenFlags::wr_trunc()));
    TIO_CO_ASSIGN_OR_RETURN(
        index_fd,
        co_await open_retried(ctx, lay.index_log_path_on(rank, placed), OpenFlags::wr_trunc()));

    // Record this writer in openhosts/.
    auto host = co_await open_retried(ctx, lay.openhost_record_path(rank), OpenFlags::wr_create());
    if (!host.ok()) co_return host.status();
    TIO_CO_RETURN_IF_ERROR(co_await close_retried(ctx, *host));
  }

  co_return std::unique_ptr<WriteHandle>(
      new WriteHandle(*this, ctx, std::move(lay), rank, data_fd, index_fd));
}

sim::Task<Status> WriteHandle::write(std::uint64_t logical_offset, DataView data) {
  if (closed_) co_return error(Errc::bad_handle, "write on closed handle");
  if (data.empty()) co_return Status::Ok();
  const std::uint64_t len = data.size();
  // Log-structured: always append, regardless of the logical offset.
  TIO_CO_ASSIGN_OR_RETURN(std::uint64_t written,
                          co_await plfs_->write_fully(ctx_, data_fd_, data_offset_,
                                                      std::move(data), splitmix64(data_fd_)));
  (void)written;
  entries_.push_back(IndexEntry{logical_offset, len, data_offset_,
                                plfs_->engine().now().to_ns(),
                                static_cast<std::uint32_t>(rank_)});
  data_offset_ += len;
  high_water_ = std::max(high_water_, logical_offset + len);
  if (entries_.size() - flushed_ >= plfs_->mount_.index_flush_every) {
    TIO_CO_RETURN_IF_ERROR(co_await flush_index());
  }
  co_return Status::Ok();
}

sim::Task<Status> WriteHandle::flush_index() {
  if (flushed_ == entries_.size()) co_return Status::Ok();
  static const trace::SpanSite kFlushSite("plfs.write", "plfs.write.index_flush");
  trace::Span flush_span(plfs_->engine(), kFlushSite, rank_);
  // Each flush batch becomes one self-contained wire unit (a v2 segment or
  // a run of v1 records), so the log stays append-only and readable after
  // any prefix of flushes.
  const std::vector<IndexEntry> batch(entries_.begin() + static_cast<std::ptrdiff_t>(flushed_),
                                      entries_.end());
  std::vector<std::byte> buf = encode_entries(batch, plfs_->mount_.index_wire);
  const std::uint64_t n = buf.size();
  static Counter& log_bytes_written = counter("plfs.index.log_bytes_written");
  log_bytes_written.add(n);
  TIO_CO_ASSIGN_OR_RETURN(std::uint64_t written,
                          co_await plfs_->write_fully(ctx_, index_fd_, index_offset_,
                                                      DataView::literal(std::move(buf)),
                                                      splitmix64(index_fd_)));
  (void)written;
  index_offset_ += n;
  flushed_ = entries_.size();
  co_return Status::Ok();
}

sim::Task<Status> WriteHandle::close() {
  if (closed_) co_return error(Errc::bad_handle, "double close");
  TIO_CO_RETURN_IF_ERROR(co_await flush_index());
  TIO_CO_RETURN_IF_ERROR(co_await plfs_->close_retried(ctx_, data_fd_));
  TIO_CO_RETURN_IF_ERROR(co_await plfs_->close_retried(ctx_, index_fd_));
  // Size dropping: the logical high water is encoded in the name, so stat
  // never needs index aggregation.
  if (plfs_->mount_.meta_batching) {
    // The dropping create and the openhost unlink are independent
    // mutations: issue them concurrently so they share one batch RPC.
    Status drop_st, host_st;
    sim::WaitGroup wg(plfs_->engine());
    auto dropping = [](Plfs& p, pfs::IoCtx c, std::string path, Status& out,
                       sim::WaitGroup& group) -> sim::Task<void> {
      auto r = co_await p.open_retried(c, std::move(path), OpenFlags::wr_create());
      if (r.ok()) {
        out = co_await p.close_retried(c, *r);
      } else {
        out = r.status();
      }
      group.done();
    };
    auto unlink_host = [](Plfs& p, pfs::IoCtx c, std::string path, Status& out,
                          sim::WaitGroup& group) -> sim::Task<void> {
      const Status st = co_await p.unlink_retried(c, std::move(path));
      // Replicated submits are at-least-once: a lost ack makes the retry
      // re-apply the unlink and see not_found. The record is per-rank, so
      // already-gone is success.
      if (!st.ok() && st.code() != Errc::not_found) out = st;
      group.done();
    };
    wg.add(2);
    plfs_->engine().spawn(
        dropping(*plfs_, ctx_, layout_.meta_dropping_path(rank_, high_water_), drop_st, wg));
    plfs_->engine().spawn(
        unlink_host(*plfs_, ctx_, layout_.openhost_record_path(rank_), host_st, wg));
    co_await wg.wait();
    TIO_CO_RETURN_IF_ERROR(drop_st);
    TIO_CO_RETURN_IF_ERROR(host_st);
  } else {
    auto drop = co_await plfs_->open_retried(ctx_, layout_.meta_dropping_path(rank_, high_water_),
                                             OpenFlags::wr_create());
    if (!drop.ok()) co_return drop.status();
    TIO_CO_RETURN_IF_ERROR(co_await plfs_->close_retried(ctx_, *drop));
    const Status host_gone =
        co_await plfs_->unlink_retried(ctx_, layout_.openhost_record_path(rank_));
    // See the batched branch: tolerate a lost-ack retry's not_found.
    if (!host_gone.ok() && host_gone.code() != Errc::not_found) co_return host_gone;
  }
  closed_ = true;
  co_return Status::Ok();
}

sim::Task<Result<std::vector<Plfs::IndexLogRef>>> Plfs::list_index_logs(
    pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  // A logical file must be a container (the access marker proves it);
  // otherwise reads of unlinked/never-written paths would "succeed" empty.
  TIO_CO_ASSIGN_OR_RETURN(bool container, co_await is_container(ctx, logical));
  if (!container) co_return error(Errc::not_found, logical);
  // Failover markers: stale.k in the canonical container means subdir.k was
  // (at least partly) placed off its hashed home by an MDS failover; union
  // the whole federation ring for those k. Only federated mounts pay the
  // extra canonical readdir; a replicated metadata service never strands a
  // placement, so the scan is skipped entirely.
  std::vector<char> stale(lay.num_subdirs(), 0);
  if (lay.num_backends() > 1 && !mount_.mds_replicated) {
    TIO_CO_ASSIGN_OR_RETURN(std::vector<pfs::DirEntry> canon,
                            co_await readdir_retried(ctx, lay.canonical_container()));
    for (const auto& e : canon) {
      std::size_t k = 0;
      if (!e.is_dir && parse_stale_marker_name(e.name, &k) && k < stale.size()) stale[k] = 1;
    }
  }
  std::vector<IndexLogRef> out;
  for (std::size_t k = 0; k < lay.num_subdirs(); ++k) {
    const std::size_t home = lay.subdir_backend(k);
    const std::size_t probes = stale[k] ? lay.num_backends() : 1;
    for (std::size_t j = 0; j < probes; ++j) {
      const std::string subdir = lay.subdir_path_on(k, (home + j) % lay.num_backends());
      auto entries = co_await readdir_retried(ctx, subdir);
      if (!entries.ok()) {
        if (entries.status().code() == Errc::not_found) continue;  // unused subdir
        co_return entries.status();
      }
      for (const auto& e : *entries) {
        std::uint32_t writer = 0;
        if (!e.is_dir && parse_index_log_name(e.name, &writer)) {
          out.push_back(IndexLogRef{path_join(subdir, e.name), writer});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const IndexLogRef& a, const IndexLogRef& b) { return a.writer < b.writer; });
  co_return out;
}

sim::Task<Result<std::shared_ptr<const std::vector<IndexEntry>>>> Plfs::read_index_log(
    pfs::IoCtx ctx, std::string logical, std::string path) {
  // Simulated costs are always paid in full; only the parsed host structure
  // is shared across readers, through the container-scoped cache.
  TIO_CO_ASSIGN_OR_RETURN(pfs::FileId fd, co_await open_retried(ctx, path, OpenFlags::ro()));
  auto data = co_await read_retried(ctx, fd, 0, std::numeric_limits<std::int64_t>::max());
  TIO_CO_RETURN_IF_ERROR(co_await close_retried(ctx, fd));
  if (!data.ok()) co_return data.status();
  const std::string container = path_normalize(logical);
  const std::uint64_t gen = cache_.generation(container);
  static Counter& log_bytes_read = counter("plfs.index.log_bytes_read");
  log_bytes_read.add(data->size());
  auto cached = cache_.get_log(container, path);
  if (cached == nullptr) {
    auto entries = decode_entries(*data);  // auto-detects wire v1 / v2
    if (!entries.ok()) co_return entries.status();
    cached = std::make_shared<const std::vector<IndexEntry>>(std::move(entries.value()));
    // Don't install if a writer invalidated the container mid-parse: this
    // copy reflects pre-invalidation bytes.
    if (cache_.generation(container) == gen) cache_.put_log(container, path, cached);
  }
  // Per-entry handling cost: charged on the decoded entry count (identical
  // across wire formats — compression shrinks bytes moved, not the entries
  // every reader still processes), and by every reader, cached or not.
  co_await engine().sleep(mount_.index_cpu_per_entry *
                          static_cast<std::int64_t>(cached->size()));
  co_return cached;
}

sim::Task<Result<IndexPtr>> Plfs::build_index_serial(pfs::IoCtx ctx, std::string logical) {
  const std::string container = path_normalize(logical);
  const std::uint64_t gen = cache_.generation(container);
  // Phase spans mirror Fig. 4's open-time breakdown: "index_read" covers
  // discovery plus every per-log read, "merge" the CPU merge of the runs.
  static const trace::SpanSite kReadSite("plfs.open", "plfs.open.index_read");
  static const trace::SpanSite kMergeSite("plfs.open", "plfs.open.merge");
  trace::Span read_span(engine(), kReadSite, ctx.rank);
  TIO_CO_ASSIGN_OR_RETURN(std::vector<IndexLogRef> logs, co_await list_index_logs(ctx, logical));
  IndexBuilder builder(mount_.index_backend);
  for (const auto& log : logs) {
    TIO_CO_ASSIGN_OR_RETURN(std::shared_ptr<const std::vector<IndexEntry>> entries,
                            co_await read_index_log(ctx, logical, log.path));
    builder.add_run(std::move(entries));
  }
  read_span.end();
  trace::Span merge_span(engine(), kMergeSite, ctx.rank);
  co_await engine().sleep(mount_.index_cpu_per_entry *
                          static_cast<std::int64_t>(builder.total_entries()));
  IndexPtr index = cache_.get_index(container);
  if (index == nullptr) {
    // Per-writer logs are timestamp-sorted runs; merge instead of re-sorting.
    index = builder.build();
    // Only cacheable if no writer touched the container while we aggregated.
    if (cache_.generation(container) == gen) cache_.put_index(container, index);
  }
  co_return index;
}

sim::Task<Result<IndexPtr>> Plfs::read_global_index(pfs::IoCtx ctx, const std::string& logical) {
  // The flattened file carries an integrity trailer (see index_builder.h),
  // so it gets its own read+verify path instead of read_index_log's
  // raw-records parse. Any integrity failure surfaces as io_error and the
  // aggregation strategy degrades to Parallel Index Read.
  ContainerLayout lay = layout(logical);
  const std::string container = path_normalize(logical);
  const std::string path = lay.global_index_path();
  const std::uint64_t gen = cache_.generation(container);
  static const trace::SpanSite kReadSite("plfs.open", "plfs.open.index_read");
  trace::Span read_span(engine(), kReadSite, ctx.rank);
  TIO_CO_ASSIGN_OR_RETURN(pfs::FileId fd, co_await open_retried(ctx, path, OpenFlags::ro()));
  auto data = co_await read_retried(ctx, fd, 0, std::numeric_limits<std::int64_t>::max());
  TIO_CO_RETURN_IF_ERROR(co_await close_retried(ctx, fd));
  if (!data.ok()) co_return data.status();
  static Counter& global_bytes_read = counter("plfs.index.global_bytes_read");
  global_bytes_read.add(data->size());
  auto cached = cache_.get_log(container, path);
  if (cached == nullptr) {
    auto entries = deserialize_trailed_entries(*data);
    if (!entries.ok()) co_return entries.status();
    cached = std::make_shared<const std::vector<IndexEntry>>(std::move(entries.value()));
    if (cache_.generation(container) == gen) cache_.put_log(container, path, cached);
  }
  co_await engine().sleep(mount_.index_cpu_per_entry *
                          static_cast<std::int64_t>(cached->size()));
  // The flattened file's records are already non-overlapping; one run.
  IndexBuilder builder(mount_.index_backend);
  builder.add_run(std::move(cached));
  co_return builder.build();
}

sim::Task<Status> Plfs::write_global_index(pfs::IoCtx ctx, const std::string& logical,
                                           const IndexView& index) {
  ContainerLayout lay = layout(logical);
  cache_.invalidate(path_normalize(logical));  // cached global-index log is stale
  const std::string path = lay.global_index_path();
  TIO_CO_ASSIGN_OR_RETURN(pfs::FileId fd, co_await open_retried(ctx, path, OpenFlags::wr_trunc()));
  auto bytes = serialize_entries_with_trailer(index.to_entries(), mount_.index_wire);
  static Counter& global_bytes_written = counter("plfs.index.global_bytes_written");
  global_bytes_written.add(bytes.size());
  auto written = co_await write_fully(ctx, fd, 0, DataView::literal(std::move(bytes)),
                                      path_op_key(path));
  const Status closed = co_await close_retried(ctx, fd);
  if (!written.ok()) co_return written.status();
  co_return closed;
}

sim::Task<Result<std::unique_ptr<ReadHandle>>> Plfs::open_read(pfs::IoCtx ctx,
                                                               std::string logical,
                                                               IndexPtr index) {
  ContainerLayout lay = layout(logical);
  if (index == nullptr) {
    // Original design: this reader aggregates every index log itself.
    TIO_CO_ASSIGN_OR_RETURN(index, co_await build_index_serial(ctx, logical));
  }
  co_return std::unique_ptr<ReadHandle>(
      new ReadHandle(*this, ctx, std::move(lay), std::move(index)));
}

sim::Task<Result<pfs::FileId>> ReadHandle::data_fd(std::uint32_t writer) {
  const auto it = data_fds_.find(writer);
  if (it != data_fds_.end()) co_return it->second;
  // The log normally lives on its hashed home backend; after an MDS
  // failover it may sit anywhere on the federation ring, so probe
  // (home + j) % B on not_found.
  const int rank = static_cast<int>(writer);
  const std::size_t home = layout_.subdir_backend(layout_.subdir_of_rank(rank));
  Result<pfs::FileId> fd = error(Errc::not_found, "no backend holds the data log");
  for (std::size_t j = 0; j < layout_.num_backends(); ++j) {
    fd = co_await plfs_->open_retried(
        ctx_, layout_.data_log_path_on(rank, (home + j) % layout_.num_backends()),
        OpenFlags::ro());
    if (fd.ok()) break;
    if (fd.status().code() != Errc::not_found) co_return fd.status();
  }
  if (!fd.ok()) co_return fd.status();
  data_fds_[writer] = *fd;
  co_return *fd;
}

sim::Task<Result<FragmentList>> ReadHandle::read(std::uint64_t offset, std::uint64_t len) {
  if (closed_) co_return error(Errc::bad_handle, "read on closed handle");
  FragmentList out;
  const std::uint64_t size = index_->logical_size();
  if (offset >= size) co_return out;  // EOF
  len = std::min(len, size - offset);

  std::uint64_t pos = offset;
  for (const auto& m : index_->lookup(offset, len)) {
    if (m.logical_offset > pos) {
      out.append(DataView::zeros(m.logical_offset - pos));  // unwritten gap
      pos = m.logical_offset;
    }
    TIO_CO_ASSIGN_OR_RETURN(pfs::FileId fd, co_await data_fd(m.writer));
    auto piece = co_await plfs_->read_retried(ctx_, fd, m.physical_offset, m.length);
    if (!piece.ok()) co_return piece.status();
    if (piece->size() != m.length) {
      co_return error(Errc::io_error, "data log shorter than its index claims");
    }
    for (const auto& frag : piece->fragments()) out.append(frag);
    pos += m.length;
  }
  if (pos < offset + len) out.append(DataView::zeros(offset + len - pos));
  co_return out;
}

sim::Task<Status> ReadHandle::close() {
  if (closed_) co_return error(Errc::bad_handle, "double close");
  for (const auto& [writer, fd] : data_fds_) {
    TIO_CO_RETURN_IF_ERROR(co_await plfs_->close_retried(ctx_, fd));
  }
  data_fds_.clear();
  closed_ = true;
  co_return Status::Ok();
}

sim::Task<Result<bool>> Plfs::is_container(pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  auto st = co_await stat_retried(ctx, lay.access_path());
  if (st.ok()) co_return true;
  if (st.status().code() == Errc::not_found) co_return false;
  co_return st.status();
}

sim::Task<Result<std::uint64_t>> Plfs::logical_size(pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  auto entries = co_await readdir_retried(ctx, lay.meta_dir());
  if (!entries.ok()) co_return entries.status();
  std::uint64_t size = 0;
  for (const auto& e : *entries) {
    std::uint32_t writer = 0;
    std::uint64_t s = 0;
    if (parse_meta_dropping_name(e.name, &writer, &s)) size = std::max(size, s);
  }
  co_return size;
}

sim::Task<Result<std::vector<pfs::DirEntry>>> Plfs::readdir(pfs::IoCtx ctx,
                                                            std::string logical_dir) {
  std::vector<pfs::DirEntry> out;
  for (const auto& backend : mount_.backends) {
    auto entries = co_await readdir_retried(ctx, path_join(backend, logical_dir));
    if (!entries.ok()) {
      if (entries.status().code() == Errc::not_found) continue;
      co_return entries.status();
    }
    for (const auto& e : *entries) {
      if (std::any_of(out.begin(), out.end(),
                      [&](const pfs::DirEntry& seen) { return seen.name == e.name; })) {
        continue;
      }
      pfs::DirEntry entry = e;
      if (e.is_dir) {
        TIO_CO_ASSIGN_OR_RETURN(bool container,
                                co_await is_container(ctx, path_join(logical_dir, e.name)));
        if (container) entry.is_dir = false;  // containers are logical files
      }
      out.push_back(std::move(entry));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const pfs::DirEntry& a, const pfs::DirEntry& b) { return a.name < b.name; });
  co_return out;
}

sim::Task<Status> Plfs::mkdir(pfs::IoCtx ctx, std::string logical_dir) {
  for (const auto& backend : mount_.backends) {
    TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, path_join(backend, logical_dir)));
  }
  co_return Status::Ok();
}

sim::Task<Status> Plfs::unlink(pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  cache_.invalidate(path_normalize(logical));
  TIO_CO_ASSIGN_OR_RETURN(bool container, co_await is_container(ctx, logical));
  if (!container) co_return error(Errc::not_found, logical);
  for (std::size_t b = 0; b < mount_.backends.size(); ++b) {
    const std::string root = lay.container_on(b);
    auto entries = co_await readdir_retried(ctx, root);
    if (!entries.ok()) {
      if (entries.status().code() == Errc::not_found) continue;
      co_return entries.status();
    }
    for (const auto& e : *entries) {
      const std::string child = path_join(root, e.name);
      if (e.is_dir) {
        auto inner = co_await readdir_retried(ctx, child);
        if (inner.ok()) {
          for (const auto& f : *inner) {
            TIO_CO_RETURN_IF_ERROR(co_await unlink_retried(ctx, path_join(child, f.name)));
          }
        }
        TIO_CO_RETURN_IF_ERROR(co_await rmdir_retried(ctx, child));
      } else {
        TIO_CO_RETURN_IF_ERROR(co_await unlink_retried(ctx, child));
      }
    }
    TIO_CO_RETURN_IF_ERROR(co_await rmdir_retried(ctx, root));
  }
  co_return Status::Ok();
}

}  // namespace tio::plfs
