// Move-only type-erased callable (std::move_only_function is C++23; we build
// on C++20). Used for simulator events, which capture move-only state such
// as coroutine tasks.
//
// Small callables (up to kInlineSize bytes, nothrow-move-constructible) are
// stored inline — the engine's timer/resume closures capture a coroutine
// handle or two and never touch the global allocator. Larger captures spill
// to the heap; spills are counted in the "common.fn.heap_spills" counter so
// a hot path that regresses into allocating is visible in bench output.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/stats.h"

namespace tio {

namespace detail {
inline Counter& movefn_spill_counter() {
  static Counter& c = counter("common.fn.heap_spills");
  return c;
}
}  // namespace detail

template <typename Sig>
class MoveFn;

template <typename R, typename... Args>
class MoveFn<R(Args...)> {
 public:
  // Room for four pointers: a coroutine handle plus capture state covers
  // every closure the simulator schedules.
  static constexpr std::size_t kInlineSize = 4 * sizeof(void*);
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  MoveFn() = default;
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, MoveFn>)
  MoveFn(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      obj_ = buf_;
      vt_ = &Ops<D, /*Inline=*/true>::vt;
    } else {
      obj_ = new D(std::forward<F>(f));
      vt_ = &Ops<D, /*Inline=*/false>::vt;
      detail::movefn_spill_counter().add();
    }
  }

  MoveFn(MoveFn&& other) noexcept { steal(other); }
  MoveFn& operator=(MoveFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  MoveFn(const MoveFn&) = delete;
  MoveFn& operator=(const MoveFn&) = delete;
  ~MoveFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  R operator()(Args... args) { return vt_->call(obj_, std::forward<Args>(args)...); }

  // True when the callable lives in the inline buffer (no heap allocation).
  bool uses_inline_storage() const { return vt_ != nullptr && obj_ == buf_; }

 private:
  template <typename D>
  static constexpr bool fits_inline = sizeof(D) <= kInlineSize &&
                                      alignof(D) <= kInlineAlign &&
                                      std::is_nothrow_move_constructible_v<D>;

  struct VTable {
    R (*call)(void*, Args&&...);
    // Inline: move-construct into `dst` and destroy `src`. Heap: unused.
    void (*relocate)(void* src, void* dst) noexcept;
    // Inline: destroy in place. Heap: delete.
    void (*destroy)(void*) noexcept;
    // Inline trivially copyable callables (the common case: a coroutine
    // handle and a capture or two) relocate by memcpy and skip destruction
    // — no indirect call on move or reset.
    bool trivial;
  };

  template <typename D, bool Inline>
  struct Ops {
    static constexpr VTable vt{
        [](void* o, Args&&... a) -> R {
          return (*static_cast<D*>(o))(std::forward<Args>(a)...);
        },
        [](void* src, void* dst) noexcept {
          if constexpr (Inline) {
            D* s = static_cast<D*>(src);
            ::new (dst) D(std::move(*s));
            s->~D();
          }
        },
        [](void* o) noexcept {
          if constexpr (Inline) {
            static_cast<D*>(o)->~D();
          } else {
            delete static_cast<D*>(o);
          }
        },
        Inline && std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>,
    };
  };

  void steal(MoveFn& other) noexcept {
    vt_ = other.vt_;
    if (!vt_) return;
    if (other.obj_ == other.buf_) {
      if (vt_->trivial) {
        std::memcpy(buf_, other.buf_, kInlineSize);
      } else {
        vt_->relocate(other.buf_, buf_);
      }
      obj_ = buf_;
    } else {
      obj_ = other.obj_;
    }
    other.vt_ = nullptr;
    other.obj_ = nullptr;
  }

  void reset() noexcept {
    if (vt_ && !vt_->trivial) vt_->destroy(obj_);
    vt_ = nullptr;
    obj_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  void* obj_ = nullptr;
  const VTable* vt_ = nullptr;
};

}  // namespace tio
