// Shared plumbing for the figure-reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stats.h"
#include "common/strutil.h"
#include "common/table.h"
#include "testbed/testbed.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"
#include "workloads/metadata.h"

namespace tio::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("   paper reference: %s\n\n", paper_ref.c_str());
}

// MB/s (decimal), the unit the paper plots.
inline double mbps(double bytes_per_sec) { return bytes_per_sec / 1e6; }

// Builds a fresh LANL-cluster rig (Sections III-V testbed).
inline testbed::Rig::Options lanl_rig(std::size_t num_mds = 1, std::size_t backends = 0) {
  testbed::Rig::Options o;
  o.cluster = testbed::lanl_cluster();
  o.pfs = testbed::lanl_pfs(num_mds);
  o.plfs_backends = backends;
  return o;
}

// Builds a fresh Cielo rig (Section VI testbed).
inline testbed::Rig::Options cielo_rig(std::size_t num_mds = 10, std::size_t backends = 0) {
  testbed::Rig::Options o;
  o.cluster = testbed::cielo();
  o.pfs = testbed::cielo_pfs(num_mds);
  o.plfs_backends = backends;
  return o;
}

// Doubling sweep capped at `max`, always including `max` itself.
inline std::vector<int> sweep(int from, int max) {
  std::vector<int> out;
  for (int v = from; v < max; v *= 2) out.push_back(v);
  if (out.empty() || out.back() != max) out.push_back(max);
  return out;
}

// Shared --index_backend flag (btree|flat) for the figure harnesses.
inline std::string* add_index_backend_flag(FlagSet& flags) {
  return flags.add_string("index_backend", "flat", "global index backend: btree|flat");
}

// Flag-value -> IndexBackend; exits with a usage message on bad input.
inline plfs::IndexBackend index_backend_or_die(const std::string& name) {
  plfs::IndexBackend backend = plfs::IndexBackend::flat;
  if (!plfs::parse_index_backend(name, backend)) {
    std::fprintf(stderr, "unknown --index_backend (want btree|flat): %s\n", name.c_str());
    std::exit(1);
  }
  return backend;
}

// Shared --fault_plan flag (see pfs/faulty_fs.h for the grammar; "none",
// "transient1", "stress", or key=value pairs).
inline std::string* add_fault_plan_flag(FlagSet& flags) {
  return flags.add_string("fault_plan", "none",
                          "fault plan: none|transient1|stress|key=value,...");
}

// Flag-value -> FaultPlan; exits with a usage message on bad input.
inline pfs::FaultPlan fault_plan_or_die(const std::string& spec) {
  auto plan = pfs::FaultPlan::parse(spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "bad --fault_plan: %s\n", plan.status().message().c_str());
    std::exit(1);
  }
  return std::move(plan.value());
}

// Fault/retry/degradation instrumentation accumulated during the run.
// stderr on purpose: stdout must stay byte-identical across runs whether or
// not a plan is active (the determinism check diffs it).
inline void print_fault_counters() {
  auto counters = counter_snapshot("plfs.fault");
  const auto retry = counter_snapshot("plfs.retry");
  const auto degrade = counter_snapshot("plfs.degrade");
  const auto direct = counter_snapshot("direct.retry");
  counters.insert(counters.end(), retry.begin(), retry.end());
  counters.insert(counters.end(), degrade.begin(), degrade.end());
  counters.insert(counters.end(), direct.begin(), direct.end());
  if (counters.empty()) return;
  std::fprintf(stderr, "\n-- fault/retry counters --\n");
  for (const auto& [name, value] : counters) {
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
}

// Host-side index/cache instrumentation accumulated during the run.
inline void print_index_counters() {
  const auto counters = counter_snapshot("plfs.index");
  if (counters.empty()) return;
  // stderr on purpose: build_ns is host wall time, and stdout must stay
  // byte-identical across runs (the determinism check diffs it).
  std::fprintf(stderr, "\n-- index counters (host-side) --\n");
  for (const auto& [name, value] : counters) {
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
}

// Wall-clock engine instrumentation: raw sim.engine.* counters plus the
// derived events-per-second figure the scaling sweeps are gated by. Written
// to stderr so figure tables on stdout stay byte-comparable across runs.
inline void print_sim_counters() {
  auto counters = counter_snapshot("sim.engine");
  const auto spills = counter_snapshot("common.fn");
  counters.insert(counters.end(), spills.begin(), spills.end());
  if (counters.empty()) return;
  std::fprintf(stderr, "\n-- engine counters (host-side) --\n");
  std::uint64_t events = 0, wall_ns = 0;
  for (const auto& [name, value] : counters) {
    if (name == "sim.engine.events") events = value;
    if (name == "sim.engine.run_wall_ns") wall_ns = value;
    std::fprintf(stderr, "%-36s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  if (events > 0 && wall_ns > 0) {
    std::fprintf(stderr, "%-36s %.3f\n", "sim.engine.events_per_sec_millions",
                 static_cast<double>(events) / (static_cast<double>(wall_ns) * 1e-9) / 1e6);
  }
}

}  // namespace tio::bench
