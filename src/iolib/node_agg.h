// Intra-node request aggregation for the collective-buffering layer.
//
// Kang et al. ("Improving MPI Collective I/O Performance With Intra-node
// Request Aggregation") observe that classic two-phase I/O ships every
// process's request list across the fabric even though most co-resident
// processes could have combined them for free: intra-node transport is
// orders of magnitude cheaper than a NIC crossing. The fix is a phase
// *before* the inter-node exchange — each node elects a leader that
// coalesces its co-residents' requests, so the fabric then carries
// `nodes x aggregators` messages instead of `ranks x aggregators`.
//
// This header holds the placement bookkeeping that phase needs: a NodePlan
// (who lives where, who leads each node) computed purely from the
// communicator's placement knowledge (mpi::Comm::node_of_rank — no
// communication), plus the message-census helper the observability
// counters use to classify a binomial gather's traffic without re-running
// it.
#pragma once

#include <cstdint>
#include <vector>

#include "mpisim/comm.h"

namespace tio::iolib {

// Node-locality view of a communicator. Node ids are dense indices over
// the distinct physical nodes the comm's ranks occupy, in order of first
// appearance by comm rank (block placement makes that ascending physical
// order). The leader of a node is its lowest comm rank.
struct NodePlan {
  std::vector<int> node_of;                // comm rank -> dense node id
  std::vector<std::vector<int>> members;   // node id -> comm ranks, ascending
  std::vector<int> rack_of;                // dense node id -> physical rack
  int my_node = 0;                         // dense node id of the caller
  int my_rack = 0;                         // physical rack of the caller

  static NodePlan build(const mpi::Comm& comm);

  int num_nodes() const { return static_cast<int>(members.size()); }
  int leader_of(int node) const { return members[node][0]; }
  int leader_of_rank(int rank) const { return leader_of(node_of[rank]); }
  bool is_leader(int rank) const { return leader_of_rank(rank) == rank; }

  // Rack-locality-aware aggregator placement: `num_aggs` distinct comm
  // ranks spread as evenly as possible across the racks the comm touches
  // (round-robin over racks in first-appearance order), and within a rack
  // over its nodes (leaders first, then seconds, ...). Keeps aggregator
  // fan-in balanced per ToR uplink, so an oversubscribed uplink is not hit
  // with the whole exchange at once the way classic stride placement
  // (cb_aggregator_rank) can when its stride aligns with rack boundaries.
  // Deterministic; requires 1 <= num_aggs <= comm size.
  std::vector<int> rack_aware_aggregators(int num_aggs) const;
};

// Message census of a binomial gather rooted at `root` over `comm`: every
// non-root rank sends exactly once (to its virtual-tree parent), so the
// traffic is a pure function of (size, root, placement). Adds the
// intra-/inter-node split to `intra`/`inter`. The collective layer calls
// this on the gather's root only, once per gather, so each message is
// counted exactly once.
void count_binomial_gather(const mpi::Comm& comm, int root, std::uint64_t* intra,
                           std::uint64_t* inter);

}  // namespace tio::iolib
