#include "sim/engine.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/task.h"

namespace tio::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now().to_ns(), 0);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.after(Duration::ms(3), [&] { order.push_back(3); });
  e.after(Duration::ms(1), [&] { order.push_back(1); });
  e.after(Duration::ms(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now().to_ns(), Duration::ms(3).to_ns());
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.after(Duration::ms(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine e;
  e.after(Duration::ms(1), [&] {
    EXPECT_THROW(e.at(TimePoint::from_ns(0), [] {}), std::logic_error);
  });
  e.run();
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine e;
  bool ran = false;
  e.after(Duration::ms(-5), [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now().to_ns(), 0);
}

TEST(Engine, NestedSchedulingAdvancesTime) {
  Engine e;
  TimePoint inner_time;
  e.after(Duration::ms(1), [&] {
    e.after(Duration::ms(2), [&] { inner_time = e.now(); });
  });
  e.run();
  EXPECT_EQ(inner_time.to_ns(), Duration::ms(3).to_ns());
}

Task<void> sleeper(Engine& e, Duration d, int id, std::vector<int>& log) {
  co_await e.sleep(d);
  log.push_back(id);
}

TEST(Engine, SpawnedProcessesRunAndFinish) {
  Engine e;
  std::vector<int> log;
  e.spawn(sleeper(e, Duration::ms(2), 2, log));
  e.spawn(sleeper(e, Duration::ms(1), 1, log));
  EXPECT_EQ(e.processes_alive(), 2u);
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.processes_alive(), 0u);
}

Task<int> add(Engine& e, int a, int b) {
  co_await e.sleep(Duration::us(10));
  co_return a + b;
}

Task<void> parent(Engine& e, int& out) {
  // Nested awaits: child tasks charge their virtual time to the parent.
  const int x = co_await add(e, 1, 2);
  const int y = co_await add(e, x, 10);
  out = y;
}

TEST(Engine, NestedTaskAwaitPropagatesValues) {
  Engine e;
  int out = 0;
  e.spawn(parent(e, out));
  e.run();
  EXPECT_EQ(out, 13);
  EXPECT_EQ(e.now().to_ns(), Duration::us(20).to_ns());
}

Task<void> thrower(Engine& e) {
  co_await e.sleep(Duration::ms(1));
  throw std::runtime_error("boom");
}

TEST(Engine, ProcessExceptionSurfacesFromRun) {
  Engine e;
  e.spawn(thrower(e));
  EXPECT_THROW(e.run(), std::runtime_error);
}

Task<void> catcher(Engine& e, bool& caught) {
  try {
    co_await thrower(e);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Engine, ChildTaskExceptionPropagatesToAwaiter) {
  Engine e;
  bool caught = false;
  e.spawn(catcher(e, caught));
  e.run();
  EXPECT_TRUE(caught);
}

Task<void> deep_chain(Engine& e, int depth) {
  if (depth == 0) {
    co_await e.sleep(Duration::ns(1));
    co_return;
  }
  co_await deep_chain(e, depth - 1);
}

TEST(Engine, DeepAwaitChainsDoNotOverflowStack) {
  Engine e;
  e.spawn(deep_chain(e, 100000));
  e.run();
  EXPECT_EQ(e.processes_alive(), 0u);
}

TEST(Engine, ManyProcessesScale) {
  Engine e;
  std::vector<int> log;
  constexpr int kProcs = 20000;
  for (int i = 0; i < kProcs; ++i) e.spawn(sleeper(e, Duration::us(i % 97), i, log));
  e.run();
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kProcs));
}

TEST(Engine, DeterministicEventCountAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::vector<int> log;
    for (int i = 0; i < 100; ++i) e.spawn(sleeper(e, Duration::us(i * 3 % 11), i, log));
    e.run();
    return std::make_pair(e.events_processed(), log);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.after(Duration::zero(), [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, YieldRunsBehindQueuedEvents) {
  Engine e;
  std::vector<int> order;
  e.spawn([](Engine& eng, std::vector<int>& log) -> Task<void> {
    log.push_back(1);
    co_await eng.yield();
    log.push_back(3);
  }(e, order));
  e.after(Duration::zero(), [&] { order.push_back(0); });
  e.run();
  // Spawn's start event precedes the raw event; the post-yield part runs last.
  EXPECT_EQ(order, (std::vector<int>{1, 0, 3}));
}

}  // namespace
}  // namespace tio::sim
