// Figure 5: read performance of PLFS vs direct PFS access across the six
// I/O kernels (Pixie3D, ARAMCO, IOR, MADbench, LANL 1, LANL 3).
//
// Paper shapes to reproduce:
//   5a Pixie3D  — direct wins small, PLFS scales better and wins large
//   5b ARAMCO   — PLFS up to ~8x below ~300 procs; direct wins at scale
//                 (strong scaling: index-aggregation time dominates)
//   5c IOR      — PLFS wins at all counts (up to ~4.5x)
//   5d MADbench — PLFS wins
//   5e LANL 1   — PLFS wins everywhere, max ~10x
//   5f LANL 3   — near parity; PLFS slightly ahead at the largest scale
// All PLFS reads use Parallel Index Read (chosen as the default).
//
// The collective-buffering kernels (5f, and the optional --noncontig
// table) honor the shared --cb-* flags, so the intra-node aggregation and
// data-sieving pipeline can be measured here directly; per-row iolib.cb.*
// counter deltas land in the --json report.
#include <array>

#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

namespace {

// Fabric preset applied to every rig; set once after flag parsing, before
// the shard pool starts (defaults = flat, byte-identical).
net::TopologyKind g_topology = net::TopologyKind::flat;
std::size_t g_racks = 1;
double g_oversubscription = 1.0;

double read_bw(const JobSpec& base, Access access, int procs) {
  testbed::Rig::Options opts = bench::lanl_rig();
  opts.cluster.topology = g_topology;
  opts.cluster.racks = g_racks;
  opts.cluster.oversubscription = g_oversubscription;
  testbed::Rig rig(opts);
  JobSpec spec = base;
  spec.target.access = access;
  spec.target.strategy = plfs::ReadStrategy::parallel_read;
  spec.drop_caches_before_read = true;  // restart reads are cold
  return run_job(rig, procs, spec).read.effective_bw();
}

struct Cell {
  double direct, plfs;
  // iolib.cb.* deltas over both cells' runs (zero for non-collective
  // kernels); local_value() so concurrent shard rows can't bleed in.
  std::uint64_t fabric_msgs, local_msgs, bytes_shipped, pfs_ops, sieve_joins;
};

struct KernelRows {
  std::string key;
  std::vector<int> procs;
  std::vector<Cell> cells;
};

KernelRows kernel_table(const std::string& key, const std::string& title,
                        const std::string& ref, const std::vector<int>& procs,
                        std::size_t shards, const std::function<JobSpec(int)>& make) {
  bench::print_header(title, ref);
  // Every (procs, access) cell is an independent simulation; spread the rows
  // across shard threads, submitting in the serial bench's execution order.
  std::vector<Cell> cells(procs.size());
  sim::ShardPool pool(shards);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const int n = procs[i];
    pool.submit([&cells, &make, i, n] {
      const auto cb_before = [] {
        return std::array<std::uint64_t, 5>{
            counter("iolib.cb.fabric_msgs").local_value(),
            counter("iolib.cb.local_msgs").local_value(),
            counter("iolib.cb.bytes_shipped").local_value(),
            counter("iolib.cb.pfs_ops").local_value(),
            counter("iolib.cb.sieve_joins").local_value()};
      };
      const auto before = cb_before();
      const JobSpec spec = make(n);
      cells[i].direct = read_bw(spec, Access::direct_n1, n);
      cells[i].plfs = read_bw(spec, Access::plfs_n1, n);
      const auto after = cb_before();
      cells[i].fabric_msgs = after[0] - before[0];
      cells[i].local_msgs = after[1] - before[1];
      cells[i].bytes_shipped = after[2] - before[2];
      cells[i].pfs_ops = after[3] - before[3];
      cells[i].sieve_joins = after[4] - before[4];
    });
  }
  pool.run_all();
  Table t({"procs", "direct MB/s", "PLFS MB/s", "PLFS/direct"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    t.add_row({std::to_string(procs[i]), Table::num(bench::mbps(cells[i].direct)),
               Table::num(bench::mbps(cells[i].plfs)),
               Table::num(cells[i].plfs / cells[i].direct, 2) + "x"});
  }
  t.print(std::cout);
  return KernelRows{key, procs, std::move(cells)};
}

}  // namespace

int main(int argc, char** argv) {
  std::setlocale(LC_ALL, "");  // stdout tables honor the user's locale; JSON must not
  FlagSet flags("fig5_kernels: kernel read bandwidth, PLFS vs direct");
  auto* max_procs = flags.add_i64("max-procs", 512, "largest process count");
  auto* scale_mib = flags.add_i64("scale-mib", 8,
                                  "per-process data scale in MiB (paper used up to 1 GB)");
  auto* shards_flag = bench::add_shards_flag(flags);
  const bench::TopologyFlags topo_flags = bench::add_topology_flags(flags);
  const bench::CbFlags cb_flags = bench::add_cb_flags(flags);
  auto* with_noncontig = flags.add_bool(
      "noncontig", false, "also run the noncontiguous field-access kernel (sieving showcase)");
  auto* json_path = flags.add_string("json", "", "also write results to this file as JSON");
  auto* trace_path = bench::add_trace_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  bench::start_trace(*trace_path);
  {
    net::ClusterConfig cluster = testbed::lanl_cluster();
    bench::apply_topology(topo_flags, cluster);
    g_topology = cluster.topology;
    g_racks = cluster.racks;
    g_oversubscription = cluster.oversubscription;
  }
  const std::size_t shards = bench::shards_or_die(*shards_flag);
  const auto procs = bench::sweep(32, static_cast<int>(*max_procs));
  const std::uint64_t scale = static_cast<std::uint64_t>(*scale_mib) << 20;
  const iolib::CbConfig cb = bench::cb_config_of(cb_flags);

  std::vector<KernelRows> results;

  // Pixie3D writes very large contiguous slabs (1 GB/proc in the paper):
  // scaled up 16x relative to the other kernels so slab sizes stay
  // representative and direct access can stream.
  results.push_back(kernel_table("pixie3d", "Fig. 5a — Pixie3D (pnetcdf, weak scaling)",
                                 "direct wins small; PLFS scales better and wins large", procs,
                                 shards, [&](int n) { return pixie3d(n, 16 * scale, 8, {}); }));

  // ARAMCO is strong scaling: the dataset is fixed, so per-process data
  // shrinks as procs grow while index-aggregation cost does not.
  results.push_back(kernel_table(
      "aramco", "Fig. 5b — ARAMCO (HDF5, strong scaling)",
      "PLFS up to ~8x at low counts; direct wins at scale", procs, shards, [&](int n) {
        (void)n;
        return aramco(n, 8 * scale, 1_MiB, {});
      }));

  results.push_back(kernel_table("ior", "Fig. 5c — IOR (N-1, 1 MiB records)",
                                 "PLFS wins at all process counts (up to ~4.5x)", procs, shards,
                                 [&](int n) {
                                   (void)n;
                                   JobSpec spec;
                                   spec.file = "ior";
                                   spec.ops = strided_ops(scale, 1_MiB);
                                   return spec;
                                 }));

  results.push_back(kernel_table("madbench", "Fig. 5d — MADbench (out-of-core matrices)",
                                 "PLFS wins", procs, shards, [&](int n) {
                                   (void)n;
                                   return madbench(scale / 2, 2, {});
                                 }));

  results.push_back(kernel_table("lanl1", "Fig. 5e — LANL 1 (weak scaling, ~500 KB strided)",
                                 "PLFS wins everywhere; paper max ~10x at 384 procs", procs,
                                 shards, [&](int n) {
                                   (void)n;
                                   return lanl1(scale, {});
                                 }));

  results.push_back(kernel_table(
      "lanl3", "Fig. 5f — LANL 3 (strong scaling, 1 KiB records, collective buffering)",
      "near parity; PLFS slightly ahead at the largest scale", procs, shards,
      [&](int n) { return lanl3(n, 16 * scale, {}, cb); }));

  if (*with_noncontig) {
    // Off by default so the six-table stdout stays byte-identical to the
    // historical output; the sieving sweep turns it on.
    results.push_back(kernel_table(
        "noncontig", "Noncontig — field access (1 KiB fields, 4 KiB elements)",
        "request runs leave holes; read-side sieving collapses pfs ops", procs, shards,
        [&](int n) { return noncontig(n, 16 * scale, 1024, 4096, {}, cb); }));
  }

  if (!json_path->empty()) {
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open --json file: %s\n", json_path->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig5_kernels\",\n");
    std::fprintf(f,
                 "  \"config\": {\"max_procs\": %lld, \"scale_mib\": %lld, \"shards\": %zu, "
                 "\"cb_aggregators\": %lld, \"cb_buffer_mib\": %lld, \"cb_node_agg\": %s, "
                 "\"cb_sieve_threshold\": %s, \"noncontig\": %s},\n",
                 static_cast<long long>(*max_procs), static_cast<long long>(*scale_mib), shards,
                 static_cast<long long>(*cb_flags.aggregators),
                 static_cast<long long>(*cb_flags.buffer_mib),
                 *cb_flags.node_agg ? "true" : "false",
                 json_double(*cb_flags.sieve_threshold, 4).c_str(),
                 *with_noncontig ? "true" : "false");
    std::fprintf(f, "  \"kernels\": [");
    for (std::size_t k = 0; k < results.size(); ++k) {
      const KernelRows& kr = results[k];
      std::fprintf(f, "%s\n    {\"kernel\": \"%s\", \"rows\": [", k ? "," : "", kr.key.c_str());
      for (std::size_t i = 0; i < kr.cells.size(); ++i) {
        const Cell& c = kr.cells[i];
        std::fprintf(f,
                     "%s\n      {\"procs\": %d, \"direct_mbps\": %s, \"plfs_mbps\": %s, "
                     "\"cb\": {\"fabric_msgs\": %llu, \"local_msgs\": %llu, "
                     "\"bytes_shipped\": %llu, \"pfs_ops\": %llu, \"sieve_joins\": %llu}}",
                     i ? "," : "", kr.procs[i], json_double(bench::mbps(c.direct), 3).c_str(),
                     json_double(bench::mbps(c.plfs), 3).c_str(),
                     static_cast<unsigned long long>(c.fabric_msgs),
                     static_cast<unsigned long long>(c.local_msgs),
                     static_cast<unsigned long long>(c.bytes_shipped),
                     static_cast<unsigned long long>(c.pfs_ops),
                     static_cast<unsigned long long>(c.sieve_joins));
      }
      std::fprintf(f, "\n    ]}");
    }
    std::fprintf(f, "\n  ],\n");
    bench::json_counters(f);
    bench::json_histograms(f);
    std::fprintf(f, "  \"schema\": 2\n}\n");
    std::fclose(f);
  }

  bench::finish_trace(*trace_path);
  bench::print_cb_counters();
  bench::print_topo_counters();
  bench::print_histograms();
  bench::print_sim_counters();
  return 0;
}
