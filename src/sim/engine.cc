#include "sim/engine.h"

#include <chrono>
#include <limits>
#include <stdexcept>

#include "common/stats.h"
#include "sim/frame_pool.h"

namespace tio::sim {
namespace {

// Self-destroying driver coroutine that owns a detached process's Task.
// Its frame comes from the same recycling pool as Task frames.
struct Driver {
  struct promise_type : PooledFrame {
    Driver get_return_object() {
      return Driver{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }  // frame self-destructs
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
  std::coroutine_handle<promise_type> h;
};

Driver drive(Engine* engine, Task<void> process) {
  struct Done {
    Engine* engine;
    ~Done() { engine->notify_process_finished(); }
  } done{engine};
  try {
    co_await std::move(process);
  } catch (...) {
    engine->record_process_error(std::current_exception());
  }
}

// The engine currently dispatching an event on this thread (set around the
// callback in step()); backs Engine::is_current().
thread_local const Engine* t_current_engine = nullptr;

struct CurrentEngineScope {
  const Engine* prev;
  explicit CurrentEngineScope(const Engine* e) : prev(t_current_engine) {
    t_current_engine = e;
  }
  ~CurrentEngineScope() { t_current_engine = prev; }
};

}  // namespace

Engine::~Engine() = default;

bool Engine::is_current() const { return t_current_engine == this; }

void Engine::at(TimePoint t, MoveFn<void()> fn) {
  if (t < now_) throw std::logic_error("Engine::at: scheduling into the past");
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    ++stats_.pool_hits;
  } else {
    if (slab_size_ > kIdxMask) {
      throw std::length_error("Engine::at: event slab exhausted");
    }
    if ((slab_size_ >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<MoveFn<void()>[]>(kChunkSize));
    }
    idx = slab_size_++;
    ++stats_.pool_misses;
  }
  slot(idx) = std::move(fn);
  ++seq_;
  if (t == now_) {
    today_.push_back(idx);  // runs after the heap's now_-entries; see engine.h
  } else {
    heap_.push(HeapItem{t.to_ns(), (seq_ << kIdxBits) | idx});
  }
  const std::size_t pending = heap_.size() + (today_.size() - today_head_);
  if (pending > stats_.peak_queue) stats_.peak_queue = pending;
}

void Engine::after(Duration d, MoveFn<void()> fn) {
  const std::int64_t delta = d < Duration::zero() ? 0 : d.to_ns();
  std::int64_t t;
  if (__builtin_add_overflow(now_.to_ns(), delta, &t)) {
    t = std::numeric_limits<std::int64_t>::max();  // saturate, don't wrap
  }
  at(TimePoint::from_ns(t), std::move(fn));
}

void Engine::spawn(Task<void> process) {
  ++processes_alive_;
  const auto h = drive(this, std::move(process)).h;
  after(Duration::zero(), [h] { h.resume(); });
}

bool Engine::step() {
  std::uint32_t idx;
  const bool have_today = today_head_ < today_.size();
  if (have_today && (heap_.empty() || heap_.top().when_ns > now_.to_ns())) {
    // All heap entries at now_ predate (out-sequence) anything in the FIFO,
    // so the FIFO only runs once the heap has moved past the current time.
    idx = today_[today_head_++];
    if (today_head_ == today_.size()) {
      today_.clear();
      today_head_ = 0;
    }
  } else {
    if (heap_.empty()) return false;
    // Start pulling the winning callable's cache line while the sift-down
    // in pop_top is still running; the slot is a random access into the slab.
    __builtin_prefetch(&slot(static_cast<std::uint32_t>(heap_.top().key & kIdxMask)));
    HeapItem item;
    heap_.pop_top(item);
    idx = static_cast<std::uint32_t>(item.key & kIdxMask);
    now_ = TimePoint::from_ns(item.when_ns);
  }
  ++events_processed_;
  // Move the callable out and release the slot before running: the callback
  // may schedule new events, and the freed slot lets it reuse this one.
  MoveFn<void()> fn = std::move(slot(idx));
  free_.push_back(idx);
  if (fn) {
    CurrentEngineScope scope(this);
    fn();
  }
  return true;
}

std::int64_t Engine::next_event_ns() const {
  std::int64_t t = std::numeric_limits<std::int64_t>::max();
  if (!heap_.empty()) t = heap_.top().when_ns;
  // FIFO entries run at now_, and heap entries never sort before now_.
  if (today_head_ < today_.size()) t = now_.to_ns();
  return t;
}

std::uint64_t Engine::run_until(std::int64_t horizon_ns) {
  const std::uint64_t start = events_processed_;
  while (next_event_ns() < horizon_ns && step()) {
  }
  return events_processed_ - start;
}

void Engine::rethrow_pending_error() {
  if (process_error_) {
    auto err = std::exchange(process_error_, nullptr);
    std::rethrow_exception(err);
  }
}

std::uint64_t Engine::run() {
  // One span per run(): the engine-level timeline every rank-level span
  // nests inside when a trace is being collected. Per-event dispatch spans
  // are deliberately absent — they are zero-length in virtual time and
  // their volume (millions per run) would dwarf everything else; event
  // dispatch is observable through sim.engine.events and this run span.
  static const trace::SpanSite kRunSite("sim.engine", "sim.engine.run");
  trace::Span run_span(*this, kRunSite);
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t start = events_processed_;
  while (step()) {
  }
  run_span.end();
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  counter("sim.engine.run_wall_ns").add(static_cast<std::uint64_t>(wall_ns));
  publish_counters();
  rethrow_pending_error();
  return events_processed_ - start;
}

void Engine::publish_counters() {
  const auto flush = [](const char* name, std::uint64_t total, std::uint64_t& published) {
    if (total > published) {
      counter(name).add(total - published);
      published = total;
    }
  };
  flush("sim.engine.events", events_processed_, published_events_);
  flush("sim.engine.event_pool_hits", stats_.pool_hits, published_.pool_hits);
  flush("sim.engine.event_pool_misses", stats_.pool_misses, published_.pool_misses);
  // Peak pending events across every engine in the process (max, not sum).
  Counter& peak = counter("sim.engine.queue_peak");
  if (stats_.peak_queue > peak.value()) peak.add(stats_.peak_queue - peak.value());
  FramePool::publish_counters();
}

}  // namespace tio::sim
