# Empty dependencies file for tio_plfs.
# This may be replaced when dependencies are built.
