// Zero-cost in-memory file system.
//
// Implements the same FsClient interface and POSIX-ish semantics as SimPfs
// but charges no virtual time. Used for fast unit tests of the middleware
// and as the reference implementation that SimPfs semantics are
// property-tested against.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "pfs/extent_map.h"
#include "pfs/fs_client.h"
#include "pfs/namespace.h"

namespace tio::localfs {

class MemFs : public pfs::FsClient {
 public:
  explicit MemFs(sim::Engine& engine) : engine_(engine) {}

  sim::Task<Result<pfs::FileId>> open(pfs::IoCtx ctx, std::string path,
                                      pfs::OpenFlags flags) override;
  sim::Task<Status> close(pfs::IoCtx ctx, pfs::FileId file) override;
  sim::Task<Result<std::uint64_t>> write(pfs::IoCtx ctx, pfs::FileId file, std::uint64_t offset,
                                         DataView data) override;
  sim::Task<Result<FragmentList>> read(pfs::IoCtx ctx, pfs::FileId file, std::uint64_t offset,
                                       std::uint64_t len) override;
  sim::Task<Status> mkdir(pfs::IoCtx ctx, std::string path) override;
  sim::Task<Status> rmdir(pfs::IoCtx ctx, std::string path) override;
  sim::Task<Status> unlink(pfs::IoCtx ctx, std::string path) override;
  sim::Task<Status> rename(pfs::IoCtx ctx, std::string from, std::string to) override;
  sim::Task<Result<pfs::StatInfo>> stat(pfs::IoCtx ctx, std::string path) override;
  sim::Task<Result<std::vector<pfs::DirEntry>>> readdir(pfs::IoCtx ctx,
                                                        std::string path) override;
  sim::Engine& engine() override { return engine_; }

  pfs::Namespace& ns() { return ns_; }

 private:
  struct Object {
    pfs::ExtentMap data;
    std::uint64_t size = 0;
    TimePoint mtime;
  };
  struct OpenFile {
    pfs::ObjectId oid;
    pfs::OpenFlags flags;
  };

  sim::Engine& engine_;
  pfs::Namespace ns_;
  std::unordered_map<pfs::ObjectId, Object> objects_;
  std::unordered_map<pfs::FileId, OpenFile> open_files_;
  pfs::FileId next_file_id_ = 1;
};

}  // namespace tio::localfs
