#include "iolib/node_agg.h"

#include <stdexcept>
#include <unordered_map>

namespace tio::iolib {

NodePlan NodePlan::build(const mpi::Comm& comm) {
  NodePlan plan;
  const int n = comm.size();
  plan.node_of.resize(n);
  std::unordered_map<std::size_t, int> dense;  // physical node -> dense id
  dense.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    const std::size_t phys = comm.node_of_rank(r);
    auto [it, inserted] = dense.emplace(phys, static_cast<int>(plan.members.size()));
    if (inserted) {
      plan.members.emplace_back();
      plan.rack_of.push_back(static_cast<int>(comm.rack_of_rank(r)));
    }
    plan.node_of[r] = it->second;
    plan.members[it->second].push_back(r);
  }
  plan.my_node = plan.node_of[comm.rank()];
  plan.my_rack = plan.rack_of[plan.my_node];
  return plan;
}

std::vector<int> NodePlan::rack_aware_aggregators(int num_aggs) const {
  int total = 0;
  for (const auto& m : members) total += static_cast<int>(m.size());
  if (num_aggs < 1 || num_aggs > total) {
    throw std::invalid_argument("rack_aware_aggregators: bad aggregator count");
  }
  // Racks in first-appearance order (dense node ids are already in
  // first-appearance order, so a scan preserves it).
  std::vector<int> racks;                       // distinct racks, appearance order
  std::vector<std::vector<int>> rack_nodes;     // rack slot -> dense node ids
  std::unordered_map<int, int> rack_slot;
  for (int node = 0; node < num_nodes(); ++node) {
    auto [it, inserted] = rack_slot.emplace(rack_of[node], static_cast<int>(racks.size()));
    if (inserted) {
      racks.push_back(rack_of[node]);
      rack_nodes.emplace_back();
    }
    rack_nodes[it->second].push_back(node);
  }
  // Per-rack candidate order: every node's leader first, then every node's
  // second rank, and so on — aggregators land on distinct nodes as long as
  // the rack has nodes to spare.
  std::vector<std::vector<int>> candidates(racks.size());
  for (std::size_t s = 0; s < racks.size(); ++s) {
    std::size_t depth = 0;
    for (bool any = true; any; ++depth) {
      any = false;
      for (const int node : rack_nodes[s]) {
        if (depth < members[node].size()) {
          candidates[s].push_back(members[node][depth]);
          any = true;
        }
      }
    }
  }
  // Deal aggregator slots round-robin across racks.
  std::vector<int> aggs;
  aggs.reserve(static_cast<std::size_t>(num_aggs));
  std::vector<std::size_t> next(racks.size(), 0);
  for (std::size_t s = 0; aggs.size() < static_cast<std::size_t>(num_aggs);
       s = (s + 1) % racks.size()) {
    if (next[s] < candidates[s].size()) aggs.push_back(candidates[s][next[s]++]);
  }
  return aggs;
}

void count_binomial_gather(const mpi::Comm& comm, int root, std::uint64_t* intra,
                           std::uint64_t* inter) {
  const int n = comm.size();
  // Virtual rank v sends exactly once, to parent v - lowbit(v) (see
  // Comm::gather); translate back to comm ranks and classify by node.
  for (int v = 1; v < n; ++v) {
    const int src = (v + root) % n;
    const int parent = v - (v & -v);
    const int dst = (parent + root) % n;
    if (comm.node_of_rank(src) == comm.node_of_rank(dst)) {
      ++*intra;
    } else {
      ++*inter;
    }
  }
}

}  // namespace tio::iolib
