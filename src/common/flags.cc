#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <charconv>

#include "common/strutil.h"

namespace tio {

int64_t* FlagSet::add_i64(std::string name, int64_t def, std::string help) {
  int64_t* slot = &(i64s_[name] = def);
  flags_[name] = Flag{std::move(help), std::to_string(def), false,
                      [slot](std::string_view v) {
                        auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), *slot);
                        return ec == std::errc{} && p == v.data() + v.size();
                      }};
  return slot;
}

double* FlagSet::add_f64(std::string name, double def, std::string help) {
  double* slot = &(f64s_[name] = def);
  flags_[name] = Flag{std::move(help), str_printf("%g", def), false,
                      [slot](std::string_view v) {
                        char* end = nullptr;
                        const std::string s(v);
                        *slot = std::strtod(s.c_str(), &end);
                        return end == s.c_str() + s.size() && !s.empty();
                      }};
  return slot;
}

bool* FlagSet::add_bool(std::string name, bool def, std::string help) {
  bool* slot = &(bools_[name] = def);
  flags_[name] = Flag{std::move(help), def ? "true" : "false", true,
                      [slot](std::string_view v) {
                        if (v == "true" || v == "1" || v.empty()) { *slot = true; return true; }
                        if (v == "false" || v == "0") { *slot = false; return true; }
                        return false;
                      }};
  return slot;
}

std::string* FlagSet::add_string(std::string name, std::string def, std::string help) {
  std::string* slot = &(strings_[name] = std::move(def));
  flags_[name] = Flag{std::move(help), *slot, false,
                      [slot](std::string_view v) { *slot = std::string(v); return true; }};
  return slot;
}

Status FlagSet::set_flag(std::string_view name, std::string_view value) {
  const auto it = flags_.find(std::string(name));
  if (it == flags_.end()) return error(Errc::invalid, "unknown flag --" + std::string(name));
  if (!it->second.set(value)) {
    return error(Errc::invalid,
                 "bad value '" + std::string(value) + "' for flag --" + std::string(name));
  }
  return Status::Ok();
}

Status FlagSet::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (!arg.starts_with("--")) return error(Errc::invalid, "unexpected arg " + std::string(arg));
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      TIO_RETURN_IF_ERROR(set_flag(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    // --no-name for bools.
    if (arg.starts_with("no-")) {
      const auto it = flags_.find(std::string(arg.substr(3)));
      if (it != flags_.end() && it->second.is_bool) {
        TIO_RETURN_IF_ERROR(set_flag(arg.substr(3), "false"));
        continue;
      }
    }
    const auto it = flags_.find(std::string(arg));
    if (it != flags_.end() && it->second.is_bool) {
      TIO_RETURN_IF_ERROR(set_flag(arg, "true"));
      continue;
    }
    if (i + 1 >= argc) return error(Errc::invalid, "missing value for --" + std::string(arg));
    TIO_RETURN_IF_ERROR(set_flag(arg, argv[++i]));
  }
  return Status::Ok();
}

std::string FlagSet::usage() const {
  std::string out = help_;
  if (!out.empty() && out.back() != '\n') out += '\n';
  for (const auto& [name, f] : flags_) {
    out += str_printf("  --%-24s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                      f.default_repr.c_str());
  }
  return out;
}

}  // namespace tio
