// Deterministic pseudo-random number generation (SplitMix64 + xoshiro256**).
//
// Every stochastic choice in the simulator flows through an Rng seeded from
// the run configuration, so simulations are exactly reproducible.
#pragma once

#include <array>
#include <cstdint>

namespace tio {

// Stateless 64-bit mix; also used as the content function for pattern
// buffers and for static federation hashing.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t x = seed;
    for (auto& w : s_) w = (x = splitmix64(x));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). Unbiased enough for simulation (n << 2^64).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  // Uniform in [lo, hi].
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }
  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  bool chance(double p) { return uniform() < p; }

  // Child generator with an independent stream; used to give every simulated
  // rank / server its own deterministic stream.
  Rng fork(std::uint64_t stream) const {
    return Rng(hash_combine(s_[0] ^ s_[3], stream));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace tio
