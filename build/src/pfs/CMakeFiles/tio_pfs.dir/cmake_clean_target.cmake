file(REMOVE_RECURSE
  "libtio_pfs.a"
)
