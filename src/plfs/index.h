// PLFS index machinery.
//
// Every process writing a PLFS logical file appends its data to a private
// log and records, per write, an IndexEntry mapping the logical extent to
// (writer, physical offset in that writer's data log, timestamp). Reading
// the logical file requires the union of all writers' entries — the global
// Index — with overlaps resolved by timestamp (PLFS defers write resolution
// from write time to read time; the paper's note 1).
//
// The Index also performs entry compression: adjacent entries from the same
// writer that are contiguous both logically and physically collapse into
// one, so well-behaved sequential/strided patterns have tiny indices.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/dataview.h"
#include "common/status.h"

namespace tio::plfs {

struct IndexEntry {
  std::uint64_t logical_offset = 0;
  std::uint64_t length = 0;
  std::uint64_t physical_offset = 0;  // within the writer's data log
  std::int64_t timestamp_ns = 0;
  std::uint32_t writer = 0;  // rank/pid owning data.<writer> / index.<writer>

  static constexpr std::uint64_t kSerializedSize = 40;
  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

// Fixed-record serialization of entry batches (the on-"disk" format of
// index.<writer> logs and of the flattened global index file).
std::vector<std::byte> serialize_entries(const std::vector<IndexEntry>& entries);
void append_serialized(std::vector<std::byte>& out, const IndexEntry& entry);
// Parses a whole buffer of records; a trailing partial record is an error.
Result<std::vector<IndexEntry>> deserialize_entries(const FragmentList& data);

// The queryable global index.
class Index {
 public:
  // Builds from an unordered entry pool: sorts by timestamp (ties by writer)
  // so that later writes win, then inserts with splitting + compression.
  // `compress` exists for the ablation bench; production callers leave it on.
  static Index build(std::vector<IndexEntry> entries, bool compress = true);

  struct Mapping {
    std::uint64_t logical_offset;
    std::uint64_t length;
    std::uint32_t writer;
    std::uint64_t physical_offset;
    friend bool operator==(const Mapping&, const Mapping&) = default;
  };

  // Mappings covering [offset, offset+len), clipped, in logical order.
  // Unwritten gaps are simply absent from the result (they read as zeros).
  std::vector<Mapping> lookup(std::uint64_t offset, std::uint64_t len) const;

  // One past the highest written logical byte.
  std::uint64_t logical_size() const;
  std::size_t mapping_count() const { return map_.size(); }

  // Re-serializes the (compressed) index for broadcast/flatten costing.
  std::vector<IndexEntry> to_entries() const;
  std::uint64_t serialized_bytes() const { return map_.size() * IndexEntry::kSerializedSize; }

 private:
  void insert(const IndexEntry& e, bool compress);
  // key = logical offset; entries non-overlapping.
  std::map<std::uint64_t, Mapping> map_;
};

}  // namespace tio::plfs
