// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a (time, sequence)-ordered event
// queue; ties are broken by insertion order, so runs are bit-reproducible.
// Simulated processes are Task<void> coroutines spawned on the engine; they
// advance the clock only by awaiting timers, resources, and channels.
//
// Hot-path layout: event callbacks live in a pooled slab (freed slots are
// reused, so a steady-state simulation stops allocating), and the ready
// queue is a 4-ary min-heap of 16-byte (time, seq|slab-index) records —
// comparisons never leave the heap array, sifts move trivially copyable
// records instead of type-erased closures, and each 4-ary child group is
// exactly one cache line. Events scheduled at the current time (wakeups,
// spawns) skip the heap entirely via a FIFO. Closure state is stored
// inline in MoveFn's small buffer, so scheduling a timer allocates nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/dheap.h"
#include "common/function.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/units.h"
#include "sim/task.h"

namespace tio::sim {

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 0x5eed)
      : trace_pid_(trace::Tracer::instance().next_pid()), rng_(seed) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  TimePoint now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now).
  void at(TimePoint t, MoveFn<void()> fn);
  // Schedules `fn` after `d` (negative delays clamp to now; delays that
  // would overflow the 64-bit nanosecond clock saturate to the far future).
  void after(Duration d, MoveFn<void()> fn);

  // Awaitable timer: co_await engine.sleep(d).
  struct SleepAwaiter {
    Engine* engine;
    Duration d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->after(d, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  SleepAwaiter sleep(Duration d) { return SleepAwaiter{this, d}; }

  // Reschedules the caller at the current time, behind already-queued events
  // (a fairness yield).
  SleepAwaiter yield() { return SleepAwaiter{this, Duration::zero()}; }

  // Starts a detached process. The coroutine frame is owned by the engine
  // and released when the process finishes. Start happens via the event
  // queue at the current time.
  void spawn(Task<void> process);

  // Runs until the event queue is empty. Throws if a detached process threw.
  // Returns the number of events processed. Also publishes sim.engine.*
  // counters (events, wall time, pool and queue statistics).
  std::uint64_t run();
  // Processes a single event; returns false when the queue is empty.
  bool step();

  // Sharded-execution hooks (sim/sharded.h) — the conservative-window
  // driver interleaves engines one bounded window at a time.
  //
  // Virtual time of the next pending event; INT64_MAX when idle.
  std::int64_t next_event_ns() const;
  // Processes events with time strictly before `horizon_ns` (the exclusive
  // window edge), then stops; returns the number of events run. Does not
  // publish counters or rethrow process errors — the window driver does
  // both once, at end of run.
  std::uint64_t run_until(std::int64_t horizon_ns);
  // Flushes this engine's deltas into the process-global sim.engine.*
  // counters (run() does this automatically; window drivers call it once
  // at the end).
  void publish_counters();
  // Rethrows (and clears) the first error a detached process recorded.
  void rethrow_pending_error();
  // True while this engine is dispatching an event on the calling thread.
  // Sync primitives assert this in debug builds: a coroutine bound to an
  // engine must only await on the shard thread currently running it.
  bool is_current() const;

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t processes_alive() const { return processes_alive_; }

  struct QueueStats {
    std::uint64_t pool_hits = 0;    // event nodes reused from the free list
    std::uint64_t pool_misses = 0;  // slab growth (allocation fallback)
    std::size_t peak_queue = 0;     // most events pending at once
  };
  const QueueStats& queue_stats() const { return stats_; }

  Rng& rng() { return rng_; }
  Rng fork_rng(std::uint64_t stream) const { return rng_.fork(stream); }

  // Trace "process" id of this engine: each Engine is its own process in
  // exported Chrome traces, so successive rigs don't overlap timelines.
  std::uint32_t trace_pid() const { return trace_pid_; }

  // Internal: called by the detached-process driver.
  void notify_process_finished() { --processes_alive_; }
  void record_process_error(std::exception_ptr e) {
    if (!process_error_) process_error_ = std::move(e);
  }

 private:
  // Heap records carry the full ordering key; the callable stays in the
  // slab so sift operations never move or inspect it. The sequence number
  // and slot index pack into one word (seq in the high bits, so comparing
  // `key` IS comparing seq — indices only differ when seqs do), keeping
  // records at 16 bytes: four per cache line, one line per 4-ary child
  // group.
  static constexpr std::uint32_t kIdxBits = 24;  // up to ~16.7M pending events
  static constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << kIdxBits) - 1;
  struct HeapItem {
    std::int64_t when_ns;
    std::uint64_t key;  // (seq << kIdxBits) | slot index
  };
  struct ItemLess {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
      return a.key < b.key;
    }
  };

  // Chunked slab of pending callables: growth appends a fixed-size chunk,
  // so existing slots never move (no per-element relocation on growth) and
  // freed slots are recycled through free_.
  static constexpr std::uint32_t kChunkShift = 12;  // 4096 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  MoveFn<void()>& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  std::vector<std::unique_ptr<MoveFn<void()>[]>> chunks_;
  std::uint32_t slab_size_ = 0;
  std::vector<std::uint32_t> free_;
  DaryHeap<HeapItem, ItemLess> heap_;
  // Events scheduled at exactly now_ (wakeups, spawns, yields — the most
  // common schedule in a sync-heavy simulation) bypass the heap: a FIFO
  // preserves their seq order, and every heap entry at the same virtual
  // time was inserted earlier (while now_ was smaller), so draining the
  // heap's now_-entries before the FIFO reproduces (time, seq) order
  // exactly at O(1) per event instead of O(log n).
  std::vector<std::uint32_t> today_;
  std::size_t today_head_ = 0;
  TimePoint now_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t processes_alive_ = 0;
  std::exception_ptr process_error_;
  QueueStats stats_;
  QueueStats published_;             // stats already flushed to the registry
  std::uint64_t published_events_ = 0;
  std::uint32_t trace_pid_ = 0;
  Rng rng_;
};

}  // namespace tio::sim
