// Central allocation of the mpisim user-tag space.
//
// Comm reserves everything at and above kCollectiveTagLimit for its
// internal collective operations; user subsystems (collective buffering,
// the Raft metadata service, ...) must carve their point-to-point tags out
// of the space below it. Historically each subsystem hand-picked constants
// (collective buffering used 1000 and 300000-700000) and nothing stopped a
// new subsystem from silently colliding. Every block now lives here, as a
// [base, base+size) range, and the static_asserts below prove pairwise
// disjointness and containment under the collective limit at compile time.
//
// To add a subsystem: define its TagBlock, append it to kAllTagBlocks, and
// derive every tag the subsystem sends as `kYourBlock.base + offset` with
// `offset < kYourBlock.size`.
#pragma once

namespace tio::mpi {

struct TagBlock {
  int base = 0;
  int size = 0;
  constexpr int end() const { return base + size; }
  constexpr bool contains(int tag) const { return tag >= base && tag < end(); }
};

// Everything at or above this value belongs to Comm's collectives
// (Comm::kCollectiveTagBase aliases it; Comm::send rejects such tags).
inline constexpr int kCollectiveTagLimit = 1 << 20;

// Collective buffering (src/iolib/collective_buffer.cc). The reply block
// keeps its historical base of 1000; the node-aggregation phases keep the
// widely spaced blocks they shipped with so trace tooling and tests keyed
// to the raw tag values stay valid. Per-aggregator (+j) tags index into
// the block, so each block is sized for the widest realistic fan-out.
inline constexpr TagBlock kCbReplyTags{1000, 65536};     // aggregator -> requester (+ j)
inline constexpr TagBlock kCbIntraTags{300000, 2};       // member -> node leader (W, R)
inline constexpr TagBlock kCbShipWriteTags{400000, 65536};  // leader -> aggregator (+ j)
inline constexpr TagBlock kCbShipReadTags{500000, 65536};   // leader -> aggregator (+ j)
inline constexpr TagBlock kCbAggReplyTags{600000, 65536};   // aggregator -> leader (+ j)
inline constexpr TagBlock kCbFanoutTags{700000, 1};      // leader -> member slices

// Raft RPC kinds (src/raft/). One tag per message type; the raft transport
// stamps envelopes with these for dispatch and per-kind accounting.
inline constexpr TagBlock kRaftRpcTags{800000, 16};

inline constexpr TagBlock kAllTagBlocks[] = {
    kCbReplyTags,     kCbIntraTags,    kCbShipWriteTags, kCbShipReadTags,
    kCbAggReplyTags,  kCbFanoutTags,   kRaftRpcTags,
};

constexpr bool tag_blocks_disjoint() {
  constexpr int n = sizeof(kAllTagBlocks) / sizeof(kAllTagBlocks[0]);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const TagBlock& a = kAllTagBlocks[i];
      const TagBlock& b = kAllTagBlocks[j];
      if (!(a.end() <= b.base || b.end() <= a.base)) return false;
    }
  }
  return true;
}

constexpr bool tag_blocks_below_collective_limit() {
  for (const TagBlock& b : kAllTagBlocks) {
    if (b.base < 0 || b.size <= 0 || b.end() > kCollectiveTagLimit) return false;
  }
  return true;
}

static_assert(tag_blocks_disjoint(),
              "mpisim tag blocks overlap: two subsystems would cross-match");
static_assert(tag_blocks_below_collective_limit(),
              "mpisim tag blocks must stay below the collective-tag space");

}  // namespace tio::mpi
