// ADIO-like collective layer: PLFS + a communicator.
//
// This is the paper's third PLFS interface (Section II): by inheriting the
// job's communicator, PLFS can coordinate processes and transform the read
// I/O workload. The three index-aggregation strategies live here:
//
//   * Original       — no coordination; every reader reads every index log
//                      (N^2 opens on the underlying file system).
//   * Index Flatten  — at collective close, writers' buffered entries are
//                      gathered to a root which writes one global index
//                      file; a read-open is one file read plus a broadcast.
//   * Parallel Index Read — at read-open, ranks read disjoint subsets of
//                      the index logs, group leaders merge, leaders
//                      exchange, and leaders broadcast the global index
//                      (N opens total, no write-path cost).
#pragma once

#include <memory>
#include <string>

#include "mpisim/comm.h"
#include "plfs/plfs.h"

namespace tio::plfs {

// Collective index aggregation; every rank of `comm` must call. Returns the
// same global index on every rank.
sim::Task<Result<IndexPtr>> aggregate_index(Plfs& plfs, mpi::Comm& comm,
                                            const std::string& logical, ReadStrategy strategy);

// A rank's slice of a collectively opened PLFS file.
class MpiFile {
 public:
  // Collective write-mode open (every rank of comm participates).
  static sim::Task<Result<std::unique_ptr<MpiFile>>> open_write(Plfs& plfs, mpi::Comm& comm,
                                                                std::string logical);
  // Independent data-path write (no coordination needed, like MPI_File_write_at).
  sim::Task<Status> write(std::uint64_t offset, DataView data);
  // Collective close. With `flatten`, performs Index Flatten if every
  // writer stayed under the mount's flatten_threshold.
  sim::Task<Status> close_write(bool flatten);

  // Collective read-mode open using the given aggregation strategy.
  static sim::Task<Result<std::unique_ptr<MpiFile>>> open_read(Plfs& plfs, mpi::Comm& comm,
                                                               std::string logical,
                                                               ReadStrategy strategy);
  sim::Task<Result<FragmentList>> read(std::uint64_t offset, std::uint64_t len);
  sim::Task<Status> close_read();

  std::uint64_t logical_size() const { return read_ ? read_->logical_size() : 0; }
  const IndexView* index() const { return read_ ? &read_->index() : nullptr; }
  WriteHandle* write_handle() { return write_.get(); }

 private:
  MpiFile(Plfs& plfs, mpi::Comm& comm, std::string logical)
      : plfs_(&plfs), comm_(&comm), logical_(std::move(logical)) {}

  pfs::IoCtx ctx() const {
    return pfs::IoCtx{comm_->my_node(), comm_->global_rank()};
  }

  Plfs* plfs_;
  mpi::Comm* comm_;
  std::string logical_;
  std::unique_ptr<WriteHandle> write_;
  std::unique_ptr<ReadHandle> read_;
};

}  // namespace tio::plfs
