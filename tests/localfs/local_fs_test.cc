#include "localfs/local_fs.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <filesystem>

#include "testutil.h"

namespace tio::localfs {
namespace {

using pfs::IoCtx;
using pfs::OpenFlags;

class LocalFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("tio_localfs_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_);
    fs_ = std::make_unique<LocalFs>(engine_, root_.string());
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  sim::Engine engine_;
  std::filesystem::path root_;
  std::unique_ptr<LocalFs> fs_;
  IoCtx ctx_{0, 0};
};

TEST_F(LocalFsTest, RejectsMissingRoot) {
  EXPECT_THROW(LocalFs(engine_, "/no/such/root/dir"), std::invalid_argument);
}

TEST_F(LocalFsTest, WriteReadRoundTripOnDisk) {
  test::run_task(engine_, [](LocalFs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE(fd.ok()) << fd.status();
    const auto data = DataView::pattern(5, 0, 10000);
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, data)).ok());
    auto fl = co_await fs.read(ctx, *fd, 0, 10000);
    EXPECT_TRUE(fl.ok());
    EXPECT_TRUE(fl->content_equals(data));
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
  }(*fs_, ctx_));
  // The file is really on disk.
  EXPECT_TRUE(std::filesystem::exists(root_ / "f"));
  EXPECT_EQ(std::filesystem::file_size(root_ / "f"), 10000u);
}

TEST_F(LocalFsTest, MkdirCreatesRealDirectory) {
  test::run_task(engine_, [](LocalFs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/container")).ok());
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/container/subdir")).ok());
  }(*fs_, ctx_));
  EXPECT_TRUE(std::filesystem::is_directory(root_ / "container" / "subdir"));
}

TEST_F(LocalFsTest, ErrnoMapping) {
  test::run_task(engine_, [](LocalFs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_EQ((co_await fs.open(ctx, "/missing", OpenFlags::ro())).status().code(),
              Errc::not_found);
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/d")).ok());
    EXPECT_EQ((co_await fs.mkdir(ctx, "/d")).code(), Errc::exists);
    auto fd = co_await fs.open(ctx, "/d/f", OpenFlags::wr_create_excl());
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    EXPECT_EQ((co_await fs.open(ctx, "/d/f", OpenFlags::wr_create_excl())).status().code(),
              Errc::exists);
    EXPECT_EQ((co_await fs.rmdir(ctx, "/d")).code(), Errc::not_empty);
  }(*fs_, ctx_));
}

TEST_F(LocalFsTest, ReaddirStatsAndUnlink) {
  test::run_task(engine_, [](LocalFs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/d")).ok());
    for (const char* name : {"/d/b", "/d/a"}) {
      auto fd = co_await fs.open(ctx, name, OpenFlags::wr_create());
      EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::literal_string("xyz"))).ok());
      EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    }
    auto entries = co_await fs.readdir(ctx, "/d");
    EXPECT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), 2u);
    EXPECT_EQ((*entries)[0].name, "a");  // sorted
    auto st = co_await fs.stat(ctx, "/d/a");
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st->size, 3u);
    EXPECT_FALSE(st->is_dir);
    EXPECT_TRUE((co_await fs.unlink(ctx, "/d/a")).ok());
    entries = co_await fs.readdir(ctx, "/d");
    EXPECT_EQ(entries->size(), 1u);
  }(*fs_, ctx_));
}

TEST_F(LocalFsTest, RenameOnDisk) {
  test::run_task(engine_, [](LocalFs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/x", OpenFlags::wr_create());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    EXPECT_TRUE((co_await fs.rename(ctx, "/x", "/y")).ok());
  }(*fs_, ctx_));
  EXPECT_FALSE(std::filesystem::exists(root_ / "x"));
  EXPECT_TRUE(std::filesystem::exists(root_ / "y"));
}

TEST_F(LocalFsTest, SparseWriteReadsBackZeros) {
  test::run_task(engine_, [](LocalFs& fs, IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 5000, DataView::literal_string("tail"))).ok());
    auto fl = co_await fs.read(ctx, *fd, 0, 5004);
    EXPECT_EQ(fl->size(), 5004u);
    EXPECT_EQ(fl->at(0), std::byte{0});
    EXPECT_EQ(fl->at(5000), std::byte{'t'});
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
  }(*fs_, ctx_));
}

TEST_F(LocalFsTest, WholeFileReadRequestIsClampedToEof) {
  // Callers may ask for "the whole file" with a huge length; the backend
  // must clamp before allocating (regression: bad_alloc on 2^62 request).
  test::run_task(engine_, [](LocalFs& fs, pfs::IoCtx ctx) -> sim::Task<void> {
    auto fd = co_await fs.open(ctx, "/f", pfs::OpenFlags{.read = true, .write = true,
                                                         .create = true});
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, DataView::pattern(1, 0, 1000))).ok());
    auto fl = co_await fs.read(ctx, *fd, 0, std::numeric_limits<std::int64_t>::max());
    EXPECT_TRUE(fl.ok());
    EXPECT_EQ(fl->size(), 1000u);
    auto past = co_await fs.read(ctx, *fd, 5000, 10);
    EXPECT_TRUE(past.ok());
    EXPECT_TRUE(past->empty());
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
  }(*fs_, ctx_));
}

}  // namespace
}  // namespace tio::localfs
