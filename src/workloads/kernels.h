// The evaluation's workload generators.
//
// Synthetic benchmarks: MPI-IO Test (LANL's tunable generator, used for
// Figs. 4 and 8a) and IOR (LLNL). Application-derived I/O kernels: Pixie3D
// (pnetcdf), Saudi ARAMCO (HDF5, strong scaling), MADbench (out-of-core
// matrices), LANL 1 (weak scaling, ~500 KB strided records), and LANL 3
// (strong scaling, 1 KiB records through collective buffering). The two
// LANL mission codes are closed; their kernels here are synthesized from
// the access-pattern parameters the paper discloses (see DESIGN.md).
#pragma once

#include "iolib/collective_buffer.h"
#include "workloads/harness.h"

namespace tio::workloads {

// offset = (round * nprocs + rank) * record — the interleaved N-1 pattern.
OpGen strided_ops(std::uint64_t bytes_per_proc, std::uint64_t record);
// offset = rank * bytes_per_proc + round * record — contiguous segments.
OpGen segmented_ops(std::uint64_t bytes_per_proc, std::uint64_t record);

// --- synthetic benchmarks ---
// MPI-IO Test as configured in Section IV-C: 50 MB per stream in ~50 KB
// records, N-1 strided.
JobSpec mpiio_test(std::uint64_t bytes_per_proc, std::uint64_t record, TargetOptions target);
// IOR as configured in Section IV-D3: 50 MB per process in 1 MB records.
JobSpec ior(TargetOptions target);

// --- application kernels (Fig. 5) ---
// Pixie3D: weak scaling through TinyNc, `bytes_per_proc` split over nvars
// record variables (paper: 1 GB per process).
JobSpec pixie3d(int nprocs, std::uint64_t bytes_per_proc, int nvars, TargetOptions target);
// ARAMCO: strong scaling through TinyHdf; fixed dataset regardless of
// process count.
JobSpec aramco(int nprocs, std::uint64_t dataset_bytes, std::uint64_t chunk_bytes,
               TargetOptions target);
// MADbench: writes `matrices` out-of-core matrices segment-per-process,
// reads them back in their entirety.
JobSpec madbench(std::uint64_t matrix_bytes_per_proc, int matrices, TargetOptions target);
// LANL 1: weak scaling, five-hundred-thousand-byte strided records.
JobSpec lanl1(std::uint64_t bytes_per_proc, TargetOptions target);
// LANL 3: strong scaling, 1024-byte records, collective buffering enabled
// via MPI-IO hints (paper Section IV-D6; 32 GB total in the paper).
JobSpec lanl3(int nprocs, std::uint64_t total_bytes, TargetOptions target,
              iolib::CbConfig cb = {});
// Noncontiguous field access: the file is an array of `stride`-byte
// elements and every rank touches only the leading `field` bytes of the
// elements it owns (round-robin). Unlike LANL 3's strided records the
// union of all ranks' requests leaves (stride - field)-byte holes between
// runs, so this is the pattern where read-side data sieving pays off.
// `total_bytes` is the file extent; actual data moved is
// total_bytes * field / stride.
JobSpec noncontig(int nprocs, std::uint64_t total_bytes, std::uint64_t field,
                  std::uint64_t stride, TargetOptions target, iolib::CbConfig cb = {});

}  // namespace tio::workloads
