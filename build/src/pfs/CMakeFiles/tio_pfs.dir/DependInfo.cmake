
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/extent_map.cc" "src/pfs/CMakeFiles/tio_pfs.dir/extent_map.cc.o" "gcc" "src/pfs/CMakeFiles/tio_pfs.dir/extent_map.cc.o.d"
  "/root/repo/src/pfs/namespace.cc" "src/pfs/CMakeFiles/tio_pfs.dir/namespace.cc.o" "gcc" "src/pfs/CMakeFiles/tio_pfs.dir/namespace.cc.o.d"
  "/root/repo/src/pfs/ost.cc" "src/pfs/CMakeFiles/tio_pfs.dir/ost.cc.o" "gcc" "src/pfs/CMakeFiles/tio_pfs.dir/ost.cc.o.d"
  "/root/repo/src/pfs/sim_pfs.cc" "src/pfs/CMakeFiles/tio_pfs.dir/sim_pfs.cc.o" "gcc" "src/pfs/CMakeFiles/tio_pfs.dir/sim_pfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
