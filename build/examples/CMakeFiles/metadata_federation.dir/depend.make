# Empty dependencies file for metadata_federation.
# This may be replaced when dependencies are built.
